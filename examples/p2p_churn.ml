(* P2P churn: the paper's motivating scenario (Section 1).

   A peer-to-peer overlay suffers continuous churn — peers join with a few
   connections, and an omniscient adversary keeps deleting the most
   connected peer. We run 300 events at a 1:1 join/leave mix and track the
   Theorem 1 guarantees live, then compare against a network that does not
   heal at all.

   Run with: dune exec examples/p2p_churn.exe *)

module Fg = Fg_core.Forgiving_graph
module Healer = Fg_baselines.Healer
module Adversary = Fg_adversary.Adversary

let measure label (h : Healer.t) =
  let graph = h.Healer.graph () in
  let gprime = h.Healer.gprime () in
  let live = h.Healer.live_nodes () in
  let components =
    List.length (Fg_graph.Connectivity.components graph)
  in
  let stretch = Fg_metrics.Stretch.exact ~graph ~reference:gprime live in
  let degree = Fg_metrics.Degree_metric.measure ~graph ~gprime ~nodes:live in
  Format.printf "%-10s live=%3d components=%2d max-stretch=%4.1f max-deg-ratio=%4.1f \
                 unreachable-pairs=%d@."
    label (List.length live) components stretch.Fg_metrics.Stretch.max_stretch
    degree.Fg_metrics.Degree_metric.max_ratio stretch.Fg_metrics.Stretch.disconnected

let run_churn healer_name seed =
  let rng = Fg_graph.Rng.create seed in
  let g0 = Fg_graph.Generators.erdos_renyi rng 64 (4.0 /. 64.0) in
  let h = Fg_baselines.Registry.by_name healer_name g0 in
  let script =
    Fg_adversary.Churn.drive rng h ~steps:300 ~p_delete:0.5
      ~del:Adversary.Max_degree ~ins:(Adversary.Attach_random 3) ~first_id:64
  in
  (h, List.length script)

let () =
  Format.printf "P2P overlay under adversarial churn (300 events, join:leave 1:1)@.@.";
  let fg, n1 = run_churn "fg" 2024 in
  let none, n2 = run_churn "none" 2024 in
  Format.printf "events applied: forgiving=%d, no-repair=%d@." n1 n2;
  measure "forgiving" fg;
  measure "no-repair" none;
  Format.printf
    "@.The Forgiving Graph keeps every surviving pair reachable within the@.\
     ceil(log2 n) stretch bound; without healing the overlay shatters.@."
