(* Quickstart: the Forgiving Graph in a dozen lines.

   Build a small network, let an adversary delete a node, and watch the
   structure heal: connectivity is preserved, distances stay within
   ceil(log2 n) of the insert-only graph G', and no degree more than
   quadruples (the paper states 3x; see DESIGN.md §6 for the extra edge).

   Run with: dune exec examples/quickstart.exe *)

module Fg = Fg_core.Forgiving_graph
module G = Fg_graph.Adjacency

let () =
  (* a ring of 8 peers, 0-1-2-...-7-0 *)
  let g0 = Fg_graph.Generators.ring 8 in
  let fg = Fg.of_graph g0 in

  (* a new peer 8 joins, connected to peers 0 and 4 *)
  Fg.insert fg 8 [ 0; 4 ];
  Format.printf "after insert: %d live nodes, %d edges@." (Fg.num_live fg)
    (G.num_edges (Fg.graph fg));

  (* the adversary deletes peer 0 — the healing kicks in automatically *)
  Fg.delete fg 0;
  let healed = Fg.graph fg in
  Format.printf "after deleting 0: %d live nodes, %d edges, connected: %b@."
    (Fg.num_live fg) (G.num_edges healed)
    (Fg_graph.Connectivity.is_connected healed);

  (* peer 0's neighbours (1, 7, 8) are now joined through its
     reconstruction tree *)
  List.iter
    (fun v -> Format.printf "  neighbours of %d: %s@." v
        (String.concat ", " (List.map string_of_int (G.neighbors healed v))))
    [ 1; 7; 8 ];

  (* [Fg.graph] returns the engine's own adjacency — read-only by
     contract. For what-if edits, take an [Adjacency.copy] first; the
     engine (and its cached snapshots) never sees the mutation. *)
  let what_if = G.copy healed in
  G.remove_edge what_if 1 8;
  Format.printf "what-if copy connected without 1-8: %b (engine still has it: %b)@."
    (Fg_graph.Connectivity.is_connected what_if)
    (G.mem_edge (Fg.graph fg) 1 8);

  (* the Theorem 1 guarantees, checked on the live structure *)
  Format.printf "stretch bound ceil(log2 %d) = %d@." (Fg.num_seen fg)
    (Fg.stretch_bound fg);
  match Fg_core.Invariants.check fg with
  | [] -> Format.printf "all structural invariants hold@."
  | errs -> List.iter (Format.printf "violation: %s@.") errs
