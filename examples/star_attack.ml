(* The Theorem 2 attack, blow by blow.

   A star K_{1,n-1} is the worst topology for self-healing: one deletion
   removes every route. The adversary kills the hub; we show (a) the haft
   reconstruction tree that replaces it, (b) the measured stretch sitting
   between Theorem 2's lower bound and Theorem 1.2's upper bound, and
   (c) the distributed repair cost measured by the message-passing
   simulator (Lemma 4).

   Run with: dune exec examples/star_attack.exe -- [n] *)

module Fg = Fg_core.Forgiving_graph
module Engine = Fg_sim.Engine

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 65 in
  Format.printf "star K_{1,%d}: the adversary deletes the hub (node 0)@.@." (n - 1);
  let eng = Engine.create (Fg_graph.Generators.star n) in
  let cost = Engine.delete eng 0 in
  let fg = Engine.fg eng in

  (* (a) the reconstruction tree *)
  (match Fg_core.Rt.rt_roots (Fg.ctx fg) with
  | [ root ] ->
    Format.printf "reconstruction tree: %d leaves, depth %d = ceil(log2 %d)@."
      root.Fg_core.Rt.leaves root.Fg_core.Rt.height (n - 1)
  | roots -> Format.printf "unexpected: %d reconstruction trees@." (List.length roots));

  (* (b) stretch between the bounds *)
  let live = Fg.live_nodes fg in
  let stretch =
    Fg_metrics.Stretch.exact ~graph:(Fg.graph fg) ~reference:(Fg.gprime fg) live
  in
  let lb = 0.5 *. (log (float_of_int (n - 1)) /. log 2.) in
  Format.printf "max stretch %.2f  (Theorem 2 lower bound %.2f, Theorem 1.2 upper \
                 bound %d)@."
    stretch.Fg_metrics.Stretch.max_stretch lb (Fg.stretch_bound fg);

  (* (c) the distributed repair bill *)
  Format.printf "repair cost: %a@." Engine.pp_cost cost;
  let d = float_of_int cost.Engine.deleted_degree in
  let lg = log (float_of_int n) /. log 2. in
  Format.printf "  messages / (d log n) = %.2f   rounds / (log d log n) = %.2f@."
    (float_of_int cost.Engine.messages /. (d *. lg))
    (float_of_int cost.Engine.rounds /. (log d /. log 2. *. lg));

  match Fg_core.Invariants.check fg with
  | [] -> Format.printf "invariants: all hold@."
  | errs -> List.iter (Format.printf "violation: %s@.") errs
