module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency
module Rng = Fg_graph.Rng
module Healer = Fg_baselines.Healer

type deletion =
  | Random
  | Max_degree
  | Max_gprime_degree
  | Articulation
  | Max_betweenness
  | Max_healing_degree
  | Oldest

type insertion =
  | Attach_random of int
  | Attach_preferential of int
  | Attach_chain
  | Attach_far of int
  | Attach_hub of Node_id.t

let deletion_name = function
  | Random -> "random"
  | Max_degree -> "maxdeg"
  | Max_gprime_degree -> "maxdeg-gp"
  | Articulation -> "cutpoint"
  | Max_betweenness -> "betweenness"
  | Max_healing_degree -> "healdeg"
  | Oldest -> "oldest"

let deletion_names =
  [ "random"; "maxdeg"; "maxdeg-gp"; "cutpoint"; "betweenness"; "healdeg"; "oldest" ]

let deletion_of_name = function
  | "random" -> Random
  | "maxdeg" -> Max_degree
  | "maxdeg-gp" -> Max_gprime_degree
  | "cutpoint" -> Articulation
  | "betweenness" -> Max_betweenness
  | "healdeg" -> Max_healing_degree
  | "oldest" -> Oldest
  | s -> invalid_arg ("Adversary.deletion_of_name: " ^ s)

(* deterministic argmax: largest score, then smallest id *)
let argmax score nodes =
  let better v = function
    | None -> Some v
    | Some best ->
      let sv = score v and sb = score best in
      if sv > sb || (sv = sb && v < best) then Some v else Some best
  in
  List.fold_left (fun acc v -> better v acc) None nodes

let pick_victim strategy rng (h : Healer.t) =
  let live = List.sort Node_id.compare (h.Healer.live_nodes ()) in
  (* never delete below two survivors: the success metrics (stretch over
     pairs) need at least one pair, and the model's repair phase is
     meaningless on a single processor *)
  if List.length live <= 2 then None
  else
    match strategy with
    | Random -> Some (Rng.pick rng live)
    | Oldest -> ( match live with v :: _ -> Some v | [] -> None)
    | Max_degree ->
      let g = h.Healer.graph () in
      argmax (fun v -> Adjacency.degree g v) live
    | Max_gprime_degree ->
      let gp = h.Healer.gprime () in
      argmax (fun v -> Adjacency.degree gp v) live
    | Articulation -> (
      let g = h.Healer.graph () in
      let cuts = Fg_graph.Connectivity.articulation_points g in
      match Node_id.Set.min_elt_opt (Node_id.Set.filter h.Healer.is_alive cuts) with
      | Some v -> Some v
      | None ->
        (* 2-connected graph: fall back to the max-degree hub *)
        argmax (fun v -> Adjacency.degree g v) live)
    | Max_betweenness ->
      let g = h.Healer.graph () in
      let bc = Fg_graph.Centrality.betweenness g in
      let score v =
        (* scale to ints for the deterministic argmax *)
        int_of_float (Option.value (Node_id.Tbl.find_opt bc v) ~default:0. *. 100.)
      in
      argmax score live
    | Max_healing_degree ->
      let g = h.Healer.graph () in
      let gp = h.Healer.gprime () in
      argmax (fun v -> Adjacency.degree g v - Adjacency.degree gp v) live

let pick_neighbors strategy rng (h : Healer.t) ~last_inserted =
  let live = List.sort Node_id.compare (h.Healer.live_nodes ()) in
  match live with
  | [] -> []
  | first :: _ -> (
    match strategy with
    | Attach_random k ->
      let arr = Array.of_list live in
      Array.to_list (Rng.sample rng (max 1 k) arr)
    | Attach_preferential k ->
      let g = h.Healer.gprime () in
      (* degree-proportional draws with replacement, deduplicated *)
      let weighted = List.concat_map (fun v -> List.init (1 + Adjacency.degree g v) (fun _ -> v)) live in
      let arr = Array.of_list weighted in
      let chosen = ref Node_id.Set.empty in
      let wanted = max 1 k in
      let attempts = ref 0 in
      while Node_id.Set.cardinal !chosen < wanted && !attempts < 50 * wanted do
        incr attempts;
        chosen := Node_id.Set.add (Rng.pick_array rng arr) !chosen
      done;
      if Node_id.Set.is_empty !chosen then [ first ] else Node_id.Set.elements !chosen
    | Attach_chain -> (
      match last_inserted with
      | Some v when h.Healer.is_alive v -> [ v ]
      | _ -> [ first ])
    | Attach_far k ->
      (* greedy k-centre-ish spread over the current graph *)
      let g = h.Healer.graph () in
      let chosen = ref [ first ] in
      for _ = 2 to max 1 k do
        let dist = Fg_graph.Bfs.multi_source_distances g !chosen in
        let far =
          List.fold_left
            (fun acc v ->
              let dv = Option.value (Node_id.Tbl.find_opt dist v) ~default:0 in
              match acc with
              | None -> Some (v, dv)
              | Some (_, db) when dv > db -> Some (v, dv)
              | Some _ -> acc)
            None live
        in
        match far with
        | Some (v, _) when not (List.exists (Node_id.equal v) !chosen) ->
          chosen := v :: !chosen
        | _ -> ()
      done;
      !chosen
    | Attach_hub victim ->
      if h.Healer.is_alive victim then [ victim ] else [ first ])
