module Node_id = Fg_graph.Node_id
module Rng = Fg_graph.Rng
module Healer = Fg_baselines.Healer

type op = Insert of Node_id.t * Node_id.t list | Delete of Node_id.t

let pp_op ppf = function
  | Insert (v, nbrs) ->
    Format.fprintf ppf "insert %a -> [%a]" Node_id.pp v
      (Format.pp_print_list ~pp_sep:Format.pp_print_space Node_id.pp)
      nbrs
  | Delete v -> Format.fprintf ppf "delete %a" Node_id.pp v

let drive rng (h : Healer.t) ~steps ~p_delete ~del ~ins ~first_id =
  let script = ref [] in
  let next_id = ref first_id in
  let last_inserted = ref None in
  let continue_ = ref true in
  let step () =
    let live_count = List.length (h.Healer.live_nodes ()) in
    if live_count < 2 then continue_ := false
    else if Rng.float rng 1.0 < p_delete then begin
      match Adversary.pick_victim del rng h with
      | None -> continue_ := false
      | Some v ->
        h.Healer.delete v;
        script := Delete v :: !script
    end
    else begin
      let nbrs = Adversary.pick_neighbors ins rng h ~last_inserted:!last_inserted in
      let v = !next_id in
      incr next_id;
      h.Healer.insert v nbrs;
      last_inserted := Some v;
      script := Insert (v, nbrs) :: !script
    end
  in
  let i = ref 0 in
  while !continue_ && !i < steps do
    step ();
    incr i
  done;
  List.rev !script

let delete_fraction ?on_delete rng (h : Healer.t) ~fraction ~del =
  let n = List.length (h.Healer.live_nodes ()) in
  let want = max 1 (int_of_float (fraction *. float_of_int n)) in
  let victims = ref [] in
  let continue_ = ref true in
  let k = ref 0 in
  while !continue_ && !k < want do
    (match Adversary.pick_victim del rng h with
    | None -> continue_ := false
    | Some v ->
      h.Healer.delete v;
      victims := v :: !victims;
      match on_delete with None -> () | Some f -> f v);
    incr k
  done;
  List.rev !victims

let replay (h : Healer.t) ops =
  let apply = function
    | Insert (v, nbrs) -> h.Healer.insert v nbrs
    | Delete v -> h.Healer.delete v
  in
  List.iter apply ops
