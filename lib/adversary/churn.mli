(** Churn driver: applies adversarial insert/delete sequences to a healer.

    Two modes. [drive] is the {e adaptive} adversary: every step it
    inspects the healer's current topology and picks its best move — each
    healing algorithm faces the adversary's best response to {e it}.
    [replay] re-applies a recorded script verbatim, for experiments that
    need the identical [G'] across healers. *)

module Node_id := Fg_graph.Node_id

type op = Insert of Node_id.t * Node_id.t list | Delete of Node_id.t

val pp_op : Format.formatter -> op -> unit

(** [drive rng healer ~steps ~p_delete ~del ~ins ~first_id] performs
    [steps] adversarial moves: with probability [p_delete] a deletion
    chosen by [del], otherwise an insertion attached per [ins] with fresh
    ids from [first_id] upwards. Stops early if fewer than two nodes
    survive. Returns the script applied (chronological). Raises
    [Fg_baselines.Healer.Unsupported] if an insertion hits a healer
    without insertion support. *)
val drive :
  Fg_graph.Rng.t ->
  Fg_baselines.Healer.t ->
  steps:int ->
  p_delete:float ->
  del:Adversary.deletion ->
  ins:Adversary.insertion ->
  first_id:Node_id.t ->
  op list

(** [delete_fraction rng healer ~fraction ~del] deletes
    [fraction * current size] nodes (at least 1, leaving at least 2),
    adaptively; returns victims in order. [on_delete] is called after
    each deletion has healed (the telemetry hook behind
    [fg_cli attack --metrics-every]); it must not mutate the healer. *)
val delete_fraction :
  ?on_delete:(Node_id.t -> unit) ->
  Fg_graph.Rng.t ->
  Fg_baselines.Healer.t ->
  fraction:float ->
  del:Adversary.deletion ->
  Node_id.t list

(** [replay healer ops] applies a recorded script. *)
val replay : Fg_baselines.Healer.t -> op list -> unit
