module Node_id = Fg_graph.Node_id
module Fg = Fg_core.Forgiving_graph

type cost = {
  deleted : Node_id.t;
  deleted_degree : int;
  n_seen : int;
  anchors : int;
  rounds : int;
  messages : int;
  total_bits : int;
  max_message_bits : int;
  max_agent_bits : int;
  max_agent_messages : int;
}

type t = {
  fg : Fg.t;
  mutable history : cost list;  (* reversed *)
}

let create g = { fg = Fg.of_graph g; history = [] }
let insert t v nbrs = Fg.insert t.fg v nbrs
let fg t = t.fg
let costs t = List.rev t.history

let delete t v =
  Fg_obs.Trace.with_span "sim.delete" ~attrs:[ ("node", Fg_obs.Event.Int v) ]
  @@ fun sp ->
  let deleted_degree = Fg_graph.Adjacency.degree (Fg.gprime t.fg) v in
  let n_seen = Fg.num_seen t.fg in
  let trace = Fg.delete_traced t.fg v in
  let stats =
    Fg_obs.Trace.with_span "sim.replay" (fun _ -> Protocol.replay ~trace ~n_seen)
  in
  if Fg_obs.Trace.enabled () || Fg_obs.Metrics.is_recording () then begin
    Fg_obs.Trace.attr sp "rounds" (Fg_obs.Event.Int stats.Netsim.rounds);
    Fg_obs.Trace.attr sp "messages" (Fg_obs.Event.Int stats.Netsim.messages);
    Fg_obs.Metrics.observe "sim.rounds" (float_of_int stats.Netsim.rounds);
    Fg_obs.Metrics.observe "sim.messages" (float_of_int stats.Netsim.messages)
  end;
  let cost =
    {
      deleted = v;
      deleted_degree;
      n_seen;
      anchors = trace.Fg_core.Rt.ht_anchors;
      rounds = stats.Netsim.rounds;
      messages = stats.Netsim.messages;
      total_bits = stats.Netsim.total_bits;
      max_message_bits = stats.Netsim.max_message_bits;
      max_agent_bits = stats.Netsim.max_agent_bits;
      max_agent_messages = stats.Netsim.max_agent_messages;
    }
  in
  t.history <- cost :: t.history;
  cost

let pp_cost ppf c =
  Format.fprintf ppf
    "del %a (d'=%d, n=%d): %d anchors, %d rounds, %d msgs, %d bits (max msg %d, max \
     node %d)"
    Node_id.pp c.deleted c.deleted_degree c.n_seen c.anchors c.rounds c.messages
    c.total_bits c.max_message_bits c.max_agent_bits
