module Adjacency = Fg_graph.Adjacency
module Node_id = Fg_graph.Node_id

type result = {
  reached : int;
  broadcast_rounds : int;
  total_rounds : int;
  messages : int;
  total_bits : int;
}

type msg = Token | Echo

let broadcast ?(payload_bits = 32) g ~root =
  if not (Adjacency.mem_node g root) then invalid_arg "Flood.broadcast: unknown root";
  let net = Netsim.create () in
  let parent = Node_id.Tbl.create 64 in
  let pending_echo = Node_id.Tbl.create 64 in
  let reached = ref 0 in
  let send_token ~src ~dst = Netsim.send net ~bits:payload_bits ~src ~dst Token in
  let send_echo ~src ~dst = Netsim.send net ~bits:1 ~src ~dst Echo in
  let complete v =
    (* all children echoed: echo to parent; the root just finishes *)
    match Node_id.Tbl.find_opt parent v with
    | Some p when not (Node_id.equal p v) -> send_echo ~src:v ~dst:p
    | _ -> ()
  in
  let adopt ~src v =
    Node_id.Tbl.replace parent v src;
    incr reached;
    let is_child u = not (Node_id.equal u src || Node_id.equal u v) in
    let children = ref 0 in
    Adjacency.iter_neighbors (fun u -> if is_child u then incr children) g v;
    if !children = 0 then complete v
    else begin
      Node_id.Tbl.replace pending_echo v !children;
      Adjacency.iter_neighbors
        (fun u -> if is_child u then send_token ~src:v ~dst:u)
        g v
    end
  in
  let handler ~src ~dst ~bits:_ msg =
    match msg with
    | Token ->
      if not (Node_id.Tbl.mem parent dst) then adopt ~src dst
      else send_echo ~src:dst ~dst:src (* duplicate: immediate refusal echo *)
    | Echo -> (
      match Node_id.Tbl.find_opt pending_echo dst with
      | None -> ()
      | Some 1 ->
        Node_id.Tbl.remove pending_echo dst;
        complete dst
      | Some k -> Node_id.Tbl.replace pending_echo dst (k - 1))
  in
  adopt ~src:root root;
  let stats = Netsim.run net ~handler ~max_rounds:100_000 in
  (* synchronous flooding reaches each node at its BFS depth *)
  let broadcast_rounds =
    let d = Fg_graph.Bfs.distances g root in
    Node_id.Tbl.fold (fun _ x acc -> max x acc) d 0
  in
  {
    reached = !reached;
    broadcast_rounds;
    total_rounds = stats.Netsim.rounds;
    messages = stats.Netsim.messages;
    total_bits = stats.Netsim.total_bits;
  }
