module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency
module Fg = Fg_core.Forgiving_graph
module Rt = Fg_core.Rt

type t = { st : Dist_state.t; fg : Fg.t }

let create g0 =
  let st = Dist_state.create () in
  Adjacency.iter_nodes (fun v -> Dist_state.add_processor st v) g0;
  Adjacency.iter_edges (fun u v -> Dist_state.add_edge st u v) g0;
  { st; fg = Fg.of_graph g0 }

let insert t v nbrs =
  Fg.insert t.fg v nbrs;
  Dist_state.add_processor t.st v;
  List.iter (fun u -> Dist_state.add_edge t.st v u) (List.sort_uniq Node_id.compare nbrs)

let stats_attrs (s : Netsim.stats) =
  [
    ("rounds", Fg_obs.Event.Int s.Netsim.rounds);
    ("messages", Fg_obs.Event.Int s.Netsim.messages);
    ("total_bits", Fg_obs.Event.Int s.Netsim.total_bits);
    ("max_message_bits", Fg_obs.Event.Int s.Netsim.max_message_bits);
    ("max_agent_bits", Fg_obs.Event.Int s.Netsim.max_agent_bits);
    ("max_agent_messages", Fg_obs.Event.Int s.Netsim.max_agent_messages);
  ]

let delete t v =
  Fg_obs.Trace.with_span "dist.delete" ~attrs:[ ("node", Fg_obs.Event.Int v) ]
    (fun sp ->
      let n_seen = Fg.num_seen t.fg in
      let stats = Dist_protocol.delete t.st v ~n_seen in
      List.iter (fun (k, a) -> Fg_obs.Trace.attr sp k a) (stats_attrs stats);
      Fg_obs.Metrics.observe "dist.rounds" (float_of_int stats.Netsim.rounds);
      Fg_obs.Metrics.observe "dist.messages" (float_of_int stats.Netsim.messages);
      Fg_obs.Metrics.observe "dist.bits" (float_of_int stats.Netsim.total_bits);
      Fg.delete t.fg v;
      stats)

let graph t = Dist_state.derived_graph t.st
let state t = t.st
let reference t = t.fg

let leaf_partition_of_fg fg =
  let ctx = Fg.ctx fg in
  let classes =
    List.map
      (fun root ->
        Rt.leaves_of root
        |> List.map (fun (l : Rt.vnode) ->
               (l.Rt.half.Fg_core.Edge.Half.proc, l.Rt.half.Fg_core.Edge.Half.edge))
        |> List.sort compare)
      (Rt.rt_roots ctx)
  in
  List.sort compare classes

let verify t =
  let errs = ref [] in
  let say fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  (* distributed structural validity *)
  List.iter (fun e -> say "dist: %s" e) (Dist_state.check t.st);
  (* leaf partitions agree with the centralized reference *)
  let dist_part = List.sort compare (Dist_state.leaf_partition t.st) in
  let ref_part = leaf_partition_of_fg t.fg in
  if dist_part <> ref_part then
    say "leaf partition differs: %d distributed classes vs %d centralized"
      (List.length dist_part) (List.length ref_part);
  (* bounds on the derived network *)
  let g = graph t in
  let gp = Fg.gprime t.fg in
  List.iter
    (fun v ->
      let d = Adjacency.degree g v and d' = Adjacency.degree gp v in
      if d > 4 * d' then say "degree: node %d has %d > 4*%d" v d d')
    (Fg.live_nodes t.fg);
  (* connectivity mirrors the centralized image *)
  let ref_g = Fg.graph t.fg in
  let ref_comp = List.length (Fg_graph.Connectivity.components ref_g) in
  let dist_comp = List.length (Fg_graph.Connectivity.components g) in
  if ref_comp <> dist_comp then
    say "connectivity: %d components distributed vs %d centralized" dist_comp ref_comp;
  List.rev !errs
