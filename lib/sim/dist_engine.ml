module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency
module Fg = Fg_core.Forgiving_graph
module Rt = Fg_core.Rt
module Edge = Fg_core.Edge
module Delta = Fg_core.Delta

(* Per-event check recorded at mutation time and audited by [verify].
   Facts that stay true forever (a victim stays dead, an inserted node
   stays present) are re-checked lazily; the repair-class comparison is
   done eagerly inside [delete] because a later repair may legitimately
   merge the class away. *)
type event_check =
  | Ins of Node_id.t * Node_id.t list
  | Del of { victim : Node_id.t; touched : Node_id.t list }

type t = {
  st : Dist_state.t;
  fg : Fg.t;
  mutable events : event_check list; (* newest first, drained by [verify] *)
  mutable repair_errs : string list; (* eager class mismatches, newest first *)
}

let create g0 =
  let st = Dist_state.create () in
  Adjacency.iter_nodes (fun v -> Dist_state.add_processor st v) g0;
  Adjacency.iter_edges (fun u v -> Dist_state.add_edge st u v) g0;
  { st; fg = Fg.of_graph g0; events = []; repair_errs = [] }

let insert t v nbrs =
  Fg.insert t.fg v nbrs;
  Dist_state.add_processor t.st v;
  let nbrs = List.sort_uniq Node_id.compare nbrs in
  List.iter (fun u -> Dist_state.add_edge t.st v u) nbrs;
  t.events <- Ins (v, nbrs) :: t.events

let stats_attrs (s : Netsim.stats) =
  [
    ("rounds", Fg_obs.Event.Int s.Netsim.rounds);
    ("messages", Fg_obs.Event.Int s.Netsim.messages);
    ("total_bits", Fg_obs.Event.Int s.Netsim.total_bits);
    ("max_message_bits", Fg_obs.Event.Int s.Netsim.max_message_bits);
    ("max_agent_bits", Fg_obs.Event.Int s.Netsim.max_agent_bits);
    ("max_agent_messages", Fg_obs.Event.Int s.Netsim.max_agent_messages);
  ]

let class_of_root root =
  Rt.leaves_of root
  |> List.map (fun (l : Rt.vnode) ->
         (l.Rt.half.Fg_core.Edge.Half.proc, l.Rt.half.Fg_core.Edge.Half.edge))
  |> List.sort compare

(* The one structural fact a single repair establishes: the merged RT's
   leaf class. The class is determined by the merge sets alone (not the
   tie-breaks), so distributed and centralized must agree exactly — but
   only *now*, before a later deletion merges it into a bigger haft, so
   the comparison cannot be deferred to [verify]. *)
let check_repair_class t (trace : Rt.heal_trace) =
  match trace.Rt.ht_root with
  | None -> ()
  | Some root -> (
    match class_of_root root with
    | [] -> ()
    | (p, e) :: _ as ref_cls -> (
      match Dist_state.class_of_leaf t.st p e with
      | None ->
        t.repair_errs <-
          Printf.sprintf "repair class: no distributed leaf at proc %d" p
          :: t.repair_errs
      | Some dist_cls ->
        if dist_cls <> ref_cls then
          t.repair_errs <-
            Printf.sprintf
              "repair class mismatch at proc %d: %d distributed leaves vs %d centralized"
              p (List.length dist_cls) (List.length ref_cls)
          :: t.repair_errs))

let delete t v =
  Fg_obs.Trace.with_span "dist.delete" ~attrs:[ ("node", Fg_obs.Event.Int v) ]
    (fun sp ->
      let n_seen = Fg.num_seen t.fg in
      let stats = Dist_protocol.delete t.st v ~n_seen in
      if Fg_obs.Trace.enabled () || Fg_obs.Metrics.is_recording () then begin
        List.iter (fun (k, a) -> Fg_obs.Trace.attr sp k a) (stats_attrs stats);
        Fg_obs.Metrics.observe "dist.rounds" (float_of_int stats.Netsim.rounds);
        Fg_obs.Metrics.observe "dist.messages" (float_of_int stats.Netsim.messages);
        Fg_obs.Metrics.observe "dist.bits" (float_of_int stats.Netsim.total_bits)
      end;
      let delta, trace = Fg.delete_delta t.fg v in
      check_repair_class t trace;
      t.events <- Del { victim = v; touched = Delta.touched delta } :: t.events;
      stats)

let graph t = Dist_state.derived_graph t.st
let state t = t.st
let reference t = t.fg

let leaf_partition_of_fg fg =
  let ctx = Fg.ctx fg in
  List.sort compare (List.map class_of_root (Rt.rt_roots ctx))

let verify t =
  let errs = ref [] in
  let say fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  (* class mismatches caught eagerly at repair time *)
  List.iter (fun e -> errs := e :: !errs) t.repair_errs;
  let g = lazy (graph t) in
  let gp = Fg.gprime t.fg in
  let check_degree v =
    if Dist_state.is_alive t.st v then begin
      let d = Adjacency.degree (Lazy.force g) v and d' = Adjacency.degree gp v in
      if d > 4 * d' then say "degree: node %d has %d > 4*%d" v d d'
    end
  in
  List.iter
    (function
      | Ins (v, nbrs) ->
        if not (Dist_state.is_alive t.st v) then
          say "insert: node %d not alive distributed" v;
        List.iter
          (fun u ->
            if Dist_state.find t.st v (Edge.make v u) = None then
              say "insert: node %d lacks a row for edge to %d" v u)
          nbrs;
        check_degree v
      | Del { victim; touched } ->
        if Dist_state.is_alive t.st victim then
          say "delete: node %d still alive distributed" victim;
        List.iter check_degree touched)
    (List.rev t.events);
  t.events <- [];
  t.repair_errs <- [];
  List.rev !errs

let verify_full t =
  let errs = ref [] in
  let say fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  (* distributed structural validity *)
  List.iter (fun e -> say "dist: %s" e) (Dist_state.check t.st);
  (* leaf partitions agree with the centralized reference *)
  let dist_part = List.sort compare (Dist_state.leaf_partition t.st) in
  let ref_part = leaf_partition_of_fg t.fg in
  if dist_part <> ref_part then
    say "leaf partition differs: %d distributed classes vs %d centralized"
      (List.length dist_part) (List.length ref_part);
  (* bounds on the derived network *)
  let g = graph t in
  let gp = Fg.gprime t.fg in
  List.iter
    (fun v ->
      let d = Adjacency.degree g v and d' = Adjacency.degree gp v in
      if d > 4 * d' then say "degree: node %d has %d > 4*%d" v d d')
    (Fg.live_nodes t.fg);
  (* connectivity mirrors the centralized image *)
  let ref_g = Fg.graph t.fg in
  let ref_comp = List.length (Fg_graph.Connectivity.components ref_g) in
  let dist_comp = List.length (Fg_graph.Connectivity.components g) in
  if ref_comp <> dist_comp then
    say "connectivity: %d components distributed vs %d centralized" dist_comp ref_comp;
  List.rev !errs
