type agent = int

type 'msg envelope = { src : agent; dst : agent; bits : int; msg : 'msg }

type discipline = Synchronous | Asynchronous of Fg_graph.Rng.t * int

type stats = {
  rounds : int;
  messages : int;
  total_bits : int;
  max_message_bits : int;
  max_agent_bits : int;
  max_agent_messages : int;
}

type 'msg t = {
  discipline : discipline;
  (* due round -> envelopes (reversed); delivery scans min due round *)
  queue : (int, 'msg envelope list ref) Hashtbl.t;
  mutable in_flight : int;
  mutable now : int;  (* current round *)
  mutable rounds : int;  (* last round with a delivery *)
  mutable messages : int;
  mutable total_bits : int;
  mutable max_message_bits : int;
  agent_bits : (agent, int ref) Hashtbl.t;
  agent_msgs : (agent, int ref) Hashtbl.t;
}

let create ?(discipline = Synchronous) () =
  {
    discipline;
    queue = Hashtbl.create 64;
    in_flight = 0;
    now = 0;
    rounds = 0;
    messages = 0;
    total_bits = 0;
    max_message_bits = 0;
    agent_bits = Hashtbl.create 64;
    agent_msgs = Hashtbl.create 64;
  }

(* counters are [int ref]s updated in place, looked up exception-style:
   a [find_opt]+[replace] pair boxed an option and re-searched the bucket
   on every delivery, several times per message *)
let bump tbl agent delta =
  match Hashtbl.find tbl agent with
  | r -> r := !r + delta
  | exception Not_found -> Hashtbl.add tbl agent (ref delta)

let send t ~bits ~src ~dst msg =
  if bits < 0 then invalid_arg "Netsim.send: negative bits";
  let delay =
    match t.discipline with
    | Synchronous -> 1
    | Asynchronous (rng, max_delay) -> 1 + Fg_graph.Rng.int rng (max 1 max_delay)
  in
  let due = t.now + delay in
  let env = { src; dst; bits; msg } in
  (match Hashtbl.find t.queue due with
  | r -> r := env :: !r
  | exception Not_found -> Hashtbl.add t.queue due (ref [ env ]));
  t.in_flight <- t.in_flight + 1

let deliver t handler env =
  t.messages <- t.messages + 1;
  t.total_bits <- t.total_bits + env.bits;
  if env.bits > t.max_message_bits then t.max_message_bits <- env.bits;
  bump t.agent_bits env.src env.bits;
  bump t.agent_msgs env.src 1;
  if env.dst <> env.src then begin
    bump t.agent_bits env.dst env.bits;
    bump t.agent_msgs env.dst 1
  end;
  handler ~src:env.src ~dst:env.dst ~bits:env.bits env.msg

let run t ~handler ~max_rounds =
  let start = t.now in
  let messages0 = t.messages and bits0 = t.total_bits in
  while t.in_flight > 0 do
    if t.now - start >= max_rounds then
      failwith
        (Printf.sprintf "Netsim.run: protocol still active after %d rounds" max_rounds);
    t.now <- t.now + 1;
    match Hashtbl.find_opt t.queue t.now with
    | None -> ()
    | Some batch_ref ->
      Hashtbl.remove t.queue t.now;
      let batch = List.rev !batch_ref in
      t.in_flight <- t.in_flight - List.length batch;
      t.rounds <- t.now;
      List.iter (deliver t handler) batch;
      if Fg_obs.Trace.enabled () then begin
        let delivered = List.length batch in
        let bits = List.fold_left (fun a e -> a + e.bits) 0 batch in
        Fg_obs.Trace.count "netsim.messages" delivered;
        Fg_obs.Trace.count "netsim.bits" bits;
        Fg_obs.Trace.point "netsim.round"
          ~attrs:
            [
              ("round", Fg_obs.Event.Int t.now);
              ("delivered", Fg_obs.Event.Int delivered);
              ("bits", Fg_obs.Event.Int bits);
            ]
      end
  done;
  (* [run] may be invoked several times per repair (phase advancement);
     rounds since [start] telescope to the cumulative [t.rounds], so the
     per-span counter aggregates to the returned stats. *)
  Fg_obs.Trace.count "netsim.rounds" (t.now - start);
  if Fg_obs.Metrics.is_recording () then begin
    Fg_obs.Metrics.incr ~n:(t.now - start) "netsim.rounds";
    Fg_obs.Metrics.incr ~n:(t.messages - messages0) "netsim.messages";
    Fg_obs.Metrics.incr ~n:(t.total_bits - bits0) "netsim.bits"
  end;
  let max_tbl tbl = Hashtbl.fold (fun _ v m -> max !v m) tbl 0 in
  {
    rounds = t.rounds;
    messages = t.messages;
    total_bits = t.total_bits;
    max_message_bits = t.max_message_bits;
    max_agent_bits = max_tbl t.agent_bits;
    max_agent_messages = max_tbl t.agent_msgs;
  }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "%d rounds, %d msgs, %d bits (max msg %d bits, max node %d bits / %d msgs)"
    s.rounds s.messages s.total_bits s.max_message_bits s.max_agent_bits
    s.max_agent_messages

let stats_to_json (s : stats) =
  Printf.sprintf
    {|{"rounds":%d,"messages":%d,"total_bits":%d,"max_message_bits":%d,"max_agent_bits":%d,"max_agent_messages":%d}|}
    s.rounds s.messages s.total_bits s.max_message_bits s.max_agent_bits
    s.max_agent_messages
