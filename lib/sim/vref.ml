module Node_id = Fg_graph.Node_id
module Edge = Fg_core.Edge
module Rt = Fg_core.Rt

type kind = Real | Helper

type t = { proc : Node_id.t; edge : Edge.t; kind : kind }

let real proc edge = { proc; edge; kind = Real }
let helper proc edge = { proc; edge; kind = Helper }

let equal a b =
  Node_id.equal a.proc b.proc && Edge.equal a.edge b.edge && a.kind = b.kind

let compare a b =
  let c = Node_id.compare a.proc b.proc in
  if c <> 0 then c
  else
    let c = Edge.compare a.edge b.edge in
    if c <> 0 then c
    else compare (a.kind = Helper) (b.kind = Helper)

let pp ppf r =
  Format.fprintf ppf "%s(%a@%a)"
    (match r.kind with Real -> "real" | Helper -> "helper")
    Node_id.pp r.proc Edge.pp r.edge

let of_vnode (v : Rt.vnode) =
  {
    proc = v.Rt.half.Edge.Half.proc;
    edge = v.Rt.half.Edge.Half.edge;
    kind = (match v.Rt.kind with Rt.Leaf -> Real | Rt.Helper -> Helper);
  }

module Key = struct
  type nonrec t = t

  let equal = equal

  (* arithmetic mix instead of [Hashtbl.hash] over a built tuple — one of
     these runs per table probe on the protocol's message path *)
  let hash r =
    let h =
      (Edge.hash r.edge * 0x9e3779b1)
      + (r.proc * 2)
      + (match r.kind with Helper -> 1 | Real -> 0)
    in
    let h = (h lxor (h lsr 16)) * 0x85ebca6b in
    (h lxor (h lsr 13)) land max_int

  let compare = compare
end

module Tbl = Hashtbl.Make (Key)
module Set = Set.Make (Key)
