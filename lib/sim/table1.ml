module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency
module Edge = Fg_core.Edge
module Rt = Fg_core.Rt
module Fg = Fg_core.Forgiving_graph

type vref = Vref.t

let vref_equal = Vref.equal
let pp_vref = Vref.pp
let vref_of_vnode = Vref.of_vnode

type fields = {
  owner : Node_id.t;
  edge : Edge.t;
  endpoint : vref option;
  has_helper : bool;
  hparent : vref option;
  hleftchild : vref option;
  hrightchild : vref option;
  h_height : int;
  h_childrencount : int;
  h_representative : vref option;
}

type t = { by_proc : fields list Node_id.Tbl.t }

let fields_of fg ~owner ~other =
  let edge = Edge.make owner other in
  let ctx = Fg.ctx fg in
  let half = Edge.Half.make owner edge in
  let endpoint =
    if Fg.is_alive fg other then Some (Vref.real other edge)
    else
      match Rt.find_leaf ctx half with
      | None -> None
      | Some leaf -> Option.map vref_of_vnode leaf.Rt.parent
  in
  match Rt.find_helper ctx half with
  | None ->
    {
      owner;
      edge;
      endpoint;
      has_helper = false;
      hparent = None;
      hleftchild = None;
      hrightchild = None;
      h_height = 0;
      h_childrencount = 0;
      h_representative = None;
    }
  | Some h ->
    {
      owner;
      edge;
      endpoint;
      has_helper = true;
      hparent = Option.map vref_of_vnode h.Rt.parent;
      hleftchild = Option.map vref_of_vnode h.Rt.left;
      hrightchild = Option.map vref_of_vnode h.Rt.right;
      h_height = h.Rt.height;
      h_childrencount = h.Rt.leaves;
      h_representative = Some (vref_of_vnode h.Rt.rep);
    }

let of_fg fg =
  let by_proc = Node_id.Tbl.create 64 in
  let gp = Fg.gprime fg in
  let add owner =
    let rows =
      (* ascending fold + rev preserves the ascending-id row order *)
      List.rev
        (Adjacency.fold_neighbors
           (fun other acc -> fields_of fg ~owner ~other :: acc)
           gp owner [])
    in
    Node_id.Tbl.replace by_proc owner rows
  in
  List.iter add (Fg.live_nodes fg);
  { by_proc }

let rows t p = Option.value (Node_id.Tbl.find_opt t.by_proc p) ~default:[]

(* canonical string key for a directed (parent, child) virtual edge *)
let key parent child =
  let one (r : Vref.t) =
    Printf.sprintf "%d:%d-%d:%s" r.Vref.proc r.Vref.edge.Edge.a r.Vref.edge.Edge.b
      (match r.Vref.kind with Vref.Real -> "r" | Vref.Helper -> "h")
  in
  one parent ^ ">" ^ one child

module Ss = Set.Make (String)

(* tree edges as seen from the parent side (helper rows name children) and
   from the child side (leaf endpoints and helper hparents) *)
let edge_sets t =
  let from_parent = ref Ss.empty in
  let from_child = ref Ss.empty in
  let edge_tbl = Hashtbl.create 64 in
  let record_parent p c =
    from_parent := Ss.add (key p c) !from_parent;
    Hashtbl.replace edge_tbl (key p c) (p, c)
  in
  let record_child p c =
    from_child := Ss.add (key p c) !from_child;
    Hashtbl.replace edge_tbl (key p c) (p, c)
  in
  let visit_row (f : fields) =
    let real = Vref.real f.owner f.edge in
    let helper = Vref.helper f.owner f.edge in
    (* child side: my leaf's parent, when the edge leads into an RT *)
    (match f.endpoint with
    | Some ({ Vref.kind = Vref.Helper; _ } as p) -> record_child p real
    | Some { Vref.kind = Vref.Real; _ } | None -> ());
    if f.has_helper then begin
      (match f.hparent with Some p -> record_child p helper | None -> ());
      match (f.hleftchild, f.hrightchild) with
      | Some l, Some r ->
        record_parent helper l;
        record_parent helper r
      | _ -> ()
    end
  in
  Node_id.Tbl.iter (fun _ rows -> List.iter visit_row rows) t.by_proc;
  (!from_parent, !from_child, edge_tbl)

let reconstruct_tree_edges t =
  let from_parent, from_child, edge_tbl = edge_sets t in
  Ss.elements (Ss.union from_parent from_child)
  |> List.map (fun k -> Hashtbl.find edge_tbl k)

let actual_tree_edges fg =
  let acc = ref Ss.empty in
  let visit_root root =
    Rt.iter_tree
      (fun v ->
        let pv = vref_of_vnode v in
        let link c = acc := Ss.add (key pv (vref_of_vnode c)) !acc in
        Option.iter link v.Rt.left;
        Option.iter link v.Rt.right)
      root
  in
  List.iter visit_root (Rt.rt_roots (Fg.ctx fg));
  !acc

let check_complete t fg =
  let errs = ref [] in
  let from_parent, from_child, _ = edge_sets t in
  let say fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  (* symmetry: both sides of every tree edge name each other *)
  Ss.iter
    (fun k ->
      if not (Ss.mem k from_child) then say "edge %s known only to the parent" k)
    from_parent;
  Ss.iter
    (fun k ->
      if not (Ss.mem k from_parent) then say "edge %s known only to the child" k)
    from_child;
  (* completeness: the union reconstructs exactly the virtual forest *)
  let reconstructed = Ss.union from_parent from_child in
  let actual = actual_tree_edges fg in
  Ss.iter
    (fun k -> if not (Ss.mem k actual) then say "reconstructed extra edge %s" k)
    reconstructed;
  Ss.iter
    (fun k -> if not (Ss.mem k reconstructed) then say "missing edge %s" k)
    actual;
  (* field accuracy: helper caches match the structure *)
  let ctx = Fg.ctx fg in
  let check_row (f : fields) =
    if f.has_helper then begin
      match Rt.find_helper ctx (Edge.Half.make f.owner f.edge) with
      | None -> say "row %d/(%d,%d): has_helper but no helper" f.owner f.edge.Edge.a f.edge.Edge.b
      | Some h ->
        if h.Rt.height <> f.h_height then
          say "row %d/(%d,%d): height %d <> %d" f.owner f.edge.Edge.a f.edge.Edge.b
            f.h_height h.Rt.height;
        if h.Rt.leaves <> f.h_childrencount then
          say "row %d/(%d,%d): childrencount %d <> %d" f.owner f.edge.Edge.a
            f.edge.Edge.b f.h_childrencount h.Rt.leaves;
        match f.h_representative with
        | Some r when vref_equal r (vref_of_vnode h.Rt.rep) -> ()
        | _ -> say "row %d/(%d,%d): representative mismatch" f.owner f.edge.Edge.a f.edge.Edge.b
    end
  in
  Node_id.Tbl.iter (fun _ rows -> List.iter check_row rows) t.by_proc;
  List.rev !errs
