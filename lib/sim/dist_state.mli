(** Per-processor local state for the fully distributed implementation.

    Each live processor holds, for every incident G'-edge, the Table-1
    fields — nothing else. The repair protocol ({!Dist_protocol}) mutates
    these fields only from within message handlers, so the final network
    is assembled with strictly distance-1 knowledge. The derived actual
    network and the virtual forest are reconstructed from the union of
    the fields for verification. *)

module Node_id := Fg_graph.Node_id
module Edge := Fg_core.Edge

(** Table-1 row held by [owner] for edge [(owner, x)]. *)
type fields = {
  owner : Node_id.t;
  edge : Edge.t;
  mutable other_dead : bool;
      (** the other endpoint died; my side is a leaf in an RT *)
  mutable endpoint : Vref.t option;
      (** live real other end, or my leaf's RT parent; [None] while the
          leaf is the root of its RT *)
  mutable has_helper : bool;
  mutable h_parent : Vref.t option;
  mutable h_left : Vref.t option;
  mutable h_right : Vref.t option;
  mutable h_height : int;
  mutable h_count : int;
  mutable h_rep : Vref.t option;
}

type t

val create : unit -> t

(** [add_processor t p] registers a live processor. *)
val add_processor : t -> Node_id.t -> unit

(** [add_edge t u v] records a new live-live G'-edge on both sides. *)
val add_edge : t -> Node_id.t -> Node_id.t -> unit

(** [drop_processor t p] removes a dead processor's state entirely. *)
val drop_processor : t -> Node_id.t -> unit

val is_alive : t -> Node_id.t -> bool
val live_procs : t -> Node_id.t list

(** [get t p e] is processor [p]'s row for edge [e]; raises [Not_found]
    if absent. *)
val get : t -> Node_id.t -> Edge.t -> fields

val find : t -> Node_id.t -> Edge.t -> fields option

(** [rows t p] lists all of [p]'s rows. *)
val rows : t -> Node_id.t -> fields list

(** [ensure_row t p e ~other_dead] creates a fresh row if missing. *)
val ensure_row : t -> Node_id.t -> Edge.t -> other_dead:bool -> fields

(** The actual network derived from local fields: live-live direct edges
    plus the image of every parent/child virtual link (self-loops
    dropped). *)
val derived_graph : t -> Fg_graph.Adjacency.t

(** Structural verification of the distributed state:
    - cross-processor symmetry (every parent/child link is named by both
      sides);
    - every RT reconstructed from the fields is a well-formed haft with
      consistent heights/counts;
    - representative validity per subtree root.
    Returns human-readable violations. *)
val check : t -> string list

(** The partition of leaf vnodes into RTs, as sorted lists of sorted
    [(proc, edge)] leaves — used to compare against the centralized
    implementation (the partition is deterministic even when tie-breaks
    differ). Leaves whose RT is a singleton appear as singleton classes. *)
val leaf_partition : t -> (Node_id.t * Edge.t) list list

(** [class_of_leaf t p e] is the single RT class containing processor
    [p]'s leaf for edge [e]: parent links are walked to the root and the
    root's leaf descendants returned sorted, touching only that tree's
    rows — O(class size), vs {!leaf_partition}'s full reconstruction.
    [None] if [p] holds no leaf for [e] (or a named row is missing, which
    {!check} reports in full). Used by {!Dist_engine.verify} to cross-check
    one repair against the centralized reference. *)
val class_of_leaf : t -> Node_id.t -> Edge.t -> (Node_id.t * Edge.t) list option
