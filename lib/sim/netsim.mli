(** Generic synchronous message-passing kernel.

    Models the network of Fig. 1: messages sent in round [r] are delivered
    at round [r + 1] (unit edge latency), never lost or corrupted.
    Handlers run with unlimited local computation and may send further
    messages, which are delivered the following round. The kernel accounts
    every message's payload size in bits, per sender and receiver, which is
    exactly the cost model of Lemma 4 ("communication per node" and
    "recovery time"). Agents are plain integers. *)

type agent = int

type 'msg t

(** Message-delivery discipline. [Synchronous] is the default unit-latency
    model of Fig. 1. [Asynchronous (rng, max_delay)] delays each message
    uniformly by 1..max_delay rounds — messages may overtake each other,
    which is how we test that a protocol does not depend on delivery
    order. Quiescence detection and cost accounting are unchanged. *)
type discipline = Synchronous | Asynchronous of Fg_graph.Rng.t * int

type stats = {
  rounds : int;  (** rounds until quiescence *)
  messages : int;  (** total messages delivered *)
  total_bits : int;
  max_message_bits : int;
  max_agent_bits : int;  (** largest per-agent sent+received bit count *)
  max_agent_messages : int;  (** largest per-agent sent+received count *)
}

(** [create ()] is a synchronous network; pass [discipline] for delays. *)
val create : ?discipline:discipline -> unit -> 'msg t

(** [send t ~bits ~src ~dst msg] enqueues a message for delivery next
    round. [bits] is the payload size ([Invalid_argument] if negative). *)
val send : 'msg t -> bits:int -> src:agent -> dst:agent -> 'msg -> unit

(** [run t ~handler ~max_rounds] delivers messages round by round, invoking
    [handler ~src ~dst ~bits msg] for each; handlers may {!send}. Stops when
    no messages are in flight, or raises [Failure] after [max_rounds]
    (protocol divergence guard). Returns the accumulated statistics. *)
val run :
  'msg t ->
  handler:(src:agent -> dst:agent -> bits:int -> 'msg -> unit) ->
  max_rounds:int ->
  stats

(** [pp_stats] renders the Lemma-4 quantities on one line; [stats_to_json]
    is a compact JSON object (plain string, no dependencies) so the CLI,
    harness, and the {!Fg_obs} JSONL sink can log stats uniformly. *)
val pp_stats : Format.formatter -> stats -> unit

val stats_to_json : stats -> string
