(** Public driver for the fully distributed Forgiving Graph.

    Maintains the per-processor Table-1 state ({!Dist_state}) and runs
    every deletion through the message-level protocol
    ({!Dist_protocol.delete}). A centralized {!Fg_core.Forgiving_graph}
    shadows the same operation sequence so tests can compare: the RT leaf
    partitions must be identical (they are determined by the merge {e
    sets}, not the tie-breaks), while helper placement may differ — both
    must satisfy all bounds. *)

module Node_id := Fg_graph.Node_id

type t

val create : Fg_graph.Adjacency.t -> t
val insert : t -> Node_id.t -> Node_id.t list -> unit

(** [delete t v] runs the distributed repair; returns the measured cost. *)
val delete : t -> Node_id.t -> Netsim.stats

(** The healed network derived from the distributed fields. *)
val graph : t -> Fg_graph.Adjacency.t

val state : t -> Dist_state.t

(** The shadowing centralized structure (same operation history). *)
val reference : t -> Fg_core.Forgiving_graph.t

(** Delta verification: audits only what changed since the last call,
    O(Δ) per recorded event instead of O(state). Each [delete] eagerly
    compares its repair's RT leaf class against the centralized reference
    (via {!Dist_state.class_of_leaf} — the class is determined by the
    merge sets, so it must match exactly, but only until a later repair
    absorbs it); [verify] then drains those results plus the per-event
    facts that stay true (victims dead, inserted nodes present and wired)
    and rechecks the 4x degree bound on touched processors only. Returns
    violations ([] = ok) and clears the pending log. *)
val verify : t -> string list

(** The original whole-state audit: distributed structural validity
    ({!Dist_state.check}), full leaf-partition equality with the
    centralized reference, and degree/connectivity bounds over {e every}
    live processor. Slower than {!verify}; use periodically or at the end
    of a run. *)
val verify_full : t -> string list
