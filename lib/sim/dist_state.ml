module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency
module Edge = Fg_core.Edge

type fields = {
  owner : Node_id.t;
  edge : Edge.t;
  mutable other_dead : bool;
  mutable endpoint : Vref.t option;
  mutable has_helper : bool;
  mutable h_parent : Vref.t option;
  mutable h_left : Vref.t option;
  mutable h_right : Vref.t option;
  mutable h_height : int;
  mutable h_count : int;
  mutable h_rep : Vref.t option;
}

type t = { procs : fields Edge.Tbl.t Node_id.Tbl.t }

let create () = { procs = Node_id.Tbl.create 64 }

let add_processor t p =
  if not (Node_id.Tbl.mem t.procs p) then Node_id.Tbl.replace t.procs p (Edge.Tbl.create 8)

let is_alive t p = Node_id.Tbl.mem t.procs p
let live_procs t = Node_id.Tbl.fold (fun p _ acc -> p :: acc) t.procs []
let drop_processor t p = Node_id.Tbl.remove t.procs p

let fresh_row owner edge ~other_dead =
  {
    owner;
    edge;
    other_dead;
    endpoint = (if other_dead then None else Some (Vref.real (Edge.other edge owner) edge));
    has_helper = false;
    h_parent = None;
    h_left = None;
    h_right = None;
    h_height = 0;
    h_count = 0;
    h_rep = None;
  }

let ensure_row t p e ~other_dead =
  let tbl = Node_id.Tbl.find t.procs p in
  match Edge.Tbl.find_opt tbl e with
  | Some f -> f
  | None ->
    let f = fresh_row p e ~other_dead in
    Edge.Tbl.replace tbl e f;
    f

let add_edge t u v =
  add_processor t u;
  add_processor t v;
  let e = Edge.make u v in
  ignore (ensure_row t u e ~other_dead:false);
  ignore (ensure_row t v e ~other_dead:false)

let get t p e = Edge.Tbl.find (Node_id.Tbl.find t.procs p) e

let find t p e =
  match Node_id.Tbl.find_opt t.procs p with
  | None -> None
  | Some tbl -> Edge.Tbl.find_opt tbl e

let rows t p =
  match Node_id.Tbl.find_opt t.procs p with
  | None -> []
  | Some tbl -> Edge.Tbl.fold (fun _ f acc -> f :: acc) tbl []

let derived_graph t =
  let g = Adjacency.create () in
  Node_id.Tbl.iter (fun p _ -> Adjacency.add_node g p) t.procs;
  let link p (r : Vref.t) = if not (Node_id.equal p r.Vref.proc) then Adjacency.add_edge g p r.Vref.proc in
  let visit_row (f : fields) =
    (match f.endpoint with
    | Some ({ Vref.kind = Vref.Real; _ } as r) when not f.other_dead ->
      (* live-live direct edge *)
      link f.owner r
    | Some r when f.other_dead -> link f.owner r (* leaf -> RT parent *)
    | _ -> ());
    if f.has_helper then begin
      Option.iter (link f.owner) f.h_parent;
      Option.iter (link f.owner) f.h_left;
      Option.iter (link f.owner) f.h_right
    end
  in
  Node_id.Tbl.iter (fun _ tbl -> Edge.Tbl.iter (fun _ f -> visit_row f) tbl) t.procs;
  g

(* ---- reconstruction and verification ---- *)

(* a reconstructed virtual node *)
type rnode = {
  me : Vref.t;
  parent : Vref.t option;
  left : Vref.t option;
  right : Vref.t option;
  height : int;
  count : int;
  rep : Vref.t option;
}

let reconstruct t =
  let nodes = Vref.Tbl.create 64 in
  let visit_row (f : fields) =
    if f.other_dead then
      Vref.Tbl.replace nodes (Vref.real f.owner f.edge)
        {
          me = Vref.real f.owner f.edge;
          parent = f.endpoint;
          left = None;
          right = None;
          height = 0;
          count = 1;
          rep = Some (Vref.real f.owner f.edge);
        };
    if f.has_helper then
      Vref.Tbl.replace nodes (Vref.helper f.owner f.edge)
        {
          me = Vref.helper f.owner f.edge;
          parent = f.h_parent;
          left = f.h_left;
          right = f.h_right;
          height = f.h_height;
          count = f.h_count;
          rep = f.h_rep;
        }
  in
  Node_id.Tbl.iter (fun _ tbl -> Edge.Tbl.iter (fun _ f -> visit_row f) tbl) t.procs;
  nodes

let check t =
  let errs = ref [] in
  let say fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let nodes = reconstruct t in
  let lookup r = Vref.Tbl.find_opt nodes r in
  let str r = Format.asprintf "%a" Vref.pp r in
  (* symmetry: every named neighbour exists and names back *)
  let check_node (n : rnode) =
    (match n.parent with
    | None -> ()
    | Some p -> (
      match lookup p with
      | None -> say "%s names missing parent %s" (str n.me) (str p)
      | Some pn ->
        let names_me =
          (match pn.left with Some l -> Vref.equal l n.me | None -> false)
          || match pn.right with Some r -> Vref.equal r n.me | None -> false
        in
        if not names_me then say "%s's parent %s does not name it" (str n.me) (str p)));
    let check_child side = function
      | None -> ()
      | Some c -> (
        match lookup c with
        | None -> say "%s names missing %s child %s" (str n.me) side (str c)
        | Some cn -> (
          match cn.parent with
          | Some p when Vref.equal p n.me -> ()
          | _ -> say "%s's %s child %s does not name it as parent" (str n.me) side (str c)))
    in
    check_child "left" n.left;
    check_child "right" n.right;
    match (n.left, n.right) with
    | Some _, None | None, Some _ -> say "%s has exactly one child" (str n.me)
    | _ -> ()
  in
  Vref.Tbl.iter (fun _ n -> check_node n) nodes;
  if !errs <> [] then List.rev !errs
  else begin
    (* per-tree structural checks *)
    let rec subtree (n : rnode) =
      (* returns (count, height, leaves, ok) recomputed *)
      match (n.left, n.right) with
      | None, None ->
        if n.me.Vref.kind <> Vref.Real then say "%s is a childless helper" (str n.me);
        (1, 0, [ n.me ], true)
      | Some l, Some r ->
        let ln = Vref.Tbl.find nodes l and rn = Vref.Tbl.find nodes r in
        let lc, lh, ll, lok = subtree ln in
        let rc, rh, rl, rok = subtree rn in
        let count = lc + rc and height = 1 + max lh rh in
        if count <> n.count then
          say "%s caches count %d, actual %d" (str n.me) n.count count;
        if height <> n.height then
          say "%s caches height %d, actual %d" (str n.me) n.height height;
        (* haft property: left child complete with at least half *)
        if lc <> 1 lsl lh then say "%s: left child not complete" (str n.me);
        if 2 * lc < count then say "%s: left child below half" (str n.me);
        (count, height, ll @ rl, lok && rok)
      | _ -> (0, 0, [], false)
    in
    let roots = Vref.Tbl.fold (fun _ n acc -> if n.parent = None then n :: acc else acc) nodes [] in
    let seen_leaves = Vref.Tbl.create 64 in
    List.iter
      (fun root ->
        let _, _, leaves, _ = subtree root in
        List.iter
          (fun l ->
            if Vref.Tbl.mem seen_leaves l then say "leaf %s in two trees" (str l)
            else Vref.Tbl.replace seen_leaves l ())
          leaves;
        (* the root's rep must be a free leaf of its subtree: a leaf whose
           helper either does not exist or lies outside the subtree *)
        match root.rep with
        | None -> if root.me.Vref.kind = Vref.Helper then say "root %s lacks a rep" (str root.me)
        | Some rep ->
          if not (List.exists (Vref.equal rep) leaves) then
            say "root %s's rep %s is not among its leaves" (str root.me) (str rep))
      roots;
    (* no orphan leaf vnodes outside any tree *)
    Vref.Tbl.iter
      (fun vr (n : rnode) ->
        if n.me.Vref.kind = Vref.Real && n.parent = None && not (Vref.Tbl.mem seen_leaves vr)
        then
          (* a singleton leaf is its own RT: fine *)
          ())
      nodes;
    List.rev !errs
  end

let cmp_leaf (p1, e1) (p2, e2) =
  let c = Node_id.compare p1 p2 in
  if c <> 0 then c else Edge.compare e1 e2

(* Per-repair variant of [leaf_partition]: follow parent links from one
   leaf to its root, then collect the root's leaf descendants. Touches
   only that RT's rows, so it is O(class size) where [leaf_partition]
   reconstructs every tree. *)
let class_of_leaf t p e =
  match find t p e with
  | Some f when f.other_dead -> (
    let parent_of (vr : Vref.t) =
      let row = get t vr.Vref.proc vr.Vref.edge in
      match vr.Vref.kind with
      | Vref.Real -> row.endpoint
      | Vref.Helper -> row.h_parent
    in
    let rec root_of vr =
      match parent_of vr with None -> vr | Some up -> root_of up
    in
    let rec leaves vr acc =
      match vr.Vref.kind with
      | Vref.Real -> (vr.Vref.proc, vr.Vref.edge) :: acc
      | Vref.Helper ->
        let row = get t vr.Vref.proc vr.Vref.edge in
        let acc = match row.h_right with Some r -> leaves r acc | None -> acc in
        (match row.h_left with Some l -> leaves l acc | None -> acc)
    in
    try Some (List.sort cmp_leaf (leaves (root_of (Vref.real p e)) []))
    with Not_found -> None (* a named row is missing: let [check] report it *))
  | _ -> None

let leaf_partition t =
  let nodes = reconstruct t in
  let parent_of (n : rnode) = n.parent in
  let rec root_of n =
    match parent_of n with
    | None -> n.me
    | Some p -> root_of (Vref.Tbl.find nodes p)
  in
  let classes = Vref.Tbl.create 16 in
  Vref.Tbl.iter
    (fun vr n ->
      if vr.Vref.kind = Vref.Real then begin
        let r = root_of n in
        let existing = Option.value (Vref.Tbl.find_opt classes r) ~default:[] in
        Vref.Tbl.replace classes r ((vr.Vref.proc, vr.Vref.edge) :: existing)
      end)
    nodes;
  Vref.Tbl.fold (fun _ ls acc -> List.sort cmp_leaf ls :: acc) classes []
  |> List.sort (fun a b ->
         match (a, b) with
         | x :: _, y :: _ -> cmp_leaf x y
         | [], _ -> -1
         | _, [] -> 1)
