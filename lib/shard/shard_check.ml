(* Paranoid audit of one sharded round: the merged delta must pass the
   flat engine's O(Δ) transition check, and the per-shard stage journals
   must conserve vnode counts against it — what the shards journalled is
   exactly what the commit reported. Per-stage refcount ops are below
   delta granularity (a net-zero edge never surfaces), so the edge-level
   checks live on the merged stream only. *)

module Fg = Fg_core.Forgiving_graph
module Rt = Fg_core.Rt
module Delta = Fg_core.Delta
module Invariants = Fg_core.Invariants

type violation = string

let check_round fg ~delta ~(info : Shard_engine.round_info) =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  List.iter (fun v -> err "merged delta: %s" v) (Invariants.check_delta fg delta);
  if not info.ri_serial then begin
    (* conservation: sum of journalled vnode churn = merged delta's *)
    let created = ref 0 and discarded = ref 0 in
    Array.iter
      (fun (_, st) ->
        let c, d, _ = Rt.stage_stats st in
        created := !created + c;
        discarded := !discarded + d)
      info.ri_staged;
    if !created <> delta.Delta.vnodes_created then
      err "stages journalled %d created vnodes, delta reports %d" !created
        delta.Delta.vnodes_created;
    if !discarded <> delta.Delta.vnodes_discarded then
      err "stages journalled %d discarded vnodes, delta reports %d" !discarded
        delta.Delta.vnodes_discarded;
    (* every journalled image op names a node the engine has seen *)
    let seen = Fg.num_seen fg in
    Array.iteri
      (fun i (shard, st) ->
        List.iter
          (fun (u, v, _) ->
            if u < 0 || u >= seen || v < 0 || v >= seen then
              err "stage %d (shard %d): image op on unknown node (%d, %d)" i shard u v)
          (Rt.stage_ops st))
      info.ri_staged
  end;
  List.rev !errs
