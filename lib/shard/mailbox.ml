(* Single-producer single-consumer ring buffer: the per-shard mailbox.
   Unbounded monotonic head/tail counters index a power-of-two buffer;
   the producer writes the slot then publishes with an atomic tail store,
   the consumer reads the tail before touching the slot — the classic
   SPSC protocol, race-free under the OCaml memory model. Capacity is
   fixed while both sides run; [ensure_capacity] may grow it only at a
   quiescent point (the coordinator sizes inboxes to the round's group
   count before the parallel phase starts).

   The produce side is two-phase — [reserve] claims the tail slot,
   [commit] writes it and publishes — so the slot-write/tail-publish
   ordering that makes the protocol safe is an explicit protocol object
   the fg_race interleaving checker can drive: the consumer must never
   observe a reserved-but-uncommitted slot. [push] is reserve+commit.
   Like the snapshot store, the whole protocol is a functor over
   {!Fg_graph.Atomic_intf.S}; the bottom [include] is the production
   instantiation. *)

module type S = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  val push : 'a t -> 'a -> bool
  val pop : 'a t -> 'a option
  val reserve : 'a t -> int option
  val commit : 'a t -> int -> 'a -> unit
  val abort : 'a t -> int -> unit
  val length : 'a t -> int
  val is_empty : 'a t -> bool
  val capacity : 'a t -> int
  val high_water : 'a t -> int
  val ensure_capacity : 'a t -> int -> unit
end

module Make (A : Fg_graph.Atomic_intf.S) = struct
  module Atomic = A
  (* shadowing [Stdlib.Atomic]: everything below must go through the
     functor argument so a traced instantiation sees every operation *)

  type 'a t = {
    mutable buf : 'a option array; (* fg-lint: single-writer producer — grown at quiescence only *)
    head : int Atomic.t;  (* consumer cursor *)
    tail : int Atomic.t;  (* producer cursor *)
    mutable pending : bool; (* fg-lint: single-writer producer — reserve/commit bracket *)
    mutable high_water : int; (* fg-lint: single-writer producer *)
  }

  let rec pow2 n k = if k >= n then k else pow2 n (2 * k)

  let create ?(capacity = 64) () =
    if capacity < 1 then invalid_arg "Mailbox.create: capacity must be >= 1";
    {
      buf = Array.make (pow2 capacity 1) None;
      head = Atomic.make 0;
      tail = Atomic.make 0;
      pending = false;
      high_water = 0;
    }

  let capacity t = Array.length t.buf
  let length t = Atomic.get t.tail - Atomic.get t.head
  let is_empty t = length t = 0
  let high_water t = t.high_water

  (* quiescent-only: no concurrent push/pop may be in flight *)
  let ensure_capacity t n =
    if t.pending then invalid_arg "Mailbox.ensure_capacity: a slot is reserved";
    if n > Array.length t.buf then begin
      let cap = pow2 n (Array.length t.buf) in
      let nbuf = Array.make cap None in
      let h = Atomic.get t.head and tl = Atomic.get t.tail in
      let omask = Array.length t.buf - 1 in
      for i = h to tl - 1 do
        nbuf.(i land (cap - 1)) <- t.buf.(i land omask)
      done;
      t.buf <- nbuf
    end

  (* producer-only: claim the next slot without publishing it. The tail
     store in [commit] is what makes the value visible to the consumer;
     between reserve and commit the slot is producer-private. *)
  let reserve t =
    if t.pending then invalid_arg "Mailbox.reserve: slot already reserved";
    let tl = Atomic.get t.tail in
    let occupancy = tl - Atomic.get t.head + 1 in
    if occupancy > Array.length t.buf then None
    else begin
      t.pending <- true;
      Some tl
    end

  let check_reserved t slot op =
    if not t.pending then invalid_arg ("Mailbox." ^ op ^ ": no reserved slot");
    if slot <> Atomic.get t.tail then invalid_arg ("Mailbox." ^ op ^ ": stale slot")

  (* producer-only: write the reserved slot, then publish it with the
     atomic tail store (the SPSC happens-before edge). *)
  let commit t slot x =
    check_reserved t slot "commit";
    t.buf.(slot land (Array.length t.buf - 1)) <- Some x;
    t.pending <- false;
    Atomic.set t.tail (slot + 1);
    let occupancy = slot + 1 - Atomic.get t.head in
    if occupancy > t.high_water then t.high_water <- occupancy

  (* producer-only: release a reserved slot without publishing anything *)
  let abort t slot =
    check_reserved t slot "abort";
    t.pending <- false

  let push t x =
    match reserve t with
    | None -> false
    | Some slot ->
      commit t slot x;
      true

  let pop t =
    let h = Atomic.get t.head in
    if h = Atomic.get t.tail then None
    else begin
      let i = h land (Array.length t.buf - 1) in
      let x = t.buf.(i) in
      t.buf.(i) <- None;
      Atomic.set t.head (h + 1);
      x
    end
end

include Make (Atomic)
