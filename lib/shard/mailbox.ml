(* Single-producer single-consumer ring buffer: the per-shard mailbox.
   Unbounded monotonic head/tail counters index a power-of-two buffer;
   the producer writes the slot then publishes with an atomic tail store,
   the consumer reads the tail before touching the slot — the classic
   SPSC protocol, race-free under the OCaml memory model. Capacity is
   fixed while both sides run; [reserve] may grow it only at a quiescent
   point (the coordinator sizes inboxes to the round's group count before
   the parallel phase starts). *)

type 'a t = {
  mutable buf : 'a option array;  (* length is a power of two *)
  head : int Atomic.t;  (* consumer cursor *)
  tail : int Atomic.t;  (* producer cursor *)
  mutable high_water : int;  (* max occupancy ever seen (producer side) *)
}

let rec pow2 n k = if k >= n then k else pow2 n (2 * k)

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Mailbox.create: capacity must be >= 1";
  {
    buf = Array.make (pow2 capacity 1) None;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    high_water = 0;
  }

let capacity t = Array.length t.buf
let length t = Atomic.get t.tail - Atomic.get t.head
let is_empty t = length t = 0
let high_water t = t.high_water

(* quiescent-only: no concurrent push/pop may be in flight *)
let reserve t n =
  if n > Array.length t.buf then begin
    let cap = pow2 n (Array.length t.buf) in
    let nbuf = Array.make cap None in
    let h = Atomic.get t.head and tl = Atomic.get t.tail in
    let omask = Array.length t.buf - 1 in
    for i = h to tl - 1 do
      nbuf.(i land (cap - 1)) <- t.buf.(i land omask)
    done;
    t.buf <- nbuf
  end

let push t x =
  let tl = Atomic.get t.tail in
  let occupancy = tl - Atomic.get t.head + 1 in
  if occupancy > Array.length t.buf then false
  else begin
    t.buf.(tl land (Array.length t.buf - 1)) <- Some x;
    Atomic.set t.tail (tl + 1);
    if occupancy > t.high_water then t.high_water <- occupancy;
    true
  end

let pop t =
  let h = Atomic.get t.head in
  if h = Atomic.get t.tail then None
  else begin
    let i = h land (Array.length t.buf - 1) in
    let x = t.buf.(i) in
    t.buf.(i) <- None;
    Atomic.set t.head (h + 1);
    x
  end
