(** Shard ownership of the node-id space.

    Ids are partitioned block-cyclically: id [i] belongs to shard
    [(i / block) mod shards], so consecutive ids share a shard (heals of
    clustered victims stay local) while blocks interleave across shards
    (load balance under adversaries that target an id range). The
    materialised lookup is a {!Fg_graph.Interval_map} — one run per
    block, O(log runs) lookup, no per-node array — and grows on demand
    as insertions push the id frontier ("ownership under node churn"):
    growth re-tabulates, so the run encoding stays canonical. *)

type t

(** [create ?block ~shards ~capacity ()] covers ids [0 .. capacity-1]
    (at least one block). Default [block] is 64 ids. Raises
    [Invalid_argument] when [shards] or [block] is non-positive. *)
val create : ?block:int -> shards:int -> capacity:int -> unit -> t

val shards : t -> int
val block : t -> int

(** Ids currently covered; {!owner} grows this on demand. *)
val length : t -> int

(** [owner t id] is the shard owning [id], growing the map if [id] lies
    beyond the current frontier. Raises [Invalid_argument] on a negative
    id. *)
val owner : t -> int -> int

(** [ensure t n] pre-grows the map to cover ids [0 .. n-1]. *)
val ensure : t -> int -> unit

(** The underlying run-length map (tests, canonical-runs property). *)
val interval_map : t -> int Fg_graph.Interval_map.t

val run_count : t -> int
val iter_runs : (lo:int -> hi:int -> int -> unit) -> t -> unit
