(* Chord-lite over a fixed shard population: hashed ring positions,
   successor lists, heartbeat-driven suspicion. Time is a logical tick —
   [tick] is one heartbeat-plus-stabilize round — so membership behaviour
   is deterministic and testable, and the same state machine later drives
   real multi-process shards off a wall clock. *)

let ring_bits = 30
let ring_mask = (1 lsl ring_bits) - 1

(* splitmix64-style finalizer: well-spread, deterministic positions *)
let hash_to_ring seed x =
  let h = ref (((x + 1) * 0x9E3779B97F4A7C1) lxor (seed * 0xBF58476D1CE4E5B)) in
  h := (!h lxor (!h lsr 30)) * 0x3F58476D1CE4E5B9;
  h := (!h lxor (!h lsr 27)) * 0x94D049BB133111E;
  h := !h lxor (!h lsr 31);
  !h land ring_mask

type t = {
  shards : int;
  seed : int;
  pos : int array;  (* shard -> ring position (distinct) *)
  order : int array;  (* shard indices sorted by position *)
  rank : int array;  (* shard -> index into [order] *)
  nsucc : int;
  timeout : int;
  frozen : bool array;  (* fault injection: a frozen shard stops heartbeating *)
  missed : int array;  (* consecutive missed heartbeats *)
  susp : bool array;
  mutable hooks : (int -> unit) list;
  mutable ticks : int;
  mutable stabilizations : int;
}

let create ?(successors = 2) ?(timeout = 3) ~shards ~seed () =
  if shards < 1 then invalid_arg "Shard_ring.create: shards must be >= 1";
  if successors < 1 then invalid_arg "Shard_ring.create: successors must be >= 1";
  if timeout < 1 then invalid_arg "Shard_ring.create: timeout must be >= 1";
  let pos = Array.make shards 0 in
  let used = Hashtbl.create shards in
  for s = 0 to shards - 1 do
    let p = ref (hash_to_ring seed s) in
    while Hashtbl.mem used !p do
      p := (!p + 1) land ring_mask
    done;
    Hashtbl.replace used !p ();
    pos.(s) <- !p
  done;
  let order = Array.init shards Fun.id in
  Array.sort (fun a b -> compare pos.(a) pos.(b)) order;
  let rank = Array.make shards 0 in
  Array.iteri (fun i s -> rank.(s) <- i) order;
  {
    shards;
    seed;
    pos;
    order;
    rank;
    nsucc = min successors (max 1 (shards - 1));
    timeout;
    frozen = Array.make shards false;
    missed = Array.make shards 0;
    susp = Array.make shards false;
    hooks = [];
    ticks = 0;
    stabilizations = 0;
  }

let shards t = t.shards
let position t s = t.pos.(s)
let suspected t s = t.susp.(s)
let frozen t s = t.frozen.(s)
let ticks t = t.ticks
let stabilizations t = t.stabilizations
let on_suspect t f = t.hooks <- f :: t.hooks

let suspect t s =
  if not t.susp.(s) then begin
    t.susp.(s) <- true;
    List.iter (fun f -> f s) t.hooks
  end

(* immediate failure evidence (e.g. a dispatch that found the shard dead):
   no need to wait out the heartbeat timeout *)
let report t s = suspect t s

let freeze t s = t.frozen.(s) <- true

let unfreeze t s =
  t.frozen.(s) <- false;
  t.missed.(s) <- 0

(* One heartbeat-plus-stabilize round: live shards heartbeat (clearing
   suspicion — the rejoin path), frozen shards miss, and a shard missing
   [timeout] consecutive beats becomes suspected. The stabilize pass is
   counted; with a static population the successor lists it would refresh
   are already exact. *)
let tick t =
  t.ticks <- t.ticks + 1;
  for s = 0 to t.shards - 1 do
    if t.frozen.(s) then begin
      t.missed.(s) <- t.missed.(s) + 1;
      if t.missed.(s) >= t.timeout then suspect t s
    end
    else begin
      t.missed.(s) <- 0;
      t.susp.(s) <- false
    end
  done;
  t.stabilizations <- t.stabilizations + 1

let successors t s =
  let r = t.rank.(s) in
  List.init t.nsucc (fun i -> t.order.((r + 1 + i) mod t.shards))

(* first non-suspected shard at or clockwise from ring position [h] *)
let live_at t h =
  let n = t.shards in
  (* binary search: first rank with pos >= h, else wrap to 0 *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.pos.(t.order.(mid)) < h then lo := mid + 1 else hi := mid
  done;
  let start = if !lo = n then 0 else !lo in
  let rec walk i steps =
    if steps = n then t.order.(start) (* every shard suspected: degenerate *)
    else
      let s = t.order.(i mod n) in
      if t.susp.(s) then walk (i + 1) (steps + 1) else s
  in
  walk start 0

let route t key = live_at t (hash_to_ring t.seed key)

(* the successor-list failover: first live successor of [s], or [s] when
   the whole list is down *)
let delegate t s =
  let rec go = function
    | [] -> s
    | x :: rest -> if t.susp.(x) || x = s then go rest else x
  in
  if not t.susp.(s) then s
  else go (List.init (t.shards - 1) (fun i -> t.order.((t.rank.(s) + 1 + i) mod t.shards)))
