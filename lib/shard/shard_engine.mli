(** The sharded heal engine: node-id space partitioned block-cyclically
    across K shards ({!Shard_map}), one worker domain per shard, ring
    membership and failover from {!Shard_ring}, and the flat engine's
    staged round machinery underneath
    ({!Fg_core.Forgiving_graph.delete_round}).

    Shard-local heals run with zero coordination: each shard's worker
    drains its SPSC inbox and journals heals on a private executor.
    Cross-shard groups ride the same mailboxes — the owner-ordered
    commit replays every journal in canonical group order, so the final
    graph, G' image and delta stream are {e byte-identical} to the flat
    engine for any shard count.

    When tracing, metrics recording or profiling is live, rounds fall
    back to serial execution on the coordinator (the observability
    sinks are single-domain); the result is the same either way. The
    engine always runs the paper's representative policy
    ([Rt.Paper]). *)

type t

(** Per-shard load counters, updated every round. *)
type shard_stat = {
  mutable heals : int;  (** repair groups healed by this shard *)
  mutable local_groups : int;
      (** groups whose victims and fresh-leaf processors were all
          home-owned *)
  mutable cross_groups : int;
  mutable retries : int;  (** groups re-homed here by the retry sweep *)
  mutable heal_ns : int;  (** cumulative heal wall time *)
  mutable mbox_depth : int;  (** groups assigned in the last round *)
  mutable mbox_hw : int;  (** lifetime max assignment depth *)
}

(** What the last round did — the audit surface for
    {!Shard_check.check_round}. *)
type round_info = {
  ri_groups : int;
  ri_serial : bool;  (** healed directly on the coordinator *)
  ri_retried : int;  (** groups rerouted off a dead shard *)
  ri_staged : (int * Fg_core.Rt.stage) array;
      (** (shard, journal) per staged group, canonical commit order;
          empty for serial rounds *)
}

(** A shard's published slice: CSR snapshots of its incident edges in G
    and G'. *)
type shard_snapshot = { s_csr : Fg_graph.Csr.t; s_gprime_csr : Fg_graph.Csr.t }

(** [create ?shards ?block ?seed ?successors ?timeout g] builds the
    engine over initial graph [g]. [shards] (default 1, max 1024) fixes
    the partition width; [block] the ownership block size
    ({!Shard_map}); [seed], [successors] and [timeout] parameterise the
    membership ring ({!Shard_ring.create}). *)
val create :
  ?shards:int ->
  ?block:int ->
  ?seed:int ->
  ?successors:int ->
  ?timeout:int ->
  Fg_graph.Adjacency.t ->
  t

(** The underlying flat engine — all read accessors ([graph], [gprime],
    [csr], [is_alive], ...) apply to it directly. *)
val fg : t -> Fg_core.Forgiving_graph.t

val shards : t -> int
val map : t -> Shard_map.t
val ring : t -> Shard_ring.t

(** {1 Events}

    Inserts are coordinator-side passthroughs (they only touch the
    node's own adjacency row); deletes run the sharded round. *)

val insert : t -> Fg_graph.Node_id.t -> Fg_graph.Node_id.t list -> unit
val insert_delta : t -> Fg_graph.Node_id.t -> Fg_graph.Node_id.t list -> Fg_core.Delta.t

(** [delete_round t victims] deletes a batch of victims as one sharded
    round (assignment, parallel staging, retry, canonical commit). *)
val delete_round : t -> Fg_graph.Node_id.t list -> unit

val delete_round_traced : t -> Fg_graph.Node_id.t list -> Fg_core.Rt.heal_trace list
val delete_round_delta : t -> Fg_graph.Node_id.t list -> Fg_core.Delta.t * Fg_core.Rt.heal_trace list

(** [delete t v] is [delete_round t [v]]. *)
val delete : t -> Fg_graph.Node_id.t -> unit

(** {1 Faults} *)

(** Freeze a shard: its worker stops draining (and heartbeating). Its
    queued groups are re-homed by the coordinator's retry sweep, which
    also reports the failure to the ring. *)
val freeze_shard : t -> int -> unit

(** Resume; ring suspicion clears on the next round's tick. *)
val unfreeze_shard : t -> int -> unit

(** [set_serial_only t true] pins every round to the coordinator (same
    result, no worker domains) — required when the {!Fg_graph.Parallel}
    pool is owned by someone else, e.g. serve-bench reader tasks. *)
val set_serial_only : t -> bool -> unit

(** {1 Serving} *)

(** Publish each live shard's slice (edges with an owned endpoint) into
    its {!Fg_graph.Snapshot_store} at the engine's current generation.
    Frozen shards are skipped — they keep serving their last pre-freeze
    snapshot. *)
val publish_shards : t -> unit

val shard_store : t -> int -> shard_snapshot Fg_graph.Snapshot_store.t

(** {1 Introspection} *)

val stats : t -> shard_stat array
val rounds : t -> int

(** Shards that became suspected, cumulative. *)
val suspicions : t -> int

val last_round : t -> round_info
