(** Single-producer single-consumer mailbox: the typed channel between
    the round coordinator and each shard domain. Lock-free and
    allocation-free per transfer (one atomic store each side); the
    occupancy high-water mark feeds the per-shard [mbox] telemetry.

    The SPSC contract: at most one domain pushes and at most one domain
    pops at any time. {!ensure_capacity} may only run at a quiescent
    point.

    The produce side is exposed as a two-phase protocol — {!reserve}
    claims the tail slot, {!commit} writes it and publishes the atomic
    tail store that hands it to the consumer — so the ordering argument
    ("write the slot, then publish") is a checkable protocol rather than
    a comment. {!push} is the one-shot composition. The protocol is a
    functor, {!Make}, over {!Fg_graph.Atomic_intf.S}; this module is its
    production instantiation over [Stdlib.Atomic], and [tools/fg_race]
    instantiates it over a traced scheduler to verify FIFO order and
    no-uncommitted-slot-read across interleavings. *)

module type S = sig
  type 'a t

  (** [create ?capacity ()] (default 64; rounded up to a power of two). *)
  val create : ?capacity:int -> unit -> 'a t

  (** [push t x] is [false] when the mailbox is full (producer only).
      Equivalent to {!reserve} + {!commit}. *)
  val push : 'a t -> 'a -> bool

  (** [pop t] is [None] when empty (consumer only). *)
  val pop : 'a t -> 'a option

  (** [reserve t] claims the next tail slot without making it visible to
      the consumer; [None] when full. Producer only; at most one slot may
      be reserved at a time (raises [Invalid_argument] otherwise). Do not
      block or allocate unboundedly while holding a reservation — commit
      or abort promptly (lint rule R9). *)
  val reserve : 'a t -> int option

  (** [commit t slot x] writes [x] into the reserved [slot] and publishes
      it with the atomic tail store. Raises [Invalid_argument] if [slot]
      is not the currently reserved slot. *)
  val commit : 'a t -> int -> 'a -> unit

  (** [abort t slot] releases a reserved slot without publishing. *)
  val abort : 'a t -> int -> unit

  (** Current occupancy (either side; a racy snapshot while both run). *)
  val length : 'a t -> int

  val is_empty : 'a t -> bool
  val capacity : 'a t -> int

  (** Maximum occupancy ever reached. *)
  val high_water : 'a t -> int

  (** Grow to hold at least [n] items, preserving queued entries. Both
      sides must be quiescent and no slot reserved. *)
  val ensure_capacity : 'a t -> int -> unit
end

(** The protocol over any atomics implementation. *)
module Make (A : Fg_graph.Atomic_intf.S) : S

(** @inline *)
include S
