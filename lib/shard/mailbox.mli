(** Single-producer single-consumer mailbox: the typed channel between
    the round coordinator and each shard domain. Lock-free and
    allocation-free per transfer (one atomic store each side); the
    occupancy high-water mark feeds the per-shard [mbox] telemetry.

    The SPSC contract: at most one domain pushes and at most one domain
    pops at any time. {!reserve} may only run at a quiescent point. *)

type 'a t

(** [create ?capacity ()] (default 64; rounded up to a power of two). *)
val create : ?capacity:int -> unit -> 'a t

(** [push t x] is [false] when the mailbox is full (producer only). *)
val push : 'a t -> 'a -> bool

(** [pop t] is [None] when empty (consumer only). *)
val pop : 'a t -> 'a option

(** Current occupancy (either side; a racy snapshot while both run). *)
val length : 'a t -> int

val is_empty : 'a t -> bool
val capacity : 'a t -> int

(** Maximum occupancy ever reached. *)
val high_water : 'a t -> int

(** Grow to hold at least [n] items, preserving queued entries. Both
    sides must be quiescent. *)
val reserve : 'a t -> int -> unit
