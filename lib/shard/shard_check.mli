(** Paranoid audit of one sharded round.

    Runs the flat engine's O(Δ) transition check
    ({!Fg_core.Invariants.check_delta}) on the merged delta, then — for
    parallel rounds — cross-checks the per-shard stage journals against
    it: total journalled vnode creations/discards must equal the
    delta's, and every journalled image operation must name nodes the
    engine has seen. Cheap enough to run after every round
    ([fg attack --shards K --paranoid]). *)

type violation = string

(** [check_round fg ~delta ~info] audits the round that produced
    [delta], where [info] is {!Shard_engine.last_round} captured
    immediately after it. [] = clean. *)
val check_round :
  Fg_core.Forgiving_graph.t ->
  delta:Fg_core.Delta.t ->
  info:Shard_engine.round_info ->
  violation list
