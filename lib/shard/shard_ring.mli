(** Chord-style membership ring over the shard population (Stoica et al.,
    SIGCOMM'01, reduced to what a fixed in-process population needs):
    every shard owns a hashed position on a 2^30 ring, routing maps a
    hashed key to the first live shard clockwise, successor lists give
    each shard its failover order, and a heartbeat/timeout state machine
    drives {e suspicion} — the engine's [freeze_shard] fault hook.

    Time is logical: {!tick} is one heartbeat-plus-stabilize round, so
    every membership transition is deterministic under test. A {e frozen}
    shard stops heartbeating; after [timeout] missed beats it becomes
    {e suspected} and routing/delegation skip it. An unfrozen shard's
    next heartbeat clears suspicion (the rejoin path). *)

type t

(** [create ?successors ?timeout ~shards ~seed ()]. [successors] is the
    failover-list length (default 2, clamped to the population);
    [timeout] the number of consecutive missed heartbeats before
    suspicion (default 3). Positions are derived from [seed]. *)
val create : ?successors:int -> ?timeout:int -> shards:int -> seed:int -> unit -> t

val shards : t -> int

(** Ring position of a shard (distinct across shards). *)
val position : t -> int -> int

(** One heartbeat + stabilize round. *)
val tick : t -> unit

(** [route t key] hashes [key] onto the ring and walks clockwise to the
    first non-suspected shard. *)
val route : t -> int -> int

(** [delegate t s] is [s] itself when live, else its first live
    successor — the successor-list failover used to re-home work of a
    suspected shard. *)
val delegate : t -> int -> int

(** The successor list of [s] (clockwise, excluding [s]). *)
val successors : t -> int -> int list

(** Fault injection: a frozen shard misses every heartbeat. *)
val freeze : t -> int -> unit

(** Heartbeats resume; suspicion clears on the next {!tick}. *)
val unfreeze : t -> int -> unit

(** Direct failure evidence (a dispatch found the shard dead): suspect
    immediately, without waiting out the timeout. *)
val report : t -> int -> unit

val suspected : t -> int -> bool
val frozen : t -> int -> bool

(** [on_suspect t f] registers [f], called with the shard index whenever
    a shard {e becomes} suspected. *)
val on_suspect : t -> (int -> unit) -> unit

val ticks : t -> int
val stabilizations : t -> int
