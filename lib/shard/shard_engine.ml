(* The sharded heal engine: a domain-per-shard front half bolted onto the
   flat engine's staged round machinery ({!Fg_core.Forgiving_graph}).

   One round:
     1. ring tick (heartbeats, suspicion),
     2. assignment — each planned repair group routes by its owner id
        through {!Shard_map.owner}, re-homed by {!Shard_ring.delegate}
        when the home shard is suspected,
     3. dispatch — groups land in per-shard SPSC {!Mailbox}es in
        canonical order,
     4. parallel staging — each shard's worker domain drains its inbox,
        journalling heals on its private executor ({!Rt.executor});
        frozen shards leave their inbox untouched,
     5. retry — the coordinator sweeps leftover inboxes, reports the dead
        shard to the ring and re-stages on the delegate's executor,
     6. commit — {!Fg_core.Forgiving_graph.delete_round} replays every
        journal in canonical group order, so the final state is
        byte-identical to the flat engine for any shard count.

   When any observability sink is live (trace / metrics / profiling) the
   round runs serially on the coordinator — the sinks are not
   multi-domain-safe — through the same assignment and failover path, and
   produces the same state either way. *)

module Fg = Fg_core.Forgiving_graph
module Rt = Fg_core.Rt
module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency
module Csr = Fg_graph.Csr
module Store = Fg_graph.Snapshot_store
module Trace = Fg_obs.Trace
module Metrics = Fg_obs.Metrics
module Profile = Fg_obs.Profile
module Hdr = Fg_obs.Hdr
module Event = Fg_obs.Event

type shard_stat = {
  mutable heals : int;  (* fg-lint: single-writer shard-worker — repair groups healed by this shard *)
  mutable local_groups : int;  (* fg-lint: single-writer shard-worker — every member + fresh proc home-owned *)
  mutable cross_groups : int; (* fg-lint: single-writer shard-worker *)
  mutable retries : int;  (* fg-lint: single-writer shard-worker — groups re-homed here by the retry sweep *)
  mutable heal_ns : int;  (* fg-lint: single-writer shard-worker — cumulative heal wall time *)
  mutable mbox_depth : int;  (* fg-lint: single-writer shard-worker — groups assigned in the last round *)
  mutable mbox_hw : int;  (* fg-lint: single-writer shard-worker — lifetime max of the above *)
}

type round_info = {
  ri_groups : int;
  ri_serial : bool;
  ri_retried : int;
  ri_staged : (int * Rt.stage) array;  (* (shard, journal), canonical order *)
}

type shard_snapshot = { s_csr : Csr.t; s_gprime_csr : Csr.t }

type t = {
  fg : Fg.t;
  nshards : int;
  map : Shard_map.t;
  ring : Shard_ring.t;
  executors : Rt.ctx array;
  inbox : Fg.round_group Mailbox.t array;
  stats : shard_stat array;
  stores : shard_snapshot Store.t array;
  heal_hdr : Hdr.sharded;  (* shard.heal_ns *)
  depth_hdr : Hdr.sharded;  (* shard.mailbox_depth *)
  mutable rounds : int; (* fg-lint: single-writer coordinator *)
  mutable suspicions : int;  (* fg-lint: single-writer coordinator — shards that became suspected, cumulative *)
  mutable serial_only : bool;  (* fg-lint: single-writer coordinator — never spawn worker domains *)
  mutable last : round_info; (* fg-lint: single-writer coordinator *)
}

let no_round = { ri_groups = 0; ri_serial = true; ri_retried = 0; ri_staged = [||] }

let fresh_stat () =
  {
    heals = 0;
    local_groups = 0;
    cross_groups = 0;
    retries = 0;
    heal_ns = 0;
    mbox_depth = 0;
    mbox_hw = 0;
  }

let create ?(shards = 1) ?(block = 64) ?(seed = 0x5AD) ?successors ?timeout graph =
  if shards < 1 then invalid_arg "Shard_engine.create: shards must be >= 1";
  let fg = Fg.of_graph graph in
  let ring = Shard_ring.create ?successors ?timeout ~shards ~seed () in
  let t =
    {
      fg;
      nshards = shards;
      map = Shard_map.create ~block ~shards ~capacity:(max 1 (Adjacency.num_nodes graph)) ();
      ring;
      executors = Array.init shards (fun s -> Fg.round_executor ~slot:s fg);
      inbox = Array.init shards (fun _ -> Mailbox.create ());
      stats = Array.init shards (fun _ -> fresh_stat ());
      stores = Array.init shards (fun _ -> Store.create ());
      heal_hdr = Metrics.hdr "shard.heal_ns";
      depth_hdr = Metrics.hdr "shard.mailbox_depth";
      rounds = 0;
      suspicions = 0;
      serial_only = false;
      last = no_round;
    }
  in
  Shard_ring.on_suspect ring (fun _ -> t.suspicions <- t.suspicions + 1);
  t

let fg t = t.fg
let shards t = t.nshards
let map t = t.map
let ring t = t.ring
let stats t = t.stats
let rounds t = t.rounds
let suspicions t = t.suspicions
let last_round t = t.last
let freeze_shard t s = Shard_ring.freeze t.ring s
let unfreeze_shard t s = Shard_ring.unfreeze t.ring s
let set_serial_only t b = t.serial_only <- b

let ns_since t0 =
  let dt = (Trace.wall_clock () -. t0) *. 1e9 in
  if dt > 0. then int_of_float dt else 0

(* The home shard of a repair group: where its smallest victim lives. *)
let group_home t g = Shard_map.owner t.map (Fg.group_owner g)

(* Every victim and every fresh-leaf processor owned by [home]? *)
let group_local t ~home g =
  List.for_all (fun v -> Shard_map.owner t.map v = home) (Fg.group_members g)
  && List.for_all (fun p -> Shard_map.owner t.map p = home) (Fg.group_fresh_procs g)

let note_heal t s dt =
  let st = t.stats.(s) in
  st.heals <- st.heals + 1;
  st.heal_ns <- st.heal_ns + dt

(* Phase 2+3: route each group (canonical order) and count per-shard
   load; returns the target array and per-shard assignment counts. *)
let assign t groups =
  let n = Array.length groups in
  let targets = Array.make n 0 in
  let counts = Array.make t.nshards 0 in
  Array.iteri
    (fun i g ->
      let home = group_home t g in
      let target = Shard_ring.delegate t.ring home in
      targets.(i) <- target;
      counts.(target) <- counts.(target) + 1;
      let st = t.stats.(target) in
      if target = home && group_local t ~home g then
        st.local_groups <- st.local_groups + 1
      else st.cross_groups <- st.cross_groups + 1)
    groups;
  for s = 0 to t.nshards - 1 do
    let st = t.stats.(s) in
    st.mbox_depth <- counts.(s);
    if counts.(s) > st.mbox_hw then st.mbox_hw <- counts.(s);
    if Metrics.is_recording () then Hdr.record_sharded t.depth_hdr counts.(s)
  done;
  targets

(* Serial fallback: heal directly on the coordinator, in canonical order
   — the flat engine's exact schedule. A group whose target froze after
   assignment still exercises the failure path (report + delegate). *)
let run_serial t groups targets retried =
  Array.iteri
    (fun i g ->
      let s0 = targets.(i) in
      let s =
        if not (Shard_ring.frozen t.ring s0) then s0
        else begin
          Shard_ring.report t.ring s0;
          incr retried;
          let d = Shard_ring.delegate t.ring s0 in
          t.stats.(d).retries <- t.stats.(d).retries + 1;
          d
        end
      in
      let t0 = Trace.wall_clock () in
      Fg.heal_group_direct t.fg g;
      let dt = ns_since t0 in
      note_heal t s dt;
      if Metrics.is_recording () then Hdr.record_sharded t.heal_hdr dt)
    groups

(* Parallel phase: dispatch through the SPSC inboxes, one worker per
   shard index. A frozen shard's worker leaves its inbox untouched; the
   coordinator's retry sweep (after the barrier, so both mailbox sides
   are quiescent) reports it to the ring and re-stages each leftover
   group on the delegate's executor. *)
let run_parallel t groups targets retried =
  let n = Array.length groups in
  Array.iter (fun mb -> Mailbox.ensure_capacity mb n) t.inbox;
  Array.iteri
    (fun i g ->
      if not (Mailbox.push t.inbox.(targets.(i)) g) then
        invalid_arg "Shard_engine: inbox overflow")
    groups;
  Fg_graph.Parallel.iter ~domains:t.nshards
    ~init:(fun () -> ())
    ~f:(fun () s ->
      if not (Shard_ring.frozen t.ring s) then begin
        let ex = t.executors.(s) in
        let rec drain () =
          match Mailbox.pop t.inbox.(s) with
          | None -> ()
          | Some g ->
              let t0 = Trace.wall_clock () in
              Fg.heal_group_staged t.fg ~executor:ex g;
              note_heal t s (ns_since t0);
              drain ()
        in
        drain ()
      end)
    t.nshards;
  for s = 0 to t.nshards - 1 do
    if not (Mailbox.is_empty t.inbox.(s)) then begin
      Shard_ring.report t.ring s;
      let rec flush () =
        match Mailbox.pop t.inbox.(s) with
        | None -> ()
        | Some g ->
            incr retried;
            let d = Shard_ring.delegate t.ring s in
            t.stats.(d).retries <- t.stats.(d).retries + 1;
            let t0 = Trace.wall_clock () in
            Fg.heal_group_staged t.fg ~executor:t.executors.(d) g;
            note_heal t d (ns_since t0);
            flush ()
      in
      flush ()
    end
  done

(* The [exec] callback handed to {!Fg.delete_round}: phases 1-5. Commit
   (phase 6) belongs to [delete_round] itself, after this returns. *)
let exec_round t groups =
  Shard_ring.tick t.ring;
  t.rounds <- t.rounds + 1;
  let targets = assign t groups in
  let serial =
    t.nshards = 1 || t.serial_only || Trace.enabled () || Metrics.is_recording ()
    || Profile.enabled ()
  in
  let retried = ref 0 in
  if serial then run_serial t groups targets retried
  else run_parallel t groups targets retried;
  let staged = ref [] in
  for i = Array.length groups - 1 downto 0 do
    match Fg.group_stage groups.(i) with
    | Some st -> staged := (targets.(i), st) :: !staged
    | None -> ()
  done;
  t.last <-
    {
      ri_groups = Array.length groups;
      ri_serial = serial;
      ri_retried = !retried;
      ri_staged = Array.of_list !staged;
    }

(* Post-round telemetry: the per-shard rates feed for [fg top]. *)
let emit_round t =
  if Metrics.is_recording () then begin
    Metrics.incr ~n:t.last.ri_groups "shard.groups";
    if t.last.ri_retried > 0 then Metrics.incr ~n:t.last.ri_retried "shard.retries"
  end;
  if Trace.enabled () then begin
    let per_shard =
      List.concat
        (List.init t.nshards (fun s ->
             let st = t.stats.(s) in
             [
               (Printf.sprintf "s%d.heals" s, Event.Int st.heals);
               (Printf.sprintf "s%d.mbox" s, Event.Int st.mbox_depth);
             ]))
    in
    Trace.point "fg.shard"
      ~attrs:
        (("shards", Event.Int t.nshards)
        :: ("round", Event.Int t.rounds)
        :: ("groups", Event.Int t.last.ri_groups)
        :: per_shard)
  end

let delete_round t victims =
  Fg.delete_round t.fg ~exec:(exec_round t) victims;
  emit_round t

let delete_round_traced t victims =
  let tr = Fg.delete_round_traced t.fg ~exec:(exec_round t) victims in
  emit_round t;
  tr

let delete_round_delta t victims =
  let r = Fg.delete_round_delta t.fg ~exec:(exec_round t) victims in
  emit_round t;
  r

let delete t v = delete_round t [ v ]

let insert t v neighbours =
  Shard_map.ensure t.map ((v : Node_id.t) + 1);
  Fg.insert t.fg v neighbours

let insert_delta t v neighbours =
  Shard_map.ensure t.map ((v : Node_id.t) + 1);
  Fg.insert_delta t.fg v neighbours

(* The shard's slice of a graph: every edge with an endpoint it owns. *)
let shard_view t source s =
  let adj = Adjacency.create () in
  Adjacency.iter_edges
    (fun u v ->
      if Shard_map.owner t.map u = s || Shard_map.owner t.map v = s then
        Adjacency.add_edge adj u v)
    source;
  adj

let publish_shards t =
  let gen = Fg.generation t.fg in
  let g = Fg.graph t.fg and g' = Fg.gprime t.fg in
  for s = 0 to t.nshards - 1 do
    (* a frozen shard keeps serving its last pre-freeze generation *)
    if not (Shard_ring.frozen t.ring s) then
      Store.publish t.stores.(s) ~gen
        {
          s_csr = Csr.of_adjacency (shard_view t g s);
          s_gprime_csr = Csr.of_adjacency (shard_view t g' s);
        }
  done

let shard_store t s = t.stores.(s)
