module Im = Fg_graph.Interval_map

type t = {
  shards : int;
  block : int;
  mutable map : int Im.t;  (* id -> owning shard, canonical runs *)
}

let owner_formula ~block ~shards id = id / block mod shards

let build ~block ~shards len =
  Im.init ~equal:Int.equal ~len (owner_formula ~block ~shards)

let create ?(block = 64) ~shards ~capacity () =
  if shards < 1 then invalid_arg "Shard_map.create: shards must be >= 1";
  if block < 1 then invalid_arg "Shard_map.create: block must be >= 1";
  let len = max block (max capacity 1) in
  { shards; block; map = build ~block ~shards len }

let shards t = t.shards
let block t = t.block
let length t = Im.length t.map

let ensure t n =
  if n > Im.length t.map then
    (* geometric growth keeps rebuilds (O(len) each) amortised O(1) per
       inserted id under churn; the rebuild re-tabulates, so the runs stay
       canonical by construction *)
    t.map <- build ~block:t.block ~shards:t.shards (max n (2 * Im.length t.map))

let owner t id =
  if id < 0 then invalid_arg "Shard_map.owner: negative id";
  ensure t (id + 1);
  Im.get t.map id

let interval_map t = t.map
let run_count t = Im.run_count t.map
let iter_runs f t = Im.iter_runs f t.map
