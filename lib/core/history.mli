(** Attack-history recorder: the Forgiving Graph plus the delta stream of
    every event.

    Theorem 1 is a statement about {e every} moment of an execution; this
    wrapper makes that checkable after the fact. The history stores one
    {!Delta.t} per event — O(Δ) each — instead of a full snapshot;
    {!snapshot} materialises any moment by replaying the prefix onto a
    persistent graph ({!Fg_graph.Persistent_graph}), with a cursor so
    chronological scrubbing ({!series}, forward [snapshot] calls) pays
    O(Δ log n) per step rather than a replay from scratch. [create] takes
    an {!Fg_graph.Adjacency.copy} of [G_0], so later caller-side mutation
    of the input graph cannot skew replays. Used by the timeline experiment
    (E12) and the [examples/p2p_churn.exe] walkthrough; also handy
    interactively: run an attack, then scrub through the states. *)

module Node_id := Fg_graph.Node_id

type event =
  | Inserted of Node_id.t * Node_id.t list
  | Deleted of Node_id.t

val pp_event : Format.formatter -> event -> unit

type t

(** [create g0] snapshots the initial network as event 0. With
    [~publish_snapshots:true] the wrapped engine also publishes a CSR
    snapshot into its {!Fg_graph.Snapshot_store} after {e every} recorded
    event, so concurrent readers can pin each intermediate generation —
    the recorded history and the served generations then correspond
    one-to-one. (Default off: publication builds CSRs the pure recorder
    does not need.) *)
val create : ?publish_snapshots:bool -> Fg_graph.Adjacency.t -> t

val insert : t -> Node_id.t -> Node_id.t list -> unit
val delete : t -> Node_id.t -> unit

(** The wrapped structure (current state). *)
val fg : t -> Forgiving_graph.t

(** [length t] is the number of recorded events (excluding the initial
    snapshot). *)
val length : t -> int

(** [snapshot t k] is the healed network after the [k]-th event
    ([k = 0] is the initial network). Raises [Invalid_argument] when out
    of range. *)
val snapshot : t -> int -> Fg_graph.Persistent_graph.t

(** [events t] in chronological order. *)
val events : t -> event list

(** [series t f] maps [f] over the snapshots chronologically — e.g. edge
    counts or component counts over time. One incremental replay pass. *)
val series : t -> (Fg_graph.Persistent_graph.t -> 'a) -> 'a list

(** The recorded delta stream, chronological. *)
val deltas : t -> Delta.t list

(** [replayed t k] materialises the state after event [k] as a fresh
    mutable graph by replaying the delta stream onto the private copy of
    [G_0] — the independent cross-check that [snapshot]/the engine and the
    stream agree. Raises [Invalid_argument] when out of range. *)
val replayed : t -> int -> Fg_graph.Adjacency.t
