(** Deep structural invariant checks over a {!Forgiving_graph.t}.

    These verify, by recomputation from first principles, every invariant
    the algorithm relies on (Section 6 of DESIGN.md). They are deliberately
    slow — used by tests and by the harness in paranoid mode, never by the
    algorithm itself. *)

(** A violated invariant, as a human-readable description. *)
type violation = string

(** [check t] runs every check below and returns all violations ([] = ok). *)
val check : Forgiving_graph.t -> violation list

(** Individual checks, each returning violations found: *)

(** every RT is a well-formed haft with consistent cached counts. *)
val check_hafts : Forgiving_graph.t -> violation list

(** leaf vnodes exist exactly for (live proc, dead other-endpoint) edges. *)
val check_leaves : Forgiving_graph.t -> violation list

(** helpers: at most one per half-edge, simulator's leaf is a strict
    descendant (Lemma 3.1 and the descendant property). *)
val check_helpers : Forgiving_graph.t -> violation list

(** every vnode's representative is a leaf of its subtree whose helper (if
    any) lies outside that subtree. *)
val check_representatives : Forgiving_graph.t -> violation list

(** the incrementally-maintained image equals the image recomputed from the
    virtual graph. *)
val check_image : Forgiving_graph.t -> violation list

(** deg(v, G) <= 4 deg(v, G') for every live v — the tight bound for the
    construction. Theorem 1.1 states factor 3, but its proof counts only
    the helper edges and omits the real node's rerouted edge; for a fresh
    RT over >= 16 leaves some simulator provably reaches 3d'+1 under any
    descendant-respecting representative assignment (see DESIGN.md §6). *)
val check_degree_bound : Forgiving_graph.t -> violation list

(** Violations of the paper's {e stated} factor-3 bound (Theorem 1.1),
    reported separately so experiments can quantify how often the stated
    bound is exceeded (it is, rarely, by exactly one edge). *)
val paper_degree_violations : Forgiving_graph.t -> violation list

(** live nodes connected in G' are connected in G. *)
val check_connectivity : Forgiving_graph.t -> violation list

(** Theorem 1.2 on all live pairs (all-pairs BFS on the engine's cached CSR
    snapshots ({!Forgiving_graph.csr}/[gprime_csr]) of both graphs, fanned
    across [?domains] domains — default the process-wide
    {!Fg_graph.Parallel} setting; violations are reported in the same
    order for any domain count). Exposed separately from {!check}; see
    also {!Fg_metrics.Stretch}. *)
val check_stretch_bound : ?domains:int -> Forgiving_graph.t -> violation list

(** [check_delta t d] audits one state transition in O(Δ): after applying
    the event that produced [d], the added/removed nodes and edges must be
    reflected in [graph t]/[gprime t] exactly, the event shape must be
    legal (inserts never remove, deletes never extend G', repairs only add
    edges — a removed image edge between two survivors cannot be a direct
    G' edge), and every touched endpoint must respect the 4x degree bound.
    Cheap enough to run after {e every} event ([fg_cli attack --paranoid]);
    the whole-state checks above remain the periodic deep audit. *)
val check_delta : Forgiving_graph.t -> Delta.t -> violation list
