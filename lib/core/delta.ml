module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency
module P = Fg_graph.Persistent_graph

type event =
  | Inserted of { node : Node_id.t; nbrs : Node_id.t list }
  | Deleted of { victims : Node_id.t list }

type t = {
  gen : int;
  event : event;
  nodes_added : Node_id.t list;
  nodes_removed : Node_id.t list;
  g_added : Edge.t list;
  g_removed : Edge.t list;
  gp_added : Edge.t list;
  vnodes_created : int;
  vnodes_discarded : int;
  groups : int;
}

(* ---- builder ----

   The builder nets out image-edge churn as it happens: a heal can remove an
   image edge and re-add it (or vice versa) while restructuring RTs, and the
   delta records only the net effect. Since the engine records an edge only
   when the refcounted image actually flips, consecutive recorded operations
   on one edge alternate add/remove, so the net count stays in {-1, 0, +1}. *)

type builder = {
  b_event : event;
  net : int Edge.Tbl.t;
  mutable b_gp : Edge.t list;
  mutable b_nodes_added : Node_id.t list;
  mutable b_nodes_removed : Node_id.t list;
  mutable b_created : int;
  mutable b_discarded : int;
  mutable b_groups : int;
}

let builder event =
  {
    b_event = event;
    net = Edge.Tbl.create 16;
    b_gp = [];
    b_nodes_added = [];
    b_nodes_removed = [];
    b_created = 0;
    b_discarded = 0;
    b_groups = 1;
  }

let bump b e k =
  let c = Option.value (Edge.Tbl.find_opt b.net e) ~default:0 in
  Edge.Tbl.replace b.net e (c + k)

let record_g_add b u v = bump b (Edge.make u v) 1
let record_g_remove b u v = bump b (Edge.make u v) (-1)
let record_gp_add b e = b.b_gp <- e :: b.b_gp
let record_node_add b v = b.b_nodes_added <- v :: b.b_nodes_added
let record_node_remove b v = b.b_nodes_removed <- v :: b.b_nodes_removed
let record_vnode_created b = b.b_created <- b.b_created + 1
let record_vnode_discarded b = b.b_discarded <- b.b_discarded + 1
let record_groups b n = b.b_groups <- n

let build ~gen b =
  let added = ref [] and removed = ref [] in
  Edge.Tbl.iter
    (fun e c ->
      if c > 0 then added := e :: !added else if c < 0 then removed := e :: !removed)
    b.net;
  {
    gen;
    event = b.b_event;
    nodes_added = List.sort Node_id.compare b.b_nodes_added;
    nodes_removed = List.sort Node_id.compare b.b_nodes_removed;
    g_added = List.sort Edge.compare !added;
    g_removed = List.sort Edge.compare !removed;
    gp_added = List.sort Edge.compare b.b_gp;
    vnodes_created = b.b_created;
    vnodes_discarded = b.b_discarded;
    groups = b.b_groups;
  }

(* ---- replay ---- *)

let apply ?gprime g t =
  List.iter (fun v -> Adjacency.add_node g v) t.nodes_added;
  List.iter (fun (e : Edge.t) -> Adjacency.add_edge g e.a e.b) t.g_added;
  List.iter (fun (e : Edge.t) -> Adjacency.remove_edge g e.a e.b) t.g_removed;
  List.iter (fun v -> Adjacency.remove_node g v) t.nodes_removed;
  match gprime with
  | None -> ()
  | Some gp ->
    List.iter (fun v -> Adjacency.add_node gp v) t.nodes_added;
    List.iter (fun (e : Edge.t) -> Adjacency.add_edge gp e.a e.b) t.gp_added

let apply_p p t =
  let p = List.fold_left (fun p v -> P.add_node v p) p t.nodes_added in
  let p = List.fold_left (fun p (e : Edge.t) -> P.add_edge e.a e.b p) p t.g_added in
  let p =
    List.fold_left (fun p (e : Edge.t) -> P.remove_edge e.a e.b p) p t.g_removed
  in
  List.fold_left (fun p v -> P.remove_node v p) p t.nodes_removed

(* ---- derived views ---- *)

let touched t =
  let tbl = Node_id.Tbl.create 16 in
  let add v = Node_id.Tbl.replace tbl v () in
  List.iter add t.nodes_added;
  List.iter
    (fun (e : Edge.t) ->
      add e.a;
      add e.b)
    t.g_added;
  List.iter
    (fun (e : Edge.t) ->
      add e.a;
      add e.b)
    t.g_removed;
  Node_id.Tbl.fold (fun v () acc -> v :: acc) tbl []

let removed t = t.nodes_removed

(* ---- printing / observability ---- *)

let edges_str es =
  String.concat " " (List.map (fun (e : Edge.t) -> Printf.sprintf "%d-%d" e.a e.b) es)

let event_str = function
  | Inserted { node; _ } -> Printf.sprintf "insert %d" node
  | Deleted { victims } ->
    "delete " ^ String.concat "," (List.map string_of_int victims)

let to_attrs t =
  let open Fg_obs.Event in
  [
    ("gen", Int t.gen);
    ("event", Str (event_str t.event));
    ("g_added", Str (edges_str t.g_added));
    ("g_removed", Str (edges_str t.g_removed));
    ("gp_added", Str (edges_str t.gp_added));
    ("vnodes_created", Int t.vnodes_created);
    ("vnodes_discarded", Int t.vnodes_discarded);
    ("groups", Int t.groups);
  ]

let pp ppf t =
  Format.fprintf ppf
    "@[<v>delta gen=%d (%s)@,+G [%s]@,-G [%s]@,+G' [%s]@,vnodes +%d/-%d groups=%d@]"
    t.gen (event_str t.event) (edges_str t.g_added) (edges_str t.g_removed)
    (edges_str t.gp_added) t.vnodes_created t.vnodes_discarded t.groups
