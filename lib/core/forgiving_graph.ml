module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency
module Csr = Fg_graph.Csr
module Store = Fg_graph.Snapshot_store

(* The published unit: both CSR views of the same generation, so a reader
   pinning once gets a {e consistent} (G, G') pair — stretch is a ratio of
   distances across the two, and mixing generations would let a healed
   path be compared against a newer G'. *)
type snapshot = { csr : Csr.t; gprime_csr : Csr.t }

(* Writer-side churn ledger for the currently published snapshot pair:
   which Adjacency versions the pair (plus the pending lists) accounts
   for, and the node churn accumulated since it was published. As long as
   the live versions still match, the next publish is one
   [Csr.apply_delta] per view; on a mismatch someone mutated a graph
   behind the engine's back and we rebuild from scratch. *)
type track = {
  mutable vg : int;  (* Adjacency.version of [graph t] accounted for *)
  mutable vgp : int;  (* Adjacency.version of [gprime t] accounted for *)
  mutable touched : Node_id.t list;
  mutable removed : Node_id.t list;
  mutable gp_touched : Node_id.t list;  (* G' only ever adds *)
  mutable pending : int;
  mutable gp_pending : int;
}

type t = {
  gprime : Adjacency.t;
  alive : unit Node_id.Tbl.t;
  rt : Rt.ctx;
  mutable generation : int;  (* events applied since creation *)
  store : snapshot Store.t;
  mutable track : track option;
}

let create ?policy () =
  {
    gprime = Adjacency.create ();
    alive = Node_id.Tbl.create 64;
    rt = Rt.create_ctx ?policy ();
    generation = 0;
    store = Store.create ();
    track = None;
  }

let is_alive t v = Node_id.Tbl.mem t.alive v
let generation t = t.generation
let snapshot_store t = t.store

(* ---- snapshot publication ---- *)

(* Accumulating churn without a publish in between is capped; past the cap
   the ledger is dropped (next publish rebuilds) rather than grown without
   bound. *)
let max_pending = 4096

let note_track t ~v0g ~v1g ~v0p ~v1p ~touched ~removed ~gp_touched =
  match t.track with
  | None -> ()
  | Some tr ->
    if tr.vg <> v0g || tr.vgp <> v0p || tr.pending > max_pending || tr.gp_pending > max_pending
    then t.track <- None
    else begin
      tr.touched <- List.rev_append touched tr.touched;
      tr.removed <- List.rev_append removed tr.removed;
      tr.pending <- tr.pending + List.length touched + List.length removed;
      tr.gp_touched <- List.rev_append gp_touched tr.gp_touched;
      tr.gp_pending <- tr.gp_pending + List.length gp_touched;
      tr.vg <- v1g;
      tr.vgp <- v1p
    end

(* Refresh-and-publish: the single writer's path from live state to an
   immutable snapshot in the store. Incremental ([Csr.apply_delta] per
   view, skipped entirely for a view with no churn — deletions never touch
   G') when the ledger covers the live versions; full rebuild otherwise.
   Re-publishing after an external mutation reuses the current generation
   number, which the store permits (non-strict monotonicity). *)
let publish t =
  let img = Rt.image t.rt in
  let vg = Adjacency.version img and vgp = Adjacency.version t.gprime in
  match (t.track, Store.peek t.store) with
  | Some tr, Some s when tr.vg = vg && tr.vgp = vgp ->
    let prev = s.Store.value in
    if s.Store.gen = t.generation && tr.pending = 0 && tr.gp_pending = 0 then prev
    else begin
      let t_apply = Fg_obs.Profile.start () in
      let csr =
        if tr.pending = 0 then prev.csr
        else Csr.apply_delta prev.csr ~touched:tr.touched ~removed:tr.removed img
      in
      let gprime_csr =
        if tr.gp_pending = 0 then prev.gprime_csr
        else Csr.apply_delta prev.gprime_csr ~touched:tr.gp_touched ~removed:[] t.gprime
      in
      Fg_obs.Profile.stamp Fg_obs.Profile.Csr_apply t_apply;
      tr.touched <- [];
      tr.removed <- [];
      tr.gp_touched <- [];
      tr.pending <- 0;
      tr.gp_pending <- 0;
      let snap = { csr; gprime_csr } in
      Store.publish t.store ~gen:t.generation snap;
      snap
    end
  | _ ->
    let t_rebuild = Fg_obs.Profile.start () in
    let csr = Csr.of_adjacency img in
    let gprime_csr = Csr.of_adjacency t.gprime in
    Fg_obs.Profile.stamp Fg_obs.Profile.Csr_rebuild t_rebuild;
    let snap = { csr; gprime_csr } in
    Store.publish t.store ~gen:t.generation snap;
    t.track <-
      Some
        {
          vg;
          vgp;
          touched = [];
          removed = [];
          gp_touched = [];
          pending = 0;
          gp_pending = 0;
        };
    snap

let csr t = (publish t).csr
let gprime_csr t = (publish t).gprime_csr

(* ---- the delta choke point ----

   Delta-returning entry points run inside [with_event]: a Delta.builder is
   installed as the Rt recorder (so refcounted image flips and vnode churn
   record themselves), the event body runs, and the finished delta advances
   the generation, feeds both snapshot caches, and is emitted as an
   [fg.delta] trace point.

   The plain [insert]/[delete]/[delete_batch] wrappers instead go through
   [run_event]: when nothing would consume the delta — no churn ledger
   live and tracing off — the event body runs with no recorder at all,
   so the delta machinery (builder tables, net edge lists, sorts) costs
   nothing on the undecorated heal path. *)

let gp_touched (d : Delta.t) =
  let tbl = Node_id.Tbl.create 8 in
  let add v = Node_id.Tbl.replace tbl v () in
  List.iter add d.nodes_added;
  List.iter
    (fun (e : Edge.t) ->
      add e.a;
      add e.b)
    d.gp_added;
  Node_id.Tbl.fold (fun v () acc -> v :: acc) tbl []

let with_event t event f =
  let img = Rt.image t.rt in
  let v0g = Adjacency.version img and v0p = Adjacency.version t.gprime in
  let b = Delta.builder event in
  Rt.set_recorder t.rt (Some b);
  let result =
    try f (Some b)
    with e ->
      Rt.set_recorder t.rt None;
      (* drop the ledger, keep the store: the published snapshot is still a
         faithful image of its own generation *)
      t.track <- None;
      raise e
  in
  Rt.set_recorder t.rt None;
  t.generation <- t.generation + 1;
  let d = Delta.build ~gen:t.generation b in
  if Option.is_some t.track then
    note_track t ~v0g ~v1g:(Adjacency.version img) ~v0p ~v1p:(Adjacency.version t.gprime)
      ~touched:(Delta.touched d) ~removed:(Delta.removed d) ~gp_touched:(gp_touched d);
  if Fg_obs.Trace.enabled () then
    Fg_obs.Trace.point "fg.delta" ~attrs:(Delta.to_attrs d);
  (d, result)

let run_event t event f =
  if Option.is_some t.track || Fg_obs.Trace.enabled () then
    ignore (with_event t event f : Delta.t * _)
  else begin
    (* no recorder: Rt's choke points see [None] and record nothing *)
    (try ignore (f None)
     with e ->
       t.track <- None;
       raise e);
    t.generation <- t.generation + 1
  end

(* ---- mutations ---- *)

let insert_checked t v nbrs =
  if Adjacency.mem_node t.gprime v then
    invalid_arg "Forgiving_graph.insert: node id was already seen";
  let nbrs = List.sort_uniq Node_id.compare nbrs in
  let check u =
    if not (is_alive t u) then
      invalid_arg "Forgiving_graph.insert: neighbour is not live"
  in
  List.iter check nbrs;
  nbrs

let insert_body t v nbrs b =
  Adjacency.add_node t.gprime v;
  Node_id.Tbl.replace t.alive v ();
  Rt.add_image_node t.rt v;
  (match b with None -> () | Some b -> Delta.record_node_add b v);
  let connect u =
    Adjacency.add_edge t.gprime v u;
    (match b with None -> () | Some b -> Delta.record_gp_add b (Edge.make v u));
    Rt.add_direct t.rt v u
  in
  List.iter connect nbrs

let insert_delta t v nbrs =
  let nbrs = insert_checked t v nbrs in
  fst (with_event t (Delta.Inserted { node = v; nbrs }) (insert_body t v nbrs))

let insert t v nbrs =
  let nbrs = insert_checked t v nbrs in
  run_event t (Delta.Inserted { node = v; nbrs }) (insert_body t v nbrs)

let of_graph ?policy g =
  let t = create ?policy () in
  let nodes = List.sort Node_id.compare (Adjacency.nodes g) in
  let add v =
    Adjacency.add_node t.gprime v;
    Node_id.Tbl.replace t.alive v ();
    Rt.add_image_node t.rt v
  in
  List.iter add nodes;
  Adjacency.iter_edges
    (fun u v ->
      Adjacency.add_edge t.gprime u v;
      Rt.add_direct t.rt u v)
    g;
  t

let delete_body t v b =
  let t_heal = Fg_obs.Profile.start () in
  let degree = Adjacency.degree t.gprime v in
  let trace =
    Fg_obs.Trace.with_span "fg.delete"
      ~attrs:[ ("node", Fg_obs.Event.Int v); ("degree", Fg_obs.Event.Int degree) ]
      (fun sp ->
      Node_id.Tbl.remove t.alive v;
      let marked = ref [] and fresh = ref [] in
      let classify x =
        let e = Edge.make v x in
        if is_alive t x then begin
          (* live neighbour: drop the direct edge, give x a leaf in the new RT *)
          Rt.remove_direct t.rt v x;
          fresh := Edge.Half.make x e :: !fresh
        end
        else begin
          (* dead neighbour: v's attachment into that RT disappears *)
          let mine = Edge.Half.make v e in
          (match Rt.find_leaf t.rt mine with
          | Some leaf -> marked := leaf :: !marked
          | None -> assert false (* a leaf exists for every dead-neighbour edge *));
          match Rt.find_helper t.rt mine with
          | Some h -> marked := h :: !marked
          | None -> ()
        end
      in
      let t_collect = Fg_obs.Profile.start () in
      Fg_obs.Trace.with_span "fg.collect" (fun _ ->
          (* descending, so [remove_direct] pops each image edge off the tail
             of [v]'s sorted row instead of shifting it (an O(deg^2) memmove
             for hubs); the [List.rev]s restore exactly the order the
             ascending walk used to produce, keeping heal byte-identical *)
          Adjacency.iter_neighbors_rev classify t.gprime v);
      Fg_obs.Profile.stamp Fg_obs.Profile.Collect t_collect;
      let _root, trace =
        Rt.heal t.rt ~events:(b <> None) ~marked:(List.rev !marked)
          ~fresh:(List.rev !fresh)
      in
      let t_image = Fg_obs.Profile.start () in
      Fg_obs.Trace.with_span "fg.image" (fun _ -> Rt.drop_image_node t.rt v);
      Fg_obs.Profile.stamp Fg_obs.Profile.Image t_image;
      (match b with None -> () | Some b -> Delta.record_node_remove b v);
      if Fg_obs.Trace.enabled () || Fg_obs.Metrics.is_recording () then begin
        Fg_obs.Trace.attr sp "anchors" (Fg_obs.Event.Int trace.Rt.ht_anchors);
        Fg_obs.Trace.attr sp "notified" (Fg_obs.Event.Int trace.Rt.ht_notified);
        Fg_obs.Metrics.incr "fg.deletions";
        Fg_obs.Metrics.observe "fg.anchors" (float_of_int trace.Rt.ht_anchors);
        Fg_obs.Metrics.observe "fg.notified" (float_of_int trace.Rt.ht_notified)
      end;
      trace)
  in
  Fg_obs.Profile.stamp Fg_obs.Profile.Heal t_heal;
  trace

let delete_delta t v =
  if not (is_alive t v) then invalid_arg "Forgiving_graph.delete: node is not live";
  with_event t (Delta.Deleted { victims = [ v ] }) (delete_body t v)

let delete_traced t v = snd (delete_delta t v)

let delete t v =
  if not (is_alive t v) then invalid_arg "Forgiving_graph.delete: node is not live";
  run_event t (Delta.Deleted { victims = [ v ] }) (delete_body t v)

(* Simultaneous deletion of a victim set. Victims are partitioned into
   independent repair groups — two victims interact iff they are adjacent
   in G' or their attachments live in the same RT — and each group heals
   with one combined Strip/Merge. Unrelated victims therefore do not get
   spliced into a common reconstruction tree (matching what the sequential
   algorithm would produce for them). *)
let delete_batch_checked t victims =
  let victims = List.sort_uniq Node_id.compare victims in
  List.iter
    (fun v ->
      if not (is_alive t v) then
        invalid_arg "Forgiving_graph.delete_batch: node is not live")
    victims;
  victims

(* One independent repair group of a simultaneous deletion round, ready to
   heal: the planner (serial, on the base context) resolves every vnode
   lookup up front, so executing the group needs nothing but the group's
   own trees — which is what lets the sharded engine stage groups on
   worker domains. *)
type round_group = {
  rg_members : Node_id.t list;  (* victims, in grouping order *)
  rg_marked : Rt.vnode list;
  rg_fresh : Edge.Half.t list;
  rg_events : bool;
  mutable rg_stage : Rt.stage option;
  mutable rg_trace : Rt.heal_trace option;
}

let group_members g = g.rg_members
let group_owner g = List.fold_left min max_int g.rg_members
let group_work g = List.length g.rg_marked + List.length g.rg_fresh
let group_fresh_procs g = List.map (fun h -> h.Edge.Half.proc) g.rg_fresh
let group_stage g = g.rg_stage

let heal_group_direct t g =
  let _root, trace =
    Rt.heal t.rt ~events:g.rg_events ~marked:g.rg_marked ~fresh:g.rg_fresh
  in
  g.rg_trace <- Some trace

let heal_group_staged t ~executor g =
  let st = Rt.stage t.rt in
  let _root, trace =
    Rt.run_staged executor st ~events:g.rg_events ~marked:g.rg_marked
      ~fresh:g.rg_fresh
  in
  g.rg_stage <- Some st;
  g.rg_trace <- Some trace

let round_executor ?slot t = Rt.executor ?slot t.rt

(* The shared body of [delete_batch] and [delete_round]: classify every
   victim's neighbours, partition victims into independent repair groups
   (canonical order: ascending union-find root), hand the group array to
   [run] — which must leave [rg_trace] set on every group and all heals
   applied to the base context — then finish the event (image node drops,
   delta records, metrics). The flat path's [run] heals each group
   directly in array order, which is exactly the historical behaviour. *)
let delete_groups_body t victims ~run b =
  let t_heal = Fg_obs.Profile.start () in
  let traces =
    Fg_obs.Trace.with_span "fg.delete_batch"
      ~attrs:[ ("victims", Fg_obs.Event.Int (List.length victims)) ]
      (fun sp ->
  let dead = List.fold_left (fun s v -> Node_id.Set.add v s) Node_id.Set.empty victims in
  List.iter (fun v -> Node_id.Tbl.remove t.alive v) victims;
  (* per-victim marked vnodes and fresh half-edges *)
  let marked = Node_id.Tbl.create 8 and fresh = Node_id.Tbl.create 8 in
  let push tbl v x = Node_id.Tbl.replace tbl v (x :: Option.value (Node_id.Tbl.find_opt tbl v) ~default:[]) in
  let classify v x =
    let e = Edge.make v x in
    if Node_id.Set.mem x dead then begin
      (* victim-victim edge: both were live until now, so it was a direct
         edge with no attachments; drop it from the image exactly once *)
      if v < x then Rt.remove_direct t.rt v x
    end
    else if is_alive t x then begin
      Rt.remove_direct t.rt v x;
      push fresh v (Edge.Half.make x e)
    end
    else begin
      (* x died in an earlier round: v has a leaf (and maybe a helper) *)
      let mine = Edge.Half.make v e in
      (match Rt.find_leaf t.rt mine with
      | Some leaf -> push marked v leaf
      | None -> assert false);
      match Rt.find_helper t.rt mine with
      | Some h -> push marked v h
      | None -> ()
    end
  in
  let t_collect = Fg_obs.Profile.start () in
  Fg_obs.Trace.with_span "fg.collect" (fun _ ->
      (* descending for the same tail-pop reason as [delete_body]; the
         per-victim lists come out ascending and are reversed in [collect] *)
      List.iter (fun v -> Adjacency.iter_neighbors_rev (classify v) t.gprime v) victims);
  Fg_obs.Profile.stamp Fg_obs.Profile.Collect t_collect;
  (* group victims: G'-adjacency within the batch, or a shared RT *)
  let uf = Fg_graph.Union_find.create () in
  List.iter (fun v -> ignore (Fg_graph.Union_find.find uf v)) victims;
  List.iter
    (fun v ->
      Adjacency.iter_neighbors
        (fun x -> if Node_id.Set.mem x dead then ignore (Fg_graph.Union_find.union uf v x))
        t.gprime v)
    victims;
  let root_owner = Hashtbl.create 8 in
  List.iter
    (fun v ->
      List.iter
        (fun (m : Rt.vnode) ->
          let r = (Rt.root_of m).Rt.id in
          match Hashtbl.find_opt root_owner r with
          | None -> Hashtbl.replace root_owner r v
          | Some u -> ignore (Fg_graph.Union_find.union uf u v))
        (Option.value (Node_id.Tbl.find_opt marked v) ~default:[]))
    victims;
  let module Im = Map.Make (Int) in
  let groups =
    List.fold_left
      (fun m v ->
        let r = Fg_graph.Union_find.find uf v in
        Im.update r (fun l -> Some (v :: Option.value l ~default:[])) m)
      Im.empty victims
  in
  let group_array =
    let collect tbl members =
      List.concat_map
        (fun v -> List.rev (Option.value (Node_id.Tbl.find_opt tbl v) ~default:[]))
        members
    in
    let gs =
      Im.fold
        (fun _ members acc ->
          {
            rg_members = members;
            rg_marked = collect marked members;
            rg_fresh = collect fresh members;
            rg_events = b <> None;
            rg_stage = None;
            rg_trace = None;
          }
          :: acc)
        groups []
    in
    (* Im.fold ascends, so reversing restores canonical group order *)
    Array.of_list (List.rev gs)
  in
  run group_array;
  let traces =
    Array.map
      (fun g ->
        match g.rg_trace with
        | Some tr -> tr
        | None -> invalid_arg "Forgiving_graph: a repair group was not healed")
      group_array
  in
  let t_image = Fg_obs.Profile.start () in
  Fg_obs.Trace.with_span "fg.image" (fun _ ->
      List.iter (fun v -> Rt.drop_image_node t.rt v) victims);
  Fg_obs.Profile.stamp Fg_obs.Profile.Image t_image;
  (match b with
  | None -> ()
  | Some b ->
    List.iter (fun v -> Delta.record_node_remove b v) victims;
    Delta.record_groups b (Array.length group_array));
  if Fg_obs.Trace.enabled () || Fg_obs.Metrics.is_recording () then begin
    Fg_obs.Trace.attr sp "groups" (Fg_obs.Event.Int (Array.length group_array));
    Fg_obs.Metrics.incr "fg.batch_deletions";
    Fg_obs.Metrics.incr ~n:(List.length victims) "fg.deletions"
  end;
  Array.to_list traces)
  in
  Fg_obs.Profile.stamp Fg_obs.Profile.Heal t_heal;
  traces

let delete_batch_body t victims b =
  delete_groups_body t victims b
    ~run:(Array.iter (fun g -> heal_group_direct t g))

let delete_batch_delta t victims =
  let victims = delete_batch_checked t victims in
  with_event t (Delta.Deleted { victims }) (delete_batch_body t victims)

let delete_batch_traced t victims = snd (delete_batch_delta t victims)

let delete_batch t victims =
  let victims = delete_batch_checked t victims in
  run_event t (Delta.Deleted { victims }) (delete_batch_body t victims)

(* ---- scheduled rounds (the sharded engine's entry point) ----

   [delete_round] is [delete_batch] with the group execution delegated to
   a caller-supplied scheduler: [exec] receives the canonical group array
   and must get every group healed — directly ([heal_group_direct], on
   the calling domain, in array order) or staged ([heal_group_staged], any
   order, any domain). Staged groups are then committed here in canonical
   order, so the result is byte-identical to [delete_batch] regardless of
   how [exec] scheduled the work. *)

let commit_groups t groups =
  Array.iter
    (fun g ->
      match g.rg_stage with
      | Some st -> Rt.commit_stage t.rt st
      | None -> () (* healed directly; nothing to commit *))
    groups

let delete_round_body t victims ~exec b =
  delete_groups_body t victims b ~run:(fun groups ->
      exec groups;
      commit_groups t groups)

let delete_round_delta t ~exec victims =
  let victims = delete_batch_checked t victims in
  with_event t (Delta.Deleted { victims }) (delete_round_body t victims ~exec)

let delete_round_traced t ~exec victims = snd (delete_round_delta t ~exec victims)

let delete_round t ~exec victims =
  let victims = delete_batch_checked t victims in
  run_event t (Delta.Deleted { victims }) (delete_round_body t victims ~exec)

let graph t = Rt.image t.rt
let gprime t = t.gprime
let live_nodes t = Node_id.Tbl.fold (fun v () acc -> v :: acc) t.alive []
let num_live t = Node_id.Tbl.length t.alive
let num_seen t = Adjacency.num_nodes t.gprime

let stretch_bound t =
  let n = num_seen t in
  if n <= 1 then 0
  else begin
    let rec go p d = if p >= n then d else go (2 * p) (d + 1) in
    go 1 0
  end

let degree_bound t v = 3 * Adjacency.degree t.gprime v
let helper_load t v = Rt.helper_count t.rt v
let ctx t = t.rt
