module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency

type t = {
  gprime : Adjacency.t;
  alive : unit Node_id.Tbl.t;
  rt : Rt.ctx;
}

let create ?policy () =
  {
    gprime = Adjacency.create ();
    alive = Node_id.Tbl.create 64;
    rt = Rt.create_ctx ?policy ();
  }

let is_alive t v = Node_id.Tbl.mem t.alive v

let insert t v nbrs =
  if Adjacency.mem_node t.gprime v then
    invalid_arg "Forgiving_graph.insert: node id was already seen";
  let nbrs = List.sort_uniq Node_id.compare nbrs in
  let check u =
    if not (is_alive t u) then
      invalid_arg "Forgiving_graph.insert: neighbour is not live"
  in
  List.iter check nbrs;
  Adjacency.add_node t.gprime v;
  Node_id.Tbl.replace t.alive v ();
  Rt.add_image_node t.rt v;
  let connect u =
    Adjacency.add_edge t.gprime v u;
    Rt.add_direct t.rt v u
  in
  List.iter connect nbrs

let of_graph ?policy g =
  let t = create ?policy () in
  let nodes = List.sort Node_id.compare (Adjacency.nodes g) in
  let add v =
    Adjacency.add_node t.gprime v;
    Node_id.Tbl.replace t.alive v ();
    Rt.add_image_node t.rt v
  in
  List.iter add nodes;
  Adjacency.iter_edges
    (fun u v ->
      Adjacency.add_edge t.gprime u v;
      Rt.add_direct t.rt u v)
    g;
  t

let delete_traced t v =
  if not (is_alive t v) then invalid_arg "Forgiving_graph.delete: node is not live";
  let degree = Adjacency.degree t.gprime v in
  Fg_obs.Trace.with_span "fg.delete"
    ~attrs:[ ("node", Fg_obs.Event.Int v); ("degree", Fg_obs.Event.Int degree) ]
    (fun sp ->
      Node_id.Tbl.remove t.alive v;
      let marked = ref [] and fresh = ref [] in
      let classify x =
        let e = Edge.make v x in
        if is_alive t x then begin
          (* live neighbour: drop the direct edge, give x a leaf in the new RT *)
          Rt.remove_direct t.rt v x;
          fresh := Edge.Half.make x e :: !fresh
        end
        else begin
          (* dead neighbour: v's attachment into that RT disappears *)
          let mine = Edge.Half.make v e in
          (match Rt.find_leaf t.rt mine with
          | Some leaf -> marked := leaf :: !marked
          | None -> assert false (* a leaf exists for every dead-neighbour edge *));
          match Rt.find_helper t.rt mine with
          | Some h -> marked := h :: !marked
          | None -> ()
        end
      in
      Fg_obs.Trace.with_span "fg.collect" (fun _ ->
          List.iter classify (Adjacency.neighbors t.gprime v));
      let _root, trace = Rt.heal t.rt ~marked:!marked ~fresh:!fresh in
      Fg_obs.Trace.with_span "fg.image" (fun _ -> Rt.drop_image_node t.rt v);
      Fg_obs.Trace.attr sp "anchors" (Fg_obs.Event.Int trace.Rt.ht_anchors);
      Fg_obs.Trace.attr sp "notified" (Fg_obs.Event.Int trace.Rt.ht_notified);
      Fg_obs.Metrics.incr "fg.deletions";
      Fg_obs.Metrics.observe "fg.anchors" (float_of_int trace.Rt.ht_anchors);
      Fg_obs.Metrics.observe "fg.notified" (float_of_int trace.Rt.ht_notified);
      trace)

let delete t v = ignore (delete_traced t v)

(* Simultaneous deletion of a victim set. Victims are partitioned into
   independent repair groups — two victims interact iff they are adjacent
   in G' or their attachments live in the same RT — and each group heals
   with one combined Strip/Merge. Unrelated victims therefore do not get
   spliced into a common reconstruction tree (matching what the sequential
   algorithm would produce for them). *)
let delete_batch_traced t victims =
  let victims = List.sort_uniq Node_id.compare victims in
  List.iter
    (fun v ->
      if not (is_alive t v) then
        invalid_arg "Forgiving_graph.delete_batch: node is not live")
    victims;
  Fg_obs.Trace.with_span "fg.delete_batch"
    ~attrs:[ ("victims", Fg_obs.Event.Int (List.length victims)) ]
    (fun sp ->
  let dead = List.fold_left (fun s v -> Node_id.Set.add v s) Node_id.Set.empty victims in
  List.iter (fun v -> Node_id.Tbl.remove t.alive v) victims;
  (* per-victim marked vnodes and fresh half-edges *)
  let marked = Node_id.Tbl.create 8 and fresh = Node_id.Tbl.create 8 in
  let push tbl v x = Node_id.Tbl.replace tbl v (x :: Option.value (Node_id.Tbl.find_opt tbl v) ~default:[]) in
  let classify v x =
    let e = Edge.make v x in
    if Node_id.Set.mem x dead then begin
      (* victim-victim edge: both were live until now, so it was a direct
         edge with no attachments; drop it from the image exactly once *)
      if v < x then Rt.remove_direct t.rt v x
    end
    else if is_alive t x then begin
      Rt.remove_direct t.rt v x;
      push fresh v (Edge.Half.make x e)
    end
    else begin
      (* x died in an earlier round: v has a leaf (and maybe a helper) *)
      let mine = Edge.Half.make v e in
      (match Rt.find_leaf t.rt mine with
      | Some leaf -> push marked v leaf
      | None -> assert false);
      match Rt.find_helper t.rt mine with
      | Some h -> push marked v h
      | None -> ()
    end
  in
  Fg_obs.Trace.with_span "fg.collect" (fun _ ->
      List.iter (fun v -> List.iter (classify v) (Adjacency.neighbors t.gprime v)) victims);
  (* group victims: G'-adjacency within the batch, or a shared RT *)
  let uf = Fg_graph.Union_find.create () in
  List.iter (fun v -> ignore (Fg_graph.Union_find.find uf v)) victims;
  List.iter
    (fun v ->
      List.iter
        (fun x -> if Node_id.Set.mem x dead then ignore (Fg_graph.Union_find.union uf v x))
        (Adjacency.neighbors t.gprime v))
    victims;
  let root_owner = Hashtbl.create 8 in
  List.iter
    (fun v ->
      List.iter
        (fun (m : Rt.vnode) ->
          let r = (Rt.root_of m).Rt.id in
          match Hashtbl.find_opt root_owner r with
          | None -> Hashtbl.replace root_owner r v
          | Some u -> ignore (Fg_graph.Union_find.union uf u v))
        (Option.value (Node_id.Tbl.find_opt marked v) ~default:[]))
    victims;
  let module Im = Map.Make (Int) in
  let groups =
    List.fold_left
      (fun m v ->
        let r = Fg_graph.Union_find.find uf v in
        Im.update r (fun l -> Some (v :: Option.value l ~default:[])) m)
      Im.empty victims
  in
  let heal_group members =
    let collect tbl = List.concat_map (fun v -> Option.value (Node_id.Tbl.find_opt tbl v) ~default:[]) members in
    let _root, trace = Rt.heal t.rt ~marked:(collect marked) ~fresh:(collect fresh) in
    trace
  in
  let traces = Im.fold (fun _ members acc -> heal_group members :: acc) groups [] in
  Fg_obs.Trace.with_span "fg.image" (fun _ ->
      List.iter (fun v -> Rt.drop_image_node t.rt v) victims);
  Fg_obs.Trace.attr sp "groups" (Fg_obs.Event.Int (Im.cardinal groups));
  Fg_obs.Metrics.incr "fg.batch_deletions";
  Fg_obs.Metrics.incr ~n:(List.length victims) "fg.deletions";
  List.rev traces)

let delete_batch t victims = ignore (delete_batch_traced t victims)

let graph t = Rt.image t.rt
let gprime t = t.gprime
let live_nodes t = Node_id.Tbl.fold (fun v () acc -> v :: acc) t.alive []
let num_live t = Node_id.Tbl.length t.alive
let num_seen t = Adjacency.num_nodes t.gprime

let stretch_bound t =
  let n = num_seen t in
  if n <= 1 then 0
  else begin
    let rec go p d = if p >= n then d else go (2 * p) (d + 1) in
    go 1 0
  end

let degree_bound t v = 3 * Adjacency.degree t.gprime v
let helper_load t v = Rt.helper_count t.rt v
let ctx t = t.rt
