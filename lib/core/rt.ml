module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency

type kind = Leaf | Helper

type vnode = {
  id : int;
  kind : kind;
  half : Edge.Half.t;
  mutable parent : vnode option;
  mutable left : vnode option;
  mutable right : vnode option;
  mutable leaves : int;
  mutable height : int;
  mutable rep : vnode;
  mutable live : bool;
}

module Pair_tbl = Hashtbl.Make (struct
  type t = Node_id.t * Node_id.t

  let equal (a1, b1) (a2, b2) = Node_id.equal a1 a2 && Node_id.equal b1 b2
  let hash = Hashtbl.hash
end)

type policy = Paper | Degree_balanced

type ctx = {
  leaf_tbl : vnode Edge.Half.Tbl.t;
  helper_tbl : vnode Edge.Half.Tbl.t;
  img : Adjacency.t;
  counts : int Pair_tbl.t;  (* multiplicity of image edges, key (min, max) *)
  policy : policy;
  mutable next_id : int;
  mutable recorder : Delta.builder option;
      (* while set, every actual image flip and vnode create/discard is
         recorded into the event's delta — the single choke point *)
}

let create_ctx ?(policy = Paper) () =
  {
    leaf_tbl = Edge.Half.Tbl.create 64;
    helper_tbl = Edge.Half.Tbl.create 64;
    img = Adjacency.create ();
    counts = Pair_tbl.create 64;
    policy;
    next_id = 0;
    recorder = None;
  }

let set_recorder ctx r = ctx.recorder <- r

let image ctx = ctx.img
let add_image_node ctx p = Adjacency.add_node ctx.img p

let drop_image_node ctx p =
  if Adjacency.degree ctx.img p > 0 then
    invalid_arg "Rt.drop_image_node: processor still has edges";
  Adjacency.remove_node ctx.img p

(* ---- image edge reference counting ---- *)

let pair_key u v = if u < v then (u, v) else (v, u)

let img_inc ctx u v =
  if not (Node_id.equal u v) then begin
    let key = pair_key u v in
    let c = Option.value (Pair_tbl.find_opt ctx.counts key) ~default:0 in
    Pair_tbl.replace ctx.counts key (c + 1);
    if c = 0 then begin
      Adjacency.add_edge ctx.img u v;
      Option.iter (fun b -> Delta.record_g_add b u v) ctx.recorder;
      Fg_obs.Trace.count "image.edges_added" 1;
      Fg_obs.Metrics.incr "image.edges_added"
    end
  end

let img_dec ctx u v =
  if not (Node_id.equal u v) then begin
    let key = pair_key u v in
    match Pair_tbl.find_opt ctx.counts key with
    | None | Some 0 -> invalid_arg "Rt.img_dec: edge not present"
    | Some 1 ->
      Pair_tbl.remove ctx.counts key;
      Adjacency.remove_edge ctx.img u v;
      Option.iter (fun b -> Delta.record_g_remove b u v) ctx.recorder;
      Fg_obs.Trace.count "image.edges_removed" 1;
      Fg_obs.Metrics.incr "image.edges_removed"
    | Some c -> Pair_tbl.replace ctx.counts key (c - 1)
  end

let add_direct ctx u v = img_inc ctx u v
let remove_direct ctx u v = img_dec ctx u v

(* ---- vnode structural helpers ---- *)

let proc v = v.half.Edge.Half.proc
let find_leaf ctx half = Edge.Half.Tbl.find_opt ctx.leaf_tbl half
let find_helper ctx half = Edge.Half.Tbl.find_opt ctx.helper_tbl half
let is_complete v = v.leaves = 1 lsl v.height

let rec root_of v = match v.parent with None -> v | Some p -> root_of p

let fresh_leaf ctx half =
  let rec v =
    {
      id = ctx.next_id;
      kind = Leaf;
      half;
      parent = None;
      left = None;
      right = None;
      leaves = 1;
      height = 0;
      rep = v;
      live = true;
    }
  in
  ctx.next_id <- ctx.next_id + 1;
  assert (not (Edge.Half.Tbl.mem ctx.leaf_tbl half));
  Edge.Half.Tbl.replace ctx.leaf_tbl half v;
  Option.iter Delta.record_vnode_created ctx.recorder;
  v

(* Create a helper simulated by the representative leaf [simulator], with
   the two given children. Image edges for both child links are added. *)
let fresh_helper ctx ~simulator ~left ~right ~rep =
  let half = simulator.half in
  assert (simulator.kind = Leaf);
  assert (not (Edge.Half.Tbl.mem ctx.helper_tbl half));
  let v =
    {
      id = ctx.next_id;
      kind = Helper;
      half;
      parent = None;
      left = Some left;
      right = Some right;
      leaves = left.leaves + right.leaves;
      height = 1 + max left.height right.height;
      rep;
      live = true;
    }
  in
  ctx.next_id <- ctx.next_id + 1;
  Edge.Half.Tbl.replace ctx.helper_tbl half v;
  Option.iter Delta.record_vnode_created ctx.recorder;
  left.parent <- Some v;
  right.parent <- Some v;
  img_inc ctx (proc v) (proc left);
  img_inc ctx (proc v) (proc right);
  v

(* Discard a vnode: remove its child links (with image accounting), its
   table entry, and mark it dead. The parent link must already be gone
   (parents are discarded top-down). Returns the orphaned children. *)
let discard ctx v =
  assert (v.parent = None);
  let orphan child =
    child.parent <- None;
    img_dec ctx (proc v) (proc child)
  in
  Option.iter orphan v.left;
  Option.iter orphan v.right;
  let children = List.filter_map Fun.id [ v.left; v.right ] in
  v.left <- None;
  v.right <- None;
  v.live <- false;
  (match v.kind with
  | Leaf -> Edge.Half.Tbl.remove ctx.leaf_tbl v.half
  | Helper -> Edge.Half.Tbl.remove ctx.helper_tbl v.half);
  Option.iter Delta.record_vnode_discarded ctx.recorder;
  children

(* ---- decomposition (Strip over the broken forest) ---- *)

module Int_set = Set.Make (Int)

(* ids of every marked vnode and all of its ancestors *)
let taint_set marked =
  let rec add_up acc v =
    if Int_set.mem v.id acc then acc
    else
      let acc = Int_set.add v.id acc in
      match v.parent with None -> acc | Some p -> add_up acc p
  in
  List.fold_left add_up Int_set.empty marked

(* Walk a tree top-down. Untainted complete subtrees go to the pool;
   everything else is discarded and its children are visited. Roots passed
   in must have no parent.

   Fragment tagging: a fragment is a maximal connected piece of the broken
   RT after removing the deleted processor's (marked) vnodes; each fragment
   is one BT_v anchor. Removing a marked helper separates its two child
   subtrees from the rest, so children of a *marked* node start fresh
   fragments; red (non-primary-root) discards stay within the fragment.
   Returns pool entries tagged with their fragment id, plus the number of
   red helpers discarded. *)
let decompose ctx ~marked_ids ~tainted roots =
  let pool = ref [] in
  let discarded = ref 0 in
  let next_fid = ref 0 in
  let fresh_fid () =
    let f = !next_fid in
    incr next_fid;
    f
  in
  let rec visit fid v =
    if (not (Int_set.mem v.id tainted)) && is_complete v then
      pool := (fid, v) :: !pool
    else begin
      let was_marked = Int_set.mem v.id marked_ids in
      if (not was_marked) && v.kind = Helper then incr discarded;
      let children = discard ctx v in
      let child_fid () = if was_marked then fresh_fid () else fid in
      List.iter (fun c -> visit (child_fid ()) c) children
    end
  in
  List.iter (fun r -> visit (fresh_fid ()) r) roots;
  (!pool, !discarded)

(* ---- merge (ComputeHaft, Algorithm A.9) ---- *)

let vnode_order a b =
  let c = compare a.leaves b.leaves in
  if c <> 0 then c else compare a.id b.id

(* Policy hook for the A.9 simulator choice. The paper always consumes the
   designated side's representative; either side is valid (the new helper's
   rep is inherited from whichever side was not consumed, preserving the
   free-leaf invariant), so Degree_balanced picks the representative whose
   processor currently has the smaller image degree — the ablation of
   DESIGN.md §6 probing whether a smarter choice restores the stated 3x
   degree bound. *)
let choose_simulator ctx ~preferred ~other =
  match ctx.policy with
  | Paper -> (preferred, other)
  | Degree_balanced ->
    let deg v = Adjacency.degree ctx.img (proc v.rep) in
    if deg other < deg preferred then (other, preferred) else (preferred, other)

(* Join two equal-size complete trees: the first tree's representative
   simulates the new parent; the second tree's representative is inherited
   (A.9 lines 5-17). *)
let join_equal ctx a b =
  assert (a.leaves = b.leaves);
  let consumed, inherited = choose_simulator ctx ~preferred:a ~other:b in
  fresh_helper ctx ~simulator:consumed.rep ~left:a ~right:b ~rep:inherited.rep

(* Join a larger complete tree [big] with the accumulated smaller haft
   [small]: the larger tree's representative simulates the new parent and
   becomes the left child (A.9 lines 20-27). *)
let join_chain ctx ~big ~small =
  assert (big.leaves > small.leaves);
  let consumed, inherited = choose_simulator ctx ~preferred:big ~other:small in
  fresh_helper ctx ~simulator:consumed.rep ~left:big ~right:small ~rep:inherited.rep

(* Merge a set of complete trees into a single haft (ComputeHaft over one
   root list). Returns the root and the number of helpers created. *)
let merge_pool ctx pool =
  match List.sort vnode_order pool with
  | [] -> None
  | sorted ->
    let created = ref 0 in
    let count f a b =
      incr created;
      f a b
    in
    let rec add t = function
      | [] -> [ t ]
      | hd :: tl ->
        if t.leaves < hd.leaves then t :: hd :: tl
        else if t.leaves = hd.leaves then add (count (join_equal ctx) t hd) tl
        else hd :: add t tl
    in
    let summed = List.fold_left (fun acc t -> add t acc) [] sorted in
    (match summed with
    | [] -> None
    | smallest :: rest ->
      let join acc t =
        incr created;
        join_chain ctx ~big:t ~small:acc
      in
      Some (List.fold_left join smallest rest, !created))

(* Strip a standalone haft root back into its complete trees, discarding
   the joining ("red", Fig. 7) helpers. Returns (roots, discarded). *)
let strip_live ctx root =
  let roots = ref [] and discarded = ref 0 in
  let rec go v =
    if is_complete v then roots := v :: !roots
    else begin
      incr discarded;
      match discard ctx v with
      | [ l; r ] ->
        (* the left child of a haft node is complete by definition *)
        roots := l :: !roots;
        go r
      | _ -> assert false
    end
  in
  go root;
  (!roots, !discarded)

type merge_event = {
  me_left_sizes : int list;
  me_right_sizes : int list;
  me_left_height : int;
  me_right_height : int;
  me_created : int;
  me_discarded : int;
}

type heal_trace = {
  ht_anchors : int;
  ht_notified : int;
  ht_initial_discarded : int;
  ht_levels : merge_event list list;
  ht_root : vnode option;
}

let sizes_of roots = List.map (fun v -> v.leaves) roots
let max_height roots = List.fold_left (fun m v -> max m v.height) 0 roots

(* One BT_v unit: either a freshly fragmented set of complete trees, or the
   single haft produced by an earlier level (re-stripped when merged). *)
type btv_unit = Roots of vnode list | Whole of vnode

let unit_roots ctx = function
  | Roots rs -> (rs, 0)
  | Whole v -> strip_live ctx v

let unit_order a b =
  let key = function
    | Roots [] -> max_int
    | Roots (r :: rs) -> List.fold_left (fun m v -> min m v.id) r.id rs
    | Whole v -> v.id
  in
  compare (key a) (key b)

(* Bottom-up pairwise reduction over BT_v (Fig. 7): at every level adjacent
   units merge in parallel; an odd unit passes through. *)
let btv_reduce ctx units =
  let levels = ref [] in
  let rec loop units =
    match units with
    | [] -> None
    | [ u ] -> (
      match u with
      | Whole v -> Some v
      | Roots rs -> (
        (* a single fragment still re-merges its own complete trees *)
        match merge_pool ctx rs with
        | None -> None
        | Some (root, created) ->
          let ev =
            {
              me_left_sizes = sizes_of rs;
              me_right_sizes = [];
              me_left_height = max_height rs;
              me_right_height = 0;
              me_created = created;
              me_discarded = 0;
            }
          in
          levels := [ ev ] :: !levels;
          Some root))
    | _ ->
      let events = ref [] in
      let rec pair = function
        | a :: b :: rest ->
          let left_roots, dl = unit_roots ctx a in
          let right_roots, dr = unit_roots ctx b in
          let merged, created =
            match merge_pool ctx (left_roots @ right_roots) with
            | Some r -> r
            | None -> assert false (* both sides non-empty *)
          in
          let ev =
            {
              me_left_sizes = sizes_of left_roots;
              me_right_sizes = sizes_of right_roots;
              me_left_height = max_height left_roots;
              me_right_height = max_height right_roots;
              me_created = created;
              me_discarded = dl + dr;
            }
          in
          events := ev :: !events;
          Whole merged :: pair rest
        | ([ _ ] | []) as rest -> rest
      in
      let next = pair units in
      levels := List.rev !events :: !levels;
      loop next
  in
  let root = loop units in
  (root, List.rev !levels)

let heal ctx ~marked ~fresh =
  let tainted = taint_set marked in
  let marked_ids =
    List.fold_left (fun acc v -> Int_set.add v.id acc) Int_set.empty marked
  in
  let roots =
    (* distinct tree roots containing marked vnodes *)
    let seen = Hashtbl.create 8 in
    let collect acc v =
      let r = root_of v in
      if Hashtbl.mem seen r.id then acc
      else begin
        Hashtbl.replace seen r.id ();
        r :: acc
      end
    in
    List.fold_left collect [] marked
  in
  (* Nset size: virtual neighbours of the deleted processor's vnodes *)
  let notified =
    let count_neighbors acc (v : vnode) =
      let n = (match v.parent with Some _ -> 1 | None -> 0) in
      let n = n + (match v.left with Some _ -> 1 | None -> 0) in
      let n = n + (match v.right with Some _ -> 1 | None -> 0) in
      acc + n
    in
    List.fold_left count_neighbors (List.length fresh) marked
  in
  let pool, initial_discarded =
    Fg_obs.Trace.with_span "rt.strip" (fun sp ->
        let pool, discarded = decompose ctx ~marked_ids ~tainted roots in
        Fg_obs.Trace.attr sp "trees" (Fg_obs.Event.Int (List.length roots));
        Fg_obs.Trace.attr sp "pool" (Fg_obs.Event.Int (List.length pool));
        Fg_obs.Trace.count_span sp "rt.helpers_discarded" discarded;
        (pool, discarded))
  in
  Fg_obs.Metrics.incr "rt.strip_calls";
  Fg_obs.Metrics.incr ~n:initial_discarded "rt.helpers_discarded";
  (* group pool entries into fragments *)
  let module Im = Map.Make (Int) in
  let frags =
    List.fold_left
      (fun m (fid, v) -> Im.update fid (fun l -> Some (v :: Option.value l ~default:[])) m)
      Im.empty pool
  in
  let fragment_units = Im.fold (fun _ rs acc -> Roots rs :: acc) frags [] in
  let fresh_units = List.map (fun h -> Roots [ fresh_leaf ctx h ]) fresh in
  let units = List.sort unit_order (fragment_units @ fresh_units) in
  let anchors = List.length units in
  let root, levels =
    Fg_obs.Trace.with_span "rt.merge" (fun sp ->
        let root, levels = btv_reduce ctx units in
        let created, restripped =
          List.fold_left
            (List.fold_left (fun (c, d) ev -> (c + ev.me_created, d + ev.me_discarded)))
            (0, 0) levels
        in
        Fg_obs.Trace.attr sp "anchors" (Fg_obs.Event.Int anchors);
        Fg_obs.Trace.attr sp "levels" (Fg_obs.Event.Int (List.length levels));
        (match root with
        | Some r -> Fg_obs.Trace.attr sp "haft_leaves" (Fg_obs.Event.Int r.leaves)
        | None -> ());
        Fg_obs.Trace.count_span sp "rt.helpers_created" created;
        Fg_obs.Trace.count_span sp "rt.reps_consumed" created;
        Fg_obs.Trace.count_span sp "rt.helpers_discarded" restripped;
        Fg_obs.Metrics.incr "rt.merge_calls";
        Fg_obs.Metrics.incr ~n:created "rt.helpers_created";
        Fg_obs.Metrics.incr ~n:created "rt.reps_consumed";
        Fg_obs.Metrics.incr ~n:restripped "rt.helpers_discarded";
        (match root with
        | Some r -> Fg_obs.Metrics.observe "rt.haft_leaves" (float_of_int r.leaves)
        | None -> ());
        (root, levels))
  in
  let trace =
    {
      ht_anchors = anchors;
      ht_notified = notified;
      ht_initial_discarded = initial_discarded;
      ht_levels = levels;
      ht_root = root;
    }
  in
  (root, trace)

(* ---- traversal / export ---- *)

let iter_tree f root =
  let rec go v =
    f v;
    Option.iter go v.left;
    Option.iter go v.right
  in
  go root

let leaves_of root =
  let acc = ref [] in
  iter_tree (fun v -> if v.kind = Leaf then acc := v :: !acc) root;
  List.rev !acc

let rt_roots ctx =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let record _half leaf =
    let r = root_of leaf in
    if not (Hashtbl.mem seen r.id) then begin
      Hashtbl.replace seen r.id ();
      acc := r :: !acc
    end
  in
  Edge.Half.Tbl.iter record ctx.leaf_tbl;
  List.sort (fun a b -> compare a.id b.id) !acc

let rec to_haft v =
  match (v.left, v.right) with
  | None, None -> Fg_haft.Haft.Leaf v.half
  | Some l, Some r -> Fg_haft.Haft.node (to_haft l) (to_haft r)
  | _ -> invalid_arg "Rt.to_haft: malformed vnode (one child)"

let all_leaves ctx = Edge.Half.Tbl.fold (fun _ v acc -> v :: acc) ctx.leaf_tbl []
let all_helpers ctx = Edge.Half.Tbl.fold (fun _ v acc -> v :: acc) ctx.helper_tbl []

let helper_count ctx p =
  Edge.Half.Tbl.fold
    (fun half _ acc -> if Node_id.equal half.Edge.Half.proc p then acc + 1 else acc)
    ctx.helper_tbl 0

let pp_vnode ppf v =
  let k = match v.kind with Leaf -> "leaf" | Helper -> "helper" in
  Format.fprintf ppf "%s#%d %a (leaves=%d h=%d)" k v.id Edge.Half.pp v.half v.leaves
    v.height
