module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency

type kind = Leaf | Helper

type vnode = {
  mutable id : int;
      (* stable once assigned from the global counter; staged heals assign
         provisional ids and renumber at commit (see "staged execution") *)
  kind : kind;
  half : Edge.Half.t;
  mutable parent : vnode option;
  mutable left : vnode option;
  mutable right : vnode option;
  mutable leaves : int;
  mutable height : int;
  mutable rep : vnode;
  mutable live : bool;
}

(* Multiplicities of image edges, keyed by the packed endpoint pair
   [(min lsl 31) lor max] (node ids stay well below 2^31, so the pack is
   injective and fits a 63-bit int; [min < max] makes every key >= 1,
   freeing 0 as the empty-slot sentinel). Open addressing with linear
   probing and backward-shift deletion: [inc]/[dec] allocate nothing,
   where the tuple-keyed [Hashtbl] this replaces built a pair plus an
   option per refcount operation — the hottest call site of every heal. *)
module Counts : sig
  type t

  val create : unit -> t
  val inc : t -> int -> int  (* new count *)
  val dec : t -> int -> int  (* new count; [-1] when the key is absent *)
end = struct
  type t = {
    mutable keys : int array;  (* 0 = empty; capacity is a power of two *)
    mutable vals : int array;
    mutable n : int;  (* occupied slots, kept under half the capacity *)
  }

  let create () = { keys = Array.make 64 0; vals = Array.make 64 0; n = 0 }

  let home keys k =
    let h = (k lxor (k lsr 31)) * 0x9e3779b1 in
    (h lxor (h lsr 16)) land (Array.length keys - 1)

  (* slot holding [k], or the empty slot where it would go *)
  let slot keys k =
    let mask = Array.length keys - 1 in
    let i = ref (home keys k) in
    while keys.(!i) <> 0 && keys.(!i) <> k do
      i := (!i + 1) land mask
    done;
    !i

  let grow t =
    let old_k = t.keys and old_v = t.vals in
    let cap = 2 * Array.length old_k in
    t.keys <- Array.make cap 0;
    t.vals <- Array.make cap 0;
    for i = 0 to Array.length old_k - 1 do
      let k = old_k.(i) in
      if k <> 0 then begin
        let j = slot t.keys k in
        t.keys.(j) <- k;
        t.vals.(j) <- old_v.(i)
      end
    done

  let inc t k =
    if 2 * (t.n + 1) > Array.length t.keys then grow t;
    let i = slot t.keys k in
    if t.keys.(i) = 0 then begin
      t.keys.(i) <- k;
      t.vals.(i) <- 1;
      t.n <- t.n + 1;
      1
    end
    else begin
      let c = t.vals.(i) + 1 in
      t.vals.(i) <- c;
      c
    end

  (* Backward-shift deletion: after emptying slot [i0], walk the probe
     chain and pull back any entry whose home slot lies at or before the
     hole (cyclically), so lookups never meet a premature empty slot. *)
  let remove_at t i0 =
    let keys = t.keys and vals = t.vals in
    let mask = Array.length keys - 1 in
    keys.(i0) <- 0;
    let i = ref i0 and j = ref i0 in
    let scanning = ref true in
    while !scanning do
      j := (!j + 1) land mask;
      let k = keys.(!j) in
      if k = 0 then scanning := false
      else if (!j - home keys k) land mask >= (!j - !i) land mask then begin
        keys.(!i) <- k;
        vals.(!i) <- vals.(!j);
        keys.(!j) <- 0;
        i := !j
      end
    done;
    t.n <- t.n - 1

  let dec t k =
    let i = slot t.keys k in
    if t.keys.(i) = 0 then -1
    else begin
      let c = t.vals.(i) - 1 in
      if c = 0 then remove_at t i else t.vals.(i) <- c;
      c
    end
end

type policy = Paper | Degree_balanced

(* Reusable per-context scratch: every [heal] call needs a tainted/marked
   membership test over vnode ids, a dedup of affected tree roots, and a
   buffer of stripped complete subtrees tagged with their fragment id.
   These were functional [Int_set]s, throwaway hashtables, and a [Map] per
   heal; with vnode ids dense (the [next_id] counter), epoch-stamped int
   arrays and growable buffers answer the same queries with O(1) amortised
   allocation across repeated deletions. The epoch advances by 2 per heal
   ([mark = epoch] means tainted, [mark = epoch + 1] means marked), so no
   clearing pass is ever needed. *)
type scratch = {
  mutable mark : int array;  (* vnode id -> taint/mark stamp *)
  mutable seen : int array;  (* vnode id -> root-dedup stamp *)
  mutable epoch : int;
  mutable pool_fid : int array;  (* fragment id per pool entry *)
  mutable pool_v : vnode array;  (* stripped complete subtrees, visit order *)
  mutable pool_len : int;
  mutable frag_head : int array;  (* fid -> first pool index, -1 if none *)
  mutable pool_next : int array;  (* pool index -> next entry of same fid *)
}

type ctx = {
  leaf_tbl : vnode Edge.Half.Tbl.t;
  helper_tbl : vnode Edge.Half.Tbl.t;
  img : Adjacency.t;
  counts : Counts.t;  (* multiplicity of image edges, packed (min, max) key *)
  policy : policy;
  scratch : scratch;
  mutable next_id : int;
  mutable recorder : Delta.builder option;
      (* while set, every actual image flip and vnode create/discard is
         recorded into the event's delta — the single choke point *)
  mutable backend : backend;
      (* [Direct] applies mutations to this context's own tables and image;
         [Staged] journals them into a stage for a later serial commit on
         the base context (the sharded heal engine's parallel phase) *)
}

and backend = Direct | Staged of stage

(* Journal of one staged heal: the group-exclusive tree surgery happens
   eagerly on the vnodes themselves (groups touch disjoint RTs, so this is
   safe from any domain), while every effect on shared state — the vnode
   tables, the refcounted image, the recorder — is buffered here and
   replayed by [commit_stage] on the base context in canonical group
   order. Vnodes created during staging carry provisional ids (all larger
   than every committed id and creation-ordered, so every id comparison
   inside the heal resolves exactly as it would on the base context);
   commit renumbers them from the base counter, reproducing the flat
   engine's id sequence byte for byte. *)
and stage = {
  st_base : ctx;
  st_leaf_add : vnode Edge.Half.Tbl.t;  (* overlay: leaves created, still live *)
  st_helper_add : vnode Edge.Half.Tbl.t;
  st_leaf_removed : unit Edge.Half.Tbl.t;  (* base entries discarded *)
  st_helper_removed : unit Edge.Half.Tbl.t;
  mutable st_img : int array;
      (* refcount ops in program order: [+pack] = inc, [-pack] = dec
         (packed keys are >= 1, so the sign is free) *)
  mutable st_img_len : int;
  mutable st_created : vnode array;  (* creation order, for renumbering *)
  mutable st_created_len : int;
  mutable st_discarded : int;
  mutable st_committed : bool;
}

let dummy_vnode =
  let rec v =
    {
      id = -1;
      kind = Leaf;
      half = Edge.Half.make 0 (Edge.make 0 1);
      parent = None;
      left = None;
      right = None;
      leaves = 0;
      height = 0;
      rep = v;
      live = false;
    }
  in
  v

let create_scratch () =
  {
    mark = [||];
    seen = [||];
    epoch = 0;
    pool_fid = [||];
    pool_v = [||];
    pool_len = 0;
    frag_head = [||];
    pool_next = [||];
  }

let create_ctx ?(policy = Paper) () =
  {
    leaf_tbl = Edge.Half.Tbl.create 64;
    helper_tbl = Edge.Half.Tbl.create 64;
    img = Adjacency.create ();
    counts = Counts.create ();
    policy;
    scratch = create_scratch ();
    next_id = 0;
    recorder = None;
    backend = Direct;
  }

(* ---- stage journal primitives ---- *)

let stage_img_push st op =
  if st.st_img_len = Array.length st.st_img then begin
    let cap = max 64 (2 * st.st_img_len) in
    let a = Array.make cap 0 in
    Array.blit st.st_img 0 a 0 st.st_img_len;
    st.st_img <- a
  end;
  st.st_img.(st.st_img_len) <- op;
  st.st_img_len <- st.st_img_len + 1

let stage_note_created st v =
  if st.st_created_len = Array.length st.st_created then begin
    let cap = max 16 (2 * st.st_created_len) in
    let a = Array.make cap dummy_vnode in
    Array.blit st.st_created 0 a 0 st.st_created_len;
    st.st_created <- a
  end;
  st.st_created.(st.st_created_len) <- v;
  st.st_created_len <- st.st_created_len + 1

(* membership through the overlay: the stage's own additions shadow the
   base table, and base entries discarded during this stage are gone *)
let staged_mem ~add ~removed ~base half =
  Edge.Half.Tbl.mem add half
  || (Edge.Half.Tbl.mem base half && not (Edge.Half.Tbl.mem removed half))

let set_recorder ctx r = ctx.recorder <- r

let image ctx = ctx.img
let add_image_node ctx p = Adjacency.add_node ctx.img p

let drop_image_node ctx p =
  if Adjacency.degree ctx.img p > 0 then
    invalid_arg "Rt.drop_image_node: processor still has edges";
  Adjacency.remove_node ctx.img p

(* ---- image edge reference counting ---- *)

let pack_pair u v = if u < v then (u lsl 31) lor v else (v lsl 31) lor u

let img_inc ctx u v =
  if not (Node_id.equal u v) then
    match ctx.backend with
    | Staged st -> stage_img_push st (pack_pair u v)
    | Direct ->
      if Counts.inc ctx.counts (pack_pair u v) = 1 then begin
        Adjacency.add_edge ctx.img u v;
        (match ctx.recorder with
        | None -> ()
        | Some b -> Delta.record_g_add b u v);
        Fg_obs.Trace.count "image.edges_added" 1;
        Fg_obs.Metrics.incr "image.edges_added"
      end

let img_dec ctx u v =
  if not (Node_id.equal u v) then
    match ctx.backend with
    | Staged st -> stage_img_push st (-pack_pair u v)
    | Direct -> (
      match Counts.dec ctx.counts (pack_pair u v) with
      | -1 -> invalid_arg "Rt.img_dec: edge not present"
      | 0 ->
        Adjacency.remove_edge ctx.img u v;
        (match ctx.recorder with
        | None -> ()
        | Some b -> Delta.record_g_remove b u v);
        Fg_obs.Trace.count "image.edges_removed" 1;
        Fg_obs.Metrics.incr "image.edges_removed"
      | _ -> ())

let add_direct ctx u v = img_inc ctx u v
let remove_direct ctx u v = img_dec ctx u v

(* ---- vnode structural helpers ---- *)

let proc v = v.half.Edge.Half.proc
let find_leaf ctx half = Edge.Half.Tbl.find_opt ctx.leaf_tbl half
let find_helper ctx half = Edge.Half.Tbl.find_opt ctx.helper_tbl half
let is_complete v = v.leaves = 1 lsl v.height

let rec root_of v = match v.parent with None -> v | Some p -> root_of p

let fresh_leaf ctx half =
  let rec v =
    {
      id = ctx.next_id;
      kind = Leaf;
      half;
      parent = None;
      left = None;
      right = None;
      leaves = 1;
      height = 0;
      rep = v;
      live = true;
    }
  in
  ctx.next_id <- ctx.next_id + 1;
  (match ctx.backend with
  | Direct ->
    assert (not (Edge.Half.Tbl.mem ctx.leaf_tbl half));
    (* [add] rather than [replace]: the key is absent (asserted above), so
       this skips the bucket search [replace] would do *)
    Edge.Half.Tbl.add ctx.leaf_tbl half v;
    Option.iter Delta.record_vnode_created ctx.recorder
  | Staged st ->
    assert (
      not
        (staged_mem ~add:st.st_leaf_add ~removed:st.st_leaf_removed
           ~base:st.st_base.leaf_tbl half));
    Edge.Half.Tbl.add st.st_leaf_add half v;
    stage_note_created st v);
  v

(* Create a helper simulated by the representative leaf [simulator], with
   the two given children. Image edges for both child links are added. *)
let fresh_helper ctx ~simulator ~left ~right ~rep =
  let half = simulator.half in
  assert (simulator.kind = Leaf);
  let v =
    {
      id = ctx.next_id;
      kind = Helper;
      half;
      parent = None;
      left = Some left;
      right = Some right;
      leaves = left.leaves + right.leaves;
      height = 1 + max left.height right.height;
      rep;
      live = true;
    }
  in
  ctx.next_id <- ctx.next_id + 1;
  (match ctx.backend with
  | Direct ->
    assert (not (Edge.Half.Tbl.mem ctx.helper_tbl half));
    Edge.Half.Tbl.add ctx.helper_tbl half v;
    Option.iter Delta.record_vnode_created ctx.recorder
  | Staged st ->
    assert (
      not
        (staged_mem ~add:st.st_helper_add ~removed:st.st_helper_removed
           ~base:st.st_base.helper_tbl half));
    Edge.Half.Tbl.add st.st_helper_add half v;
    stage_note_created st v);
  left.parent <- Some v;
  right.parent <- Some v;
  img_inc ctx (proc v) (proc left);
  img_inc ctx (proc v) (proc right);
  v

(* Discard a vnode: remove its child links (with image accounting), its
   table entry, and mark it dead. The parent link must already be gone
   (parents are discarded top-down). Returns the orphaned children. *)
let discard ctx v =
  assert (v.parent = None);
  let orphan child =
    child.parent <- None;
    img_dec ctx (proc v) (proc child)
  in
  Option.iter orphan v.left;
  Option.iter orphan v.right;
  let children = List.filter_map Fun.id [ v.left; v.right ] in
  v.left <- None;
  v.right <- None;
  v.live <- false;
  (match ctx.backend with
  | Direct ->
    (match v.kind with
    | Leaf -> Edge.Half.Tbl.remove ctx.leaf_tbl v.half
    | Helper -> Edge.Half.Tbl.remove ctx.helper_tbl v.half);
    Option.iter Delta.record_vnode_discarded ctx.recorder
  | Staged st ->
    (* a vnode created by this very stage dies in its overlay; a base vnode
       is shadowed out until commit removes its table entry for real *)
    let add, removed =
      match v.kind with
      | Leaf -> (st.st_leaf_add, st.st_leaf_removed)
      | Helper -> (st.st_helper_add, st.st_helper_removed)
    in
    if Edge.Half.Tbl.mem add v.half then Edge.Half.Tbl.remove add v.half
    else Edge.Half.Tbl.replace removed v.half ();
    st.st_discarded <- st.st_discarded + 1);
  children

(* ---- decomposition (Strip over the broken forest) ---- *)

(* grow-to-fit for the scratch arrays; contents need not survive growth
   because capacity is only raised at the start of a heal, before any
   stamps or pool entries of that heal exist *)
let ensure_stamps s n =
  if Array.length s.mark < n then s.mark <- Array.make (max 64 (2 * n)) 0;
  if Array.length s.seen < n then s.seen <- Array.make (max 64 (2 * n)) 0

let pool_push s fid v =
  if s.pool_len = Array.length s.pool_v then begin
    let cap = max 16 (2 * s.pool_len) in
    let pv = Array.make cap dummy_vnode and pf = Array.make cap 0 in
    Array.blit s.pool_v 0 pv 0 s.pool_len;
    Array.blit s.pool_fid 0 pf 0 s.pool_len;
    s.pool_v <- pv;
    s.pool_fid <- pf
  end;
  s.pool_v.(s.pool_len) <- v;
  s.pool_fid.(s.pool_len) <- fid;
  s.pool_len <- s.pool_len + 1

(* Walk a tree top-down. Untainted complete subtrees go to the pool
   (ctx.scratch, in visit order); everything else is discarded and its
   children are visited. Roots passed in must have no parent.

   Fragment tagging: a fragment is a maximal connected piece of the broken
   RT after removing the deleted processor's (marked) vnodes; each fragment
   is one BT_v anchor. Removing a marked helper separates its two child
   subtrees from the rest, so children of a *marked* node start fresh
   fragments; red (non-primary-root) discards stay within the fragment.
   Returns the number of red helpers discarded and the number of fragment
   ids assigned; pool entries live in [ctx.scratch]. *)
let decompose ctx ~epoch roots =
  let s = ctx.scratch in
  s.pool_len <- 0;
  let discarded = ref 0 in
  let next_fid = ref 0 in
  let fresh_fid () =
    let f = !next_fid in
    incr next_fid;
    f
  in
  let rec visit fid v =
    if s.mark.(v.id) < epoch && is_complete v then pool_push s fid v
    else begin
      let was_marked = s.mark.(v.id) = epoch + 1 in
      if (not was_marked) && v.kind = Helper then incr discarded;
      let children = discard ctx v in
      let child_fid () = if was_marked then fresh_fid () else fid in
      List.iter (fun c -> visit (child_fid ()) c) children
    end
  in
  List.iter (fun r -> visit (fresh_fid ()) r) roots;
  (!discarded, !next_fid)

(* ---- merge (ComputeHaft, Algorithm A.9) ---- *)

let vnode_order a b =
  let c = compare a.leaves b.leaves in
  if c <> 0 then c else compare a.id b.id

(* Policy hook for the A.9 simulator choice. The paper always consumes the
   designated side's representative; either side is valid (the new helper's
   rep is inherited from whichever side was not consumed, preserving the
   free-leaf invariant), so Degree_balanced picks the representative whose
   processor currently has the smaller image degree — the ablation of
   DESIGN.md §6 probing whether a smarter choice restores the stated 3x
   degree bound. *)
let choose_simulator ctx ~preferred ~other =
  match ctx.policy with
  | Paper -> (preferred, other)
  | Degree_balanced ->
    let deg v = Adjacency.degree ctx.img (proc v.rep) in
    if deg other < deg preferred then (other, preferred) else (preferred, other)

(* Join two equal-size complete trees: the first tree's representative
   simulates the new parent; the second tree's representative is inherited
   (A.9 lines 5-17). *)
let join_equal ctx a b =
  assert (a.leaves = b.leaves);
  let consumed, inherited = choose_simulator ctx ~preferred:a ~other:b in
  fresh_helper ctx ~simulator:consumed.rep ~left:a ~right:b ~rep:inherited.rep

(* Join a larger complete tree [big] with the accumulated smaller haft
   [small]: the larger tree's representative simulates the new parent and
   becomes the left child (A.9 lines 20-27). *)
let join_chain ctx ~big ~small =
  assert (big.leaves > small.leaves);
  let consumed, inherited = choose_simulator ctx ~preferred:big ~other:small in
  fresh_helper ctx ~simulator:consumed.rep ~left:big ~right:small ~rep:inherited.rep

(* Merge a set of complete trees into a single haft (ComputeHaft over one
   root list). Returns the root and the number of helpers created. *)
let merge_pool ctx pool =
  match List.sort vnode_order pool with
  | [] -> None
  | sorted ->
    let created = ref 0 in
    let count f a b =
      incr created;
      f a b
    in
    let rec add t = function
      | [] -> [ t ]
      | hd :: tl ->
        if t.leaves < hd.leaves then t :: hd :: tl
        else if t.leaves = hd.leaves then add (count (join_equal ctx) t hd) tl
        else hd :: add t tl
    in
    let summed = List.fold_left (fun acc t -> add t acc) [] sorted in
    (match summed with
    | [] -> None
    | smallest :: rest ->
      let join acc t =
        incr created;
        join_chain ctx ~big:t ~small:acc
      in
      Some (List.fold_left join smallest rest, !created))

(* Strip a standalone haft root back into its complete trees, discarding
   the joining ("red", Fig. 7) helpers. Returns (roots, discarded). *)
let strip_live ctx root =
  let roots = ref [] and discarded = ref 0 in
  let rec go v =
    if is_complete v then roots := v :: !roots
    else begin
      incr discarded;
      match discard ctx v with
      | [ l; r ] ->
        (* the left child of a haft node is complete by definition *)
        roots := l :: !roots;
        go r
      | _ -> assert false
    end
  in
  go root;
  (!roots, !discarded)

type merge_event = {
  me_left_sizes : int list;
  me_right_sizes : int list;
  me_left_height : int;
  me_right_height : int;
  me_created : int;
  me_discarded : int;
}

type heal_trace = {
  ht_anchors : int;
  ht_notified : int;
  ht_initial_discarded : int;
  ht_levels : merge_event list list;
  ht_root : vnode option;
}

let sizes_of roots = List.map (fun v -> v.leaves) roots
let max_height roots = List.fold_left (fun m v -> max m v.height) 0 roots

(* One BT_v unit: either a freshly fragmented set of complete trees, or the
   single haft produced by an earlier level (re-stripped when merged). *)
type btv_unit = Roots of vnode list | Whole of vnode

let unit_roots ctx = function
  | Roots rs -> (rs, 0)
  | Whole v -> strip_live ctx v

let unit_order a b =
  let key = function
    | Roots [] -> max_int
    | Roots (r :: rs) -> List.fold_left (fun m v -> min m v.id) r.id rs
    | Whole v -> v.id
  in
  compare (key a) (key b)

(* Bottom-up pairwise reduction over BT_v (Fig. 7): at every level adjacent
   units merge in parallel; an odd unit passes through.

   [record] gates the merge-event bookkeeping: the event records (and their
   size lists) exist for protocol replay, harness figures, and metrics —
   when the caller will drop the trace unseen, building them is pure
   allocation on the heal path, so the fast path turns them off. The
   healed RT itself is identical either way. *)
let btv_reduce ctx ~record units =
  let levels = ref [] in
  let rec loop units =
    match units with
    | [] -> None
    | [ u ] -> (
      match u with
      | Whole v -> Some v
      | Roots rs -> (
        (* a single fragment still re-merges its own complete trees *)
        match merge_pool ctx rs with
        | None -> None
        | Some (root, created) ->
          if record then begin
            let ev =
              {
                me_left_sizes = sizes_of rs;
                me_right_sizes = [];
                me_left_height = max_height rs;
                me_right_height = 0;
                me_created = created;
                me_discarded = 0;
              }
            in
            levels := [ ev ] :: !levels
          end;
          Some root))
    | _ ->
      let events = ref [] in
      let rec pair = function
        | a :: b :: rest ->
          let left_roots, dl = unit_roots ctx a in
          let right_roots, dr = unit_roots ctx b in
          let merged, created =
            match merge_pool ctx (left_roots @ right_roots) with
            | Some r -> r
            | None -> assert false (* both sides non-empty *)
          in
          if record then begin
            let ev =
              {
                me_left_sizes = sizes_of left_roots;
                me_right_sizes = sizes_of right_roots;
                me_left_height = max_height left_roots;
                me_right_height = max_height right_roots;
                me_created = created;
                me_discarded = dl + dr;
              }
            in
            events := ev :: !events
          end;
          Whole merged :: pair rest
        | ([ _ ] | []) as rest -> rest
      in
      let next = pair units in
      if record then levels := List.rev !events :: !levels;
      loop next
  in
  let root = loop units in
  (root, List.rev !levels)

let heal ?(events = true) ctx ~marked ~fresh =
  (* never drop the event records while something is watching: spans and
     metrics aggregate them, and an installed recorder means the caller
     came through a traced entry point and will receive the trace *)
  let record =
    events || ctx.recorder <> None || Fg_obs.Trace.enabled ()
    || Fg_obs.Metrics.is_recording ()
  in
  let s = ctx.scratch in
  (* the mark/seen stamps only ever index pre-existing vnodes (marked
     vnodes, their ancestors, and the trees hanging off them) — never the
     vnodes this heal creates — so in staged mode the bound is the base
     counter, not this executor's (huge) provisional counter *)
  (match ctx.backend with
  | Direct -> ensure_stamps s ctx.next_id
  | Staged st -> ensure_stamps s st.st_base.next_id);
  s.epoch <- s.epoch + 2;
  let e = s.epoch in
  (* mark the deleted processor's vnodes, then taint every ancestor *)
  List.iter (fun v -> s.mark.(v.id) <- e + 1) marked;
  let rec taint_up v =
    match v.parent with
    | Some p when s.mark.(p.id) < e ->
      s.mark.(p.id) <- e;
      taint_up p
    | _ -> ()
  in
  List.iter taint_up marked;
  let roots =
    (* distinct tree roots containing marked vnodes *)
    let collect acc v =
      let r = root_of v in
      if s.seen.(r.id) = e then acc
      else begin
        s.seen.(r.id) <- e;
        r :: acc
      end
    in
    List.fold_left collect [] marked
  in
  (* Nset size: virtual neighbours of the deleted processor's vnodes *)
  let notified =
    let count_neighbors acc (v : vnode) =
      let n = (match v.parent with Some _ -> 1 | None -> 0) in
      let n = n + (match v.left with Some _ -> 1 | None -> 0) in
      let n = n + (match v.right with Some _ -> 1 | None -> 0) in
      acc + n
    in
    List.fold_left count_neighbors (List.length fresh) marked
  in
  let t_strip = Fg_obs.Profile.start () in
  let initial_discarded, num_fids =
    Fg_obs.Trace.with_span "rt.strip" (fun sp ->
        let discarded, num_fids = decompose ctx ~epoch:e roots in
        if Fg_obs.Trace.enabled () then begin
          Fg_obs.Trace.attr sp "trees" (Fg_obs.Event.Int (List.length roots));
          Fg_obs.Trace.attr sp "pool" (Fg_obs.Event.Int s.pool_len);
          Fg_obs.Trace.count_span sp "rt.helpers_discarded" discarded
        end;
        (discarded, num_fids))
  in
  Fg_obs.Profile.stamp Fg_obs.Profile.Strip t_strip;
  Fg_obs.Metrics.incr "rt.strip_calls";
  if Fg_obs.Metrics.is_recording () then
    Fg_obs.Metrics.incr ~n:initial_discarded "rt.helpers_discarded";
  (* group pool entries into fragments: thread a per-fid chain through the
     pool buffer (reverse scan, so chains run in visit order), then emit one
     Roots unit per non-empty fragment *)
  if Array.length s.frag_head < num_fids then
    s.frag_head <- Array.make (max 16 (2 * num_fids)) (-1)
  else Array.fill s.frag_head 0 num_fids (-1);
  if Array.length s.pool_next < s.pool_len then
    s.pool_next <- Array.make (Array.length s.pool_v) 0;
  for k = s.pool_len - 1 downto 0 do
    let f = s.pool_fid.(k) in
    s.pool_next.(k) <- s.frag_head.(f);
    s.frag_head.(f) <- k
  done;
  let fragment_units = ref [] in
  for f = num_fids - 1 downto 0 do
    if s.frag_head.(f) >= 0 then begin
      let rec chain k = if k < 0 then [] else s.pool_v.(k) :: chain s.pool_next.(k) in
      fragment_units := Roots (chain s.frag_head.(f)) :: !fragment_units
    end
  done;
  (* drop scratch references to stripped subtrees so the arena does not
     keep dead trees alive until the next heal overwrites the slots *)
  Array.fill s.pool_v 0 s.pool_len dummy_vnode;
  s.pool_len <- 0;
  let fresh_units = List.map (fun h -> Roots [ fresh_leaf ctx h ]) fresh in
  let units =
    let us = !fragment_units @ fresh_units in
    (* the common all-fresh case arrives already ordered (leaf ids ascend
       in creation order); [List.sort] is stable, so skipping it on sorted
       input yields the identical unit sequence without the O(n log n)
       mergesort allocation *)
    let rec is_sorted = function
      | a :: (b :: _ as tl) -> unit_order a b <= 0 && is_sorted tl
      | _ -> true
    in
    if is_sorted us then us else List.sort unit_order us
  in
  let anchors = List.length units in
  let t_merge = Fg_obs.Profile.start () in
  let root, levels =
    Fg_obs.Trace.with_span "rt.merge" (fun sp ->
        let root, levels = btv_reduce ctx ~record units in
        if Fg_obs.Trace.enabled () || Fg_obs.Metrics.is_recording () then begin
          let created, restripped =
            List.fold_left
              (List.fold_left (fun (c, d) ev -> (c + ev.me_created, d + ev.me_discarded)))
              (0, 0) levels
          in
          Fg_obs.Trace.attr sp "anchors" (Fg_obs.Event.Int anchors);
          Fg_obs.Trace.attr sp "levels" (Fg_obs.Event.Int (List.length levels));
          (match root with
          | Some r -> Fg_obs.Trace.attr sp "haft_leaves" (Fg_obs.Event.Int r.leaves)
          | None -> ());
          Fg_obs.Trace.count_span sp "rt.helpers_created" created;
          Fg_obs.Trace.count_span sp "rt.reps_consumed" created;
          Fg_obs.Trace.count_span sp "rt.helpers_discarded" restripped;
          Fg_obs.Metrics.incr "rt.merge_calls";
          Fg_obs.Metrics.incr ~n:created "rt.helpers_created";
          Fg_obs.Metrics.incr ~n:created "rt.reps_consumed";
          Fg_obs.Metrics.incr ~n:restripped "rt.helpers_discarded";
          match root with
          | Some r -> Fg_obs.Metrics.observe "rt.haft_leaves" (float_of_int r.leaves)
          | None -> ()
        end;
        (root, levels))
  in
  Fg_obs.Profile.stamp Fg_obs.Profile.Merge t_merge;
  let trace =
    {
      ht_anchors = anchors;
      ht_notified = notified;
      ht_initial_discarded = initial_discarded;
      ht_levels = levels;
      ht_root = root;
    }
  in
  (root, trace)

(* ---- traversal / export ---- *)

let iter_tree f root =
  let rec go v =
    f v;
    Option.iter go v.left;
    Option.iter go v.right
  in
  go root

let leaves_of root =
  let acc = ref [] in
  iter_tree (fun v -> if v.kind = Leaf then acc := v :: !acc) root;
  List.rev !acc

let rt_roots ctx =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let record _half leaf =
    let r = root_of leaf in
    if not (Hashtbl.mem seen r.id) then begin
      Hashtbl.replace seen r.id ();
      acc := r :: !acc
    end
  in
  Edge.Half.Tbl.iter record ctx.leaf_tbl;
  List.sort (fun a b -> compare a.id b.id) !acc

let rec to_haft v =
  match (v.left, v.right) with
  | None, None -> Fg_haft.Haft.Leaf v.half
  | Some l, Some r -> Fg_haft.Haft.node (to_haft l) (to_haft r)
  | _ -> invalid_arg "Rt.to_haft: malformed vnode (one child)"

let all_leaves ctx = Edge.Half.Tbl.fold (fun _ v acc -> v :: acc) ctx.leaf_tbl []
let all_helpers ctx = Edge.Half.Tbl.fold (fun _ v acc -> v :: acc) ctx.helper_tbl []

let helper_count ctx p =
  Edge.Half.Tbl.fold
    (fun half _ acc -> if Node_id.equal half.Edge.Half.proc p then acc + 1 else acc)
    ctx.helper_tbl 0

let pp_vnode ppf v =
  let k = match v.kind with Leaf -> "leaf" | Helper -> "helper" in
  Format.fprintf ppf "%s#%d %a (leaves=%d h=%d)" k v.id Edge.Half.pp v.half v.leaves
    v.height

(* ---- staged execution (the sharded heal engine's parallel phase) ----

   An executor is a shadow context for one shard: it shares the base's
   policy and a read-only view of its tables, but owns its own scratch
   arena and a provisional id counter. [run_staged] runs [heal] on an
   executor with all shared-state effects journalled into a stage;
   [commit_stage] replays stages on the base context in canonical group
   order, reproducing the flat engine's state byte for byte (see
   ARCHITECTURE.md "Sharded write path" for the argument).

   Provisional ids start at 2^60 (far above any committable real id) and
   each executor slot gets its own 2^40-wide range, so ids are unique
   across concurrent executors, every provisional id exceeds every real
   id, and within one heal they ascend in creation order — the three
   properties the heal's id comparisons ([vnode_order], [unit_order])
   need to resolve exactly as they would on the base context. *)

let prov_base = 1 lsl 60
let prov_slice = 1 lsl 40
let max_slots = 1 lsl 10

let executor ?(slot = 0) base =
  if base.policy <> Paper then
    invalid_arg "Rt.executor: staged heals require the Paper policy \
                 (Degree_balanced reads the live image during merges)";
  if slot < 0 || slot >= max_slots then invalid_arg "Rt.executor: bad slot";
  {
    base with
    scratch = create_scratch ();
    next_id = prov_base + (slot * prov_slice);
    recorder = None;
    backend = Direct;
  }

let stage base =
  (match base.backend with
  | Direct -> ()
  | Staged _ -> invalid_arg "Rt.stage: base context is itself staged");
  {
    st_base = base;
    st_leaf_add = Edge.Half.Tbl.create 8;
    st_helper_add = Edge.Half.Tbl.create 8;
    st_leaf_removed = Edge.Half.Tbl.create 8;
    st_helper_removed = Edge.Half.Tbl.create 8;
    st_img = [||];
    st_img_len = 0;
    st_created = [||];
    st_created_len = 0;
    st_discarded = 0;
    st_committed = false;
  }

let run_staged exec st ~events ~marked ~fresh =
  (match exec.backend with
  | Direct -> ()
  | Staged _ -> invalid_arg "Rt.run_staged: executor already running a stage");
  if st.st_committed then invalid_arg "Rt.run_staged: stage already committed";
  exec.backend <- Staged st;
  Fun.protect
    ~finally:(fun () -> exec.backend <- Direct)
    (fun () -> heal ~events exec ~marked ~fresh)

let commit_stage ctx st =
  if st.st_base != ctx then
    invalid_arg "Rt.commit_stage: stage is bound to a different context";
  if st.st_committed then invalid_arg "Rt.commit_stage: stage already committed";
  (match ctx.backend with
  | Direct -> ()
  | Staged _ -> invalid_arg "Rt.commit_stage: base context is staged");
  st.st_committed <- true;
  (* canonical renumbering: provisional ids collapse onto the global
     counter in creation order — committing stages in the flat engine's
     heal order therefore reproduces its exact id sequence *)
  for i = 0 to st.st_created_len - 1 do
    let v = st.st_created.(i) in
    v.id <- ctx.next_id;
    ctx.next_id <- ctx.next_id + 1
  done;
  (* table merge: base removals first, then the overlay's additions *)
  Edge.Half.Tbl.iter (fun h () -> Edge.Half.Tbl.remove ctx.leaf_tbl h) st.st_leaf_removed;
  Edge.Half.Tbl.iter
    (fun h () -> Edge.Half.Tbl.remove ctx.helper_tbl h)
    st.st_helper_removed;
  Edge.Half.Tbl.iter (fun h v -> Edge.Half.Tbl.add ctx.leaf_tbl h v) st.st_leaf_add;
  Edge.Half.Tbl.iter (fun h v -> Edge.Half.Tbl.add ctx.helper_tbl h v) st.st_helper_add;
  (* vnode churn totals through the recorder (counters, order-free) *)
  (match ctx.recorder with
  | None -> ()
  | Some b ->
    for _ = 1 to st.st_created_len do
      Delta.record_vnode_created b
    done;
    for _ = 1 to st.st_discarded do
      Delta.record_vnode_discarded b
    done);
  (* image ops through the refcounted choke point, in staged order: actual
     edge flips (and their delta records) fall out exactly where the flat
     engine's multiplicity transitions would put them *)
  let mask = (1 lsl 31) - 1 in
  for k = 0 to st.st_img_len - 1 do
    let op = st.st_img.(k) in
    let pk = abs op in
    let u = pk lsr 31 and v = pk land mask in
    if op > 0 then img_inc ctx u v else img_dec ctx u v
  done

let stage_stats st = (st.st_created_len, st.st_discarded, st.st_img_len)

let stage_ops st =
  let mask = (1 lsl 31) - 1 in
  let rec go k acc =
    if k < 0 then acc
    else
      let op = st.st_img.(k) in
      let pk = abs op in
      go (k - 1) ((pk lsr 31, pk land mask, op > 0) :: acc)
  in
  go (st.st_img_len - 1) []
