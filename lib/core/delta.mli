(** One event's complete effect on the system, as a typed record.

    Repairs in the paper "only add and remove edges, never nodes"
    (Theorem 1): structurally, every insert or delete-and-heal is an {e edge
    delta} plus bookkeeping. This module reifies that observation. The
    engine ({!Rt}, via {!Forgiving_graph}'s [*_delta] entry points) builds
    exactly one [Delta.t] per event at the image-maintenance choke point —
    the refcounted [img_inc]/[img_dec] pair through which {e all} actual
    network mutations already flow — and downstream layers consume the
    stream instead of re-deriving state: {!Fg_graph.Csr.apply_delta}
    refreshes snapshots incrementally, {!History} records deltas and
    materialises snapshots by replay, {!Invariants.check_delta} verifies
    each event in O(Δ), [Dist_engine.verify] cross-checks the distributed
    run per repair, and the delta is emitted as an [fg.delta] trace point.

    Edge lists are sorted ([Edge.compare]) and net: an image edge removed
    and re-added within one heal does not appear. All replays and
    comparisons are therefore deterministic. *)

module Node_id := Fg_graph.Node_id

type event =
  | Inserted of { node : Node_id.t; nbrs : Node_id.t list }
      (** a node joined with edges to existing live nodes *)
  | Deleted of { victims : Node_id.t list }
      (** processors deleted by the adversary and healed (singleton for
          [delete], the whole batch for [delete_batch]) *)

type t = {
  gen : int;  (** the engine generation this delta produced *)
  event : event;
  nodes_added : Node_id.t list;  (** nodes that joined the actual network *)
  nodes_removed : Node_id.t list;  (** victims dropped from the network *)
  g_added : Edge.t list;  (** net actual-network edges added, sorted *)
  g_removed : Edge.t list;  (** net actual-network edges removed, sorted *)
  gp_added : Edge.t list;  (** G' edges added (inserts only; G' never shrinks) *)
  vnodes_created : int;  (** leaves + helpers instantiated by the heal *)
  vnodes_discarded : int;
  groups : int;  (** independent repair groups healed (1 unless batched) *)
}

(** {1 Building} — used by the engine; one builder per event. *)

type builder

val builder : event -> builder

(** Record an actual-network edge flip. Calls for one edge must alternate
    (which the refcounted image guarantees); the net effect is kept. *)
val record_g_add : builder -> Node_id.t -> Node_id.t -> unit

val record_g_remove : builder -> Node_id.t -> Node_id.t -> unit
val record_gp_add : builder -> Edge.t -> unit
val record_node_add : builder -> Node_id.t -> unit
val record_node_remove : builder -> Node_id.t -> unit
val record_vnode_created : builder -> unit
val record_vnode_discarded : builder -> unit

(** [record_groups b n] sets the repair-group count (default 1). *)
val record_groups : builder -> int -> unit

val build : gen:int -> builder -> t

(** {1 Replay} *)

(** [apply ?gprime g d] replays [d] onto the mutable graph [g] (the actual
    network) and, when given, onto [gprime] (the insert-only graph).
    Replaying the recorded stream from [G_0] reproduces
    [Forgiving_graph.graph]/[gprime] exactly (property-tested). *)
val apply : ?gprime:Fg_graph.Adjacency.t -> Fg_graph.Adjacency.t -> t -> unit

(** [apply_p p d] replays the actual-network part of [d] onto a persistent
    graph, sharing structure with [p] — O(Δ log n) per event, the engine of
    {!History}'s snapshot materialisation. *)
val apply_p : Fg_graph.Persistent_graph.t -> t -> Fg_graph.Persistent_graph.t

(** {1 Derived views} *)

(** [touched d] lists every node whose adjacency row changed: endpoints of
    added/removed edges plus added nodes (deduplicated, unspecified order).
    Exactly the [~touched] argument {!Fg_graph.Csr.apply_delta} wants. *)
val touched : t -> Node_id.t list

(** [removed d] is [d.nodes_removed]. *)
val removed : t -> Node_id.t list

(** {1 Observability} *)

(** Attributes for the [fg.delta] trace point: generation, event, the three
    edge lists (as ["u-v u-v ..."] strings), vnode churn, group count. *)
val to_attrs : t -> (string * Fg_obs.Event.value) list

val pp : Format.formatter -> t -> unit
