module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency

type violation = string

let vf fmt = Printf.sprintf fmt

(* ---- hafts ---- *)

let check_hafts t =
  let errs = ref [] in
  let check_root root =
    let spec = Rt.to_haft root in
    if not (Fg_haft.Haft.is_haft spec) then
      errs := vf "RT rooted at vnode #%d is not a haft" root.Rt.id :: !errs;
    (* cached counters must agree with recomputation *)
    let check_node (v : Rt.vnode) =
      let leaves =
        match (v.left, v.right) with
        | None, None -> 1
        | Some l, Some r -> l.leaves + r.leaves
        | _ ->
          errs := vf "vnode #%d has exactly one child" v.id :: !errs;
          v.leaves
      in
      let height =
        match (v.left, v.right) with
        | None, None -> 0
        | Some l, Some r -> 1 + max l.height r.height
        | _ -> v.height
      in
      if leaves <> v.leaves then
        errs := vf "vnode #%d caches leaves=%d, actual %d" v.id v.leaves leaves :: !errs;
      if height <> v.height then
        errs := vf "vnode #%d caches height=%d, actual %d" v.id v.height height :: !errs;
      if not v.live then errs := vf "vnode #%d in a tree but not live" v.id :: !errs;
      (match v.kind with
      | Rt.Helper when v.left = None ->
        errs := vf "helper #%d has no children" v.id :: !errs
      | Rt.Leaf when v.left <> None ->
        errs := vf "leaf #%d has children" v.id :: !errs
      | _ -> ());
      (* parent backlinks *)
      let check_child (c : Rt.vnode) =
        match c.parent with
        | Some p when p.id = v.id -> ()
        | _ -> errs := vf "vnode #%d: child #%d parent backlink wrong" v.id c.id :: !errs
      in
      Option.iter check_child v.left;
      Option.iter check_child v.right
    in
    Rt.iter_tree check_node root
  in
  List.iter check_root (Rt.rt_roots (Forgiving_graph.ctx t));
  !errs

(* ---- leaves ---- *)

let check_leaves t =
  let errs = ref [] in
  let ctx = Forgiving_graph.ctx t in
  let gp = Forgiving_graph.gprime t in
  let expected = Hashtbl.create 64 in
  let record u v =
    let e = Edge.make u v in
    let need p o =
      if Forgiving_graph.is_alive t p && not (Forgiving_graph.is_alive t o) then
        Hashtbl.replace expected (p, e.Edge.a, e.Edge.b) ()
    in
    need u v;
    need v u
  in
  Adjacency.iter_edges record gp;
  (* every expected half-edge has a leaf *)
  Hashtbl.iter
    (fun (p, a, b) () ->
      let half = Edge.Half.make p (Edge.make a b) in
      if Rt.find_leaf ctx half = None then
        errs := vf "missing leaf for half-edge %d@(%d,%d)" p a b :: !errs)
    expected;
  (* every leaf is expected *)
  let check_leaf (v : Rt.vnode) =
    let { Edge.Half.proc; edge } = v.half in
    if not (Hashtbl.mem expected (proc, edge.Edge.a, edge.Edge.b)) then
      errs :=
        vf "unexpected leaf %d@(%d,%d)" proc edge.Edge.a edge.Edge.b :: !errs
  in
  List.iter check_leaf (Rt.all_leaves ctx);
  !errs

(* ---- helpers ---- *)

let rec is_strict_ancestor ~(anc : Rt.vnode) (v : Rt.vnode) =
  match v.Rt.parent with
  | None -> false
  | Some p -> p.Rt.id = anc.Rt.id || is_strict_ancestor ~anc p

let check_helpers t =
  let errs = ref [] in
  let ctx = Forgiving_graph.ctx t in
  let check (h : Rt.vnode) =
    if h.kind <> Rt.Helper then
      errs := vf "helper table holds non-helper #%d" h.id :: !errs;
    if not (Forgiving_graph.is_alive t h.half.Edge.Half.proc) then
      errs := vf "helper #%d simulated by dead processor" h.id :: !errs;
    match Rt.find_leaf ctx h.half with
    | None -> errs := vf "helper #%d has no matching leaf occurrence" h.id :: !errs
    | Some leaf ->
      if not (is_strict_ancestor ~anc:h leaf) then
        errs :=
          vf "helper #%d is not an ancestor of its simulator leaf #%d" h.id leaf.id
          :: !errs
  in
  List.iter check (Rt.all_helpers ctx);
  (* Lemma 3 consequence: a processor simulates at most deg_G' helpers *)
  let by_proc = Node_id.Tbl.create 16 in
  let count (h : Rt.vnode) =
    let p = h.half.Edge.Half.proc in
    let c = Option.value (Node_id.Tbl.find_opt by_proc p) ~default:0 in
    Node_id.Tbl.replace by_proc p (c + 1)
  in
  List.iter count (Rt.all_helpers ctx);
  Node_id.Tbl.iter
    (fun p c ->
      let d = Adjacency.degree (Forgiving_graph.gprime t) p in
      if c > d then
        errs := vf "processor %d simulates %d helpers > deg_G' = %d" p c d :: !errs)
    by_proc;
  !errs

(* ---- representatives ---- *)

let check_representatives t =
  let errs = ref [] in
  let ctx = Forgiving_graph.ctx t in
  let check_root root =
    (* free-leaf counters per internal node: a leaf l is free w.r.t. y iff
       l's helper is absent or lies strictly above y. Walking from each leaf
       towards its helper covers exactly the nodes where l counts as free. *)
    let free_count = Hashtbl.create 16 in
    let free_leaf = Hashtbl.create 16 in
    let credit (y : Rt.vnode) (l : Rt.vnode) =
      let c = Option.value (Hashtbl.find_opt free_count y.Rt.id) ~default:0 in
      Hashtbl.replace free_count y.Rt.id (c + 1);
      Hashtbl.replace free_leaf y.Rt.id l
    in
    let walk_leaf (l : Rt.vnode) =
      if l.kind = Rt.Leaf then begin
        let stop =
          match Rt.find_helper ctx l.half with
          | None -> None
          | Some h -> Some h.Rt.id
        in
        credit l l;
        let rec up (v : Rt.vnode) =
          match v.Rt.parent with
          | None -> ()
          | Some p ->
            if Some p.Rt.id <> stop then begin
              credit p l;
              up p
            end
        in
        up l
      end
    in
    Rt.iter_tree walk_leaf root;
    let check_node (y : Rt.vnode) =
      let c = Option.value (Hashtbl.find_opt free_count y.Rt.id) ~default:0 in
      if c <> 1 then
        errs := vf "vnode #%d has %d free leaves (expected 1)" y.Rt.id c :: !errs
      else begin
        let l = Hashtbl.find free_leaf y.Rt.id in
        if l.Rt.id <> y.Rt.rep.Rt.id then
          errs :=
            vf "vnode #%d: stored rep #%d but free leaf is #%d" y.Rt.id y.Rt.rep.Rt.id
              l.Rt.id
            :: !errs
      end
    in
    Rt.iter_tree check_node root
  in
  List.iter check_root (Rt.rt_roots (Forgiving_graph.ctx t));
  !errs

(* ---- image ---- *)

let recompute_image t =
  let ctx = Forgiving_graph.ctx t in
  let gp = Forgiving_graph.gprime t in
  let img = Adjacency.create () in
  List.iter (fun v -> Adjacency.add_node img v) (Forgiving_graph.live_nodes t);
  Adjacency.iter_edges
    (fun u v ->
      if Forgiving_graph.is_alive t u && Forgiving_graph.is_alive t v then
        Adjacency.add_edge img u v)
    gp;
  let tree_edges root =
    let add (v : Rt.vnode) =
      let pv = v.half.Edge.Half.proc in
      let link (c : Rt.vnode) =
        let pc = c.half.Edge.Half.proc in
        if not (Node_id.equal pv pc) then Adjacency.add_edge img pv pc
      in
      Option.iter link v.left;
      Option.iter link v.right
    in
    Rt.iter_tree add root
  in
  List.iter tree_edges (Rt.rt_roots ctx);
  img

let check_image t =
  let actual = Forgiving_graph.graph t in
  let expected = recompute_image t in
  if Adjacency.equal actual expected then []
  else
    [ vf "incremental image (%d nodes, %d edges) differs from recomputed (%d, %d)"
        (Adjacency.num_nodes actual) (Adjacency.num_edges actual)
        (Adjacency.num_nodes expected) (Adjacency.num_edges expected) ]

(* ---- bounds ---- *)

(* Per half-edge (v, e) the image has at most the rerouted real edge (1)
   plus the edges of the unique helper for e (<= 3: parent and two
   children), hence deg(v, G) <= 4 * deg(v, G'). The paper states factor 3
   (Theorem 1.1) but its proof counts only the helper edges and omits the
   real node's rerouted edge; factor 4 is the tight bound for the
   construction (see DESIGN.md). We enforce 4x as a hard invariant and let
   the experiments report the measured ratio (usually 3, occasionally 4). *)
let check_degree_bound t =
  let g = Forgiving_graph.graph t in
  let gp = Forgiving_graph.gprime t in
  let errs = ref [] in
  let check v =
    let d = Adjacency.degree g v in
    let d' = Adjacency.degree gp v in
    if d > 4 * d' then
      errs := vf "degree bound: node %d has degree %d > 4*%d" v d d' :: !errs
  in
  List.iter check (Forgiving_graph.live_nodes t);
  !errs

let paper_degree_violations t =
  let g = Forgiving_graph.graph t in
  let gp = Forgiving_graph.gprime t in
  let errs = ref [] in
  let check v =
    let d = Adjacency.degree g v in
    let d' = Adjacency.degree gp v in
    if d > 3 * d' then
      errs := vf "paper degree bound: node %d has degree %d > 3*%d" v d d' :: !errs
  in
  List.iter check (Forgiving_graph.live_nodes t);
  !errs

let check_connectivity t =
  let g = Forgiving_graph.graph t in
  let gp = Forgiving_graph.gprime t in
  let live = Forgiving_graph.live_nodes t in
  match live with
  | [] -> []
  | anchor :: _ ->
    (* union-find over G' components, then ensure every live pair in the
       same G' component is connected in G *)
    let uf = Fg_graph.Union_find.create () in
    Adjacency.iter_edges (fun u v -> ignore (Fg_graph.Union_find.union uf u v)) gp;
    let dist_g = Fg_graph.Bfs.distances g anchor in
    let errs = ref [] in
    let check v =
      if Fg_graph.Union_find.same uf anchor v && not (Node_id.Tbl.mem dist_g v) then
        errs := vf "connectivity: %d and %d connected in G' but not in G" anchor v :: !errs
    in
    List.iter check live;
    (* cross-check remaining components pairwise via component count *)
    let module M = Map.Make (Int) in
    let comp_repr = List.map (fun v -> (Fg_graph.Union_find.find uf v, v)) live in
    let groups =
      List.fold_left
        (fun m (r, v) -> M.update r (fun l -> Some (v :: Option.value l ~default:[])) m)
        M.empty comp_repr
    in
    M.iter
      (fun _ members ->
        match members with
        | [] | [ _ ] -> ()
        | first :: rest ->
          let d = Fg_graph.Bfs.distances g first in
          List.iter
            (fun v ->
              if not (Node_id.Tbl.mem d v) then
                errs :=
                  vf "connectivity: %d and %d connected in G' but not in G" first v
                  :: !errs)
            rest)
      groups;
    !errs

(* All-pairs over CSR snapshots of G and G': live sources are batched into
   multi-source BFS sweeps ([Fg_graph.Bfs_kernel.ms_run], up to 63 sources
   per pass over each snapshot), fanned across [?domains] domains. Batch
   boundaries depend only on the live-node list, and per-source violation
   lists are concatenated in source order, so the output is identical for
   any domain count — and to the per-source implementation. *)
let check_stretch_bound ?domains t =
  let bound = Forgiving_graph.stretch_bound t in
  let live = Array.of_list (List.sort Node_id.compare (Forgiving_graph.live_nodes t)) in
  let n = Array.length live in
  (* one publish: a consistent (G, G') pair of the current generation from
     the snapshot store, not two independent cache reads *)
  let snap = Forgiving_graph.publish t in
  let cg = snap.Forgiving_graph.csr in
  let cgp = snap.Forgiving_graph.gprime_csr in
  let idx csr = Array.map (fun v -> Option.value (Fg_graph.Csr.index csr v) ~default:(-1)) live in
  let live_g = idx cg and live_gp = idx cgp in
  let word = Fg_graph.Bfs_kernel.word_bits in
  (* contiguous index ranges with at most [word] BFS-needing sources each;
     a source needs BFS iff it exists in G' (G-side slots are a subset) *)
  let batches =
    let cuts = ref [] and lo = ref 0 and k = ref 0 in
    for i = 0 to n - 1 do
      if live_gp.(i) >= 0 then begin
        if !k = word then begin
          cuts := (!lo, i) :: !cuts;
          lo := i;
          k := 0
        end;
        incr k
      end
    done;
    if !lo < n then cuts := (!lo, n) :: !cuts;
    Array.of_list (List.rev !cuts)
  in
  let per_batch =
    Fg_graph.Parallel.map ?domains
      ~init:(fun () ->
        ( Fg_graph.Bfs_kernel.ms_create (),
          Fg_graph.Bfs_kernel.ms_create (),
          Array.make word 0,
          Array.make word 0 ))
      ~f:(fun (msg, msgp, bufg, bufgp) b ->
        let lo, hi = batches.(b) in
        let kgp = ref 0 and kg = ref 0 in
        for i = lo to hi - 1 do
          if live_gp.(i) >= 0 then begin
            bufgp.(!kgp) <- live_gp.(i);
            incr kgp;
            if live_g.(i) >= 0 then begin
              bufg.(!kg) <- live_g.(i);
              incr kg
            end
          end
        done;
        if !kgp > 0 then
          Fg_graph.Bfs_kernel.ms_run cgp msgp ~sources:bufgp ~off:0 ~len:!kgp;
        if !kg > 0 then
          Fg_graph.Bfs_kernel.ms_run cg msg ~sources:bufg ~off:0 ~len:!kg;
        (* walk sources in index order, re-deriving each one's slots with
           the same two counters the gather above used *)
        let sgp = ref 0 and sg = ref 0 in
        let acc = ref [] in
        for i = lo to hi - 1 do
          if live_gp.(i) >= 0 then begin
            let x = live.(i) in
            let slot_gp = !sgp in
            incr sgp;
            let slot_g =
              if live_g.(i) >= 0 then begin
                let k = !sg in
                incr sg;
                k
              end
              else -1
            in
            let errs = ref [] in
            for j = i + 1 to n - 1 do
              let y = live.(j) in
              let d' =
                if live_gp.(j) < 0 then -1
                else Fg_graph.Bfs_kernel.ms_dist msgp ~slot:slot_gp ~v:live_gp.(j)
              in
              if d' >= 0 then begin
                let d =
                  if slot_g < 0 || live_g.(j) < 0 then -1
                  else Fg_graph.Bfs_kernel.ms_dist msg ~slot:slot_g ~v:live_g.(j)
                in
                if d < 0 then
                  errs := vf "stretch: (%d,%d) connected in G' only" x y :: !errs
                else if d > bound * d' then
                  errs :=
                    vf "stretch: dist_G(%d,%d)=%d > %d * dist_G'=%d" x y d bound d'
                    :: !errs
              end
            done;
            acc := List.rev_append !errs !acc
          end
        done;
        List.rev !acc)
      (Array.length batches)
  in
  List.concat (Array.to_list per_batch)

(* ---- per-event delta audit ----

   O(Δ) in the size of the delta (hash lookups and touched-endpoint degree
   reads only), so it can run after every event — the paranoid mode of
   [fg_cli attack]. Complements the full recomputation checks above: those
   validate a state, this validates one state transition. *)
let check_delta t (d : Delta.t) =
  let g = Forgiving_graph.graph t in
  let gp = Forgiving_graph.gprime t in
  let errs = ref [] in
  List.iter
    (fun v ->
      if not (Forgiving_graph.is_alive t v) then
        errs := vf "delta: added node %d is not live" v :: !errs;
      if not (Adjacency.mem_node g v) then
        errs := vf "delta: added node %d missing from G" v :: !errs;
      if not (Adjacency.mem_node gp v) then
        errs := vf "delta: added node %d missing from G'" v :: !errs)
    d.nodes_added;
  List.iter
    (fun v ->
      if Forgiving_graph.is_alive t v then
        errs := vf "delta: removed node %d still live" v :: !errs;
      if Adjacency.mem_node g v then
        errs := vf "delta: removed node %d still in G" v :: !errs;
      if not (Adjacency.mem_node gp v) then
        errs :=
          vf "delta: removed node %d vanished from G' (G' is insert-only)" v :: !errs)
    d.nodes_removed;
  List.iter
    (fun (e : Edge.t) ->
      if not (Adjacency.mem_edge g e.a e.b) then
        errs := vf "delta: +G edge %d-%d absent from G" e.a e.b :: !errs;
      if not (Forgiving_graph.is_alive t e.a && Forgiving_graph.is_alive t e.b) then
        errs := vf "delta: +G edge %d-%d has a dead endpoint" e.a e.b :: !errs)
    d.g_added;
  List.iter
    (fun (e : Edge.t) ->
      if Adjacency.mem_edge g e.a e.b then
        errs := vf "delta: -G edge %d-%d still in G" e.a e.b :: !errs;
      (* repairs only add: an image edge removed while both endpoints
         survive cannot have been a direct live-live G' edge (its direct
         refcount contribution would have kept it alive) *)
      if
        Forgiving_graph.is_alive t e.a
        && Forgiving_graph.is_alive t e.b
        && Adjacency.mem_edge gp e.a e.b
      then
        errs := vf "delta: -G edge %d-%d removed a live direct G' edge" e.a e.b :: !errs)
    d.g_removed;
  List.iter
    (fun (e : Edge.t) ->
      if not (Adjacency.mem_edge gp e.a e.b) then
        errs := vf "delta: +G' edge %d-%d absent from G'" e.a e.b :: !errs)
    d.gp_added;
  (match d.event with
  | Delta.Inserted { node; nbrs } ->
    if d.g_removed <> [] then
      errs := vf "delta: insert removed %d G edges" (List.length d.g_removed) :: !errs;
    if d.nodes_removed <> [] then errs := "delta: insert removed nodes" :: !errs;
    if d.vnodes_discarded <> 0 then errs := "delta: insert discarded vnodes" :: !errs;
    if not (List.equal Node_id.equal d.nodes_added [ node ]) then
      errs := vf "delta: insert of %d added other nodes" node :: !errs;
    let expected = List.sort Edge.compare (List.map (Edge.make node) nbrs) in
    if not (List.equal Edge.equal d.gp_added expected) then
      errs := "delta: insert G' edges do not match declared neighbours" :: !errs;
    if not (List.equal Edge.equal d.g_added expected) then
      errs := "delta: insert G edges do not match declared neighbours" :: !errs
  | Delta.Deleted { victims } ->
    if d.gp_added <> [] then errs := "delta: delete added G' edges" :: !errs;
    if d.nodes_added <> [] then errs := "delta: delete added nodes" :: !errs;
    if not (List.equal Node_id.equal d.nodes_removed (List.sort Node_id.compare victims))
    then errs := "delta: delete victims do not match removed nodes" :: !errs);
  (* Theorem 1.1 (4x form, see check_degree_bound) on touched endpoints
     only — the only degrees an event can change *)
  let seen = Node_id.Tbl.create 16 in
  let check_deg v =
    if (not (Node_id.Tbl.mem seen v)) && Forgiving_graph.is_alive t v then begin
      Node_id.Tbl.replace seen v ();
      let dg = Adjacency.degree g v and dgp = Adjacency.degree gp v in
      if dg > 4 * dgp then
        errs := vf "delta: touched node %d degree %d > 4*%d" v dg dgp :: !errs
    end
  in
  let check_edge (e : Edge.t) =
    check_deg e.a;
    check_deg e.b
  in
  List.iter check_edge d.g_added;
  List.iter check_edge d.g_removed;
  !errs

let check t =
  List.concat
    [
      check_hafts t;
      check_leaves t;
      check_helpers t;
      check_representatives t;
      check_image t;
      check_degree_bound t;
      check_connectivity t;
    ]
