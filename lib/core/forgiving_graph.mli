(** The Forgiving Graph: self-healing overlay under adversarial attack.

    Usage mirrors the model of Section 2: start from an arbitrary connected
    graph ({!of_graph}), then apply an arbitrary interleaving of {!insert}
    and {!delete}. After every deletion the structure heals itself by adding
    edges only, maintaining (Theorem 1):

    - [degree v (graph t) <= 3 * degree v (gprime t)] for every live [v];
    - [dist (graph t) x y <= ceil(log2 n) * dist (gprime t) x y] for live
      [x, y], where [n] is the number of nodes ever seen and [gprime] is
      the insert-only graph (no deletions, no healing edges);
    - connectivity of [graph t] wherever [gprime t] connects live nodes.

    This is the centralized reference implementation: it executes the same
    Strip/Merge/representative mechanism as the distributed protocol
    ({!Fg_sim}) but in one address space. The distributed engine is tested
    against it. *)

module Node_id := Fg_graph.Node_id

type t

(** [create ()] is the empty network. [policy] selects the simulator
    choice at RT merges (default {!Rt.Paper}; see {!Rt.policy}). *)
val create : ?policy:Rt.policy -> unit -> t

(** [of_graph g] adopts [g] as the initial graph [G_0]: all nodes live, all
    edges counted as insertions in [G']. *)
val of_graph : ?policy:Rt.policy -> Fg_graph.Adjacency.t -> t

(** [insert t v nbrs] is an adversarial insertion: new node [v] joins with
    edges to the live nodes [nbrs]. Raises [Invalid_argument] if [v] was
    seen before or some neighbour is not live. Duplicate neighbours are
    collapsed. *)
val insert : t -> Node_id.t -> Node_id.t list -> unit

(** [insert_delta] is {!insert} returning the event's {!Delta.t}. Every
    mutating entry point has a [*_delta] variant. The delta stream,
    replayed from [G_0], reproduces [graph t]/[gprime t] exactly.

    The plain entry points only build a delta when something consumes it —
    a live churn ledger feeding {!publish} or an enabled trace sink;
    otherwise the event runs with no recorder installed and the delta
    machinery costs nothing. *)
val insert_delta : t -> Node_id.t -> Node_id.t list -> Delta.t

(** [delete t v] is an adversarial deletion followed by the healing repair.
    Raises [Invalid_argument] if [v] is not live. *)
val delete : t -> Node_id.t -> unit

(** [delete_delta t v] is {!delete} returning the event's delta and the
    repair trace. *)
val delete_delta : t -> Node_id.t -> Delta.t * Rt.heal_trace

(** [delete_traced t v] is {!delete} returning the repair trace (fragment
    and merge structure), which the distributed simulator converts into
    message/round/bit costs (Lemma 4). *)
val delete_traced : t -> Node_id.t -> Rt.heal_trace

(** [delete_batch t victims] deletes a set of nodes {e simultaneously} —
    an extension beyond the paper's one-per-round adversary. Victims are
    partitioned into independent repair groups (two victims interact iff
    G'-adjacent or sharing a reconstruction tree) and each group heals
    with one combined Strip/Merge, so unrelated failures stay independent
    exactly as under sequential deletion. All Theorem 1 invariants hold
    afterwards; grouped repair does no more work than the equivalent
    deletion sequence. Duplicates are collapsed; raises
    [Invalid_argument] if any victim is not live. *)
val delete_batch : t -> Node_id.t list -> unit

(** [delete_batch_traced t victims] also returns one repair trace per
    independent group. *)
val delete_batch_traced : t -> Node_id.t list -> Rt.heal_trace list

(** [delete_batch_delta t victims] returns the single combined delta of the
    batch (with [groups] = number of independent repairs) plus the per-group
    traces. *)
val delete_batch_delta : t -> Node_id.t list -> Delta.t * Rt.heal_trace list

(** {2 Scheduled rounds}

    The sharded heal engine's entry point: {!delete_round} is
    {!delete_batch} with group execution delegated to a caller-supplied
    scheduler. The planner classifies victims and partitions them into
    independent repair groups (canonical order: ascending union-find
    root) on the calling domain; [exec] receives the group array and must
    get every group healed — directly ({!heal_group_direct}: on the
    calling domain, {e in array order}) or staged
    ({!heal_group_staged}: any order, any domain, one executor per
    domain). Staged groups are then committed in canonical order, making
    the result byte-identical to {!delete_batch} for any schedule. *)

(** One independent repair group, planned and ready to heal. *)
type round_group

(** The group's victims (grouping order). *)
val group_members : round_group -> Node_id.t list

(** Smallest victim id — the group's canonical routing key. *)
val group_owner : round_group -> Node_id.t

(** Marked-vnode + fresh-leaf count: a load estimate for placement. *)
val group_work : round_group -> int

(** Processors receiving a fresh leaf — with {!group_members}, the
    group's collect set (for shard-locality accounting). *)
val group_fresh_procs : round_group -> Node_id.t list

(** The stage journalling this group's heal, once staged. *)
val group_stage : round_group -> Rt.stage option

(** Heal a group on the base context, as the flat engine would. Only
    valid inside [exec], on the calling domain, in canonical order. *)
val heal_group_direct : t -> round_group -> unit

(** Stage a group's heal on an executor (from {!round_executor}); effects
    are journalled and committed after [exec] returns. Safe from a worker
    domain when tracing/metrics/profiling are off — see
    {!Rt.run_staged}. *)
val heal_group_staged : t -> executor:Rt.ctx -> round_group -> unit

(** A per-shard staged-heal executor over this engine's context
    ({!Rt.executor}); [slot] keeps provisional ids disjoint. *)
val round_executor : ?slot:int -> t -> Rt.ctx

val delete_round : t -> exec:(round_group array -> unit) -> Node_id.t list -> unit

val delete_round_traced :
  t -> exec:(round_group array -> unit) -> Node_id.t list -> Rt.heal_trace list

val delete_round_delta :
  t ->
  exec:(round_group array -> unit) ->
  Node_id.t list ->
  Delta.t * Rt.heal_trace list

(** [graph t] is the current actual network (healed). The returned graph is
    live state — treat as read-only; copy before mutating. *)
val graph : t -> Fg_graph.Adjacency.t

(** [gprime t] is [G']: every node and edge ever inserted, deletions
    ignored. Read-only. *)
val gprime : t -> Fg_graph.Adjacency.t

(** [generation t] counts the events ([insert]/[delete]/[delete_batch])
    applied since creation; each event's delta carries the generation it
    produced. [of_graph] starts at 0. *)
val generation : t -> int

(** {2 Snapshots}

    The engine no longer caches CSR views internally: it {e publishes}
    them into a {!Fg_graph.Snapshot_store} — an atomic generation-tagged
    cell with epoch-based reclamation — and every former cache consumer is
    a view over that store. The store is what makes the paper's
    repair-vs-usage concurrency real: reader domains pin a published
    generation and answer queries against it while this (single-writer)
    engine keeps healing and publishing (see {!Fg_serve}). *)

(** One published unit: CSR views of [graph t] {e and} [gprime t] built
    from the same generation, so cross-graph metrics (stretch = distance
    ratio) never mix generations. *)
type snapshot = { csr : Fg_graph.Csr.t; gprime_csr : Fg_graph.Csr.t }

(** [publish t] brings the store's snapshot up to the current generation
    and returns it: the first call after an event refreshes the previous
    snapshot via {!Fg_graph.Csr.apply_delta} with the accumulated churn
    (O(n + Δ) array work, and a view with no churn — G' under deletions —
    is reused as is) instead of rebuilding; repeated calls within a
    generation are free. The result is structurally identical to
    [Csr.of_adjacency] of the live graphs — reports are byte-identical
    either way. If an underlying graph was mutated externally (see
    {!Fg_graph.Adjacency.version}), the publish notices and rebuilds from
    scratch. {b Writer-side only}: call from the domain that mutates [t];
    concurrent readers go through {!snapshot_store} pins. *)
val publish : t -> snapshot

(** The store [publish] feeds. Readers on other domains register a
    {!Fg_graph.Snapshot_store.reader} and pin/unpin around queries; the
    writer retires superseded snapshots only once every reader epoch has
    advanced past them. *)
val snapshot_store : t -> snapshot Fg_graph.Snapshot_store.t

(** [csr t] is [(publish t).csr] — the historical accessor, now a thin
    view over the store. Writer-side only, like {!publish}. *)
val csr : t -> Fg_graph.Csr.t

(** [gprime_csr t] is [(publish t).gprime_csr]. *)
val gprime_csr : t -> Fg_graph.Csr.t

val is_alive : t -> Node_id.t -> bool
val live_nodes : t -> Node_id.t list
val num_live : t -> int

(** [num_seen t] is [n], the number of nodes in [G']. *)
val num_seen : t -> int

(** [stretch_bound t] is [ceil(log2 (num_seen t))], the multiplicative
    stretch guarantee of Theorem 1.2 (0 when fewer than 2 nodes seen). *)
val stretch_bound : t -> int

(** [degree_bound t v] is [3 * degree v (gprime t)] (Theorem 1.1). *)
val degree_bound : t -> Node_id.t -> int

(** Number of helper vnodes processor [v] currently simulates. *)
val helper_load : t -> Node_id.t -> int

(** The underlying virtual-graph context, for invariant checks and tests. *)
val ctx : t -> Rt.ctx
