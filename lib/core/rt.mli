(** Reconstruction trees (RTs) and the virtual-graph context.

    The virtual graph of the paper consists of the live real nodes plus, for
    every deleted node, internal "helper" vnodes arranged in half-full trees
    whose leaves are the surviving endpoints of the deleted node's G'-edges.
    Each vnode is scoped to a half-edge [(proc, edge)]:

    - a {e leaf} vnode [(p, e)] exists iff [e]'s other endpoint is dead; it
      is processor [p]'s attachment point into the RT that absorbed that
      neighbour;
    - a {e helper} vnode [(p, e)] is an internal RT node simulated by [p],
      created by the representative mechanism; at most one exists per
      half-edge (Lemma 3.1).

    The context [ctx] owns the vnode tables and incrementally maintains the
    {e image}: the actual network, i.e. the homomorphic image of the virtual
    graph mapping every vnode to its processor (self-loops dropped, parallel
    virtual edges collapsed via reference counts).

    This module implements the heart of the healing step: given the marked
    vnodes of a deleted processor and the fresh leaves of its live
    neighbours, it fragments the affected RTs (Strip), discards broken
    helpers, and merges the surviving complete subtrees into a single new
    haft with the representative mechanism (Merge / ComputeHaft). *)

module Node_id := Fg_graph.Node_id

type kind = Leaf | Helper

type vnode = {
  mutable id : int;
      (** unique; used for hashing and deterministic tie-breaks. Stable
          once committed — only {!commit_stage} rewrites it, collapsing a
          staged heal's provisional ids onto the global counter *)
  kind : kind;
  half : Edge.Half.t;  (** owning processor and G'-edge scope *)
  mutable parent : vnode option;
  mutable left : vnode option;
  mutable right : vnode option;
  mutable leaves : int;  (** leaf descendants (1 for a leaf) *)
  mutable height : int;
  mutable rep : vnode;  (** representative: free leaf of this subtree *)
  mutable live : bool;  (** false once discarded *)
}

type ctx

(** Simulator-choice policy at RT merges (A.9). [Paper] consumes the
    designated side's representative exactly as the pseudocode specifies;
    [Degree_balanced] consumes whichever side's representative currently
    has the smaller image degree (the rep-inheritance invariant holds
    either way). Used by the E10 ablation probing the Theorem 1.1
    constant (DESIGN.md §6). *)
type policy = Paper | Degree_balanced

val create_ctx : ?policy:policy -> unit -> ctx

(** [set_recorder ctx (Some b)] makes every subsequent actual-network edge
    flip and vnode create/discard record itself into [b] — the delta choke
    point ({!Delta}). The engine installs a recorder around each event;
    [None] (the default) costs one load-and-branch per flip. *)
val set_recorder : ctx -> Delta.builder option -> unit

(** The incrementally maintained actual network. Direct (live-live) G'-edge
    contributions are injected by {!add_direct} / {!remove_direct}; RT tree
    edges are maintained internally. *)
val image : ctx -> Fg_graph.Adjacency.t

(** [add_image_node ctx p] ensures processor [p] exists in the image. *)
val add_image_node : ctx -> Node_id.t -> unit

(** [drop_image_node ctx p] removes an (isolated) processor from the image.
    Raises [Invalid_argument] if it still has incident edges. *)
val drop_image_node : ctx -> Node_id.t -> unit

val add_direct : ctx -> Node_id.t -> Node_id.t -> unit
val remove_direct : ctx -> Node_id.t -> Node_id.t -> unit

(** [find_leaf ctx half] is the leaf vnode for [half], if its RT exists. *)
val find_leaf : ctx -> Edge.Half.t -> vnode option

(** [find_helper ctx half] is the helper simulated by [half.proc] for
    [half.edge], if any. *)
val find_helper : ctx -> Edge.Half.t -> vnode option

(** One pairwise RT merge inside the bottom-up BT_v reduction (Fig. 7).
    Field sizes are leaf counts of the primary roots on each side; heights
    bound the probe walks of the Strip phase. *)
type merge_event = {
  me_left_sizes : int list;
  me_right_sizes : int list;
  me_left_height : int;
  me_right_height : int;
  me_created : int;  (** helper vnodes instantiated by this merge *)
  me_discarded : int;  (** red helpers removed when re-stripping inputs *)
}

(** Record of one healing step, consumed by the distributed cost model
    ({!Fg_sim}): how many fragments anchored BT_v, how many virtual
    neighbours were notified, and the merge events level by level. *)
type heal_trace = {
  ht_anchors : int;  (** BT_v size: fragments + fresh singleton leaves *)
  ht_notified : int;  (** virtual neighbours informed of the deletion *)
  ht_initial_discarded : int;  (** helpers removed while fragmenting *)
  ht_levels : merge_event list list;  (** merges, innermost = one level *)
  ht_root : vnode option;
      (** the merged RT's root ([None] if nothing survived) — lets callers
          identify the repair's leaf class, e.g. for cross-checking the
          distributed protocol per repair *)
}

(** [heal ctx ~marked ~fresh] performs the repair step for one deletion:
    [marked] are the deleted processor's vnodes (its leaf occurrences and
    helpers); [fresh] are half-edges of the live direct neighbours, for
    which new singleton leaves are created. Fragments all affected RTs
    (Strip), then merges fragments pairwise bottom-up as in the BT_v
    reduction of Fig. 7 until a single haft remains. Returns the new RT
    root ([None] if nothing survives) and the trace.

    [~events:false] skips building the per-level {!merge_event} records
    ([ht_levels] comes back [[]]), saving their allocation when the caller
    will drop the trace unseen; the healed RT is identical. The flag is
    overridden back to [true] while a delta recorder, tracing, or metrics
    recording is active, so observability never sees a truncated trace. *)
val heal :
  ?events:bool ->
  ctx -> marked:vnode list -> fresh:Edge.Half.t list -> vnode option * heal_trace

(** [root_of v] follows parent pointers. *)
val root_of : vnode -> vnode

(** [rt_roots ctx] lists the roots of all current RTs (deduplicated),
    in increasing [id] order. *)
val rt_roots : ctx -> vnode list

(** [iter_tree f root] applies [f] to every vnode of the tree. *)
val iter_tree : (vnode -> unit) -> vnode -> unit

(** [leaves_of root] lists leaf vnodes left-to-right. *)
val leaves_of : vnode -> vnode list

(** [to_haft root] converts to the pure specification tree (leaf payload =
    half-edge), for shape cross-checks against {!Fg_haft.Haft}. *)
val to_haft : vnode -> Edge.Half.t Fg_haft.Haft.t

(** [helper_count ctx p] is the number of helpers currently simulated by
    processor [p]. *)
val helper_count : ctx -> Node_id.t -> int

(** All current leaf vnodes (arbitrary order). *)
val all_leaves : ctx -> vnode list

(** All current helper vnodes (arbitrary order). *)
val all_helpers : ctx -> vnode list

val pp_vnode : Format.formatter -> vnode -> unit

(** {1 Staged execution}

    The sharded heal engine's parallel phase: independent repair groups
    run concurrently on per-shard {e executors}, journalling every effect
    on shared state into a {!stage}; the coordinator then commits stages
    serially in canonical group order, leaving the base context {e byte
    identical} to what the flat engine would have produced. See
    ARCHITECTURE.md "Sharded write path". *)

(** Journal of one staged heal, bound to the base context it forked from.
    Tree surgery (group-exclusive by construction) happens eagerly;
    vnode-table edits, refcounted image flips, and delta records are
    buffered until {!commit_stage}. *)
type stage

(** [executor ?slot base] is a shadow context for one shard: it shares
    [base]'s policy and a read-only view of its state but owns its own
    scratch arena and a disjoint provisional-id range (selected by
    [slot], default 0; at most 1024 slots). One executor must never run
    two stages concurrently — give each domain its own. Raises
    [Invalid_argument] for a non-[Paper] policy: [Degree_balanced] reads
    the live image during merges, which a staged heal must not do. *)
val executor : ?slot:int -> ctx -> ctx

(** A fresh, empty stage bound to [base]. *)
val stage : ctx -> stage

(** [run_staged exec st ~events ~marked ~fresh] runs {!heal} on the
    executor with all shared-state effects journalled into [st]. The
    inputs must form one independent repair group of a simultaneous
    deletion round (disjoint RTs across concurrently staged groups);
    [marked] vnodes must all pre-date the round. Safe to call from a
    worker domain provided tracing, metrics recording, and profiling are
    off (their sinks are not multi-domain-safe — serialize staging when
    any is on; the output is identical either way). *)
val run_staged :
  ctx ->
  stage ->
  events:bool ->
  marked:vnode list ->
  fresh:Edge.Half.t list ->
  vnode option * heal_trace

(** [commit_stage base st] replays the journal on the base context:
    renumbers created vnodes from the global counter (creation order),
    merges the vnode-table edits, and drives every buffered refcount op
    through the live image — so actual edge flips, their delta records,
    and vnode-churn counts land exactly as the flat engine's would.
    Stages of one round must be committed in canonical (ascending
    union-find root) group order. A stage commits at most once. *)
val commit_stage : ctx -> stage -> unit

(** [(created, discarded, img_ops)] journal sizes — load/telemetry. *)
val stage_stats : stage -> int * int * int

(** The buffered refcount ops in program order, [(u, v, is_inc)] — the
    per-shard event stream, for audits. Survives the commit. *)
val stage_ops : stage -> (Node_id.t * Node_id.t * bool) list
