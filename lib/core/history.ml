module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency
module P = Fg_graph.Persistent_graph

type event = Inserted of Node_id.t * Node_id.t list | Deleted of Node_id.t

let pp_event ppf = function
  | Inserted (v, nbrs) ->
    Format.fprintf ppf "insert %a -> [%a]" Node_id.pp v
      (Format.pp_print_list ~pp_sep:Format.pp_print_space Node_id.pp)
      nbrs
  | Deleted v -> Format.fprintf ppf "delete %a" Node_id.pp v

(* The history is the delta stream, not a snapshot per event: state [k] is
   materialised on demand by replaying deltas onto a persistent graph. The
   cursor remembers the deepest prefix materialised so far, so scrubbing
   forward (snapshot k, k+1, ... / series) costs O(Δ log n) per step. *)
type t = {
  fg : Forgiving_graph.t;
  initial : P.t;
  g0 : Adjacency.t;  (* private copy of G_0, the replay base *)
  publish : bool;  (* publish a store snapshot after every event *)
  mutable deltas : Delta.t list;  (* reversed *)
  mutable n : int;
  mutable cursor_k : int;
  mutable cursor_p : P.t;
}

let create ?(publish_snapshots = false) g0 =
  (* copy: the caller keeps ownership of its graph, and replays stay
     anchored to the G_0 that was actually adopted *)
  let g0 = Adjacency.copy g0 in
  let fg = Forgiving_graph.of_graph g0 in
  if publish_snapshots then ignore (Forgiving_graph.publish fg : Forgiving_graph.snapshot);
  let initial = P.of_adjacency g0 in
  {
    fg;
    initial;
    g0;
    publish = publish_snapshots;
    deltas = [];
    n = 0;
    cursor_k = 0;
    cursor_p = initial;
  }

let push t d =
  t.deltas <- d :: t.deltas;
  t.n <- t.n + 1;
  if t.publish then ignore (Forgiving_graph.publish t.fg : Forgiving_graph.snapshot)

let insert t v nbrs = push t (Forgiving_graph.insert_delta t.fg v nbrs)
let delete t v = push t (fst (Forgiving_graph.delete_delta t.fg v))
let fg t = t.fg
let length t = t.n
let deltas t = List.rev t.deltas

let rec drop k l = if k = 0 then l else drop (k - 1) (List.tl l)

let snapshot t k =
  if k < 0 || k > t.n then invalid_arg "History.snapshot: out of range";
  if k = 0 then t.initial
  else begin
    let start_k, start_p =
      if t.cursor_k <= k then (t.cursor_k, t.cursor_p) else (0, t.initial)
    in
    let p = ref start_p in
    let rest = ref (drop start_k (List.rev t.deltas)) in
    for _ = start_k + 1 to k do
      (match !rest with
      | d :: tl ->
        p := Delta.apply_p !p d;
        rest := tl
      | [] -> assert false);
    done;
    if k > t.cursor_k then begin
      t.cursor_k <- k;
      t.cursor_p <- !p
    end;
    !p
  end

let event_of_delta (d : Delta.t) =
  match d.Delta.event with
  | Delta.Inserted { node; nbrs } -> Inserted (node, nbrs)
  | Delta.Deleted { victims = [ v ] } -> Deleted v
  | Delta.Deleted _ -> invalid_arg "History: batch deletions are not recorded"

let events t = List.rev_map event_of_delta t.deltas

let series t f =
  let acc = ref [ f t.initial ] and p = ref t.initial in
  List.iter
    (fun d ->
      p := Delta.apply_p !p d;
      acc := f !p :: !acc)
    (List.rev t.deltas);
  List.rev !acc

let replayed t k =
  if k < 0 || k > t.n then invalid_arg "History.replayed: out of range";
  let g = Adjacency.copy t.g0 in
  let rec go i rest =
    if i < k then
      match rest with
      | d :: tl ->
        Delta.apply g d;
        go (i + 1) tl
      | [] -> assert false
  in
  go 0 (List.rev t.deltas);
  g
