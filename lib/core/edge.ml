module Node_id = Fg_graph.Node_id

type t = { a : Node_id.t; b : Node_id.t }

let make u v =
  if Node_id.equal u v then invalid_arg "Edge.make: self-loop";
  if u < v then { a = u; b = v } else { a = v; b = u }

let other e v =
  if Node_id.equal e.a v then e.b
  else if Node_id.equal e.b v then e.a
  else invalid_arg "Edge.other: not an endpoint"

let incident e v = Node_id.equal e.a v || Node_id.equal e.b v
let equal e1 e2 = Node_id.equal e1.a e2.a && Node_id.equal e1.b e2.b

let compare e1 e2 =
  let c = Node_id.compare e1.a e2.a in
  if c <> 0 then c else Node_id.compare e1.b e2.b

(* Hashing via [Hashtbl.hash (a, b)] built a tuple per call, on every
   hashtable probe of the heal path. Mix the endpoint ids arithmetically
   instead: multiply-xor with shift finalisers gives good low bits (OCaml's
   [Hashtbl] indexes with [hash land (buckets - 1)]) and allocates nothing. *)
let mix2 a b =
  let h = (a * 0x9e3779b1) + b in
  let h = (h lxor (h lsr 16)) * 0x85ebca6b in
  (h lxor (h lsr 13)) land max_int

let hash e = mix2 e.a e.b
let pp ppf e = Format.fprintf ppf "(%a,%a)" Node_id.pp e.a Node_id.pp e.b

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

module Half = struct
  type edge = t
  type t = { proc : Node_id.t; edge : edge }

  let make proc edge =
    if not (incident edge proc) then invalid_arg "Edge.Half.make: proc not an endpoint";
    { proc; edge }

  let equal h1 h2 = Node_id.equal h1.proc h2.proc && equal h1.edge h2.edge
  let pp ppf h = Format.fprintf ppf "%a@%a" Node_id.pp h.proc pp h.edge

  module Tbl = Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash h = mix2 h.proc (mix2 h.edge.a h.edge.b)
  end)
end
