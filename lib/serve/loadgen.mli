(** Closed-loop load generator: queries-per-second at tail latency
    {e while the adversary deletes} — the serving tier's headline
    experiment.

    [run] spawns [readers] worker domains (via {!Fg_graph.Parallel}'s
    detached-task API) that issue a weighted mix of {!Serve.query}
    classes against pinned snapshots as fast as they are answered
    (closed loop: one outstanding query per reader). Meanwhile the
    calling domain — the single writer — plays the oblivious adversary
    of the paper's model at a fixed rate: pick a live node uniformly,
    {!Fg_core.Forgiving_graph.delete} it (which heals), publish the next
    snapshot generation. Readers observe generations strictly through
    the store, so a heal never waits on a query and a query never reads
    a half-healed graph.

    The report carries per-class and overall latency histograms (merged
    from per-reader, always-on {!Fg_obs.Hdr} instances — recording is
    alloc-free and unshared, so the measurement does not perturb the
    measured), plus the store's reclamation accounting: [max_lag] is the
    measured answer to "how many dead generations can a slow reader pin
    live?". *)

type config = {
  readers : int;  (** clamped to {!Fg_graph.Parallel.pool_size} *)
  duration : float;  (** seconds of load *)
  churn_rate : float;  (** deletions per second (0 = no churn) *)
  mix : (string * int) list;
      (** query-class weights over ["distance"; "path"; "stretch";
          ["degree"]]; unknown classes are rejected, missing ones get
          weight 0 *)
  sample_pairs : int;  (** sources per [Stretch_sample] query *)
  min_live : int;  (** churn stops when [num_live] reaches this floor *)
  seed : int;  (** derives every reader's and the adversary's streams *)
}

val default_mix : (string * int) list

(** [distance=6,path=1,stretch=1,degree=2] parser for the CLI; returns
    [Error] on unknown class names or malformed entries. *)
val mix_of_string : string -> ((string * int) list, string) result

type report = {
  wall_s : float;
  queries : int;
  qps : float;
  deletes : int;
  generations : int;  (** engine generations when the run ended *)
  readers_used : int;
  store : Fg_graph.Snapshot_store.stats;
  overall : Fg_obs.Hdr.t;  (** all classes merged *)
  classes : (string * Fg_obs.Hdr.t) list;  (** per class, mix order *)
}

(** [run ?delete fg config] drives the load and blocks until [duration]
    elapses and every reader has drained. The engine must not be mutated
    by anyone else for the duration (single-writer discipline). [delete]
    replaces the churn primitive (default
    {!Fg_core.Forgiving_graph.delete}) — e.g. a sharded engine's
    round-delete — and must leave [fg] healed when it returns. Raises
    [Invalid_argument] on an invalid mix or non-positive duration. *)
val run :
  ?delete:(Fg_core.Forgiving_graph.t -> Fg_graph.Node_id.t -> unit) ->
  Fg_core.Forgiving_graph.t ->
  config ->
  report

val pp_report : Format.formatter -> report -> unit
