(** Query front-end of the serving tier: the kernels a reader domain runs
    against a pinned snapshot while the writer keeps healing.

    The paper's network serves {e paths} under attack; this module is the
    in-process version of that service. Every query executes purely
    against one {!Fg_core.Forgiving_graph.snapshot} — an immutable
    (CSR of G, CSR of G') pair of a single generation — obtained by
    pinning the engine's {!Fg_graph.Snapshot_store}. Queries never touch
    the live {!Fg_graph.Adjacency} (the writer mutates it concurrently),
    never take a lock, and never block a heal: the only synchronization
    is the store's wait-free pin.

    Per-query-class latency histograms ([serve.distance_ns],
    [serve.path_ns], [serve.stretch_ns], [serve.degree_ns]) are
    registered in {!Fg_obs.Metrics.global} at module initialization;
    {!serve_timed} records into them when metrics recording is on (and
    into a caller-supplied always-on histogram regardless), so a
    [--metrics] run exports them through OpenMetrics like every other
    telemetry stream. *)

module Node_id := Fg_graph.Node_id

type query =
  | Distance of Node_id.t * Node_id.t
      (** hop distance in the healed graph [G]; [Dist None] if either
          endpoint is dead/unseen or they are disconnected *)
  | Path of Node_id.t * Node_id.t
      (** an actual shortest path in [G] (endpoint ids inclusive) *)
  | Stretch_sample of { seed : int; pairs : int }
      (** sampled max/observed stretch: for [pairs] random live sources,
          BFS in both [G] and [G'] and compare distances over every
          target reachable in [G] *)
  | Degree_check of Node_id.t
      (** Theorem 1.1 spot check: [deg_G v <= 3 * deg_G' v] *)

type answer =
  | Dist of int option
  | Route of Node_id.t list option
  | Stretch of { max_stretch : float; pairs : int }
      (** [pairs] = (source, target) pairs actually compared; 0 pairs
          reports [max_stretch = 0.] *)
  | Degree of { degree : int; bound : int; ok : bool }

(** Every result carries the generation it was computed against — the
    torture test's handle for "exact for {e some} published generation
    ≥ the pin". *)
type result = { gen : int; answer : answer }

(** Query-class label ("distance", "path", "stretch", "degree") — keys
    the latency histograms and the load generator's mix. *)
val class_of : query -> string

(** Per-domain scratch owner: caches one {!Fg_graph.Csr.scratch} per CSR
    (by physical identity), so a worker allocates once per published
    generation, not once per query. Single-owner mutable state — one per
    reader domain. *)
type worker

val worker : unit -> worker

(** [answer w snap q] evaluates [q] against the already-pinned [snap].
    Exposed for oracles and tests; normal readers use {!serve}. *)
val answer :
  worker -> Fg_core.Forgiving_graph.snapshot Fg_graph.Snapshot_store.snapshot -> query -> result

(** [serve w reader q] pins, evaluates, unpins. *)
val serve :
  worker ->
  Fg_core.Forgiving_graph.snapshot Fg_graph.Snapshot_store.reader ->
  query ->
  result

(** [serve_timed w reader local q] is {!serve}, recording the query's
    wall latency (ns) into [local] (always — it is the caller's own
    unshared histogram) and into the query class's global sharded
    histogram when {!Fg_obs.Metrics.is_recording}. *)
val serve_timed :
  worker ->
  Fg_core.Forgiving_graph.snapshot Fg_graph.Snapshot_store.reader ->
  Fg_obs.Hdr.t ->
  query ->
  result
