module Csr = Fg_graph.Csr
module Rng = Fg_graph.Rng
module Store = Fg_graph.Snapshot_store
module Fg = Fg_core.Forgiving_graph

type query =
  | Distance of Fg_graph.Node_id.t * Fg_graph.Node_id.t
  | Path of Fg_graph.Node_id.t * Fg_graph.Node_id.t
  | Stretch_sample of { seed : int; pairs : int }
  | Degree_check of Fg_graph.Node_id.t

type answer =
  | Dist of int option
  | Route of Fg_graph.Node_id.t list option
  | Stretch of { max_stretch : float; pairs : int }
  | Degree of { degree : int; bound : int; ok : bool }

type result = { gen : int; answer : answer }

let class_of = function
  | Distance _ -> "distance"
  | Path _ -> "path"
  | Stretch_sample _ -> "stretch"
  | Degree_check _ -> "degree"

(* Registered once at module initialization; recording into them is gated
   on [Metrics.is_recording] at the emission site (fg_lint R4). *)
let hdr_distance = Fg_obs.Metrics.hdr "serve.distance_ns"
let hdr_path = Fg_obs.Metrics.hdr "serve.path_ns"
let hdr_stretch = Fg_obs.Metrics.hdr "serve.stretch_ns"
let hdr_degree = Fg_obs.Metrics.hdr "serve.degree_ns"

let hdr_of = function
  | Distance _ -> hdr_distance
  | Path _ -> hdr_path
  | Stretch_sample _ -> hdr_stretch
  | Degree_check _ -> hdr_degree

(* One scratch per CSR, keyed by physical identity: snapshots are
   immutable and a new generation is a new CSR value, so a worker pays
   one scratch allocation per published generation, not per query. *)
type cached = { key : Csr.t; scratch : Csr.scratch }
type worker = { mutable g : cached option; mutable gp : cached option } (* fg-lint: single-writer owning-worker *)

let worker () = { g = None; gp = None }

let scratch_of slot set csr =
  match slot with
  | Some c when c.key == csr -> c.scratch
  | _ ->
    let s = Csr.scratch csr in
    set { key = csr; scratch = s };
    s

let g_scratch w csr = scratch_of w.g (fun c -> w.g <- Some c) csr
let gp_scratch w csr = scratch_of w.gp (fun c -> w.gp <- Some c) csr

let eval w (snap : Fg.snapshot) q =
  match q with
  | Distance (a, b) -> (
    let g = snap.Fg.csr in
    match (Csr.index g a, Csr.index g b) with
    | Some ia, Some ib ->
      let d = Csr.bfs g (g_scratch w g) ia in
      Dist (if d.(ib) < 0 then None else Some d.(ib))
    | _ -> Dist None)
  | Path (a, b) -> (
    let g = snap.Fg.csr in
    match (Csr.index g a, Csr.index g b) with
    | Some ia, Some ib ->
      (* BFS from the destination, then walk downhill from the source:
         each hop goes to the first (ascending) neighbor one closer to
         [b], which is deterministic and yields a shortest path. *)
      let d = Csr.bfs g (g_scratch w g) ib in
      if d.(ia) < 0 then Route None
      else begin
        let rev = ref [ Csr.id g ia ] and cur = ref ia in
        while d.(!cur) > 0 do
          let next = ref (-1) in
          Csr.iter_row (fun nb -> if !next < 0 && d.(nb) = d.(!cur) - 1 then next := nb) g !cur;
          assert (!next >= 0);
          cur := !next;
          rev := Csr.id g !cur :: !rev
        done;
        Route (Some (List.rev !rev))
      end
    | _ -> Route None)
  | Degree_check v ->
    let deg =
      match Csr.index snap.Fg.csr v with Some i -> Csr.degree snap.Fg.csr i | None -> 0
    in
    let gdeg =
      match Csr.index snap.Fg.gprime_csr v with
      | Some i -> Csr.degree snap.Fg.gprime_csr i
      | None -> 0
    in
    let bound = 3 * gdeg in
    Degree { degree = deg; bound; ok = deg <= bound }
  | Stretch_sample { seed; pairs } ->
    let g = snap.Fg.csr and gp = snap.Fg.gprime_csr in
    let n = Csr.num_nodes g in
    if n = 0 || pairs <= 0 then Stretch { max_stretch = 0.; pairs = 0 }
    else begin
      let rng = Rng.create seed in
      let sg = g_scratch w g and sgp = gp_scratch w gp in
      let max_st = ref 0. and count = ref 0 in
      for _ = 1 to pairs do
        let src = Rng.int rng n in
        let dg = Csr.bfs g sg src in
        (* every node of G is live, hence present in G'; defensive skip
           if a foreign snapshot pair ever violates that *)
        match Csr.index gp (Csr.id g src) with
        | None -> ()
        | Some src_gp ->
          let dgp = Csr.bfs gp sgp src_gp in
          let k = Csr.visited_count sg in
          for j = 1 to k - 1 do
            let tgt = Csr.visited sg j in
            match Csr.index gp (Csr.id g tgt) with
            | None -> ()
            | Some tgt_gp ->
              let dp = dgp.(tgt_gp) in
              if dp > 0 then begin
                incr count;
                let st = float_of_int dg.(tgt) /. float_of_int dp in
                if st > !max_st then max_st := st
              end
          done
      done;
      Stretch { max_stretch = !max_st; pairs = !count }
    end

let answer w (s : Fg.snapshot Store.snapshot) q = { gen = s.Store.gen; answer = eval w s.Store.value q }
let serve w r q = Store.with_pin r (fun s -> answer w s q)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let serve_timed w r local q =
  let t0 = now_ns () in
  let res = serve w r q in
  let dt = now_ns () - t0 in
  Fg_obs.Hdr.record local dt;
  if Fg_obs.Metrics.is_recording () then Fg_obs.Hdr.record_sharded (hdr_of q) dt;
  res
