module Fg = Fg_core.Forgiving_graph
module Parallel = Fg_graph.Parallel
module Rng = Fg_graph.Rng
module Store = Fg_graph.Snapshot_store
module Hdr = Fg_obs.Hdr

type config = {
  readers : int;
  duration : float;
  churn_rate : float;
  mix : (string * int) list;
  sample_pairs : int;
  min_live : int;
  seed : int;
}

let class_names = [ "distance"; "path"; "stretch"; "degree" ]
let default_mix = [ ("distance", 6); ("path", 1); ("stretch", 1); ("degree", 2) ]

let mix_of_string s =
  let parts = List.filter (fun p -> String.trim p <> "") (String.split_on_char ',' s) in
  if parts = [] then Error "empty query mix"
  else begin
    try
      Ok
        (List.map
           (fun p ->
             match String.split_on_char '=' (String.trim p) with
             | [ c; w ] -> (
               let c = String.trim c in
               if not (List.mem c class_names) then failwith ("unknown query class: " ^ c);
               match int_of_string_opt (String.trim w) with
               | Some w when w >= 0 -> (c, w)
               | _ -> failwith ("bad weight for class " ^ c))
             | _ -> failwith ("malformed mix entry: " ^ String.trim p))
           parts)
    with Failure m -> Error m
  end

(* Per-reader results: written by the reader task, read by the driver
   strictly after [Parallel.await] (the task's completion handshake is
   the happens-before edge). *)
type reader_out = { mutable queries : int; hists : (string * Hdr.t) list } (* fg-lint: single-writer reader-task *)

type report = {
  wall_s : float;
  queries : int;
  qps : float;
  deletes : int;
  generations : int;
  readers_used : int;
  store : Store.stats;
  overall : Hdr.t;
  classes : (string * Hdr.t) list;
}

let make_query rng ~ids ~sample_pairs tag =
  let node () = Rng.pick_array rng ids in
  match tag with
  | "distance" -> Serve.Distance (node (), node ())
  | "path" -> Serve.Path (node (), node ())
  | "stretch" -> Serve.Stretch_sample { seed = Rng.int rng 0x3FFFFFFF; pairs = sample_pairs }
  | "degree" -> Serve.Degree_check (node ())
  | _ -> assert false

let reader_loop ~stop ~store ~ids ~cfg ~idx ~out () =
  if Array.length ids > 0 then begin
    let rng = Rng.create (cfg.seed + (7919 * (idx + 1))) in
    let r = Store.reader store in
    let w = Serve.worker () in
    (* weight-expanded choice array: O(1) class draw, handle to the
       reader's own always-on histogram alongside *)
    let choices =
      Array.of_list
        (List.concat_map
           (fun (c, weight) ->
             match List.assoc_opt c out.hists with
             | Some h -> List.init weight (fun _ -> (c, h))
             | None -> [])
           cfg.mix)
    in
    while not (Atomic.get stop) do
      let tag, local = Rng.pick_array rng choices in
      let q = make_query rng ~ids ~sample_pairs:cfg.sample_pairs tag in
      ignore (Serve.serve_timed w r local q : Serve.result);
      out.queries <- out.queries + 1
    done
  end

let run ?(delete = Fg.delete) fg cfg =
  if cfg.duration <= 0. then invalid_arg "Loadgen.run: duration must be positive";
  (match mix_of_string (String.concat "," (List.map (fun (c, w) -> Printf.sprintf "%s=%d" c w) cfg.mix)) with
  | Ok _ -> ()
  | Error m -> invalid_arg ("Loadgen.run: " ^ m));
  if List.for_all (fun (_, w) -> w = 0) cfg.mix then invalid_arg "Loadgen.run: all-zero query mix";
  (* Publish generation 0 of the run before any reader spawns, so [pin]
     always finds a snapshot. *)
  ignore (Fg.publish fg : Fg.snapshot);
  let store = Fg.snapshot_store fg in
  (* Freeze the id universe writer-side: churn only deletes, so G' (and
     hence this array) is stable for the whole run, and readers never
     touch the live adjacency. *)
  let ids = Array.of_list (Fg_graph.Adjacency.nodes (Fg.gprime fg)) in
  let readers = max 1 (min cfg.readers (Parallel.pool_size ())) in
  let stop = Atomic.make false in
  let outs =
    Array.init readers (fun _ ->
        {
          queries = 0;
          hists =
            List.filter_map
              (fun (c, w) -> if w > 0 then Some (c, Hdr.create ()) else None)
              cfg.mix;
        })
  in
  let tasks =
    Array.init readers (fun idx ->
        Parallel.submit (reader_loop ~stop ~store ~ids ~cfg ~idx ~out:outs.(idx)))
  in
  let wrng = Rng.create (cfg.seed + 13) in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. cfg.duration in
  let deletes = ref 0 in
  let period = if cfg.churn_rate > 0. then 1. /. cfg.churn_rate else infinity in
  let next_del = ref (t0 +. period) in
  let rec drive () =
    let now = Unix.gettimeofday () in
    if now < deadline then begin
      if now >= !next_del then begin
        if Fg.num_live fg > cfg.min_live then begin
          match Fg.live_nodes fg with
          | [] -> ()
          | live ->
            delete fg (Rng.pick wrng live);
            incr deletes;
            ignore (Fg.publish fg : Fg.snapshot)
        end;
        next_del := !next_del +. period;
        (* if the heal ran longer than the period, shed the backlog
           instead of bursting to catch up *)
        if !next_del < now then next_del := now +. period
      end
      else Unix.sleepf (min 0.0005 (min (deadline -. now) (!next_del -. now)));
      drive ()
    end
  in
  drive ();
  Atomic.set stop true;
  Array.iter Parallel.await tasks;
  let wall = Unix.gettimeofday () -. t0 in
  let overall = Hdr.create () in
  let merged =
    List.filter_map
      (fun (c, w) ->
        if w = 0 then None
        else begin
          let h = Hdr.create () in
          Array.iter
            (fun o ->
              match List.assoc_opt c o.hists with
              | Some src -> Hdr.merge_into ~src ~into:h
              | None -> ())
            outs;
          Hdr.merge_into ~src:h ~into:overall;
          Some (c, h)
        end)
      cfg.mix
  in
  let queries = Array.fold_left (fun acc (o : reader_out) -> acc + o.queries) 0 outs in
  {
    wall_s = wall;
    queries;
    qps = (if wall > 0. then float_of_int queries /. wall else 0.);
    deletes = !deletes;
    generations = Fg.generation fg;
    readers_used = readers;
    store = Store.stats store;
    overall;
    classes = merged;
  }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%d queries in %.2fs = %.0f qps (%d readers); %d deletes, gen %d@,"
    r.queries r.wall_s r.qps r.readers_used r.deletes r.generations;
  Format.fprintf ppf "store: %a@," Store.pp_stats r.store;
  let line name h =
    if not (Hdr.is_empty h) then
      Format.fprintf ppf "  %-9s n=%-9d p50=%8.1fus  p99=%8.1fus  max=%8.1fus@," name
        (Hdr.count h)
        (float_of_int (Hdr.p50 h) /. 1e3)
        (float_of_int (Hdr.p99 h) /. 1e3)
        (float_of_int (Hdr.max_value h) /. 1e3)
  in
  line "overall" r.overall;
  List.iter (fun (c, h) -> line c h) r.classes;
  Format.fprintf ppf "@]"
