(** Run-length encoded immutable map over the dense domain [0 .. len-1],
    in the style of prohlatype's [partition_map]: adjacent equal values
    are merged into runs, so storage is O(runs) and lookup is
    O(log runs). Built for sparse per-component bookkeeping on CSR
    snapshots (component labels, membership over dense-id ranges), where
    a million-entry per-node array wastes cache on a handful of distinct
    values. *)

type 'a t

(** [init ?equal ~len f] tabulates [f] over [0 .. len-1], merging
    adjacent values equal under [equal] (default [( = )]) into runs.
    [f] is called O(len) times (twice per index). *)
val init : ?equal:('a -> 'a -> bool) -> len:int -> (int -> 'a) -> 'a t

(** [of_array a] is [init ~len:(Array.length a) (Array.get a)]. *)
val of_array : ?equal:('a -> 'a -> bool) -> 'a array -> 'a t

(** [get t i] is the value at index [i]. O(log runs); no allocation.
    Raises [Invalid_argument] outside [0 .. length t - 1]. *)
val get : 'a t -> int -> 'a

(** Domain size [len]. *)
val length : 'a t -> int

(** Number of runs (0 iff [length t = 0]). *)
val run_count : 'a t -> int

(** [iter_runs f t] applies [f ~lo ~hi v] to each run, ascending;
    the run covers indices [lo .. hi-1]. *)
val iter_runs : (lo:int -> hi:int -> 'a -> unit) -> 'a t -> unit

(** [fold_runs f t acc] folds over runs in ascending order. *)
val fold_runs : (lo:int -> hi:int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

(** Expand back to a dense array (tests, oracles). *)
val to_array : 'a t -> 'a array

(** Structural equality of domains, run boundaries and values. *)
val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
