(** Betweenness centrality (Brandes' algorithm).

    Used by the cascading-failure baseline (experiment E9): in the
    Motter–Lai model a vertex's "load" is the number of shortest paths
    through it, which is exactly unnormalised betweenness. *)

(** [betweenness g] maps every node to the number of shortest paths passing
    through it (endpoints excluded), counting each unordered pair once.
    Includes the endpoints' own pair contributions as 0. [?csr] supplies a
    prebuilt snapshot of [g], skipping the build. *)
val betweenness : ?csr:Csr.t -> Adjacency.t -> float Node_id.Tbl.t

(** [degree_centrality g] maps every node to its degree (convenience for
    attack-strategy ranking). *)
val degree_centrality : Adjacency.t -> int Node_id.Tbl.t

(** [top_k tbl k ~compare] returns up to [k] node ids with the largest
    values, largest first; ties broken by smaller id. *)
val top_k : 'a Node_id.Tbl.t -> int -> compare:('a -> 'a -> int) -> Node_id.t list
