(* Memory-bandwidth BFS kernels over {!Csr} snapshots.

   Two kernels, both allocation-free in the steady state (gated by
   test_alloc), both reading the off-heap int32 rows directly:

   - [bfs]: direction-optimizing single-source BFS (Beamer et al.,
     SC'12): top-down frontier expansion switches to a bottom-up sweep
     ("which unvisited vertex has a frontier parent?") when the frontier
     is edge-dense, and back when it thins. On low-diameter graphs the
     two or three middle levels contain almost every edge; scanning the
     unvisited side touches each such edge at most once instead of once
     per endpoint.
   - [ms_run]: batched multi-source BFS (Then et al., VLDB'14): up to
     [word_bits] sources share one sweep, with per-node visited/frontier
     bitmasks packed into native ints, so the row data is streamed once
     per level for the whole batch instead of once per source.

   Both produce distance arrays identical to [Csr.bfs] (BFS levels are
   unique); only settle order inside a level may differ. *)

type int32_arr = Csr.int32_arr

let[@inline] get (a : int32_arr) i = Int32.to_int (Bigarray.Array1.unsafe_get a i)

let[@inline] set (a : int32_arr) i v =
  Bigarray.Array1.unsafe_set a i (Int32.of_int v)

(* ---- byte-granular bitset (bottom-up frontier membership) ---- *)

let[@inline] bit_get b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let[@inline] bit_set b i =
  let w = i lsr 3 in
  Bytes.unsafe_set b w
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b w) lor (1 lsl (i land 7))))

let[@inline] bit_clear b i =
  let w = i lsr 3 in
  Bytes.unsafe_set b w
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b w) land lnot (1 lsl (i land 7)) land 0xFF))

(* ---- direction-optimizing single-source BFS ---- *)

type scratch = {
  dist : int array;
  settled : int array; (* settle order; levels are contiguous ranges *)
  front : Bytes.t; (* frontier bitset, populated only for bottom-up levels *)
  mutable touched : int; (* settled.(0 .. touched-1) were set by the last run *)
}

let create t =
  let n = max 1 (Csr.num_nodes t) in
  {
    dist = Array.make n (-1);
    settled = Array.make n 0;
    front = Bytes.make ((n + 7) / 8) '\000';
    touched = 0;
  }

(* Calibrated by an all-sources sweep over healed-ER and BA snapshots
   (see ARCHITECTURE.md "The read path"): on bounded-degree graphs the
   bottom-up scan's n distance reads are expensive relative to the small
   edge count, so only a frontier holding over half the unexplored
   endpoints (alpha = 2) pays for the switch. Beamer's alpha = 14-15
   (tuned on scale-free social graphs) loses 30-60% here. *)
let default_alpha = 2
let default_beta = 20

let bfs ?(alpha = default_alpha) ?(beta = default_beta) t s src =
  let dist = s.dist and settled = s.settled in
  (* undo only what the previous run wrote *)
  for k = 0 to s.touched - 1 do
    dist.(settled.(k)) <- -1
  done;
  let offsets = Csr.row_offsets t and adj = Csr.row_adjacency t in
  let n = Csr.num_nodes t in
  dist.(src) <- 0;
  settled.(0) <- src;
  let lo = ref 0 and hi = ref 1 in
  let d = ref 0 in
  (* Beamer's m_u: endpoints hanging off still-unexplored vertices *)
  let edges_rem = ref (Bigarray.Array1.dim adj) in
  let frontier_edges = ref (get offsets (src + 1) - get offsets src) in
  let bottom_up = ref false in
  while !lo < !hi do
    let next_d = !d + 1 in
    let tail = ref !hi in
    let next_edges = ref 0 in
    edges_rem := !edges_rem - !frontier_edges;
    (* division forms so forcing values cannot overflow: go bottom-up when
       m_f > m_u / alpha, return when the frontier shrinks below n / beta *)
    if !bottom_up then begin
      if !hi - !lo < n / beta then bottom_up := false
    end
    else if alpha > 0 && !frontier_edges > !edges_rem / alpha then
      bottom_up := true;
    if !bottom_up then begin
      for k = !lo to !hi - 1 do
        bit_set s.front settled.(k)
      done;
      for v = 0 to n - 1 do
        if dist.(v) < 0 then begin
          let first = get offsets v in
          let stop = ref (get offsets (v + 1)) in
          let e = ref first in
          while !e < !stop do
            if bit_get s.front (get adj !e) then begin
              dist.(v) <- next_d;
              settled.(!tail) <- v;
              incr tail;
              next_edges := !next_edges + (!stop - first);
              stop := !e (* found a parent: stop scanning this row *)
            end
            else incr e
          done
        end
      done;
      for k = !lo to !hi - 1 do
        bit_clear s.front settled.(k)
      done
    end
    else
      for k = !lo to !hi - 1 do
        let v = settled.(k) in
        for e = get offsets v to get offsets (v + 1) - 1 do
          let u = get adj e in
          if dist.(u) < 0 then begin
            dist.(u) <- next_d;
            settled.(!tail) <- u;
            incr tail;
            next_edges := !next_edges + (get offsets (u + 1) - get offsets u)
          end
        done
      done;
    lo := !hi;
    hi := !tail;
    frontier_edges := !next_edges;
    d := next_d
  done;
  s.touched <- !hi;
  dist

let visited_count s = s.touched
let visited s k = s.settled.(k)
let max_dist s = if s.touched = 0 then 0 else s.dist.(s.settled.(s.touched - 1))

(* ---- batched multi-source BFS ---- *)

let word_bits = Sys.int_size (* 63 on 64-bit: one source per bit *)

type ms = {
  mutable cap : int; (* node capacity all arrays are sized for *)
  mutable seen : int array; (* per-node bitmask: sources that reached it *)
  mutable mfront : int array; (* per-node bitmask: sources whose wave sits here *)
  mutable next : int array; (* gather accumulator; all-zero between levels *)
  mutable act : int array; (* nodes with a nonzero [mfront] word *)
  mutable act2 : int array; (* nodes touched by the current gather *)
  mutable dmat : int32_arr; (* node-major, stride 64: dist at [v lsl 6 lor slot] *)
}

(* The distance matrix is node-major (64 slots per node, one padding slot)
   so that a settle event writes all of a node's new distances into the
   same cache line or two, and a consumer scanning slots for one target
   reads sequentially. Slot-major looked natural but cost a cache miss
   per settle (one int32 into each of up to 63 rows ~stride apart) — on
   an all-sources workload that is n^2 scattered writes. *)

let ms_create () =
  {
    cap = 0;
    seen = [||];
    mfront = [||];
    next = [||];
    act = [||];
    act2 = [||];
    dmat = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout 0;
  }

let ms_ensure ms n =
  if n > ms.cap then begin
    ms.cap <- n;
    ms.seen <- Array.make n 0;
    ms.mfront <- Array.make n 0;
    ms.next <- Array.make n 0;
    ms.act <- Array.make n 0;
    ms.act2 <- Array.make n 0;
    ms.dmat <- Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (n lsl 6)
  end

(* Branchless count-trailing-zeros of a one-bit word: multiply-shift
   perfect hash into a 128-entry table (the 6-branch binary search this
   replaces mispredicted ~half its branches on random bit positions —
   at one settle event per (source, node) pair that was the single
   hottest instruction sequence in the sweep). The constant was found by
   random search over odd multipliers: all 63 values of
   [(1 lsl k) * m lsr 56] are distinct. *)

let ctz_m = 0x726a2ae7c61d65a1

let ctz_tbl =
  [| 0; 0; 0; 0; 58; 0; 0; 38; 59; 0; 14; 0; 33; 0; 39; 0; 60; 0; 0; 3; 0; 15;
     50; 0; 34; 0; 6; 0; 0; 40; 0; 26; 61; 56; 12; 0; 0; 0; 4; 0; 10; 0; 16;
     18; 45; 51; 20; 0; 35; 0; 47; 0; 53; 7; 0; 0; 0; 22; 41; 0; 0; 0; 27; 0;
     62; 0; 57; 37; 0; 13; 32; 0; 0; 2; 0; 49; 0; 5; 0; 25; 55; 11; 0; 0; 9;
     17; 44; 19; 0; 46; 52; 0; 21; 0; 0; 0; 0; 36; 0; 31; 1; 48; 0; 24; 54; 0;
     8; 43; 0; 0; 0; 0; 0; 30; 0; 23; 0; 42; 0; 0; 29; 0; 0; 0; 28; 0; 0; 0 |]

let[@inline] ctz_pow2 b = Array.unsafe_get ctz_tbl ((b * ctz_m) lsr 56)

let ms_run t ms ~sources ~off ~len =
  if len < 0 || len > word_bits then
    invalid_arg "Bfs_kernel.ms_run: batch must have 0 .. word_bits sources";
  let n = Csr.num_nodes t in
  ms_ensure ms (max 1 n);
  let offsets = Csr.row_offsets t and adj = Csr.row_adjacency t in
  let seen = ms.seen
  and front = ms.mfront
  and next = ms.next
  and dmat = ms.dmat in
  (* [front]/[next] are all-zero between runs (loop invariant below), so
     only [seen] needs the O(n) wipe *)
  Array.fill seen 0 n 0;
  let tail = ref 0 in
  for k = 0 to len - 1 do
    let s = sources.(off + k) in
    let bit = 1 lsl k in
    seen.(s) <- seen.(s) lor bit;
    if front.(s) = 0 then begin
      ms.act.(!tail) <- s;
      incr tail
    end;
    front.(s) <- front.(s) lor bit;
    set dmat ((s lsl 6) lor k) 0
  done;
  let d = ref 0 in
  while !tail > 0 do
    let next_d = !d + 1 in
    let act = ms.act and act2 = ms.act2 in
    if !tail >= n lsr 4 then begin
      (* dense level: the frontier holds a sizable fraction of the nodes
         (the two or three middle levels hold nearly all settle events),
         so skip the active lists and scan node ids in order — the row
         reads, the [next] wipe and the distance-matrix writes all become
         sequential streams instead of following discovery order across
         the whole working set. Settle order changes; distances cannot
         (BFS levels are unique). *)
      for v = 0 to n - 1 do
        let f = front.(v) in
        if f <> 0 then
          for e = get offsets v to get offsets (v + 1) - 1 do
            let u = get adj e in
            next.(u) <- next.(u) lor f
          done
      done;
      for idx = 0 to !tail - 1 do
        front.(act.(idx)) <- 0
      done;
      let newtail = ref 0 in
      for u = 0 to n - 1 do
        let nx = next.(u) in
        if nx <> 0 then begin
          next.(u) <- 0;
          let nw = nx land lnot seen.(u) in
          if nw <> 0 then begin
            seen.(u) <- seen.(u) lor nw;
            front.(u) <- nw;
            act.(!newtail) <- u;
            incr newtail;
            let base = u lsl 6 in
            let w = ref nw in
            while !w <> 0 do
              let b = !w land - !w in
              set dmat (base lor ctz_pow2 b) next_d;
              w := !w land (!w - 1)
            done
          end
        end
      done;
      tail := !newtail
    end
    else begin
      (* gather: or every frontier word into the neighbors' accumulators,
         remembering each touched node exactly once *)
      let tail2 = ref 0 in
      for idx = 0 to !tail - 1 do
        let v = act.(idx) in
        let f = front.(v) in
        for e = get offsets v to get offsets (v + 1) - 1 do
          let u = get adj e in
          if next.(u) = 0 then begin
            act2.(!tail2) <- u;
            incr tail2
          end;
          next.(u) <- next.(u) lor f
        done
      done;
      (* the processed frontier is done: clear its words before the new
         frontier is written (a node can be in both) *)
      for idx = 0 to !tail - 1 do
        front.(act.(idx)) <- 0
      done;
      (* update: new bits = gathered minus already-seen; record distances *)
      let newtail = ref 0 in
      for idx = 0 to !tail2 - 1 do
        let u = act2.(idx) in
        let nw = next.(u) land lnot seen.(u) in
        next.(u) <- 0;
        if nw <> 0 then begin
          seen.(u) <- seen.(u) lor nw;
          front.(u) <- nw;
          act.(!newtail) <- u;
          incr newtail;
          let base = u lsl 6 in
          let w = ref nw in
          while !w <> 0 do
            let b = !w land - !w in
            set dmat (base lor ctz_pow2 b) next_d;
            w := !w land (!w - 1)
          done
        end
      done;
      tail := !newtail
    end;
    d := next_d
  done

let[@inline] ms_dist ms ~slot ~v =
  if ms.seen.(v) land (1 lsl slot) = 0 then -1
  else Int32.to_int (Bigarray.Array1.unsafe_get ms.dmat ((v lsl 6) lor slot))

let[@inline] ms_reached ms ~v = ms.seen.(v)

let[@inline] ms_dist_raw ms ~slot ~v =
  Int32.to_int (Bigarray.Array1.unsafe_get ms.dmat ((v lsl 6) lor slot))
