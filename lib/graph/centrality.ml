(* Brandes 2001: one BFS per source accumulating pair dependencies.

   Runs on a CSR snapshot with dense int/float arrays — no per-visit
   allocation. The predecessor lists of the textbook algorithm are not
   materialised: in the dependency (backward) phase a node [w] credits
   exactly its neighbors one BFS level closer to the source, recovered by
   re-scanning [w]'s row. Sources are processed in dense-index order, so
   the float accumulation order is deterministic. *)
let betweenness ?csr g =
  let csr = match csr with Some c -> c | None -> Csr.of_adjacency g in
  let n = Csr.num_nodes csr in
  let bc = Array.make n 0. in
  let dist = Array.make n (-1) in
  let sigma = Array.make n 0. in
  let delta = Array.make n 0. in
  let order = Array.make (max 1 n) 0 in
  for s = 0 to n - 1 do
    Array.fill dist 0 n (-1);
    Array.fill sigma 0 n 0.;
    Array.fill delta 0 n 0.;
    (* forward: BFS settle order + shortest-path counts *)
    dist.(s) <- 0;
    sigma.(s) <- 1.;
    order.(0) <- s;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let v = order.(!head) in
      incr head;
      let dv = dist.(v) in
      Csr.iter_row
        (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- dv + 1;
            order.(!tail) <- w;
            incr tail
          end;
          if dist.(w) = dv + 1 then sigma.(w) <- sigma.(w) +. sigma.(v))
        csr v
    done;
    (* backward: dependencies in reverse settle order *)
    for k = !tail - 1 downto 0 do
      let w = order.(k) in
      let dw = delta.(w) in
      let sw = sigma.(w) in
      Csr.iter_row
        (fun v ->
          if dist.(v) = dist.(w) - 1 then
            delta.(v) <- delta.(v) +. (sigma.(v) /. sw *. (1. +. dw)))
        csr w;
      if w <> s then bc.(w) <- bc.(w) +. dw
    done
  done;
  let tbl = Node_id.Tbl.create (max 16 n) in
  (* each unordered pair was counted twice (once per endpoint as source) *)
  for i = 0 to n - 1 do
    Node_id.Tbl.replace tbl (Csr.id csr i) (bc.(i) /. 2.)
  done;
  tbl

let degree_centrality g =
  let t = Node_id.Tbl.create (max 16 (Adjacency.num_nodes g)) in
  Adjacency.iter_nodes (fun v -> Node_id.Tbl.replace t v (Adjacency.degree g v)) g;
  t

let top_k tbl k ~compare:cmp =
  let all = Node_id.Tbl.fold (fun v x acc -> (v, x) :: acc) tbl [] in
  let sorted =
    List.sort
      (fun (v1, x1) (v2, x2) ->
        let c = cmp x2 x1 in
        if c <> 0 then c else Node_id.compare v1 v2)
      all
  in
  List.filteri (fun i _ -> i < k) sorted |> List.map fst
