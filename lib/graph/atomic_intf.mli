(** The atomic-operations signature the lock-free tier is written
    against.

    {!Snapshot_store.Make}, {!Mailbox.Make} (in [fg_shard]) and
    {!Parallel.Ticket.Make} take an [S] instead of hard-coding
    [Stdlib.Atomic], so the exact protocol code that runs in production
    can also be instantiated over the traced shim in [tools/fg_race] and
    driven through bounded-exhaustive interleaving exploration. Every
    operation is sequentially consistent in both instantiations: the real
    one because OCaml's [Atomic] is seq_cst, the traced one because the
    scheduler serializes all operations on one domain. *)

module type S = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
  val decr : int t -> unit
end

(** The production instantiation: [Stdlib.Atomic]. *)
module Real : S
