(* Single-writer publication cell with epoch-based reclamation.

   Memory-safety argument, in full, because everything else in the serving
   tier leans on it:

   - The store keeps an epoch counter E, bumped by one per publish (after
     the new snapshot is installed). A snapshot replaced by a publish that
     bumped E to e is "retired at e" and parked on a writer-private list.
   - A reader slot holds either [quiescent] (= max_int) or the epoch the
     reader announced. [pin] first stores the observed epoch a into the
     slot, then loads the current snapshot. OCaml [Atomic] operations are
     seq_cst, so the slot store is globally ordered before the snapshot
     load: whatever snapshot the reader obtains was the current snapshot
     at some point after the announcement became visible. A snapshot
     retired at e stopped being current strictly before E reached e, so a
     reader announcing a >= e can never obtain it, i.e. any snapshot a
     pinned reader can reference was retired at an epoch > its announced
     value (or not retired at all).
   - The writer reclaims retired entries with retire epoch <= the minimum
     announced epoch across all slots. By the above no pinned reader can
     reference such an entry. Announcing "too old" a value (the reader was
     preempted between the epoch load and the slot store, or a nested pin
     keeps the outer announcement) is merely conservative: reclamation is
     delayed, never unsound.
   - [pin] is two atomic loads + one atomic store, [unpin] one atomic
     store; no loops, no CAS, no mutex — wait-free, and reader progress is
     independent of writer activity. The writer's bookkeeping (retired
     list, stats) is plain mutable state because there is exactly one
     writer; only [current], [epoch] and the slots are shared.

   The whole protocol is a functor over {!Atomic_intf.S} so tools/fg_race
   can instantiate it over a traced-atomics scheduler and explore
   interleavings of this exact code; [include Make (Atomic)] at the bottom
   is the production instantiation. [create ~unsafe_no_epoch_check:true]
   deliberately reintroduces the reclaim-while-pinned bug (it drops the
   announced-epoch horizon) so the checker's power is itself testable. *)

module type S = sig
  type 'a snapshot = private { gen : int; value : 'a }
  type 'a t

  val create : ?unsafe_no_epoch_check:bool -> ?log_reclaims:bool -> unit -> 'a t
  val publish : 'a t -> gen:int -> 'a -> unit
  val peek : 'a t -> 'a snapshot option
  val current_gen : 'a t -> int
  val reclaim : 'a t -> int

  type 'a reader

  val reader : 'a t -> 'a reader
  val pin : 'a reader -> 'a snapshot
  val unpin : 'a reader -> unit
  val with_pin : 'a reader -> ('a snapshot -> 'b) -> 'b

  type stats = { published : int; retired : int; reclaimed : int; max_lag : int }

  val stats : 'a t -> stats
  val retired_gens : 'a t -> int list
  val reclaim_log : 'a t -> int list
  val pp_stats : Format.formatter -> stats -> unit
end

module Make (A : Atomic_intf.S) = struct
  module Atomic = A
  (* shadowing [Stdlib.Atomic]: the protocol below must compile against
     the functor argument only, so a traced instantiation traces
     everything *)

  type 'a snapshot = { gen : int; value : 'a }

  let quiescent = max_int

  (* Registered reader slots, as a Treiber-style push-only list: readers
     register by CAS-ing a new cons cell onto the head, the writer only
     traverses. Slots are never removed — a handful of long-lived workers,
     not per-query churn. *)
  type 'a t = {
    current : 'a snapshot option Atomic.t;
    epoch : int Atomic.t;
    slots : int Atomic.t list Atomic.t;
    check_epochs : bool;
    log_reclaims : bool;
    (* Writer-private from here on. *)
    mutable retired : (int * 'a snapshot) list; (* fg-lint: single-writer publisher *)
    mutable published : int; (* fg-lint: single-writer publisher *)
    mutable reclaimed : int; (* fg-lint: single-writer publisher *)
    mutable max_lag : int; (* fg-lint: single-writer publisher *)
    mutable dropped : int list; (* fg-lint: single-writer publisher — test-only gen log *)
  }

  let create ?(unsafe_no_epoch_check = false) ?(log_reclaims = false) () =
    {
      current = Atomic.make None;
      epoch = Atomic.make 0;
      slots = Atomic.make [];
      check_epochs = not unsafe_no_epoch_check;
      log_reclaims;
      retired = [];
      published = 0;
      reclaimed = 0;
      max_lag = 0;
      dropped = [];
    }

  let peek t = Atomic.get t.current
  let current_gen t = match Atomic.get t.current with Some s -> s.gen | None -> -1

  let min_announced t =
    List.fold_left (fun acc slot -> min acc (Atomic.get slot)) quiescent (Atomic.get t.slots)

  let reclaim t =
    match t.retired with
    | [] -> 0
    | retired ->
      let horizon = if t.check_epochs then min_announced t else quiescent in
      let keep, drop = List.partition (fun (e, _) -> e > horizon) retired in
      t.retired <- keep;
      let n = List.length drop in
      t.reclaimed <- t.reclaimed + n;
      if t.log_reclaims && n > 0 then
        t.dropped <- List.fold_left (fun acc (_, s) -> s.gen :: acc) t.dropped drop;
      n

  let publish t ~gen value =
    (match Atomic.get t.current with
    | Some s when gen < s.gen ->
      invalid_arg
        (Printf.sprintf "Snapshot_store.publish: generation went backwards (%d after %d)" gen
           s.gen)
    | _ -> ());
    let prev = Atomic.get t.current in
    Atomic.set t.current (Some { gen; value });
    let e = 1 + Atomic.fetch_and_add t.epoch 1 in
    t.published <- t.published + 1;
    (match prev with None -> () | Some s -> t.retired <- (e, s) :: t.retired);
    ignore (reclaim t);
    let lag = List.length t.retired in
    if lag > t.max_lag then t.max_lag <- lag

  type 'a reader = {
    slot : int Atomic.t;
    store : 'a t;
    mutable depth : int; (* fg-lint: single-writer owning-reader *)
  }

  let reader t =
    let slot = Atomic.make quiescent in
    let rec push () =
      let head = Atomic.get t.slots in
      if not (Atomic.compare_and_set t.slots head (slot :: head)) then push ()
    in
    push ();
    { slot; store = t; depth = 0 }

  let pin r =
    if r.depth = 0 then Atomic.set r.slot (Atomic.get r.store.epoch);
    match Atomic.get r.store.current with
    | Some s ->
      r.depth <- r.depth + 1;
      s
    | None ->
      if r.depth = 0 then Atomic.set r.slot quiescent;
      invalid_arg "Snapshot_store.pin: nothing published"

  let unpin r =
    if r.depth <= 0 then invalid_arg "Snapshot_store.unpin: not pinned";
    r.depth <- r.depth - 1;
    if r.depth = 0 then Atomic.set r.slot quiescent

  let with_pin r f =
    let s = pin r in
    Fun.protect ~finally:(fun () -> unpin r) (fun () -> f s)

  type stats = { published : int; retired : int; reclaimed : int; max_lag : int }

  let stats (t : _ t) =
    {
      published = t.published;
      retired = List.length t.retired;
      reclaimed = t.reclaimed;
      max_lag = t.max_lag;
    }

  let retired_gens (t : _ t) = List.map (fun (_, s) -> s.gen) t.retired
  let reclaim_log (t : _ t) = t.dropped

  let pp_stats ppf s =
    Format.fprintf ppf "published=%d retired=%d reclaimed=%d max_lag=%d" s.published s.retired
      s.reclaimed s.max_lag
end

include Make (Atomic)
