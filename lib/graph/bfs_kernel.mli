(** Memory-bandwidth BFS kernels over {!Csr} snapshots.

    {!Csr.bfs} is a plain top-down BFS: fine for sparse frontiers, but on
    low-diameter graphs (every healed forgiving graph is one) the two or
    three middle levels contain nearly all edges and top-down pays one
    probe per edge endpoint. The kernels here are where the metrics
    pipeline actually spends its cycles:

    - {!bfs} is a direction-optimizing BFS (Beamer et al., SC'12): it
      switches to a bottom-up sweep when the frontier is edge-dense and
      back when it thins, so dense levels cost one successful probe per
      unvisited vertex instead of one per edge.
    - {!ms_run} is a batched multi-source BFS (Then et al., VLDB'14): up
      to {!word_bits} sources share one sweep via per-node visited
      bitmasks, amortizing the memory traffic of streaming the rows —
      the bulk workloads ([Stretch], [Invariants.check_stretch_bound])
      run one sweep per 63 sources instead of 63. Dense levels (frontier
      over 1/16 of the nodes) are processed by an in-order node scan
      rather than the active lists, turning the row reads and
      distance-matrix writes into sequential streams.

    Both kernels read the off-heap rows directly ({!Csr.row_offsets} /
    {!Csr.row_adjacency}) and are allocation-free after scratch creation
    (gated at zero minor words by [test_alloc]). Distance results are
    identical to {!Csr.bfs} — BFS levels are unique — though settle
    {e order} within a level may differ. *)

(** {1 Direction-optimizing single-source BFS} *)

(** Reusable per-worker state: distance array, settle order, and the
    bottom-up frontier bitset. Single-owner mutable — one per domain. *)
type scratch

(** [create t] allocates a scratch sized for [t]. *)
val create : Csr.t -> scratch

(** [bfs t s src] runs a direction-optimizing BFS from dense index [src],
    returning the distance array ([-1] = unreachable), owned by [s] and
    valid until the next [bfs] on [s]. Resetting costs O(visited by the
    previous run).

    [alpha] (default 2, calibrated on healed-ER/BA sweeps — see
    ARCHITECTURE.md) tunes the top-down→bottom-up switch: go
    bottom-up when [frontier_edges > unexplored_edges / alpha]. [beta]
    (default 20) tunes the way back: return to top-down when
    [frontier_size < n / beta]. Tests pin the oracle by forcing pure
    modes: [~alpha:0] never goes bottom-up; [~alpha:max_int
    ~beta:max_int] goes bottom-up at the first level and never
    returns. *)
val bfs : ?alpha:int -> ?beta:int -> Csr.t -> scratch -> int -> int array

(** Number of nodes reached by the last [bfs] (including the source). *)
val visited_count : scratch -> int

(** [visited s k] is the dense index of the [k]-th node settled by the
    last [bfs]; levels are contiguous, but order within a level depends
    on the direction the level ran in. *)
val visited : scratch -> int -> int

(** Eccentricity of the last [bfs] source within its component. *)
val max_dist : scratch -> int

(** {1 Batched multi-source BFS} *)

(** Sources per sweep: one per bit of a native int (63 on 64-bit). *)
val word_bits : int

(** [ctz_pow2 b] is the index of the single set bit of [b], a power of
    two (bits 0..62 — bit 62 is [min_int lsr 0] on 63-bit ints and is
    handled). Branchless; for walking {!ms_reached} bitmasks with
    [b = w land (-w)]. *)
val ctz_pow2 : int -> int

(** Multi-source scratch: per-node seen/frontier bitmask arrays plus an
    off-heap [int32] distance matrix (node-major, 64 slots per node, so
    one settle event writes a contiguous run). Grows to the largest
    snapshot it has served; steady state allocates nothing. *)
type ms

val ms_create : unit -> ms

(** [ms_run t ms ~sources ~off ~len] runs one batched sweep from the
    [len] dense indices [sources.(off .. off+len-1)] (slot [k] is source
    [sources.(off+k)]). Requires [0 <= len <= word_bits]; duplicate
    sources are fine (their slots share a wave). Results are read with
    {!ms_dist} and are valid until the next [ms_run] on [ms]. *)
val ms_run : Csr.t -> ms -> sources:int array -> off:int -> len:int -> unit

(** [ms_dist ms ~slot ~v] is the hop distance from slot [slot]'s source
    to dense index [v], or [-1] if unreachable. O(1), no allocation. *)
val ms_dist : ms -> slot:int -> v:int -> int

(** [ms_reached ms ~v] is the raw seen bitmask for dense index [v]: bit
    [k] is set iff slot [k]'s source reached [v]. Lets bulk consumers
    hoist the reachability test out of a per-slot loop. *)
val ms_reached : ms -> v:int -> int

(** [ms_dist_raw ms ~slot ~v] is {!ms_dist} without the seen check:
    garbage unless bit [slot] of [ms_reached ms ~v] is set. *)
val ms_dist_raw : ms -> slot:int -> v:int -> int
