(** Mutable simple undirected graph, the workhorse representation.

    Nodes are {!Node_id.t}s; the structure stores, per node, a {e sorted
    dynamic int array} of neighbours (binary-search membership, amortised
    doubling growth). Self-loops and parallel edges are rejected/collapsed:
    [add_edge g u u] is a no-op and adding an existing edge is a no-op,
    which matches the semantics of the "actual network" of the paper (the
    homomorphic image of the virtual graph collapses duplicate virtual
    edges and drops loops).

    Allocation discipline: {!iter_neighbors}, {!fold_neighbors},
    {!mem_edge}, {!degree} and the in-place mutators allocate nothing in
    the steady state (an edge flip only allocates when a row outgrows its
    capacity). {!neighbors} allocates one fresh list per call —
    heal-path code should prefer the iterators or {!neighbors_into}. *)

type t

(** [create ?size ()] returns an empty graph; [size] is a capacity hint. *)
val create : ?size:int -> unit -> t

(** [copy g] is an independent deep copy. Mutating either graph does not
    affect the other. This is the escape hatch for the "treat as read-only"
    contract of [Forgiving_graph.graph]/[gprime]: take a copy before
    mutating a graph you did not build yourself. *)
val copy : t -> t

(** [version g] is a counter that changes whenever the node or edge set
    actually changes (no-op mutations leave it alone). [copy] carries the
    counter over, so a copy starts version-equal to its source and they
    diverge on the first mutation of either. Snapshot caches key on it to
    detect that a graph moved underneath them. *)
val version : t -> int

(** [add_node g v] adds isolated node [v]; no-op if present. *)
val add_node : t -> Node_id.t -> unit

(** [remove_node g v] deletes [v] and all incident edges; no-op if absent. *)
val remove_node : t -> Node_id.t -> unit

(** [add_edge g u v] inserts undirected edge [{u,v}], creating missing
    endpoints. Self-loops are ignored. *)
val add_edge : t -> Node_id.t -> Node_id.t -> unit

(** [remove_edge g u v] removes the edge if present. *)
val remove_edge : t -> Node_id.t -> Node_id.t -> unit

val mem_node : t -> Node_id.t -> bool
val mem_edge : t -> Node_id.t -> Node_id.t -> bool

(** [neighbors g v] is the adjacency list of [v] in ascending id order;
    [\[\]] if [v] is absent. Allocates a fresh list — hot paths should use
    {!iter_neighbors}/{!fold_neighbors} or {!neighbors_into} instead. *)
val neighbors : t -> Node_id.t -> Node_id.t list

(** [neighbors_into g v buf] copies [v]'s sorted neighbour row into [!buf]
    (growing, i.e. replacing, the array when it is too small) and returns
    the neighbour count; entries beyond the count are garbage. The caller
    owns and lends [buf]; reusing one buffer across calls makes repeated
    neighbour scans allocation-free amortised. The copy stays valid across
    later graph mutations (unlike an internal borrow would). *)
val neighbors_into : t -> Node_id.t -> int array ref -> int

(** [degree g v] is [0] when [v] is absent. *)
val degree : t -> Node_id.t -> int

val num_nodes : t -> int
val num_edges : t -> int
val nodes : t -> Node_id.t list

(** [edges g] lists each undirected edge once, with [fst <= snd]. *)
val edges : t -> (Node_id.t * Node_id.t) list

val iter_nodes : (Node_id.t -> unit) -> t -> unit
val iter_edges : (Node_id.t -> Node_id.t -> unit) -> t -> unit

(** [iter_neighbors f g v] applies [f] to the neighbours of [v] in
    ascending id order, allocation-free. [f] must not mutate [v]'s own
    adjacency row (mutating other rows, or other graphs, is fine). *)
val iter_neighbors : (Node_id.t -> unit) -> t -> Node_id.t -> unit

(** Like {!iter_neighbors} but in descending id order. Useful when [f]
    removes the visited edge from {e another} graph's sorted rows: deleting
    from the tail end first turns the per-removal shift into a no-op. *)
val iter_neighbors_rev : (Node_id.t -> unit) -> t -> Node_id.t -> unit

val fold_nodes : (Node_id.t -> 'a -> 'a) -> t -> 'a -> 'a

(** Ascending-order fold over neighbours; same aliasing rule as
    {!iter_neighbors}. *)
val fold_neighbors : (Node_id.t -> 'a -> 'a) -> t -> Node_id.t -> 'a -> 'a

(** [max_degree g] is [0] for the empty graph. *)
val max_degree : t -> int

(** [equal g1 g2] tests equality of node and edge sets. *)
val equal : t -> t -> bool

(** [of_edges pairs] builds a graph containing exactly the given edges. *)
val of_edges : (Node_id.t * Node_id.t) list -> t

(** [subgraph g keep] is the induced subgraph on nodes satisfying [keep]. *)
val subgraph : t -> (Node_id.t -> bool) -> t

val pp : Format.formatter -> t -> unit
