(** Wait-free single-writer publication cell with epoch-based reclamation
    — the serving tier's snapshot store.

    The paper's model runs repair and usage {e concurrently}: the network
    keeps answering low-stretch path queries while the adversary deletes
    and the healer repairs. This cell is the synchronization primitive
    that makes that real in one address space: a single writer (the heal
    loop) publishes generation-tagged immutable snapshots with one
    [Atomic.set]; any number of readers pin the current epoch, read the
    snapshot, run whatever kernel they like against it, and unpin —
    {b no locks, no CAS loops, no blocking} on the read side. A reader
    executes a bounded number of atomic loads/stores per {!pin}/{!unpin}
    regardless of writer activity, so readers are wait-free by
    construction and a reader can never delay a heal.

    {2 Reclamation protocol}

    Publishing generation [k+1] retires the generation-[k] snapshot, but a
    reader may still be computing against it. Retired snapshots are kept
    on a writer-side list tagged with the epoch at which they were
    retired; the store's epoch counter advances by one per publication.
    A reader {e announces} the epoch it observed before loading the
    current snapshot ({!pin} stores it into the reader's slot); the
    announcement is ordered before the snapshot load, so a reader whose
    slot holds epoch [a] can only ever reference snapshots retired at
    epochs strictly above [a]. The writer therefore reclaims a retired
    snapshot once its retire epoch is [<=] the minimum announced epoch
    over all reader slots (quiescent slots announce [max_int]). In OCaml
    "reclaim" means dropping the store's reference so the GC can free the
    snapshot — for {!Csr.t} payloads that releases the off-heap Bigarray
    rows — and, as importantly, it bounds the {e reclamation lag}: the
    number of dead generations pinned live by stalled readers, which
    [stats] exposes and the serve bench reports.

    Payloads must be immutable (or at least never mutated after
    [publish]); the store shares them across domains without copies.
    All [reader] operations are single-owner: one reader handle per
    domain, created once and reused. [publish] and [stats] must only be
    called from the (single) writer.

    {2 Model checking}

    The protocol is a functor, {!Make}, over {!Atomic_intf.S}; the module
    itself is the production instantiation over [Stdlib.Atomic].
    [tools/fg_race] instantiates {!Make} over a traced-atomics scheduler
    and explores thread interleavings of this exact code, asserting the
    conservation law [published = reclaimed + retired + 1] at every step
    and that no pinned snapshot is ever dropped. *)

(** The store's full interface, shared by every instantiation. *)
module type S = sig
  type 'a snapshot = private { gen : int; value : 'a }
  type 'a t

  (** [create ()] makes an empty store. The two flags are {b test-only}:
      [~unsafe_no_epoch_check:true] makes {!reclaim} ignore announced
      reader epochs — the canonical use-after-reclaim bug — so the
      fg_race interleaving checker can prove it would catch a broken
      reclamation horizon (mutation testing the checker, not the store);
      [~log_reclaims:true] records every dropped generation for
      {!reclaim_log} (unbounded, so never in production). *)
  val create : ?unsafe_no_epoch_check:bool -> ?log_reclaims:bool -> unit -> 'a t

  (** [publish t ~gen v] atomically replaces the current snapshot, retires
      the previous one, and reclaims every retired snapshot no announced
      reader epoch still covers. Generations must be non-decreasing
      (re-publishing the same generation is allowed: the cache-rebuild
      path after an external mutation does exactly that); raises
      [Invalid_argument] on a decrease. Writer-side only. *)
  val publish : 'a t -> gen:int -> 'a -> unit

  (** The current snapshot without pinning — for the writer (which never
      races itself) and for opportunistic peeks where a torn generation is
      acceptable. [None] until the first {!publish}. *)
  val peek : 'a t -> 'a snapshot option

  (** Generation of the current snapshot, [-1] if nothing is published. *)
  val current_gen : 'a t -> int

  (** [reclaim t] runs a reclamation scan outside {!publish} (e.g. from an
      idle writer) and returns how many retired snapshots were dropped. *)
  val reclaim : 'a t -> int

  (** {1 Readers} *)

  type 'a reader

  (** [reader t] registers a new announcement slot. Slots are never
      deregistered — create one reader per long-lived worker, not one per
      query. Safe to call from any domain (lock-free registration). *)
  val reader : 'a t -> 'a reader

  (** [pin r] announces the current epoch and returns the current snapshot,
      which is guaranteed not to be reclaimed until the matching {!unpin}.
      Wait-free: two atomic loads and one atomic store. Pins nest; the
      outermost pin's epoch protects (inner pins may observe newer
      snapshots, which the older announcement also covers). Raises
      [Invalid_argument] if nothing is published yet. *)
  val pin : 'a reader -> 'a snapshot

  (** [unpin r] releases the innermost {!pin}; the outermost release marks
      the slot quiescent (one atomic store). Raises [Invalid_argument] if
      not pinned. *)
  val unpin : 'a reader -> unit

  (** [with_pin r f] pins around [f] (unpins on exception too). *)
  val with_pin : 'a reader -> ('a snapshot -> 'b) -> 'b

  (** {1 Accounting (writer-side reads)} *)

  type stats = {
    published : int;  (** snapshots published since [create] *)
    retired : int;  (** retired but not yet reclaimed — the current lag *)
    reclaimed : int;  (** retired snapshots dropped so far *)
    max_lag : int;  (** worst [retired] observed right after a publish *)
  }

  val stats : 'a t -> stats

  (** Generations still parked on the retired list, newest first —
      writer-side only; the interleaving checker uses it to assert a
      pinned generation is never dropped. *)
  val retired_gens : 'a t -> int list

  (** Every generation dropped by {!reclaim} so far, newest first; always
      [[]] unless the store was created with [~log_reclaims:true]. *)
  val reclaim_log : 'a t -> int list

  val pp_stats : Format.formatter -> stats -> unit
end

(** The protocol over any atomics implementation. *)
module Make (A : Atomic_intf.S) : S

(** @inline *)
include S
