(** Multicore fan-out for independent read-only work items (OCaml 5
    domains), built for the BFS-heavy metrics/verification pipeline.

    Design constraints, in order:

    - {b Determinism}: results are delivered as an array indexed by work
      item, so any reduction the caller performs runs in item order — the
      same report comes out for {e any} domain count, byte for byte.
    - {b Opt-in}: the process-wide default is [1] domain; every existing
      entry point stays serial unless the user raises it (CLI
      [--domains N]). The serial path does not touch domains at all.
    - {b Reuse}: the first multi-domain {!map} lazily spawns a persistent
      pool of [max 2 (available ()) - 1] worker domains that park on a
      condition variable between calls; later calls publish a job and
      broadcast instead of paying domain spawn/join (which used to make
      small parallel maps slower than serial). Workers are joined by an
      [at_exit] hook. A call that resolves to [d] domains hands out
      [d - 1] tickets, so surplus workers skip the job entirely.

    Work functions must be safe to run concurrently: they may freely read
    shared immutable data (e.g. {!Csr.t}) but must confine mutation to the
    per-worker scratch created by [init]. *)

(** Upper bound for useful domain counts:
    [Domain.recommended_domain_count ()]. *)
val available : unit -> int

(** The process-wide default used when [?domains] is omitted; starts at 1. *)
val default : unit -> int

(** [set_default d] clamps [d] to [\[1, max 2 (available ())\]] and
    installs it (the floor of 2 keeps the multi-domain path exercisable on
    single-core hosts — oversubscription is safe, just not faster). *)
val set_default : int -> unit

(** [resolve d] is [d] clamped as in {!set_default}, or [default ()] when
    [d = None]. *)
val resolve : int option -> int

(** [warm ()] spawns the worker pool if it does not exist yet, so the
    first timed {!map} does not pay domain-spawn cost (benchmark setup). *)
val warm : unit -> unit

(** [shutdown ()] stops and joins the worker pool (no-op if absent); the
    next multi-domain {!map} respawns it. Parked workers tax every
    stop-the-world minor GC, so a long allocation-heavy {e serial} phase
    after a parallel one may want the pool gone. *)
val shutdown : unit -> unit

(** [map ?domains ~init ~f n] computes [|f s 0; f s 1; ...; f s (n-1)|]
    where each worker domain gets its own scratch [s = init ()]. Items are
    distributed dynamically (shared counter), but the result array is
    indexed by item, so the outcome is independent of scheduling. With
    [domains = 1] (the default) this is a plain serial loop on the calling
    domain. *)
val map : ?domains:int -> init:(unit -> 's) -> f:('s -> int -> 'a) -> int -> 'a array

(** [iter ?domains ~init ~f n] is {!map} without collecting results. *)
val iter : ?domains:int -> init:(unit -> 's) -> f:('s -> int -> unit) -> int -> unit

(** {1 Detached tasks}

    Long-lived work — e.g. the serving tier's reader loops — does not fit
    the barrier-style {!map}: it should occupy one worker until told to
    stop, while the calling domain keeps doing its own (writer) work.
    {!submit} hands a thunk to the first free pool worker; {!await} blocks
    until it finishes and re-raises its exception, if any.

    Caveats (by design, to keep the pool simple):
    - A barrier job ({!map}/{!iter} with [domains > 1]) counts {e every}
      worker, so it will wait for long-running submitted tasks to finish
      before returning. Don't mix a multi-domain {!map} with long-lived
      tasks in flight.
    - Don't {!await} from inside a pool task: with every worker occupied
      the awaited task may never be scheduled.
    - Stop long-lived task loops (via your own flag) before calling
      {!shutdown}; shutdown joins workers, which waits for running tasks
      to return. *)

type task

exception Stopped
(** Raised by {!await} when the task was discarded because the pool shut
    down before a worker picked it up. *)

(** [submit fn] enqueues [fn] for the first free pool worker (spawning the
    pool if needed) and returns immediately. *)
val submit : (unit -> unit) -> task

(** [await t] blocks until [t] finishes; re-raises the task's exception if
    it failed, raises {!Stopped} if the pool shut down before running it. *)
val await : task -> unit

(** Number of pool worker domains ([max 2 (available ()) - 1], so always
    ≥ 1): the concurrency ceiling for submitted tasks. *)
val pool_size : unit -> int

(** {1 The work-ticket protocol}

    The lock-free core of a barrier job, factored out so the fg_race
    interleaving checker can drive it over traced atomics: a ticket
    counter gating which workers participate, an item counter dealing
    out indices, and a first-exception CAS cell. {!map} runs on the
    production instantiation below. *)

module Ticket : sig
  module Make (A : Atomic_intf.S) : sig
    type t

    (** [create ~participants] hands out [participants] tickets (the
        calling domain participates ticket-free on top). *)
    val create : participants:int -> t

    (** Worker-side: take a ticket; [false] means sit this job out. *)
    val join : t -> bool

    (** Deal the next work index; [None] once [limit] is exhausted.
        Every index in [0, limit) is dealt to exactly one caller. *)
    val next_index : t -> limit:int -> int option

    (** Record a participant's exception; the first one wins. *)
    val fail : t -> exn -> unit

    val failure : t -> exn option
  end

  include module type of Make (Atomic)
end
