(** Immutable compressed-sparse-row snapshot of an {!Adjacency.t}.

    The hashtable-of-functional-sets representation is right for the heal
    path (cheap edge churn), but the metrics/verification pipeline is
    read-only and BFS-dominated: repeated all-pairs BFS over hashtables
    allocates a set node per edge visit and chases pointers everywhere. A
    [Csr.t] is the flat, cache-friendly read path: node ids are mapped to a
    dense index [0 .. n-1] (in increasing id order, so dense order = sorted
    id order), adjacency lives in two off-heap [int32] Bigarray rows
    ([offsets]/[neighbors]), and the BFS kernel below works entirely in
    preallocated arrays — steady-state BFS allocates nothing.

    Because the row data is malloc'd outside the OCaml heap, a
    million-node snapshot is invisible to the GC (no marking, no copying
    at minor collections) and safe to share, without locks, across the
    domains of {!Parallel}. The price is an [int32] bound: dense indices
    and row offsets (2·edges) must fit in 31 bits. A snapshot is built in
    one pass and never mutated; take a new one after the graph changes. *)

type t

(** The off-heap row representation: [int32], C layout. *)
type int32_arr = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

(** [of_adjacency g] snapshots [g]. O(n log n + m). Rows are sorted by
    dense index (equivalently: by node id, ascending). *)
val of_adjacency : Adjacency.t -> t

(** [apply_delta t ~touched ~removed g] refreshes the snapshot [t] to the
    current state of [g], given that the only differences are: nodes in
    [removed] were deleted, and the rows of nodes in [touched] may have
    changed (including brand-new nodes). Every endpoint of an added or
    removed edge must appear in [touched]. Untouched rows are copied and
    renumbered without consulting [g], so the cost is O(n + m_copy + Δ)
    array work with no hashing of unchanged structure — the per-event way
    to keep a snapshot current under heal churn.

    The result is structurally identical to [of_adjacency g] (asserted by
    the test suite), so cached and rebuilt read paths give byte-identical
    reports. Falls back to a full rebuild when the churn exceeds
    [churn_limit] (default 0.25) as a fraction of nodes, or when the node
    counts reveal that the delta does not span the difference (e.g. the
    graph was mutated behind the cache's back). *)
val apply_delta :
  ?churn_limit:float ->
  t ->
  touched:Node_id.t list ->
  removed:Node_id.t list ->
  Adjacency.t ->
  t

(** Structural equality (same nodes, same rows) — for tests and cache
    cross-checks. *)
val equal : t -> t -> bool

val num_nodes : t -> int

(** Undirected edge count. *)
val num_edges : t -> int

(** [id t i] is the node id at dense index [i] (raises on out-of-range). *)
val id : t -> int -> Node_id.t

(** [index t v] is [v]'s dense index, or [None] if [v] is not in the
    snapshot. *)
val index : t -> Node_id.t -> int option

(** [degree t i] of the node at dense index [i]. *)
val degree : t -> int -> int

(** [iter_row f t i] applies [f] to each neighbor (as a dense index) of
    dense index [i], in increasing order. *)
val iter_row : (int -> unit) -> t -> int -> unit

(** {1 Raw rows — for the BFS kernels in {!Bfs_kernel}}

    Read-only by convention: writing through these would corrupt the
    shared snapshot under every concurrent reader. [row_offsets] has
    [num_nodes + 1] entries; row [i] of [row_adjacency] is
    [offsets.(i) .. offsets.(i+1) - 1], ascending. *)

val row_offsets : t -> int32_arr
val row_adjacency : t -> int32_arr

(** [components t] is [(comp, count)]: [comp.(i)] is the connected-component
    label (in [0 .. count-1]) of dense index [i]; labels are assigned in
    increasing order of the component's smallest dense index. *)
val components : t -> int array * int

(** {!components} as a run-length {!Interval_map} over dense indices —
    O(runs) storage instead of O(n), for the per-component bookkeeping
    callers keep around (e.g. the no-BFS disconnected-source fallback in
    [Stretch]). Labels cluster by dense-id ranges, so post-heal graphs
    compress to a handful of runs. *)
val component_map : t -> int Interval_map.t * int

(** {1 BFS kernel}

    A {!scratch} holds the distance array and the flat queue for one
    worker. Reuse it across sources: resetting costs O(visited by the
    previous run), not O(n), and no allocation happens after creation.
    A scratch is single-owner mutable state — one per domain. *)

type scratch

(** [scratch t] allocates a scratch sized for [t]. *)
val scratch : t -> scratch

(** [bfs t s src] runs BFS from dense index [src] and returns the distance
    array: [d.(i)] is the hop distance, or [-1] if [i] is unreachable. The
    array is owned by [s] and valid only until the next [bfs] on [s]. *)
val bfs : t -> scratch -> int -> int array

(** Number of nodes reached by the last [bfs] (including the source). *)
val visited_count : scratch -> int

(** [visited s k] is the dense index of the [k]-th node settled by the last
    [bfs] ([0 <= k < visited_count s]); [visited s 0] is the source. *)
val visited : scratch -> int -> int

(** Eccentricity of the last [bfs] source within its component: the
    distance of the last settled node ([0] if the source is isolated). *)
val max_dist : scratch -> int

(** {1 Convenience (allocating) — for oracles and cross-checks} *)

(** [distances t v] is the same table {!Bfs.distances} would produce:
    reachable node id -> hop distance. [Empty] if [v] is not in [t]. *)
val distances : t -> Node_id.t -> int Node_id.Tbl.t
