(* The signature is the whole point of this module: every lock-free
   protocol in the tree (Snapshot_store, Mailbox, the Parallel ticket
   gate) is a functor over [S] so the same code runs over the real
   [Stdlib.Atomic] in production and over a recording scheduler shim in
   the fg_race interleaving checker. *)

module type S = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
  val decr : int t -> unit
end

(* [Stdlib.Atomic] satisfies [S] as-is; re-exported so instantiations can
   say [Make (Atomic_intf.Real)] without depending on module aliasing
   tricks. *)
module Real : S = Atomic
