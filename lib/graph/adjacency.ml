(* Each node's neighbour row is a sorted dynamic int array: binary-search
   membership, amortised-doubling growth, and allocation-free iteration.
   The previous representation (a functional AVL set per node) allocated
   O(log d) words on every edge flip, which dominated the heal path's
   allocation profile; rows mutate in place and allocate only when they
   outgrow their capacity. *)

type row = { mutable arr : int array; mutable len : int }

type t = { adj : row Node_id.Tbl.t; mutable version : int }

(* ---- row primitives ---- *)

let row_create () = { arr = [||]; len = 0 }

(* index of [v] in the sorted prefix, or [lnot insert_position] if absent *)
let row_find r v =
  let arr = r.arr in
  let lo = ref 0 and hi = ref r.len in
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) / 2 in
    if Node_id.compare arr.(mid) v < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo < r.len && Node_id.equal arr.(!lo) v then !lo else lnot !lo

let row_mem r v = row_find r v >= 0

(* insert [v] keeping the row sorted; true iff it was absent *)
let row_add r v =
  let i = row_find r v in
  if i >= 0 then false
  else begin
    let pos = lnot i in
    if r.len = Array.length r.arr then begin
      let grown = Array.make (max 4 (2 * r.len)) 0 in
      Array.blit r.arr 0 grown 0 r.len;
      r.arr <- grown
    end;
    Array.blit r.arr pos r.arr (pos + 1) (r.len - pos);
    r.arr.(pos) <- v;
    r.len <- r.len + 1;
    true
  end

(* remove [v]; true iff it was present *)
let row_remove r v =
  let i = row_find r v in
  if i < 0 then false
  else begin
    Array.blit r.arr (i + 1) r.arr i (r.len - i - 1);
    r.len <- r.len - 1;
    true
  end

(* ---- graph operations ---- *)

let create ?(size = 64) () = { adj = Node_id.Tbl.create size; version = 0 }

let copy g =
  let adj = Node_id.Tbl.create (Node_id.Tbl.length g.adj) in
  Node_id.Tbl.iter
    (fun v r -> Node_id.Tbl.replace adj v { arr = Array.sub r.arr 0 r.len; len = r.len })
    g.adj;
  { adj; version = g.version }

let version g = g.version
let mem_node g v = Node_id.Tbl.mem g.adj v

let add_node g v =
  if not (mem_node g v) then begin
    Node_id.Tbl.replace g.adj v (row_create ());
    g.version <- g.version + 1
  end

(* [v]'s row, created (with a version bump, as in [add_node]) if absent —
   one table probe instead of [add_node] + [find]. Exception-style lookup:
   [find_opt] would box a [Some] per probe, and these run on the heal
   path's hottest loops ([Not_found] is a constant, so the miss is free
   too). *)
let row_of g v =
  match Node_id.Tbl.find g.adj v with
  | r -> r
  | exception Not_found ->
    let r = row_create () in
    Node_id.Tbl.add g.adj v r;
    g.version <- g.version + 1;
    r

(* [v]'s row for read-only access; the shared empty row stands in for a
   node with no entry (callers never mutate through this) *)
let empty_row = row_create ()

let row_get g v =
  match Node_id.Tbl.find g.adj v with r -> r | exception Not_found -> empty_row

let degree g v = (row_get g v).len

let neighbors g v =
  let r = row_get g v in
  let acc = ref [] in
  for i = r.len - 1 downto 0 do
    acc := r.arr.(i) :: !acc
  done;
  !acc

let neighbors_into g v buf =
  let r = row_get g v in
  if Array.length !buf < r.len then buf := Array.make (max 4 (2 * r.len)) 0;
  Array.blit r.arr 0 !buf 0 r.len;
  r.len

let add_edge g u v =
  if not (Node_id.equal u v) then begin
    let ru = row_of g u and rv = row_of g v in
    if row_add ru v then begin
      ignore (row_add rv u);
      g.version <- g.version + 1
    end
  end

let remove_edge g u v =
  let ru = row_get g u and rv = row_get g v in
  if row_remove ru v then begin
    ignore (row_remove rv u);
    g.version <- g.version + 1
  end

let remove_node g v =
  match Node_id.Tbl.find_opt g.adj v with
  | None -> ()
  | Some rv ->
    for i = 0 to rv.len - 1 do
      match Node_id.Tbl.find_opt g.adj rv.arr.(i) with
      | None -> ()
      | Some ru -> ignore (row_remove ru v)
    done;
    Node_id.Tbl.remove g.adj v;
    g.version <- g.version + 1

let mem_edge g u v = row_mem (row_get g u) v

let num_nodes g = Node_id.Tbl.length g.adj
let num_edges g = Node_id.Tbl.fold (fun _ r acc -> acc + r.len) g.adj 0 / 2
let nodes g = Node_id.Tbl.fold (fun v _ acc -> v :: acc) g.adj []
let iter_nodes f g = Node_id.Tbl.iter (fun v _ -> f v) g.adj
let fold_nodes f g init = Node_id.Tbl.fold (fun v _ acc -> f v acc) g.adj init

let iter_neighbors f g v =
  let r = row_get g v in
  for i = 0 to r.len - 1 do
    f r.arr.(i)
  done

let iter_neighbors_rev f g v =
  let r = row_get g v in
  for i = r.len - 1 downto 0 do
    f r.arr.(i)
  done

let fold_neighbors f g v init =
  let r = row_get g v in
  let acc = ref init in
  for i = 0 to r.len - 1 do
    acc := f r.arr.(i) !acc
  done;
  !acc

let iter_edges f g =
  Node_id.Tbl.iter
    (fun u r ->
      for i = 0 to r.len - 1 do
        let v = r.arr.(i) in
        if u < v then f u v
      done)
    g.adj

let edges g =
  let acc = ref [] in
  iter_edges (fun u v -> acc := (u, v) :: !acc) g;
  !acc

let max_degree g = Node_id.Tbl.fold (fun _ r m -> max m r.len) g.adj 0

let equal g1 g2 =
  num_nodes g1 = num_nodes g2
  && Node_id.Tbl.fold
       (fun v r1 ok ->
         ok
         &&
         match Node_id.Tbl.find_opt g2.adj v with
         | None -> false
         | Some r2 ->
           r1.len = r2.len
           &&
           let same = ref true in
           for i = 0 to r1.len - 1 do
             if not (Node_id.equal r1.arr.(i) r2.arr.(i)) then same := false
           done;
           !same)
       g1.adj true

let of_edges pairs =
  let g = create () in
  List.iter (fun (u, v) -> add_edge g u v) pairs;
  g

let subgraph g keep =
  let h = create () in
  iter_nodes (fun v -> if keep v then add_node h v) g;
  iter_edges (fun u v -> if keep u && keep v then add_edge h u v) g;
  h

let pp ppf g =
  let sorted = List.sort compare (edges g) in
  Format.fprintf ppf "@[<v>graph: %d nodes, %d edges@," (num_nodes g) (num_edges g);
  List.iter (fun (u, v) -> Format.fprintf ppf "%d -- %d@," u v) sorted;
  Format.fprintf ppf "@]"
