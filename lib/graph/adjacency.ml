type t = { adj : Node_id.Set.t ref Node_id.Tbl.t; mutable version : int }

let create ?(size = 64) () = { adj = Node_id.Tbl.create size; version = 0 }

let copy g =
  let adj = Node_id.Tbl.create (Node_id.Tbl.length g.adj) in
  Node_id.Tbl.iter (fun v s -> Node_id.Tbl.replace adj v (ref !s)) g.adj;
  { adj; version = g.version }

let version g = g.version
let mem_node g v = Node_id.Tbl.mem g.adj v

let add_node g v =
  if not (mem_node g v) then begin
    Node_id.Tbl.replace g.adj v (ref Node_id.Set.empty);
    g.version <- g.version + 1
  end

let neighbor_set g v =
  match Node_id.Tbl.find_opt g.adj v with
  | None -> Node_id.Set.empty
  | Some s -> !s

let neighbors g v = Node_id.Set.elements (neighbor_set g v)
let degree g v = Node_id.Set.cardinal (neighbor_set g v)

let add_edge g u v =
  if not (Node_id.equal u v) then begin
    add_node g u;
    add_node g v;
    let su = Node_id.Tbl.find g.adj u and sv = Node_id.Tbl.find g.adj v in
    if not (Node_id.Set.mem v !su) then begin
      su := Node_id.Set.add v !su;
      sv := Node_id.Set.add u !sv;
      g.version <- g.version + 1
    end
  end

let remove_edge g u v =
  match (Node_id.Tbl.find_opt g.adj u, Node_id.Tbl.find_opt g.adj v) with
  | Some su, Some sv ->
    if Node_id.Set.mem v !su then begin
      su := Node_id.Set.remove v !su;
      sv := Node_id.Set.remove u !sv;
      g.version <- g.version + 1
    end
  | _ -> ()

let remove_node g v =
  match Node_id.Tbl.find_opt g.adj v with
  | None -> ()
  | Some sv ->
    let drop u =
      match Node_id.Tbl.find_opt g.adj u with
      | None -> ()
      | Some su -> su := Node_id.Set.remove v !su
    in
    Node_id.Set.iter drop !sv;
    Node_id.Tbl.remove g.adj v;
    g.version <- g.version + 1

let mem_edge g u v = Node_id.Set.mem v (neighbor_set g u)
let num_nodes g = Node_id.Tbl.length g.adj

let num_edges g =
  let total = Node_id.Tbl.fold (fun _ s acc -> acc + Node_id.Set.cardinal !s) g.adj 0 in
  total / 2

let nodes g = Node_id.Tbl.fold (fun v _ acc -> v :: acc) g.adj []
let iter_nodes f g = Node_id.Tbl.iter (fun v _ -> f v) g.adj
let fold_nodes f g init = Node_id.Tbl.fold (fun v _ acc -> f v acc) g.adj init
let iter_neighbors f g v = Node_id.Set.iter f (neighbor_set g v)
let fold_neighbors f g v init = Node_id.Set.fold f (neighbor_set g v) init

let iter_edges f g =
  Node_id.Tbl.iter
    (fun u s -> Node_id.Set.iter (fun v -> if u < v then f u v) !s)
    g.adj

let edges g =
  let acc = ref [] in
  iter_edges (fun u v -> acc := (u, v) :: !acc) g;
  !acc

let max_degree g = Node_id.Tbl.fold (fun _ s m -> max m (Node_id.Set.cardinal !s)) g.adj 0

let equal g1 g2 =
  num_nodes g1 = num_nodes g2
  && Node_id.Tbl.fold
       (fun v s ok -> ok && Node_id.Set.equal !s (neighbor_set g2 v))
       g1.adj true

let of_edges pairs =
  let g = create () in
  List.iter (fun (u, v) -> add_edge g u v) pairs;
  g

let subgraph g keep =
  let h = create () in
  iter_nodes (fun v -> if keep v then add_node h v) g;
  iter_edges (fun u v -> if keep u && keep v then add_edge h u v) g;
  h

let pp ppf g =
  let sorted = List.sort compare (edges g) in
  Format.fprintf ppf "@[<v>graph: %d nodes, %d edges@," (num_nodes g) (num_edges g);
  List.iter (fun (u, v) -> Format.fprintf ppf "%d -- %d@," u v) sorted;
  Format.fprintf ppf "@]"
