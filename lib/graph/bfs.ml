let generic_bfs g srcs ~stop_at =
  (* size for the worst case (whole graph reached) up front: BFS visits a
     linear fraction of most inputs, and rehash churn on the default
     64-bucket table dominated profiles of all-pairs sweeps *)
  let dist = Node_id.Tbl.create (max 16 (Adjacency.num_nodes g)) in
  let q = Queue.create () in
  let enqueue v d =
    if not (Node_id.Tbl.mem dist v) then begin
      Node_id.Tbl.replace dist v d;
      Queue.add v q
    end
  in
  List.iter (fun s -> if Adjacency.mem_node g s then enqueue s 0) srcs;
  let finished = ref false in
  while (not !finished) && not (Queue.is_empty q) do
    let v = Queue.pop q in
    (match stop_at with
    | Some target when Node_id.equal v target -> finished := true
    | _ -> ());
    if not !finished then
      let d = Node_id.Tbl.find dist v in
      Adjacency.iter_neighbors (fun u -> enqueue u (d + 1)) g v
  done;
  dist

let distances g src = generic_bfs g [ src ] ~stop_at:None
let multi_source_distances g srcs = generic_bfs g srcs ~stop_at:None

let distance g src dst =
  if not (Adjacency.mem_node g src && Adjacency.mem_node g dst) then None
  else
    let dist = generic_bfs g [ src ] ~stop_at:(Some dst) in
    Node_id.Tbl.find_opt dist dst

let shortest_path g src dst =
  if not (Adjacency.mem_node g src && Adjacency.mem_node g dst) then None
  else begin
    let parent = Node_id.Tbl.create (max 16 (Adjacency.num_nodes g)) in
    let q = Queue.create () in
    Node_id.Tbl.replace parent src src;
    Queue.add src q;
    let found = ref (Node_id.equal src dst) in
    while (not !found) && not (Queue.is_empty q) do
      let v = Queue.pop q in
      let visit u =
        if not (Node_id.Tbl.mem parent u) then begin
          Node_id.Tbl.replace parent u v;
          if Node_id.equal u dst then found := true;
          Queue.add u q
        end
      in
      Adjacency.iter_neighbors visit g v
    done;
    if not !found then None
    else begin
      let rec build v acc =
        if Node_id.equal v src then src :: acc
        else build (Node_id.Tbl.find parent v) (v :: acc)
      in
      Some (build dst [])
    end
  end

let farthest g v =
  let dist = distances g v in
  let best = ref (v, 0) in
  Node_id.Tbl.iter
    (fun u d ->
      let _, bd = !best in
      if d > bd || (d = bd && u < fst !best) then best := (u, d))
    dist;
  !best

let eccentricity g v = snd (farthest g v)
