let available () = Domain.recommended_domain_count ()

(* Explicit requests may use up to 2 domains even on a single-core host:
   oversubscription is safe (just not faster), and it keeps the
   multi-domain code path exercisable by tests on any machine. *)
let clamp d = max 1 (min d (max 2 (available ())))
let default_domains = ref 1
let default () = !default_domains
let set_default d = default_domains := clamp d

let resolve = function None -> !default_domains | Some d -> clamp d

let map ?domains ~init ~f n =
  let d = min (resolve domains) (max 1 n) in
  if d <= 1 then begin
    if n = 0 then [||]
    else begin
      let s = init () in
      let out = Array.make n (f s 0) in
      for i = 1 to n - 1 do
        out.(i) <- f s i
      done;
      out
    end
  end
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let s = init () in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f s i);
          loop ()
        end
      in
      loop ()
    in
    let doms = Array.init (d - 1) (fun _ -> Domain.spawn worker) in
    let main_exn = (try worker (); None with e -> Some e) in
    let child_exn =
      Array.fold_left
        (fun acc dom ->
          match (try Domain.join dom; None with e -> Some e) with
          | Some _ as e when acc = None -> e
          | _ -> acc)
        None doms
    in
    (match (main_exn, child_exn) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ());
    Array.map (function Some x -> x | None -> assert false) results
  end

let iter ?domains ~init ~f n = ignore (map ?domains ~init ~f n)
