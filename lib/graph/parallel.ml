let available () = Domain.recommended_domain_count ()

(* Explicit requests may use up to 2 domains even on a single-core host:
   oversubscription is safe (just not faster), and it keeps the
   multi-domain code path exercisable by tests on any machine. *)
let max_domains () = max 2 (available ())
let clamp d = max 1 (min d (max_domains ()))
let default_domains = ref 1 (* fg-lint: single-writer main — set once at CLI parse *)
let default () = !default_domains
let set_default d = default_domains := clamp d

let resolve = function None -> !default_domains | Some d -> clamp d

(* ---- persistent worker pool ----

   Spawning a domain costs tens of microseconds plus a minor-heap and GC
   registration dance; doing it per [map] call made [stretch.parallel:4]
   slower than the serial run. Instead the first multi-domain call spawns
   [max_domains () - 1] workers that park on a condition variable; each
   subsequent call publishes a job closure, bumps a sequence number and
   broadcasts. Jobs gate participation with an atomic ticket counter so a
   call that resolved to [d] domains runs on the caller plus [d - 1]
   workers — surplus workers take no ticket, skip the job's [init], and go
   straight back to sleep. *)

exception Stopped

(* ---- the work-ticket protocol ----

   The lock-free heart of a barrier job: an atomic ticket counter gates
   which workers participate (a call resolved to [d] domains hands out
   [d - 1] tickets; surplus parked workers take none and go back to
   sleep), an atomic item counter deals out work indices, and a CAS cell
   keeps the first exception. Factored out as a functor over
   {!Atomic_intf.S} so fg_race can drive this exact claim protocol
   through a traced scheduler and assert no index is ever dealt twice or
   lost. *)

module Ticket = struct
  module Make (A : Atomic_intf.S) = struct
    type t = { tickets : int A.t; next : int A.t; err : exn option A.t }

    let create ~participants =
      if participants < 0 then invalid_arg "Parallel.Ticket.create: participants < 0";
      { tickets = A.make participants; next = A.make 0; err = A.make None }

    (* one ticket per extra participant; the caller's domain never takes
       one (it always participates) *)
    let join t = A.fetch_and_add t.tickets (-1) > 0

    let next_index t ~limit =
      let i = A.fetch_and_add t.next 1 in
      if i < limit then Some i else None

    (* first failure wins; later ones are dropped (their indices are
       already consumed, so the caller re-raises exactly one) *)
    let fail t e = ignore (A.compare_and_set t.err None (Some e))
    let failure t = A.get t.err
  end

  include Make (Atomic)
end

(* Detached tasks ([submit]/[await]) ride on the same parked workers as
   barrier jobs. Each task carries its own mutex/condvar so awaiters
   never contend on the pool lock. *)
type task_state = Pending | Done | Failed of exn

type task = {
  t_mu : Mutex.t;
  t_cond : Condition.t;
  mutable t_state : task_state; (* fg-lint: guarded-by t_mu *)
  t_fn : unit -> unit;
}

type pool = {
  mu : Mutex.t;
  work : Condition.t;  (* workers park here between jobs *)
  idle : Condition.t;  (* the submitter parks here until [busy] drains *)
  mutable job : (unit -> unit) option; (* fg-lint: guarded-by mu *)
  mutable seq : int; (* fg-lint: guarded-by mu *)
  mutable busy : int; (* fg-lint: guarded-by mu *)
  mutable stop : bool; (* fg-lint: guarded-by mu *)
  mutable workers : unit Domain.t array; (* fg-lint: single-writer pool-creator *)
  tasks : task Queue.t;  (* detached tasks awaiting a free worker *)
}

let finish_task t st =
  Mutex.lock t.t_mu;
  t.t_state <- st;
  Condition.broadcast t.t_cond;
  Mutex.unlock t.t_mu

let worker p =
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock p.mu;
    while (not p.stop) && p.seq = !last && Queue.is_empty p.tasks do
      Condition.wait p.work p.mu
    done;
    if p.stop then begin
      Mutex.unlock p.mu;
      running := false
    end
    else if p.seq <> !last then begin
      last := p.seq;
      let job = p.job in
      Mutex.unlock p.mu;
      (match job with
      | Some j -> ( try j () with _ -> () (* jobs capture their own exns *))
      | None -> ());
      Mutex.lock p.mu;
      p.busy <- p.busy - 1;
      if p.busy = 0 then Condition.signal p.idle;
      Mutex.unlock p.mu
    end
    else begin
      let t = Queue.pop p.tasks in
      Mutex.unlock p.mu;
      let st = try t.t_fn (); Done with e -> Failed e in
      finish_task t st
    end
  done

let pool : pool option ref = ref None (* fg-lint: guarded-by pool_mu *)
let pool_mu = Mutex.create ()

let shutdown_pool p =
  Mutex.lock p.mu;
  p.stop <- true;
  Condition.broadcast p.work;
  Mutex.unlock p.mu;
  Array.iter Domain.join p.workers;
  (* Workers are joined, so nobody will ever pop the queue again: fail the
     stranded tasks so their awaiters are released instead of hanging. *)
  let orphans = Queue.fold (fun acc t -> t :: acc) [] p.tasks in
  Queue.clear p.tasks;
  List.iter (fun t -> finish_task t (Failed Stopped)) orphans

let get_pool () =
  Mutex.lock pool_mu;
  let p =
    match !pool with
    | Some p -> p
    | None ->
      let p =
        {
          mu = Mutex.create ();
          work = Condition.create ();
          idle = Condition.create ();
          job = None;
          seq = 0;
          busy = 0;
          stop = false;
          workers = [||];
          tasks = Queue.create ();
        }
      in
      p.workers <- Array.init (max_domains () - 1) (fun _ -> Domain.spawn (fun () -> worker p));
      pool := Some p;
      (* joining parked workers at exit keeps the runtime teardown clean *)
      at_exit (fun () ->
          Mutex.lock pool_mu;
          let q = !pool in
          pool := None;
          Mutex.unlock pool_mu;
          Option.iter shutdown_pool q);
      p
  in
  Mutex.unlock pool_mu;
  p

let warm () = if max_domains () > 1 then ignore (get_pool () : pool)

(* Parked workers are not free: every stop-the-world minor GC must
   rendezvous with them, which taxes allocation-heavy serial phases by a
   measurable factor. [shutdown] lets such phases drop the pool; the next
   multi-domain call respawns it. *)
let shutdown () =
  Mutex.lock pool_mu;
  let q = !pool in
  pool := None;
  Mutex.unlock pool_mu;
  Option.iter shutdown_pool q

(* submissions are serialized: one job in flight at a time *)
let submit_mu = Mutex.create ()

(* Publish [job] to every worker, run [body] on the calling domain, then
   wait for all workers to come back idle before returning. *)
let run_pooled job body =
  let p = get_pool () in
  Mutex.lock submit_mu;
  Mutex.lock p.mu;
  p.job <- Some job;
  p.seq <- p.seq + 1;
  p.busy <- Array.length p.workers;
  Condition.broadcast p.work;
  Mutex.unlock p.mu;
  body ();
  Mutex.lock p.mu;
  while p.busy > 0 do
    Condition.wait p.idle p.mu
  done;
  p.job <- None;
  Mutex.unlock p.mu;
  Mutex.unlock submit_mu

let map ?domains ~init ~f n =
  let d = min (resolve domains) (max 1 n) in
  if d <= 1 then begin
    if n = 0 then [||]
    else begin
      let s = init () in
      let out = Array.make n (f s 0) in
      for i = 1 to n - 1 do
        out.(i) <- f s i
      done;
      out
    end
  end
  else begin
    let results = Array.make n None in
    let gate = Ticket.create ~participants:(d - 1) in
    let body () =
      try
        let s = init () in
        let rec loop () =
          match Ticket.next_index gate ~limit:n with
          | Some i ->
            results.(i) <- Some (f s i);
            loop ()
          | None -> ()
        in
        loop ()
      with e -> Ticket.fail gate e
    in
    (* d - 1 tickets: surplus pool workers skip the job entirely *)
    let job () = if Ticket.join gate then body () in
    run_pooled job body;
    (match Ticket.failure gate with Some e -> raise e | None -> ());
    Array.map (function Some x -> x | None -> assert false) results
  end

let iter ?domains ~init ~f n = ignore (map ?domains ~init ~f n)

(* ---- detached tasks ---- *)

let pool_size () = max_domains () - 1

let submit fn =
  let t = { t_mu = Mutex.create (); t_cond = Condition.create (); t_state = Pending; t_fn = fn } in
  let p = get_pool () in
  Mutex.lock p.mu;
  if p.stop then begin
    (* raced with [shutdown]: this pool's workers are gone (or going) and
       will never pop the queue, so fail fast rather than strand [await] *)
    Mutex.unlock p.mu;
    finish_task t (Failed Stopped)
  end
  else begin
    Queue.add t p.tasks;
    Condition.signal p.work;
    Mutex.unlock p.mu
  end;
  t

let await t =
  Mutex.lock t.t_mu;
  let rec wait () =
    match t.t_state with
    | Pending ->
      Condition.wait t.t_cond t.t_mu;
      wait ()
    | Done -> Mutex.unlock t.t_mu
    | Failed e ->
      Mutex.unlock t.t_mu;
      raise e
  in
  wait ()
