type t = {
  n : int;
  offsets : int array; (* length n+1; row i is neighbors.(offsets.(i) .. offsets.(i+1)-1) *)
  neighbors : int array; (* dense indices; each row ascending *)
  ids : Node_id.t array; (* dense index -> node id, ascending *)
  index_tbl : int Node_id.Tbl.t; (* node id -> dense index *)
}

let of_adjacency g =
  let n = Adjacency.num_nodes g in
  let ids = Array.make n 0 in
  let k = ref 0 in
  Adjacency.iter_nodes
    (fun v ->
      ids.(!k) <- v;
      incr k)
    g;
  Array.sort Node_id.compare ids;
  let index_tbl = Node_id.Tbl.create (max 16 n) in
  Array.iteri (fun i v -> Node_id.Tbl.replace index_tbl v i) ids;
  let offsets = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    offsets.(i + 1) <- offsets.(i) + Adjacency.degree g ids.(i)
  done;
  let neighbors = Array.make offsets.(n) 0 in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    (* Set iteration is ascending in node id and the dense indexing is
       order-preserving, so each row comes out ascending in dense index. *)
    Adjacency.iter_neighbors
      (fun u ->
        neighbors.(!pos) <- Node_id.Tbl.find index_tbl u;
        incr pos)
      g ids.(i)
  done;
  { n; offsets; neighbors; ids; index_tbl }

let num_nodes t = t.n
let num_edges t = Array.length t.neighbors / 2
let id t i = t.ids.(i)
let index t v = Node_id.Tbl.find_opt t.index_tbl v
let degree t i = t.offsets.(i + 1) - t.offsets.(i)

let iter_row f t i =
  for k = t.offsets.(i) to t.offsets.(i + 1) - 1 do
    f t.neighbors.(k)
  done

let components t =
  let comp = Array.make t.n (-1) in
  let stack = Array.make (max 1 t.n) 0 in
  let count = ref 0 in
  for v = 0 to t.n - 1 do
    if comp.(v) < 0 then begin
      let c = !count in
      incr count;
      comp.(v) <- c;
      stack.(0) <- v;
      let top = ref 1 in
      while !top > 0 do
        decr top;
        let u = stack.(!top) in
        for k = t.offsets.(u) to t.offsets.(u + 1) - 1 do
          let w = t.neighbors.(k) in
          if comp.(w) < 0 then begin
            comp.(w) <- c;
            stack.(!top) <- w;
            incr top
          end
        done
      done
    end
  done;
  (comp, !count)

type scratch = {
  dist : int array;
  queue : int array; (* flat FIFO; a vertex enters at most once, so no wrap *)
  mutable touched : int; (* queue.(0 .. touched-1) were settled by the last run *)
}

let scratch t =
  { dist = Array.make (max 1 t.n) (-1); queue = Array.make (max 1 t.n) 0; touched = 0 }

let bfs t s src =
  let dist = s.dist and q = s.queue in
  (* undo only what the previous run wrote *)
  for k = 0 to s.touched - 1 do
    dist.(q.(k)) <- -1
  done;
  let offsets = t.offsets and neighbors = t.neighbors in
  dist.(src) <- 0;
  q.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let v = q.(!head) in
    incr head;
    let dv = dist.(v) + 1 in
    for k = offsets.(v) to offsets.(v + 1) - 1 do
      let u = neighbors.(k) in
      if dist.(u) < 0 then begin
        dist.(u) <- dv;
        q.(!tail) <- u;
        incr tail
      end
    done
  done;
  s.touched <- !tail;
  dist

let visited_count s = s.touched
let visited s k = s.queue.(k)
let max_dist s = if s.touched = 0 then 0 else s.dist.(s.queue.(s.touched - 1))

let distances t v =
  match index t v with
  | None -> Node_id.Tbl.create 1
  | Some src ->
    let s = scratch t in
    let dist = bfs t s src in
    let tbl = Node_id.Tbl.create (max 16 s.touched) in
    for k = 0 to s.touched - 1 do
      let i = s.queue.(k) in
      Node_id.Tbl.replace tbl t.ids.(i) dist.(i)
    done;
    tbl
