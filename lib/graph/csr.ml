type t = {
  n : int;
  offsets : int array; (* length n+1; row i is neighbors.(offsets.(i) .. offsets.(i+1)-1) *)
  neighbors : int array; (* dense indices; each row ascending *)
  ids : Node_id.t array; (* dense index -> node id, ascending *)
}

(* ids is sorted ascending, so the id -> dense-index map is a binary search:
   no hashtable to build (which would dominate [apply_delta]) and no
   allocation. *)
let find_index ids n v =
  let lo = ref 0 and hi = ref n in
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) / 2 in
    if Node_id.compare ids.(mid) v < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo < n && Node_id.equal ids.(!lo) v then !lo else -1

let of_adjacency g =
  let n = Adjacency.num_nodes g in
  let ids = Array.make n 0 in
  let k = ref 0 in
  Adjacency.iter_nodes
    (fun v ->
      ids.(!k) <- v;
      incr k)
    g;
  Array.sort Node_id.compare ids;
  let offsets = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    offsets.(i + 1) <- offsets.(i) + Adjacency.degree g ids.(i)
  done;
  let neighbors = Array.make offsets.(n) 0 in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    (* Set iteration is ascending in node id and the dense indexing is
       order-preserving, so each row comes out ascending in dense index. *)
    Adjacency.iter_neighbors
      (fun u ->
        neighbors.(!pos) <- find_index ids n u;
        incr pos)
      g ids.(i)
  done;
  { n; offsets; neighbors; ids }

let num_nodes t = t.n
let num_edges t = Array.length t.neighbors / 2
let id t i = t.ids.(i)

let index t v =
  let i = find_index t.ids t.n v in
  if i < 0 then None else Some i

let degree t i = t.offsets.(i + 1) - t.offsets.(i)

let iter_row f t i =
  for k = t.offsets.(i) to t.offsets.(i + 1) - 1 do
    f t.neighbors.(k)
  done

let equal a b =
  a.n = b.n && a.ids = b.ids && a.offsets = b.offsets && a.neighbors = b.neighbors

(* ---- incremental refresh ---- *)

let apply_delta ?(churn_limit = 0.25) t ~touched ~removed g =
  let n_new = Adjacency.num_nodes g in
  let full () = of_adjacency g in
  if n_new = 0 || t.n = 0 then full ()
  else begin
    (* Dedup and classify against the old snapshot. *)
    let removed_old = Hashtbl.create 8 and touched_old = Hashtbl.create 8 in
    List.iter
      (fun v ->
        let i = find_index t.ids t.n v in
        if i >= 0 then Hashtbl.replace removed_old i ())
      removed;
    let added = ref [] in
    List.iter
      (fun v ->
        if Adjacency.mem_node g v then begin
          let i = find_index t.ids t.n v in
          if i >= 0 then Hashtbl.replace touched_old i ()
          else if not (List.exists (Node_id.equal v) !added) then
            added := v :: !added
        end)
      touched;
    let added = List.sort Node_id.compare !added in
    let n_add = List.length added in
    let churn = Hashtbl.length removed_old + Hashtbl.length touched_old + n_add in
    if
      float_of_int churn > churn_limit *. float_of_int n_new
      || t.n - Hashtbl.length removed_old + n_add <> n_new
    then full () (* too much churn, or the caller's delta doesn't span the
                    difference (the graph moved underneath the cache) *)
    else begin
      (* Merge surviving old ids with the sorted additions; both streams are
         ascending, so new dense order is ascending too and the old->new
         remap is monotonic (remapped rows stay sorted). *)
      let ids = Array.make n_new 0 in
      let old_to_new = Array.make t.n (-1) in
      let new_to_old = Array.make n_new (-1) (* -1 = freshly added *) in
      let rest = ref added and w = ref 0 in
      let rec flush_before limit =
        match !rest with
        | a :: tl
          when (match limit with None -> true | Some b -> Node_id.compare a b < 0)
          ->
          ids.(!w) <- a;
          incr w;
          rest := tl;
          flush_before limit
        | _ -> ()
      in
      for i = 0 to t.n - 1 do
        if not (Hashtbl.mem removed_old i) then begin
          flush_before (Some t.ids.(i));
          old_to_new.(i) <- !w;
          new_to_old.(!w) <- i;
          ids.(!w) <- t.ids.(i);
          incr w
        end
      done;
      flush_before None;
      let offsets = Array.make (n_new + 1) 0 in
      let dirty = Array.make n_new false in
      (* a node can be both touched (as an endpoint of removed edges) and
         removed; removal wins and there is no new row to mark *)
      Hashtbl.iter
        (fun i () -> if old_to_new.(i) >= 0 then dirty.(old_to_new.(i)) <- true)
        touched_old;
      for j = 0 to n_new - 1 do
        if new_to_old.(j) < 0 then dirty.(j) <- true
      done;
      for j = 0 to n_new - 1 do
        let d =
          if dirty.(j) then Adjacency.degree g ids.(j)
          else degree t new_to_old.(j)
        in
        offsets.(j + 1) <- offsets.(j) + d
      done;
      let neighbors = Array.make offsets.(n_new) 0 in
      for j = 0 to n_new - 1 do
        let pos = ref offsets.(j) in
        if dirty.(j) then
          Adjacency.iter_neighbors
            (fun u ->
              neighbors.(!pos) <- find_index ids n_new u;
              incr pos)
            g ids.(j)
        else begin
          (* An untouched row cannot point at a removed node (removing a
             node touches all its neighbours), so the remap is total here. *)
          let i = new_to_old.(j) in
          for k = t.offsets.(i) to t.offsets.(i + 1) - 1 do
            neighbors.(!pos) <- old_to_new.(t.neighbors.(k));
            incr pos
          done
        end
      done;
      { n = n_new; offsets; neighbors; ids }
    end
  end

let components t =
  let comp = Array.make t.n (-1) in
  let stack = Array.make (max 1 t.n) 0 in
  let count = ref 0 in
  for v = 0 to t.n - 1 do
    if comp.(v) < 0 then begin
      let c = !count in
      incr count;
      comp.(v) <- c;
      stack.(0) <- v;
      let top = ref 1 in
      while !top > 0 do
        decr top;
        let u = stack.(!top) in
        for k = t.offsets.(u) to t.offsets.(u + 1) - 1 do
          let w = t.neighbors.(k) in
          if comp.(w) < 0 then begin
            comp.(w) <- c;
            stack.(!top) <- w;
            incr top
          end
        done
      done
    end
  done;
  (comp, !count)

type scratch = {
  dist : int array;
  queue : int array; (* flat FIFO; a vertex enters at most once, so no wrap *)
  mutable touched : int; (* queue.(0 .. touched-1) were settled by the last run *)
}

let scratch t =
  { dist = Array.make (max 1 t.n) (-1); queue = Array.make (max 1 t.n) 0; touched = 0 }

let bfs t s src =
  let dist = s.dist and q = s.queue in
  (* undo only what the previous run wrote *)
  for k = 0 to s.touched - 1 do
    dist.(q.(k)) <- -1
  done;
  let offsets = t.offsets and neighbors = t.neighbors in
  dist.(src) <- 0;
  q.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let v = q.(!head) in
    incr head;
    let dv = dist.(v) + 1 in
    for k = offsets.(v) to offsets.(v + 1) - 1 do
      let u = neighbors.(k) in
      if dist.(u) < 0 then begin
        dist.(u) <- dv;
        q.(!tail) <- u;
        incr tail
      end
    done
  done;
  s.touched <- !tail;
  dist

let visited_count s = s.touched
let visited s k = s.queue.(k)
let max_dist s = if s.touched = 0 then 0 else s.dist.(s.queue.(s.touched - 1))

let distances t v =
  match index t v with
  | None -> Node_id.Tbl.create 1
  | Some src ->
    let s = scratch t in
    let dist = bfs t s src in
    let tbl = Node_id.Tbl.create (max 16 s.touched) in
    for k = 0 to s.touched - 1 do
      let i = s.queue.(k) in
      Node_id.Tbl.replace tbl t.ids.(i) dist.(i)
    done;
    tbl
