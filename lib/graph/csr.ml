type int32_arr = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  n : int;
  offsets : int32_arr; (* length n+1; row i is neighbors.(offsets.(i) .. offsets.(i+1)-1) *)
  neighbors : int32_arr; (* dense indices; each row ascending *)
  ids : Node_id.t array; (* dense index -> node id, ascending *)
}

(* Row arrays live off the OCaml heap (malloc'd Bigarray data): the GC
   neither marks nor moves them, so a million-node snapshot costs minor
   collections nothing and is safe to share across [Parallel] domains.
   int32 elements halve the memory traffic of the BFS kernels vs boxed-free
   OCaml ints; [get]/[set] below compile to an unboxed 32-bit load/store
   (the [Int32.to_int] consumes the box before it is ever allocated). *)

let[@inline] get (a : int32_arr) i = Int32.to_int (Bigarray.Array1.unsafe_get a i)

let[@inline] set (a : int32_arr) i v =
  Bigarray.Array1.unsafe_set a i (Int32.of_int v)

let create_arr n : int32_arr =
  Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout n

let row_offsets t = t.offsets
let row_adjacency t = t.neighbors

(* ids is sorted ascending, so the id -> dense-index map is a binary search:
   no hashtable to build (which would dominate [apply_delta]) and no
   allocation. *)
let find_index ids n v =
  let lo = ref 0 and hi = ref n in
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) / 2 in
    if Node_id.compare ids.(mid) v < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo < n && Node_id.equal ids.(!lo) v then !lo else -1

let of_adjacency g =
  let n = Adjacency.num_nodes g in
  if n >= 0x7FFFFFFF || 2 * Adjacency.num_edges g > 0x7FFFFFFF then
    invalid_arg "Csr.of_adjacency: dense indices and row offsets must fit int32";
  let ids = Array.make n 0 in
  let k = ref 0 in
  Adjacency.iter_nodes
    (fun v ->
      ids.(!k) <- v;
      incr k)
    g;
  Array.sort Node_id.compare ids;
  let offsets = create_arr (n + 1) in
  set offsets 0 0;
  for i = 0 to n - 1 do
    set offsets (i + 1) (get offsets i + Adjacency.degree g ids.(i))
  done;
  let neighbors = create_arr (get offsets n) in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    (* Set iteration is ascending in node id and the dense indexing is
       order-preserving, so each row comes out ascending in dense index. *)
    Adjacency.iter_neighbors
      (fun u ->
        set neighbors !pos (find_index ids n u);
        incr pos)
      g ids.(i)
  done;
  { n; offsets; neighbors; ids }

let num_nodes t = t.n
let num_edges t = Bigarray.Array1.dim t.neighbors / 2
let id t i = t.ids.(i)

let index t v =
  let i = find_index t.ids t.n v in
  if i < 0 then None else Some i

let degree t i = get t.offsets (i + 1) - get t.offsets i

let iter_row f t i =
  for k = get t.offsets i to get t.offsets (i + 1) - 1 do
    f (get t.neighbors k)
  done

let arr_equal (a : int32_arr) (b : int32_arr) =
  Bigarray.Array1.dim a = Bigarray.Array1.dim b
  && begin
       let ok = ref true in
       for i = 0 to Bigarray.Array1.dim a - 1 do
         if get a i <> get b i then ok := false
       done;
       !ok
     end

let equal a b =
  a.n = b.n && a.ids = b.ids && arr_equal a.offsets b.offsets
  && arr_equal a.neighbors b.neighbors

(* ---- incremental refresh ---- *)

let apply_delta ?(churn_limit = 0.25) t ~touched ~removed g =
  let n_new = Adjacency.num_nodes g in
  let full () = of_adjacency g in
  if n_new = 0 || t.n = 0 then full ()
  else begin
    (* Dedup and classify against the old snapshot. *)
    let removed_old = Hashtbl.create 8 and touched_old = Hashtbl.create 8 in
    List.iter
      (fun v ->
        let i = find_index t.ids t.n v in
        if i >= 0 then Hashtbl.replace removed_old i ())
      removed;
    let added = ref [] in
    List.iter
      (fun v ->
        if Adjacency.mem_node g v then begin
          let i = find_index t.ids t.n v in
          if i >= 0 then Hashtbl.replace touched_old i ()
          else if not (List.exists (Node_id.equal v) !added) then
            added := v :: !added
        end)
      touched;
    let added = List.sort Node_id.compare !added in
    let n_add = List.length added in
    let churn = Hashtbl.length removed_old + Hashtbl.length touched_old + n_add in
    if
      float_of_int churn > churn_limit *. float_of_int n_new
      || t.n - Hashtbl.length removed_old + n_add <> n_new
    then full () (* too much churn, or the caller's delta doesn't span the
                    difference (the graph moved underneath the cache) *)
    else begin
      (* Merge surviving old ids with the sorted additions; both streams are
         ascending, so new dense order is ascending too and the old->new
         remap is monotonic (remapped rows stay sorted). *)
      let ids = Array.make n_new 0 in
      let old_to_new = Array.make t.n (-1) in
      let new_to_old = Array.make n_new (-1) (* -1 = freshly added *) in
      let rest = ref added and w = ref 0 in
      let rec flush_before limit =
        match !rest with
        | a :: tl
          when (match limit with None -> true | Some b -> Node_id.compare a b < 0)
          ->
          ids.(!w) <- a;
          incr w;
          rest := tl;
          flush_before limit
        | _ -> ()
      in
      for i = 0 to t.n - 1 do
        if not (Hashtbl.mem removed_old i) then begin
          flush_before (Some t.ids.(i));
          old_to_new.(i) <- !w;
          new_to_old.(!w) <- i;
          ids.(!w) <- t.ids.(i);
          incr w
        end
      done;
      flush_before None;
      let offsets = create_arr (n_new + 1) in
      set offsets 0 0;
      let dirty = Array.make n_new false in
      (* a node can be both touched (as an endpoint of removed edges) and
         removed; removal wins and there is no new row to mark *)
      Hashtbl.iter
        (fun i () -> if old_to_new.(i) >= 0 then dirty.(old_to_new.(i)) <- true)
        touched_old;
      for j = 0 to n_new - 1 do
        if new_to_old.(j) < 0 then dirty.(j) <- true
      done;
      for j = 0 to n_new - 1 do
        let d =
          if dirty.(j) then Adjacency.degree g ids.(j)
          else degree t new_to_old.(j)
        in
        set offsets (j + 1) (get offsets j + d)
      done;
      let neighbors = create_arr (get offsets n_new) in
      for j = 0 to n_new - 1 do
        let pos = ref (get offsets j) in
        if dirty.(j) then
          Adjacency.iter_neighbors
            (fun u ->
              set neighbors !pos (find_index ids n_new u);
              incr pos)
            g ids.(j)
        else begin
          (* An untouched row cannot point at a removed node (removing a
             node touches all its neighbours), so the remap is total here. *)
          let i = new_to_old.(j) in
          for k = get t.offsets i to get t.offsets (i + 1) - 1 do
            set neighbors !pos old_to_new.(get t.neighbors k);
            incr pos
          done
        end
      done;
      { n = n_new; offsets; neighbors; ids }
    end
  end

let components t =
  let comp = Array.make t.n (-1) in
  let stack = Array.make (max 1 t.n) 0 in
  let count = ref 0 in
  for v = 0 to t.n - 1 do
    if comp.(v) < 0 then begin
      let c = !count in
      incr count;
      comp.(v) <- c;
      stack.(0) <- v;
      let top = ref 1 in
      while !top > 0 do
        decr top;
        let u = stack.(!top) in
        for k = get t.offsets u to get t.offsets (u + 1) - 1 do
          let w = get t.neighbors k in
          if comp.(w) < 0 then begin
            comp.(w) <- c;
            stack.(!top) <- w;
            incr top
          end
        done
      done
    end
  done;
  (comp, !count)

let component_map t =
  let comp, count = components t in
  (Interval_map.of_array ~equal:Int.equal comp, count)

type scratch = {
  dist : int array;
  queue : int array; (* flat FIFO; a vertex enters at most once, so no wrap *)
  mutable touched : int; (* queue.(0 .. touched-1) were settled by the last run *)
}

let scratch t =
  { dist = Array.make (max 1 t.n) (-1); queue = Array.make (max 1 t.n) 0; touched = 0 }

let bfs t s src =
  let dist = s.dist and q = s.queue in
  (* undo only what the previous run wrote *)
  for k = 0 to s.touched - 1 do
    dist.(q.(k)) <- -1
  done;
  let offsets = t.offsets and neighbors = t.neighbors in
  dist.(src) <- 0;
  q.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let v = q.(!head) in
    incr head;
    let dv = dist.(v) + 1 in
    for k = get offsets v to get offsets (v + 1) - 1 do
      let u = get neighbors k in
      if dist.(u) < 0 then begin
        dist.(u) <- dv;
        q.(!tail) <- u;
        incr tail
      end
    done
  done;
  s.touched <- !tail;
  dist

let visited_count s = s.touched
let visited s k = s.queue.(k)
let max_dist s = if s.touched = 0 then 0 else s.dist.(s.queue.(s.touched - 1))

let distances t v =
  match index t v with
  | None -> Node_id.Tbl.create 1
  | Some src ->
    let s = scratch t in
    let dist = bfs t s src in
    let tbl = Node_id.Tbl.create (max 16 s.touched) in
    for k = 0 to s.touched - 1 do
      let i = s.queue.(k) in
      Node_id.Tbl.replace tbl t.ids.(i) dist.(i)
    done;
    tbl
