(** Diameter and eccentricity measures.

    The Forgiving Tree baseline is stated in terms of diameter blow-up, so
    experiment E7 needs both the exact diameter (small graphs) and a cheap
    two-sweep lower bound (large graphs).

    The all-pairs entry points snapshot the graph once ({!Csr}) and fan the
    per-source BFS across [?domains] domains ({!Parallel}; default: the
    process-wide setting, 1 unless raised). Results are identical for any
    domain count.

    Every entry point accepts an optional prebuilt [?csr] snapshot of [g]
    (e.g. a cached {!Csr.apply_delta}-refreshed one): when given, the
    snapshot build is skipped. Results are identical either way. *)

(** [exact g] is the largest eccentricity within any single component;
    [0] for an empty or edgeless graph. Runs a BFS per node. *)
val exact : ?domains:int -> ?csr:Csr.t -> Adjacency.t -> int

(** [two_sweep g] is a classic lower bound: BFS from the smallest node id,
    then BFS from the farthest node found (ties to the smallest id).
    Exact on trees. *)
val two_sweep : ?csr:Csr.t -> Adjacency.t -> int

(** [radius g] is the smallest eccentricity over nodes (per component
    maximum). *)
val radius : ?domains:int -> ?csr:Csr.t -> Adjacency.t -> int

(** [average_path_length g] averages hop distance over all connected
    ordered pairs; [0.] when no such pair exists. *)
val average_path_length : ?domains:int -> ?csr:Csr.t -> Adjacency.t -> float
