(* Run-length encoded map over a dense integer domain [0 .. len-1].
   Adjacent equal values are merged into runs, stored as two parallel
   arrays: [starts.(k)] is the first index of run [k] (ascending,
   [starts.(0) = 0]) and [values.(k)] its value. [get] is a binary search
   for the last run starting at or before the key, so lookups cost
   O(log runs) while storage costs O(runs) — on post-heal component
   labels, runs is typically a handful where a per-node array is O(n). *)

type 'a t = { len : int; starts : int array; values : 'a array }

let length t = t.len
let run_count t = Array.length t.starts

let init ?(equal = ( = )) ~len f =
  if len < 0 then invalid_arg "Interval_map.init: negative length";
  if len = 0 then { len = 0; starts = [||]; values = [||] }
  else begin
    (* first pass: count runs; second pass: fill. Two O(len) scans beat
       an intermediate list (no per-run boxing beyond the result). *)
    let runs = ref 1 in
    let prev = ref (f 0) in
    for i = 1 to len - 1 do
      let v = f i in
      if not (equal v !prev) then begin
        incr runs;
        prev := v
      end
    done;
    let starts = Array.make !runs 0 in
    let values = Array.make !runs (f 0) in
    let k = ref 0 in
    let prev = ref (f 0) in
    values.(0) <- !prev;
    for i = 1 to len - 1 do
      let v = f i in
      if not (equal v !prev) then begin
        incr k;
        starts.(!k) <- i;
        values.(!k) <- v;
        prev := v
      end
    done;
    { len; starts; values }
  end

let of_array ?equal a = init ?equal ~len:(Array.length a) (fun i -> a.(i))

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Interval_map.get: out of range";
  (* last run with starts.(k) <= i *)
  let lo = ref 0 and hi = ref (Array.length t.starts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.starts.(mid) <= i then lo := mid else hi := mid - 1
  done;
  t.values.(!lo)

let iter_runs f t =
  let runs = Array.length t.starts in
  for k = 0 to runs - 1 do
    let hi = if k = runs - 1 then t.len else t.starts.(k + 1) in
    f ~lo:t.starts.(k) ~hi t.values.(k)
  done

let fold_runs f t acc =
  let runs = Array.length t.starts in
  let acc = ref acc in
  for k = 0 to runs - 1 do
    let hi = if k = runs - 1 then t.len else t.starts.(k + 1) in
    acc := f ~lo:t.starts.(k) ~hi t.values.(k) !acc
  done;
  !acc

let to_array t =
  if t.len = 0 then [||]
  else begin
    let out = Array.make t.len t.values.(0) in
    iter_runs (fun ~lo ~hi v -> Array.fill out lo (hi - lo) v) t;
    out
  end

let equal eq a b =
  a.len = b.len
  && Array.length a.starts = Array.length b.starts
  && begin
       let ok = ref true in
       for k = 0 to Array.length a.starts - 1 do
         if a.starts.(k) <> b.starts.(k) || not (eq a.values.(k) b.values.(k))
         then ok := false
       done;
       !ok
     end
