(* All-pairs sweeps run on a CSR snapshot: one snapshot build, then a dense
   direction-optimizing BFS ({!Bfs_kernel.bfs}) per source, fanned across
   domains by [Parallel.map]. The kernel's distance arrays are identical to
   [Csr.bfs]'s, and per-source results are reduced in dense-index (= sorted
   node id) order, so every quantity below is byte-identical for any domain
   count — and to the pre-kernel implementation. *)

let snap csr g = match csr with Some c -> c | None -> Csr.of_adjacency g

let exact ?domains ?csr g =
  let csr = snap csr g in
  let n = Csr.num_nodes csr in
  let ecc =
    Parallel.map ?domains
      ~init:(fun () -> Bfs_kernel.create csr)
      ~f:(fun s i ->
        ignore (Bfs_kernel.bfs csr s i);
        Bfs_kernel.max_dist s)
      n
  in
  Array.fold_left max 0 ecc

let two_sweep ?csr g =
  let csr = snap csr g in
  let n = Csr.num_nodes csr in
  if n = 0 then 0
  else begin
    let s = Bfs_kernel.create csr in
    (* farthest node with ties broken by smallest id: dense index order is
       id order, so the first strict improvement wins *)
    let farthest src =
      let dist = Bfs_kernel.bfs csr s src in
      let best = ref src and bd = ref 0 in
      for i = 0 to n - 1 do
        if dist.(i) > !bd then begin
          best := i;
          bd := dist.(i)
        end
      done;
      (!best, !bd)
    in
    let u, _ = farthest 0 in
    snd (farthest u)
  end

let radius ?domains ?csr g =
  let csr = snap csr g in
  let n = Csr.num_nodes csr in
  if n = 0 then 0
  else begin
    let ecc =
      Parallel.map ?domains
        ~init:(fun () -> Bfs_kernel.create csr)
        ~f:(fun s i ->
          ignore (Bfs_kernel.bfs csr s i);
          Bfs_kernel.max_dist s)
        n
    in
    Array.fold_left min ecc.(0) ecc
  end

let average_path_length ?domains ?csr g =
  let csr = snap csr g in
  let n = Csr.num_nodes csr in
  let sums =
    Parallel.map ?domains
      ~init:(fun () -> Bfs_kernel.create csr)
      ~f:(fun s i ->
        let dist = Bfs_kernel.bfs csr s i in
        let total = ref 0 in
        for k = 1 to Bfs_kernel.visited_count s - 1 do
          total := !total + dist.(Bfs_kernel.visited s k)
        done;
        (!total, Bfs_kernel.visited_count s - 1))
      n
  in
  let total, pairs =
    Array.fold_left (fun (t, p) (ti, pi) -> (t + ti, p + pi)) (0, 0) sums
  in
  if pairs = 0 then 0. else float_of_int total /. float_of_int pairs
