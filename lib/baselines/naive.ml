module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency

type pattern = No_repair | Cycle | Line | Clique | Star | Binary_tree

let pattern_name = function
  | No_repair -> "none"
  | Cycle -> "cycle"
  | Line -> "line"
  | Clique -> "clique"
  | Star -> "star"
  | Binary_tree -> "binary"

type state = {
  g : Adjacency.t;  (* current network *)
  gp : Adjacency.t;  (* insert-only graph *)
  alive : unit Node_id.Tbl.t;
}

(* [arr.(0 .. len-1)] is the victim's former neighbour row, already in
   ascending id order (the order the old list-based code sorted into). The
   buffer is borrowed from the caller's scratch, so repair allocates
   nothing. *)
let patch pattern g arr len =
  if len >= 2 then
    match pattern with
    | No_repair -> ()
    | Cycle ->
      for i = 0 to len - 2 do
        Adjacency.add_edge g arr.(i) arr.(i + 1)
      done;
      Adjacency.add_edge g arr.(len - 1) arr.(0)
    | Line ->
      for i = 0 to len - 2 do
        Adjacency.add_edge g arr.(i) arr.(i + 1)
      done
    | Clique ->
      for i = 0 to len - 1 do
        for j = i + 1 to len - 1 do
          Adjacency.add_edge g arr.(i) arr.(j)
        done
      done
    | Star ->
      for i = 1 to len - 1 do
        Adjacency.add_edge g arr.(0) arr.(i)
      done
    | Binary_tree ->
      (* heap-shaped balanced binary tree over the neighbours; no simulation
         bookkeeping, so repeated deletions concentrate degree *)
      for i = 1 to len - 1 do
        Adjacency.add_edge g arr.((i - 1) / 2) arr.(i)
      done

let healer pattern g0 =
  let st =
    { g = Adjacency.copy g0; gp = Adjacency.copy g0; alive = Node_id.Tbl.create 64 }
  in
  Adjacency.iter_nodes (fun v -> Node_id.Tbl.replace st.alive v ()) g0;
  let is_alive v = Node_id.Tbl.mem st.alive v in
  let insert v nbrs =
    if Adjacency.mem_node st.gp v then invalid_arg "naive insert: id already seen";
    let nbrs = List.sort_uniq Node_id.compare nbrs in
    List.iter
      (fun u -> if not (is_alive u) then invalid_arg "naive insert: dead neighbour")
      nbrs;
    Adjacency.add_node st.gp v;
    Adjacency.add_node st.g v;
    Node_id.Tbl.replace st.alive v ();
    List.iter
      (fun u ->
        Adjacency.add_edge st.gp v u;
        Adjacency.add_edge st.g v u)
      nbrs
  in
  let scratch = ref [||] in
  let delete v =
    if not (is_alive v) then invalid_arg "naive delete: node not live";
    let len = Adjacency.neighbors_into st.g v scratch in
    Adjacency.remove_node st.g v;
    Node_id.Tbl.remove st.alive v;
    patch pattern st.g !scratch len
  in
  {
    Healer.name = pattern_name pattern;
    insert;
    delete;
    graph = (fun () -> st.g);
    gprime = (fun () -> st.gp);
    live_nodes = (fun () -> Node_id.Tbl.fold (fun v () acc -> v :: acc) st.alive []);
    is_alive;
    init_messages = 0;
  }
