(** Common interface over self-healing strategies, so the comparison
    experiments (E7, E10) can sweep the Forgiving Graph, the Forgiving
    Tree, and the naive patch baselines uniformly.

    A healer owns the evolving network: it accepts the same adversarial
    insert/delete events as {!Fg_core.Forgiving_graph} and exposes the
    healed graph plus the insert-only reference graph [G'] for metrics. *)

module Node_id := Fg_graph.Node_id

(** Raised by healers that do not support an operation (e.g. the Forgiving
    Tree has no insertion algorithm — one of the paper's claimed
    improvements). *)
exception Unsupported of string

(** First-class healer: a record of operations closed over its state. *)
type t = {
  name : string;
  insert : Node_id.t -> Node_id.t list -> unit;
  delete : Node_id.t -> unit;
  graph : unit -> Fg_graph.Adjacency.t;  (** current healed network *)
  gprime : unit -> Fg_graph.Adjacency.t;  (** insert-only graph *)
  live_nodes : unit -> Node_id.t list;
  is_alive : Node_id.t -> bool;
  init_messages : int;  (** preprocessing cost charged at start-up *)
}

(** [forgiving_graph g] wraps the paper's structure. No initialization
    phase: [init_messages = 0]. *)
val forgiving_graph : Fg_graph.Adjacency.t -> t

(** [forgiving_graph_paranoid ?on_violation g] is {!forgiving_graph} with
    an O(Δ) {!Fg_core.Invariants.check_delta} audit after {e every} event
    (the [fg_cli attack --paranoid] mode). Results are identical to
    {!forgiving_graph} — only the audit is added; the healer still reports
    its name as ["fg"]. [on_violation] receives the violations; the
    default raises [Failure]. *)
val forgiving_graph_paranoid :
  ?on_violation:(string list -> unit) -> Fg_graph.Adjacency.t -> t
