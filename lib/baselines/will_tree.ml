module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency

type kind = Real of Node_id.t | Virtual of Node_id.t  (* simulator *)

type vnode = {
  id : int;
  mutable kind : kind;
  mutable parent : vnode option;
  mutable children : vnode list;
  mutable dissolved : bool;
}

type t = {
  nodes : vnode Node_id.Tbl.t;  (* live proc -> its real vnode *)
  sims : vnode Node_id.Tbl.t;  (* proc -> the virtual vnode it simulates *)
  orig_deg : int Node_id.Tbl.t;
  mutable roots : vnode list;
  mutable next_id : int;
}

let proc_of v = match v.kind with Real p -> p | Virtual p -> p
let is_alive t p = Node_id.Tbl.mem t.nodes p
let live_nodes t = Node_id.Tbl.fold (fun p _ acc -> p :: acc) t.nodes []

let simulates t p =
  match Node_id.Tbl.find_opt t.sims p with Some _ -> 1 | None -> 0

let original_degree t v =
  Option.value (Node_id.Tbl.find_opt t.orig_deg v) ~default:0

let fresh t kind =
  let v = { id = t.next_id; kind; parent = None; children = []; dissolved = false } in
  t.next_id <- t.next_id + 1;
  v

let create tree =
  let t =
    {
      nodes = Node_id.Tbl.create 64;
      sims = Node_id.Tbl.create 64;
      orig_deg = Node_id.Tbl.create 64;
      roots = [];
      next_id = 0;
    }
  in
  Adjacency.iter_nodes
    (fun p ->
      Node_id.Tbl.replace t.nodes p (fresh t (Real p));
      Node_id.Tbl.replace t.orig_deg p (Adjacency.degree tree p))
    tree;
  (* root each component at its smallest id; parent links via BFS *)
  let seen = Node_id.Tbl.create 64 in
  let bfs root =
    let rv = Node_id.Tbl.find t.nodes root in
    t.roots <- rv :: t.roots;
    let q = Queue.create () in
    Node_id.Tbl.replace seen root ();
    Queue.add root q;
    while not (Queue.is_empty q) do
      let p = Queue.pop q in
      let pv = Node_id.Tbl.find t.nodes p in
      let visit c =
        if not (Node_id.Tbl.mem seen c) then begin
          Node_id.Tbl.replace seen c ();
          let cv = Node_id.Tbl.find t.nodes c in
          cv.parent <- Some pv;
          pv.children <- cv :: pv.children;
          Queue.add c q
        end
      in
      (* neighbour rows are already ascending in id *)
      Adjacency.iter_neighbors visit tree p
    done
  in
  List.iter
    (fun p -> if not (Node_id.Tbl.mem seen p) then bfs p)
    (List.sort Node_id.compare (Adjacency.nodes tree));
  t

(* smallest free (non-simulating, live) processor in [x]'s subtree *)
let find_free_proc t x =
  let best = ref None in
  let rec go v =
    (match v.kind with
    | Real p when is_alive t p && not (Node_id.Tbl.mem t.sims p) -> (
      match !best with
      | Some b when Node_id.compare b p <= 0 -> ()
      | _ -> best := Some p)
    | Real _ | Virtual _ -> ());
    List.iter go v.children
  in
  go x;
  !best

(* replace [old_child] in its parent's child list (or the forest roots) *)
let replace_child t ~parent ~old_child ~with_ =
  match parent with
  | Some pv ->
    pv.children <-
      List.concat_map
        (fun c ->
          if c.id = old_child.id then match with_ with Some r -> [ r ] | None -> []
          else [ c ])
        pv.children;
    Option.iter (fun r -> r.parent <- Some pv) with_
  | None ->
    t.roots <-
      List.concat_map
        (fun c ->
          if c.id = old_child.id then match with_ with Some r -> [ r ] | None -> []
          else [ c ])
        t.roots;
    Option.iter (fun r -> r.parent <- None) with_

(* a virtual node reduced to a single child dissolves: splice it out and
   free its simulator *)
let rec normalize t v =
  match (v.kind, v.children) with
  | Virtual sim, [ only ] ->
    Node_id.Tbl.remove t.sims sim;
    v.dissolved <- true;
    replace_child t ~parent:v.parent ~old_child:v ~with_:(Some only);
    (match only.parent with Some p -> normalize t p | None -> ())
  | Virtual sim, [] ->
    (* both leaves died: the virtual node vanishes entirely *)
    Node_id.Tbl.remove t.sims sim;
    v.dissolved <- true;
    let parent = v.parent in
    replace_child t ~parent ~old_child:v ~with_:None;
    (match parent with Some p -> normalize t p | None -> ())
  | _ -> ()

(* the will: a balanced binary tree over [v]'s children, internal nodes
   simulated by free descendants (the representative discipline) *)
let build_will t children =
  let rec level = function
    | [] -> None
    | [ only ] -> Some only
    | nodes ->
      let rec pair = function
        | a :: b :: rest ->
          let w = fresh t (Real (-1)) in
          (* temporary kind; fixed below *)
          w.children <- [ a; b ];
          a.parent <- Some w;
          b.parent <- Some w;
          let sim =
            match find_free_proc t w with
            | Some p -> p
            | None -> (
              (* fall back to any free live processor; keeps the <=1
                 virtual-per-processor invariant (hence +3 degree) at the
                 cost of locality *)
              match
                List.sort Node_id.compare
                  (List.filter
                     (fun p -> not (Node_id.Tbl.mem t.sims p))
                     (live_nodes t))
              with
              | p :: _ -> p
              | [] -> failwith "Will_tree: no free simulator anywhere")
          in
          w.kind <- Virtual sim;
          Node_id.Tbl.replace t.sims sim w;
          w :: pair rest
        | rest -> rest
      in
      level (pair nodes)
  in
  let ordered = List.sort (fun a b -> compare a.id b.id) children in
  level ordered

let delete t v =
  let rv =
    match Node_id.Tbl.find_opt t.nodes v with
    | Some rv -> rv
    | None -> invalid_arg "Will_tree.delete: node is not live"
  in
  Node_id.Tbl.remove t.nodes v;
  let orphaned_virtual = Node_id.Tbl.find_opt t.sims v in
  Node_id.Tbl.remove t.sims v;
  let parent = rv.parent in
  let children = rv.children in
  List.iter (fun c -> c.parent <- None) children;
  rv.children <- [];
  (* execute the will *)
  let replacement = build_will t children in
  replace_child t ~parent ~old_child:rv ~with_:replacement;
  (* a virtual parent left with one child dissolves *)
  (match parent with Some p -> normalize t p | None -> ());
  (* hand v's virtual node to a free descendant *)
  match orphaned_virtual with
  | None -> ()
  | Some w ->
    (* w may itself have dissolved during normalization *)
    if not w.dissolved then begin
      let p =
        match find_free_proc t w with
        | Some p -> Some p
        | None ->
          List.find_opt
            (fun p -> not (Node_id.Tbl.mem t.sims p))
            (List.sort Node_id.compare (live_nodes t))
      in
      match p with
      | Some p ->
        w.kind <- Virtual p;
        Node_id.Tbl.replace t.sims p w
      | None -> failwith "Will_tree: no free simulator to inherit a virtual node"
    end

let graph t =
  let g = Adjacency.create () in
  Node_id.Tbl.iter (fun p _ -> Adjacency.add_node g p) t.nodes;
  let rec go v =
    let pv = proc_of v in
    List.iter
      (fun c ->
        let pc = proc_of c in
        if not (Node_id.equal pv pc) then Adjacency.add_edge g pv pc;
        go c)
      v.children
  in
  List.iter go t.roots;
  g

let check t =
  let errs = ref [] in
  let say fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  (* forest structure and arities *)
  let seen = Hashtbl.create 64 in
  let rec walk v =
    if Hashtbl.mem seen v.id then say "vnode #%d reached twice" v.id
    else begin
      Hashtbl.replace seen v.id ();
      (match v.kind with
      | Virtual sim ->
        if List.length v.children <> 2 then
          say "virtual #%d has %d children" v.id (List.length v.children);
        if not (is_alive t sim) then say "virtual #%d simulated by dead %d" v.id sim;
        (match Node_id.Tbl.find_opt t.sims sim with
        | Some w when w.id = v.id -> ()
        | _ -> say "virtual #%d not registered to its simulator %d" v.id sim)
      | Real p ->
        if not (is_alive t p) then say "dead real vnode #%d (%d) in tree" v.id p);
      List.iter
        (fun c ->
          (match c.parent with
          | Some pp when pp.id = v.id -> ()
          | _ -> say "child #%d of #%d lacks backlink" c.id v.id);
          walk c)
        v.children
    end
  in
  List.iter walk t.roots;
  (* every live proc's real vnode is in the forest *)
  Node_id.Tbl.iter
    (fun p rv -> if not (Hashtbl.mem seen rv.id) then say "live %d not in forest" p)
    t.nodes;
  (* simulator injectivity is structural (sims is keyed by proc); check
     that registered sims point at forest nodes *)
  Node_id.Tbl.iter
    (fun p w ->
      if not (Hashtbl.mem seen w.id) then say "sim of %d points outside the forest" p)
    t.sims;
  (* the PODC'08 degree guarantee: original tree degree + 3 *)
  let g = graph t in
  Node_id.Tbl.iter
    (fun p _ ->
      let d = Adjacency.degree g p and d0 = original_degree t p in
      if d > d0 + 3 then say "degree of %d: %d > %d + 3" p d d0)
    t.nodes;
  (* connectivity: one image component per forest root *)
  let comps = Fg_graph.Connectivity.num_components g in
  if Adjacency.num_nodes g > 0 && comps <> List.length t.roots then
    say "image has %d components, forest has %d roots" comps (List.length t.roots);
  List.rev !errs
