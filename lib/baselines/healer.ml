module Node_id = Fg_graph.Node_id
module Fg = Fg_core.Forgiving_graph

exception Unsupported of string

type t = {
  name : string;
  insert : Node_id.t -> Node_id.t list -> unit;
  delete : Node_id.t -> unit;
  graph : unit -> Fg_graph.Adjacency.t;
  gprime : unit -> Fg_graph.Adjacency.t;
  live_nodes : unit -> Node_id.t list;
  is_alive : Node_id.t -> bool;
  init_messages : int;
}

let forgiving_graph g0 =
  let fg = Fg.of_graph g0 in
  {
    name = "fg";
    insert = (fun v nbrs -> Fg.insert fg v nbrs);
    delete = (fun v -> Fg.delete fg v);
    graph = (fun () -> Fg.graph fg);
    gprime = (fun () -> Fg.gprime fg);
    live_nodes = (fun () -> Fg.live_nodes fg);
    is_alive = (fun v -> Fg.is_alive fg v);
    init_messages = 0;
  }

let forgiving_graph_paranoid ?on_violation g0 =
  let fg = Fg.of_graph g0 in
  let report =
    match on_violation with
    | Some f -> f
    | None -> fun errs -> failwith ("paranoid: " ^ String.concat "; " errs)
  in
  let audit d =
    match Fg_core.Invariants.check_delta fg d with [] -> () | errs -> report errs
  in
  {
    name = "fg"; (* same healer, same results — only the audit differs *)
    insert = (fun v nbrs -> audit (Fg.insert_delta fg v nbrs));
    delete = (fun v -> audit (fst (Fg.delete_delta fg v)));
    graph = (fun () -> Fg.graph fg);
    gprime = (fun () -> Fg.gprime fg);
    live_nodes = (fun () -> Fg.live_nodes fg);
    is_alive = (fun v -> Fg.is_alive fg v);
    init_messages = 0;
  }
