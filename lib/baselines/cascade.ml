module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency
module Centrality = Fg_graph.Centrality
module Fg = Fg_core.Forgiving_graph

type params = { tolerance : float; max_waves : int }
type heal_mode = No_heal | Rewire of Fg_graph.Rng.t | Forgiving

type result = {
  initial_nodes : int;
  surviving : int;
  waves : int;
  surviving_fraction : float;
  largest_component_fraction : float;
}

(* load = betweenness + 1: every node carries at least its own traffic, so
   leaves are not born at zero capacity *)
let loads ?csr g =
  let bc = Centrality.betweenness ?csr g in
  let t = Node_id.Tbl.create 64 in
  Node_id.Tbl.iter (fun v x -> Node_id.Tbl.replace t v (x +. 1.)) bc;
  t

let top_degree_attack g k =
  Centrality.top_k (Centrality.degree_centrality g) k ~compare:Int.compare

let run params ~heal g0 ~attack =
  let initial_nodes = Adjacency.num_nodes g0 in
  let capacity = Node_id.Tbl.create 64 in
  Node_id.Tbl.iter
    (fun v l -> Node_id.Tbl.replace capacity v ((1. +. params.tolerance) *. l))
    (loads g0);
  (* the evolving network, behind the chosen healing mode *)
  let fg = match heal with Forgiving -> Some (Fg.of_graph g0) | _ -> None in
  let plain = match heal with Forgiving -> None | _ -> Some (Adjacency.copy g0) in
  let current () =
    match (fg, plain) with
    | Some f, None -> Fg.graph f
    | None, Some g -> g
    | _ -> assert false
  in
  let scratch = ref [||] in
  let remove v =
    match (fg, plain, heal) with
    | Some f, None, _ -> Fg.delete f v
    | None, Some g, Rewire rng ->
      let len = Adjacency.neighbors_into g v scratch in
      Adjacency.remove_node g v;
      (* emergent rewiring: reconnect one random surviving pair *)
      if len >= 2 then begin
        let arr = Array.sub !scratch 0 len in
        let x = Fg_graph.Rng.pick_array rng arr and y = Fg_graph.Rng.pick_array rng arr in
        if Node_id.equal x y then Adjacency.add_edge g arr.(0) arr.(1)
        else Adjacency.add_edge g x y
      end
    | None, Some g, _ -> Adjacency.remove_node g v
    | _ -> assert false
  in
  List.iter (fun v -> if Adjacency.mem_node (current ()) v then remove v) attack;
  let waves = ref 0 in
  let continue_ = ref true in
  while !continue_ && !waves < params.max_waves do
    let g = current () in
    (* in Forgiving mode the engine's published per-generation snapshot
       is free: [publish] only re-publishes when the generation moved *)
    let now = loads ?csr:(Option.map (fun fg -> (Fg.publish fg).Fg.csr) fg) g in
    let failures =
      Node_id.Tbl.fold
        (fun v l acc ->
          match Node_id.Tbl.find_opt capacity v with
          | Some c when l > c -> v :: acc
          | _ -> acc)
        now []
    in
    if failures = [] then continue_ := false
    else begin
      incr waves;
      List.iter remove (List.sort Node_id.compare failures)
    end
  done;
  let g = current () in
  let surviving = Adjacency.num_nodes g in
  {
    initial_nodes;
    surviving;
    waves = !waves;
    surviving_fraction = float_of_int surviving /. float_of_int (max 1 initial_nodes);
    largest_component_fraction =
      float_of_int (Fg_graph.Connectivity.largest_component_size g)
      /. float_of_int (max 1 initial_nodes);
  }
