(** OpenMetrics / Prometheus text exposition for the {!Metrics}
    registry.

    {!render} emits every counter as a [counter] family
    ([<name>_total]), every float-sample series as a [summary]
    (quantile samples plus [_sum]/[_count]), and every HDR histogram
    as a [histogram] with cumulative [_bucket{le="..."}] lines (one
    per non-empty HDR bucket, using the bucket's inclusive upper
    bound, plus the mandatory [+Inf]), terminated by [# EOF]. Metric
    names are sanitized to the exposition charset ([[a-zA-Z0-9_:]],
    leading digit prefixed) — e.g. [fg.deletions] becomes
    [fg_deletions_total] and [profile.heal_ns] becomes
    [profile_heal_ns_bucket{le="..."}].

    {!validate} is a small in-repo grammar checker for that format —
    enough for CI to assert that what we expose is scrape-able without
    pulling in an external parser. It accepts a stream of one or more
    exposures (each ending in [# EOF], as produced by
    [fg_cli attack --metrics-every N]) and checks, per exposure:
    every sample belongs to a declared [# TYPE] family with a legal
    suffix for its type; histogram [le] labels parse, strictly
    increase, and have non-decreasing cumulative counts; every
    histogram has a [+Inf] bucket equal to its [_count]; summary
    [quantile] labels lie in [0,1]; and the final line of the input is
    [# EOF]. *)

val render : Metrics.t -> string

(** Append the exposition text (including the trailing [# EOF] line)
    to [buf]. *)
val render_buf : Buffer.t -> Metrics.t -> unit

(** Sanitized family name for a registry metric name (without any
    [_total]/[_bucket] suffix). Exposed for tests. *)
val family_name : string -> string

val validate : string -> (unit, string) result
