(** Minimal JSON values: enough to emit and re-read the JSONL telemetry
    stream without any third-party dependency. Strings are ASCII (the
    writer escapes control characters; the reader maps non-ASCII [\u]
    escapes to ['?'] — we never emit them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact single-line rendering (no trailing newline). NaN/infinite
    floats render as [null]. *)
val to_string : t -> string

(** Parse one JSON value; [Error] describes the first syntax error. *)
val of_string : string -> (t, string) result

(** [member k (Obj kvs)] is the value bound to [k], if any. *)
val member : string -> t -> t option

(** Numeric/str coercions ([Int] widens to float; floats truncate). *)
val to_int : t -> int option

val to_float : t -> float option
val to_str : t -> string option
