type phase =
  | Collect
  | Strip
  | Merge
  | Image
  | Heal
  | Csr_apply
  | Csr_rebuild
  | Bfs

let name_of = function
  | Collect -> "profile.collect_ns"
  | Strip -> "profile.strip_ns"
  | Merge -> "profile.merge_ns"
  | Image -> "profile.image_ns"
  | Heal -> "profile.heal_ns"
  | Csr_apply -> "profile.csr_apply_ns"
  | Csr_rebuild -> "profile.csr_rebuild_ns"
  | Bfs -> "profile.bfs_ns"

let all_phases =
  [ Collect; Strip; Merge; Image; Heal; Csr_apply; Csr_rebuild; Bfs ]

(* Handles are resolved once at module initialization; [Metrics.reset]
   clears counts without unregistering, so these never dangle. *)
let h_collect = Metrics.hdr (name_of Collect)
let h_strip = Metrics.hdr (name_of Strip)
let h_merge = Metrics.hdr (name_of Merge)
let h_image = Metrics.hdr (name_of Image)
let h_heal = Metrics.hdr (name_of Heal)
let h_csr_apply = Metrics.hdr (name_of Csr_apply)
let h_csr_rebuild = Metrics.hdr (name_of Csr_rebuild)
let h_bfs = Metrics.hdr (name_of Bfs)

let hdr_of = function
  | Collect -> h_collect
  | Strip -> h_strip
  | Merge -> h_merge
  | Image -> h_image
  | Heal -> h_heal
  | Csr_apply -> h_csr_apply
  | Csr_rebuild -> h_csr_rebuild
  | Bfs -> h_bfs

let enabled () = Metrics.is_recording ()

(* Wall clock in integer nanoseconds, clamped monotone against the last
   stamp handed out. The clamp cell is a plain int ref shared across
   domains: races are benign (word-sized reads/writes) and at worst cost
   a little cross-domain skew, which [Hdr.record]'s clamp-to-zero
   absorbs. Guaranteed nonzero so 0 can mean "started while disabled". *)
let last_ns = ref 1

let now_ns () =
  let t = int_of_float (Unix.gettimeofday () *. 1e9) in
  if t > !last_ns then begin
    last_ns := t;
    t
  end
  else !last_ns

let start () = if Metrics.is_recording () then now_ns () else 0

let stamp p t0 =
  if t0 <> 0 && Metrics.is_recording () then
    Hdr.record_sharded (hdr_of p) (now_ns () - t0)

let record_ns p ns =
  if Metrics.is_recording () then Hdr.record_sharded (hdr_of p) ns
