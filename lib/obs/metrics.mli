(** Registry of named counters and histograms for heal-path quantities
    (deletions, image edges added/removed, strip/merge invocations, haft
    sizes, representative consumptions, netsim rounds/messages/bits).

    Instrumented code records into the {!global} registry through {!incr}
    and {!observe}, which are gated on a recording flag — one
    load-and-branch when off. Tools that want isolation (tests) build
    their own registry and use the [_in] variants, which are ungated. *)

type t

val create : unit -> t

(** The process-wide registry used by the gated operations. *)
val global : t

val set_recording : bool -> unit
val is_recording : unit -> bool

(** [incr ?n name] adds [n] (default 1) to [global]'s counter [name] —
    no-op unless recording. *)
val incr : ?n:int -> string -> unit

(** [observe name x] appends a histogram sample — no-op unless recording. *)
val observe : string -> float -> unit

val incr_in : t -> ?n:int -> string -> unit
val observe_in : t -> string -> float -> unit

(** [hdr_in t name] finds or registers the sharded HDR histogram [name].
    Registration itself is ungated (it happens once, at module
    initialization of the instrumented code, which then holds the
    handle); recording into the result must be guarded by
    {!is_recording} — fg_lint R4 enforces this at emission sites.
    {!reset} clears the histogram's counts but keeps it registered, so
    held handles stay live. *)
val hdr_in : t -> string -> Hdr.sharded

(** [hdr name] is [hdr_in global name]. *)
val hdr : string -> Hdr.sharded

(** [counter t name] is the current value (0 if never incremented). *)
val counter : t -> string -> int

(** Samples in observation order. *)
val samples : t -> string -> float list

(** All counters / histogram summaries, sorted by name. Histograms with no
    samples are omitted. *)
val counters : t -> (string * int) list

val histograms : t -> (string * Fg_stats.Summary.t) list

(** All HDR histograms, shards merged at read time, sorted by name;
    empty ones are omitted. *)
val hdrs : t -> (string * Hdr.t) list

(** Zero all counters, samples and HDR counts. Registered HDR
    histograms stay registered (instrumented modules hold handles to
    them); they simply read as empty until recorded into again. *)
val reset : t -> unit
val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
