(** Registry of named counters and histograms for heal-path quantities
    (deletions, image edges added/removed, strip/merge invocations, haft
    sizes, representative consumptions, netsim rounds/messages/bits).

    Instrumented code records into the {!global} registry through {!incr}
    and {!observe}, which are gated on a recording flag — one
    load-and-branch when off. Tools that want isolation (tests) build
    their own registry and use the [_in] variants, which are ungated. *)

type t

val create : unit -> t

(** The process-wide registry used by the gated operations. *)
val global : t

val set_recording : bool -> unit
val is_recording : unit -> bool

(** [incr ?n name] adds [n] (default 1) to [global]'s counter [name] —
    no-op unless recording. *)
val incr : ?n:int -> string -> unit

(** [observe name x] appends a histogram sample — no-op unless recording. *)
val observe : string -> float -> unit

val incr_in : t -> ?n:int -> string -> unit
val observe_in : t -> string -> float -> unit

(** [counter t name] is the current value (0 if never incremented). *)
val counter : t -> string -> int

(** Samples in observation order. *)
val samples : t -> string -> float list

(** All counters / histogram summaries, sorted by name. Histograms with no
    samples are omitted. *)
val counters : t -> (string * int) list

val histograms : t -> (string * Fg_stats.Summary.t) list
val reset : t -> unit
val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
