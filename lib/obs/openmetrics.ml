(* OpenMetrics text exposition: rendering is a straight walk over the
   registry; validation is a line-oriented checker of the subset of the
   grammar we emit (plus gauges, which later PRs may add). *)

let family_name name =
  let b = Buffer.create (String.length name) in
  String.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_' || c = ':'
      in
      if not ok then Buffer.add_char b '_'
      else begin
        if i = 0 && c >= '0' && c <= '9' then Buffer.add_char b '_';
        Buffer.add_char b c
      end)
    name;
  Buffer.contents b

let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.9g" x

let render_buf buf m =
  List.iter
    (fun (name, v) ->
      let f = family_name name in
      Printf.bprintf buf "# TYPE %s counter\n" f;
      Printf.bprintf buf "%s_total %d\n" f v)
    (Metrics.counters m);
  List.iter
    (fun (name, (s : Fg_stats.Summary.t)) ->
      let f = family_name name in
      Printf.bprintf buf "# TYPE %s summary\n" f;
      Printf.bprintf buf "%s{quantile=\"0.5\"} %s\n" f (fmt_float s.p50);
      Printf.bprintf buf "%s{quantile=\"0.95\"} %s\n" f (fmt_float s.p95);
      Printf.bprintf buf "%s_sum %s\n" f
        (fmt_float (s.mean *. float_of_int s.n));
      Printf.bprintf buf "%s_count %d\n" f s.n)
    (Metrics.histograms m);
  List.iter
    (fun (name, h) ->
      let f = family_name name in
      Printf.bprintf buf "# TYPE %s histogram\n" f;
      let cum = ref 0 in
      Hdr.iter_buckets h (fun ~upper ~count ->
          cum := !cum + count;
          Printf.bprintf buf "%s_bucket{le=\"%d\"} %d\n" f upper !cum);
      Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" f (Hdr.count h);
      Printf.bprintf buf "%s_sum %d\n" f (Hdr.sum h);
      Printf.bprintf buf "%s_count %d\n" f (Hdr.count h))
    (Metrics.hdrs m);
  Buffer.add_string buf "# EOF\n"

let render m =
  let buf = Buffer.create 4096 in
  render_buf buf m;
  Buffer.contents buf

(* ---- validator ---------------------------------------------------- *)

type kind = Counter | Gauge | Summary | Histogram | Unknown

type hstate = {
  mutable last_le : float;
  mutable last_cum : float;
  mutable inf_cum : float option;
  mutable h_count : float option;
}

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let parse_value tok =
  match tok with
  | "+Inf" | "Inf" -> Some infinity
  | "-Inf" -> Some neg_infinity
  | "NaN" -> Some nan
  | _ -> float_of_string_opt tok

(* [s] is the text between the braces of a label set. *)
let parse_labels s =
  let n = String.length s in
  let rec labels acc i =
    if i >= n then Ok (List.rev acc)
    else
      let j = ref i in
      while !j < n && is_name_char s.[!j] do
        incr j
      done;
      if !j = i then Error "expected label name"
      else if !j >= n || s.[!j] <> '=' then Error "expected '=' after label name"
      else
        let key = String.sub s i (!j - i) in
        let j = !j + 1 in
        if j >= n || s.[j] <> '"' then Error "expected '\"' opening label value"
        else
          let buf = Buffer.create 16 in
          let rec value k =
            if k >= n then Error "unterminated label value"
            else
              match s.[k] with
              | '"' -> Ok (k + 1)
              | '\\' ->
                if k + 1 >= n then Error "dangling escape"
                else begin
                  (match s.[k + 1] with
                  | 'n' -> Buffer.add_char buf '\n'
                  | c -> Buffer.add_char buf c);
                  value (k + 2)
                end
              | c ->
                Buffer.add_char buf c;
                value (k + 1)
          in
          Result.bind (value (j + 1)) (fun k ->
              let acc = (key, Buffer.contents buf) :: acc in
              if k >= n then Ok (List.rev acc)
              else if s.[k] = ',' then labels acc (k + 1)
              else Error "expected ',' between labels")
  in
  labels [] 0

let strip_suffix name suf =
  if String.length name > String.length suf && String.ends_with ~suffix:suf name
  then Some (String.sub name 0 (String.length name - String.length suf))
  else None

let validate text =
  let families : (string, kind) Hashtbl.t = Hashtbl.create 32 in
  let hists : (string, hstate) Hashtbl.t = Hashtbl.create 16 in
  let err ln msg = Error (Printf.sprintf "line %d: %s" ln msg) in
  let finalize ln =
    let bad =
      Hashtbl.fold
        (fun f st acc ->
          match acc with
          | Some _ -> acc
          | None -> (
            match (st.inf_cum, st.h_count) with
            | None, _ -> Some (f ^ ": histogram has no +Inf bucket")
            | _, None -> Some (f ^ ": histogram has no _count")
            | Some i, Some c ->
              if i <> c then
                Some (Printf.sprintf "%s: +Inf bucket %g <> _count %g" f i c)
              else None))
        hists None
    in
    match bad with
    | Some msg -> err ln msg
    | None ->
      Hashtbl.reset families;
      Hashtbl.reset hists;
      Ok ()
  in
  let comment ln line =
    match String.split_on_char ' ' line with
    | [ "#"; "EOF" ] -> Result.map (fun () -> `Eof) (finalize ln)
    | "#" :: "TYPE" :: f :: rest ->
      let kind =
        match rest with
        | [ "counter" ] -> Some Counter
        | [ "gauge" ] -> Some Gauge
        | [ "summary" ] -> Some Summary
        | [ "histogram" ] -> Some Histogram
        | [ "unknown" ] -> Some Unknown
        | _ -> None
      in
      if f = "" || not (String.for_all is_name_char f) then
        err ln ("bad family name in TYPE: " ^ f)
      else if Hashtbl.mem families f then
        err ln ("duplicate TYPE for family " ^ f)
      else (
        match kind with
        | Some k ->
          Hashtbl.replace families f k;
          Ok `Line
        | None -> err ln ("bad metric type in TYPE " ^ f))
    | "#" :: "HELP" :: _ :: _ | "#" :: "UNIT" :: _ :: _ -> Ok `Line
    | _ -> err ln "unrecognized comment line (expected TYPE/HELP/UNIT/EOF)"
  in
  let resolve name =
    if Hashtbl.mem families name then Some (name, Hashtbl.find families name, "")
    else
      List.find_map
        (fun suf ->
          match strip_suffix name suf with
          | Some base when Hashtbl.mem families base ->
            Some (base, Hashtbl.find families base, suf)
          | _ -> None)
        [ "_total"; "_bucket"; "_sum"; "_count"; "_created" ]
  in
  let hstate base =
    match Hashtbl.find_opt hists base with
    | Some st -> st
    | None ->
      let st =
        { last_le = neg_infinity; last_cum = neg_infinity; inf_cum = None; h_count = None }
      in
      Hashtbl.replace hists base st;
      st
  in
  let sample ln line =
    let n = String.length line in
    let i = ref 0 in
    while !i < n && is_name_char line.[!i] do
      incr i
    done;
    if !i = 0 then err ln "expected metric name"
    else
      let name = String.sub line 0 !i in
      let labels_res =
        if !i < n && line.[!i] = '{' then begin
          match String.index_from_opt line !i '}' with
          | None -> Error "unterminated label set"
          | Some close ->
            let inner = String.sub line (!i + 1) (close - !i - 1) in
            i := close + 1;
            parse_labels inner
        end
        else Ok []
      in
      match labels_res with
      | Error m -> err ln m
      | Ok labels -> (
        let rest = String.sub line !i (n - !i) in
        let toks =
          List.filter (fun s -> s <> "") (String.split_on_char ' ' rest)
        in
        match toks with
        | [] -> err ln "missing sample value"
        | _ :: _ :: _ :: _ -> err ln "trailing tokens after value and timestamp"
        | value_tok :: _timestamp -> (
          match parse_value value_tok with
          | None -> err ln ("unparseable sample value: " ^ value_tok)
          | Some v -> (
            match resolve name with
            | None -> err ln ("sample for undeclared family: " ^ name)
            | Some (base, kind, suffix) -> (
              match (kind, suffix) with
              | Counter, ("_total" | "_created") ->
                if v < 0. then err ln (name ^ ": negative counter") else Ok `Line
              | Counter, _ ->
                err ln (name ^ ": counter samples need a _total suffix")
              | (Gauge | Unknown), "" -> Ok `Line
              | (Gauge | Unknown), _ -> err ln (name ^ ": unexpected suffix")
              | Summary, "" -> (
                match List.assoc_opt "quantile" labels with
                | None -> err ln (name ^ ": summary sample without quantile label")
                | Some q -> (
                  match float_of_string_opt q with
                  | Some qf when qf >= 0. && qf <= 1. -> Ok `Line
                  | _ -> err ln (name ^ ": quantile out of [0,1]: " ^ q)))
              | Summary, ("_sum" | "_count" | "_created") -> Ok `Line
              | Summary, _ -> err ln (name ^ ": bad suffix for summary")
              | Histogram, "_bucket" -> (
                match List.assoc_opt "le" labels with
                | None -> err ln (name ^ ": bucket without le label")
                | Some le_s -> (
                  match parse_value le_s with
                  | None -> err ln (name ^ ": unparseable le: " ^ le_s)
                  | Some le ->
                    let st = hstate base in
                    if le <= st.last_le then
                      err ln (name ^ ": le not strictly increasing")
                    else if v < st.last_cum then
                      err ln (name ^ ": cumulative bucket count decreased")
                    else begin
                      st.last_le <- le;
                      st.last_cum <- v;
                      if le = infinity then st.inf_cum <- Some v;
                      Ok `Line
                    end))
              | Histogram, "_sum" -> Ok `Line
              | Histogram, ("_count" | "_created") ->
                if suffix = "_count" then (hstate base).h_count <- Some v;
                Ok `Line
              | Histogram, _ -> err ln (name ^ ": bad suffix for histogram")))))
  in
  let lines = String.split_on_char '\n' text in
  let rec go ln last = function
    | [] ->
      if last = `Eof then Ok ()
      else Error "input does not end with # EOF"
    | [ "" ] ->
      (* trailing newline *)
      go (ln + 1) last []
    | line :: rest -> (
      let res =
        if line = "" then err ln "blank line inside exposition"
        else if line.[0] = '#' then comment ln line
        else sample ln line
      in
      match res with
      | Error _ as e -> e
      | Ok marker -> go (ln + 1) marker rest)
  in
  go 1 `Line lines
