type row = {
  name : string;
  count : int;
  total_s : float;
  mean_s : float;
  max_s : float;
  counters : (string * int) list;  (* summed, sorted by name *)
}

let parse_line line =
  match Json.of_string line with
  | Error e -> Error e
  | Ok j -> Event.of_json j

let parse_lines lines =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let line = String.trim line in
      if line = "" then go (i + 1) acc rest
      else (
        match parse_line line with
        | Ok e -> go (i + 1) (e :: acc) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" i msg))
  in
  go 1 [] lines

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        parse_lines (List.rev !lines))

let of_events events =
  let tbl = Hashtbl.create 16 in
  let get name =
    match Hashtbl.find_opt tbl name with
    | Some r -> r
    | None ->
      let r = ref (0, 0., 0., []) in
      Hashtbl.replace tbl name r;
      r
  in
  List.iter
    (function
      | Event.Span_end { name; dur; counters; _ } ->
        let r = get name in
        let count, total, mx, cs = !r in
        let cs =
          List.fold_left
            (fun cs (k, n) ->
              match List.assoc_opt k cs with
              | Some m -> (k, m + n) :: List.remove_assoc k cs
              | None -> (k, n) :: cs)
            cs counters
        in
        r := (count + 1, total +. dur, Float.max mx dur, cs)
      | Event.Span_start _ | Event.Point _ -> ())
    events;
  Hashtbl.fold
    (fun name r acc ->
      let count, total, mx, cs = !r in
      {
        name;
        count;
        total_s = total;
        mean_s = (if count = 0 then 0. else total /. float_of_int count);
        max_s = mx;
        counters = List.sort compare cs;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b ->
         let c = compare b.total_s a.total_s in
         if c <> 0 then c else compare a.name b.name)

let table_of_file path =
  match load path with Error e -> Error e | Ok events -> Ok (of_events events)

let pp_counters ppf cs =
  Format.pp_print_string ppf
    (String.concat ", " (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) cs))

let pp_table ppf rows =
  Format.fprintf ppf "%-18s %8s %12s %12s %12s  %s@." "phase" "count" "total ms"
    "mean ms" "max ms" "counters";
  Format.fprintf ppf "%s@." (String.make 90 '-');
  List.iter
    (fun r ->
      Format.fprintf ppf "%-18s %8d %12.3f %12.4f %12.4f  %a@." r.name r.count
        (1e3 *. r.total_s) (1e3 *. r.mean_s) (1e3 *. r.max_s) pp_counters
        r.counters)
    rows
