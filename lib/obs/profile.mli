(** Per-phase heal-path profiler.

    Wraps the phases of a heal ([Rt.heal]'s strip/merge, the event
    loop's collect/image, the whole delete) and of the read path
    ([Csr.apply_delta]/rebuild in the snapshot cache, BFS in the
    stretch kernel) with monotonic-clock stamps feeding per-phase
    {!Hdr} histograms registered in {!Metrics.global} under
    [profile.<phase>_ns].

    Cost discipline (PR 4's recorder gating, enforced by fg_lint R4):
    when [Metrics.is_recording ()] is false, {!start} is one branch
    returning 0 and {!stamp} is one compare — no clock read, no
    allocation. The instrumentation idiom is

    {[
      let t0 = Profile.start () in
      ... phase body ...
      Profile.stamp Profile.Strip t0
    ]}

    which costs two branches when telemetry is off. Recording uses
    {!Hdr.record_sharded}, so stamps from [Parallel] pool domains (BFS
    fan-out) are contention-free. *)

type phase =
  | Collect  (** event-loop neighbor collection before a heal *)
  | Strip  (** [Rt.heal] phase 1: strip dead fragments *)
  | Merge  (** [Rt.heal] phase 2: merge RTs around fresh vnodes *)
  | Image  (** projecting the healed RT back into the image graph *)
  | Heal  (** the whole delete event, end to end *)
  | Csr_apply  (** incremental CSR delta application on snapshot *)
  | Csr_rebuild  (** full CSR rebuild on snapshot-cache miss *)
  | Bfs  (** one BFS sweep inside the stretch kernel *)

(** Registry name of a phase's histogram ([profile.strip_ns], …). *)
val name_of : phase -> string

val all_phases : phase list

(** True iff stamps are live ([Metrics.is_recording ()]). *)
val enabled : unit -> bool

(** Monotonic timestamp in integer nanoseconds when {!enabled}, else 0.
    Never returns 0 when enabled. *)
val start : unit -> int

(** [stamp p t0] records [now - t0] into [p]'s histogram. No-op (one
    compare) when [t0 = 0], i.e. when {!start} ran disabled; also
    re-checks {!enabled} so recording cannot outlive a toggle. *)
val stamp : phase -> int -> unit

(** [record_ns p ns] records an externally measured duration — gated on
    {!enabled} like {!stamp}. *)
val record_ns : phase -> int -> unit

(** The phase's sharded histogram in {!Metrics.global} (for tests). *)
val hdr_of : phase -> Hdr.sharded
