type row = { r_hdr : Hdr.t; mutable r_total_ns : int }

type t = {
  window : float;
  rows : (string, row) Hashtbl.t;
  heal_ts : float Queue.t;
  delta_ts : float Queue.t;
  mutable now : float;
  mutable first : float; (* < 0 until the first event *)
  mutable stat : Event.attrs;
  mutable shard : Event.attrs; (* latest fg.shard point *)
  shard_hist : (float * int array) Queue.t; (* (ts, cumulative heals/shard) *)
  mutable events : int;
}

let create ?(window = 10.0) () =
  {
    window;
    rows = Hashtbl.create 16;
    heal_ts = Queue.create ();
    delta_ts = Queue.create ();
    now = 0.;
    first = -1.;
    stat = [];
    shard = [];
    shard_hist = Queue.create ();
    events = 0;
  }

let row t name =
  match Hashtbl.find_opt t.rows name with
  | Some r -> r
  | None ->
    let r = { r_hdr = Hdr.create (); r_total_ns = 0 } in
    Hashtbl.replace t.rows name r;
    r

let trim t q =
  while (not (Queue.is_empty q)) && Queue.peek q < t.now -. t.window do
    ignore (Queue.pop q)
  done

let feed t e =
  t.events <- t.events + 1;
  let ts = Event.ts e in
  if t.first < 0. then t.first <- ts;
  if ts > t.now then t.now <- ts;
  (match e with
  | Event.Span_end { name; dur; ts; _ } ->
    let r = row t name in
    let ns = int_of_float (dur *. 1e9) in
    Hdr.record r.r_hdr ns;
    r.r_total_ns <- r.r_total_ns + ns;
    (match name with
    | "fg.delete" | "fg.delete_batch" -> Queue.push ts t.heal_ts
    | _ -> ())
  | Event.Point { name = "fg.delta"; ts; _ } -> Queue.push ts t.delta_ts
  | Event.Point { name = "fg.stat"; attrs; _ } -> t.stat <- attrs
  | Event.Point { name = "fg.shard"; ts; attrs } ->
    t.shard <- attrs;
    (match List.assoc_opt "shards" attrs with
    | Some (Event.Int k) when k > 0 ->
      let heals = Array.make k 0 in
      for s = 0 to k - 1 do
        match List.assoc_opt (Printf.sprintf "s%d.heals" s) attrs with
        | Some (Event.Int h) -> heals.(s) <- h
        | _ -> ()
      done;
      Queue.push (ts, heals) t.shard_hist
    | _ -> ())
  | _ -> ());
  trim t t.heal_ts;
  trim t t.delta_ts;
  while
    (not (Queue.is_empty t.shard_hist))
    && fst (Queue.peek t.shard_hist) < t.now -. t.window
  do
    ignore (Queue.pop t.shard_hist)
  done

let events_seen t = t.events

let rate t q =
  if Queue.is_empty q then 0.
  else
    let span = t.now -. t.first in
    let span = if span > t.window then t.window else span in
    let span = if span < 1e-3 then 1e-3 else span in
    float_of_int (Queue.length q) /. span

let heal_rate t = rate t t.heal_ts
let delta_rate t = rate t t.delta_ts

(* Per-shard heal rates from the windowed cumulative counters carried by
   fg.shard points: (last - first) / elapsed, per shard. *)
let shard_heal_rates t =
  if Queue.length t.shard_hist < 2 then [||]
  else begin
    let first = Queue.peek t.shard_hist in
    let last = Queue.fold (fun _ e -> e) first t.shard_hist in
    let span = fst last -. fst first in
    let span = if span < 1e-3 then 1e-3 else span in
    let fh = snd first and lh = snd last in
    Array.init
      (min (Array.length fh) (Array.length lh))
      (fun s -> float_of_int (lh.(s) - fh.(s)) /. span)
  end

let fmt_ns ns =
  let f = float_of_int ns in
  if ns < 1_000 then Printf.sprintf "%dns" ns
  else if ns < 1_000_000 then Printf.sprintf "%.1fus" (f /. 1e3)
  else if ns < 1_000_000_000 then Printf.sprintf "%.2fms" (f /. 1e6)
  else Printf.sprintf "%.2fs" (f /. 1e9)

let fmt_value = function
  | Event.Int i -> string_of_int i
  | Event.Float x -> Printf.sprintf "%.3g" x
  | Event.Str s -> s
  | Event.Bool b -> string_of_bool b

let max_rows = 14

let render ?(ansi = false) t =
  let buf = Buffer.create 1024 in
  if ansi then Buffer.add_string buf "\027[H\027[2J";
  Printf.bprintf buf "fg top — %d events, window %.1fs (stream time)\n" t.events
    t.window;
  Printf.bprintf buf "heals/s %8.1f    deltas/s %8.1f\n\n" (heal_rate t)
    (delta_rate t);
  let rows =
    Hashtbl.fold (fun name r acc -> (name, r) :: acc) t.rows []
    |> List.sort (fun (_, a) (_, b) -> compare b.r_total_ns a.r_total_ns)
  in
  if rows <> [] then begin
    Printf.bprintf buf "%-22s %8s %9s %9s %9s %9s %9s\n" "phase" "n" "p50"
      "p90" "p99" "p99.9" "max";
    List.iteri
      (fun i (name, r) ->
        if i < max_rows then
          let h = r.r_hdr in
          Printf.bprintf buf "%-22s %8d %9s %9s %9s %9s %9s\n" name
            (Hdr.count h) (fmt_ns (Hdr.p50 h)) (fmt_ns (Hdr.p90 h))
            (fmt_ns (Hdr.p99 h))
            (fmt_ns (Hdr.p999 h))
            (fmt_ns (Hdr.max_value h)))
      rows;
    if List.length rows > max_rows then
      Printf.bprintf buf "… %d more phases\n" (List.length rows - max_rows)
  end
  else Buffer.add_string buf "(no spans yet)\n";
  if t.stat <> [] then begin
    Buffer.add_string buf "\nstat:";
    List.iter
      (fun (k, v) -> Printf.bprintf buf " %s=%s" k (fmt_value v))
      t.stat;
    Buffer.add_char buf '\n'
  end;
  (match List.assoc_opt "shards" t.shard with
  | Some (Event.Int k) when k > 0 ->
    let rates = shard_heal_rates t in
    Buffer.add_string buf "\nshards: ";
    for s = 0 to k - 1 do
      let mbox =
        match List.assoc_opt (Printf.sprintf "s%d.mbox" s) t.shard with
        | Some (Event.Int d) -> d
        | _ -> 0
      in
      let r = if s < Array.length rates then rates.(s) else 0. in
      Printf.bprintf buf "s%d %.1f/s mbox %d%s" s r mbox
        (if s < k - 1 then " | " else "")
    done;
    Buffer.add_char buf '\n'
  | _ -> ());
  Buffer.contents buf
