(** Telemetry events: the wire format shared by every sink.

    A span is two events ([Span_start]/[Span_end]) tied by [id]; nesting is
    encoded by [parent] on the start event. Attributes are typed scalars;
    counters are the per-span integer accumulators flushed at span end.
    [Point] is a free-standing instantaneous event (e.g. one network
    round). *)

type value = Int of int | Float of float | Str of string | Bool of bool

type attrs = (string * value) list

type t =
  | Span_start of {
      id : int;
      parent : int option;
      name : string;
      ts : float;
      attrs : attrs;
    }
  | Span_end of {
      id : int;
      name : string;
      ts : float;
      dur : float;
      attrs : attrs;  (** attributes added while the span was open *)
      counters : (string * int) list;  (** sorted by name *)
    }
  | Point of { name : string; ts : float; attrs : attrs }

(** One event per JSON object; [of_json (to_json e)] = [Ok e]. *)
val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result

val name : t -> string
val ts : t -> float
val pp : Format.formatter -> t -> unit
