type t = { emit : Event.t -> unit; flush : unit -> unit }

let null = { emit = ignore; flush = ignore }

let memory ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Sink.memory: capacity must be positive";
  let buf = Array.make capacity None in
  let next = ref 0 in
  let count = ref 0 in
  let emit e =
    buf.(!next) <- Some e;
    next := (!next + 1) mod capacity;
    if !count < capacity then incr count
  in
  let contents () =
    let start = if !count < capacity then 0 else !next in
    List.init !count (fun i ->
        match buf.((start + i) mod capacity) with
        | Some e -> e
        | None -> assert false)
  in
  ({ emit; flush = ignore }, contents)

let jsonl oc =
  {
    emit =
      (fun e ->
        output_string oc (Json.to_string (Event.to_json e));
        output_char oc '\n');
    flush = (fun () -> flush oc);
  }

let console ?(ppf = Format.std_formatter) () =
  let depth = ref 0 in
  let indent () = String.make (2 * !depth) ' ' in
  let emit e =
    match e with
    | Event.Span_start _ ->
      Format.fprintf ppf "%s%a@." (indent ()) Event.pp e;
      incr depth
    | Event.Span_end _ ->
      if !depth > 0 then decr depth;
      Format.fprintf ppf "%s%a@." (indent ()) Event.pp e
    | Event.Point _ -> Format.fprintf ppf "%s%a@." (indent ()) Event.pp e
  in
  { emit; flush = (fun () -> Format.pp_print_flush ppf ()) }

let tee sinks =
  {
    emit = (fun e -> List.iter (fun s -> s.emit e) sinks);
    flush = (fun () -> List.iter (fun s -> s.flush ()) sinks);
  }
