(** The tracing core: hierarchical spans with monotonic timestamps, typed
    attributes, and per-span counters, emitted to one globally installed
    {!Sink}. With no sink installed every operation is a load-and-branch —
    instrumented hot paths cost ~nothing when tracing is off.

    Single-threaded by design (like the rest of the repo): the span stack
    is global, and nesting is lexical via {!with_span}. *)

type span

(** The inert span handed to the callback when tracing is off. Attribute
    and counter operations on it are no-ops. *)
val null_span : span

(** [enabled ()] is true iff a sink is installed. *)
val enabled : unit -> bool

(** [install s] starts routing events to [s], resets span ids, and
    re-anchors the clock epoch (timestamps are seconds since install). *)
val install : Sink.t -> unit

(** Flushes and removes the current sink (no-op if none). *)
val uninstall : unit -> unit

(** [with_sink s f] = install, run [f], uninstall (exception-safe). *)
val with_sink : Sink.t -> (unit -> 'a) -> 'a

(** [with_span ?attrs name f] opens a span (child of the innermost open
    span), runs [f], and closes it — exception-safe; [attrs] travel on the
    start event. When tracing is off, [f] runs with {!null_span} and
    nothing is emitted. *)
val with_span :
  ?attrs:(string * Event.value) list -> string -> (span -> 'a) -> 'a

(** [attr sp k v] attaches an attribute, emitted on the span's end event. *)
val attr : span -> string -> Event.value -> unit

(** [count_span sp k n] adds [n] to the span's counter [k]. *)
val count_span : span -> string -> int -> unit

(** [count k n] adds [n] to the {e innermost open} span's counter [k];
    no-op when tracing is off or no span is open. *)
val count : string -> int -> unit

(** [point ?attrs name] emits an instantaneous event. *)
val point : ?attrs:(string * Event.value) list -> string -> unit

(** Timestamps. [now] is monotonic (never decreases, clamped) and relative
    to the last {!install}. [set_clock] swaps the raw time source — tests
    install a deterministic counter; [wall_clock] restores the default. *)
val now : unit -> float

val set_clock : (unit -> float) -> unit
val wall_clock : unit -> float
