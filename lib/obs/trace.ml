type span = {
  id : int;
  name : string;
  parent : int option;
  start : float;
  mutable attrs : (string * Event.value) list;  (* reversed *)
  mutable counters : (string * int ref) list;
  real : bool;
}

let null_span =
  {
    id = 0;
    name = "";
    parent = None;
    start = 0.;
    attrs = [];
    counters = [];
    real = false;
  }

(* ---- global tracer state (single-threaded, like the rest of the repo) ---- *)

let sink : Sink.t option ref = ref None
let stack : span list ref = ref []
let next_id = ref 0

(* ---- clock: monotonic, relative to [install] ---- *)

let wall_clock = Unix.gettimeofday
let clock = ref wall_clock
let epoch = ref 0.
let last = ref 0.

let set_clock f = clock := f

let now () =
  let t = !clock () -. !epoch in
  let t = if t > !last then t else !last in
  last := t;
  t

(* ---- lifecycle ---- *)

let enabled () = Option.is_some !sink

let install s =
  sink := Some s;
  stack := [];
  next_id := 0;
  epoch := !clock ();
  last := 0.

let uninstall () =
  (match !sink with Some s -> s.Sink.flush () | None -> ());
  sink := None;
  stack := []

let with_sink s f =
  install s;
  Fun.protect ~finally:uninstall f

(* ---- spans ---- *)

let attr sp k v = if sp.real then sp.attrs <- (k, v) :: sp.attrs

let count_span sp k n =
  if sp.real then
    match List.assoc_opt k sp.counters with
    | Some r -> r := !r + n
    | None -> sp.counters <- (k, ref n) :: sp.counters

let count k n =
  match !stack with [] -> () | sp :: _ -> count_span sp k n

let point ?(attrs = []) name =
  match !sink with
  | None -> ()
  | Some s -> s.Sink.emit (Event.Point { name; ts = now (); attrs })

let with_span ?(attrs = []) name f =
  match !sink with
  | None -> f null_span
  | Some s ->
    incr next_id;
    let id = !next_id in
    let parent = match !stack with [] -> None | sp :: _ -> Some sp.id in
    let start = now () in
    let sp = { id; name; parent; start; attrs = []; counters = []; real = true } in
    s.Sink.emit (Event.Span_start { id; parent; name; ts = start; attrs });
    stack := sp :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with
        | top :: rest when top == sp -> stack := rest
        | _ -> () (* unbalanced close: leave the stack alone *));
        let ts = now () in
        let counters =
          List.sort compare (List.map (fun (k, r) -> (k, !r)) sp.counters)
        in
        match !sink with
        | None -> () (* sink was uninstalled while the span was open *)
        | Some s ->
          s.Sink.emit
            (Event.Span_end
               {
                 id;
                 name;
                 ts;
                 dur = ts -. sp.start;
                 attrs = List.rev sp.attrs;
                 counters;
               }))
      (fun () -> f sp)
