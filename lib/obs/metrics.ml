type t = {
  counters : (string, int ref) Hashtbl.t;
  samples : (string, float list ref) Hashtbl.t;  (* reversed *)
}

let create () = { counters = Hashtbl.create 32; samples = Hashtbl.create 32 }
let global = create ()

let recording = ref false
let set_recording b = recording := b
let is_recording () = !recording

let incr_in t ?(n = 1) name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace t.counters name (ref n)

let observe_in t name x =
  match Hashtbl.find_opt t.samples name with
  | Some r -> r := x :: !r
  | None -> Hashtbl.replace t.samples name (ref [ x ])

let incr ?n name = if !recording then incr_in global ?n name
let observe name x = if !recording then observe_in global name x

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let samples t name =
  match Hashtbl.find_opt t.samples name with
  | Some r -> List.rev !r
  | None -> []

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort compare

let histograms t =
  Hashtbl.fold
    (fun k r acc ->
      match Fg_stats.Summary.of_floats_opt (List.rev !r) with
      | Some s -> (k, s) :: acc
      | None -> acc)
    t.samples []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.samples

let pp ppf t =
  let cs = counters t and hs = histograms t in
  if cs <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter (fun (k, n) -> Format.fprintf ppf "  %-28s %d@." k n) cs
  end;
  if hs <> [] then begin
    Format.fprintf ppf "histograms:@.";
    List.iter
      (fun (k, s) -> Format.fprintf ppf "  %-28s %a@." k Fg_stats.Summary.pp s)
      hs
  end;
  if cs = [] && hs = [] then Format.fprintf ppf "(no metrics recorded)@."

let to_json t =
  let summary_json (s : Fg_stats.Summary.t) =
    Json.Obj
      [
        ("n", Json.Int s.Fg_stats.Summary.n);
        ("mean", Json.Float s.Fg_stats.Summary.mean);
        ("min", Json.Float s.Fg_stats.Summary.min);
        ("p50", Json.Float s.Fg_stats.Summary.p50);
        ("p95", Json.Float s.Fg_stats.Summary.p95);
        ("max", Json.Float s.Fg_stats.Summary.max);
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) (counters t)));
      ("histograms", Json.Obj (List.map (fun (k, s) -> (k, summary_json s)) (histograms t)));
    ]
