type t = {
  counters : (string, int ref) Hashtbl.t;
  samples : (string, float list ref) Hashtbl.t;  (* reversed *)
  hdrs : (string, Hdr.sharded) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    samples = Hashtbl.create 32;
    hdrs = Hashtbl.create 32;
  }
let global = create ()

let recording = ref false
let set_recording b = recording := b
let is_recording () = !recording

let incr_in t ?(n = 1) name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace t.counters name (ref n)

let observe_in t name x =
  match Hashtbl.find_opt t.samples name with
  | Some r -> r := x :: !r
  | None -> Hashtbl.replace t.samples name (ref [ x ])

let incr ?n name = if !recording then incr_in global ?n name
let observe name x = if !recording then observe_in global name x

(* Registration (find-or-create) is ungated: instrumented modules hold
   the returned sharded histogram in a module-level binding and gate the
   [Hdr.record_sharded] calls themselves. [reset] clears counts but
   keeps registrations alive, so those bindings never dangle. *)
let hdr_in t name =
  match Hashtbl.find_opt t.hdrs name with
  | Some s -> s
  | None ->
    let s = Hdr.create_sharded () in
    Hashtbl.replace t.hdrs name s;
    s

let hdr name = hdr_in global name

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let samples t name =
  match Hashtbl.find_opt t.samples name with
  | Some r -> List.rev !r
  | None -> []

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort compare

let histograms t =
  Hashtbl.fold
    (fun k r acc ->
      match Fg_stats.Summary.of_floats_opt (List.rev !r) with
      | Some s -> (k, s) :: acc
      | None -> acc)
    t.samples []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Merged at read time; empty histograms (registered but never recorded,
   or cleared by [reset]) are omitted like sample-less summaries. *)
let hdrs t =
  Hashtbl.fold
    (fun k s acc ->
      let h = Hdr.merged s in
      if Hdr.is_empty h then acc else (k, h) :: acc)
    t.hdrs []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.samples;
  Hashtbl.iter (fun _ s -> Hdr.clear_sharded s) t.hdrs

let pp ppf t =
  let cs = counters t and hs = histograms t and ls = hdrs t in
  if cs <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter (fun (k, n) -> Format.fprintf ppf "  %-28s %d@." k n) cs
  end;
  if hs <> [] then begin
    Format.fprintf ppf "histograms:@.";
    List.iter
      (fun (k, s) -> Format.fprintf ppf "  %-28s %a@." k Fg_stats.Summary.pp s)
      hs
  end;
  if ls <> [] then begin
    Format.fprintf ppf "latency (hdr, ns):@.";
    List.iter
      (fun (k, h) ->
        Format.fprintf ppf
          "  %-28s n=%-7d p50=%-9d p90=%-9d p99=%-9d p99.9=%-9d max=%d@." k
          (Hdr.count h) (Hdr.p50 h) (Hdr.p90 h) (Hdr.p99 h) (Hdr.p999 h)
          (Hdr.max_value h))
      ls
  end;
  if cs = [] && hs = [] && ls = [] then
    Format.fprintf ppf "(no metrics recorded)@."

let to_json t =
  let summary_json (s : Fg_stats.Summary.t) =
    Json.Obj
      [
        ("n", Json.Int s.Fg_stats.Summary.n);
        ("mean", Json.Float s.Fg_stats.Summary.mean);
        ("min", Json.Float s.Fg_stats.Summary.min);
        ("p50", Json.Float s.Fg_stats.Summary.p50);
        ("p95", Json.Float s.Fg_stats.Summary.p95);
        ("max", Json.Float s.Fg_stats.Summary.max);
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) (counters t)));
      ("histograms", Json.Obj (List.map (fun (k, s) -> (k, summary_json s)) (histograms t)));
      ("hdr", Json.Obj (List.map (fun (k, h) -> (k, Hdr.to_json h)) (hdrs t)));
    ]
