type value = Int of int | Float of float | Str of string | Bool of bool

type attrs = (string * value) list

type t =
  | Span_start of {
      id : int;
      parent : int option;
      name : string;
      ts : float;
      attrs : attrs;
    }
  | Span_end of {
      id : int;
      name : string;
      ts : float;
      dur : float;
      attrs : attrs;
      counters : (string * int) list;
    }
  | Point of { name : string; ts : float; attrs : attrs }

let value_to_json = function
  | Int i -> Json.Int i
  | Float x -> Json.Float x
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let value_of_json = function
  | Json.Int i -> Some (Int i)
  | Json.Float x -> Some (Float x)
  | Json.Str s -> Some (Str s)
  | Json.Bool b -> Some (Bool b)
  | _ -> None

let attrs_to_json attrs =
  Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) attrs)

let to_json = function
  | Span_start { id; parent; name; ts; attrs } ->
    let base =
      [ ("ev", Json.Str "start"); ("id", Json.Int id); ("name", Json.Str name);
        ("ts", Json.Float ts) ]
    in
    let parent =
      match parent with None -> [] | Some p -> [ ("parent", Json.Int p) ]
    in
    let attrs = if attrs = [] then [] else [ ("attrs", attrs_to_json attrs) ] in
    Json.Obj (base @ parent @ attrs)
  | Span_end { id; name; ts; dur; attrs; counters } ->
    let base =
      [ ("ev", Json.Str "end"); ("id", Json.Int id); ("name", Json.Str name);
        ("ts", Json.Float ts); ("dur", Json.Float dur) ]
    in
    let attrs = if attrs = [] then [] else [ ("attrs", attrs_to_json attrs) ] in
    let counters =
      if counters = [] then []
      else [ ("counters", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) counters)) ]
    in
    Json.Obj (base @ attrs @ counters)
  | Point { name; ts; attrs } ->
    let base = [ ("ev", Json.Str "point"); ("name", Json.Str name); ("ts", Json.Float ts) ] in
    let attrs = if attrs = [] then [] else [ ("attrs", attrs_to_json attrs) ] in
    Json.Obj (base @ attrs)

let attrs_of_json j =
  match Json.member "attrs" j with
  | None -> Ok []
  | Some (Json.Obj kvs) ->
    let conv (k, v) =
      match value_of_json v with
      | Some v -> Ok (k, v)
      | None -> Error (Printf.sprintf "attr %S is not a scalar" k)
    in
    List.fold_right
      (fun kv acc ->
        match (conv kv, acc) with
        | Ok x, Ok xs -> Ok (x :: xs)
        | (Error _ as e), _ -> e
        | _, (Error _ as e) -> e)
      kvs (Ok [])
  | Some _ -> Error "attrs is not an object"

let of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let int k = Option.bind (Json.member k j) Json.to_int in
  let float k = Option.bind (Json.member k j) Json.to_float in
  let require name = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or malformed %S" name)
  in
  let ( let* ) r f = Result.bind r f in
  let* ev = require "ev" (str "ev") in
  match ev with
  | "start" ->
    let* id = require "id" (int "id") in
    let* name = require "name" (str "name") in
    let* ts = require "ts" (float "ts") in
    let* attrs = attrs_of_json j in
    Ok (Span_start { id; parent = int "parent"; name; ts; attrs })
  | "end" ->
    let* id = require "id" (int "id") in
    let* name = require "name" (str "name") in
    let* ts = require "ts" (float "ts") in
    let* dur = require "dur" (float "dur") in
    let* attrs = attrs_of_json j in
    let* counters =
      match Json.member "counters" j with
      | None -> Ok []
      | Some (Json.Obj kvs) ->
        List.fold_right
          (fun (k, v) acc ->
            match (Json.to_int v, acc) with
            | Some n, Ok xs -> Ok ((k, n) :: xs)
            | None, _ -> Error (Printf.sprintf "counter %S is not an int" k)
            | _, (Error _ as e) -> e)
          kvs (Ok [])
      | Some _ -> Error "counters is not an object"
    in
    Ok (Span_end { id; name; ts; dur; attrs; counters })
  | "point" ->
    let* name = require "name" (str "name") in
    let* ts = require "ts" (float "ts") in
    let* attrs = attrs_of_json j in
    Ok (Point { name; ts; attrs })
  | other -> Error (Printf.sprintf "unknown event kind %S" other)

let name = function
  | Span_start { name; _ } | Span_end { name; _ } | Point { name; _ } -> name

let ts = function
  | Span_start { ts; _ } | Span_end { ts; _ } | Point { ts; _ } -> ts

let pp_value ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Float x -> Format.fprintf ppf "%.6g" x
  | Str s -> Format.pp_print_string ppf s
  | Bool b -> Format.pp_print_bool ppf b

let pp_attrs ppf attrs =
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_value v) attrs

let pp ppf = function
  | Span_start { id; name; ts; attrs; _ } ->
    Format.fprintf ppf "start #%d %s @%.6f%a" id name ts pp_attrs attrs
  | Span_end { id; name; dur; attrs; counters; _ } ->
    Format.fprintf ppf "end   #%d %s dur=%.6f%a" id name dur pp_attrs attrs;
    List.iter (fun (k, n) -> Format.fprintf ppf " %s=%d" k n) counters
  | Point { name; ts; attrs } ->
    Format.fprintf ppf "point %s @%.6f%a" name ts pp_attrs attrs
