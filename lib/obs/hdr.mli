(** Log-linear fixed-bucket HDR histogram for latency telemetry.

    Values are non-negative integers (nanoseconds, message counts, …).
    Buckets are exact below 32 and log-linear above: each power-of-two
    octave is split into 32 sub-buckets, so recorded values are resolved
    to within a relative error of 1/32 (~3%) across the full 62-bit
    range. The bucket table is a flat [int array] of 1888 slots —
    {!record} is a handful of integer ops and two array writes, with no
    allocation, so it is safe on the heal path behind the usual
    [Metrics.is_recording] guard (fg_lint rule R4 covers emission
    sites).

    Quantiles are extracted by exact cumulative count: [quantile h q]
    walks the bucket table to the bucket containing the rank-[ceil
    (q*n)] sample and reports that bucket's inclusive upper bound
    ({!upper_of}), except in the bucket holding the maximum where the
    exact maximum is reported. Histograms {!merge_into} losslessly
    (bucket-wise sums), which is what makes per-domain sharding work:
    {!sharded} keeps one histogram per domain slot so the [Parallel]
    pool records contention-free, and {!merged} folds the shards into
    one histogram at read time. *)

type t

val create : unit -> t

(** [record h v] adds one sample. Negative [v] is clamped to 0.
    Allocation-free. Not thread-safe — use {!sharded} across domains. *)
val record : t -> int -> unit

val count : t -> int
val sum : t -> int

(** 0 when empty. *)
val min_value : t -> int

val max_value : t -> int
val mean : t -> float

(** [quantile h q] for [q] in [0,1]: the inclusive upper bound of the
    bucket containing the sample of rank [max 1 (ceil (q * count))] —
    exactly [max_value h] when that bucket is the maximum's bucket, and
    [min_value h] when [q <= 0]. Returns 0 on an empty histogram. *)
val quantile : t -> float -> int

val p50 : t -> int
val p90 : t -> int
val p99 : t -> int
val p999 : t -> int

(** [upper_of v] is the inclusive upper bound of the bucket [v] falls
    in — the value {!quantile} reports for any rank resolving to that
    bucket (modulo the max-bucket exactness rule). Exposed so tests can
    state oracle equalities exactly. *)
val upper_of : int -> int

(** [merge_into ~src ~into] adds all of [src]'s samples to [into].
    Bucket-wise, lossless: merging is associative and commutative. *)
val merge_into : src:t -> into:t -> unit

val copy : t -> t

(** Reset all counts; keeps the bucket array. *)
val clear : t -> unit

val is_empty : t -> bool
val equal : t -> t -> bool

(** [iter_buckets h f] calls [f ~upper ~count] for each non-empty
    bucket in increasing value order (counts are per-bucket, not
    cumulative). *)
val iter_buckets : t -> (upper:int -> count:int -> unit) -> unit

(** Sparse JSON snapshot (["total"], ["sum"], ["min"], ["max"],
    ["buckets"] as [[index; count]] pairs). Round-trips through
    {!of_json}; small enough to embed in a trace event attribute. *)
val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result

(** {1 Per-domain sharding}

    A [sharded] histogram holds one lazily-created {!t} per domain
    slot; {!record_sharded} indexes by [Domain.self () land (slots-1)]
    so concurrent recorders from the [Parallel] pool never contend on
    the same counts. Slot count is a power of two sized from
    [Domain.recommended_domain_count] (clamped to [8, 64]); if more
    domains than slots ever record, two domains may share a slot —
    counts are then approximate under races but never crash, which is
    the right trade for telemetry. *)

type sharded

val create_sharded : ?slots:int -> unit -> sharded

(** Allocation-free after the calling domain's slot exists (first call
    from a domain allocates its shard). *)
val record_sharded : sharded -> int -> unit

(** Fold all shards into a fresh histogram. *)
val merged : sharded -> t

val clear_sharded : sharded -> unit
