(** Replay a JSONL trace into a per-phase cost table: one row per span
    name, aggregating count, durations, and summed counters. Drives the
    [fg trace] CLI report and the round-trip tests. *)

type row = {
  name : string;
  count : int;
  total_s : float;
  mean_s : float;
  max_s : float;
  counters : (string * int) list;  (** summed over spans, sorted by name *)
}

(** Parse one JSONL line. *)
val parse_line : string -> (Event.t, string) result

(** Parse many lines (blank lines skipped); errors carry line numbers. *)
val parse_lines : string list -> (Event.t list, string) result

(** Read and parse a JSONL file. *)
val load : string -> (Event.t list, string) result

(** Aggregate span-end events into rows, largest total time first. *)
val of_events : Event.t list -> row list

val table_of_file : string -> (row list, string) result
val pp_table : Format.formatter -> row list -> unit
