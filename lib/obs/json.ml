type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.12g" x

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x ->
    if Float.is_nan x || Float.is_integer (x /. 0.) then Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr x)
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

(* ---- parsing (recursive descent, exceptions internal) ---- *)

exception Parse_error of string

type cursor = { s : string; mutable i : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.i))
let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while
    c.i < String.length c.s
    && match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.i <- c.i + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word v =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    v
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if c.i >= String.length c.s then fail c "unterminated string";
    match c.s.[c.i] with
    | '"' -> c.i <- c.i + 1
    | '\\' ->
      c.i <- c.i + 1;
      (if c.i >= String.length c.s then fail c "unterminated escape";
       match c.s.[c.i] with
       | '"' -> Buffer.add_char buf '"'; c.i <- c.i + 1
       | '\\' -> Buffer.add_char buf '\\'; c.i <- c.i + 1
       | '/' -> Buffer.add_char buf '/'; c.i <- c.i + 1
       | 'n' -> Buffer.add_char buf '\n'; c.i <- c.i + 1
       | 'r' -> Buffer.add_char buf '\r'; c.i <- c.i + 1
       | 't' -> Buffer.add_char buf '\t'; c.i <- c.i + 1
       | 'b' -> Buffer.add_char buf '\b'; c.i <- c.i + 1
       | 'f' -> Buffer.add_char buf '\012'; c.i <- c.i + 1
       | 'u' ->
         if c.i + 4 >= String.length c.s then fail c "bad \\u escape";
         let hex = String.sub c.s (c.i + 1) 4 in
         let code =
           try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape"
         in
         (* ASCII only; anything else degrades to '?' (we never emit it) *)
         Buffer.add_char buf (if code < 0x80 then Char.chr code else '?');
         c.i <- c.i + 5
       | _ -> fail c "unknown escape");
      go ()
    | ch ->
      Buffer.add_char buf ch;
      c.i <- c.i + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.i in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.i < String.length c.s && is_num_char c.s.[c.i] do
    c.i <- c.i + 1
  done;
  let tok = String.sub c.s start (c.i - start) in
  if tok = "" then fail c "expected number";
  let is_float =
    String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') tok
  in
  if is_float then
    match float_of_string_opt tok with
    | Some x -> Float x
    | None -> fail c "malformed number"
  else
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some x -> Float x
      | None -> fail c "malformed number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    c.i <- c.i + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.i <- c.i + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.i <- c.i + 1;
          members ((k, v) :: acc)
        | Some '}' ->
          c.i <- c.i + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some '[' ->
    c.i <- c.i + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.i <- c.i + 1;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.i <- c.i + 1;
          elements (v :: acc)
        | Some ']' ->
          c.i <- c.i + 1;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      List (elements [])
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { s; i = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.i <> String.length s then Error "trailing characters"
    else Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors ---- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_int = function Int i -> Some i | Float x -> Some (int_of_float x) | _ -> None

let to_float = function Float x -> Some x | Int i -> Some (float_of_int i) | _ -> None

let to_str = function Str s -> Some s | _ -> None
