(** Aggregation and rendering behind the [fg top] live dashboard.

    A {!t} consumes the telemetry event stream (the same JSONL events
    the sinks carry — typically tailed from a [--trace] file while an
    [attack]/[simulate] run is writing it) and maintains:

    - per-span-name {!Hdr} histograms of durations, for the
      phase-latency quantile table;
    - sliding-window timestamps of heal events ([fg.delete] /
      [fg.delete_batch] span ends) and delta points ([fg.delta]), for
      heals/sec and deltas/sec;
    - the latest [fg.stat] point's attributes (degree bound, stretch
      sample, GC counters), published by [fg_cli attack
      --metrics-every].

    Rates are computed over a trailing window of stream time (event
    timestamps, not wall time), so replaying a finished trace shows the
    rates the run actually had. {!render} produces one full frame; with
    [~ansi:true] it is prefixed with a home-and-clear escape so
    repeated frames redraw in place — plain output is used by tests and
    [--plain]. *)

type t

val create : ?window:float -> unit -> t

val feed : t -> Event.t -> unit

(** Events consumed so far. *)
val events_seen : t -> int

(** Heals (resp. deltas) per second over the trailing window. *)
val heal_rate : t -> float

val delta_rate : t -> float

(** Per-shard heals/sec over the trailing window, from the cumulative
    counters carried by [fg.shard] points (sharded engine rounds).
    Empty until two such points are in the window. *)
val shard_heal_rates : t -> float array

val render : ?ansi:bool -> t -> string
