(** Pluggable event consumers for {!Trace}. A sink is just a pair of
    callbacks, so tests and tools can build ad-hoc ones. *)

type t = { emit : Event.t -> unit; flush : unit -> unit }

(** Discards everything. *)
val null : t

(** [memory ~capacity ()] is an in-memory ring buffer keeping the most
    recent [capacity] events (default 4096). The second component returns
    the buffered events, oldest first. *)
val memory : ?capacity:int -> unit -> t * (unit -> Event.t list)

(** One compact JSON object per line on the given channel. The channel is
    not closed by the sink; [flush] flushes it. *)
val jsonl : out_channel -> t

(** Human-readable, nesting-indented rendering (default: stdout). *)
val console : ?ppf:Format.formatter -> unit -> t

(** Broadcast to several sinks in order. *)
val tee : t list -> t
