(* Log-linear HDR histogram. Layout: values below [sub_count] (= 32)
   index their own bucket exactly; a value with most-significant bit m
   (m >= 5) lands in octave [o = m - 4], sub-bucket
   [(v lsr (m - 5)) - 32], i.e. index [o*32 + sub]. Bucket widths double
   each octave, so the relative resolution is a constant 1/32. With
   octaves up to msb 62 the table is 1888 ints — small enough to keep
   one per phase per domain slot. *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits
let num_buckets = (62 - sub_bits + 2) * sub_count

type t = {
  counts : int array;
  mutable total : int;
  mutable sum : int;
  mutable vmin : int; (* max_int when empty *)
  mutable vmax : int;
}

let create () =
  { counts = Array.make num_buckets 0; total = 0; sum = 0; vmin = max_int; vmax = 0 }

(* Most-significant-bit index of [v > 0], by branchy shift accumulation:
   straight-line integer lets only, no refs or tuples (alloc-free). *)
let msb v =
  let k5 = if v lsr 32 <> 0 then 32 else 0 in
  let v = v lsr k5 in
  let k4 = if v lsr 16 <> 0 then 16 else 0 in
  let v = v lsr k4 in
  let k3 = if v lsr 8 <> 0 then 8 else 0 in
  let v = v lsr k3 in
  let k2 = if v lsr 4 <> 0 then 4 else 0 in
  let v = v lsr k2 in
  let k1 = if v lsr 2 <> 0 then 2 else 0 in
  let v = v lsr k1 in
  k5 + k4 + k3 + k2 + k1 + (v lsr 1)

let bucket_of v =
  if v < sub_count then v
  else
    let m = msb v in
    let o = m - sub_bits + 1 in
    (o lsl sub_bits) + (v lsr (m - sub_bits)) - sub_count

let upper_of_bucket b =
  if b < sub_count then b
  else
    let o = b lsr sub_bits in
    let sub = b land (sub_count - 1) in
    ((sub_count + sub + 1) lsl (o - 1)) - 1

let upper_of v = upper_of_bucket (bucket_of (if v < 0 then 0 else v))

let record h v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of v in
  h.counts.(b) <- h.counts.(b) + 1;
  h.total <- h.total + 1;
  h.sum <- h.sum + v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v

let count h = h.total
let sum h = h.sum
let min_value h = if h.total = 0 then 0 else h.vmin
let max_value h = h.vmax
let mean h = if h.total = 0 then 0. else float_of_int h.sum /. float_of_int h.total
let is_empty h = h.total = 0

let quantile h q =
  if h.total = 0 then 0
  else if q <= 0. then min_value h
  else begin
    let q = if q > 1. then 1. else q in
    let rank = int_of_float (ceil (q *. float_of_int h.total)) in
    let rank = if rank < 1 then 1 else rank in
    let b = ref 0 in
    let cum = ref 0 in
    while !cum < rank do
      cum := !cum + h.counts.(!b);
      incr b
    done;
    let b = !b - 1 in
    (* the top occupied bucket reports the exact maximum *)
    if b = bucket_of h.vmax then h.vmax else upper_of_bucket b
  end

let p50 h = quantile h 0.5
let p90 h = quantile h 0.9
let p99 h = quantile h 0.99
let p999 h = quantile h 0.999

let merge_into ~src ~into =
  for b = 0 to num_buckets - 1 do
    let c = src.counts.(b) in
    if c <> 0 then into.counts.(b) <- into.counts.(b) + c
  done;
  into.total <- into.total + src.total;
  into.sum <- into.sum + src.sum;
  if src.total > 0 then begin
    if src.vmin < into.vmin then into.vmin <- src.vmin;
    if src.vmax > into.vmax then into.vmax <- src.vmax
  end

let copy h = { h with counts = Array.copy h.counts }

let clear h =
  Array.fill h.counts 0 num_buckets 0;
  h.total <- 0;
  h.sum <- 0;
  h.vmin <- max_int;
  h.vmax <- 0

let equal a b =
  a.total = b.total && a.sum = b.sum
  && (a.total = 0 || (a.vmin = b.vmin && a.vmax = b.vmax))
  && a.counts = b.counts

let iter_buckets h f =
  for b = 0 to num_buckets - 1 do
    let c = h.counts.(b) in
    if c <> 0 then f ~upper:(upper_of_bucket b) ~count:c
  done

let to_json h =
  let buckets = ref [] in
  for b = num_buckets - 1 downto 0 do
    let c = h.counts.(b) in
    if c <> 0 then buckets := Json.List [ Json.Int b; Json.Int c ] :: !buckets
  done;
  Json.Obj
    [
      ("total", Json.Int h.total);
      ("sum", Json.Int h.sum);
      ("min", Json.Int (min_value h));
      ("max", Json.Int h.vmax);
      ("buckets", Json.List !buckets);
    ]

let of_json j =
  let field k coerce =
    match Option.bind (Json.member k j) coerce with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "hdr: missing or ill-typed %S" k)
  in
  let ( let* ) = Result.bind in
  let* total = field "total" Json.to_int in
  let* sum = field "sum" Json.to_int in
  let* vmin = field "min" Json.to_int in
  let* vmax = field "max" Json.to_int in
  let* buckets =
    match Json.member "buckets" j with
    | Some (Json.List l) -> Ok l
    | _ -> Error "hdr: missing \"buckets\" list"
  in
  let h = create () in
  let* () =
    List.fold_left
      (fun acc entry ->
        let* () = acc in
        match entry with
        | Json.List [ Json.Int b; Json.Int c ] when b >= 0 && b < num_buckets && c >= 0
          ->
          h.counts.(b) <- h.counts.(b) + c;
          Ok ()
        | _ -> Error "hdr: malformed bucket entry")
      (Ok ()) buckets
  in
  let counted = Array.fold_left ( + ) 0 h.counts in
  if counted <> total then Error "hdr: bucket counts disagree with total"
  else begin
    h.total <- total;
    h.sum <- sum;
    h.vmin <- (if total = 0 then max_int else vmin);
    h.vmax <- vmax;
    Ok h
  end

(* -- per-domain sharding ------------------------------------------- *)

type sharded = { shards : t option array }

let next_pow2 n =
  let r = ref 1 in
  while !r < n do
    r := !r * 2
  done;
  !r

let default_slots () =
  let n = next_pow2 (Domain.recommended_domain_count ()) in
  if n < 8 then 8 else if n > 64 then 64 else n

let create_sharded ?slots () =
  let slots =
    match slots with Some s -> next_pow2 (max 1 s) | None -> default_slots ()
  in
  { shards = Array.make slots None }

let record_sharded s v =
  let i = (Domain.self () :> int) land (Array.length s.shards - 1) in
  match Array.unsafe_get s.shards i with
  | Some h -> record h v
  | None ->
    let h = create () in
    s.shards.(i) <- Some h;
    record h v

let merged s =
  let into = create () in
  Array.iter
    (function Some src -> merge_into ~src ~into | None -> ())
    s.shards;
  into

let clear_sharded s =
  Array.iter (function Some h -> clear h | None -> ()) s.shards
