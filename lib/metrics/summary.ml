(* Re-export: Summary moved to the dependency-free [fg_stats] library so
   that [fg_obs] can summarise histograms without depending on this
   library (which now depends on [fg_obs] for kernel instrumentation).
   [Fg_metrics.Summary] remains the public name used by tables and CLIs. *)
include Fg_stats.Summary
