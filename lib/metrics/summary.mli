(** Alias of {!Fg_stats.Summary} (kept here so metric consumers keep
    writing [Fg_metrics.Summary]); the implementation lives in [fg_stats]
    to keep the [fg_obs] -> summaries edge free of cycles. *)

include module type of struct
  include Fg_stats.Summary
end
