module Node_id = Fg_graph.Node_id
module Bfs = Fg_graph.Bfs
module Csr = Fg_graph.Csr
module Bfs_kernel = Fg_graph.Bfs_kernel
module Interval_map = Fg_graph.Interval_map
module Parallel = Fg_graph.Parallel

type report = {
  max_stretch : float;
  witness : (Node_id.t * Node_id.t) option;
  mean_stretch : float;
  pairs : int;
  disconnected : int;
}

(* ---- CSR fast path ----

   One snapshot per (graph, reference) pair, then batched multi-source
   BFS sweeps ({!Bfs_kernel.ms_run}): up to [Bfs_kernel.word_bits]
   sources share each pass over the off-heap rows, so the row data is
   streamed once per level per batch instead of once per source. Batch
   boundaries depend only on the source list; each source produces an
   independent [partial] and partials are merged strictly in source
   order, so the report is byte-identical for every domain count. *)

type snapshot = {
  g : Csr.t;
  r : Csr.t;
  r_comp : int Interval_map.t; (* reference component labels, run-length
                                  compressed, for the no-BFS fallback *)
  build_ms : float;
}

type partial = {
  p_max : float;
  p_wit : (Node_id.t * Node_id.t) option;
  p_sum : float;
  p_pairs : int;
  p_disc : int;
  p_runs : int; (* BFS kernel invocations charged to this source *)
}

let zero_partial =
  { p_max = 0.; p_wit = None; p_sum = 0.; p_pairs = 0; p_disc = 0; p_runs = 0 }

let snapshot ?graph_csr ?reference_csr ~graph ~reference () =
  let t0 = Fg_obs.Trace.wall_clock () in
  let g = match graph_csr with Some c -> c | None -> Csr.of_adjacency graph in
  let r =
    match reference_csr with Some c -> c | None -> Csr.of_adjacency reference
  in
  let r_comp, _ = Csr.component_map r in
  let build_ms = (Fg_obs.Trace.wall_clock () -. t0) *. 1000. in
  { g; r; r_comp; build_ms }

let dense_of snap t_id =
  let t_g =
    Array.map (fun v -> match Csr.index snap.g v with Some i -> i | None -> -1) t_id
  in
  let t_r =
    Array.map (fun v -> match Csr.index snap.r v with Some i -> i | None -> -1) t_id
  in
  (t_g, t_r)

(* Semantics of the original hashtable path, per target y:
   - y reachable from x in both graphs (and y <> x): a measured pair;
   - y reachable in reference only: a disconnected pair;
   - otherwise: ignored. *)

(* Per-source classification: dense indices in both snapshots and the
   graph-side degree. A source runs BFS iff it exists in the reference
   (otherwise nothing can be counted) and has a live neighbor in the
   graph (otherwise its broken pairs are read off component labels). *)
let classify snap sources =
  let n = Array.length sources in
  let src_g = Array.make (max 1 n) (-1) in
  let src_r = Array.make (max 1 n) (-1) in
  let g_deg = Array.make (max 1 n) 0 in
  for i = 0 to n - 1 do
    (match Csr.index snap.g sources.(i) with
    | Some gi ->
      src_g.(i) <- gi;
      g_deg.(i) <- Csr.degree snap.g gi
    | None -> ());
    match Csr.index snap.r sources.(i) with
    | Some ri -> src_r.(i) <- ri
    | None -> ()
  done;
  (src_g, src_r, g_deg)

let[@inline] needs_bfs src_r g_deg i = src_r.(i) >= 0 && g_deg.(i) > 0

(* Contiguous batches, each holding at most [word_bits] BFS-needing
   sources (fallback-only sources ride along for free). Boundaries are a
   pure function of the source list — never of [?domains] — so the
   partial stream, and hence the report, is stable across domain
   counts. *)
let make_batches src_r g_deg n =
  let cuts = ref [] and lo = ref 0 and k = ref 0 in
  for i = 0 to n - 1 do
    if needs_bfs src_r g_deg i then begin
      if !k = Bfs_kernel.word_bits then begin
        cuts := (!lo, i) :: !cuts;
        lo := i;
        k := 0
      end;
      incr k
    end
  done;
  if !lo < n then cuts := (!lo, n) :: !cuts;
  Array.of_list (List.rev !cuts)

(* no-BFS fallback: source disconnected in [graph], so every
   reference-connected target is a broken pair *)
let eval_disconnected snap ~t_r ~from ~ntargets xr =
  let cx = Interval_map.get snap.r_comp xr in
  let disc = ref 0 in
  for j = from to ntargets - 1 do
    let tr = t_r.(j) in
    if tr >= 0 && tr <> xr && Interval_map.get snap.r_comp tr = cx then
      incr disc
  done;
  { zero_partial with p_disc = !disc }

(* Per-worker batch state: the two sweep scratches, the slot -> dense
   source buffers, and per-slot accumulators for the target scan. *)
type batch_scratch = {
  msg : Bfs_kernel.ms; (* graph-side sweep *)
  msr : Bfs_kernel.ms; (* reference-side sweep *)
  bufg : int array; (* slot -> graph dense source *)
  bufr : int array; (* slot -> reference dense source *)
  fromv : int array; (* slot -> first target index ([from_of]) *)
  ssum : float array;
  smax : float array;
  switj : int array; (* witness target index, -1 = none *)
  spairs : int array;
  sdisc : int array;
}

let batch_scratch () =
  let w = Bfs_kernel.word_bits in
  {
    msg = Bfs_kernel.ms_create ();
    msr = Bfs_kernel.ms_create ();
    bufg = Array.make w 0;
    bufr = Array.make w 0;
    fromv = Array.make w 0;
    ssum = Array.make w 0.;
    smax = Array.make w 0.;
    switj = Array.make w (-1);
    spairs = Array.make w 0;
    sdisc = Array.make w 0;
  }

(* One batch: two ms-BFS sweeps (graph + reference), then one scan over
   the targets with the slot loop innermost. Target-major order makes
   the distance reads sequential (the matrices are node-major) and lets
   one {!Bfs_kernel.ms_reached} word answer "which sources reached this
   target" for the whole batch. Per slot the targets still arrive in
   ascending [j], so each source's float sum and witness are exactly
   those of the per-source loop — the reports stay byte-identical.
   Runs on [Parallel] pool domains; the sharded histograms behind
   [Profile.stamp] make the stamps contention-free. *)
let eval_batch snap sc ~sources ~src_g ~src_r ~g_deg ~t_id ~t_g ~t_r
    ~from_of ~lo ~hi =
  let len = ref 0 in
  for i = lo to hi - 1 do
    if needs_bfs src_r g_deg i then begin
      sc.bufg.(!len) <- src_g.(i);
      sc.bufr.(!len) <- src_r.(i);
      sc.fromv.(!len) <- from_of i;
      incr len
    end
  done;
  let len = !len in
  let ntargets = Array.length t_id in
  if len > 0 then begin
    let t_bfs_g = Fg_obs.Profile.start () in
    Bfs_kernel.ms_run snap.g sc.msg ~sources:sc.bufg ~off:0 ~len;
    Fg_obs.Profile.stamp Fg_obs.Profile.Bfs t_bfs_g;
    let t_bfs_r = Fg_obs.Profile.start () in
    Bfs_kernel.ms_run snap.r sc.msr ~sources:sc.bufr ~off:0 ~len;
    Fg_obs.Profile.stamp Fg_obs.Profile.Bfs t_bfs_r;
    Array.fill sc.ssum 0 len 0.;
    Array.fill sc.smax 0 len 0.;
    Array.fill sc.switj 0 len (-1);
    Array.fill sc.spairs 0 len 0;
    Array.fill sc.sdisc 0 len 0;
    let msg = sc.msg and msr = sc.msr and fromv = sc.fromv in
    (* [fromv] ascends in slot order (batch sources ascend and [from_of]
       is monotone), so "slots whose target range has started" is a
       prefix mask that only grows with [j]. *)
    let allow = ref 0 and kp = ref 0 in
    for j = fromv.(0) to ntargets - 1 do
      while !kp < len && fromv.(!kp) <= j do
        allow := !allow lor (1 lsl !kp);
        incr kp
      done;
      let tr = t_r.(j) in
      if tr >= 0 then begin
        let rw = Bfs_kernel.ms_reached msr ~v:tr land !allow in
        if rw <> 0 then begin
          let tg = t_g.(j) in
          let gw = if tg >= 0 then Bfs_kernel.ms_reached msg ~v:tg else 0 in
          let w = ref rw in
          while !w <> 0 do
            let b = !w land - !w in
            w := !w land (!w - 1);
            let k = Bfs_kernel.ctz_pow2 b in
            let d' = Bfs_kernel.ms_dist_raw msr ~slot:k ~v:tr in
            (* d' = 0 iff target = source: never counted *)
            if d' > 0 then
              if gw land b <> 0 then begin
                let d = Bfs_kernel.ms_dist_raw msg ~slot:k ~v:tg in
                let s = float_of_int d /. float_of_int d' in
                sc.spairs.(k) <- sc.spairs.(k) + 1;
                sc.ssum.(k) <- sc.ssum.(k) +. s;
                if s > sc.smax.(k) then begin
                  sc.smax.(k) <- s;
                  sc.switj.(k) <- j
                end
              end
              else sc.sdisc.(k) <- sc.sdisc.(k) + 1
          done
        end
      end
    done
  end;
  let parts = Array.make (hi - lo) zero_partial in
  let slot = ref 0 in
  for i = lo to hi - 1 do
    let xr = src_r.(i) in
    if xr < 0 then () (* no reference distances: nothing can be counted *)
    else if g_deg.(i) = 0 then
      parts.(i - lo) <- eval_disconnected snap ~t_r ~from:(from_of i) ~ntargets xr
    else begin
      let k = !slot in
      incr slot;
      parts.(i - lo) <-
        {
          p_max = sc.smax.(k);
          p_wit =
            (if sc.switj.(k) < 0 then None
             else Some (sources.(i), t_id.(sc.switj.(k))));
          p_sum = sc.ssum.(k);
          p_pairs = sc.spairs.(k);
          p_disc = sc.sdisc.(k);
          (* the batch's two sweeps are charged to its first BFS source *)
          p_runs = (if k = 0 then 2 else 0);
        }
    end
  done;
  parts

(* Merge in source order: float sums and the strict-> max/witness rule see
   sources exactly as the serial loop would. *)
let merge parts =
  let max_s = ref 0. and wit = ref None and sum = ref 0. in
  let pairs = ref 0 and disc = ref 0 and runs = ref 0 in
  Array.iter
    (fun p ->
      if p.p_max > !max_s then begin
        max_s := p.p_max;
        wit := p.p_wit
      end;
      sum := !sum +. p.p_sum;
      pairs := !pairs + p.p_pairs;
      disc := !disc + p.p_disc;
      runs := !runs + p.p_runs)
    parts;
  ( {
      max_stretch = !max_s;
      witness = !wit;
      mean_stretch = (if !pairs = 0 then 0. else !sum /. float_of_int !pairs);
      pairs = !pairs;
      disconnected = !disc;
    },
    !runs )

let run_kernel ?domains ?graph_csr ?reference_csr ~graph ~reference ~sources
    ~t_id ~from_of () =
  Fg_obs.Trace.with_span "metrics.stretch" @@ fun sp ->
  let snap = snapshot ?graph_csr ?reference_csr ~graph ~reference () in
  let t_g, t_r = dense_of snap t_id in
  let src_g, src_r, g_deg = classify snap sources in
  let batches = make_batches src_r g_deg (Array.length sources) in
  let domains = Parallel.resolve domains in
  let batch_parts =
    Parallel.map ~domains
      ~init:(fun () -> batch_scratch ())
      ~f:(fun sc b ->
        let lo, hi = batches.(b) in
        eval_batch snap sc ~sources ~src_g ~src_r ~g_deg ~t_id ~t_g ~t_r
          ~from_of ~lo ~hi)
      (Array.length batches)
  in
  let parts = Array.concat (Array.to_list batch_parts) in
  let report, runs = merge parts in
  if Fg_obs.Trace.enabled () then begin
    Fg_obs.Trace.attr sp "csr_build_ms" (Fg_obs.Event.Float snap.build_ms);
    Fg_obs.Trace.attr sp "bfs_sources" (Fg_obs.Event.Int (Array.length sources));
    Fg_obs.Trace.attr sp "bfs_batches" (Fg_obs.Event.Int (Array.length batches));
    Fg_obs.Trace.attr sp "domains" (Fg_obs.Event.Int domains);
    Fg_obs.Trace.count_span sp "metrics.bfs_runs" runs
  end;
  if Fg_obs.Metrics.is_recording () then
    Fg_obs.Metrics.incr ~n:runs "metrics.bfs_runs";
  report

let measure ?domains ?graph_csr ?reference_csr ~graph ~reference ~sources targets =
  let t_id = Array.of_list targets in
  let sources = Array.of_list sources in
  run_kernel ?domains ?graph_csr ?reference_csr ~graph ~reference ~sources ~t_id
    ~from_of:(fun _ -> 0) ()

let exact ?domains ?graph_csr ?reference_csr ~graph ~reference nodes =
  let t_id = Array.of_list (List.sort Node_id.compare nodes) in
  (* avoid double-counting: source x only measures targets y > x *)
  run_kernel ?domains ?graph_csr ?reference_csr ~graph ~reference ~sources:t_id
    ~t_id ~from_of:(fun i -> i + 1) ()

let sampled ?domains ?graph_csr ?reference_csr rng ~k ~graph ~reference nodes =
  let t_id = Array.of_list (List.sort Node_id.compare nodes) in
  let sources = Fg_graph.Rng.sample rng k t_id in
  run_kernel ?domains ?graph_csr ?reference_csr ~graph ~reference ~sources ~t_id
    ~from_of:(fun _ -> 0) ()

(* ---- per-source sweep kernel (the pre-batching fast path) ----

   One [Csr.bfs] pair per source. Kept callable as [exact_sweep]: it is
   the baseline the bench suite measures the ms-BFS amortization against,
   and a second oracle for the batched path (reports agree exactly —
   same partial stream, same merge). *)

let eval_source snap (gs, rs) ~t_id ~t_g ~t_r ~from x_id =
  match Csr.index snap.r x_id with
  | None -> zero_partial
  | Some xr ->
    let g_deg =
      match Csr.index snap.g x_id with
      | None -> 0
      | Some gi -> Csr.degree snap.g gi
    in
    if g_deg = 0 then
      eval_disconnected snap ~t_r ~from ~ntargets:(Array.length t_id) xr
    else begin
      let gi = match Csr.index snap.g x_id with Some i -> i | None -> assert false in
      let t_bfs_g = Fg_obs.Profile.start () in
      let dg = Csr.bfs snap.g gs gi in
      Fg_obs.Profile.stamp Fg_obs.Profile.Bfs t_bfs_g;
      let t_bfs_r = Fg_obs.Profile.start () in
      let dr = Csr.bfs snap.r rs xr in
      Fg_obs.Profile.stamp Fg_obs.Profile.Bfs t_bfs_r;
      let max_s = ref 0. and wit = ref None and sum = ref 0. in
      let pairs = ref 0 and disc = ref 0 in
      for j = from to Array.length t_id - 1 do
        let tr = t_r.(j) in
        let d' = if tr >= 0 then dr.(tr) else -1 in
        if d' > 0 then begin
          let tg = t_g.(j) in
          let d = if tg >= 0 then dg.(tg) else -1 in
          if d >= 0 then begin
            let s = float_of_int d /. float_of_int d' in
            incr pairs;
            sum := !sum +. s;
            if s > !max_s then begin
              max_s := s;
              wit := Some (x_id, t_id.(j))
            end
          end
          else incr disc
        end
      done;
      {
        p_max = !max_s;
        p_wit = !wit;
        p_sum = !sum;
        p_pairs = !pairs;
        p_disc = !disc;
        p_runs = 2;
      }
    end

let run_kernel_sweep ?domains ?graph_csr ?reference_csr ~graph ~reference
    ~sources ~t_id ~from_of () =
  Fg_obs.Trace.with_span "metrics.stretch" @@ fun sp ->
  let snap = snapshot ?graph_csr ?reference_csr ~graph ~reference () in
  let t_g, t_r = dense_of snap t_id in
  let domains = Parallel.resolve domains in
  let parts =
    Parallel.map ~domains
      ~init:(fun () -> (Csr.scratch snap.g, Csr.scratch snap.r))
      ~f:(fun scratch i ->
        eval_source snap scratch ~t_id ~t_g ~t_r ~from:(from_of i) sources.(i))
      (Array.length sources)
  in
  let report, runs = merge parts in
  if Fg_obs.Trace.enabled () then begin
    Fg_obs.Trace.attr sp "csr_build_ms" (Fg_obs.Event.Float snap.build_ms);
    Fg_obs.Trace.attr sp "bfs_sources" (Fg_obs.Event.Int (Array.length sources));
    Fg_obs.Trace.attr sp "domains" (Fg_obs.Event.Int domains);
    Fg_obs.Trace.count_span sp "metrics.bfs_runs" runs
  end;
  if Fg_obs.Metrics.is_recording () then
    Fg_obs.Metrics.incr ~n:runs "metrics.bfs_runs";
  report

let exact_sweep ?domains ?graph_csr ?reference_csr ~graph ~reference nodes =
  let t_id = Array.of_list (List.sort Node_id.compare nodes) in
  run_kernel_sweep ?domains ?graph_csr ?reference_csr ~graph ~reference
    ~sources:t_id ~t_id ~from_of:(fun i -> i + 1) ()

(* ---- hashtable oracle ----

   The original implementation, kept verbatim as the reference for
   cross-check tests of the CSR kernels. One [Bfs.distances] hashtable per
   (source, graph) — slow, obviously correct. *)

let exact_tbl ~graph ~reference nodes =
  let sorted = List.sort Node_id.compare nodes in
  let max_stretch = ref 0. in
  let witness = ref None in
  let sum = ref 0. in
  let pairs = ref 0 in
  let disconnected = ref 0 in
  let from x =
    let dg = Bfs.distances graph x in
    let dr = Bfs.distances reference x in
    let check y =
      if y > x then
        match (Node_id.Tbl.find_opt dg y, Node_id.Tbl.find_opt dr y) with
        | Some d, Some d' when d' > 0 ->
          let s = float_of_int d /. float_of_int d' in
          incr pairs;
          sum := !sum +. s;
          if s > !max_stretch then begin
            max_stretch := s;
            witness := Some (x, y)
          end
        | None, Some _ -> incr disconnected
        | _ -> ()
    in
    List.iter check sorted
  in
  List.iter from sorted;
  {
    max_stretch = !max_stretch;
    witness = !witness;
    mean_stretch = (if !pairs = 0 then 0. else !sum /. float_of_int !pairs);
    pairs = !pairs;
    disconnected = !disconnected;
  }

let pp_report ppf r =
  let pp_wit ppf = function
    | None -> Format.fprintf ppf "-"
    | Some (x, y) -> Format.fprintf ppf "(%a,%a)" Node_id.pp x Node_id.pp y
  in
  Format.fprintf ppf "max %.2f at %a, mean %.3f over %d pairs, %d disconnected"
    r.max_stretch pp_wit r.witness r.mean_stretch r.pairs r.disconnected
