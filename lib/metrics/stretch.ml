module Node_id = Fg_graph.Node_id
module Bfs = Fg_graph.Bfs
module Csr = Fg_graph.Csr
module Parallel = Fg_graph.Parallel

type report = {
  max_stretch : float;
  witness : (Node_id.t * Node_id.t) option;
  mean_stretch : float;
  pairs : int;
  disconnected : int;
}

(* ---- CSR fast path ----

   One snapshot per (graph, reference) pair, then a dense BFS pair per
   source, fanned across domains. Each source produces an independent
   [partial]; partials are merged strictly in source order, so the report
   is byte-identical for every domain count. *)

type snapshot = {
  g : Csr.t;
  r : Csr.t;
  r_comp : int array; (* reference component labels, for the no-BFS fallback *)
  build_ms : float;
}

type partial = {
  p_max : float;
  p_wit : (Node_id.t * Node_id.t) option;
  p_sum : float;
  p_pairs : int;
  p_disc : int;
  p_runs : int; (* BFS kernel invocations this source actually needed *)
}

let zero_partial =
  { p_max = 0.; p_wit = None; p_sum = 0.; p_pairs = 0; p_disc = 0; p_runs = 0 }

let snapshot ?graph_csr ?reference_csr ~graph ~reference () =
  let t0 = Fg_obs.Trace.wall_clock () in
  let g = match graph_csr with Some c -> c | None -> Csr.of_adjacency graph in
  let r =
    match reference_csr with Some c -> c | None -> Csr.of_adjacency reference
  in
  let r_comp, _ = Csr.components r in
  let build_ms = (Fg_obs.Trace.wall_clock () -. t0) *. 1000. in
  { g; r; r_comp; build_ms }

let dense_of snap t_id =
  let t_g =
    Array.map (fun v -> match Csr.index snap.g v with Some i -> i | None -> -1) t_id
  in
  let t_r =
    Array.map (fun v -> match Csr.index snap.r v with Some i -> i | None -> -1) t_id
  in
  (t_g, t_r)

(* Evaluate one source against targets [from ..]. Semantics of the
   original hashtable path, per target y:
   - y reachable from x in both graphs (and y <> x): a measured pair;
   - y reachable in reference only: a disconnected pair;
   - otherwise: ignored. *)
let eval_source snap (gs, rs) ~t_id ~t_g ~t_r ~from x_id =
  match Csr.index snap.r x_id with
  | None -> zero_partial (* no reference distances: nothing can be counted *)
  | Some xr ->
    let g_deg =
      match Csr.index snap.g x_id with
      | None -> 0
      | Some gi -> Csr.degree snap.g gi
    in
    if g_deg = 0 then begin
      (* source disconnected in [graph]: every reference-connected target
         is a broken pair — read it off the component labels, skipping
         both BFS runs entirely *)
      let cx = snap.r_comp.(xr) in
      let disc = ref 0 in
      for j = from to Array.length t_id - 1 do
        let tr = t_r.(j) in
        if tr >= 0 && tr <> xr && snap.r_comp.(tr) = cx then incr disc
      done;
      { zero_partial with p_disc = !disc }
    end
    else begin
      let gi = match Csr.index snap.g x_id with Some i -> i | None -> assert false in
      (* runs on [Parallel] pool domains: the sharded histograms behind
         [Profile.stamp] make these stamps contention-free *)
      let t_bfs_g = Fg_obs.Profile.start () in
      let dg = Csr.bfs snap.g gs gi in
      Fg_obs.Profile.stamp Fg_obs.Profile.Bfs t_bfs_g;
      let t_bfs_r = Fg_obs.Profile.start () in
      let dr = Csr.bfs snap.r rs xr in
      Fg_obs.Profile.stamp Fg_obs.Profile.Bfs t_bfs_r;
      let max_s = ref 0. and wit = ref None and sum = ref 0. in
      let pairs = ref 0 and disc = ref 0 in
      for j = from to Array.length t_id - 1 do
        let tr = t_r.(j) in
        let d' = if tr >= 0 then dr.(tr) else -1 in
        (* d' = 0 iff target = source: never counted *)
        if d' > 0 then begin
          let tg = t_g.(j) in
          let d = if tg >= 0 then dg.(tg) else -1 in
          if d >= 0 then begin
            let s = float_of_int d /. float_of_int d' in
            incr pairs;
            sum := !sum +. s;
            if s > !max_s then begin
              max_s := s;
              wit := Some (x_id, t_id.(j))
            end
          end
          else incr disc
        end
      done;
      {
        p_max = !max_s;
        p_wit = !wit;
        p_sum = !sum;
        p_pairs = !pairs;
        p_disc = !disc;
        p_runs = 2;
      }
    end

(* Merge in source order: float sums and the strict-> max/witness rule see
   sources exactly as the serial loop would. *)
let merge parts =
  let max_s = ref 0. and wit = ref None and sum = ref 0. in
  let pairs = ref 0 and disc = ref 0 and runs = ref 0 in
  Array.iter
    (fun p ->
      if p.p_max > !max_s then begin
        max_s := p.p_max;
        wit := p.p_wit
      end;
      sum := !sum +. p.p_sum;
      pairs := !pairs + p.p_pairs;
      disc := !disc + p.p_disc;
      runs := !runs + p.p_runs)
    parts;
  ( {
      max_stretch = !max_s;
      witness = !wit;
      mean_stretch = (if !pairs = 0 then 0. else !sum /. float_of_int !pairs);
      pairs = !pairs;
      disconnected = !disc;
    },
    !runs )

let run_kernel ?domains ?graph_csr ?reference_csr ~graph ~reference ~sources
    ~t_id ~from_of () =
  Fg_obs.Trace.with_span "metrics.stretch" @@ fun sp ->
  let snap = snapshot ?graph_csr ?reference_csr ~graph ~reference () in
  let t_g, t_r = dense_of snap t_id in
  let domains = Parallel.resolve domains in
  let parts =
    Parallel.map ~domains
      ~init:(fun () -> (Csr.scratch snap.g, Csr.scratch snap.r))
      ~f:(fun scratch i ->
        eval_source snap scratch ~t_id ~t_g ~t_r ~from:(from_of i) sources.(i))
      (Array.length sources)
  in
  let report, runs = merge parts in
  if Fg_obs.Trace.enabled () then begin
    Fg_obs.Trace.attr sp "csr_build_ms" (Fg_obs.Event.Float snap.build_ms);
    Fg_obs.Trace.attr sp "bfs_sources" (Fg_obs.Event.Int (Array.length sources));
    Fg_obs.Trace.attr sp "domains" (Fg_obs.Event.Int domains);
    Fg_obs.Trace.count_span sp "metrics.bfs_runs" runs
  end;
  if Fg_obs.Metrics.is_recording () then
    Fg_obs.Metrics.incr ~n:runs "metrics.bfs_runs";
  report

let measure ?domains ?graph_csr ?reference_csr ~graph ~reference ~sources targets =
  let t_id = Array.of_list targets in
  let sources = Array.of_list sources in
  run_kernel ?domains ?graph_csr ?reference_csr ~graph ~reference ~sources ~t_id
    ~from_of:(fun _ -> 0) ()

let exact ?domains ?graph_csr ?reference_csr ~graph ~reference nodes =
  let t_id = Array.of_list (List.sort Node_id.compare nodes) in
  (* avoid double-counting: source x only measures targets y > x *)
  run_kernel ?domains ?graph_csr ?reference_csr ~graph ~reference ~sources:t_id
    ~t_id ~from_of:(fun i -> i + 1) ()

let sampled ?domains ?graph_csr ?reference_csr rng ~k ~graph ~reference nodes =
  let t_id = Array.of_list (List.sort Node_id.compare nodes) in
  let sources = Fg_graph.Rng.sample rng k t_id in
  run_kernel ?domains ?graph_csr ?reference_csr ~graph ~reference ~sources ~t_id
    ~from_of:(fun _ -> 0) ()

(* ---- hashtable oracle ----

   The original implementation, kept verbatim as the reference for
   cross-check tests of the CSR kernel. One [Bfs.distances] hashtable per
   (source, graph) — slow, obviously correct. *)

let exact_tbl ~graph ~reference nodes =
  let sorted = List.sort Node_id.compare nodes in
  let max_stretch = ref 0. in
  let witness = ref None in
  let sum = ref 0. in
  let pairs = ref 0 in
  let disconnected = ref 0 in
  let from x =
    let dg = Bfs.distances graph x in
    let dr = Bfs.distances reference x in
    let check y =
      if y > x then
        match (Node_id.Tbl.find_opt dg y, Node_id.Tbl.find_opt dr y) with
        | Some d, Some d' when d' > 0 ->
          let s = float_of_int d /. float_of_int d' in
          incr pairs;
          sum := !sum +. s;
          if s > !max_stretch then begin
            max_stretch := s;
            witness := Some (x, y)
          end
        | None, Some _ -> incr disconnected
        | _ -> ()
    in
    List.iter check sorted
  in
  List.iter from sorted;
  {
    max_stretch = !max_stretch;
    witness = !witness;
    mean_stretch = (if !pairs = 0 then 0. else !sum /. float_of_int !pairs);
    pairs = !pairs;
    disconnected = !disconnected;
  }

let pp_report ppf r =
  let pp_wit ppf = function
    | None -> Format.fprintf ppf "-"
    | Some (x, y) -> Format.fprintf ppf "(%a,%a)" Node_id.pp x Node_id.pp y
  in
  Format.fprintf ppf "max %.2f at %a, mean %.3f over %d pairs, %d disconnected"
    r.max_stretch pp_wit r.witness r.mean_stretch r.pairs r.disconnected
