(** Stretch: the paper's central quality metric (Section 2, success
    metric 2).

    [stretch(x, y) = dist(x, y, G) / dist(x, y, G')] over live pairs,
    where [G] is the healed network and [G'] the insert-only reference
    (which may route through dead nodes). Theorem 1.2 bounds the maximum
    by [ceil(log2 n)].

    Implementation: each entry point snapshots both graphs once
    ({!Fg_graph.Csr}) and batches sources into multi-source BFS sweeps
    ({!Fg_graph.Bfs_kernel.ms_run}, up to 63 sources per pass over the
    off-heap rows), fanned across [?domains] domains
    ({!Fg_graph.Parallel}; default: the process-wide setting, 1 unless
    raised via [--domains]). Batch boundaries are a pure function of the
    source list, and per-source results are reduced in source order, so
    the report — including float fields and the witness — is
    byte-identical for any domain count. Sources with no live neighbor
    in [graph] consume no BFS slot: their broken pairs are read off
    run-length-compressed reference component labels
    ({!Fg_graph.Interval_map}).

    Each call emits a [metrics.stretch] span (attributes [csr_build_ms],
    [bfs_sources], [bfs_batches], [domains]; counter [metrics.bfs_runs]
    — sweeps, two per batch) when an {!Fg_obs} sink is installed, and
    bumps the [metrics.bfs_runs] global counter when recording. *)

module Node_id := Fg_graph.Node_id

type report = {
  max_stretch : float;
  witness : (Node_id.t * Node_id.t) option;  (** pair attaining the max *)
  mean_stretch : float;
  pairs : int;  (** connected live pairs measured *)
  disconnected : int;  (** pairs connected in G' but not in G (0 if the
                           healer preserves connectivity) *)
}

(** Every entry point accepts optional prebuilt snapshots [?graph_csr] /
    [?reference_csr] (e.g. {!Fg_core.Forgiving_graph.csr} /
    [gprime_csr], which are cached per engine generation): when given, the
    corresponding [Csr.of_adjacency] build is skipped and the snapshot is
    trusted to match the graph. Reports are identical either way. *)

(** [measure ~graph ~reference ~sources targets] measures every
    (source, target) pair with [source <> target], counting each ordered
    occurrence — the building block of {!exact} and {!sampled}. (The
    target/node list is positional so that [?domains] can be erased.) *)
val measure :
  ?domains:int ->
  ?graph_csr:Fg_graph.Csr.t ->
  ?reference_csr:Fg_graph.Csr.t ->
  graph:Fg_graph.Adjacency.t ->
  reference:Fg_graph.Adjacency.t ->
  sources:Node_id.t list ->
  Node_id.t list ->
  report

(** [exact ~graph ~reference nodes] measures every unordered pair of
    [nodes] (one BFS per node on each graph). *)
val exact :
  ?domains:int ->
  ?graph_csr:Fg_graph.Csr.t ->
  ?reference_csr:Fg_graph.Csr.t ->
  graph:Fg_graph.Adjacency.t ->
  reference:Fg_graph.Adjacency.t ->
  Node_id.t list ->
  report

(** [sampled rng ~k ~graph ~reference nodes] measures BFS from [k] sampled
    sources against all of [nodes] — an unbiased under-estimate of the max,
    for large sweeps. *)
val sampled :
  ?domains:int ->
  ?graph_csr:Fg_graph.Csr.t ->
  ?reference_csr:Fg_graph.Csr.t ->
  Fg_graph.Rng.t ->
  k:int ->
  graph:Fg_graph.Adjacency.t ->
  reference:Fg_graph.Adjacency.t ->
  Node_id.t list ->
  report

(** {!exact} on the per-source sweep kernel (one {!Fg_graph.Csr.bfs}
    pair per source — the pre-batching fast path). Kept callable as the
    baseline the bench suite measures the ms-BFS amortization against,
    and as a second oracle: the report agrees exactly with {!exact},
    including float fields (same partial stream, same merge). *)
val exact_sweep :
  ?domains:int ->
  ?graph_csr:Fg_graph.Csr.t ->
  ?reference_csr:Fg_graph.Csr.t ->
  graph:Fg_graph.Adjacency.t ->
  reference:Fg_graph.Adjacency.t ->
  Node_id.t list ->
  report

(** The pre-CSR hashtable implementation of {!exact}, kept as the oracle
    for cross-check tests. [max_stretch], [witness], [pairs] and
    [disconnected] agree exactly with {!exact}; [mean_stretch] may differ
    in the last bits (different float summation order). *)
val exact_tbl :
  graph:Fg_graph.Adjacency.t ->
  reference:Fg_graph.Adjacency.t ->
  Node_id.t list ->
  report

val pp_report : Format.formatter -> report -> unit
