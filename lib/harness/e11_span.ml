module Adjacency = Fg_graph.Adjacency
module Healer = Fg_baselines.Healer
module Adversary = Fg_adversary.Adversary

type row = {
  family : string;
  n : int;
  healing_edges : int;
  max_span : int;
  mean_span : float;
  p95_span : float;
  span_bound_2log : bool;
}

type summary = { rows : row list; expanders_small : bool; ring_large : bool }

let spans_of (h : Healer.t) =
  let g = h.Healer.graph () in
  let gp = h.Healer.gprime () in
  let spans = ref [] in
  let record u v =
    if not (Adjacency.mem_edge gp u v) then
      match Fg_graph.Bfs.distance gp u v with
      | Some d -> spans := d :: !spans
      | None -> ()
  in
  Adjacency.iter_edges record g;
  !spans

let one family n =
  let h =
    Attack_sweep.run ~seed:Exp_common.default_seed ~family ~n
      ~del:Adversary.Max_degree ~fraction:0.5 ~healer:"fg"
  in
  let spans = spans_of h in
  let n_seen = Adjacency.num_nodes (h.Healer.gprime ()) in
  let bound = 2 * Exp_common.ceil_log2 n_seen in
  match Fg_metrics.Summary.of_ints_opt spans with
  | None ->
    {
      family;
      n;
      healing_edges = 0;
      max_span = 0;
      mean_span = 0.;
      p95_span = 0.;
      span_bound_2log = true;
    }
  | Some s ->
    {
      family;
      n;
      healing_edges = s.Fg_metrics.Summary.n;
      max_span = int_of_float s.Fg_metrics.Summary.max;
      mean_span = s.Fg_metrics.Summary.mean;
      p95_span = s.Fg_metrics.Summary.p95;
      span_bound_2log = s.Fg_metrics.Summary.max <= float_of_int bound;
    }

let run ?(verbose = true) ?(csv = false) () =
  let rows =
    List.concat_map
      (fun (family, _) -> List.map (one family) [ 64; 256 ])
      Exp_common.families
  in
  let table =
    Table.make
      [ "family"; "n"; "healing edges"; "max span"; "mean"; "p95"; "<= 2 log n" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.family;
          Table.cell_int r.n;
          Table.cell_int r.healing_edges;
          Table.cell_int r.max_span;
          Table.cell_float r.mean_span;
          Table.cell_float ~decimals:1 r.p95_span;
          Table.cell_bool r.span_bound_2log;
        ])
    rows;
  if verbose then
    Table.print
      ~title:
        "E11 - healing-edge span in G' (Section 6 open problem; 50% max-degree \
         deletions)"
      table;
  if csv then ignore (Exp_common.write_csv ~name:"e11_span" table);
  let expanders_small =
    List.for_all
      (fun r ->
        (not (List.mem r.family [ "er"; "ba"; "ws"; "tree" ])) || r.span_bound_2log)
      rows
  in
  let ring_large =
    List.for_all
      (fun r -> r.family <> "ring" || r.max_span >= r.n / 4)
      rows
  in
  { rows; expanders_small; ring_large }
