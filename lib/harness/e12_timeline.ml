module Fg = Fg_core.Forgiving_graph
module Rng = Fg_graph.Rng

type row = {
  step : int;
  event : string;
  live : int;
  n_seen : int;
  max_stretch : float;
  bound : int;
  max_degree_ratio : float;
  ok : bool;
}

type summary = { rows : row list; steps_checked : int; violations : int }

let measure_now fg =
  let live = Fg.live_nodes fg in
  let snap = Fg.publish fg in
  let stretch =
    Fg_metrics.Stretch.exact ~graph_csr:snap.Fg.csr ~reference_csr:snap.Fg.gprime_csr
      ~graph:(Fg.graph fg) ~reference:(Fg.gprime fg) live
  in
  let degree =
    Fg_metrics.Degree_metric.measure ~graph:(Fg.graph fg) ~gprime:(Fg.gprime fg)
      ~nodes:live
  in
  let bound = Fg.stretch_bound fg in
  let ok =
    stretch.Fg_metrics.Stretch.max_stretch <= float_of_int bound
    && stretch.Fg_metrics.Stretch.disconnected = 0
    && degree.Fg_metrics.Degree_metric.over_4x = 0
    && Fg_core.Invariants.check fg = []
  in
  ( stretch.Fg_metrics.Stretch.max_stretch,
    bound,
    degree.Fg_metrics.Degree_metric.max_ratio,
    ok )

let run ?(verbose = true) ?(csv = false) ?(steps = 120) () =
  let rng = Rng.create Exp_common.default_seed in
  let n0 = 48 in
  let g0 = Fg_graph.Generators.erdos_renyi rng n0 (4.0 /. float_of_int n0) in
  let fg = Fg.of_graph g0 in
  let next_id = ref n0 in
  let rows = ref [] in
  let violations = ref 0 in
  let checked = ref 0 in
  for step = 1 to steps do
    let live = Fg.live_nodes fg in
    let event =
      (* bursty adversary: three deletions then one insertion *)
      if step mod 4 <> 0 && List.length live > 8 then begin
        let g = Fg.graph fg in
        let hub =
          List.fold_left
            (fun acc v ->
              match acc with
              | None -> Some v
              | Some b ->
                if Fg_graph.Adjacency.degree g v > Fg_graph.Adjacency.degree g b then
                  Some v
                else acc)
            None live
        in
        match hub with
        | Some v ->
          Fg.delete fg v;
          Printf.sprintf "del %d" v
        | None -> "noop"
      end
      else begin
        let v = !next_id in
        incr next_id;
        let k = 1 + Rng.int rng 3 in
        let nbrs = Array.to_list (Rng.sample rng k (Array.of_list live)) in
        Fg.insert fg v nbrs;
        Printf.sprintf "ins %d" v
      end
    in
    let max_stretch, bound, max_ratio, ok = measure_now fg in
    incr checked;
    if not ok then incr violations;
    if step mod 10 = 0 || not ok then
      rows :=
        {
          step;
          event;
          live = Fg.num_live fg;
          n_seen = Fg.num_seen fg;
          max_stretch;
          bound;
          max_degree_ratio = max_ratio;
          ok;
        }
        :: !rows
  done;
  let rows = List.rev !rows in
  let table =
    Table.make
      [ "step"; "event"; "live"; "n seen"; "max stretch"; "bound"; "max deg ratio"; "ok" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Table.cell_int r.step;
          r.event;
          Table.cell_int r.live;
          Table.cell_int r.n_seen;
          Table.cell_float r.max_stretch;
          Table.cell_int r.bound;
          Table.cell_float r.max_degree_ratio;
          Table.cell_bool r.ok;
        ])
    rows;
  if verbose then begin
    Table.print
      ~title:
        "E12 - bounds at every instant (ER n=48, bursty hub-deletion adversary; \
         sampled rows)"
      table;
    Printf.printf "checked after every one of %d events: %d violations\n" !checked
      !violations
  end;
  if csv then ignore (Exp_common.write_csv ~name:"e12_timeline" table);
  { rows; steps_checked = !checked; violations = !violations }
