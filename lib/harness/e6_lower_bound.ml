module Fg = Fg_core.Forgiving_graph

type row = {
  n : int;
  measured_stretch : float;
  lower_bound : float;
  upper_bound : int;
  max_degree_ratio : float;
  sandwiched : bool;
}

type summary = { rows : row list; all_sandwiched : bool }

let one n =
  let fg = Fg.of_graph (Fg_graph.Generators.star n) in
  Fg.delete fg 0;
  let live = Fg.live_nodes fg in
  let stretch =
    Fg_metrics.Stretch.exact ~graph:(Fg.graph fg) ~reference:(Fg.gprime fg) live
  in
  let degree =
    Fg_metrics.Degree_metric.measure ~graph:(Fg.graph fg) ~gprime:(Fg.gprime fg)
      ~nodes:live
  in
  let lower_bound = 0.5 *. (log (float_of_int (n - 1)) /. log 2.) in
  let upper_bound = Exp_common.ceil_log2 n in
  let measured = stretch.Fg_metrics.Stretch.max_stretch in
  {
    n;
    measured_stretch = measured;
    lower_bound;
    upper_bound;
    max_degree_ratio = degree.Fg_metrics.Degree_metric.max_ratio;
    (* sandwich with a factor-2 constant slack below the LB: satellites are
       at G'-distance 2, so measured stretch = (RT path)/2 *)
    sandwiched = measured >= lower_bound /. 2. && measured <= float_of_int upper_bound;
  }

let run ?(verbose = true) ?(csv = false) () =
  let rows = List.map one [ 9; 17; 33; 65; 129; 257; 513 ] in
  let table =
    Table.make
      [
        "n"; "measured max stretch"; "LB (1/2)log2(n-1)"; "UB ceil(log2 n)";
        "max deg ratio"; "sandwiched";
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Table.cell_int r.n;
          Table.cell_float r.measured_stretch;
          Table.cell_float r.lower_bound;
          Table.cell_int r.upper_bound;
          Table.cell_float r.max_degree_ratio;
          Table.cell_bool r.sandwiched;
        ])
    rows;
  if verbose then
    Table.print
      ~title:"E6 - Theorem 2: star-centre attack, measured stretch vs the optimal band"
      table;
  if csv then ignore (Exp_common.write_csv ~name:"e6_lower_bound" table);
  { rows; all_sandwiched = List.for_all (fun r -> r.sandwiched) rows }
