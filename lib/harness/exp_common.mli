(** Shared helpers for the experiment modules. *)

(** [ceil_log2 n] = ceil(log2 n), 0 for n <= 1. *)
val ceil_log2 : int -> int

(** [log2f x] in floating point, of [max 2 x]. *)
val log2f : int -> float

(** Default seed used by all experiments (override per call site). *)
val default_seed : int

(** [csr_of g] returns a {!Fg_graph.Csr} snapshot of [g], memoized one slot
    deep by physical identity and {!Fg_graph.Adjacency.version}: consecutive
    metric calls over the same unmutated graph share one build. Thread the
    result into the [?csr] options of {!Fg_graph.Diameter} /
    {!Fg_graph.Centrality} / {!Fg_metrics.Stretch}. *)
val csr_of : Fg_graph.Adjacency.t -> Fg_graph.Csr.t

(** The graph families used by the attack sweeps: name, generator. *)
val families : (string * (Fg_graph.Rng.t -> int -> Fg_graph.Adjacency.t)) list

(** [with_observability ?trace ?metrics ?domains f] runs [f] with the
    requested telemetry: [trace] streams a {!Fg_obs} JSONL trace to that
    file, and [metrics] records the global counter/histogram registry,
    printing and resetting it afterwards. [domains] raises the
    process-wide {!Fg_graph.Parallel} domain count for the duration of
    [f] (the metric kernels' reports do not depend on it — only their
    wall-clock does). Exception-safe; everything defaults to off/serial,
    so this is a transparent wrapper for every E0–E14 experiment. *)
val with_observability :
  ?trace:string -> ?metrics:bool -> ?domains:int -> (unit -> 'a) -> 'a

(** Emit a CSV file under [results/] (created on demand); returns path. *)
val write_csv : name:string -> Table.t -> string
