let ceil_log2 n =
  if n <= 1 then 0
  else begin
    let rec go p b = if p >= n then b else go (2 * p) (b + 1) in
    go 1 0
  end

let log2f n = log (float_of_int (max 2 n)) /. log 2.
let default_seed = 42

(* One-slot memo for CSR snapshots: experiment code often computes several
   metrics over the same graph back to back (e.g. diameter then average
   path length in E0). The snapshot itself lives in a [Snapshot_store]
   (same publication cell as the serving tier, with its own monotone
   generation counter since this memo spans unrelated graphs); the key —
   physical identity plus [Adjacency.version], so an in-place mutation of
   the memoized graph invalidates the slot — stays writer-side. *)
let csr_store : Fg_graph.Csr.t Fg_graph.Snapshot_store.t = Fg_graph.Snapshot_store.create ()
let csr_key : (Fg_graph.Adjacency.t * int) option ref = ref None

let csr_of g =
  let v = Fg_graph.Adjacency.version g in
  match (!csr_key, Fg_graph.Snapshot_store.peek csr_store) with
  | Some (g0, v0), Some s when g0 == g && v0 = v -> s.Fg_graph.Snapshot_store.value
  | _ ->
    let c = Fg_graph.Csr.of_adjacency g in
    Fg_graph.Snapshot_store.publish csr_store
      ~gen:(Fg_graph.Snapshot_store.current_gen csr_store + 1)
      c;
    csr_key := Some (g, v);
    c

let families =
  [
    ("ring", fun _rng n -> Fg_graph.Generators.ring n);
    ("er", fun rng n -> Fg_graph.Generators.erdos_renyi rng n (4.0 /. float_of_int (max 2 n)));
    ("ba", fun rng n -> Fg_graph.Generators.barabasi_albert rng n 3);
    ("ws", fun rng n -> Fg_graph.Generators.watts_strogatz rng n 4 0.1);
    ("grid", fun _rng n ->
      let side = max 2 (int_of_float (sqrt (float_of_int n))) in
      Fg_graph.Generators.grid side side);
    ("tree", fun _rng n -> Fg_graph.Generators.binary_tree n);
  ]

(* Observability + parallelism wrapper used by the CLI and the experiment
   driver: stream a JSONL trace of the run to [trace], record the global
   heal-path metrics and print them (then reset the registry) when
   [metrics], and raise the process-wide domain count for the metric
   kernels ([--domains N]) for the duration of [f]. When the domain count
   was raised, the worker pool is also shut down on exit: parked workers
   tax every stop-the-world minor GC, and whatever runs after this scope
   is back to the serial default anyway. *)
let with_observability ?trace ?(metrics = false) ?domains f =
  let prev_domains = Fg_graph.Parallel.default () in
  Option.iter Fg_graph.Parallel.set_default domains;
  let f () =
    Fun.protect
      ~finally:(fun () ->
        Fg_graph.Parallel.set_default prev_domains;
        if Option.is_some domains then Fg_graph.Parallel.shutdown ())
      f
  in
  let oc =
    Option.map
      (fun path ->
        try open_out path
        with Sys_error e ->
          Printf.eprintf "error: cannot open trace file: %s\n" e;
          exit 1)
      trace
  in
  Option.iter (fun oc -> Fg_obs.Trace.install (Fg_obs.Sink.jsonl oc)) oc;
  if metrics then Fg_obs.Metrics.set_recording true;
  Fun.protect
    ~finally:(fun () ->
      Option.iter
        (fun oc ->
          Fg_obs.Trace.uninstall ();
          close_out oc)
        oc;
      if metrics then begin
        Fg_obs.Metrics.set_recording false;
        Format.printf "@.%a" Fg_obs.Metrics.pp Fg_obs.Metrics.global;
        Fg_obs.Metrics.reset Fg_obs.Metrics.global
      end)
    f

let write_csv ~name table =
  let dir = "results" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (name ^ ".csv") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Table.to_csv table));
  path
