module Adversary = Fg_adversary.Adversary
module Healer = Fg_baselines.Healer
module Fg = Fg_core.Forgiving_graph

type row = {
  mix : string;
  insertion : string;
  steps : int;
  n_seen : int;
  live : int;
  max_stretch : float;
  stretch_bound : int;
  max_degree_ratio : float;
  invariants_ok : bool;
}

type summary = { rows : row list; all_ok : bool }

let insertions =
  [
    ("random3", Adversary.Attach_random 3);
    ("preferential3", Adversary.Attach_preferential 3);
    ("chain", Adversary.Attach_chain);
    ("far2", Adversary.Attach_far 2);
  ]

let mixes = [ ("2:1", 1. /. 3.); ("1:1", 0.5); ("1:2", 2. /. 3.) ]

let one ~steps ~mix_name ~p_delete ~ins_name ~ins =
  let rng =
    Fg_graph.Rng.create
      (Exp_common.default_seed
      + (31 * Hashtbl.hash mix_name)
      + Hashtbl.hash ins_name)
  in
  (* size the initial population so delete-heavy mixes keep a healthy
     survivor pool: expected net deletions = steps * (2p - 1) *)
  let expected_net = int_of_float (float_of_int steps *. ((2. *. p_delete) -. 1.)) in
  let n0 = 64 + max 0 expected_net in
  let g0 = Fg_graph.Generators.erdos_renyi rng n0 (4.0 /. float_of_int n0) in
  let fg = Fg.of_graph g0 in
  (* hand-rolled healer wrapper so the underlying fg stays accessible for
     the invariant checks below *)
  let healer =
    {
      Healer.name = "fg";
      insert = (fun v nbrs -> Fg.insert fg v nbrs);
      delete = (fun v -> Fg.delete fg v);
      graph = (fun () -> Fg.graph fg);
      gprime = (fun () -> Fg.gprime fg);
      live_nodes = (fun () -> Fg.live_nodes fg);
      is_alive = (fun v -> Fg.is_alive fg v);
      init_messages = 0;
    }
  in
  ignore
    (Fg_adversary.Churn.drive rng healer ~steps ~p_delete ~del:Adversary.Max_degree
       ~ins ~first_id:n0);
  let live = Fg.live_nodes fg in
  let stretch =
    Fg_metrics.Stretch.exact ~graph:(Fg.graph fg) ~reference:(Fg.gprime fg) live
  in
  let degree =
    Fg_metrics.Degree_metric.measure ~graph:(Fg.graph fg) ~gprime:(Fg.gprime fg)
      ~nodes:live
  in
  let invariants_ok = Fg_core.Invariants.check fg = [] in
  {
    mix = mix_name;
    insertion = ins_name;
    steps;
    n_seen = Fg.num_seen fg;
    live = List.length live;
    max_stretch = stretch.Fg_metrics.Stretch.max_stretch;
    stretch_bound = Fg.stretch_bound fg;
    max_degree_ratio = degree.Fg_metrics.Degree_metric.max_ratio;
    invariants_ok =
      invariants_ok && stretch.Fg_metrics.Stretch.disconnected = 0
      && stretch.Fg_metrics.Stretch.max_stretch <= float_of_int (Fg.stretch_bound fg);
  }

let run ?(verbose = true) ?(csv = false) ?(steps = 200) () =
  let rows =
    List.concat_map
      (fun (mix_name, p_delete) ->
        List.map
          (fun (ins_name, ins) -> one ~steps ~mix_name ~p_delete ~ins_name ~ins)
          insertions)
      mixes
  in
  let table =
    Table.make
      [
        "ins:del"; "insertion"; "steps"; "n seen"; "live"; "max stretch";
        "bound"; "max deg ratio"; "all bounds+invariants";
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.mix;
          r.insertion;
          Table.cell_int r.steps;
          Table.cell_int r.n_seen;
          Table.cell_int r.live;
          Table.cell_float r.max_stretch;
          Table.cell_int r.stretch_bound;
          Table.cell_float r.max_degree_ratio;
          Table.cell_bool r.invariants_ok;
        ])
    rows;
  if verbose then
    Table.print ~title:"E8 - adversarial insert/delete churn (FG healer)" table;
  if csv then ignore (Exp_common.write_csv ~name:"e8_churn" table);
  { rows; all_ok = List.for_all (fun r -> r.invariants_ok) rows }
