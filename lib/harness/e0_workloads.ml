module Adjacency = Fg_graph.Adjacency

type row = {
  family : string;
  n : int;
  m : int;
  mean_degree : float;
  max_degree : int;
  diameter : int;
  avg_path_length : float;
  clustering : float;
  connected : bool;
}

type summary = { rows : row list; all_connected : bool }

let one ~n (family, gen) =
  let rng = Fg_graph.Rng.create Exp_common.default_seed in
  let g = gen rng n in
  let nodes = Adjacency.num_nodes g in
  let m = Adjacency.num_edges g in
  {
    family;
    n = nodes;
    m;
    mean_degree = 2. *. float_of_int m /. float_of_int (max 1 nodes);
    max_degree = Adjacency.max_degree g;
    diameter = Fg_graph.Diameter.exact ~csr:(Exp_common.csr_of g) g;
    avg_path_length = Fg_graph.Diameter.average_path_length ~csr:(Exp_common.csr_of g) g;
    clustering = Fg_graph.Clustering.average_coefficient g;
    connected = Fg_graph.Connectivity.is_connected g;
  }

let run ?(verbose = true) ?(csv = false) ?(n = 256) () =
  let rows = List.map (one ~n) Exp_common.families in
  let table =
    Table.make
      [
        "family"; "n"; "m"; "mean deg"; "max deg"; "diameter"; "avg path";
        "clustering"; "connected";
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.family;
          Table.cell_int r.n;
          Table.cell_int r.m;
          Table.cell_float r.mean_degree;
          Table.cell_int r.max_degree;
          Table.cell_int r.diameter;
          Table.cell_float r.avg_path_length;
          Table.cell_float ~decimals:3 r.clustering;
          Table.cell_bool r.connected;
        ])
    rows;
  if verbose then
    Table.print ~title:(Printf.sprintf "E0 - workload families at n=%d (seed 42)" n) table;
  if csv then ignore (Exp_common.write_csv ~name:"e0_workloads" table);
  { rows; all_connected = List.for_all (fun r -> r.connected) rows }
