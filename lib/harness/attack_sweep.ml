module Rng = Fg_graph.Rng
module Healer = Fg_baselines.Healer

let run ~seed ~family ~n ~del ~fraction ~healer =
  let rng = Rng.create seed in
  let gen =
    match List.assoc_opt family Exp_common.families with
    | Some g -> g
    | None -> invalid_arg ("Attack_sweep.run: unknown family " ^ family)
  in
  let g0 = gen rng n in
  let h = Fg_baselines.Registry.by_name healer g0 in
  ignore (Fg_adversary.Churn.delete_fraction rng h ~fraction ~del);
  h

let measure_both ?(seed = Exp_common.default_seed) ?(exact_limit = 400) (h : Healer.t) =
  let graph = h.Healer.graph () in
  let gprime = h.Healer.gprime () in
  let live = h.Healer.live_nodes () in
  let degree = Fg_metrics.Degree_metric.measure ~graph ~gprime ~nodes:live in
  let stretch =
    if List.length live <= exact_limit then
      Fg_metrics.Stretch.exact ~graph ~reference:gprime live
    else
      Fg_metrics.Stretch.sampled (Rng.create (seed + 1)) ~k:48 ~graph ~reference:gprime
        live
  in
  (degree, stretch)
