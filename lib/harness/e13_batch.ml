module Fg = Fg_core.Forgiving_graph
module Rt = Fg_core.Rt
module Adjacency = Fg_graph.Adjacency

type row = {
  n : int;
  batch_size : int;
  batch_helpers : int;
  seq_helpers : int;
  batch_anchors : int;
  seq_anchors : int;
  batch_stretch : float;
  seq_stretch : float;
  bound : int;
  both_within : bool;
}

type summary = { rows : row list; batch_never_worse : bool }

let helpers_of (trace : Rt.heal_trace) =
  List.fold_left
    (fun acc evs ->
      List.fold_left (fun a (e : Rt.merge_event) -> a + e.Rt.me_created) acc evs)
    0 trace.Rt.ht_levels

let max_stretch fg =
  let live = Fg.live_nodes fg in
  (Fg_metrics.Stretch.exact ~graph:(Fg.graph fg) ~reference:(Fg.gprime fg) live)
    .Fg_metrics.Stretch.max_stretch

let one ~n ~batch_size =
  let rng = Fg_graph.Rng.create (Exp_common.default_seed + n + batch_size) in
  let g = Fg_graph.Generators.erdos_renyi rng n (4.0 /. float_of_int n) in
  let victims =
    Array.to_list
      (Fg_graph.Rng.sample rng batch_size (Array.of_list (Adjacency.nodes g)))
  in
  let fg_batch = Fg.of_graph (Adjacency.copy g) in
  let batch_traces = Fg.delete_batch_traced fg_batch victims in
  let fg_seq = Fg.of_graph (Adjacency.copy g) in
  let seq_traces = List.map (Fg.delete_traced fg_seq) victims in
  let bound = Fg.stretch_bound fg_batch in
  let bs = max_stretch fg_batch and ss = max_stretch fg_seq in
  {
    n;
    batch_size;
    batch_helpers = List.fold_left (fun a t -> a + helpers_of t) 0 batch_traces;
    seq_helpers = List.fold_left (fun a t -> a + helpers_of t) 0 seq_traces;
    batch_anchors = List.fold_left (fun a t -> a + t.Rt.ht_anchors) 0 batch_traces;
    seq_anchors = List.fold_left (fun a t -> a + t.Rt.ht_anchors) 0 seq_traces;
    batch_stretch = bs;
    seq_stretch = ss;
    bound;
    both_within = bs <= float_of_int bound && ss <= float_of_int bound;
  }

let run ?(verbose = true) ?(csv = false) () =
  let rows =
    List.concat_map
      (fun n -> List.map (fun k -> one ~n ~batch_size:k) [ 2; 4; 8; 16 ])
      [ 64; 256 ]
  in
  let table =
    Table.make
      [
        "n"; "batch k"; "helpers (batch)"; "helpers (seq)"; "anchors (batch)";
        "anchors (seq)"; "max stretch (batch)"; "(seq)"; "bound"; "within";
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Table.cell_int r.n;
          Table.cell_int r.batch_size;
          Table.cell_int r.batch_helpers;
          Table.cell_int r.seq_helpers;
          Table.cell_int r.batch_anchors;
          Table.cell_int r.seq_anchors;
          Table.cell_float r.batch_stretch;
          Table.cell_float r.seq_stretch;
          Table.cell_int r.bound;
          Table.cell_bool r.both_within;
        ])
    rows;
  if verbose then
    Table.print
      ~title:"E13 - batch failures vs equivalent deletion sequences (extension)"
      table;
  if csv then ignore (Exp_common.write_csv ~name:"e13_batch" table);
  {
    rows;
    batch_never_worse =
      List.for_all
        (fun r -> r.both_within && r.batch_helpers <= r.seq_helpers)
        rows;
  }
