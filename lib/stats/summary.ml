type t = {
  n : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  stddev : float;
}

let quantile q xs =
  if xs = [] then invalid_arg "Summary.quantile: empty";
  if q < 0. || q > 1. then invalid_arg "Summary.quantile: q out of range";
  let sorted = Array.of_list (List.sort compare xs) in
  let n = Array.length sorted in
  let idx = int_of_float (Float.round (q *. float_of_int (n - 1))) in
  sorted.(max 0 (min (n - 1) idx))

let of_floats xs =
  if xs = [] then invalid_arg "Summary.of_floats: empty";
  let n = List.length xs in
  let fn = float_of_int n in
  let sum = List.fold_left ( +. ) 0. xs in
  let mean = sum /. fn in
  let var = List.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs /. fn in
  {
    n;
    mean;
    min = List.fold_left min infinity xs;
    max = List.fold_left max neg_infinity xs;
    p50 = quantile 0.5 xs;
    p95 = quantile 0.95 xs;
    stddev = sqrt var;
  }

let of_ints xs = of_floats (List.map float_of_int xs)
let of_floats_opt xs = if xs = [] then None else Some (of_floats xs)
let of_ints_opt xs = if xs = [] then None else Some (of_ints xs)

let pp ppf s =
  Format.fprintf ppf "n=%d mean=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f sd=%.2f" s.n
    s.mean s.min s.p50 s.p95 s.max s.stddev
