(** Small statistics helpers for experiment tables. *)

type t = {
  n : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  stddev : float;
}

(** [of_floats xs] — raises [Invalid_argument] on the empty list. *)
val of_floats : float list -> t

val of_ints : int list -> t

(** Total variants: [None] on the empty list. Use these at call sites that
    can legitimately see no samples (e.g. sweeps where every pair is
    disconnected). *)
val of_floats_opt : float list -> t option

val of_ints_opt : int list -> t option

(** [quantile q xs] with [0 <= q <= 1], nearest-rank on sorted values. *)
val quantile : float -> float list -> float

val pp : Format.formatter -> t -> unit
