(** Recording implementation of {!Fg_graph.Atomic_intf.S}: a plain [ref]
    behind a {!Sched.yield} scheduling point per operation. Instantiating
    a protocol functor ({!Fg_graph.Snapshot_store.Make},
    {!Fg_shard.Mailbox.Make}, {!Fg_graph.Parallel.Ticket.Make}) over this
    module turns its atomics into the preemption points the fg_race
    scheduler interleaves. Only meaningful inside a {!Sched} exploration;
    outside one the operations behave like uncontended atomics. *)

include Fg_graph.Atomic_intf.S
