(* fg_race CLI — the CI race-check entry point.

   Normal mode explores each selected protocol bounded-exhaustively
   (lexicographic, up to --schedules) and then samples --random seeded
   uniform schedules; any Violation prints the offending schedule and
   fails the run. --seed-bug inverts the polarity: it runs the snapshot
   scenario with the reclamation horizon deliberately removed and
   demands that exploration catches the use-after-reclaim — a mutation
   test proving the checker has teeth. *)

open Fg_race

(* fg-lint: single-writer main — CLI flags, set once by Arg.parse *)
let protocol = ref "all" (* fg-lint: single-writer main *)
let schedules = ref 10_000 (* fg-lint: single-writer main *)
let random = ref 2_000 (* fg-lint: single-writer main *)
let seed = ref 0x5EED (* fg-lint: single-writer main *)
let quota = ref 45.0 (* fg-lint: single-writer main *)
let seed_bug = ref false (* fg-lint: single-writer main *)

let args =
  [
    ("--protocol", Arg.Set_string protocol, "NAME snapshot|mailbox|ticket|all (default all)");
    ( "--schedules",
      Arg.Set_int schedules,
      "N exhaustive-exploration budget per protocol (default 10000)" );
    ("--random", Arg.Set_int random, "N random schedules per protocol on top (default 2000)");
    ("--seed", Arg.Set_int seed, "N PRNG seed for random schedules (default 0x5EED)");
    ( "--quota-seconds",
      Arg.Set_float quota,
      "S wall-clock budget per exploration phase (default 45)" );
    ( "--seed-bug",
      Arg.Set seed_bug,
      " expect the seeded reclamation bug to be caught; fail if it survives" );
  ]

let usage =
  "fg_race_cli [--protocol NAME] [--schedules N] [--random N] [--seed N] [--quota-seconds S] \
   [--seed-bug]"

let pp_stats phase (st : Sched.stats) =
  Printf.printf "    %-10s %6d schedules, %8d steps%s\n%!" phase st.Sched.schedules
    st.Sched.steps
    (if st.Sched.exhausted then " (space exhausted)" else "")

let check_protocol { Scenarios.name; scenario } =
  Printf.printf "  %s:\n%!" name;
  let ex = Sched.explore ~max_schedules:!schedules ~quota_seconds:!quota scenario in
  pp_stats "exhaustive" ex;
  let sa =
    Sched.sample ~samples:!random ~quota_seconds:!quota ~seed:!seed scenario
  in
  pp_stats "random" sa;
  ex.Sched.schedules + sa.Sched.schedules

let run_clean () =
  let selected =
    match !protocol with
    | "all" -> Scenarios.all ()
    | p -> (
      match
        List.find_opt (fun s -> s.Scenarios.name = p) (Scenarios.all ())
      with
      | Some s -> [ s ]
      | None ->
        prerr_endline ("fg_race_cli: unknown protocol " ^ p);
        exit 2)
  in
  Printf.printf "fg_race: exploring %d protocol(s)\n%!" (List.length selected);
  let counts = List.map check_protocol selected in
  Printf.printf "fg_race: OK — %d schedules, no violations\n%!" (List.fold_left ( + ) 0 counts);
  0

let run_seed_bug () =
  let scenario = Scenarios.snapshot_scenario ~unsafe:true () in
  match Sched.sample ~samples:!random ~quota_seconds:!quota ~seed:!seed scenario with
  | _ ->
    prerr_endline
      "fg_race_cli: FAIL — seeded reclamation bug survived exploration (checker is blind)";
    1
  | exception Sched.Violation _ ->
    Printf.printf "fg_race: OK — seeded reclamation bug caught as expected\n%!";
    0

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let code =
    if !seed_bug then run_seed_bug ()
    else
      try run_clean ()
      with Sched.Violation _ as e ->
        prerr_endline ("fg_race_cli: " ^ Printexc.to_string e);
        1
  in
  exit code
