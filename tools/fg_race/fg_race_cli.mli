(* fg_race_cli is a standalone executable (see the module header in
   fg_race_cli.ml for the exploration modes); nothing is exported. *)
