(** The lock-free protocols under test, instantiated over
    {!Traced_atomic}, plus ready-made {!Sched.scenario} values wiring each
    protocol's safety invariants in as per-step checks. *)

(** Epoch-reclaimed snapshot store over traced atomics. *)
module Tstore : Fg_graph.Snapshot_store.S

(** SPSC mailbox over traced atomics. *)
module Tmailbox : Fg_shard.Mailbox.S

(** Parallel-pool ticket gate over traced atomics. *)
module Tticket : module type of Fg_graph.Parallel.Ticket.Make (Traced_atomic)

(** The deliberate failure the ticket scenario records via
    [Tticket.fail]. *)
exception Seeded_failure

(** One writer publishing [publishes] generations, [readers] readers
    running pin/unpin cycles (reader 0 also nests). Checks the
    conservation law and that no pinned generation is ever reclaimed.
    [~unsafe:true] instantiates the store with the seeded
    reclaim-while-pinned bug, which exploration must catch. *)
val snapshot_scenario : ?readers:int -> ?publishes:int -> ?unsafe:bool -> unit -> Sched.scenario

(** One producer (two-phase reserve/commit), one consumer. Checks
    occupancy bounds and that the popped sequence is always a prefix of
    the committed sequence. *)
val mailbox_scenario : ?capacity:int -> ?items:int -> unit -> Sched.scenario

(** [workers + 1] workers racing for [workers] tickets plus the
    ticket-free caller, all dealing [items] indices. Checks every index is
    claimed at most once (exactly once at completion) and first-error-wins
    failure recording. *)
val ticket_scenario : ?workers:int -> ?items:int -> unit -> Sched.scenario

type named = { name : string; scenario : Sched.scenario }

(** The three protocols at their default sizes. *)
val all : unit -> named list
