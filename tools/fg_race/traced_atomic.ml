(* The recording atomics shim: same signature as Stdlib.Atomic
   (Fg_graph.Atomic_intf.S), but every operation is a scheduling point.
   All exploration runs on one domain, so a plain ref is a sound backing
   store; [Sched.yield] before the access makes the access itself the
   atomic step, giving exactly the interleavings a seq_cst execution of
   the real program could produce at atomic-op granularity. *)

type 'a t = 'a ref

let make v = ref v

let get r =
  Sched.yield ();
  !r

let set r v =
  Sched.yield ();
  r := v

let exchange r v =
  Sched.yield ();
  let old = !r in
  r := v;
  old

let compare_and_set r expected v =
  Sched.yield ();
  (* physical equality, like Stdlib.Atomic.compare_and_set (value
     equality for immediates) *)
  if !r == expected then begin
    r := v;
    true
  end
  else false

let fetch_and_add r n =
  Sched.yield ();
  let old = !r in
  r := old + n;
  old

let incr r = ignore (fetch_and_add r 1)
let decr r = ignore (fetch_and_add r (-1))
