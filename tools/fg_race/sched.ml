(* The fg_race scheduler: bounded-exhaustive + randomized exploration of
   thread interleavings over traced atomics.

   Model: a scenario is a set of cooperative threads (plain thunks) whose
   only preemption points are atomic operations — the traced shim
   ({!Traced_atomic}) calls {!yield} immediately before each operation,
   which performs an effect that suspends the thread and returns control
   here. Everything runs on ONE domain, so between two yields a thread's
   code is a single indivisible step, exactly the granularity of the
   OCaml memory model's interleaving semantics for a program whose only
   shared state is atomics (plus single-writer fields, whose ownership
   the lint layer enforces separately).

   Exploration re-executes the scenario from scratch once per schedule
   (threads must therefore be deterministic given a schedule). Exhaustive
   mode enumerates decision vectors in lexicographic order: each run
   records, at every step, which live thread was chosen out of how many;
   the next run flips the deepest decision that still has an untried
   alternative. This visits every distinct schedule exactly once, up to
   the schedule budget. Random mode samples uniform schedules from a
   seeded generator — cheap extra coverage beyond the depth the
   exhaustive frontier reaches within its budget. *)

type _ Effect.t += Yield : unit Effect.t

(* Traced operations only suspend while the scheduler is mid-step, so
   invariant checks (and any code outside an exploration) can call traced
   code without performing an unhandled effect. *)
let stepping = ref false (* fg-lint: single-writer scheduler — exploration is single-domain *)

let yield () = if !stepping then Effect.perform Yield

exception
  Violation of {
    schedule : int list;  (* thread ids chosen, oldest first *)
    step : int;  (* 1-based step at which the error surfaced *)
    error : exn;
  }

exception Step_budget_exceeded

let () =
  Printexc.register_printer (function
    | Violation { schedule; step; error } ->
      Some
        (Printf.sprintf "fg_race violation at step %d of schedule [%s]: %s" step
           (String.concat ";" (List.map string_of_int schedule))
           (Printexc.to_string error))
    | _ -> None)

type stats = { schedules : int; steps : int; exhausted : bool }

type scenario = unit -> (unit -> unit) array * (unit -> unit)

type thread_state =
  | Ready of (unit -> unit)
  | Paused of (unit, unit) Effect.Deep.continuation
  | Finished

(* Run one schedule. [choose ~nth ~live] picks an index into [live] (the
   ids of unfinished threads, ascending) at decision point [nth]. Returns
   the decision trace [(choice, nchoices, thread_id)] oldest first; an
   out-of-range choice is clamped to 0. *)
let run_one ?(max_steps = 20_000) ~choose scenario =
  let threads, check = scenario () in
  let n = Array.length threads in
  let state = Array.init n (fun i -> Ready threads.(i)) in
  let trace = ref [] in
  let nsteps = ref 0 in
  let handler i : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> state.(i) <- Finished);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some (fun (k : (a, unit) Effect.Deep.continuation) -> state.(i) <- Paused k)
          | _ -> None);
    }
  in
  let step i =
    match state.(i) with
    | Ready f -> Effect.Deep.match_with f () (handler i)
    | Paused k ->
      (* consume the continuation before resuming: if the thread yields
         again the handler re-parks it, otherwise it stays finished *)
      state.(i) <- Finished;
      Effect.Deep.continue k ()
    | Finished -> invalid_arg "Sched.run_one: stepping a finished thread"
  in
  let live () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      match state.(i) with Finished -> () | _ -> acc := i :: !acc
    done;
    !acc
  in
  let rec loop nth =
    match live () with
    | [] -> List.rev !trace
    | l ->
      let choices = List.length l in
      let c = choose ~nth ~live:l in
      let c = if c < 0 || c >= choices then 0 else c in
      let i = List.nth l c in
      incr nsteps;
      if !nsteps > max_steps then raise Step_budget_exceeded;
      trace := (c, choices, i) :: !trace;
      (try
         stepping := true;
         Fun.protect ~finally:(fun () -> stepping := false) (fun () -> step i);
         check ()
       with e ->
         let schedule = List.rev_map (fun (_, _, id) -> id) !trace in
         raise (Violation { schedule; step = !nsteps; error = e }));
      loop (nth + 1)
  in
  loop 0

let index_of x l =
  let rec go i = function [] -> None | y :: tl -> if y = x then Some i else go (i + 1) tl in
  go 0 l

(* Replay a recorded schedule of thread ids (e.g. from a Violation);
   beyond the prefix, or if the named thread already finished, run the
   first live thread. *)
let replay ?max_steps ~schedule scenario =
  let arr = Array.of_list schedule in
  ignore
    (run_one ?max_steps
       ~choose:(fun ~nth ~live ->
         if nth >= Array.length arr then 0
         else match index_of arr.(nth) live with Some i -> i | None -> 0)
       scenario
      : (int * int * int) list)

(* Run threads strictly one after another (thread 0 to completion, then
   thread 1, ...): the no-concurrency baseline schedule. *)
let run_sequential ?max_steps scenario =
  ignore (run_one ?max_steps ~choose:(fun ~nth:_ ~live:_ -> 0) scenario : (int * int * int) list)

let deadline_of = function
  | None -> None
  | Some q -> Some (Unix.gettimeofday () +. q)

let over_deadline = function
  | None -> false
  | Some d -> Unix.gettimeofday () > d

let explore ?(max_schedules = 10_000) ?max_steps ?quota_seconds scenario =
  let deadline = deadline_of quota_seconds in
  let schedules = ref 0 and steps = ref 0 in
  let rec go prefix =
    if !schedules >= max_schedules || over_deadline deadline then
      { schedules = !schedules; steps = !steps; exhausted = false }
    else begin
      let parr = Array.of_list prefix in
      let trace =
        run_one ?max_steps
          ~choose:(fun ~nth ~live:_ -> if nth < Array.length parr then parr.(nth) else 0)
          scenario
      in
      incr schedules;
      steps := !steps + List.length trace;
      (* lexicographic successor: flip the deepest decision that still
         has an untried alternative, drop everything after it *)
      let rec next rev_trace =
        match rev_trace with
        | [] -> None
        | (c, k, _) :: rest ->
          if c + 1 < k then
            (* [rest] is deepest-first; rev_map flips it back to oldest-first *)
            Some (List.rev_map (fun (c, _, _) -> c) rest @ [ c + 1 ])
          else next rest
      in
      match next (List.rev trace) with
      | None -> { schedules = !schedules; steps = !steps; exhausted = true }
      | Some prefix' -> go prefix'
    end
  in
  go []

let sample ?(samples = 1_000) ?max_steps ?quota_seconds ~seed scenario =
  let deadline = deadline_of quota_seconds in
  let st = Random.State.make [| seed; 0x5EED |] in
  let schedules = ref 0 and steps = ref 0 in
  while !schedules < samples && not (over_deadline deadline) do
    let trace =
      run_one ?max_steps
        ~choose:(fun ~nth:_ ~live -> Random.State.int st (List.length live))
        scenario
    in
    incr schedules;
    steps := !steps + List.length trace
  done;
  { schedules = !schedules; steps = !steps; exhausted = false }
