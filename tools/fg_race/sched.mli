(** The fg_race interleaving scheduler.

    Threads are cooperative thunks whose only preemption points are
    traced atomic operations ({!Traced_atomic} calls {!yield} before each
    one); a schedule is the sequence of which-thread-steps-next choices.
    Exploration re-runs the scenario from scratch per schedule —
    exhaustively in lexicographic order up to a budget ({!explore}), or
    by seeded uniform sampling ({!sample}). The per-step [check] callback
    asserts protocol invariants between any two atomic operations; its
    failure is wrapped in {!Violation} together with the offending
    schedule, which {!replay} re-executes deterministically. *)

(** Suspend the calling thread at a scheduling point. No-op outside an
    exploration step, so invariant checks can call traced code freely. *)
val yield : unit -> unit

exception
  Violation of {
    schedule : int list;  (** thread ids stepped, oldest first *)
    step : int;  (** 1-based step at which the error surfaced *)
    error : exn;  (** the underlying assertion/exception *)
  }

(** Raised (inside {!Violation}) when one run exceeds [max_steps] —
    almost always a livelock (a spin loop that only another thread can
    release) exposed by an adversarial schedule. *)
exception Step_budget_exceeded

type stats = {
  schedules : int;  (** distinct schedules executed *)
  steps : int;  (** total atomic steps across all runs *)
  exhausted : bool;  (** true iff the whole space was covered *)
}

(** A fresh instance per run: [(threads, check)]. Threads must be
    deterministic given a schedule; [check] runs after every step. *)
type scenario = unit -> (unit -> unit) array * (unit -> unit)

(** Depth-first lexicographic enumeration of distinct schedules, stopping
    at [max_schedules] (default 10_000), [quota_seconds], or full
    coverage. [max_steps] (default 20_000) bounds a single run. *)
val explore : ?max_schedules:int -> ?max_steps:int -> ?quota_seconds:float -> scenario -> stats

(** [sample ~seed] runs uniformly random schedules ([samples] of them,
    default 1_000). *)
val sample : ?samples:int -> ?max_steps:int -> ?quota_seconds:float -> seed:int -> scenario -> stats

(** Re-execute one recorded schedule (from {!Violation.schedule}). *)
val replay : ?max_steps:int -> schedule:int list -> scenario -> unit

(** Thread 0 to completion, then thread 1, ... — the no-concurrency
    baseline the QCheck differential test compares against. *)
val run_sequential : ?max_steps:int -> scenario -> unit
