(* The three lock-free protocols, instantiated over traced atomics and
   wrapped as fg_race scenarios with their safety invariants as per-step
   checks. Each scenario builds fresh protocol state per run (the
   scheduler re-executes from scratch once per schedule); scenario-level
   bookkeeping (pinned generations, committed/popped logs, claim counts)
   is plain mutable state written in the same indivisible step as the
   protocol operation it records, so the checks never observe a torn
   update of the bookkeeping itself. *)

module Tstore = Fg_graph.Snapshot_store.Make (Traced_atomic)
module Tmailbox = Fg_shard.Mailbox.Make (Traced_atomic)
module Tticket = Fg_graph.Parallel.Ticket.Make (Traced_atomic)

exception Seeded_failure

(* ---- snapshot store: epoch reclamation ----

   Writer publishes [publishes] generations; each reader registers, then
   runs pin / (nested pin) / unpin cycles, recording which generation it
   currently holds. Invariants, checked between every two atomic steps:

   - conservation: every published snapshot is current, retired, or
     reclaimed. The counters lag the current-pointer store by at most the
     in-flight publish, so [reclaimed + retired + current - published]
     is 0 (quiescent) or 1 (between the first publish's current-store and
     its epoch bump).
   - reclamation safety: no generation a reader has pinned (and not yet
     unpinned) ever appears in the store's reclaim log. With
     [~unsafe:true] the store drops the announced-epoch horizon — the
     seeded reclamation bug the checker must catch. *)

let snapshot_scenario ?(readers = 2) ?(publishes = 3) ?(unsafe = false) () : Sched.scenario =
 fun () ->
  let store = Tstore.create ~unsafe_no_epoch_check:unsafe ~log_reclaims:true () in
  let pinned = Array.make readers (-1) in
  let writer () =
    for g = 1 to publishes do
      Tstore.publish store ~gen:g g
    done
  in
  let cycle r i =
    (* pin can find nothing published early on: bounded retries, each
       attempt costs scheduling points so this cannot livelock *)
    let rec attempt tries =
      if tries > 0 then
        match Tstore.pin r with
        | s ->
          pinned.(i) <- s.Tstore.gen;
          if i = 0 then begin
            (* nested pin: the outer announcement must keep protecting *)
            let s2 = Tstore.pin r in
            ignore (s2 : int Tstore.snapshot);
            Tstore.unpin r
          end;
          Tstore.unpin r;
          pinned.(i) <- -1
        | exception Invalid_argument _ -> attempt (tries - 1)
    in
    attempt 3
  in
  let reader i () =
    let r = Tstore.reader store in
    cycle r i;
    cycle r i
  in
  let check () =
    let st = Tstore.stats store in
    let cur = match Tstore.peek store with Some _ -> 1 | None -> 0 in
    let d = st.Tstore.reclaimed + st.Tstore.retired + cur - st.Tstore.published in
    if d <> 0 && d <> 1 then
      failwith
        (Printf.sprintf "conservation violated: published=%d retired=%d reclaimed=%d current=%d"
           st.Tstore.published st.Tstore.retired st.Tstore.reclaimed cur);
    let dropped = Tstore.reclaim_log store in
    Array.iteri
      (fun i g ->
        if g >= 0 && List.mem g dropped then
          failwith (Printf.sprintf "reader %d holds pinned gen %d after it was reclaimed" i g))
      pinned
  in
  (Array.init (readers + 1) (fun i -> if i = 0 then writer else reader (i - 1)), check)

(* ---- SPSC mailbox: two-phase produce, FIFO consume ----

   One producer runs reserve/commit cycles (bounded retries when full),
   one consumer pops. Invariants: occupancy stays within [0, capacity],
   and the popped sequence is always a prefix of the committed sequence
   (in order) — which fails if the tail is ever published before the slot
   write lands, if a slot is reused before commit, or if FIFO order
   breaks. *)

let mailbox_scenario ?(capacity = 2) ?(items = 4) () : Sched.scenario =
 fun () ->
  let mb = Tmailbox.create ~capacity () in
  let committed = ref [] in
  let popped = ref [] in
  let producer () =
    for v = 1 to items do
      let rec try_push tries =
        if tries > 0 then
          match Tmailbox.reserve mb with
          | None ->
            (* full: burn a scheduling point so the consumer can drain,
               then retry (bounded — a persistently full box drops) *)
            ignore (Tmailbox.length mb : int);
            try_push (tries - 1)
          | Some slot ->
            (* record before the publishing store: the check may run
               between the tail store and this thread's next step *)
            committed := v :: !committed;
            Tmailbox.commit mb slot v
      in
      try_push 4
    done
  in
  let consumer () =
    for _ = 1 to 2 * items do
      match Tmailbox.pop mb with
      | Some v -> popped := v :: !popped
      | None -> ()
    done
  in
  let check () =
    let len = Tmailbox.length mb in
    if len < 0 || len > Tmailbox.capacity mb then
      failwith (Printf.sprintf "occupancy %d outside [0,%d]" len (Tmailbox.capacity mb));
    let rec is_prefix p c =
      match (p, c) with
      | [], _ -> true
      | x :: p', y :: c' -> x = y && is_prefix p' c'
      | _ :: _, [] -> false
    in
    if not (is_prefix (List.rev !popped) (List.rev !committed)) then
      failwith "popped sequence is not a prefix of the committed sequence (FIFO/commit broken)"
  in
  ([| producer; consumer |], check)

(* ---- parallel work tickets: claim-exactly-once ----

   [workers + 1] worker threads race for [workers] tickets (so exactly
   one sits the job out) plus the ticket-free caller; all participants
   deal indices from the shared counter. Invariants: no index is ever
   claimed twice; when every thread has finished, every index was claimed
   exactly once and the seeded failure is the recorded first failure. *)

let ticket_scenario ?(workers = 2) ?(items = 4) () : Sched.scenario =
 fun () ->
  let nthreads = workers + 2 in
  let gate = Tticket.create ~participants:workers in
  let claims = Array.make items 0 in
  let finished = Array.make nthreads false in
  let joined = Array.make nthreads false in
  let claim_loop () =
    let rec loop () =
      match Tticket.next_index gate ~limit:items with
      | Some i ->
        claims.(i) <- claims.(i) + 1;
        if i = items - 1 then Tticket.fail gate Seeded_failure;
        loop ()
      | None -> ()
    in
    loop ()
  in
  let caller () =
    (* the calling domain participates without a ticket *)
    claim_loop ();
    finished.(0) <- true
  in
  let worker t () =
    if Tticket.join gate then begin
      joined.(t) <- true;
      claim_loop ()
    end;
    finished.(t) <- true
  in
  let check () =
    Array.iteri
      (fun i c -> if c > 1 then failwith (Printf.sprintf "index %d claimed %d times" i c))
      claims;
    if Array.for_all (fun f -> f) finished then begin
      Array.iteri
        (fun i c -> if c <> 1 then failwith (Printf.sprintf "index %d claimed %d times" i c))
        claims;
      let njoined = Array.fold_left (fun acc j -> if j then acc + 1 else acc) 0 joined in
      if njoined > workers then
        failwith (Printf.sprintf "%d workers joined with only %d tickets" njoined workers);
      match Tticket.failure gate with
      | Some Seeded_failure -> ()
      | Some e -> failwith ("unexpected recorded failure: " ^ Printexc.to_string e)
      | None -> failwith "recorded failure lost"
    end
  in
  (Array.init nthreads (fun i -> if i = 0 then caller else worker i), check)

type named = { name : string; scenario : Sched.scenario }

let all () =
  [
    { name = "snapshot"; scenario = snapshot_scenario () };
    { name = "mailbox"; scenario = mailbox_scenario () };
    { name = "ticket"; scenario = ticket_scenario () };
  ]
