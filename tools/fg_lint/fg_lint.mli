(* fg_lint is a standalone executable (see the module header in
   fg_lint.ml for the rule registry and usage); nothing is exported. *)
