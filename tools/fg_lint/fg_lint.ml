(* fg_lint — a compiler-libs lint pass that enforces the heal-path
   discipline of ARCHITECTURE.md as checkable rules instead of prose.

   The tool parses each [.ml] with the host compiler's parser
   ([Parse.implementation]) and walks the parsetree; no typechecking is
   performed, so rules that are really about types (R3) use a small
   syntactic type-guess pass that only fires on high-confidence evidence
   (annotations, known producers like [Adjacency.neighbors] or
   [List.sort Node_id.compare]). False negatives are acceptable; false
   positives are not — every rule errs on the side of silence.

   Rules (see ARCHITECTURE.md "Static analysis & sanitizers"):
     R1  no list-returning [Adjacency.neighbors] in hot-path modules
     R2  no [Hashtbl.hash] applied to tuple/constructor literals
     R3  no polymorphic [=]/[<>]/[compare]/[List.mem] on Node_id/Edge
     R4  allocating trace/metrics emission must be guarded by a
         recorder/[?events]/[Trace.enabled]/[Metrics.is_recording] check
     R5  every module under the configured roots has a matching [.mli]

   Suppression: a [(* fg-lint: allow R3 *)] comment anywhere on the
   offending line (or [allow all]). Configuration lives in fg_lint.conf.

   Usage:
     fg_lint [--conf FILE] [--json] [--only R1,R3] [--list-rules] PATH...
   Exit codes: 0 clean, 1 findings at severity error, 2 usage/IO error. *)

let version = "1.0"

(* ---------------- rule registry ---------------- *)

type severity = Error | Warning

type rule = { id : string; severity : severity; summary : string }

let rules : rule list =
  [
    {
      id = "R1";
      severity = Error;
      summary =
        "list-returning Adjacency.neighbors in a hot-path module (use \
         iter_neighbors/fold_neighbors/neighbors_into)";
    };
    {
      id = "R2";
      severity = Error;
      summary =
        "Hashtbl.hash applied to a tuple/constructor literal (boxes a fresh \
         value per call; use an arithmetic mix)";
    };
    {
      id = "R3";
      severity = Error;
      summary =
        "polymorphic =/<>/compare/List.mem on Node_id.t or Edge.t (use \
         Node_id.equal/Edge.equal and friends)";
    };
    {
      id = "R4";
      severity = Error;
      summary =
        "allocating trace/metrics/profile emission not guarded by a \
         recorder/?events/Trace.enabled/Metrics.is_recording/Profile.enabled \
         check";
    };
    { id = "R5"; severity = Error; summary = "module has no matching .mli" };
    {
      id = "R6";
      severity = Error;
      summary =
        "naked mutable state in a concurrency-scoped module (make it Atomic.t \
         / Bigarray, or declare ownership with a (* fg-lint: single-writer \
         <role> *) / guarded-by pragma)";
    };
    {
      id = "R7";
      severity = Error;
      summary =
        "unbalanced paired protocol calls (pin/unpin, reserve/commit, \
         stage/commit_stage) within a top-level binding, or a pin that can \
         escape on an exception path (use with_pin or Fun.protect)";
    };
    {
      id = "R8";
      severity = Error;
      summary =
        "Domain.spawn/Domain.join/Mutex/Condition outside the sanctioned \
         domain-management modules (route concurrency through Parallel)";
    };
    {
      id = "R9";
      severity = Error;
      summary =
        "blocking call (Unix.sleep*, Condition.wait, Mutex.lock, \
         Parallel.await) while a snapshot is pinned or a mailbox slot is \
         reserved";
    };
  ]

let rule_by_id id = List.find_opt (fun r -> r.id = id) rules

type finding = {
  f_rule : string;
  f_severity : severity;
  f_file : string;
  f_line : int;
  f_col : int;
  f_msg : string;
}

let findings : finding list ref = ref []

let report ~rule ~loc msg =
  let r =
    match rule_by_id rule with
    | Some r -> r
    | None -> invalid_arg ("unknown rule " ^ rule)
  in
  let pos = loc.Location.loc_start in
  findings :=
    {
      f_rule = r.id;
      f_severity = r.severity;
      f_file = pos.Lexing.pos_fname;
      f_line = pos.Lexing.pos_lnum;
      f_col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
      f_msg = msg;
    }
    :: !findings

(* ---------------- configuration ---------------- *)

type conf = {
  mutable enabled : string list; (* rule ids *)
  mutable hot_modules : string list; (* R1 scope: path prefixes *)
  mutable obs_modules : string list; (* R4 scope *)
  mutable mli_required : string list; (* R5 scope *)
  mutable conc_modules : string list; (* R6/R7/R9 scope *)
  mutable domain_sanctioned : string list; (* modules exempt from R8 *)
}

let default_conf () =
  {
    enabled = List.map (fun r -> r.id) rules;
    hot_modules = [ "lib/core"; "lib/graph/csr.ml"; "lib/graph/bfs.ml"; "lib/sim" ];
    obs_modules = [ "lib/core"; "lib/sim" ];
    mli_required = [ "lib" ];
    conc_modules =
      [
        "lib/graph/snapshot_store.ml";
        "lib/graph/parallel.ml";
        "lib/shard/mailbox.ml";
        "lib/shard/shard_engine.ml";
        "lib/serve";
      ];
    domain_sanctioned = [ "lib/graph/parallel.ml" ];
  }

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char ',')
  |> List.filter (fun t -> t <> "")

let load_conf path =
  let conf = default_conf () in
  let ic = open_in path in
  (try
     while true do
       let line = input_line ic in
       let line =
         match String.index_opt line '#' with
         | Some i -> String.sub line 0 i
         | None -> line
       in
       match String.index_opt line '=' with
       | None -> ()
       | Some i ->
         let key = String.trim (String.sub line 0 i) in
         let v = String.sub line (i + 1) (String.length line - i - 1) in
         let vals = split_ws (String.trim v) in
         (match key with
         | "rules" -> conf.enabled <- vals
         | "hot_modules" -> conf.hot_modules <- vals
         | "obs_modules" -> conf.obs_modules <- vals
         | "mli_required" -> conf.mli_required <- vals
         | "conc_modules" -> conf.conc_modules <- vals
         | "domain_sanctioned" -> conf.domain_sanctioned <- vals
         | _ ->
           Printf.eprintf "fg_lint: %s: unknown key %S (ignored)\n" path key)
     done
   with End_of_file -> ());
  close_in ic;
  conf

(* normalise ./foo//bar/../baz to the segment list [foo; baz] for scope
   matching *)
let normalize path =
  let parts =
    String.split_on_char '/' path |> List.filter (fun p -> p <> "" && p <> ".")
  in
  let rec collapse acc = function
    | [] -> List.rev acc
    | ".." :: rest -> (
      match acc with
      | top :: acc' when top <> ".." -> collapse acc' rest
      | _ -> collapse (".." :: acc) rest)
    | p :: rest -> collapse (p :: acc) rest
  in
  collapse [] parts

(* a scope matches when its segments appear contiguously, segment-aligned,
   anywhere in the file path — so "lib/core" covers lib/core/rt.ml whether
   the tool sees a repo-relative path, an absolute one, or a _build copy *)
let in_scope scope file =
  let fsegs = normalize file in
  let seg_prefix psegs l =
    let rec pre a b =
      match (a, b) with
      | [], _ -> true
      | x :: a', y :: b' when String.equal x y -> pre a' b'
      | _ -> false
    in
    pre psegs l
  in
  List.exists
    (fun p ->
      let psegs = normalize p in
      let rec at = function
        | [] -> false
        | _ :: tl as l -> seg_prefix psegs l || at tl
      in
      psegs <> [] && at fsegs)
    scope

(* ---------------- pragma suppression ---------------- *)

(* [pragmas.(line)] = rule ids allowed on that 1-based line ("all" allows
   everything). Scanned textually: the pragma is a comment, and comments
   are not part of the parsetree. *)
let scan_pragmas text =
  let tbl = Hashtbl.create 8 in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let needle = "fg-lint: allow" in
      let nlen = String.length needle and llen = String.length line in
      let rec find j =
        if j + nlen > llen then ()
        else if String.sub line j nlen = needle then begin
          (* ids up to the end of the comment *)
          let rest = String.sub line (j + nlen) (llen - j - nlen) in
          let rest =
            match String.index_opt rest '*' with
            | Some k -> String.sub rest 0 k
            | None -> rest
          in
          Hashtbl.replace tbl (i + 1) (split_ws rest)
        end
        else find (j + 1)
      in
      find 0)
    lines;
  tbl

let suppressed pragmas rule line =
  match Hashtbl.find_opt pragmas line with
  | None -> false
  | Some ids -> List.mem "all" ids || List.mem rule ids

(* Ownership pragmas for R6: a mutable field / module-level ref whose line
   carries [(* fg-lint: single-writer <role> *)] or
   [(* fg-lint: guarded-by <lock> *)] declares who may write it, which is
   what the rule is really after — undocumented shared mutability. *)
let scan_ownership text =
  let tbl = Hashtbl.create 8 in
  let has_needle line needle =
    let nlen = String.length needle and llen = String.length line in
    let rec find j =
      if j + nlen > llen then false
      else String.sub line j nlen = needle || find (j + 1)
    in
    find 0
  in
  List.iteri
    (fun i line ->
      if has_needle line "fg-lint: single-writer" || has_needle line "fg-lint: guarded-by" then
        Hashtbl.replace tbl (i + 1) ())
    (String.split_on_char '\n' text);
  tbl

(* ---------------- Longident helpers ---------------- *)

let flatten lid = Longident.flatten lid

let rec last_two = function
  | [ a; b ] -> Some (a, b)
  | _ :: tl -> last_two tl
  | [] -> None

let last l = match List.rev l with x :: _ -> Some x | [] -> None

(* does the path end in [Module.name]? (any prefix, e.g. Fg_graph.Adjacency) *)
let ends_in lid (m, name) =
  match last_two (flatten lid) with Some (a, b) -> a = m && b = name | None -> false

(* ---------------- R3 type guesses ---------------- *)

type ty = Node | Edge | NodeList | EdgeList | TyRef of ty | Unknown

let elem = function NodeList -> Node | EdgeList -> Edge | _ -> Unknown
let listify = function Node -> NodeList | Edge -> EdgeList | _ -> Unknown
let is_scalar = function Node | Edge -> true | _ -> false
let is_list = function NodeList | EdgeList -> true | _ -> false

let ty_name = function
  | Node -> "Node_id.t"
  | Edge -> "Edge.t"
  | NodeList -> "Node_id.t list"
  | EdgeList -> "Edge.t list"
  | TyRef _ -> "ref"
  | Unknown -> "?"

open Parsetree

let rec ty_of_core_type (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, []) -> (
    match last_two (flatten txt) with
    | Some ("Node_id", "t") -> Node
    | Some ("Edge", "t") -> Edge
    | _ -> Unknown)
  | Ptyp_constr ({ txt = Lident "list"; _ }, [ t' ]) -> listify (ty_of_core_type t')
  | Ptyp_constr ({ txt = Lident "ref"; _ }, [ t' ]) -> TyRef (ty_of_core_type t')
  | _ -> Unknown

type env = (string * ty) list

let join a b = if a = b then a else Unknown

(* known producers; called only for applications with at least one arg *)
let rec apply_ty (env : env) fn (args : (Asttypes.arg_label * expression) list) =
  let unlabeled =
    List.filter_map
      (function Asttypes.Nolabel, e -> Some e | _ -> None)
      args
  in
  let arg n = List.nth_opt unlabeled n in
  let arg_ty n = match arg n with Some e -> ty_of env e | None -> Unknown in
  match fn.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    let path = flatten txt in
    match last_two path with
    | Some ("Adjacency", ("neighbors" | "nodes")) -> NodeList
    | Some ("Set", "elements") when List.mem "Node_id" path -> NodeList
    | Some ("List", "hd") -> elem (arg_ty 0)
    | Some ("List", ("rev" | "tl")) -> arg_ty 0
    | Some ("List", ("filter" | "sort_uniq")) -> arg_ty 1
    | Some ("List", "append") -> join (arg_ty 0) (arg_ty 1)
    | Some ("List", "sort") -> (
      match arg 0 with
      | Some { pexp_desc = Pexp_ident { txt = cmp; _ }; _ }
        when ends_in cmp ("Node_id", "compare") -> NodeList
      | Some { pexp_desc = Pexp_ident { txt = cmp; _ }; _ }
        when ends_in cmp ("Edge", "compare") -> EdgeList
      | _ -> arg_ty 1)
    | Some ("Rng", "pick") -> elem (arg_ty 1)
    | _ -> (
      match path with
      | [ "ref" ] -> TyRef (arg_ty 0)
      | [ "!" ] -> ( match arg_ty 0 with TyRef t -> t | _ -> Unknown)
      | [ "@" ] -> join (arg_ty 0) (arg_ty 1)
      | _ -> Unknown))
  | Pexp_field (_, { txt = fld; _ }) -> (
    (* accessor-record calls: [h.Healer.live_nodes ()] *)
    match last (flatten fld) with Some "live_nodes" -> NodeList | _ -> Unknown)
  | _ -> Unknown

and ty_of (env : env) (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident x; _ } -> (
    match List.assoc_opt x env with Some t -> t | None -> Unknown)
  | Pexp_constraint (_, t) -> ty_of_core_type t
  | Pexp_apply (fn, args) -> apply_ty env fn args
  | Pexp_construct ({ txt = Lident "::"; _ }, Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ })
    -> (
    match ty_of env hd with
    | (Node | Edge) as t -> listify t
    | _ -> ( match ty_of env tl with (NodeList | EdgeList) as l -> l | _ -> Unknown))
  | Pexp_ifthenelse (_, t, Some f) -> join (ty_of env t) (ty_of env f)
  | Pexp_sequence (_, e') | Pexp_letmodule (_, _, e') | Pexp_open (_, e') ->
    ty_of env e'
  | Pexp_let (_, _, _) -> Unknown (* body env differs; stay conservative *)
  | _ -> Unknown

(* extend [env] by matching [pat] against a value of type [t] *)
let rec bind_pat (env : env) (pat : pattern) (t : ty) =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> (txt, t) :: env
  | Ppat_alias (p, { txt; _ }) -> (txt, t) :: bind_pat env p t
  | Ppat_constraint (p, ct) -> bind_pat env p (ty_of_core_type ct)
  | Ppat_construct
      ({ txt = Lident "::"; _ }, Some (_, { ppat_desc = Ppat_tuple [ h; tl ]; _ }))
    ->
    let env = bind_pat env h (elem t) in
    bind_pat env tl t
  | Ppat_construct (_, Some (_, p)) -> bind_pat env p Unknown
  | Ppat_tuple ps -> List.fold_left (fun env p -> bind_pat env p Unknown) env ps
  | Ppat_or (a, b) -> bind_pat (bind_pat env a t) b t
  | _ -> env

(* ---------------- R4 helpers ---------------- *)

let emission_target lid =
  match last_two (flatten lid) with
  | Some ("Trace", (("count" | "count_span" | "attr" | "point") as f)) ->
    Some ("Trace." ^ f)
  | Some ("Metrics", (("incr" | "observe") as f)) -> Some ("Metrics." ^ f)
  | Some ("Profile", (("stamp" | "record_ns") as f)) -> Some ("Profile." ^ f)
  | Some ("Hdr", (("record" | "record_sharded") as f)) -> Some ("Hdr." ^ f)
  | _ -> None

(* an argument whose evaluation may allocate at the call site: anything
   but constants, variables, field loads and int arithmetic on those *)
let rec allocating_expr (e : expression) =
  match e.pexp_desc with
  | Pexp_constant _ | Pexp_ident _ -> false
  | Pexp_construct (_, None) -> false
  | Pexp_field (e', _) -> allocating_expr e'
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident op; _ }; _ }, args)
    when List.mem op
           [ "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr" ]
    ->
    List.exists (fun (_, a) -> allocating_expr a) args
  | _ -> true

let allocating_arg (lbl : Asttypes.arg_label) (e : expression) =
  match lbl with
  | Asttypes.Nolabel -> allocating_expr e
  | Asttypes.Labelled _ | Asttypes.Optional _ ->
    (* every labelled arg of an emission function is optional in Fg_obs
       ([?n], [?attrs]), so the call site boxes a [Some _] per call —
       allocating no matter how cheap the payload expression is *)
    ignore e;
    true

(* does this guard condition check whether observability is on? *)
let obs_guard_cond (e : expression) =
  let found = ref false in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
            (match last (flatten txt) with
            | Some ("events" | "record" | "recorder") -> found := true
            | _ -> ());
            if
              ends_in txt ("Trace", "enabled")
              || ends_in txt ("Metrics", "is_recording")
              || ends_in txt ("Profile", "enabled")
            then found := true)
          | Pexp_field (_, { txt; _ }) -> (
            match last (flatten txt) with
            | Some ("events" | "recorder") -> found := true
            | _ -> ())
          | _ -> ());
          default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

let mentions_recorder (e : expression) =
  let found = ref false in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } | Pexp_field (_, { txt; _ }) -> (
            match last (flatten txt) with
            | Some "recorder" -> found := true
            | _ -> ())
          | _ -> ());
          default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* ---------------- R6 helpers ---------------- *)

(* a type that is intrinsically safe to share: an atomic cell, or an
   off-heap Bigarray (written through a published index protocol the lint
   cannot see, but racing on which cannot corrupt the OCaml heap) *)
let rec r6_safe_core_type (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, args) ->
    let path = flatten txt in
    (match last_two path with Some ("Atomic", "t") -> true | _ -> List.mem "Bigarray" path)
    || List.exists r6_safe_core_type args
  | _ -> false

(* module-level [let x = ref e] (possibly under a type constraint) *)
let rec is_ref_binding (e : expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident "ref"; _ }; _ }, _) -> true
  | Pexp_constraint (e', _) -> is_ref_binding e'
  | _ -> false

(* ---------------- R8 classification ---------------- *)

(* Domain.self / recommended_domain_count are pure queries and stay legal
   everywhere (the sharded HDR histograms key on Domain.self); only
   lifecycle and lock primitives are corralled into sanctioned modules. *)
let r8_target lid =
  match last_two (flatten lid) with
  | Some ("Domain", (("spawn" | "join") as f)) -> Some ("Domain." ^ f)
  | Some ("Mutex", f) -> Some ("Mutex." ^ f)
  | Some ("Condition", f) -> Some ("Condition." ^ f)
  | _ -> None

(* ---------------- R7/R9 protocol-pair events ---------------- *)

(* The paired protocols the serving tier leans on. Matching is by the
   distinctive final name: [pin]/[unpin]/[with_pin] bind tightly enough to
   match bare, the generic names ([reserve], [commit], [abort], [stage],
   [commit_stage]) only count module-qualified. [Rt.stage]/[commit_stage]
   is registered for completeness but commits are usually cross-function
   (the stage lives in a record field), which per-binding analysis cannot
   see — conservative, never a false positive. *)
type pair = Pin | Slot | Stage

let pair_count = 3
let pair_idx = function Pin -> 0 | Slot -> 1 | Stage -> 2
let pair_name = function
  | Pin -> "Snapshot_store.pin/unpin"
  | Slot -> "Mailbox.reserve/commit"
  | Stage -> "Rt.stage/commit_stage"

type pair_class = POpen of pair | PClose of pair | PWith_pin | PNone

let classify_pair path =
  match List.rev path with
  | "pin" :: _ -> POpen Pin
  | "unpin" :: _ -> PClose Pin
  | "with_pin" :: _ -> PWith_pin
  | "reserve" :: _ :: _ -> POpen Slot
  | ("commit" | "abort") :: _ :: _ -> PClose Slot
  | "stage" :: _ :: _ -> POpen Stage
  | "commit_stage" :: _ :: _ -> PClose Stage
  | _ -> PNone

(* calls that park the calling domain (or sleep it): poison while holding
   a pin or a reserved slot — a stalled reader stalls reclamation for
   everyone, a stalled producer wedges the SPSC ring *)
let classify_blocking path =
  match last_two path with
  | Some ("Unix", (("sleep" | "sleepf") as f)) -> Some ("Unix." ^ f)
  | Some ("Condition", "wait") -> Some "Condition.wait"
  | Some ("Mutex", "lock") -> Some "Mutex.lock"
  | Some ("Parallel", "await") -> Some "Parallel.await"
  | _ -> ( match path with [ "await" ] -> Some "await" | _ -> None)

let is_raise_name path =
  match last path with
  | Some ("raise" | "raise_notrace" | "failwith" | "invalid_arg") -> true
  | None | Some _ -> false

type pevent =
  | Ev_open of pair * Location.t
  | Ev_close of pair * Location.t
  | Ev_block of string * Location.t
  | Ev_raise of Location.t

let rec has_exception_pat (p : pattern) =
  match p.ppat_desc with
  | Ppat_exception _ -> true
  | Ppat_or (a, b) -> has_exception_pat a || has_exception_pat b
  | _ -> false

(* Linearize one top-level binding into protocol events, in source order.
   [sr] ("suppress raises") is set inside exception-safe regions — the
   body of [Fun.protect ~finally] and the body of a [try]/[match ... with
   exception ...] — where an escaping exception still runs the close. *)
let collect_pevents (top : expression) =
  let acc = ref [] in
  let push ev = acc := ev :: !acc in
  let rec go ~sr (e : expression) =
    match e.pexp_desc with
    | Pexp_apply (fn, args) -> (
      match fn.pexp_desc with
      | Pexp_ident { txt; _ } when ends_in txt ("Fun", "protect") ->
        let fin, rest =
          List.partition (fun (l, _) -> l = Asttypes.Labelled "finally") args
        in
        List.iter (fun (_, a) -> go ~sr:true a) rest;
        List.iter (fun (_, a) -> go ~sr a) fin
      | Pexp_ident { txt; _ } -> (
        let path = flatten txt in
        if (not sr) && is_raise_name path then push (Ev_raise e.pexp_loc);
        match classify_pair path with
        | PWith_pin ->
          push (Ev_open (Pin, e.pexp_loc));
          List.iter (fun (_, a) -> go ~sr a) args;
          push (Ev_close (Pin, e.pexp_loc))
        | POpen p ->
          push (Ev_open (p, e.pexp_loc));
          List.iter (fun (_, a) -> go ~sr a) args
        | PClose p ->
          push (Ev_close (p, e.pexp_loc));
          List.iter (fun (_, a) -> go ~sr a) args
        | PNone ->
          (match classify_blocking path with
          | Some name -> push (Ev_block (name, e.pexp_loc))
          | None -> ());
          List.iter (fun (_, a) -> go ~sr a) args)
      | _ ->
        go ~sr fn;
        List.iter (fun (_, a) -> go ~sr a) args)
    | Pexp_try (body, cases) ->
      go ~sr:true body;
      List.iter
        (fun c ->
          Option.iter (go ~sr) c.pc_guard;
          go ~sr c.pc_rhs)
        cases
    | Pexp_match (scrut, cases) when List.exists (fun c -> has_exception_pat c.pc_lhs) cases
      ->
      go ~sr:true scrut;
      List.iter
        (fun c ->
          Option.iter (go ~sr) c.pc_guard;
          go ~sr c.pc_rhs)
        cases
    | _ ->
      let open Ast_iterator in
      let it = { default_iterator with expr = (fun _ e' -> go ~sr e') } in
      default_iterator.expr it e
  in
  go ~sr:false top;
  List.rev !acc

(* ---------------- per-file lint context ---------------- *)

type lint_ctx = {
  file : string;
  conf : conf;
  pragmas : (int, string list) Hashtbl.t;
  ownership : (int, unit) Hashtbl.t; (* lines with single-writer/guarded-by *)
  hot : bool; (* R1 applies *)
  obs : bool; (* R4 applies *)
  conc : bool; (* R6/R7/R9 apply *)
  sanctioned : bool; (* exempt from R8 *)
}

let rule_on ctx id = List.mem id ctx.conf.enabled

let emit ctx ~rule ~loc msg =
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  if rule_on ctx rule && not (suppressed ctx.pragmas rule line) then
    report ~rule ~loc msg

let owned ctx loc = Hashtbl.mem ctx.ownership loc.Location.loc_start.Lexing.pos_lnum

(* R7/R9 over one binding's linearized events: walk the sequence tracking
   per-pair depth; a blocking call at positive depth is R9, a raise at
   positive pin depth (outside an exception-safe region — those raises
   were already suppressed by the collector) is R7, and any depth left
   open at the end of the binding is R7. Extra closes are legal: a
   release-helper binding closes a pair its caller opened. *)
let analyze_pevents ctx ~(binding_loc : Location.t) events =
  if ctx.conc && (rule_on ctx "R7" || rule_on ctx "R9") then begin
    let depth = Array.make pair_count 0 in
    let last_open = Array.make pair_count binding_loc in
    let held () =
      let h = ref [] in
      List.iter
        (fun p -> if depth.(pair_idx p) > 0 then h := pair_name p :: !h)
        [ Stage; Slot; Pin ];
      !h
    in
    List.iter
      (function
        | Ev_open (p, loc) ->
          depth.(pair_idx p) <- depth.(pair_idx p) + 1;
          last_open.(pair_idx p) <- loc
        | Ev_close (p, _) -> depth.(pair_idx p) <- max 0 (depth.(pair_idx p) - 1)
        | Ev_block (name, loc) -> (
          match held () with
          | [] -> ()
          | hs ->
            emit ctx ~rule:"R9" ~loc
              (Printf.sprintf
                 "blocking call %s while holding %s; release before blocking (a parked \
                  holder stalls reclamation / wedges the ring)"
                 name (String.concat ", " hs)))
        | Ev_raise loc ->
          if depth.(pair_idx Pin) > 0 then
            emit ctx ~rule:"R7" ~loc
              "exception raised while a snapshot is pinned: the pin escapes if this \
               path is taken; use with_pin or Fun.protect ~finally:unpin")
      events;
    List.iter
      (fun p ->
        let i = pair_idx p in
        if depth.(i) > 0 then
          emit ctx ~rule:"R7" ~loc:last_open.(i)
            (Printf.sprintf
               "%d %s open(s) without a matching close in this binding (the resource \
                escapes; close on every path)"
               depth.(i) (pair_name p)))
      [ Pin; Slot; Stage ]
  end

(* R6 over one type declaration: every mutable field in a
   concurrency-scoped module must be atomically typed, a Bigarray, or
   carry an ownership pragma on its line *)
let check_type_decl ctx (td : type_declaration) =
  if ctx.conc && rule_on ctx "R6" then
    match td.ptype_kind with
    | Ptype_record labels ->
      List.iter
        (fun ld ->
          if
            ld.pld_mutable = Asttypes.Mutable
            && (not (r6_safe_core_type ld.pld_type))
            && not (owned ctx ld.pld_loc)
          then
            emit ctx ~rule:"R6" ~loc:ld.pld_loc
              (Printf.sprintf
                 "mutable field %s.%s in a concurrency-scoped module: make it Atomic.t \
                  / Bigarray-backed, or document ownership with (* fg-lint: \
                  single-writer <role> *) / (* fg-lint: guarded-by <lock> *)"
                 td.ptype_name.txt ld.pld_name.txt))
        labels
    | _ -> ()

(* R6 over one module-level value binding: [let x = ref e] is shared
   mutable state with no stated owner (function-local refs are fine —
   they do not escape a single domain's stack without also tripping R6
   at their destination) *)
let check_value_binding_ref ctx (vb : value_binding) =
  if ctx.conc && rule_on ctx "R6" && is_ref_binding vb.pvb_expr && not (owned ctx vb.pvb_loc)
  then
    emit ctx ~rule:"R6" ~loc:vb.pvb_loc
      "module-level ref in a concurrency-scoped module: make it Atomic.t, or document \
       ownership with (* fg-lint: single-writer <role> *) / (* fg-lint: guarded-by \
       <lock> *)"

(* ---------------- the walker ---------------- *)

let check_apply ctx env ~guarded fn args loc =
  (* R1: any use of a list-returning neighbours accessor in a hot module
     (checked at the identifier, so partial applications count too) *)
  (match fn.pexp_desc with
  | Pexp_ident { txt; _ } when ctx.hot && ends_in txt ("Adjacency", "neighbors") ->
    emit ctx ~rule:"R1" ~loc
      "Adjacency.neighbors allocates a list per call on a hot path; use \
       iter_neighbors/fold_neighbors/neighbors_into"
  | _ -> ());
  (* R2: Hashtbl.hash over a freshly boxed literal *)
  (match fn.pexp_desc with
  | Pexp_ident { txt; _ } when ends_in txt ("Hashtbl", "hash") -> (
    match args with
    | (Asttypes.Nolabel, a) :: _ -> (
      match a.pexp_desc with
      | Pexp_tuple _ | Pexp_construct (_, Some _) | Pexp_record _
      | Pexp_variant (_, Some _) | Pexp_array _ ->
        emit ctx ~rule:"R2" ~loc
          "Hashtbl.hash over a tuple/constructor literal boxes a fresh value \
           per call; hash the components and mix arithmetically"
      | _ -> ())
    | _ -> ())
  | _ -> ());
  (* R3: polymorphic equality / compare / List.mem on Node_id or Edge *)
  (match fn.pexp_desc with
  | Pexp_ident { txt = Lident (("=" | "<>" | "compare") as op); _ } -> (
    match args with
    | [ (_, a); (_, b) ] ->
      let ta = ty_of env a and tb = ty_of env b in
      let bad = if is_scalar ta then Some ta else if is_scalar tb then Some tb else None in
      (match bad with
      | Some t ->
        emit ctx ~rule:"R3" ~loc
          (Printf.sprintf
             "polymorphic %s on a %s; use %s.equal/compare" op (ty_name t)
             (match t with Edge -> "Edge" | _ -> "Node_id"))
      | None -> ())
    | _ -> ())
  | Pexp_ident { txt; _ } when ends_in txt ("List", "mem") -> (
    match args with
    | [ (_, x); (_, l) ] ->
      let tx = ty_of env x and tl = ty_of env l in
      if is_scalar tx || is_list tl then
        let t = if is_scalar tx then tx else elem tl in
        emit ctx ~rule:"R3" ~loc
          (Printf.sprintf
             "List.mem uses polymorphic equality on %s; use List.exists (%s.equal x)"
             (ty_name t)
             (match t with Edge -> "Edge" | _ -> "Node_id"))
    | _ -> ())
  | _ -> ());
  (* R4: allocating emission outside a guard *)
  match fn.pexp_desc with
  | Pexp_ident { txt; _ } when ctx.obs && not guarded -> (
    match emission_target txt with
    | Some name when List.exists (fun (l, a) -> allocating_arg l a) args ->
      emit ctx ~rule:"R4" ~loc
        (Printf.sprintf
           "%s with computed arguments allocates even when observability is \
            off; guard with Fg_obs.Trace.enabled () / \
            Fg_obs.Metrics.is_recording () (or a recorder/?events check)"
           name)
    | _ -> ())
  | _ -> ()

let rec walk ctx (env : env) ~guarded (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    (* R8: even a mention (partial application, callback) counts — the
       primitive is escaping into unsanctioned code *)
    match r8_target txt with
    | Some name when not ctx.sanctioned ->
      emit ctx ~rule:"R8" ~loc:e.pexp_loc
        (Printf.sprintf
           "%s outside the sanctioned domain-management modules; route domain \
            lifecycle and locking through Parallel"
           name)
    | _ -> ())
  | Pexp_let (_, vbs, body) ->
    List.iter (fun vb -> walk ctx env ~guarded vb.pvb_expr) vbs;
    let env' =
      List.fold_left
        (fun acc vb -> bind_pat acc vb.pvb_pat (ty_of env vb.pvb_expr))
        env vbs
    in
    walk ctx env' ~guarded body
  | Pexp_fun (_, default, pat, body) ->
    Option.iter (walk ctx env ~guarded) default;
    walk ctx (bind_pat env pat Unknown) ~guarded body
  | Pexp_function cases -> walk_cases ctx env ~guarded Unknown cases
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
    walk ctx env ~guarded scrut;
    let guarded = guarded || mentions_recorder scrut in
    walk_cases ctx env ~guarded (ty_of env scrut) cases
  | Pexp_ifthenelse (cond, then_, else_) ->
    walk ctx env ~guarded cond;
    walk ctx env ~guarded:(guarded || obs_guard_cond cond) then_;
    Option.iter (walk ctx env ~guarded) else_
  | Pexp_apply (fn, args) ->
    check_apply ctx env ~guarded fn args e.pexp_loc;
    walk ctx env ~guarded fn;
    List.iter (fun (_, a) -> walk ctx env ~guarded a) args
  | _ -> walk_children ctx env ~guarded e

and walk_cases ctx env ~guarded scrut_ty cases =
  List.iter
    (fun c ->
      let env' = bind_pat env c.pc_lhs scrut_ty in
      Option.iter (walk ctx env' ~guarded) c.pc_guard;
      walk ctx env' ~guarded c.pc_rhs)
    cases

and walk_children ctx env ~guarded e =
  (* generic descent: re-enter [walk] on each sub-expression, keeping the
     current environment and guard state *)
  let open Ast_iterator in
  let it = { default_iterator with expr = (fun _ e' -> walk ctx env ~guarded e') } in
  default_iterator.expr it e

let walk_structure ctx (str : structure) =
  let open Ast_iterator in
  let env = ref [] in
  let it =
    {
      default_iterator with
      expr = (fun _ e -> walk ctx !env ~guarded:false e);
      structure_item =
        (fun it item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                walk ctx !env ~guarded:false vb.pvb_expr;
                check_value_binding_ref ctx vb;
                analyze_pevents ctx ~binding_loc:vb.pvb_loc (collect_pevents vb.pvb_expr))
              vbs;
            env :=
              List.fold_left
                (fun acc vb -> bind_pat acc vb.pvb_pat (ty_of !env vb.pvb_expr))
                !env vbs
          | Pstr_type (_, tds) -> List.iter (check_type_decl ctx) tds
          | _ -> default_iterator.structure_item it item);
    }
  in
  it.structure it str

(* ---------------- driving ---------------- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let lint_file conf path =
  let text = read_file path in
  let ctx =
    {
      file = path;
      conf;
      pragmas = scan_pragmas text;
      ownership = scan_ownership text;
      hot = in_scope conf.hot_modules path;
      obs = in_scope conf.obs_modules path;
      conc = in_scope conf.conc_modules path;
      sanctioned = in_scope conf.domain_sanctioned path;
    }
  in
  (* R5: interface discipline *)
  if
    rule_on ctx "R5"
    && in_scope conf.mli_required path
    && not (Sys.file_exists (Filename.remove_extension path ^ ".mli"))
  then
    report ~rule:"R5"
      ~loc:
        Location.
          {
            loc_start = { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
            loc_end = { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
            loc_ghost = false;
          }
      "module has no matching .mli (every module under lib/ exposes an \
       explicit interface)";
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf path;
  Location.input_name := path;
  match Parse.implementation lexbuf with
  | ast -> walk_structure ctx ast
  | exception exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok _) -> "syntax error"
      | _ -> Printexc.to_string exn
    in
    Printf.eprintf "fg_lint: %s: cannot parse (%s)\n" path msg;
    exit 2

let rec gather_ml path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || (String.length entry > 0 && entry.[0] = '.') then acc
        else gather_ml (Filename.concat path entry) acc)
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

(* ---------------- output ---------------- *)

let severity_name = function Error -> "error" | Warning -> "warning"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let print_json fs =
  print_string "{\"tool\":\"fg_lint\",\"version\":\"";
  print_string version;
  print_string "\",\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then print_char ',';
      Printf.printf
        "{\"rule\":%S,\"severity\":%S,\"file\":%S,\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
        f.f_rule (severity_name f.f_severity) f.f_file f.f_line f.f_col
        (json_escape f.f_msg))
    fs;
  Printf.printf "],\"count\":%d}\n" (List.length fs)

(* GitHub Actions workflow-command annotations: one ::error/::warning per
   finding, shown inline on the PR diff. Columns are 1-based there. *)
let print_github fs =
  List.iter
    (fun f ->
      Printf.printf "::%s file=%s,line=%d,col=%d::[%s] %s\n"
        (severity_name f.f_severity)
        f.f_file f.f_line (f.f_col + 1) f.f_rule f.f_msg)
    fs;
  Printf.printf "fg_lint: %d finding%s\n" (List.length fs)
    (if List.length fs = 1 then "" else "s")

let print_text fs =
  List.iter
    (fun f ->
      Printf.printf "%s:%d:%d: [%s] %s: %s\n" f.f_file f.f_line f.f_col f.f_rule
        (severity_name f.f_severity) f.f_msg)
    fs;
  match List.length fs with
  | 0 -> print_endline "fg_lint: no findings"
  | n -> Printf.printf "fg_lint: %d finding%s\n" n (if n = 1 then "" else "s")

(* ---------------- main ---------------- *)

let () =
  let conf_file = ref None
  and json = ref false
  and github = ref false
  and only = ref None
  and paths = ref [] in
  let usage () =
    prerr_endline
      "usage: fg_lint [--conf FILE] [--json] [--github] [--only R1,R3] [--list-rules] \
       PATH...";
    exit 2
  in
  let rec parse = function
    | "--conf" :: f :: rest ->
      conf_file := Some f;
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--github" :: rest ->
      github := true;
      parse rest
    | "--only" :: ids :: rest ->
      only := Some (split_ws ids);
      parse rest
    | "--list-rules" :: _ ->
      List.iter
        (fun r -> Printf.printf "%s  [%s]  %s\n" r.id (severity_name r.severity) r.summary)
        rules;
      exit 0
    | "--help" :: _ | "-h" :: _ -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | p :: rest ->
      paths := p :: !paths;
      parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !paths = [] then usage ();
  let conf =
    match !conf_file with
    | Some f when Sys.file_exists f -> load_conf f
    | Some f ->
      Printf.eprintf "fg_lint: config %s not found\n" f;
      exit 2
    | None -> default_conf ()
  in
  (match !only with
  | Some ids ->
    List.iter
      (fun id -> if rule_by_id id = None then (Printf.eprintf "fg_lint: unknown rule %s\n" id; exit 2))
      ids;
    conf.enabled <- ids
  | None -> ());
  let files =
    List.fold_left (fun acc p -> gather_ml p acc) [] (List.rev !paths)
    |> List.sort compare
  in
  List.iter (fun f -> lint_file conf f) files;
  (* fully deterministic order — (file, line, rule, col) — so --json
     output is byte-stable for CI diffing *)
  let fs =
    List.sort
      (fun a b ->
        match compare a.f_file b.f_file with
        | 0 -> (
          match compare a.f_line b.f_line with
          | 0 -> (
            match compare a.f_rule b.f_rule with 0 -> compare a.f_col b.f_col | c -> c)
          | c -> c)
        | c -> c)
      !findings
  in
  if !json then print_json fs else if !github then print_github fs else print_text fs;
  if List.exists (fun f -> f.f_severity = Error) fs then exit 1
