(* Interval_map (run-length map) vs the dense-array model: every
   operation must agree with the array it compresses, and the run
   structure must be canonical (no two adjacent runs share a value). *)

open Fg_graph

let gen_array =
  (* small value range forces long runs; large range forces singletons *)
  QCheck2.Gen.(
    tup2 (int_range 1 5) (int_range 0 60) >>= fun (vals, len) ->
    array_size (return len) (int_range 0 (vals - 1)))

let prop_matches_model =
  QCheck2.Test.make ~name:"Interval_map.of_array = array model" ~count:200
    gen_array (fun a ->
      let t = Interval_map.of_array ~equal:Int.equal a in
      if Interval_map.length t <> Array.length a then false
      else begin
        Array.iteri
          (fun i v ->
            if Interval_map.get t i <> v then
              Alcotest.failf "get %d: %d vs %d" i (Interval_map.get t i) v)
          a;
        Interval_map.to_array t = a
      end)

let prop_runs_canonical =
  QCheck2.Test.make ~name:"Interval_map runs are maximal and cover" ~count:200
    gen_array (fun a ->
      let t = Interval_map.of_array ~equal:Int.equal a in
      let prev_hi = ref 0 and prev_v = ref None and runs = ref 0 in
      Interval_map.iter_runs
        (fun ~lo ~hi v ->
          incr runs;
          if lo <> !prev_hi then Alcotest.failf "gap at %d" lo;
          if hi <= lo then Alcotest.failf "empty run at %d" lo;
          (match !prev_v with
          | Some p when p = v -> Alcotest.failf "unmerged runs at %d" lo
          | _ -> ());
          prev_hi := hi;
          prev_v := Some v)
        t;
      !prev_hi = Array.length a && !runs = Interval_map.run_count t)

let prop_fold_agrees_with_iter =
  QCheck2.Test.make ~name:"Interval_map fold_runs = iter_runs" ~count:100
    gen_array (fun a ->
      let t = Interval_map.of_array ~equal:Int.equal a in
      let via_iter = ref [] in
      Interval_map.iter_runs
        (fun ~lo ~hi v -> via_iter := (lo, hi, v) :: !via_iter)
        t;
      let via_fold =
        Interval_map.fold_runs (fun ~lo ~hi v acc -> (lo, hi, v) :: acc) t []
      in
      via_fold = !via_iter)

let prop_equal_iff_same_array =
  QCheck2.Test.make ~name:"Interval_map.equal = array equality" ~count:100
    QCheck2.Gen.(tup2 gen_array gen_array)
    (fun (a, b) ->
      let ta = Interval_map.of_array ~equal:Int.equal a in
      let tb = Interval_map.of_array ~equal:Int.equal b in
      Interval_map.equal Int.equal ta tb = (a = b))

let test_init_and_edges () =
  let t = Interval_map.init ~equal:Int.equal ~len:10 (fun i -> i / 5) in
  Alcotest.(check int) "two runs" 2 (Interval_map.run_count t);
  Alcotest.(check int) "first" 0 (Interval_map.get t 0);
  Alcotest.(check int) "boundary" 1 (Interval_map.get t 5);
  Alcotest.(check int) "last" 1 (Interval_map.get t 9);
  let empty = Interval_map.of_array ~equal:Int.equal [||] in
  Alcotest.(check int) "empty length" 0 (Interval_map.length empty);
  Alcotest.(check int) "empty runs" 0 (Interval_map.run_count empty);
  Alcotest.(check bool) "out of range" true
    (match Interval_map.get t 10 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [ Alcotest.test_case "interval-map: init + edge cases" `Quick test_init_and_edges ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_matches_model;
        prop_runs_canonical;
        prop_fold_agrees_with_iter;
        prop_equal_iff_same_array;
      ]
