(* Tests for the observability layer: span nesting/ordering under the
   ring-buffer sink, JSONL round trip and replay, no-op behaviour when
   tracing is off, instrumentation agreement with Netsim.stats, and the
   fg_cli --trace end-to-end JSONL output. *)

open Fg_obs

(* deterministic clock: 1, 2, 3, ... *)
let with_counter_clock f =
  let c = ref 0. in
  Trace.set_clock (fun () ->
      c := !c +. 1.;
      !c);
  Fun.protect ~finally:(fun () -> Trace.set_clock Trace.wall_clock) f

let with_memory_sink f =
  let sink, contents = Sink.memory () in
  Trace.with_sink sink (fun () -> f ()) |> ignore;
  contents ()

(* ---- span nesting and ordering ---- *)

let test_span_nesting () =
  let events =
    with_counter_clock (fun () ->
        with_memory_sink (fun () ->
            Trace.with_span "a" (fun a ->
                Trace.attr a "k" (Event.Str "v");
                Trace.with_span "b" (fun _ -> Trace.count "hits" 2);
                Trace.with_span "c" (fun _ -> ());
                Trace.count "hits" 1)))
  in
  let shape =
    List.map
      (function
        | Event.Span_start { name; parent; _ } -> ("start", name, parent)
        | Event.Span_end { name; _ } -> ("end", name, None)
        | Event.Point { name; _ } -> ("point", name, None))
      events
  in
  Alcotest.(check (list (triple string string (option int))))
    "event order and parents"
    [
      ("start", "a", None);
      ("start", "b", Some 1);
      ("end", "b", None);
      ("start", "c", Some 1);
      ("end", "c", None);
      ("end", "a", None);
    ]
    shape;
  (* timestamps are monotone non-decreasing in emission order *)
  let ts = List.map Event.ts events in
  let rec mono = function
    | x :: (y :: _ as rest) -> x <= y && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "monotonic timestamps" true (mono ts);
  (* counters land on the right spans *)
  let end_of name =
    List.find_map
      (function
        | Event.Span_end { name = n; counters; attrs; _ } when n = name ->
          Some (counters, attrs)
        | _ -> None)
      events
    |> Option.get
  in
  let a_counters, a_attrs = end_of "a" in
  let b_counters, _ = end_of "b" in
  Alcotest.(check (list (pair string int))) "b counters" [ ("hits", 2) ] b_counters;
  Alcotest.(check (list (pair string int))) "a counters" [ ("hits", 1) ] a_counters;
  Alcotest.(check bool) "a attr" true (List.mem ("k", Event.Str "v") a_attrs)

(* ---- JSONL round trip and replay ---- *)

let test_jsonl_roundtrip () =
  let events =
    with_counter_clock (fun () ->
        with_memory_sink (fun () ->
            Trace.with_span "outer"
              ~attrs:[ ("f", Event.Float 1.5); ("b", Event.Bool true) ]
              (fun sp ->
                Trace.attr sp "s" (Event.Str "x\"y\\z");
                Trace.count "n" 7;
                Trace.point "p" ~attrs:[ ("i", Event.Int (-3)) ])))
  in
  Alcotest.(check bool) "emitted some events" true (List.length events = 3);
  let lines = List.map (fun e -> Json.to_string (Event.to_json e)) events in
  (* every line is one parseable JSON object that re-encodes identically *)
  List.iter2
    (fun line original ->
      match Replay.parse_line line with
      | Error e -> Alcotest.failf "unparseable line %S: %s" line e
      | Ok ev ->
        Alcotest.(check string) "re-encoding is stable" line
          (Json.to_string (Event.to_json ev));
        Alcotest.(check string) "same name" (Event.name original) (Event.name ev))
    lines events;
  (* replay aggregates into a per-phase table *)
  match Replay.parse_lines lines with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    let rows = Replay.of_events parsed in
    Alcotest.(check int) "one phase" 1 (List.length rows);
    let row = List.hd rows in
    Alcotest.(check string) "phase name" "outer" row.Replay.name;
    Alcotest.(check int) "span count" 1 row.Replay.count;
    Alcotest.(check (list (pair string int))) "summed counters" [ ("n", 7) ]
      row.Replay.counters

let test_replay_rejects_garbage () =
  (match Replay.parse_lines [ "{\"ev\":\"start\"" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated JSON");
  match Replay.parse_lines [ "{\"ev\":\"wibble\",\"name\":\"x\",\"ts\":0.0}" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown event kind"

(* ---- no-op when tracing is off ---- *)

let test_noop_when_disabled () =
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  (* a healthy volume of instrumented calls with no sink: nothing observable *)
  let acc = ref 0 in
  for i = 1 to 100_000 do
    Trace.with_span "hot" (fun sp ->
        Trace.count "c" 1;
        Trace.attr sp "k" (Event.Int i);
        incr acc)
  done;
  Alcotest.(check int) "callback ran every time" 100_000 !acc;
  (* instrumented library code runs fine without a sink *)
  let fg = Fg_core.Forgiving_graph.of_graph (Fg_graph.Generators.star 16) in
  Fg_core.Forgiving_graph.delete fg 0;
  Alcotest.(check bool) "still disabled" false (Trace.enabled ())

let test_metrics_gated_off () =
  Metrics.reset Metrics.global;
  Alcotest.(check bool) "not recording" false (Metrics.is_recording ());
  let fg = Fg_core.Forgiving_graph.of_graph (Fg_graph.Generators.star 16) in
  Fg_core.Forgiving_graph.delete fg 0;
  Alcotest.(check int) "no deletions recorded" 0
    (Metrics.counter Metrics.global "fg.deletions")

(* ---- metrics registry ---- *)

let test_metrics_recording () =
  Metrics.reset Metrics.global;
  Metrics.set_recording true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_recording false;
      Metrics.reset Metrics.global)
    (fun () ->
      let fg = Fg_core.Forgiving_graph.of_graph (Fg_graph.Generators.star 32) in
      Fg_core.Forgiving_graph.delete fg 0;
      Fg_core.Forgiving_graph.delete fg 1;
      Alcotest.(check int) "deletions" 2 (Metrics.counter Metrics.global "fg.deletions");
      Alcotest.(check bool) "strip calls > 0" true
        (Metrics.counter Metrics.global "rt.strip_calls" >= 2);
      let hs = Metrics.histograms Metrics.global in
      Alcotest.(check bool) "fg.anchors histogram exists" true
        (List.mem_assoc "fg.anchors" hs);
      (* registry serializes *)
      match Json.of_string (Json.to_string (Metrics.to_json Metrics.global)) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "metrics json: %s" e)

(* ---- instrumentation agrees with Netsim.stats ---- *)

let test_dist_span_matches_stats () =
  let sink, contents = Sink.memory () in
  let stats = ref None in
  Trace.with_sink sink (fun () ->
      let eng = Fg_sim.Dist_engine.create (Fg_graph.Generators.star 24) in
      stats := Some (Fg_sim.Dist_engine.delete eng 0));
  let stats = Option.get !stats in
  let span_counters, span_attrs =
    List.find_map
      (function
        | Event.Span_end { name = "dist.delete"; counters; attrs; _ } ->
          Some (counters, attrs)
        | _ -> None)
      (contents ())
    |> Option.get
  in
  let counter k = List.assoc_opt k span_counters in
  Alcotest.(check (option int)) "messages counter = stats.messages"
    (Some stats.Fg_sim.Netsim.messages) (counter "netsim.messages");
  Alcotest.(check (option int)) "rounds counter = stats.rounds"
    (Some stats.Fg_sim.Netsim.rounds) (counter "netsim.rounds");
  Alcotest.(check (option int)) "bits counter = stats.total_bits"
    (Some stats.Fg_sim.Netsim.total_bits) (counter "netsim.bits");
  let attr k = List.assoc_opt k span_attrs in
  Alcotest.(check (option bool)) "rounds attr" (Some true)
    (Option.map (fun a -> a = Event.Int stats.Fg_sim.Netsim.rounds) (attr "rounds"))

let test_delete_emits_strip_merge_children () =
  let events =
    with_memory_sink (fun () ->
        let fg = Fg_core.Forgiving_graph.of_graph (Fg_graph.Generators.star 16) in
        Fg_core.Forgiving_graph.delete fg 0)
  in
  let starts =
    List.filter_map
      (function
        | Event.Span_start { name; parent; id; _ } -> Some (name, parent, id)
        | _ -> None)
      events
  in
  let delete_id =
    List.find_map (fun (n, _, id) -> if n = "fg.delete" then Some id else None) starts
    |> Option.get
  in
  let child name =
    List.exists (fun (n, p, _) -> n = name && p = Some delete_id) starts
  in
  Alcotest.(check bool) "rt.strip child of fg.delete" true (child "rt.strip");
  Alcotest.(check bool) "rt.merge child of fg.delete" true (child "rt.merge");
  Alcotest.(check bool) "fg.collect child of fg.delete" true (child "fg.collect")

(* ---- Netsim.pp_stats / stats_to_json ---- *)

let test_netsim_stats_formats () =
  let s =
    {
      Fg_sim.Netsim.rounds = 3;
      messages = 14;
      total_bits = 560;
      max_message_bits = 40;
      max_agent_bits = 240;
      max_agent_messages = 7;
    }
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let str = Format.asprintf "%a" Fg_sim.Netsim.pp_stats s in
  Alcotest.(check bool) "pp mentions rounds" true (contains str "3 rounds");
  match Json.of_string (Fg_sim.Netsim.stats_to_json s) with
  | Error e -> Alcotest.failf "stats_to_json unparseable: %s" e
  | Ok j ->
    Alcotest.(check (option int)) "rounds" (Some 3) (Option.bind (Json.member "rounds" j) Json.to_int);
    Alcotest.(check (option int)) "messages" (Some 14)
      (Option.bind (Json.member "messages" j) Json.to_int);
    Alcotest.(check (option int)) "total_bits" (Some 560)
      (Option.bind (Json.member "total_bits" j) Json.to_int)

(* ---- fg_cli attack --trace writes valid JSONL ---- *)

let test_cli_attack_trace_is_valid_jsonl () =
  let out = Filename.temp_file "fg_cli_trace" ".jsonl" in
  let cmd =
    Printf.sprintf
      "../bin/fg_cli.exe attack --family er -n 64 --trace %s > /dev/null 2>&1"
      (Filename.quote out)
  in
  let rc = Sys.command cmd in
  Alcotest.(check int) "fg_cli attack exits 0" 0 rc;
  match Replay.load out with
  | Error e -> Alcotest.failf "trace does not parse: %s" e
  | Ok events ->
    Sys.remove out;
    Alcotest.(check bool) "trace is non-empty" true (events <> []);
    let rows = Replay.of_events events in
    let phase name = List.exists (fun r -> r.Replay.name = name) rows in
    Alcotest.(check bool) "has fg.delete spans" true (phase "fg.delete");
    Alcotest.(check bool) "has rt.strip spans" true (phase "rt.strip");
    Alcotest.(check bool) "has rt.merge spans" true (phase "rt.merge")

let suite =
  [
    Alcotest.test_case "span nesting under ring buffer" `Quick test_span_nesting;
    Alcotest.test_case "jsonl round trip + replay" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "replay rejects garbage" `Quick test_replay_rejects_garbage;
    Alcotest.test_case "no-op when disabled" `Quick test_noop_when_disabled;
    Alcotest.test_case "metrics gated off" `Quick test_metrics_gated_off;
    Alcotest.test_case "metrics recording" `Quick test_metrics_recording;
    Alcotest.test_case "dist.delete span = Netsim.stats" `Quick
      test_dist_span_matches_stats;
    Alcotest.test_case "delete emits strip/merge children" `Quick
      test_delete_emits_strip_merge_children;
    Alcotest.test_case "netsim stats pp/json" `Quick test_netsim_stats_formats;
    Alcotest.test_case "fg_cli attack --trace is valid JSONL" `Quick
      test_cli_attack_trace_is_valid_jsonl;
  ]
