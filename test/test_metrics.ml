(* Tests for the metrics library: stretch, degree increase, summaries. *)

open Fg_graph
open Fg_metrics

let test_stretch_identity () =
  let g = Generators.ring 8 in
  let r = Stretch.exact ~graph:g ~reference:g (Adjacency.nodes g) in
  Alcotest.(check (float 1e-9)) "max 1" 1.0 r.Stretch.max_stretch;
  Alcotest.(check (float 1e-9)) "mean 1" 1.0 r.Stretch.mean_stretch;
  Alcotest.(check int) "pairs C(8,2)" 28 r.Stretch.pairs;
  Alcotest.(check int) "none disconnected" 0 r.Stretch.disconnected

let test_stretch_known_value () =
  (* reference: square 0-1-2-3-0; graph: same minus edge 0-3.
     dist_g(0,3) = 3 vs dist_ref = 1 -> stretch 3 *)
  let reference = Generators.ring 4 in
  let graph = Adjacency.copy reference in
  Adjacency.remove_edge graph 3 0;
  let r = Stretch.exact ~graph ~reference [ 0; 1; 2; 3 ] in
  Alcotest.(check (float 1e-9)) "max 3" 3.0 r.Stretch.max_stretch;
  Alcotest.(check (option (pair int int))) "witness" (Some (0, 3)) r.Stretch.witness

let test_stretch_below_one_possible () =
  (* healing can create shortcuts: graph has chord 0-2, reference not *)
  let reference = Generators.path 5 in
  let graph = Adjacency.copy reference in
  Adjacency.add_edge graph 0 4;
  let r = Stretch.exact ~graph ~reference [ 0; 1; 2; 3; 4 ] in
  Alcotest.(check bool) "mean < 1" true (r.Stretch.mean_stretch < 1.0)

let test_stretch_disconnected_counted () =
  let reference = Generators.path 4 in
  let graph = Adjacency.copy reference in
  Adjacency.remove_edge graph 1 2;
  let r = Stretch.exact ~graph ~reference [ 0; 1; 2; 3 ] in
  (* pairs (0,2) (0,3) (1,2) (1,3) broken *)
  Alcotest.(check int) "four broken" 4 r.Stretch.disconnected

let test_stretch_sampled_subset () =
  let rng = Rng.create 3 in
  let g = Generators.erdos_renyi rng 60 0.1 in
  let full = Stretch.exact ~graph:g ~reference:g (Adjacency.nodes g) in
  let sampled = Stretch.sampled (Rng.create 1) ~k:10 ~graph:g ~reference:g
      (Adjacency.nodes g) in
  Alcotest.(check bool) "sampled <= exact pairs" true
    (sampled.Stretch.pairs <= full.Stretch.pairs);
  Alcotest.(check (float 1e-9)) "identity still 1" 1.0 sampled.Stretch.max_stretch

let test_degree_report () =
  let gprime = Generators.star 6 in
  let graph = Adjacency.copy gprime in
  (* satellite 1 gains three extra edges: ratio 4 with d'=1 *)
  Adjacency.add_edge graph 1 2;
  Adjacency.add_edge graph 1 3;
  Adjacency.add_edge graph 1 4;
  let r = Degree_metric.measure ~graph ~gprime ~nodes:(Adjacency.nodes gprime) in
  Alcotest.(check (float 1e-9)) "max ratio" 4.0 r.Degree_metric.max_ratio;
  Alcotest.(check (option int)) "witness" (Some 1) r.Degree_metric.witness;
  Alcotest.(check int) "max abs" 3 r.Degree_metric.max_absolute_increase;
  Alcotest.(check int) "over 3x" 1 r.Degree_metric.over_3x;
  Alcotest.(check int) "over 4x" 0 r.Degree_metric.over_4x

let test_degree_skips_zero_gprime () =
  let gprime = Adjacency.create () in
  Adjacency.add_node gprime 1;
  let graph = Adjacency.copy gprime in
  let r = Degree_metric.measure ~graph ~gprime ~nodes:[ 1 ] in
  Alcotest.(check (float 1e-9)) "no ratio" 0.0 r.Degree_metric.max_ratio

let test_summary_stats () =
  let s = Summary.of_floats [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check int) "n" 5 s.Summary.n;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Summary.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Summary.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Summary.max;
  Alcotest.(check (float 1e-9)) "median" 3.0 s.Summary.p50;
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.0) s.Summary.stddev

let test_summary_quantile () =
  (* odd count: the median rank is unambiguous *)
  let xs = List.init 99 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Summary.quantile 0.5 xs);
  Alcotest.(check (float 1e-9)) "p95" 94.0 (Summary.quantile 0.95 xs);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Summary.quantile 0.0 xs);
  Alcotest.(check (float 1e-9)) "p100" 99.0 (Summary.quantile 1.0 xs)

let test_summary_rejects_empty () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Summary.of_floats []);
       false
     with Invalid_argument _ -> true)

let test_summary_of_ints () =
  let s = Summary.of_ints [ 2; 4; 6 ] in
  Alcotest.(check (float 1e-9)) "mean" 4.0 s.Summary.mean

let test_summary_opt_variants () =
  Alcotest.(check bool) "of_floats_opt []" true (Summary.of_floats_opt [] = None);
  Alcotest.(check bool) "of_ints_opt []" true (Summary.of_ints_opt [] = None);
  (match Summary.of_floats_opt [ 1.; 3. ] with
  | None -> Alcotest.fail "of_floats_opt non-empty gave None"
  | Some s -> Alcotest.(check (float 1e-9)) "mean" 2.0 s.Summary.mean);
  match Summary.of_ints_opt [ 5 ] with
  | None -> Alcotest.fail "of_ints_opt non-empty gave None"
  | Some s -> Alcotest.(check (float 1e-9)) "max" 5.0 s.Summary.max

let suite =
  [
    Alcotest.test_case "stretch: identity graph" `Quick test_stretch_identity;
    Alcotest.test_case "stretch: known value + witness" `Quick test_stretch_known_value;
    Alcotest.test_case "stretch: shortcuts give < 1" `Quick test_stretch_below_one_possible;
    Alcotest.test_case "stretch: disconnected pairs counted" `Quick
      test_stretch_disconnected_counted;
    Alcotest.test_case "stretch: sampled" `Quick test_stretch_sampled_subset;
    Alcotest.test_case "degree: report fields" `Quick test_degree_report;
    Alcotest.test_case "degree: zero-G'-degree skipped" `Quick
      test_degree_skips_zero_gprime;
    Alcotest.test_case "summary: stats" `Quick test_summary_stats;
    Alcotest.test_case "summary: quantiles" `Quick test_summary_quantile;
    Alcotest.test_case "summary: rejects empty" `Quick test_summary_rejects_empty;
    Alcotest.test_case "summary: of_ints" `Quick test_summary_of_ints;
    Alcotest.test_case "summary: _opt variants" `Quick test_summary_opt_variants;
  ]
