(* Larger-scale soak tests (marked Slow): thousands of nodes, long attack
   histories, invariants checked at the end and sampled along the way. *)

open Fg_graph
module Fg = Fg_core.Forgiving_graph

let test_soak_ba_2048 () =
  let rng = Rng.create 2048 in
  let g = Generators.barabasi_albert rng 2048 3 in
  let fg = Fg.of_graph g in
  (* delete half the network, highest current degree first *)
  for step = 1 to 1024 do
    let live = Fg.live_nodes fg in
    let gcur = Fg.graph fg in
    let best =
      List.fold_left
        (fun acc v ->
          match acc with
          | None -> Some v
          | Some b -> if Adjacency.degree gcur v > Adjacency.degree gcur b then Some v else acc)
        None live
    in
    Option.iter (Fg.delete fg) best;
    (* cheap invariants frequently, full ones occasionally *)
    if step mod 256 = 0 then begin
      match Fg_core.Invariants.check fg with
      | [] -> ()
      | e :: _ -> Alcotest.failf "step %d: %s" step e
    end
  done;
  Alcotest.(check int) "1024 survivors" 1024 (Fg.num_live fg);
  Alcotest.(check bool) "connected" true (Connectivity.is_connected (Fg.graph fg));
  (* sampled stretch against the bound *)
  let stretch =
    Fg_metrics.Stretch.sampled (Rng.create 1) ~k:24 ~graph:(Fg.graph fg)
      ~reference:(Fg.gprime fg) (Fg.live_nodes fg)
  in
  Alcotest.(check bool) "stretch within bound" true
    (stretch.Fg_metrics.Stretch.max_stretch <= float_of_int (Fg.stretch_bound fg));
  Alcotest.(check int) "no disconnections" 0 stretch.Fg_metrics.Stretch.disconnected

let test_soak_insert_delete_interleave () =
  let rng = Rng.create 77 in
  let fg = Fg.of_graph (Generators.erdos_renyi rng 256 (4.0 /. 256.)) in
  let next = ref 256 in
  for _ = 1 to 1500 do
    let live = Fg.live_nodes fg in
    if Rng.float rng 1.0 < 0.5 && List.length live > 8 then
      Fg.delete fg (Rng.pick rng live)
    else begin
      let k = 1 + Rng.int rng 4 in
      Fg.insert fg !next (Array.to_list (Rng.sample rng k (Array.of_list live)));
      incr next
    end
  done;
  (match Fg_core.Invariants.check fg with
  | [] -> ()
  | e :: _ -> Alcotest.fail e);
  (* Table-1 completeness still holds at scale *)
  let t = Fg_sim.Table1.of_fg fg in
  Alcotest.(check (list string)) "table1" [] (Fg_sim.Table1.check_complete t fg)

let test_soak_sim_costs_bounded () =
  (* every repair in a 512-node ER half-kill stays within Lemma 4 *)
  let rng = Rng.create 3 in
  let n = 512 in
  let eng = Fg_sim.Engine.create (Generators.erdos_renyi rng n (6.0 /. float_of_int n)) in
  let lg = log (float_of_int n) /. log 2. in
  for _ = 1 to n / 2 do
    let live = Fg.live_nodes (Fg_sim.Engine.fg eng) in
    if List.length live > 2 then begin
      let c = Fg_sim.Engine.delete eng (Rng.pick rng live) in
      let d = float_of_int (max 2 c.Fg_sim.Engine.deleted_degree) in
      if float_of_int c.Fg_sim.Engine.messages > 40. *. d *. lg +. 40. then
        Alcotest.failf "deletion of %d (d'=%d): %d messages exceeds 40 d log n"
          c.Fg_sim.Engine.deleted c.Fg_sim.Engine.deleted_degree
          c.Fg_sim.Engine.messages
    end
  done

let test_soak_dist_er_256 () =
  (* the full distributed protocol through a 100-deletion ER sequence,
     verified against the centralized engine every 10 steps *)
  let rng = Rng.create 44 in
  let eng = Fg_sim.Dist_engine.create (Generators.erdos_renyi rng 256 (5.0 /. 256.)) in
  for step = 1 to 100 do
    let live = Fg.live_nodes (Fg_sim.Dist_engine.reference eng) in
    if List.length live > 3 then begin
      ignore (Fg_sim.Dist_engine.delete eng (Rng.pick rng live));
      if step mod 10 = 0 then
        match Fg_sim.Dist_engine.verify eng with
        | [] -> ()
        | e :: _ -> Alcotest.failf "step %d: %s" step e
    end
  done

let test_route_after_batch () =
  (* routing stitches across batch-healed regions too: grouped victims
     merge into one RT, so maximal dead runs stay within a single tree *)
  let rng = Rng.create 5 in
  let g = Generators.erdos_renyi rng 36 0.12 in
  let fg = Fg.of_graph g in
  Fg.delete_batch fg [ 1; 2; 3 ];
  Fg.delete_batch fg [ 10; 11 ];
  Fg.delete fg 20;
  (match Fg_core.Invariants.check fg with [] -> () | e :: _ -> Alcotest.fail e);
  let live = List.sort compare (Fg.live_nodes fg) in
  let img = Fg.graph fg in
  let check x y =
    if x < y then
      match Fg_core.Routing.route fg x y with
      | None -> ()
      | Some walk ->
        let rec valid = function
          | a :: (b :: _ as rest) -> Adjacency.mem_edge img a b && valid rest
          | _ -> true
        in
        Alcotest.(check bool) (Printf.sprintf "walk %d->%d" x y) true (valid walk)
  in
  List.iter (fun x -> List.iter (check x) live) live

let prop_route_valid_after_random_attack =
  QCheck2.Test.make ~name:"routes are valid walks within the bound" ~count:20
    QCheck2.Gen.(tup2 (int_range 0 99999) (int_range 10 40))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Generators.erdos_renyi rng n (3.5 /. float_of_int n) in
      let fg = Fg.of_graph g in
      for _ = 1 to n / 3 do
        let live = Fg.live_nodes fg in
        if List.length live > 3 then Fg.delete fg (Rng.pick rng live)
      done;
      let live = List.sort compare (Fg.live_nodes fg) in
      let img = Fg.graph fg in
      let ok = ref true in
      let check x y =
        if x < y then
          match Fg_core.Routing.route fg x y with
          | None -> ()
          | Some walk ->
            let rec valid = function
              | a :: (b :: _ as rest) -> Adjacency.mem_edge img a b && valid rest
              | _ -> true
            in
            let d' =
              Option.value (Bfs.distance (Fg.gprime fg) x y) ~default:max_int
            in
            if
              (not (valid walk))
              || List.hd walk <> x
              || List.nth walk (List.length walk - 1) <> y
              || List.length walk - 1 > max 1 (Fg_core.Routing.length_bound fg d')
            then ok := false
      in
      List.iter (fun x -> List.iter (check x) live) live;
      !ok)

let prop_table1_complete =
  QCheck2.Test.make ~name:"table 1 reconstructs the forest" ~count:20
    QCheck2.Gen.(tup2 (int_range 0 99999) (int_range 8 32))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Generators.erdos_renyi rng n (3.0 /. float_of_int n) in
      let fg = Fg.of_graph g in
      for _ = 1 to n / 2 do
        let live = Fg.live_nodes fg in
        if List.length live > 3 then Fg.delete fg (Rng.pick rng live)
      done;
      Fg_sim.Table1.check_complete (Fg_sim.Table1.of_fg fg) fg = [])

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_route_valid_after_random_attack; prop_table1_complete ]

let suite =
  [
    Alcotest.test_case "soak: BA 2048, 50% hub kill" `Slow test_soak_ba_2048;
    Alcotest.test_case "soak: 1500-step churn" `Slow test_soak_insert_delete_interleave;
    Alcotest.test_case "soak: sim costs bounded (ER 512)" `Slow
      test_soak_sim_costs_bounded;
    Alcotest.test_case "soak: distributed protocol (ER 256)" `Slow
      test_soak_dist_er_256;
    Alcotest.test_case "routing after batch heals" `Quick test_route_after_batch;
  ]
  @ props
