(* fg_race self-test: the interleaving checker must (a) explore real
   schedule volume over the production protocol code and find nothing,
   (b) fully exhaust a small space, (c) catch the seeded
   reclaim-while-pinned mutation and reproduce it deterministically via
   replay, and (d) agree with the real-Atomic instantiation on final
   stats for randomized pin/publish/unpin scripts (the traced shim must
   not change protocol semantics). *)

module Sched = Fg_race.Sched
module Scenarios = Fg_race.Scenarios
module Tstore = Scenarios.Tstore

(* ---- clean protocols stay clean under exploration ---- *)

let test_explore_clean () =
  List.iter
    (fun { Scenarios.name; scenario } ->
      let ex = Sched.explore ~max_schedules:3_000 scenario in
      Alcotest.(check bool)
        (name ^ " explored schedules") true
        (ex.Sched.schedules > 0 && ex.Sched.steps > ex.Sched.schedules);
      let sa = Sched.sample ~samples:500 ~seed:42 scenario in
      Alcotest.(check int) (name ^ " sampled schedules") 500 sa.Sched.schedules)
    (Scenarios.all ())

let test_sequential_baseline () =
  List.iter
    (fun { Scenarios.name = _; scenario } -> Sched.run_sequential scenario)
    (Scenarios.all ())

(* ---- the enumerator is exhaustive on a small space ---- *)

let test_exhausts_small_space () =
  (* two threads, one traced op each: 2 steps per thread incl. the final
     return segment -> C(4,2) = 6 distinct schedules *)
  let tiny : Sched.scenario =
   fun () ->
    let a = Fg_race.Traced_atomic.make 0 in
    let t () = Fg_race.Traced_atomic.incr a in
    ([| t; t |], fun () -> ())
  in
  let st = Sched.explore ~max_schedules:1_000 tiny in
  Alcotest.(check bool) "space exhausted" true st.Sched.exhausted;
  Alcotest.(check int) "distinct schedules" 6 st.Sched.schedules

(* ---- mutation test: the checker catches the seeded bug ---- *)

let test_seeded_bug_caught () =
  let scenario () = Scenarios.snapshot_scenario ~unsafe:true () in
  match Sched.sample ~samples:2_000 ~seed:0x5EED (scenario ()) with
  | _ ->
    Alcotest.fail
      "seeded reclamation bug (no epoch check) survived 2000 random schedules"
  | exception Sched.Violation { schedule; error; _ } ->
    let msg = Printexc.to_string error in
    let mentions needle =
      let n = String.length needle and l = String.length msg in
      let rec find i = i + n <= l && (String.sub msg i n = needle || find (i + 1)) in
      find 0
    in
    Alcotest.(check bool) "violation is the reclamation safety check" true
      (mentions "reclaimed");
    (* the offending schedule replays to the same violation, deterministically *)
    (match Sched.replay ~schedule (scenario ()) with
    | () -> Alcotest.fail "replay of the violating schedule found nothing"
    | exception Sched.Violation _ -> ());
    (* and the safe store is immune to that exact schedule *)
    Sched.replay ~schedule (Scenarios.snapshot_scenario ())

(* ---- differential: traced vs real Atomic on the same script ---- *)

(* Run the same pin/publish/unpin script against any instantiation;
   threads execute strictly sequentially (writer, then each reader),
   mirroring Sched.run_sequential's order. Returns the thread thunks and
   a closure reading the final stats (abstract types must not escape the
   first-class module, so the store itself cannot be returned). *)
let run_script_seq (module M : Fg_graph.Snapshot_store.S) ~publishes ~cycles =
  let store = M.create () in
  let writer () = for g = 1 to publishes do M.publish store ~gen:g g done in
  let reader ncycles () =
    let r = M.reader store in
    for _ = 1 to ncycles do
      match M.pin r with
      | s ->
        ignore (s : int M.snapshot);
        M.unpin r
      | exception Invalid_argument _ -> ()
    done
  in
  let stats () =
    let st = M.stats store in
    (st.M.published, st.M.retired, st.M.reclaimed, st.M.max_lag)
  in
  (writer :: List.map reader cycles, stats)

let prop_traced_matches_real =
  QCheck2.Test.make ~name:"snapshot store: traced = real Atomic on final stats"
    ~count:100
    QCheck2.Gen.(tup2 (int_range 0 5) (list_size (int_range 1 3) (int_range 0 4)))
    (fun (publishes, cycles) ->
      (* real *)
      let rthreads, rstats =
        run_script_seq (module Fg_graph.Snapshot_store) ~publishes ~cycles
      in
      List.iter (fun t -> t ()) rthreads;
      let real = rstats () in
      (* traced, under the sequential baseline schedule *)
      let captured = ref None in
      let scenario () =
        let threads, stats = run_script_seq (module Tstore) ~publishes ~cycles in
        captured := Some stats;
        (Array.of_list threads, fun () -> ())
      in
      Sched.run_sequential scenario;
      let traced =
        match !captured with
        | Some stats -> stats ()
        | None -> Alcotest.fail "scenario never ran"
      in
      real = traced)

let prop_conservation_under_random_schedules =
  (* the conservation law and pinned-safety are asserted inside the
     scenario's per-step check; any violation raises out of sample *)
  QCheck2.Test.make ~name:"snapshot store: conservation under random schedules"
    ~count:40
    QCheck2.Gen.(tup3 (int_range 1 3) (int_range 1 4) int)
    (fun (readers, publishes, seed) ->
      let st =
        Sched.sample ~samples:60 ~seed
          (Scenarios.snapshot_scenario ~readers ~publishes ())
      in
      st.Sched.schedules = 60)

let suite =
  [
    Alcotest.test_case "clean protocols explore clean" `Quick test_explore_clean;
    Alcotest.test_case "sequential baseline" `Quick test_sequential_baseline;
    Alcotest.test_case "small space exhausts" `Quick test_exhausts_small_space;
    Alcotest.test_case "seeded reclamation bug caught" `Quick test_seeded_bug_caught;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_traced_matches_real; prop_conservation_under_random_schedules ]
