(* Sharded heal engine: ownership map, membership ring, SPSC mailbox,
   and the PR's core acceptance property — a K-shard run is
   byte-identical to the flat engine (same graphs, same G' image, same
   delta stream, same RT root ids) on random attack scripts, including
   forced cross-shard repair groups and frozen-shard recovery. *)

open Fg_graph
module Fg = Fg_core.Forgiving_graph
module Rt = Fg_core.Rt
module Map = Fg_shard.Shard_map
module Ring = Fg_shard.Shard_ring
module Mailbox = Fg_shard.Mailbox
module Engine = Fg_shard.Shard_engine
module Check = Fg_shard.Shard_check

(* ---- Shard_map ---- *)

let test_map_formula () =
  let t = Map.create ~block:8 ~shards:3 ~capacity:100 () in
  for id = 0 to 400 do
    Alcotest.(check int)
      (Printf.sprintf "owner %d" id)
      (id / 8 mod 3) (Map.owner t id)
  done;
  Alcotest.(check bool) "grew past capacity" true (Map.length t > 100)

let test_map_rejects () =
  (match Map.create ~shards:0 ~capacity:1 () with
  | _ -> Alcotest.fail "shards=0 must be rejected"
  | exception Invalid_argument _ -> ());
  let t = Map.create ~shards:2 ~capacity:4 () in
  match Map.owner t (-1) with
  | _ -> Alcotest.fail "negative id must be rejected"
  | exception Invalid_argument _ -> ()

(* canonical runs under churn: grow the frontier in random hops; the run
   encoding must stay canonical (maximal runs, full cover, formula
   agreement at every boundary) after every growth step *)
let prop_map_canonical_runs =
  QCheck2.Test.make ~name:"Shard_map runs stay canonical under churn" ~count:100
    QCheck2.Gen.(
      tup4 (int_range 1 5) (int_range 1 9) (int_range 1 32)
        (list_size (int_range 1 12) (int_range 0 500)))
    (fun (shards, block, capacity, hops) ->
      let t = Map.create ~block ~shards ~capacity () in
      List.iter
        (fun id ->
          let o = Map.owner t id in
          if o <> id / block mod shards then
            Alcotest.failf "owner %d: %d" id o;
          (* runs: contiguous cover, no adjacent duplicates, formula *)
          let prev_hi = ref 0 and prev_v = ref (-1) and runs = ref 0 in
          Map.iter_runs
            (fun ~lo ~hi v ->
              incr runs;
              if lo <> !prev_hi then Alcotest.failf "gap at %d" lo;
              if hi <= lo then Alcotest.failf "empty run at %d" lo;
              if v = !prev_v then Alcotest.failf "unmerged runs at %d" lo;
              if v <> lo / block mod shards then
                Alcotest.failf "run value at %d" lo;
              if v <> (hi - 1) / block mod shards then
                Alcotest.failf "run value at %d" (hi - 1);
              prev_hi := hi;
              prev_v := v)
            t;
          if !prev_hi <> Map.length t then Alcotest.fail "cover short";
          if !runs <> Map.run_count t then Alcotest.fail "run_count";
          (* single shard must compress to a single run *)
          if shards = 1 && !runs <> 1 then Alcotest.fail "1-shard runs")
        hops;
      true)

(* ---- Shard_ring ---- *)

let test_ring_route_live () =
  let r = Ring.create ~shards:4 ~seed:7 () in
  for key = 0 to 200 do
    let s = Ring.route r key in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 4);
    Alcotest.(check int) "route is deterministic" s (Ring.route r key)
  done;
  for s = 0 to 3 do
    Alcotest.(check int) "live delegate is itself" s (Ring.delegate r s);
    Alcotest.(check int) "successor list length" 2
      (List.length (Ring.successors r s))
  done

let test_ring_suspicion_lifecycle () =
  let r = Ring.create ~timeout:3 ~shards:4 ~seed:7 () in
  let fired = ref [] in
  Ring.on_suspect r (fun s -> fired := s :: !fired);
  Ring.freeze r 1;
  Ring.tick r;
  Ring.tick r;
  Alcotest.(check bool) "below timeout: live" false (Ring.suspected r 1);
  Ring.tick r;
  Alcotest.(check bool) "at timeout: suspected" true (Ring.suspected r 1);
  Alcotest.(check (list int)) "hook fired once" [ 1 ] !fired;
  Ring.tick r;
  Alcotest.(check (list int)) "no refire" [ 1 ] !fired;
  (* routing and delegation now avoid shard 1 *)
  for key = 0 to 100 do
    Alcotest.(check bool) "route avoids suspect" true (Ring.route r key <> 1)
  done;
  let d = Ring.delegate r 1 in
  Alcotest.(check bool) "delegate moved" true (d <> 1);
  Alcotest.(check bool) "delegate live" false (Ring.suspected r d);
  (* rejoin: unfreeze + one heartbeat clears suspicion *)
  Ring.unfreeze r 1;
  Ring.tick r;
  Alcotest.(check bool) "rejoined" false (Ring.suspected r 1);
  Alcotest.(check int) "delegate restored" 1 (Ring.delegate r 1)

let test_ring_report_immediate () =
  let r = Ring.create ~shards:3 ~seed:11 () in
  Ring.report r 2;
  Alcotest.(check bool) "reported => suspected" true (Ring.suspected r 2);
  Alcotest.(check bool) "delegate avoids it" true (Ring.delegate r 2 <> 2)

let test_ring_positions_distinct () =
  let r = Ring.create ~shards:64 ~seed:3 () in
  let seen = Hashtbl.create 64 in
  for s = 0 to 63 do
    let p = Ring.position r s in
    Alcotest.(check bool) "distinct position" false (Hashtbl.mem seen p);
    Hashtbl.replace seen p ()
  done

(* ---- Mailbox ---- *)

let test_mailbox_fifo_and_growth () =
  let mb = Mailbox.create ~capacity:2 () in
  Alcotest.(check bool) "push a" true (Mailbox.push mb 'a');
  Alcotest.(check bool) "push b" true (Mailbox.push mb 'b');
  Alcotest.(check bool) "full" false (Mailbox.push mb 'x');
  Alcotest.(check (option char)) "fifo 1" (Some 'a') (Mailbox.pop mb);
  (* grow while non-empty (quiescent): queued entry survives in order *)
  Mailbox.ensure_capacity mb 8;
  Alcotest.(check bool) "cap grew" true (Mailbox.capacity mb >= 8);
  List.iter (fun c -> assert (Mailbox.push mb c)) [ 'c'; 'd' ];
  Alcotest.(check (option char)) "fifo 2" (Some 'b') (Mailbox.pop mb);
  Alcotest.(check (option char)) "fifo 3" (Some 'c') (Mailbox.pop mb);
  Alcotest.(check (option char)) "fifo 4" (Some 'd') (Mailbox.pop mb);
  Alcotest.(check (option char)) "empty" None (Mailbox.pop mb);
  Alcotest.(check int) "high water" 3 (Mailbox.high_water mb)

(* ---- byte-identity with the flat engine ---- *)

type ev = Ins of int * int list | Del of int list

(* Build a random attack script by running it against a flat engine:
   inserts of fresh ids wired to live nodes, round-deletes of up to [k]
   simultaneous victims. Returns the script and the flat engine's
   per-event deltas plus its final state. *)
let gen_script seed g0 ~events ~k =
  let rng = Rng.create seed in
  let fg = Fg.of_graph (Adjacency.copy g0) in
  let script = ref [] and deltas = ref [] in
  for _ = 1 to events do
    let live = Fg.live_nodes fg in
    let n_live = List.length live in
    if n_live > 8 && Rng.float rng 1.0 < 0.75 then begin
      let nv = 1 + Rng.int rng (min k (n_live - 2)) in
      let victims =
        Array.to_list (Rng.sample rng nv (Array.of_list live))
      in
      let d, _ = Fg.delete_batch_delta fg victims in
      script := Del victims :: !script;
      deltas := d :: !deltas
    end
    else begin
      let id = Fg.num_seen fg in
      let nn = 1 + Rng.int rng 3 in
      let nbrs = Array.to_list (Rng.sample rng nn (Array.of_list live)) in
      let d = Fg.insert_delta fg id nbrs in
      script := Ins (id, nbrs) :: !script;
      deltas := d :: !deltas
    end
  done;
  (List.rev !script, List.rev !deltas, fg)

let root_ids fg =
  List.sort compare (List.map (fun v -> v.Rt.id) (Rt.rt_roots (Fg.ctx fg)))

let check_same_state label flat eng =
  let fg = Engine.fg eng in
  Alcotest.(check bool)
    (label ^ ": graph identical") true
    (Adjacency.equal (Fg.graph flat) (Fg.graph fg));
  Alcotest.(check bool)
    (label ^ ": gprime identical") true
    (Adjacency.equal (Fg.gprime flat) (Fg.gprime fg));
  Alcotest.(check (list int)) (label ^ ": RT root ids") (root_ids flat) (root_ids fg);
  Alcotest.(check int) (label ^ ": generation") (Fg.generation flat) (Fg.generation fg)

(* Replay [script] on a K-shard engine; every per-event delta must be
   structurally equal to the flat engine's, and every round must pass
   the sharded audit. [block] is tiny so repair groups straddle shards
   (forced cross-shard deletes). *)
let replay_and_check ?(audit = true) ~shards ~block g0 script flat_deltas flat =
  let eng = Engine.create ~shards ~block ~seed:42 (Adjacency.copy g0) in
  List.iter2
    (fun ev flat_d ->
      let d =
        match ev with
        | Ins (id, nbrs) -> Engine.insert_delta eng id nbrs
        | Del victims ->
            let d, _ = Engine.delete_round_delta eng victims in
            if audit then begin
              match
                Check.check_round (Engine.fg eng) ~delta:d
                  ~info:(Engine.last_round eng)
              with
              | [] -> ()
              | e :: _ -> Alcotest.failf "audit (K=%d): %s" shards e
            end;
            d
      in
      if d <> flat_d then
        Alcotest.failf "delta diverged (K=%d) at gen %d" shards d.Fg_core.Delta.gen)
    script flat_deltas;
  check_same_state (Printf.sprintf "K=%d" shards) flat eng;
  (match Fg_core.Invariants.check (Engine.fg eng) with
  | [] -> ()
  | e :: _ -> Alcotest.failf "invariants (K=%d): %s" shards e);
  eng

let test_identity_er () =
  let rng = Rng.create 905 in
  let g0 = Generators.erdos_renyi rng 80 0.08 in
  let script, deltas, flat = gen_script 31 g0 ~events:40 ~k:4 in
  List.iter
    (fun shards -> ignore (replay_and_check ~shards ~block:2 g0 script deltas flat))
    [ 1; 2; 4 ]

let test_identity_ba () =
  let rng = Rng.create 906 in
  let g0 = Generators.barabasi_albert rng 70 3 in
  let script, deltas, flat = gen_script 77 g0 ~events:30 ~k:5 in
  List.iter
    (fun shards -> ignore (replay_and_check ~shards ~block:4 g0 script deltas flat))
    [ 2; 4 ]

(* cross-shard groups actually occurred: with block=2 over 80 nodes and
   multi-victim rounds, some group must span owners *)
let test_cross_shard_groups_exercised () =
  let rng = Rng.create 907 in
  let g0 = Generators.erdos_renyi rng 60 0.1 in
  let script, deltas, flat = gen_script 13 g0 ~events:25 ~k:6 in
  let eng = replay_and_check ~shards:4 ~block:2 g0 script deltas flat in
  let stats = Engine.stats eng in
  let cross = Array.fold_left (fun a s -> a + s.Engine.cross_groups) 0 stats in
  let heals = Array.fold_left (fun a s -> a + s.Engine.heals) 0 stats in
  Alcotest.(check bool) "some groups were cross-shard" true (cross > 0);
  Alcotest.(check bool) "heals happened" true (heals > 0);
  Alcotest.(check bool) "work spread beyond one shard" true
    (Array.to_list stats |> List.filter (fun s -> s.Engine.heals > 0) |> List.length > 1)

(* frozen-shard recovery: freeze mid-script, keep attacking (groups
   re-home through the ring's retry path), unfreeze, finish — the result
   must still be byte-identical to the flat engine *)
let test_frozen_shard_recovery () =
  let rng = Rng.create 908 in
  let g0 = Generators.erdos_renyi rng 90 0.08 in
  let script, deltas, flat = gen_script 55 g0 ~events:36 ~k:4 in
  let eng = Engine.create ~shards:4 ~block:2 ~seed:42 (Adjacency.copy g0) in
  let n = List.length script in
  let retried = ref 0 in
  List.iteri
    (fun i ev ->
      if i = n / 3 then Engine.freeze_shard eng 1;
      if i = 2 * n / 3 then Engine.unfreeze_shard eng 1;
      let d =
        match ev with
        | Ins (id, nbrs) -> Engine.insert_delta eng id nbrs
        | Del victims ->
            let d, _ = Engine.delete_round_delta eng victims in
            retried := !retried + (Engine.last_round eng).Engine.ri_retried;
            d
      in
      if d <> List.nth deltas i then
        Alcotest.failf "delta diverged under freeze at event %d" i)
    script;
  Alcotest.(check bool) "retry path exercised" true (!retried > 0);
  Alcotest.(check bool) "suspicion raised" true (Engine.suspicions eng >= 1);
  Alcotest.(check bool) "shard healthy again" false (Ring.suspected (Engine.ring eng) 1);
  check_same_state "frozen/recovered" flat eng;
  match Fg_core.Invariants.check (Engine.fg eng) with
  | [] -> ()
  | e :: _ -> Alcotest.failf "invariants after recovery: %s" e

(* the staged round machinery on the core API: healing groups in reverse
   order on two executors must equal delete_batch *)
let test_core_round_reverse_equals_batch () =
  let rng = Rng.create 909 in
  let g0 = Generators.erdos_renyi rng 50 0.12 in
  let fg_a = Fg.of_graph (Adjacency.copy g0) in
  let fg_b = Fg.of_graph (Adjacency.copy g0) in
  let wrng = Rng.create 4242 in
  for _ = 1 to 10 do
    let live = Fg.live_nodes fg_a in
    if List.length live > 10 then begin
      let victims =
        Array.to_list (Rng.sample wrng 4 (Array.of_list live))
      in
      Fg.delete_batch fg_a victims;
      let ex0 = Fg.round_executor ~slot:0 fg_b in
      let ex1 = Fg.round_executor ~slot:1 fg_b in
      Fg.delete_round fg_b victims ~exec:(fun groups ->
          for i = Array.length groups - 1 downto 0 do
            let ex = if i mod 2 = 0 then ex0 else ex1 in
            Fg.heal_group_staged fg_b ~executor:ex groups.(i)
          done)
    end
  done;
  Alcotest.(check bool) "graph identical" true
    (Adjacency.equal (Fg.graph fg_a) (Fg.graph fg_b));
  Alcotest.(check bool) "gprime identical" true
    (Adjacency.equal (Fg.gprime fg_a) (Fg.gprime fg_b));
  Alcotest.(check (list int)) "RT root ids" (root_ids fg_a) (root_ids fg_b)

(* ---- per-shard serving stores ---- *)

let csr_edges csr =
  (* iter_row works in dense indices; map back to node ids *)
  let acc = ref [] in
  for i = 0 to Fg_graph.Csr.num_nodes csr - 1 do
    let u = Fg_graph.Csr.id csr i in
    Fg_graph.Csr.iter_row
      (fun j ->
        let v = Fg_graph.Csr.id csr j in
        if u < v then acc := (u, v) :: !acc)
      csr i
  done;
  List.sort compare !acc

let graph_edges g =
  let acc = ref [] in
  Adjacency.iter_edges (fun u v -> acc := (min u v, max u v) :: !acc) g;
  List.sort compare !acc

let test_publish_shards () =
  let rng = Rng.create 910 in
  let g0 = Generators.erdos_renyi rng 60 0.1 in
  let eng = Engine.create ~shards:3 ~block:4 ~seed:42 (Adjacency.copy g0) in
  let arng = Rng.create 5 in
  for _ = 1 to 6 do
    let live = Fg.live_nodes (Engine.fg eng) in
    Engine.delete_round eng [ Rng.pick arng live ]
  done;
  Engine.publish_shards eng;
  let gen = Fg.generation (Engine.fg eng) in
  let union = ref [] in
  for s = 0 to 2 do
    let store = Engine.shard_store eng s in
    Alcotest.(check int)
      (Printf.sprintf "store %d at engine gen" s)
      gen
      (Fg_graph.Snapshot_store.current_gen store);
    match Fg_graph.Snapshot_store.peek store with
    | None -> Alcotest.fail "no snapshot"
    | Some snap ->
        let edges = csr_edges snap.Fg_graph.Snapshot_store.value.Engine.s_csr in
        let m = Engine.map eng in
        List.iter
          (fun (u, v) ->
            if Map.owner m u <> s && Map.owner m v <> s then
              Alcotest.failf "shard %d stores foreign edge (%d,%d)" s u v)
          edges;
        union := edges @ !union
  done;
  Alcotest.(check bool) "shard union covers the graph" true
    (List.sort_uniq compare !union = graph_edges (Fg.graph (Engine.fg eng)));
  (* a frozen shard keeps serving its last generation *)
  Engine.freeze_shard eng 0;
  let live = Fg.live_nodes (Engine.fg eng) in
  Engine.delete_round eng [ Rng.pick arng live ];
  Engine.publish_shards eng;
  let gen' = Fg.generation (Engine.fg eng) in
  Alcotest.(check bool) "engine advanced" true (gen' > gen);
  Alcotest.(check int) "frozen store is stale" gen
    (Fg_graph.Snapshot_store.current_gen (Engine.shard_store eng 0));
  Alcotest.(check int) "live store advanced" gen'
    (Fg_graph.Snapshot_store.current_gen (Engine.shard_store eng 1))

let suite =
  [
    Alcotest.test_case "map: block-cyclic formula" `Quick test_map_formula;
    Alcotest.test_case "map: rejects bad args" `Quick test_map_rejects;
    Alcotest.test_case "ring: route + delegates live" `Quick test_ring_route_live;
    Alcotest.test_case "ring: suspicion lifecycle" `Quick test_ring_suspicion_lifecycle;
    Alcotest.test_case "ring: report is immediate" `Quick test_ring_report_immediate;
    Alcotest.test_case "ring: positions distinct" `Quick test_ring_positions_distinct;
    Alcotest.test_case "mailbox: fifo + growth" `Quick test_mailbox_fifo_and_growth;
    Alcotest.test_case "identity: ER script, K in {1,2,4}" `Quick test_identity_er;
    Alcotest.test_case "identity: BA script, K in {2,4}" `Quick test_identity_ba;
    Alcotest.test_case "identity: cross-shard groups occur" `Quick
      test_cross_shard_groups_exercised;
    Alcotest.test_case "identity: frozen-shard recovery" `Quick
      test_frozen_shard_recovery;
    Alcotest.test_case "core: reverse staged round = batch" `Quick
      test_core_round_reverse_equals_batch;
    Alcotest.test_case "stores: per-shard publish" `Quick test_publish_shards;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_map_canonical_runs ]
