(* Tests for the CSR snapshot kernel and the multicore metric pipeline:
   - CSR BFS distances = Bfs.distances (hashtable oracle) on random
     ER/BA/star graphs, including post-heal graphs with RT edges;
   - Stretch.exact (CSR kernel) = Stretch.exact_tbl (pre-CSR oracle);
   - reports/violations byte-identical across domain counts 1/2/4;
   - Parallel.map determinism and clamping. *)

open Fg_graph
module Fg = Fg_core.Forgiving_graph
module Stretch = Fg_metrics.Stretch

(* ---- helpers ---- *)

let sorted_bindings tbl =
  List.sort compare (Node_id.Tbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let check_distances_match g =
  let csr = Csr.of_adjacency g in
  Adjacency.iter_nodes
    (fun v ->
      let expected = sorted_bindings (Bfs.distances g v) in
      let actual = sorted_bindings (Csr.distances csr v) in
      if expected <> actual then
        Alcotest.failf "BFS mismatch from %d (%d vs %d reachable)" v
          (List.length expected) (List.length actual))
    g

let healed_pair seed n =
  let rng = Rng.create seed in
  let g0 = Generators.erdos_renyi rng n (4.0 /. float_of_int n) in
  let fg = Fg.of_graph g0 in
  let victims = ref 0 in
  while !victims < n / 3 && List.length (Fg.live_nodes fg) > 2 do
    Fg.delete fg (Rng.pick rng (Fg.live_nodes fg));
    incr victims
  done;
  fg

(* ---- CSR structure ---- *)

let test_csr_shape () =
  let g = Generators.star 6 in
  let csr = Csr.of_adjacency g in
  Alcotest.(check int) "nodes" 6 (Csr.num_nodes csr);
  Alcotest.(check int) "edges" 5 (Csr.num_edges csr);
  (* dense order = sorted id order *)
  Alcotest.(check int) "id 0" 0 (Csr.id csr 0);
  Alcotest.(check (option int)) "index of id 5" (Some 5) (Csr.index csr 5);
  Alcotest.(check (option int)) "absent id" None (Csr.index csr 42);
  Alcotest.(check int) "centre degree" 5 (Csr.degree csr 0);
  let row = ref [] in
  Csr.iter_row (fun i -> row := i :: !row) csr 0;
  Alcotest.(check (list int)) "row ascending" [ 1; 2; 3; 4; 5 ] (List.rev !row)

let test_csr_empty_and_isolated () =
  let g = Adjacency.create () in
  let csr = Csr.of_adjacency g in
  Alcotest.(check int) "empty nodes" 0 (Csr.num_nodes csr);
  Adjacency.add_node g 7;
  Adjacency.add_node g 3;
  let csr = Csr.of_adjacency g in
  Alcotest.(check int) "two isolated" 2 (Csr.num_nodes csr);
  let s = Csr.scratch csr in
  let dist = Csr.bfs csr s 0 in
  Alcotest.(check int) "self distance" 0 dist.(0);
  Alcotest.(check int) "other unreachable" (-1) dist.(1);
  Alcotest.(check int) "visited just source" 1 (Csr.visited_count s);
  Alcotest.(check int) "eccentricity 0" 0 (Csr.max_dist s)

let test_components () =
  let g = Adjacency.of_edges [ (0, 1); (1, 2); (5, 6) ] in
  Adjacency.add_node g 9;
  let csr = Csr.of_adjacency g in
  let comp, count = Csr.components csr in
  Alcotest.(check int) "three components" 3 count;
  let c v = comp.(Option.get (Csr.index csr v)) in
  Alcotest.(check bool) "0~2" true (c 0 = c 2);
  Alcotest.(check bool) "5~6" true (c 5 = c 6);
  Alcotest.(check bool) "0!~5" true (c 0 <> c 5);
  Alcotest.(check bool) "9 alone" true (c 9 <> c 0 && c 9 <> c 5)

let test_scratch_reuse () =
  (* scratch reset only undoes the previous run: alternate sources on a
     disconnected graph and verify no stale distances leak *)
  let g = Adjacency.of_edges [ (0, 1); (2, 3); (3, 4) ] in
  let csr = Csr.of_adjacency g in
  let s = Csr.scratch csr in
  let i v = Option.get (Csr.index csr v) in
  let d1 = Csr.bfs csr s (i 0) in
  Alcotest.(check int) "0->1" 1 d1.(i 1);
  Alcotest.(check int) "0-/->4" (-1) d1.(i 4);
  let d2 = Csr.bfs csr s (i 2) in
  Alcotest.(check int) "2->4" 2 d2.(i 4);
  Alcotest.(check int) "2-/->1 (no stale 0-run state)" (-1) d2.(i 1);
  let d3 = Csr.bfs csr s (i 0) in
  Alcotest.(check int) "0->1 again" 1 d3.(i 1);
  Alcotest.(check int) "0-/->3" (-1) d3.(i 3)

(* ---- BFS kernel vs hashtable oracle ---- *)

let prop_bfs_matches_er =
  QCheck2.Test.make ~name:"CSR BFS = Bfs.distances on ER" ~count:40
    QCheck2.Gen.(tup2 (int_range 0 9999) (int_range 2 40))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Generators.erdos_renyi rng n (3.0 /. float_of_int n) in
      check_distances_match g;
      true)

let prop_bfs_matches_ba =
  QCheck2.Test.make ~name:"CSR BFS = Bfs.distances on BA" ~count:25
    QCheck2.Gen.(tup2 (int_range 0 9999) (int_range 4 36))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Generators.barabasi_albert rng n 2 in
      check_distances_match g;
      true)

let test_bfs_matches_star () =
  check_distances_match (Generators.star 17)

let prop_bfs_matches_healed =
  QCheck2.Test.make ~name:"CSR BFS = Bfs.distances on post-heal graphs" ~count:15
    QCheck2.Gen.(tup2 (int_range 0 9999) (int_range 10 28))
    (fun (seed, n) ->
      let fg = healed_pair seed n in
      check_distances_match (Fg.graph fg);
      check_distances_match (Fg.gprime fg);
      true)

(* ---- Bfs_kernel: direction-optimizing BFS vs Csr.bfs ---- *)

(* Forced modes pin both directions against the plain top-down oracle:
   [~alpha:0] never leaves top-down, [~alpha:max_int ~beta:max_int] goes
   bottom-up at the first level and stays there. *)
let check_dirop_distances g =
  let csr = Csr.of_adjacency g in
  let n = Csr.num_nodes csr in
  let s = Csr.scratch csr in
  let ks = Bfs_kernel.create csr in
  for src = 0 to n - 1 do
    let expected = Array.copy (Csr.bfs csr s src) in
    let reachable = Array.fold_left (fun a d -> if d >= 0 then a + 1 else a) 0 expected in
    let check name actual =
      if actual <> expected then
        Alcotest.failf "dirop(%s) mismatch from dense %d" name src
    in
    check "auto" (Bfs_kernel.bfs csr ks src);
    Alcotest.(check int) "visited_count" reachable (Bfs_kernel.visited_count ks);
    check "top-down" (Bfs_kernel.bfs csr ks ~alpha:0 src);
    check "bottom-up" (Bfs_kernel.bfs csr ks ~alpha:max_int ~beta:max_int src)
  done

let prop_dirop_matches_er =
  QCheck2.Test.make ~name:"dirop BFS = Csr.bfs on ER" ~count:30
    QCheck2.Gen.(tup2 (int_range 0 9999) (int_range 2 40))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      check_dirop_distances (Generators.erdos_renyi rng n (3.0 /. float_of_int n));
      true)

let prop_dirop_matches_ba =
  QCheck2.Test.make ~name:"dirop BFS = Csr.bfs on BA" ~count:20
    QCheck2.Gen.(tup2 (int_range 0 9999) (int_range 4 36))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      check_dirop_distances (Generators.barabasi_albert rng n 2);
      true)

let prop_dirop_matches_healed =
  QCheck2.Test.make ~name:"dirop BFS = Csr.bfs on post-heal graphs" ~count:12
    QCheck2.Gen.(tup2 (int_range 0 9999) (int_range 10 28))
    (fun (seed, n) ->
      let fg = healed_pair seed n in
      check_dirop_distances (Fg.graph fg);
      check_dirop_distances (Fg.gprime fg);
      true)

let test_dirop_star_and_disconnected () =
  check_dirop_distances (Generators.star 17);
  let g = Adjacency.of_edges [ (0, 1); (1, 2); (5, 6) ] in
  Adjacency.add_node g 9;
  check_dirop_distances g

(* ---- Bfs_kernel: batched multi-source BFS vs Csr.bfs ---- *)

let check_msbfs ?(off = 0) g =
  let csr = Csr.of_adjacency g in
  let n = Csr.num_nodes csr in
  if n > 0 then begin
    let s = Csr.scratch csr in
    let ms = Bfs_kernel.ms_create () in
    let k = min n Bfs_kernel.word_bits in
    (* spread sources; [off] junk entries up front exercise the window *)
    let sources =
      Array.init (off + k) (fun i -> if i < off then -1 else (i - off) * n / k)
    in
    Bfs_kernel.ms_run csr ms ~sources ~off ~len:k;
    for slot = 0 to k - 1 do
      let expected = Csr.bfs csr s sources.(off + slot) in
      for v = 0 to n - 1 do
        let got = Bfs_kernel.ms_dist ms ~slot ~v in
        if got <> expected.(v) then
          Alcotest.failf "msbfs mismatch slot %d node %d: %d vs %d" slot v got
            expected.(v);
        let bit = Bfs_kernel.ms_reached ms ~v land (1 lsl slot) <> 0 in
        if bit <> (expected.(v) >= 0) then
          Alcotest.failf "msbfs reached-bit mismatch slot %d node %d" slot v
      done
    done
  end

let prop_msbfs_matches_er =
  QCheck2.Test.make ~name:"msbfs = Csr.bfs on ER" ~count:25
    QCheck2.Gen.(tup2 (int_range 0 9999) (int_range 2 90))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      check_msbfs (Generators.erdos_renyi rng n (3.0 /. float_of_int n));
      true)

let prop_msbfs_matches_healed =
  QCheck2.Test.make ~name:"msbfs = Csr.bfs on post-heal graphs" ~count:12
    QCheck2.Gen.(tup2 (int_range 0 9999) (int_range 10 28))
    (fun (seed, n) ->
      let fg = healed_pair seed n in
      check_msbfs (Fg.graph fg);
      check_msbfs ~off:2 (Fg.gprime fg);
      true)

let prop_msbfs_matches_fragmented =
  QCheck2.Test.make ~name:"msbfs = Csr.bfs on fragmented graphs" ~count:12
    QCheck2.Gen.(tup2 (int_range 0 9999) (int_range 6 60))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Generators.erdos_renyi rng n (3.0 /. float_of_int n) in
      let victims = Rng.sample rng (n / 3) (Array.of_list (Adjacency.nodes g)) in
      Array.iter (fun v -> Adjacency.remove_node g v) victims;
      if Adjacency.num_nodes g > 0 then check_msbfs g;
      true)

let test_msbfs_duplicates_and_star () =
  check_msbfs (Generators.star 17);
  (* duplicate sources share a wave; each slot still reads correctly *)
  let csr = Csr.of_adjacency (Generators.ring 8) in
  let ms = Bfs_kernel.ms_create () in
  let sources = [| 3; 3; 0; 3 |] in
  Bfs_kernel.ms_run csr ms ~sources ~off:0 ~len:4;
  let s = Csr.scratch csr in
  List.iter
    (fun slot ->
      let expected = Csr.bfs csr s sources.(slot) in
      for v = 0 to 7 do
        Alcotest.(check int)
          (Printf.sprintf "slot %d node %d" slot v)
          expected.(v)
          (Bfs_kernel.ms_dist ms ~slot ~v)
      done)
    [ 0; 1; 2; 3 ]

(* ---- Parallel ---- *)

let test_parallel_map_deterministic () =
  let f _scratch i = (i * i) + 1 in
  let serial = Parallel.map ~domains:1 ~init:(fun () -> ()) ~f 100 in
  let par = Parallel.map ~domains:2 ~init:(fun () -> ()) ~f 100 in
  Alcotest.(check bool) "same array" true (serial = par);
  Alcotest.(check int) "indexed" 26 serial.(5)

let test_parallel_clamps () =
  Alcotest.(check bool) "default starts serial" true (Parallel.default () = 1);
  Alcotest.(check bool) "resolve None = default" true (Parallel.resolve None = 1);
  Alcotest.(check bool) "huge request clamped" true (Parallel.resolve (Some 10_000) <= 128);
  Alcotest.(check int) "zero floors to 1" 1 (Parallel.resolve (Some 0));
  Alcotest.(check int) "empty input" 0 (Array.length (Parallel.map ~domains:4 ~init:(fun () -> ()) ~f:(fun _ i -> i) 0))

let test_parallel_propagates_exception () =
  let raised =
    try
      ignore
        (Parallel.map ~domains:2
           ~init:(fun () -> ())
           ~f:(fun _ i -> if i = 17 then failwith "boom" else i)
           64);
      false
    with Failure _ -> true
  in
  Alcotest.(check bool) "exception surfaces" true raised

(* ---- Stretch: CSR kernel vs oracle, domain independence ---- *)

let reports_equal_modulo_mean r1 r2 =
  r1.Stretch.max_stretch = r2.Stretch.max_stretch
  && r1.Stretch.witness = r2.Stretch.witness
  && r1.Stretch.pairs = r2.Stretch.pairs
  && r1.Stretch.disconnected = r2.Stretch.disconnected
  && Float.abs (r1.Stretch.mean_stretch -. r2.Stretch.mean_stretch) < 1e-9

let prop_stretch_matches_oracle =
  QCheck2.Test.make ~name:"Stretch.exact = exact_tbl oracle (healed)" ~count:12
    QCheck2.Gen.(tup2 (int_range 0 9999) (int_range 8 26))
    (fun (seed, n) ->
      let fg = healed_pair seed n in
      let graph = Fg.graph fg and reference = Fg.gprime fg in
      let nodes = Fg.live_nodes fg in
      let fast = Stretch.exact ~graph ~reference nodes in
      let oracle = Stretch.exact_tbl ~graph ~reference nodes in
      reports_equal_modulo_mean fast oracle)

let prop_stretch_matches_oracle_fragmented =
  (* no healer: deletions fragment the graph, exercising both the
     disconnected-pair accounting and the no-BFS component fallback *)
  QCheck2.Test.make ~name:"Stretch.exact = exact_tbl oracle (fragmented)" ~count:12
    QCheck2.Gen.(tup2 (int_range 0 9999) (int_range 6 24))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let reference = Generators.erdos_renyi rng n (3.0 /. float_of_int n) in
      let graph = Adjacency.copy reference in
      let victims = Rng.sample rng (n / 3) (Array.of_list (Adjacency.nodes graph)) in
      Array.iter (fun v -> Adjacency.remove_node graph v) victims;
      (* measured nodes: survivors only, as the harness does *)
      let nodes = Adjacency.nodes graph in
      let fast = Stretch.exact ~graph ~reference nodes in
      let oracle = Stretch.exact_tbl ~graph ~reference nodes in
      reports_equal_modulo_mean fast oracle)

let test_stretch_isolated_source_skip () =
  (* source 0 is isolated in graph but connected in reference: its pairs
     must all count as disconnected, via the component-label path *)
  let reference = Generators.ring 6 in
  let graph = Adjacency.copy reference in
  Adjacency.remove_edge graph 0 1;
  Adjacency.remove_edge graph 5 0;
  let r = Stretch.exact ~graph ~reference (Adjacency.nodes reference) in
  let oracle = Stretch.exact_tbl ~graph ~reference (Adjacency.nodes reference) in
  Alcotest.(check int) "disconnected = oracle" oracle.Stretch.disconnected
    r.Stretch.disconnected;
  Alcotest.(check int) "5 broken pairs" 5 r.Stretch.disconnected;
  Alcotest.(check int) "pairs = oracle" oracle.Stretch.pairs r.Stretch.pairs

let prop_stretch_batched_equals_sweep =
  (* the batched ms-BFS path must reproduce the per-source sweep kernel
     byte-for-byte, float fields included: same partial stream, same
     merge *)
  QCheck2.Test.make ~name:"Stretch.exact = exact_sweep (byte-identical)" ~count:12
    QCheck2.Gen.(tup2 (int_range 0 9999) (int_range 8 40))
    (fun (seed, n) ->
      let fg = healed_pair seed n in
      let graph = Fg.graph fg and reference = Fg.gprime fg in
      let nodes = Fg.live_nodes fg in
      let batched = Stretch.exact ~graph ~reference nodes in
      let sweep = Stretch.exact_sweep ~graph ~reference nodes in
      batched = sweep)

let prop_stretch_domain_independent =
  QCheck2.Test.make ~name:"Stretch.exact byte-identical for domains 1/2/4" ~count:10
    QCheck2.Gen.(tup2 (int_range 0 9999) (int_range 8 26))
    (fun (seed, n) ->
      let fg = healed_pair seed n in
      let graph = Fg.graph fg and reference = Fg.gprime fg in
      let nodes = Fg.live_nodes fg in
      let r1 = Stretch.exact ~domains:1 ~graph ~reference nodes in
      let r2 = Stretch.exact ~domains:2 ~graph ~reference nodes in
      let r4 = Stretch.exact ~domains:4 ~graph ~reference nodes in
      r1 = r2 && r2 = r4)

let test_sampled_measure_domain_independent () =
  let fg = healed_pair 77 24 in
  let graph = Fg.graph fg and reference = Fg.gprime fg in
  let nodes = Fg.live_nodes fg in
  let s1 = Stretch.sampled ~domains:1 (Rng.create 5) ~k:8 ~graph ~reference nodes in
  let s2 = Stretch.sampled ~domains:2 (Rng.create 5) ~k:8 ~graph ~reference nodes in
  Alcotest.(check bool) "sampled identical" true (s1 = s2);
  let m1 = Stretch.measure ~domains:1 ~graph ~reference ~sources:nodes nodes in
  let m2 = Stretch.measure ~domains:2 ~graph ~reference ~sources:nodes nodes in
  Alcotest.(check bool) "measure identical" true (m1 = m2)

let test_invariant_stretch_domain_independent () =
  let fg = healed_pair 3 24 in
  let v1 = Fg_core.Invariants.check_stretch_bound ~domains:1 fg in
  let v2 = Fg_core.Invariants.check_stretch_bound ~domains:2 fg in
  Alcotest.(check (list string)) "same violations" v1 v2;
  Alcotest.(check (list string)) "bound holds" [] v1

(* ---- apply_delta determinism ---- *)

(* The delta-apply path is deterministic: applying the identical delta
   twice from the same base yields two structurally equal snapshots, both
   equal to a from-scratch rebuild. PR 8 leans on this — the snapshot
   store may publish, discard, and re-derive a generation (e.g. after an
   aborted heal) and readers must never be able to tell which copy they
   pinned. *)
let test_apply_delta_twice_synthetic () =
  let g = Adjacency.of_edges [ (0, 1); (1, 2); (2, 3); (3, 0); (2, 4); (4, 5) ] in
  let base = Csr.of_adjacency g in
  Adjacency.remove_node g 4;
  Adjacency.add_edge g 3 5;
  let touched = [ 2; 3; 5 ] and removed = [ 4 ] in
  let a = Csr.apply_delta base ~touched ~removed g in
  let b = Csr.apply_delta base ~touched ~removed g in
  let rebuilt = Csr.of_adjacency g in
  Alcotest.(check bool) "first apply = rebuild" true (Csr.equal a rebuilt);
  Alcotest.(check bool) "second apply = rebuild" true (Csr.equal b rebuilt);
  Alcotest.(check bool) "applies agree with each other" true (Csr.equal a b);
  (* the base snapshot was not mutated by either apply *)
  Alcotest.(check int) "base node count intact" 6 (Csr.num_nodes base);
  Alcotest.(check int) "base edge count intact" 6 (Csr.num_edges base)

let prop_apply_delta_twice_engine =
  QCheck2.Test.make ~name:"Csr.apply_delta twice from same base = rebuild" ~count:25
    QCheck2.Gen.(tup2 (int_range 0 9999) (int_range 8 40))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g0 = Generators.erdos_renyi rng n (4.0 /. float_of_int n) in
      let fg = Fg.of_graph g0 in
      let base = Csr.of_adjacency (Fg.graph fg) in
      let d, _healed = Fg.delete_delta fg (Rng.pick rng (Fg.live_nodes fg)) in
      let touched = Fg_core.Delta.touched d and removed = Fg_core.Delta.removed d in
      let g = Fg.graph fg in
      let a = Csr.apply_delta base ~touched ~removed g in
      let b = Csr.apply_delta base ~touched ~removed g in
      let rebuilt = Csr.of_adjacency g in
      Csr.equal a rebuilt && Csr.equal b rebuilt && Csr.equal a b)

(* ---- Diameter / centrality over CSR ---- *)

let test_diameter_domain_independent () =
  let rng = Rng.create 11 in
  let g = Generators.erdos_renyi rng 40 0.08 in
  Alcotest.(check int) "exact" (Diameter.exact ~domains:1 g) (Diameter.exact ~domains:2 g);
  Alcotest.(check int) "radius" (Diameter.radius ~domains:1 g) (Diameter.radius ~domains:2 g);
  Alcotest.(check (float 0.)) "apl byte-identical"
    (Diameter.average_path_length ~domains:1 g)
    (Diameter.average_path_length ~domains:2 g)

let prop_diameter_matches_oracle =
  QCheck2.Test.make ~name:"Diameter.exact = max eccentricity oracle" ~count:25
    QCheck2.Gen.(tup2 (int_range 0 9999) (int_range 2 30))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Generators.erdos_renyi rng n (3.0 /. float_of_int n) in
      let oracle = Adjacency.fold_nodes (fun v acc -> max acc (Bfs.eccentricity g v)) g 0 in
      Diameter.exact g = oracle)

let suite =
  [
    Alcotest.test_case "csr: shape + dense order" `Quick test_csr_shape;
    Alcotest.test_case "csr: empty and isolated nodes" `Quick test_csr_empty_and_isolated;
    Alcotest.test_case "csr: components" `Quick test_components;
    Alcotest.test_case "csr: scratch reuse across sources" `Quick test_scratch_reuse;
    Alcotest.test_case "csr: BFS matches oracle on star" `Quick test_bfs_matches_star;
    Alcotest.test_case "dirop: star + disconnected" `Quick test_dirop_star_and_disconnected;
    Alcotest.test_case "msbfs: duplicates + star" `Quick test_msbfs_duplicates_and_star;
    Alcotest.test_case "parallel: map deterministic" `Quick test_parallel_map_deterministic;
    Alcotest.test_case "parallel: clamps + empty" `Quick test_parallel_clamps;
    Alcotest.test_case "parallel: exceptions surface" `Quick
      test_parallel_propagates_exception;
    Alcotest.test_case "stretch: isolated source via components" `Quick
      test_stretch_isolated_source_skip;
    Alcotest.test_case "stretch: sampled/measure domain-independent" `Quick
      test_sampled_measure_domain_independent;
    Alcotest.test_case "invariants: stretch bound domain-independent" `Quick
      test_invariant_stretch_domain_independent;
    Alcotest.test_case "diameter: domain-independent" `Quick
      test_diameter_domain_independent;
    Alcotest.test_case "csr: apply_delta twice = rebuild (synthetic)" `Quick
      test_apply_delta_twice_synthetic;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_bfs_matches_er;
        prop_bfs_matches_ba;
        prop_bfs_matches_healed;
        prop_dirop_matches_er;
        prop_dirop_matches_ba;
        prop_dirop_matches_healed;
        prop_msbfs_matches_er;
        prop_msbfs_matches_healed;
        prop_msbfs_matches_fragmented;
        prop_stretch_matches_oracle;
        prop_stretch_matches_oracle_fragmented;
        prop_stretch_batched_equals_sweep;
        prop_stretch_domain_independent;
        prop_diameter_matches_oracle;
        prop_apply_delta_twice_engine;
      ]
