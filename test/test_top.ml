(* Fg_obs.Top: the aggregator behind [fg top] — deterministic synthetic
   event streams in, rates/quantiles/stat out — plus a CLI smoke test
   that tails a real attack trace for one plain frame. *)

module Top = Fg_obs.Top
module E = Fg_obs.Event

let span_end ?(counters = []) name ts dur =
  E.Span_end { id = 0; name; ts; dur; attrs = []; counters }

let point ?(attrs = []) name ts = E.Point { name; ts; attrs }

let contains sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_rates () =
  let t = Top.create ~window:10.0 () in
  (* 20 heals and 40 deltas spread over 4 seconds of stream time *)
  for i = 0 to 19 do
    let ts = 0.2 *. float_of_int i in
    Top.feed t (point "fg.delta" ts);
    Top.feed t (point "fg.delta" ts);
    Top.feed t (span_end "fg.delete" ts 0.001)
  done;
  Alcotest.(check int) "events seen" 60 (Top.events_seen t);
  (* window (10s) exceeds the 3.8s span: rates use the actual span *)
  let close what expected got =
    if Float.abs (got -. expected) > 0.6 then
      Alcotest.failf "%s: expected ~%.1f, got %.2f" what expected got
  in
  close "heal rate" (20.0 /. 3.8) (Top.heal_rate t);
  close "delta rate" (40.0 /. 3.8) (Top.delta_rate t)

let test_window_trim () =
  let t = Top.create ~window:5.0 () in
  (* burst at t=0, then silence until t=100: the old burst must have
     slid out of the rate window *)
  for _ = 1 to 50 do
    Top.feed t (span_end "fg.delete" 0.0 0.001)
  done;
  Top.feed t (span_end "fg.delete" 100.0 0.001);
  let r = Top.heal_rate t in
  Alcotest.(check bool)
    (Printf.sprintf "stale heals trimmed (rate %.2f)" r)
    true (r < 1.0)

let test_render_contents () =
  let t = Top.create () in
  Top.feed t (span_end "rt.strip" 1.0 0.0005);
  Top.feed t (span_end "rt.merge" 1.1 0.002);
  Top.feed t (span_end "fg.delete" 1.2 0.004);
  Top.feed t
    (point "fg.stat" ~attrs:[ ("degree_max_ratio", E.Float 2.5) ] 1.3);
  let frame = Top.render ~ansi:false t in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("frame contains " ^ sub) true (contains sub frame))
    [ "heals/s"; "deltas/s"; "rt.strip"; "rt.merge"; "fg.delete"; "p99";
      "degree_max_ratio=2.5" ];
  Alcotest.(check bool) "plain frame has no ANSI escape" false
    (contains "\027[" frame);
  let ansi = Top.render ~ansi:true t in
  Alcotest.(check bool) "ansi frame clears screen" true (contains "\027[" ansi)

let test_duration_quantiles () =
  (* 100 spans of 1ms and one of 100ms: p50 must sit at ~1ms and max at
     100ms (Top should histogram durations, not average them) *)
  let t = Top.create () in
  for i = 0 to 99 do
    Top.feed t (span_end "fg.delete" (0.01 *. float_of_int i) 0.001)
  done;
  Top.feed t (span_end "fg.delete" 1.0 0.1);
  let frame = Top.render ~ansi:false t in
  Alcotest.(check bool) "p50 about 1ms" true
    (contains "1.0" frame && contains "ms" frame);
  Alcotest.(check bool) "max shows the outlier" true (contains "100.0" frame)

let test_cli_top_smoke () =
  let tr = Filename.temp_file "fg_top" ".jsonl" in
  let out = Filename.temp_file "fg_top" ".out" in
  let rc =
    Sys.command
      (Printf.sprintf
         "../bin/fg_cli.exe attack --family er -n 64 --trace %s > /dev/null \
          2>&1"
         (Filename.quote tr))
  in
  Alcotest.(check int) "attack exits 0" 0 rc;
  let rc =
    Sys.command
      (Printf.sprintf "../bin/fg_cli.exe top %s --frames 1 --plain > %s 2>&1"
         (Filename.quote tr) (Filename.quote out))
  in
  Alcotest.(check int) "fg top exits 0" 0 rc;
  let text = In_channel.with_open_bin out In_channel.input_all in
  Sys.remove tr;
  Sys.remove out;
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("top output has " ^ sub) true (contains sub text))
    [ "fg top"; "heals/s"; "fg.delete"; "rt.strip" ]

let test_shard_row () =
  let t = Top.create ~window:10.0 () in
  let shard_point ts h0 h1 d0 d1 =
    point "fg.shard" ts
      ~attrs:
        [
          ("shards", E.Int 2);
          ("round", E.Int 1);
          ("groups", E.Int 2);
          ("s0.heals", E.Int h0);
          ("s0.mbox", E.Int d0);
          ("s1.heals", E.Int h1);
          ("s1.mbox", E.Int d1);
        ]
  in
  Alcotest.(check int) "no points: no rates" 0
    (Array.length (Top.shard_heal_rates t));
  (* cumulative heals: shard 0 gains 20, shard 1 gains 10, over 2s *)
  Top.feed t (shard_point 0.0 0 0 1 1);
  Top.feed t (shard_point 1.0 12 4 3 2);
  Top.feed t (shard_point 2.0 20 10 2 5);
  let rates = Top.shard_heal_rates t in
  Alcotest.(check int) "one rate per shard" 2 (Array.length rates);
  if Float.abs (rates.(0) -. 10.0) > 0.5 then
    Alcotest.failf "s0 rate: expected ~10, got %.2f" rates.(0);
  if Float.abs (rates.(1) -. 5.0) > 0.5 then
    Alcotest.failf "s1 rate: expected ~5, got %.2f" rates.(1);
  let frame = Top.render ~ansi:false t in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("frame contains " ^ sub) true (contains sub frame))
    [ "shards:"; "s0 "; "s1 "; "mbox 2"; "mbox 5" ]

let suite =
  [
    Alcotest.test_case "heal/delta rates over the stream window" `Quick
      test_rates;
    Alcotest.test_case "per-shard rates row from fg.shard points" `Quick
      test_shard_row;
    Alcotest.test_case "stale events slide out of the window" `Quick
      test_window_trim;
    Alcotest.test_case "render includes phases, rates and stats" `Quick
      test_render_contents;
    Alcotest.test_case "phase table shows quantiles, not means" `Quick
      test_duration_quantiles;
    Alcotest.test_case "fg top renders one frame from a real trace" `Quick
      test_cli_top_smoke;
  ]
