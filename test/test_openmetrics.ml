(* Fg_obs.Openmetrics: renderer against the in-repo grammar checker, the
   checker against hand-written counterexamples, and the CLI surface
   ([attack --metrics-every], [fg metrics]) end to end. *)

module M = Fg_obs.Metrics
module Hdr = Fg_obs.Hdr
module Om = Fg_obs.Openmetrics

let sample_registry () =
  let reg = M.create () in
  M.incr_in reg ~n:7 "fg.deletions";
  M.incr_in reg ~n:123 "image.edges_added";
  M.observe_in reg "fg.anchors" 3.0;
  M.observe_in reg "fg.anchors" 5.0;
  M.observe_in reg "fg.anchors" 11.0;
  let h = M.hdr_in reg "profile.heal_ns" in
  List.iter (Hdr.record_sharded h) [ 100; 5_000; 5_100; 250_000; 1_000_000 ];
  reg

let check_valid name text =
  match Om.validate text with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: expected valid, got: %s\n---\n%s" name e text

let check_invalid name text =
  match Om.validate text with
  | Ok () -> Alcotest.failf "%s: expected invalid, was accepted" name
  | Error _ -> ()

let test_render_validates () =
  let reg = sample_registry () in
  let text = Om.render reg in
  check_valid "rendered registry" text;
  (* spot-check the shape, not just the checker *)
  let has sub =
    Alcotest.(check bool) ("contains " ^ sub) true
      (let n = String.length text and m = String.length sub in
       let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
       go 0)
  in
  has "# TYPE fg_deletions counter";
  has "fg_deletions_total 7";
  has "# TYPE fg_anchors summary";
  has "fg_anchors{quantile=\"0.5\"}";
  has "fg_anchors_count 3";
  has "# TYPE profile_heal_ns histogram";
  has "profile_heal_ns_bucket{le=\"+Inf\"} 5";
  has "profile_heal_ns_count 5";
  has "# EOF"

let test_render_empty () = check_valid "empty registry" (Om.render (M.create ()))

let test_hdr_buckets_cumulative () =
  (* parse the bucket lines back out and check they are the cumulative
     form of Hdr.iter_buckets *)
  let reg = sample_registry () in
  let h = Hdr.merged (M.hdr_in reg "profile.heal_ns") in
  let expect = ref [] in
  let cum = ref 0 in
  Hdr.iter_buckets h (fun ~upper ~count ->
      cum := !cum + count;
      expect := (string_of_int upper, !cum) :: !expect);
  let expect = List.rev !expect in
  let text = Om.render reg in
  let got =
    String.split_on_char '\n' text
    |> List.filter_map (fun line ->
           match String.index_opt line '{' with
           | Some _
             when String.starts_with ~prefix:"profile_heal_ns_bucket{le=\"" line
             -> (
               let start = String.length "profile_heal_ns_bucket{le=\"" in
               let close = String.index_from line start '"' in
               let le = String.sub line start (close - start) in
               match String.split_on_char ' ' line with
               | [ _; v ] when le <> "+Inf" -> Some (le, int_of_string v)
               | _ -> None)
           | _ -> None)
  in
  Alcotest.(check (list (pair string int)))
    "cumulative buckets" expect got

let test_family_name () =
  Alcotest.(check string) "dots" "fg_deletions" (Om.family_name "fg.deletions");
  Alcotest.(check string)
    "mixed" "profile_heal_ns"
    (Om.family_name "profile.heal_ns");
  Alcotest.(check string) "leading digit" "_3x" (Om.family_name "3x");
  Alcotest.(check string) "kept" "a_b:c9" (Om.family_name "a_b:c9")

let test_validator_rejects () =
  check_invalid "missing EOF" "# TYPE x counter\nx_total 1\n";
  check_invalid "undeclared family" "x_total 1\n# EOF\n";
  check_invalid "duplicate TYPE"
    "# TYPE x counter\n# TYPE x counter\nx_total 1\n# EOF\n";
  check_invalid "counter without _total" "# TYPE x counter\nx 1\n# EOF\n";
  check_invalid "negative counter" "# TYPE x counter\nx_total -1\n# EOF\n";
  check_invalid "bad value" "# TYPE x counter\nx_total pancake\n# EOF\n";
  check_invalid "quantile out of range"
    "# TYPE s summary\ns{quantile=\"1.5\"} 3\n# EOF\n";
  check_invalid "bucket without le"
    "# TYPE h histogram\nh_bucket 3\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n# EOF\n";
  check_invalid "le not increasing"
    "# TYPE h histogram\n\
     h_bucket{le=\"10\"} 1\n\
     h_bucket{le=\"5\"} 2\n\
     h_bucket{le=\"+Inf\"} 2\nh_count 2\n# EOF\n";
  check_invalid "cumulative count decreases"
    "# TYPE h histogram\n\
     h_bucket{le=\"10\"} 5\n\
     h_bucket{le=\"20\"} 3\n\
     h_bucket{le=\"+Inf\"} 5\nh_count 5\n# EOF\n";
  check_invalid "histogram without +Inf"
    "# TYPE h histogram\nh_bucket{le=\"10\"} 5\nh_count 5\n# EOF\n";
  check_invalid "+Inf disagrees with _count"
    "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 4\n# EOF\n";
  check_invalid "garbage comment" "# FROBNICATE\n# EOF\n";
  check_invalid "blank line" "# TYPE x counter\n\nx_total 1\n# EOF\n"

let test_validator_accepts () =
  check_valid "gauge" "# TYPE g gauge\ng 3.5\n# EOF\n";
  check_valid "labels and timestamp"
    "# TYPE x counter\nx_total{shard=\"a\",host=\"h\"} 12 1700000000\n# EOF\n";
  check_valid "help and unit"
    "# HELP x number of things\n# TYPE x counter\nx_total 1\n# EOF\n";
  check_valid "multiple exposures"
    "# TYPE x counter\nx_total 1\n# EOF\n# TYPE x counter\nx_total 2\n# EOF\n";
  (* family state resets at EOF: a histogram left open in exposure 1
     would fail, but completed ones do not leak into exposure 2 *)
  check_valid "histogram per exposure"
    "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n# EOF\n\
     # TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 2\nh_count 2\n# EOF\n"

(* ---- CLI end-to-end ---- *)

let run fmt = Printf.ksprintf (fun cmd -> Sys.command cmd) fmt

let test_cli_metrics_every () =
  let out = Filename.temp_file "fg_om" ".txt" in
  let rc =
    run
      "../bin/fg_cli.exe attack --family ba -n 96 --fraction 0.5 \
       --metrics --metrics-every 10 --metrics-out %s > /dev/null 2>&1"
      (Filename.quote out)
  in
  Alcotest.(check int) "attack exits 0" 0 rc;
  let text = In_channel.with_open_bin out In_channel.input_all in
  Sys.remove out;
  check_valid "periodic dump stream" text;
  (* several exposures, each with the per-phase heal histograms *)
  let eofs =
    List.length
      (List.filter (( = ) "# EOF") (String.split_on_char '\n' text))
  in
  Alcotest.(check bool) "at least two exposures" true (eofs >= 2);
  Alcotest.(check bool) "phase histograms present" true
    (let sub = "profile_heal_ns_bucket" in
     let n = String.length text and m = String.length sub in
     let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
     go 0)

let test_cli_metrics_from_trace () =
  let tr = Filename.temp_file "fg_tr" ".jsonl" in
  let om = Filename.temp_file "fg_om2" ".txt" in
  let rc =
    run "../bin/fg_cli.exe attack --family er -n 64 --trace %s > /dev/null 2>&1"
      (Filename.quote tr)
  in
  Alcotest.(check int) "attack --trace exits 0" 0 rc;
  let rc =
    run "../bin/fg_cli.exe metrics %s --openmetrics --out %s > /dev/null 2>&1"
      (Filename.quote tr) (Filename.quote om)
  in
  Alcotest.(check int) "metrics exits 0" 0 rc;
  let text = In_channel.with_open_bin om In_channel.input_all in
  check_valid "trace-derived exposition" text;
  (* and the CLI's own validator agrees *)
  let rc =
    run "../bin/fg_cli.exe metrics --validate %s > /dev/null 2>&1"
      (Filename.quote om)
  in
  Alcotest.(check int) "fg metrics --validate exits 0" 0 rc;
  (* the positional and --validate both accept '-' for stdin *)
  let rc =
    run
      "cat %s | ../bin/fg_cli.exe metrics - --openmetrics | ../bin/fg_cli.exe \
       metrics --validate - > /dev/null 2>&1"
      (Filename.quote tr)
  in
  Alcotest.(check int) "stdin pipe round-trip exits 0" 0 rc;
  Sys.remove tr;
  Sys.remove om

let test_cli_validate_rejects () =
  let bad = Filename.temp_file "fg_bad" ".txt" in
  Out_channel.with_open_bin bad (fun oc ->
      output_string oc "x_total 1\n# EOF\n");
  let rc =
    run "../bin/fg_cli.exe metrics --validate %s > /dev/null 2>&1"
      (Filename.quote bad)
  in
  Sys.remove bad;
  Alcotest.(check int) "invalid exposition exits 1" 1 rc

let suite =
  [
    Alcotest.test_case "rendered registry passes the grammar checker" `Quick
      test_render_validates;
    Alcotest.test_case "empty registry renders valid" `Quick test_render_empty;
    Alcotest.test_case "histogram buckets are cumulative" `Quick
      test_hdr_buckets_cumulative;
    Alcotest.test_case "family name sanitization" `Quick test_family_name;
    Alcotest.test_case "validator rejects malformed expositions" `Quick
      test_validator_rejects;
    Alcotest.test_case "validator accepts legal variations" `Quick
      test_validator_accepts;
    Alcotest.test_case "attack --metrics-every emits a valid stream" `Quick
      test_cli_metrics_every;
    Alcotest.test_case "fg metrics aggregates a trace to OpenMetrics" `Quick
      test_cli_metrics_from_trace;
    Alcotest.test_case "fg metrics --validate rejects bad input" `Quick
      test_cli_validate_rejects;
  ]
