(* Fixture: R8 — raw domain lifecycle outside the sanctioned modules.
   Worker fan-out must go through Parallel (pool reuse, first-error-wins
   propagation, bounded domain count); a rogue Domain.spawn bypasses all
   three. *)

let spawn_worker f = Domain.spawn f (* violation *)
