(* Fixture: R4 — emission with computed arguments, no observability guard. *)

let emit stats = Fg_obs.Metrics.observe "fixture.rounds" (float_of_int stats)
