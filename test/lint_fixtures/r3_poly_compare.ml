(* Fixture: R3 — polymorphic comparison on Node_id-typed values, found
   through the lint's syntactic type guesses (annotation, List.sort with
   Node_id.compare, cons patterns, refs). *)

let find_dup (live : Node_id.t list) =
  let sorted = List.sort Node_id.compare live in
  match sorted with
  | first :: _ ->
    let chosen = ref [ first ] in
    List.exists (fun v -> List.mem v !chosen) sorted
  | [] -> false
