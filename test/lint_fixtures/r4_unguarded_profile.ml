(* Fixture: R4 — profiler stamp with a computed duration, no
   observability guard. [Profile.stamp p t0] with plain idents is free
   (and internally gated), but feeding [record_ns] a function-application
   argument allocates at the call site even when recording is off. *)

let heal_once heal elapsed t0 =
  heal ();
  Fg_obs.Profile.record_ns Fg_obs.Profile.Heal (elapsed t0)
