(* Fixture: R1 — a serve-style query handler folding over the
   list-returning neighbours accessor while holding a snapshot pin. The
   serving tier must read through the pinned CSR rows instead. *)

let degree_under_pin store v =
  Snapshot_store.with_pin store (fun snap ->
      List.fold_left (fun acc _ -> acc + 1) 0 (Adjacency.neighbors snap v))
