(* Fixture: R6 — a mutable record field in a concurrency-scoped module
   with no atomic type and no ownership pragma. The sibling fields show
   the three accepted forms: an Atomic.t cell, a Bigarray payload, and a
   declared single-writer. *)

type state = {
  mutable hits : int; (* violation: naked shared mutability *)
  epoch : int Atomic.t;
  rows : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable high_water : int; (* fg-lint: single-writer collector *)
}

let bump s =
  s.hits <- s.hits + 1;
  if s.hits > s.high_water then s.high_water <- s.hits

let observed s = Atomic.get s.epoch + Bigarray.Array1.dim s.rows
