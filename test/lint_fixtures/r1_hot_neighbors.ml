(* Fixture: R1 — list-returning neighbours accessor on a hot path.
   fg_lint only parses (never typechecks), so the free module names are fine. *)

let degree_sum g v = List.length (Adjacency.neighbors g v)
