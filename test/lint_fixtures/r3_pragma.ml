(* Fixture: the same R3 violation as r3_poly_compare.ml, but suppressed by
   the line pragma — fg_lint must report nothing. *)

let has (live : Node_id.t list) v =
  List.mem v live (* fg-lint: allow R3 *)
