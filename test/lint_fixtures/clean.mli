val degree_sum : 'g -> 'v -> int
val seed : 'a -> 'b -> int
val has : Node_id.t list -> Node_id.t -> bool
val emit : int -> unit
