(* Fixture: R9 — sleeping while holding a snapshot pin. The announced
   epoch stays live for the whole nap, so the writer cannot reclaim
   anything retired since, and the reclamation lag grows unboundedly.
   (The pin itself is balanced — with_pin — so this is R9-only.) *)

let slow_read r =
  Snapshot_store.with_pin r (fun snap ->
      Unix.sleepf 0.001 (* violation: blocking while pinned *);
      snap)
