(* Fixture: R4 in a read-path kernel — per-sweep emission whose argument
   is computed at the call site, with no recording guard. A kernel that
   wants to publish sweep counts must either stamp plain idents (free,
   internally gated) or branch on [Metrics.is_recording] first. *)

let run_sweep sweep batches =
  sweep ();
  Fg_obs.Metrics.incr ~n:(Array.length batches) "kernel.sweeps"
