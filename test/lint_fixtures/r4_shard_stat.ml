(* Fixture: R4 — shard-engine-style per-heal latency emission with a
   computed argument and no [Metrics.is_recording] guard around the
   sharded global sink. *)

let note_heal hdr shard t0 =
  Fg_obs.Hdr.record_sharded hdr ~shard (Fg_obs.Hdr.now_ns () - t0)
