(* Fixture: R1 — shard-engine-style routing that walks the
   list-returning neighbours accessor to find a group's cross-shard
   edges. The round path must scan the CSR rows (or the staged overlay)
   instead of allocating a neighbour list per member. *)

let cross_shard_edges map graph members =
  List.concat_map
    (fun v ->
      List.filter
        (fun u -> Shard_map.owner map u <> Shard_map.owner map v)
        (Adjacency.neighbors graph v))
    members
