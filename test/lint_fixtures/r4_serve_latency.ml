(* Fixture: R4 — serve-style latency emission with a computed argument
   and no [Metrics.is_recording] guard around the sharded global sink. *)

let record_latency hdr t0 = Fg_obs.Hdr.record_sharded hdr (Fg_obs.Hdr.now_ns () - t0)
