(* Fixture: R5 — this module deliberately ships without a matching .mli. *)

let answer = 42
