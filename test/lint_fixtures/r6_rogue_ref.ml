(* Fixture: R6 — a module-level ref in a concurrency-scoped module with
   no ownership pragma. The pragma'd sibling and the function-local ref
   are both fine: the first has a declared owner, the second never leaves
   one stack. *)

let total = ref 0 (* violation: shared cell, no declared owner *)
let calls = ref 0 (* fg-lint: single-writer main *)

let count xs =
  let n = ref 0 in
  List.iter (fun _ -> incr n) xs;
  incr calls;
  total := !total + !n;
  !n
