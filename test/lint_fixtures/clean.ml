(* Fixture: a module that follows every discipline — zero findings even
   with all rules enabled and this directory in every scope. *)

let degree_sum g v = Adjacency.fold_neighbors (fun _ acc -> acc + 1) g v 0
let seed a b = (31 * Hashtbl.hash a) + Hashtbl.hash b
let has (live : Node_id.t list) v = List.exists (Node_id.equal v) live

let emit stats =
  if Fg_obs.Metrics.is_recording () then
    Fg_obs.Metrics.observe "fixture.rounds" (float_of_int stats)
