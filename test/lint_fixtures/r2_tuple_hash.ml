(* Fixture: R2 — Hashtbl.hash over a freshly boxed tuple literal. *)

let seed a b = Hashtbl.hash (a, b)
