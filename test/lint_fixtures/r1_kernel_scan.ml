(* Fixture: R1 in a read-path kernel — materialising a neighbour list
   inside a per-level scan. The kernels (bfs_kernel.ml, interval_map.ml)
   are in [hot_modules]: rows must be walked via the flat CSR accessors
   or iter/fold, never through the list-returning API. *)

let frontier_edges g frontier =
  List.fold_left
    (fun acc v -> acc + List.length (Adjacency.neighbors g v))
    0 frontier
