(* Fixture: R7 — a pin that escapes its binding: the reader announces an
   epoch and loads the snapshot but no path unpins, so the slot never goes
   quiescent and reclamation stalls forever. The balanced siblings show
   the two accepted shapes: with_pin, and explicit pin/unpin under
   Fun.protect. *)

let leak_pin r = ignore (Snapshot_store.pin r)

let balanced r f = Snapshot_store.with_pin r f

let explicit r f =
  let s = Snapshot_store.pin r in
  Fun.protect ~finally:(fun () -> Snapshot_store.unpin r) (fun () -> f s)
