let () =
  Alcotest.run "forgiving_graph"
    [
      ("graph", Test_graph.suite);
      ("adjacency-prop", Test_adjacency_prop.suite);
      ("haft", Test_haft.suite);
      ("forgiving", Test_forgiving.suite);
      ("sim", Test_sim.suite);
      ("table1", Test_table1.suite);
      ("dist", Test_dist.suite);
      ("baselines", Test_baselines.suite);
      ("will-tree", Test_will_tree.suite);
      ("adversary", Test_adversary.suite);
      ("metrics", Test_metrics.suite);
      ("csr", Test_csr.suite);
      ("interval-map", Test_interval_map.suite);
      ("obs", Test_obs.suite);
      ("hdr", Test_hdr.suite);
      ("openmetrics", Test_openmetrics.suite);
      ("top", Test_top.suite);
      ("persistent", Test_persistent.suite);
      ("rt", Test_rt.suite);
      ("invariant-detection", Test_invariant_detection.suite);
      ("routing", Test_routing.suite);
      ("history", Test_history.suite);
      ("delta", Test_delta.suite);
      ("batch", Test_batch.suite);
      ("harness", Test_harness.suite);
      ("parallel", Test_parallel.suite);
      ("serve", Test_serve.suite);
      ("shard", Test_shard.suite);
      ("lint", Test_lint.suite);
      ("race", Test_race.suite);
      ("alloc", Test_alloc.suite);
      ("soak", Test_soak.suite);
    ]
