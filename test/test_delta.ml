(* Tests for the delta stream (PR 3): replaying the recorded deltas from
   G_0 must reproduce the engine's graphs exactly, the per-generation CSR
   caches must match from-scratch builds (including after external
   mutation of the returned adjacency), History scrubbing must agree with
   raw replay, and the O(delta) invariant audit must accept every honest
   event and flag tampered ones. *)

open Fg_graph
module Fg = Fg_core.Forgiving_graph
module Delta = Fg_core.Delta
module History = Fg_core.History
module Invariants = Fg_core.Invariants
module Edge = Fg_core.Edge
module P = Persistent_graph

let make_g0 rng kind n =
  if kind then Generators.erdos_renyi rng n (4.0 /. float_of_int n)
  else Generators.barabasi_albert rng n 3

(* Random churn: ~60% deletions, rest insertions of fresh nodes with 1-3
   live neighbours. [step] receives each event so callers can record or
   audit; returns the number of events applied. *)
let churn rng fg ~steps ~step =
  let next = ref 1_000_000 in
  let applied = ref 0 in
  for _ = 1 to steps do
    let live = Fg.live_nodes fg in
    if List.length live > 3 && Rng.float rng 1.0 < 0.6 then begin
      step (`Delete (Rng.pick rng live));
      incr applied
    end
    else if live <> [] then begin
      let k = 1 + Rng.int rng 3 in
      let nbrs =
        List.sort_uniq Node_id.compare (List.init k (fun _ -> Rng.pick rng live))
      in
      step (`Insert (!next, nbrs));
      incr next;
      incr applied
    end
  done;
  !applied

let prop_replay_reproduces_engine =
  QCheck2.Test.make ~name:"delta replay from G_0 reproduces graph and gprime"
    ~count:30
    QCheck2.Gen.(tup3 (int_range 0 99999) bool (int_range 8 40))
    (fun (seed, kind, n) ->
      let rng = Rng.create seed in
      let g0 = make_g0 rng kind n in
      let fg = Fg.of_graph g0 in
      let g_replay = Adjacency.copy g0 in
      let gp_replay = Adjacency.copy g0 in
      let step = function
        | `Delete v -> Delta.apply ~gprime:gp_replay g_replay (fst (Fg.delete_delta fg v))
        | `Insert (v, nbrs) ->
          Delta.apply ~gprime:gp_replay g_replay (Fg.insert_delta fg v nbrs)
      in
      ignore (churn rng fg ~steps:40 ~step);
      Adjacency.equal g_replay (Fg.graph fg) && Adjacency.equal gp_replay (Fg.gprime fg))

let prop_history_snapshot_equals_replay =
  QCheck2.Test.make ~name:"History.snapshot k = replayed delta prefix" ~count:15
    QCheck2.Gen.(tup2 (int_range 0 99999) (int_range 8 24))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g0 = make_g0 rng true n in
      let h = History.create g0 in
      let fg = History.fg h in
      let step = function
        | `Delete v -> History.delete h v
        | `Insert (v, nbrs) -> History.insert h v nbrs
      in
      ignore (churn rng fg ~steps:25 ~step);
      let len = History.length h in
      (* forward scrub (cursor path) and a jumbled order (replay path) *)
      let ks = List.init (len + 1) Fun.id in
      let ks = ks @ [ len; 0; len / 2 ] in
      List.for_all
        (fun k -> P.equal (History.snapshot h k) (P.of_adjacency (History.replayed h k)))
        ks
      && Adjacency.equal (History.replayed h len) (Fg.graph fg))

let prop_csr_cache_matches_rebuild =
  QCheck2.Test.make ~name:"Forgiving_graph.csr cache = Csr.of_adjacency" ~count:20
    QCheck2.Gen.(tup3 (int_range 0 99999) bool (int_range 8 32))
    (fun (seed, kind, n) ->
      let rng = Rng.create seed in
      let fg = Fg.of_graph (make_g0 rng kind n) in
      let ok = ref true in
      let gen0 = Fg.generation fg in
      let check () =
        if not (Csr.equal (Fg.csr fg) (Csr.of_adjacency (Fg.graph fg))) then ok := false;
        if not (Csr.equal (Fg.gprime_csr fg) (Csr.of_adjacency (Fg.gprime fg))) then
          ok := false;
        (* a second call in the same generation is the cached snapshot *)
        if not (Fg.csr fg == Fg.csr fg) then ok := false
      in
      check ();
      let step = function
        | `Delete v -> Fg.delete fg v; check ()
        | `Insert (v, nbrs) -> Fg.insert fg v nbrs; check ()
      in
      let applied = churn rng fg ~steps:30 ~step in
      !ok && Fg.generation fg = gen0 + applied)

let test_cache_survives_external_mutation () =
  let fg = Fg.of_graph (Generators.ring 8) in
  Fg.delete fg 0;
  ignore (Fg.csr fg);
  (* the documented footgun: callers must copy before mutating, but if one
     mutates anyway the version counter forces a rebuild, not a stale
     snapshot *)
  let g = Fg.graph fg in
  Adjacency.add_edge g 2 6;
  Alcotest.(check bool) "external add visible" true
    (Csr.equal (Fg.csr fg) (Csr.of_adjacency g));
  Adjacency.remove_edge g 2 6;
  Alcotest.(check bool) "external remove visible" true
    (Csr.equal (Fg.csr fg) (Csr.of_adjacency g));
  (* and the engine keeps healing correctly afterwards *)
  Fg.delete fg 4;
  Alcotest.(check bool) "cache consistent after later heal" true
    (Csr.equal (Fg.csr fg) (Csr.of_adjacency (Fg.graph fg)))

let test_history_copies_g0 () =
  let g0 = Generators.ring 8 in
  let h = History.create g0 in
  (* mutating the caller's graph after [create] must not skew replays *)
  Adjacency.remove_edge g0 0 1;
  Adjacency.add_edge g0 2 6;
  Alcotest.(check bool) "snapshot 0 still has edge 0-1" true
    (P.mem_edge 0 1 (History.snapshot h 0));
  Alcotest.(check bool) "snapshot 0 lacks edge 2-6" false
    (P.mem_edge 2 6 (History.snapshot h 0));
  History.delete h 3;
  Alcotest.(check bool) "replay starts from the pristine G_0" true
    (Adjacency.mem_edge (History.replayed h 0) 0 1)

let prop_check_delta_accepts_honest_events =
  QCheck2.Test.make ~name:"check_delta accepts every honest event" ~count:20
    QCheck2.Gen.(tup2 (int_range 0 99999) (int_range 8 32))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let fg = Fg.of_graph (make_g0 rng false n) in
      let ok = ref true in
      let audit d = if Invariants.check_delta fg d <> [] then ok := false in
      let step = function
        | `Delete v -> audit (fst (Fg.delete_delta fg v))
        | `Insert (v, nbrs) -> audit (Fg.insert_delta fg v nbrs)
      in
      ignore (churn rng fg ~steps:30 ~step);
      !ok)

let test_check_delta_detects_tampering () =
  let fg = Fg.of_graph (Generators.ring 8) in
  let d = Fg.insert_delta fg 100 [ 0; 4 ] in
  Alcotest.(check (list string)) "honest insert passes" [] (Invariants.check_delta fg d);
  let bogus_edge = Edge.make 998 999 in
  Alcotest.(check bool) "phantom g_added flagged" true
    (Invariants.check_delta fg { d with g_added = bogus_edge :: d.Delta.g_added } <> []);
  Alcotest.(check bool) "insert removing nodes flagged" true
    (Invariants.check_delta fg { d with nodes_removed = [ 3 ] } <> []);
  Alcotest.(check bool) "insert removing edges flagged" true
    (Invariants.check_delta fg { d with g_removed = [ Edge.make 0 1 ] } <> []);
  let d2, _ = Fg.delete_delta fg 0 in
  Alcotest.(check (list string)) "honest delete passes" [] (Invariants.check_delta fg d2);
  Alcotest.(check bool) "delete extending G' flagged" true
    (Invariants.check_delta fg { d2 with gp_added = [ bogus_edge ] } <> []);
  Alcotest.(check bool) "wrong victim list flagged" true
    (Invariants.check_delta fg { d2 with nodes_removed = [ 5 ] } <> [])

let test_delete_batch_delta () =
  let fg = Fg.of_graph (Generators.ring 12) in
  let g_replay = Adjacency.copy (Fg.graph fg) in
  let gp_replay = Adjacency.copy (Fg.gprime fg) in
  let d, traces = Fg.delete_batch_delta fg [ 2; 7 ] in
  Alcotest.(check int) "two independent repair groups" 2 (List.length traces);
  Alcotest.(check int) "groups recorded in the delta" 2 d.Delta.groups;
  Delta.apply ~gprime:gp_replay g_replay d;
  Alcotest.(check bool) "batch delta replays the graph" true
    (Adjacency.equal g_replay (Fg.graph fg));
  Alcotest.(check bool) "batch delta replays gprime" true
    (Adjacency.equal gp_replay (Fg.gprime fg));
  Alcotest.(check (list string)) "batch delta passes the audit" []
    (Invariants.check_delta fg d)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_replay_reproduces_engine;
      prop_history_snapshot_equals_replay;
      prop_csr_cache_matches_rebuild;
      prop_check_delta_accepts_honest_events;
    ]

let suite =
  [
    Alcotest.test_case "delta: cache survives external mutation" `Quick
      test_cache_survives_external_mutation;
    Alcotest.test_case "delta: history copies G_0" `Quick test_history_copies_g0;
    Alcotest.test_case "delta: check_delta detects tampering" `Quick
      test_check_delta_detects_tampering;
    Alcotest.test_case "delta: delete_batch delta" `Quick test_delete_batch_delta;
  ]
  @ props
