(* fg_lint self-test: every fixture in lint_fixtures/ must yield exactly
   its expected rule ID through --json, the clean module must yield zero
   findings, and the line pragma must suppress its finding. The driver
   shells out to the built tool (declared as a dune dep), mirroring how CI
   runs `dune build @lint`. *)

module Json = Fg_obs.Json

(* resolve everything relative to the test binary (_build/default/test/...),
   so the suite works both under `dune runtest` (cwd = test/) and
   `dune exec test/test_main.exe` (cwd = workspace root) *)
let test_dir = Filename.dirname Sys.executable_name
let root_dir = Filename.concat test_dir ".."
let exe = Filename.concat root_dir "tools/fg_lint/fg_lint.exe"

(* `dune runtest` materialises the (source_tree lint_fixtures) dep next to
   the test binary; `dune exec` builds only the binary, so fall back to the
   source tree in that case *)
let fixtures_dir =
  let built = Filename.concat test_dir "lint_fixtures" in
  if Sys.file_exists built then built
  else Filename.concat test_dir "../../../test/lint_fixtures"

let fixture f = Filename.concat fixtures_dir f
let conf = fixture "fixtures.conf"

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let run_lint ?only path =
  let out = Filename.temp_file "fg_lint_out" ".json" in
  let only_arg = match only with Some r -> " --only " ^ r | None -> "" in
  let cmd =
    Printf.sprintf "%s --conf %s --json%s %s > %s 2>/dev/null" exe conf only_arg
      (Filename.quote path) (Filename.quote out)
  in
  let rc = Sys.command cmd in
  let text = read_file out in
  Sys.remove out;
  (rc, text)

let findings_of text =
  match Json.of_string text with
  | Error e -> Alcotest.failf "fg_lint --json output unparseable: %s" e
  | Ok j -> (
    match Json.member "findings" j with
    | Some (Json.List fs) ->
      List.filter_map (fun f -> Option.bind (Json.member "rule" f) Json.to_str) fs
    | _ -> Alcotest.fail "fg_lint --json output has no findings array")

let check_fixture ~rule ~file () =
  let rc, text = run_lint ~only:rule (fixture file) in
  Alcotest.(check int) (file ^ " exits 1") 1 rc;
  Alcotest.(check (list string)) (file ^ " findings") [ rule ] (findings_of text)

let test_clean () =
  (* all rules enabled: the clean module must stay silent and exit 0 *)
  let rc, text = run_lint (fixture "clean.ml") in
  Alcotest.(check int) "clean exits 0" 0 rc;
  Alcotest.(check (list string)) "clean findings" [] (findings_of text)

let test_pragma () =
  let rc, text = run_lint ~only:"R3" (fixture "r3_pragma.ml") in
  Alcotest.(check int) "pragma exits 0" 0 rc;
  Alcotest.(check (list string)) "pragma findings" [] (findings_of text);
  (* the pragma only covers its own line and rule: the sibling fixture with
     the same violation and no pragma still fires *)
  let rc, _ = run_lint ~only:"R3" (fixture "r3_poly_compare.ml") in
  Alcotest.(check int) "unsuppressed sibling exits 1" 1 rc

let test_directory_sweep () =
  (* whole-directory run with every rule: one finding per violating
     fixture plus one R5 per .mli-less module *)
  let rc, text = run_lint fixtures_dir in
  Alcotest.(check int) "sweep exits 1" 1 rc;
  let fs = findings_of text in
  let count r = List.length (List.filter (String.equal r) fs) in
  Alcotest.(check int) "R1 findings" 4 (count "R1");
  Alcotest.(check int) "R2 findings" 1 (count "R2");
  Alcotest.(check int) "R3 findings" 1 (count "R3");
  Alcotest.(check int) "R4 findings" 5 (count "R4");
  Alcotest.(check int) "R5 findings" 18 (count "R5");
  Alcotest.(check int) "R6 findings" 2 (count "R6");
  Alcotest.(check int) "R7 findings" 1 (count "R7");
  Alcotest.(check int) "R8 findings" 1 (count "R8");
  Alcotest.(check int) "R9 findings" 1 (count "R9");
  Alcotest.(check int) "total" 34 (List.length fs)

let test_repo_is_clean () =
  (* the tree itself must lint clean with the repo configuration — the
     same check `dune build @lint` gates in CI. Note this covers the
     whole rule set including R6-R9 over the concurrency-scoped modules
     and R5 over tools/. *)
  let rc =
    Sys.command
      (Printf.sprintf
         "cd %s && tools/fg_lint/fg_lint.exe --conf fg_lint.conf lib tools > /dev/null 2>&1"
         (Filename.quote root_dir))
  in
  Alcotest.(check int) "lib/ and tools/ lint clean" 0 rc

let test_github_mode () =
  (* --github renders one ::error workflow command per finding *)
  let out = Filename.temp_file "fg_lint_gh" ".txt" in
  let cmd =
    Printf.sprintf "%s --conf %s --github --only R8 %s > %s 2>/dev/null" exe conf
      (Filename.quote (fixture "r8_rogue_spawn.ml"))
      (Filename.quote out)
  in
  let rc = Sys.command cmd in
  let text = read_file out in
  Sys.remove out;
  Alcotest.(check int) "github mode exits 1" 1 rc;
  let has_annotation =
    String.length text >= 13 && String.sub text 0 13 = "::error file="
  in
  if not has_annotation then
    Alcotest.failf "no ::error annotation in --github output: %s" text;
  let mentions_rule =
    let needle = "[R8]" in
    let n = String.length needle and l = String.length text in
    let rec find i = i + n <= l && (String.sub text i n = needle || find (i + 1)) in
    find 0
  in
  Alcotest.(check bool) "annotation names the rule" true mentions_rule

let suite =
  [
    Alcotest.test_case "R1 fixture" `Quick
      (check_fixture ~rule:"R1" ~file:"r1_hot_neighbors.ml");
    Alcotest.test_case "R2 fixture" `Quick
      (check_fixture ~rule:"R2" ~file:"r2_tuple_hash.ml");
    Alcotest.test_case "R3 fixture" `Quick
      (check_fixture ~rule:"R3" ~file:"r3_poly_compare.ml");
    Alcotest.test_case "R4 fixture" `Quick
      (check_fixture ~rule:"R4" ~file:"r4_unguarded_obs.ml");
    Alcotest.test_case "R4 profile fixture" `Quick
      (check_fixture ~rule:"R4" ~file:"r4_unguarded_profile.ml");
    Alcotest.test_case "R1 kernel fixture" `Quick
      (check_fixture ~rule:"R1" ~file:"r1_kernel_scan.ml");
    Alcotest.test_case "R4 kernel fixture" `Quick
      (check_fixture ~rule:"R4" ~file:"r4_kernel_stamp.ml");
    Alcotest.test_case "R1 serve fixture" `Quick
      (check_fixture ~rule:"R1" ~file:"r1_serve_pin.ml");
    Alcotest.test_case "R4 serve fixture" `Quick
      (check_fixture ~rule:"R4" ~file:"r4_serve_latency.ml");
    Alcotest.test_case "R1 shard fixture" `Quick
      (check_fixture ~rule:"R1" ~file:"r1_shard_route.ml");
    Alcotest.test_case "R4 shard fixture" `Quick
      (check_fixture ~rule:"R4" ~file:"r4_shard_stat.ml");
    Alcotest.test_case "R5 fixture" `Quick
      (check_fixture ~rule:"R5" ~file:"r5_no_mli.ml");
    Alcotest.test_case "R6 mutable-field fixture" `Quick
      (check_fixture ~rule:"R6" ~file:"r6_naked_mutable.ml");
    Alcotest.test_case "R6 module-ref fixture" `Quick
      (check_fixture ~rule:"R6" ~file:"r6_rogue_ref.ml");
    Alcotest.test_case "R7 fixture" `Quick
      (check_fixture ~rule:"R7" ~file:"r7_unbalanced_pin.ml");
    Alcotest.test_case "R8 fixture" `Quick
      (check_fixture ~rule:"R8" ~file:"r8_rogue_spawn.ml");
    Alcotest.test_case "R9 fixture" `Quick
      (check_fixture ~rule:"R9" ~file:"r9_blocking_pinned.ml");
    Alcotest.test_case "clean module" `Quick test_clean;
    Alcotest.test_case "pragma suppression" `Quick test_pragma;
    Alcotest.test_case "github annotations" `Quick test_github_mode;
    Alcotest.test_case "directory sweep" `Quick test_directory_sweep;
    Alcotest.test_case "repo lints clean" `Quick test_repo_is_clean;
  ]
