(* Serving-tier tests: Snapshot_store publication/reclamation semantics,
   the query kernels against slow oracles, the load generator, and the
   torture test of the PR 8 acceptance criteria — concurrent readers
   never block the healing writer (wait-free by construction: pin/unpin
   are a bounded number of atomic operations, no mutex exists on the
   read path), and every answer is exact for the published generation it
   carries, which is ≥ the generation current when the query started. *)

open Fg_graph
module Fg = Fg_core.Forgiving_graph
module Store = Snapshot_store
module Serve = Fg_serve.Serve
module Loadgen = Fg_serve.Loadgen

let healed_engine seed n kills =
  let rng = Rng.create seed in
  let g0 = Generators.erdos_renyi rng n (4.0 /. float_of_int n) in
  let fg = Fg.of_graph g0 in
  for _ = 1 to kills do
    match Fg.live_nodes fg with
    | [] -> ()
    | live -> Fg.delete fg (Rng.pick rng live)
  done;
  fg

(* ---- Snapshot_store unit semantics ---- *)

(* Every published snapshot is either current, parked retired, or
   reclaimed — the store's conservation law. *)
let check_conservation store =
  let s = Store.stats store in
  Alcotest.(check int) "published = reclaimed + retired + current" s.Store.published
    (s.Store.reclaimed + s.Store.retired + 1)

let test_store_publish_reclaim () =
  let store : int Store.t = Store.create () in
  Alcotest.(check int) "empty gen" (-1) (Store.current_gen store);
  Store.publish store ~gen:1 10;
  Store.publish store ~gen:2 20;
  Store.publish store ~gen:2 21;
  (* same-gen republish allowed *)
  Alcotest.(check int) "current gen" 2 (Store.current_gen store);
  (* no readers: superseded snapshots reclaim at the next publish *)
  let s = Store.stats store in
  Alcotest.(check int) "published" 3 s.Store.published;
  Alcotest.(check int) "retired drained" 0 s.Store.retired;
  Alcotest.(check int) "reclaimed" 2 s.Store.reclaimed;
  check_conservation store;
  (match Store.publish store ~gen:1 99 with
  | () -> Alcotest.fail "backwards generation must be rejected"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "reject left store intact" 2 (Store.current_gen store)

let test_store_pin_blocks_reclaim () =
  let store : int Store.t = Store.create () in
  Store.publish store ~gen:1 100;
  let r = Store.reader store in
  let pinned = Store.pin r in
  Alcotest.(check int) "pinned value" 100 pinned.Store.value;
  (* writer keeps publishing: the pinned generation must stay parked *)
  for g = 2 to 6 do
    Store.publish store ~gen:g (g * 100)
  done;
  let s = Store.stats store in
  Alcotest.(check bool) "pinned snapshot not reclaimed" true (s.Store.retired >= 1);
  Alcotest.(check bool) "lag was observed" true (s.Store.max_lag >= 1);
  check_conservation store;
  Store.unpin r;
  let dropped = Store.reclaim store in
  Alcotest.(check bool) "unpin releases the backlog" true (dropped >= 1);
  Alcotest.(check int) "fully drained" 0 (Store.stats store).Store.retired;
  check_conservation store

let test_store_pin_nesting_and_errors () =
  let store : int Store.t = Store.create () in
  let r = Store.reader store in
  (match Store.pin r with
  | _ -> Alcotest.fail "pin on empty store must raise"
  | exception Invalid_argument _ -> ());
  (match Store.unpin r with
  | () -> Alcotest.fail "unpin when not pinned must raise"
  | exception Invalid_argument _ -> ());
  Store.publish store ~gen:1 1;
  let outer = Store.pin r in
  Store.publish store ~gen:2 2;
  let inner = Store.pin r in
  (* the inner pin may see the newer snapshot; the outer announcement
     still protects the older one *)
  Alcotest.(check int) "outer gen" 1 outer.Store.gen;
  Alcotest.(check int) "inner gen" 2 inner.Store.gen;
  Alcotest.(check bool) "outer still parked" true ((Store.stats store).Store.retired >= 1);
  Store.unpin r;
  Store.unpin r;
  ignore (Store.reclaim store : int);
  Alcotest.(check int) "drained after outermost unpin" 0 (Store.stats store).Store.retired

let test_engine_publish_generations () =
  let fg = healed_engine 3 48 6 in
  let store = Fg.snapshot_store fg in
  let s1 = Fg.publish fg in
  Alcotest.(check int) "store gen = engine gen" (Fg.generation fg) (Store.current_gen store);
  let s2 = Fg.publish fg in
  Alcotest.(check bool) "publish is idempotent within a generation" true (s1 == s2);
  Fg.delete fg (List.hd (Fg.live_nodes fg));
  let s3 = Fg.publish fg in
  Alcotest.(check bool) "new generation, new snapshot" true (not (s1 == s3));
  Alcotest.(check int) "store tracks engine" (Fg.generation fg) (Store.current_gen store);
  (* published pairs are faithful images of their generation *)
  Alcotest.(check bool) "csr = rebuild" true
    (Csr.equal s3.Fg.csr (Csr.of_adjacency (Fg.graph fg)));
  Alcotest.(check bool) "gprime csr = rebuild" true
    (Csr.equal s3.Fg.gprime_csr (Csr.of_adjacency (Fg.gprime fg)))

(* ---- query kernels vs oracles ---- *)

let test_distance_matches_oracle () =
  let fg = healed_engine 11 64 10 in
  let store = Fg.snapshot_store fg in
  ignore (Fg.publish fg : Fg.snapshot);
  let r = Store.reader store in
  let w = Serve.worker () in
  let g = Fg.graph fg in
  let nodes = Array.of_list (Adjacency.nodes (Fg.gprime fg)) in
  let rng = Rng.create 5 in
  for _ = 1 to 200 do
    let a = Rng.pick_array rng nodes and b = Rng.pick_array rng nodes in
    let expected =
      if Fg.is_alive fg a && Fg.is_alive fg b then Bfs.distance g a b else None
    in
    match (Serve.serve w r (Serve.Distance (a, b))).Serve.answer with
    | Serve.Dist d -> Alcotest.(check (option int)) "distance" expected d
    | _ -> Alcotest.fail "wrong answer constructor"
  done

let test_path_is_shortest_walk () =
  let fg = healed_engine 13 64 10 in
  ignore (Fg.publish fg : Fg.snapshot);
  let r = Store.reader (Fg.snapshot_store fg) in
  let w = Serve.worker () in
  let g = Fg.graph fg in
  let live = Array.of_list (Fg.live_nodes fg) in
  let rng = Rng.create 7 in
  for _ = 1 to 100 do
    let a = Rng.pick_array rng live and b = Rng.pick_array rng live in
    match (Serve.serve w r (Serve.Path (a, b))).Serve.answer with
    | Serve.Route None ->
      Alcotest.(check (option int)) "unroutable iff disconnected" None (Bfs.distance g a b)
    | Serve.Route (Some walk) ->
      let d = Option.get (Bfs.distance g a b) in
      Alcotest.(check int) "path length = distance" (d + 1) (List.length walk);
      Alcotest.(check (option int)) "starts at a" (Some a) (List.nth_opt walk 0);
      Alcotest.(check (option int)) "ends at b" (Some b) (List.nth_opt walk d);
      List.iteri
        (fun i u ->
          if i < d then
            let v = List.nth walk (i + 1) in
            if not (Adjacency.mem_edge g u v) then
              Alcotest.failf "non-edge %d-%d on served path" u v)
        walk
    | _ -> Alcotest.fail "wrong answer constructor"
  done

let test_degree_and_stretch_checks () =
  let fg = healed_engine 17 96 16 in
  ignore (Fg.publish fg : Fg.snapshot);
  let r = Store.reader (Fg.snapshot_store fg) in
  let w = Serve.worker () in
  let g = Fg.graph fg in
  List.iter
    (fun v ->
      match (Serve.serve w r (Serve.Degree_check v)).Serve.answer with
      | Serve.Degree { degree; bound; ok } ->
        Alcotest.(check int) "degree" (Adjacency.degree g v) degree;
        Alcotest.(check int) "bound" (Fg.degree_bound fg v) bound;
        Alcotest.(check bool) "Theorem 1.1 holds" true ok
      | _ -> Alcotest.fail "wrong answer constructor")
    (Fg.live_nodes fg);
  match (Serve.serve w r (Serve.Stretch_sample { seed = 23; pairs = 8 })).Serve.answer with
  | Serve.Stretch { max_stretch; pairs } ->
    Alcotest.(check bool) "sampled some pairs" true (pairs > 0);
    Alcotest.(check bool) "sampled stretch within Theorem 1.2 bound" true
      (max_stretch <= float_of_int (Fg.stretch_bound fg))
  | _ -> Alcotest.fail "wrong answer constructor"

(* ---- the torture test ----

   Writer (this domain): delete + publish in a tight loop, tabling every
   published Store.snapshot by generation. Readers (pool workers via
   Parallel.submit): pin/query/unpin as fast as possible, logging
   (generation current when the query started, served result). After the
   run, every logged answer is recomputed against the tabled snapshot of
   the generation it claims — it must match exactly, and the claimed
   generation must be ≥ the generation observed at query start. Readers
   acquire no lock anywhere on this path (Snapshot_store.pin/unpin are
   atomics only), so the writer's progress bounds the test's runtime by
   itself — and the writer never waits for readers. *)

type logged = { seen_gen : int; query : Serve.query; got : Serve.result }

let test_torture_concurrent_readers () =
  let fg = healed_engine 29 128 0 in
  let store = Fg.snapshot_store fg in
  ignore (Fg.publish fg : Fg.snapshot);
  let nodes = Array.of_list (Adjacency.nodes (Fg.gprime fg)) in
  let stop = Atomic.make false in
  let n_readers = max 2 (Parallel.pool_size ()) in
  let logs = Array.make n_readers [] in
  let reader idx () =
    let rng = Rng.create (1000 + idx) in
    let r = Store.reader store in
    let w = Serve.worker () in
    let acc = ref [] in
    while not (Atomic.get stop) do
      let a = Rng.pick_array rng nodes and b = Rng.pick_array rng nodes in
      let query =
        if Rng.bool rng then Serve.Distance (a, b) else Serve.Degree_check a
      in
      let seen_gen = Store.current_gen store in
      let got = Serve.serve w r query in
      acc := { seen_gen; query; got } :: !acc
    done;
    logs.(idx) <- !acc
  in
  let tasks = Array.init n_readers (fun i -> Parallel.submit (reader i)) in
  (* writer: one heal + publish per step, tabling each published snapshot *)
  let published = Hashtbl.create 64 in
  let table () =
    match Store.peek store with
    | Some s -> Hashtbl.replace published s.Store.gen s
    | None -> assert false
  in
  table ();
  let rng = Rng.create 31 in
  let steps = ref 0 in
  while !steps < 60 && Fg.num_live fg > 8 do
    Fg.delete fg (Rng.pick rng (Fg.live_nodes fg));
    ignore (Fg.publish fg : Fg.snapshot);
    table ();
    incr steps
  done;
  Atomic.set stop true;
  Array.iter Parallel.await tasks;
  (* verification: every answer is exact for its own published generation *)
  let verifier = Serve.worker () in
  let checked = ref 0 in
  Array.iter
    (List.iter (fun { seen_gen; query; got } ->
         if got.Serve.gen < seen_gen then
           Alcotest.failf "served generation %d older than pin-time generation %d"
             got.Serve.gen seen_gen;
         match Hashtbl.find_opt published got.Serve.gen with
         | None -> Alcotest.failf "served generation %d was never published" got.Serve.gen
         | Some snap ->
           let expect = Serve.answer verifier snap query in
           if expect.Serve.answer <> got.Serve.answer then
             Alcotest.failf "answer at generation %d is not exact" got.Serve.gen;
           incr checked))
    logs;
  Alcotest.(check bool) "concurrent queries were actually served" true (!checked > 0);
  check_conservation store;
  Parallel.shutdown ()

(* ---- load generator ---- *)

let test_loadgen_smoke () =
  let fg = healed_engine 37 96 0 in
  let cfg =
    {
      Loadgen.readers = 2;
      duration = 0.3;
      churn_rate = 100.0;
      mix = Loadgen.default_mix;
      sample_pairs = 2;
      min_live = 16;
      seed = 41;
    }
  in
  let r = Loadgen.run fg cfg in
  Alcotest.(check bool) "served queries" true (r.Loadgen.queries > 0);
  Alcotest.(check bool) "churn ran" true (r.Loadgen.deletes > 0);
  Alcotest.(check int) "per-class counts sum to total" r.Loadgen.queries
    (List.fold_left (fun acc (_, h) -> acc + Fg_obs.Hdr.count h) 0 r.Loadgen.classes);
  Alcotest.(check int) "overall histogram covers every query" r.Loadgen.queries
    (Fg_obs.Hdr.count r.Loadgen.overall);
  Alcotest.(check int) "store published initial + per-delete generations"
    (r.Loadgen.deletes + 1) r.Loadgen.store.Store.published;
  Parallel.shutdown ()

let test_loadgen_mix_parsing () =
  (match Loadgen.mix_of_string "distance=6,path=1,stretch=1,degree=2" with
  | Ok m -> Alcotest.(check int) "four classes" 4 (List.length m)
  | Error e -> Alcotest.failf "default mix must parse: %s" e);
  (match Loadgen.mix_of_string "distance=3" with
  | Ok [ ("distance", 3) ] -> ()
  | _ -> Alcotest.fail "single-class mix");
  (match Loadgen.mix_of_string "teleport=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown class must be rejected");
  (match Loadgen.mix_of_string "distance" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "weightless entry must be rejected");
  match Loadgen.mix_of_string "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty mix must be rejected"

let suite =
  [
    Alcotest.test_case "store: publish + reclaim accounting" `Quick test_store_publish_reclaim;
    Alcotest.test_case "store: pinned generation survives publishes" `Quick
      test_store_pin_blocks_reclaim;
    Alcotest.test_case "store: pin nesting and error cases" `Quick
      test_store_pin_nesting_and_errors;
    Alcotest.test_case "engine: publish tracks generations" `Quick
      test_engine_publish_generations;
    Alcotest.test_case "serve: distance matches BFS oracle" `Quick test_distance_matches_oracle;
    Alcotest.test_case "serve: paths are shortest valid walks" `Quick test_path_is_shortest_walk;
    Alcotest.test_case "serve: degree + stretch checks" `Quick test_degree_and_stretch_checks;
    Alcotest.test_case "torture: readers exact under concurrent heals" `Quick
      test_torture_concurrent_readers;
    Alcotest.test_case "loadgen: smoke under churn" `Quick test_loadgen_smoke;
    Alcotest.test_case "loadgen: mix parser" `Quick test_loadgen_mix_parsing;
  ]
