(* Lifecycle and detached-task tests for the Parallel worker pool.

   PR 8 makes the pool load-bearing for the serving tier: reader loops
   occupy workers via submit/await while the writer heals, and
   shutdown→reuse→shutdown transitions happen every time an
   Exp_common.with_observability scope with raised domains exits. These
   tests pin that lifecycle and the detached-task semantics (exception
   propagation, queueing beyond the worker count, no stranded awaiters
   across shutdown). *)

open Fg_graph

let map_sum domains n =
  Array.fold_left ( + ) 0
    (Parallel.map ~domains ~init:(fun () -> ()) ~f:(fun () i -> (i * i) + 1) n)

(* ---- shutdown → reuse → shutdown ---- *)

let test_shutdown_reuse_shutdown () =
  let expected = map_sum 1 200 in
  for _cycle = 1 to 3 do
    Alcotest.(check int) "map on respawned pool" expected (map_sum 2 200);
    Parallel.shutdown ();
    (* idempotent: a second shutdown with no pool is a no-op *)
    Parallel.shutdown ()
  done;
  Parallel.warm ();
  Alcotest.(check int) "map after warm" expected (map_sum 2 200);
  Parallel.shutdown ()

(* Property: any interleaving of warm / shutdown / map / submit+await
   behaves as if the pool were always fresh — results equal the serial
   run, awaited tasks always ran. *)
let prop_lifecycle =
  QCheck2.Test.make ~name:"Parallel lifecycle: shutdown/reuse interleavings" ~count:25
    QCheck2.Gen.(list_size (int_range 1 10) (int_range 0 3))
    (fun ops ->
      let ok =
        List.for_all
          (fun op ->
            match op with
            | 0 ->
              Parallel.shutdown ();
              true
            | 1 ->
              Parallel.warm ();
              true
            | 2 -> map_sum 2 37 = map_sum 1 37
            | _ ->
              let cell = ref 0 in
              let t = Parallel.submit (fun () -> cell := 42) in
              Parallel.await t;
              !cell = 42)
          ops
      in
      Parallel.shutdown ();
      ok)

(* ---- detached tasks ---- *)

let test_submit_await_basic () =
  let cell = ref 0 in
  Parallel.await (Parallel.submit (fun () -> cell := 7));
  Alcotest.(check int) "task ran" 7 !cell;
  (* await is idempotent once finished *)
  let t = Parallel.submit (fun () -> incr cell) in
  Parallel.await t;
  Parallel.await t;
  Alcotest.(check int) "ran exactly once" 8 !cell

let test_submit_more_than_workers () =
  let n = (4 * Parallel.pool_size ()) + 3 in
  let hits = Atomic.make 0 in
  let tasks = List.init n (fun _ -> Parallel.submit (fun () -> Atomic.incr hits)) in
  List.iter Parallel.await tasks;
  Alcotest.(check int) "all queued tasks completed" n (Atomic.get hits)

exception Boom

let test_submit_exception_propagates () =
  let t = Parallel.submit (fun () -> raise Boom) in
  (match Parallel.await t with
  | () -> Alcotest.fail "await should re-raise the task's exception"
  | exception Boom -> ());
  (* the pool survives a failed task *)
  let cell = ref 0 in
  Parallel.await (Parallel.submit (fun () -> cell := 1));
  Alcotest.(check int) "pool alive after failure" 1 !cell

let test_submit_after_shutdown_respawns () =
  Parallel.shutdown ();
  let cell = ref 0 in
  Parallel.await (Parallel.submit (fun () -> cell := 5));
  Alcotest.(check int) "submit respawned the pool" 5 !cell;
  Parallel.shutdown ()

(* Shutdown with long-lived tasks in flight and more queued: the running
   tasks finish (join waits for them), queued tasks either ran or were
   failed with [Stopped] — in every case await terminates and the pool
   comes back clean. The release flag flips from a raw helper domain so
   the blockers cannot outlive the join. *)
let test_shutdown_drains_queue () =
  let workers = Parallel.pool_size () in
  let release = Atomic.make false in
  let started = Atomic.make 0 in
  let blockers =
    List.init workers (fun _ ->
        Parallel.submit (fun () ->
            Atomic.incr started;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done))
  in
  (* wait until every worker is inside a blocker, so shutdown observes
     them as running (not merely queued, where flushing with Stopped is
     also legal) *)
  while Atomic.get started < workers do
    Domain.cpu_relax ()
  done;
  let extra_ran = Atomic.make 0 in
  let extras = List.init 3 (fun _ -> Parallel.submit (fun () -> Atomic.incr extra_ran)) in
  let helper =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Atomic.set release true)
  in
  Parallel.shutdown ();
  Domain.join helper;
  List.iter Parallel.await blockers;
  let stopped = ref 0 in
  List.iter
    (fun t -> match Parallel.await t with () -> () | exception Parallel.Stopped -> incr stopped)
    extras;
  Alcotest.(check int) "every extra ran or was Stopped, none stranded" 3
    (Atomic.get extra_ran + !stopped);
  Alcotest.(check int) "pool restarts after drain" (map_sum 1 50) (map_sum 2 50)

let suite =
  [
    Alcotest.test_case "shutdown -> reuse -> shutdown" `Quick test_shutdown_reuse_shutdown;
    Alcotest.test_case "submit/await basic" `Quick test_submit_await_basic;
    Alcotest.test_case "submit beyond worker count" `Quick test_submit_more_than_workers;
    Alcotest.test_case "submit exception re-raised at await" `Quick
      test_submit_exception_propagates;
    Alcotest.test_case "submit after shutdown respawns" `Quick
      test_submit_after_shutdown_respawns;
    Alcotest.test_case "shutdown drains queued tasks" `Quick test_shutdown_drains_queue;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_lifecycle ]
