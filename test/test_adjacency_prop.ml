(* Model-based property tests for the flat-array Adjacency (PR 4).

   The implementation moved from one functional AVL set per node to sorted
   dynamic int arrays, so every query is re-checked against a trivially
   correct reference model (Node_id.Set per node) over a long random
   mutation stream. A second test pins down the Rt scratch-arena reuse:
   deleting through one long-lived Forgiving_graph.t must produce exactly
   the graphs that fresh contexts produce. *)

open Fg_graph

(* ---- reference model: Node_id.Set per node ---- *)

module Model = struct
  type t = { mutable adj : Node_id.Set.t Node_id.Map.t }

  let create () = { adj = Node_id.Map.empty }
  let mem_node m v = Node_id.Map.mem v m.adj

  let neighbors m v =
    match Node_id.Map.find_opt v m.adj with
    | None -> Node_id.Set.empty
    | Some s -> s

  let add_node m v =
    if not (mem_node m v) then m.adj <- Node_id.Map.add v Node_id.Set.empty m.adj

  let add_edge m u v =
    if not (Node_id.equal u v) then begin
      add_node m u;
      add_node m v;
      m.adj <- Node_id.Map.add u (Node_id.Set.add v (neighbors m u)) m.adj;
      m.adj <- Node_id.Map.add v (Node_id.Set.add u (neighbors m v)) m.adj
    end

  let remove_edge m u v =
    if mem_node m u && mem_node m v then begin
      m.adj <- Node_id.Map.add u (Node_id.Set.remove v (neighbors m u)) m.adj;
      m.adj <- Node_id.Map.add v (Node_id.Set.remove u (neighbors m v)) m.adj
    end

  let remove_node m v =
    if mem_node m v then begin
      Node_id.Set.iter
        (fun u -> m.adj <- Node_id.Map.add u (Node_id.Set.remove v (neighbors m u)) m.adj)
        (neighbors m v);
      m.adj <- Node_id.Map.remove v m.adj
    end

  let mem_edge m u v = Node_id.Set.mem v (neighbors m u)
  let degree m v = Node_id.Set.cardinal (neighbors m v)
  let num_nodes m = Node_id.Map.cardinal m.adj

  (* does the op change the node/edge set? mirrors the version contract *)
  let changes m = function
    | `Add_node v -> not (mem_node m v)
    | `Add_edge (u, v) -> (not (Node_id.equal u v)) && not (mem_edge m u v)
    | `Remove_edge (u, v) -> mem_edge m u v
    | `Remove_node v -> mem_node m v
end

let rec is_sorted = function
  | a :: (b :: _ as rest) -> Node_id.compare a b < 0 && is_sorted rest
  | [ _ ] | [] -> true

let check_node g m v =
  let got = Adjacency.neighbors g v in
  Alcotest.(check bool)
    (Printf.sprintf "neighbors of %d sorted" v)
    true (is_sorted got);
  Alcotest.(check (list int))
    (Printf.sprintf "neighbors of %d" v)
    (Node_id.Set.elements (Model.neighbors m v))
    got;
  Alcotest.(check int)
    (Printf.sprintf "degree of %d" v)
    (Model.degree m v) (Adjacency.degree g v)

let full_check g m ~ids =
  Alcotest.(check int) "num_nodes" (Model.num_nodes m) (Adjacency.num_nodes g);
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "mem_node %d" v)
        (Model.mem_node m v) (Adjacency.mem_node g v);
      check_node g m v;
      (* neighbors_into agrees with neighbors *)
      let buf = ref [||] in
      let len = Adjacency.neighbors_into g v buf in
      Alcotest.(check (list int))
        (Printf.sprintf "neighbors_into %d" v)
        (Adjacency.neighbors g v)
        (Array.to_list (Array.sub !buf 0 len));
      List.iter
        (fun u ->
          Alcotest.(check bool)
            (Printf.sprintf "mem_edge %d %d" v u)
            (Model.mem_edge m v u) (Adjacency.mem_edge g v u))
        ids)
    ids

let test_random_ops () =
  let rng = Rng.create 20260807 in
  let g = Adjacency.create () and m = Model.create () in
  let max_id = 64 in
  let ids = List.init max_id Fun.id in
  for step = 1 to 10_000 do
    let v = Rng.int rng max_id and u = Rng.int rng max_id in
    let op =
      match Rng.int rng 10 with
      | 0 -> `Add_node v
      | 1 | 2 | 3 | 4 -> `Add_edge (u, v)
      | 5 | 6 | 7 -> `Remove_edge (u, v)
      | _ -> `Remove_node v
    in
    let should_change = Model.changes m op in
    let v0 = Adjacency.version g in
    (match op with
    | `Add_node v ->
      Adjacency.add_node g v;
      Model.add_node m v
    | `Add_edge (u, v) ->
      Adjacency.add_edge g u v;
      Model.add_edge m u v
    | `Remove_edge (u, v) ->
      Adjacency.remove_edge g u v;
      Model.remove_edge m u v
    | `Remove_node v ->
      Adjacency.remove_node g v;
      Model.remove_node m v);
    (* version bumps exactly when the node/edge set changes.
       add_edge may create endpoints, so "changed" is the model's word *)
    Alcotest.(check bool)
      (Printf.sprintf "step %d: version changed" step)
      should_change
      (Adjacency.version g <> v0);
    (* spot-check the touched nodes every step, everything periodically *)
    check_node g m u;
    check_node g m v;
    if step mod 500 = 0 then full_check g m ~ids
  done;
  full_check g m ~ids

(* repeated deletes through one context (scratch arena reused across
   heals) must equal deletes through fresh contexts at every prefix *)
let test_scratch_reuse_equals_fresh () =
  let n = 48 in
  let rng = Rng.create 11 in
  let g0 = Generators.erdos_renyi rng n (6.0 /. float_of_int n) in
  let victims = [ 0; 7; 13; 1; 30; 21; 2; 40; 8; 3 ] in
  let reused = Fg_core.Forgiving_graph.of_graph g0 in
  let rec go prefix = function
    | [] -> ()
    | v :: rest ->
      let prefix = prefix @ [ v ] in
      Fg_core.Forgiving_graph.delete reused v;
      (* replay the same prefix on a fresh context *)
      let fresh = Fg_core.Forgiving_graph.of_graph g0 in
      List.iter (Fg_core.Forgiving_graph.delete fresh) prefix;
      Alcotest.(check bool)
        (Printf.sprintf "graph equal after %d deletes" (List.length prefix))
        true
        (Adjacency.equal
           (Fg_core.Forgiving_graph.graph reused)
           (Fg_core.Forgiving_graph.graph fresh));
      Alcotest.(check bool)
        (Printf.sprintf "gprime equal after %d deletes" (List.length prefix))
        true
        (Adjacency.equal
           (Fg_core.Forgiving_graph.gprime reused)
           (Fg_core.Forgiving_graph.gprime fresh));
      go prefix rest
  in
  go [] victims;
  (* the deep structural invariants must also hold on the long-lived context *)
  Alcotest.(check (list string))
    "invariants on reused context" []
    (Fg_core.Invariants.check reused)

let suite =
  [
    Alcotest.test_case "10k random ops vs set model" `Quick test_random_ops;
    Alcotest.test_case "scratch reuse equals fresh contexts" `Quick
      test_scratch_reuse_equals_fresh;
  ]
