(* Tests for the fully distributed protocol: per-processor state machines
   must reproduce the centralized healing exactly (leaf partitions), keep
   all structural invariants, and stay within the Lemma 4 cost bounds. *)

open Fg_graph
module De = Fg_sim.Dist_engine

let check_ok label eng =
  (match De.verify eng with
  | [] -> ()
  | errs ->
    Alcotest.failf "%s (delta): %d violations, first: %s" label (List.length errs)
      (List.hd errs));
  match De.verify_full eng with
  | [] -> ()
  | errs -> Alcotest.failf "%s: %d violations, first: %s" label (List.length errs) (List.hd errs)

let test_fresh () =
  let eng = De.create (Generators.ring 8) in
  check_ok "fresh" eng;
  Alcotest.(check bool) "same graph" true
    (Adjacency.equal (De.graph eng) (Fg_core.Forgiving_graph.graph (De.reference eng)))

let test_star () =
  let eng = De.create (Generators.star 17) in
  let stats = De.delete eng 0 in
  check_ok "star" eng;
  Alcotest.(check bool) "messages flowed" true (stats.Fg_sim.Netsim.messages > 0);
  Alcotest.(check bool) "connected" true (Connectivity.is_connected (De.graph eng))

let test_degree_one () =
  let eng = De.create (Generators.path 2) in
  ignore (De.delete eng 1);
  check_ok "degree one" eng

let test_isolated () =
  let g = Adjacency.create () in
  Adjacency.add_node g 0;
  Adjacency.add_node g 1;
  let eng = De.create g in
  let stats = De.delete eng 1 in
  Alcotest.(check int) "no messages" 0 stats.Fg_sim.Netsim.messages;
  check_ok "isolated" eng

let test_path_middle () =
  let eng = De.create (Generators.path 3) in
  ignore (De.delete eng 1);
  check_ok "path middle" eng;
  Alcotest.(check bool) "healed edge" true (Adjacency.mem_edge (De.graph eng) 0 2)

let test_consecutive_merges () =
  let eng = De.create (Generators.path 12) in
  List.iter
    (fun v ->
      ignore (De.delete eng v);
      check_ok (Printf.sprintf "after %d" v) eng)
    [ 5; 6; 4; 7; 3; 8 ]

let test_insert_then_delete () =
  let eng = De.create (Generators.ring 6) in
  De.insert eng 100 [ 0; 3 ];
  ignore (De.delete eng 0);
  check_ok "insert then delete" eng

let test_whole_clique () =
  let eng = De.create (Generators.complete 10) in
  for v = 0 to 7 do
    ignore (De.delete eng v);
    check_ok (Printf.sprintf "K10 after %d" v) eng
  done

let test_er_random_sequence () =
  let rng = Rng.create 91 in
  let eng = De.create (Generators.erdos_renyi rng 48 0.12) in
  for step = 1 to 30 do
    let live = Fg_core.Forgiving_graph.live_nodes (De.reference eng) in
    if List.length live > 3 then begin
      ignore (De.delete eng (Rng.pick rng live));
      check_ok (Printf.sprintf "er step %d" step) eng
    end
  done

let test_lemma4_costs () =
  let log2 x = log (float_of_int (max 2 x)) /. log 2. in
  List.iter
    (fun n ->
      let eng = De.create (Generators.star n) in
      let c = De.delete eng 0 in
      let d = float_of_int (n - 1) in
      let lg = log2 n in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d messages %d = O(d log n)" n c.Fg_sim.Netsim.messages)
        true
        (float_of_int c.Fg_sim.Netsim.messages <= 25. *. d *. lg);
      Alcotest.(check bool)
        (Printf.sprintf "n=%d rounds %d = O(log d log n)" n c.Fg_sim.Netsim.rounds)
        true
        (float_of_int c.Fg_sim.Netsim.rounds <= 16. *. log2 (n - 1) *. lg))
    [ 16; 64; 256; 1024 ]

(* asynchronous delivery: messages delayed 1..k rounds, arbitrary
   reordering. The repair must still produce the identical healing. *)
let test_async_star () =
  let st = Fg_sim.Dist_state.create () in
  let g = Generators.star 17 in
  Adjacency.iter_nodes (fun v -> Fg_sim.Dist_state.add_processor st v) g;
  Adjacency.iter_edges (fun u v -> Fg_sim.Dist_state.add_edge st u v) g;
  let discipline = Fg_sim.Netsim.Asynchronous (Rng.create 5, 4) in
  ignore (Fg_sim.Dist_protocol.delete ~discipline st 0 ~n_seen:17);
  Alcotest.(check (list string)) "structure ok" [] (Fg_sim.Dist_state.check st);
  Alcotest.(check bool) "connected" true
    (Connectivity.is_connected (Fg_sim.Dist_state.derived_graph st))

let prop_async_matches_centralized =
  QCheck2.Test.make ~name:"asynchronous delivery heals identically" ~count:20
    QCheck2.Gen.(tup3 (int_range 0 99999) (int_range 8 24) (int_range 2 6))
    (fun (seed, n, max_delay) ->
      let rng = Rng.create seed in
      let g = Generators.erdos_renyi rng n (3.0 /. float_of_int n) in
      (* distributed under async delivery *)
      let st = Fg_sim.Dist_state.create () in
      Adjacency.iter_nodes (fun v -> Fg_sim.Dist_state.add_processor st v) g;
      Adjacency.iter_edges (fun u v -> Fg_sim.Dist_state.add_edge st u v) g;
      (* centralized shadow *)
      let fg = Fg_core.Forgiving_graph.of_graph g in
      let ok = ref true in
      for _ = 1 to n / 2 do
        let live = Fg_core.Forgiving_graph.live_nodes fg in
        if List.length live > 3 && !ok then begin
          let victim = Rng.pick rng live in
          let discipline = Fg_sim.Netsim.Asynchronous (Rng.split rng, max_delay) in
          ignore
            (Fg_sim.Dist_protocol.delete ~discipline st victim
               ~n_seen:(Fg_core.Forgiving_graph.num_seen fg));
          Fg_core.Forgiving_graph.delete fg victim;
          if Fg_sim.Dist_state.check st <> [] then ok := false;
          (* leaf partitions still identical under reordering *)
          let dist_part = List.sort compare (Fg_sim.Dist_state.leaf_partition st) in
          let ref_part =
            let ctx = Fg_core.Forgiving_graph.ctx fg in
            List.sort compare
              (List.map
                 (fun root ->
                   Fg_core.Rt.leaves_of root
                   |> List.map (fun (l : Fg_core.Rt.vnode) ->
                          ( l.Fg_core.Rt.half.Fg_core.Edge.Half.proc,
                            l.Fg_core.Rt.half.Fg_core.Edge.Half.edge ))
                   |> List.sort compare)
                 (Fg_core.Rt.rt_roots ctx))
          in
          if dist_part <> ref_part then ok := false
        end
      done;
      !ok)

let prop_dist_matches_centralized =
  QCheck2.Test.make ~name:"distributed = centralized after random attacks" ~count:25
    QCheck2.Gen.(tup2 (int_range 0 99999) (int_range 8 28))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Generators.erdos_renyi rng n (3.0 /. float_of_int n) in
      let eng = De.create g in
      let ok = ref true in
      for _ = 1 to n / 2 do
        let live = Fg_core.Forgiving_graph.live_nodes (De.reference eng) in
        if List.length live > 3 && !ok then begin
          ignore (De.delete eng (Rng.pick rng live));
          if De.verify eng <> [] || De.verify_full eng <> [] then ok := false
        end
      done;
      !ok)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_dist_matches_centralized; prop_async_matches_centralized ]

let suite =
  [
    Alcotest.test_case "dist: fresh graph" `Quick test_fresh;
    Alcotest.test_case "dist: star heal" `Quick test_star;
    Alcotest.test_case "dist: degree one" `Quick test_degree_one;
    Alcotest.test_case "dist: isolated" `Quick test_isolated;
    Alcotest.test_case "dist: path middle" `Quick test_path_middle;
    Alcotest.test_case "dist: consecutive merges" `Quick test_consecutive_merges;
    Alcotest.test_case "dist: insert then delete" `Quick test_insert_then_delete;
    Alcotest.test_case "dist: whole clique" `Quick test_whole_clique;
    Alcotest.test_case "dist: random ER sequence" `Quick test_er_random_sequence;
    Alcotest.test_case "dist: lemma 4 costs" `Quick test_lemma4_costs;
    Alcotest.test_case "dist: async star heal" `Quick test_async_star;
  ]
  @ props
