(* Fg_obs.Hdr: the log-linear histogram behind the telemetry layer.

   The quantile contract is exact, not approximate: [quantile h q] is a
   deterministic function of the rank-[ceil (q*n)] sample's bucket, so
   every test here asserts equality against a sorted-array oracle that
   applies the same rule — no tolerance bands that could mask an
   off-by-one in the cumulative walk. *)

module Hdr = Fg_obs.Hdr
module Rng = Fg_graph.Rng

(* The oracle: what [quantile] must return given the raw samples. Rank
   semantics mirror the documented contract; the max-bucket exactness
   rule is phrased via [upper_of] (same bucket iff same upper bound). *)
let oracle_quantile samples q =
  let a = Array.copy samples in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0
  else if q <= 0. then a.(0)
  else begin
    let q = if q > 1. then 1. else q in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
    let x = a.(rank - 1) in
    let vmax = a.(n - 1) in
    if Hdr.upper_of x = Hdr.upper_of vmax then vmax else Hdr.upper_of x
  end

let record_all h samples = Array.iter (Hdr.record h) samples

let quantile_points = [ 0.0; 0.001; 0.01; 0.5; 0.9; 0.99; 0.999; 1.0 ]

let check_against_oracle name samples =
  let h = Hdr.create () in
  record_all h samples;
  Alcotest.(check int)
    (name ^ ": count") (Array.length samples) (Hdr.count h);
  Alcotest.(check int)
    (name ^ ": sum")
    (Array.fold_left ( + ) 0 samples)
    (Hdr.sum h);
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  Alcotest.(check int) (name ^ ": min") sorted.(0) (Hdr.min_value h);
  Alcotest.(check int)
    (name ^ ": max")
    sorted.(Array.length sorted - 1)
    (Hdr.max_value h);
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "%s: q=%g" name q)
        (oracle_quantile samples q) (Hdr.quantile h q))
    quantile_points

let uniform rng n bound = Array.init n (fun _ -> Rng.int rng bound)

(* heavy-tailed: uniform exponent, so samples span many octaves *)
let power_law rng n =
  Array.init n (fun _ ->
      let e = Rng.int rng 30 in
      (1 lsl e) + Rng.int rng (1 lsl e))

let test_quantiles_vs_oracle () =
  let rng = Rng.create 0xC0FFEE in
  check_against_oracle "tiny" [| 1; 2; 3 |];
  check_against_oracle "all-equal" (Array.make 1000 42);
  check_against_oracle "sub-linear range" (uniform rng 5000 31);
  check_against_oracle "uniform 1e3" (uniform rng 5000 1_000);
  check_against_oracle "uniform 1e9" (uniform rng 5000 1_000_000_000);
  check_against_oracle "power-law" (power_law rng 5000);
  for trial = 0 to 9 do
    check_against_oracle
      (Printf.sprintf "random trial %d" trial)
      (uniform rng (1 + Rng.int rng 2000) (1 + Rng.int rng 10_000_000))
  done

let test_edge_values () =
  let h = Hdr.create () in
  Alcotest.(check int) "empty quantile" 0 (Hdr.quantile h 0.5);
  Alcotest.(check bool) "empty is_empty" true (Hdr.is_empty h);
  Hdr.record h (-5);
  Alcotest.(check int) "negative clamps to 0" 0 (Hdr.max_value h);
  Hdr.record h max_int;
  Alcotest.(check int) "max_int recorded exactly as max" max_int
    (Hdr.max_value h);
  Alcotest.(check int) "p100 is the exact max" max_int (Hdr.quantile h 1.0)

let test_upper_of_bounds () =
  let rng = Rng.create 11 in
  let prev = ref (-1) in
  for v = 0 to 4096 do
    let u = Hdr.upper_of v in
    Alcotest.(check bool)
      (Printf.sprintf "upper_of %d >= v" v)
      true (u >= v);
    Alcotest.(check bool)
      (Printf.sprintf "upper_of %d monotone" v)
      true (u >= !prev);
    prev := u
  done;
  (* relative error of the bucket upper bound is < 1/32 everywhere *)
  for _ = 1 to 1000 do
    let v = 32 + Rng.int rng 1_000_000_000 in
    let u = Hdr.upper_of v in
    Alcotest.(check bool)
      (Printf.sprintf "resolution at %d" v)
      true
      (float_of_int (u - v) /. float_of_int v < 1. /. 32.)
  done

let test_merge_assoc_commut () =
  let rng = Rng.create 99 in
  let xs = uniform rng 2000 1_000_000 in
  let ys = power_law rng 2000 in
  let zs = uniform rng 500 50 in
  let of_samples s =
    let h = Hdr.create () in
    record_all h s;
    h
  in
  let merged parts =
    let into = Hdr.create () in
    List.iter (fun s -> Hdr.merge_into ~src:(of_samples s) ~into) parts;
    into
  in
  (* commutativity: any order of pairwise merges gives the same histogram *)
  Alcotest.(check bool)
    "merge commutes" true
    (Hdr.equal (merged [ xs; ys ]) (merged [ ys; xs ]));
  (* associativity: (x+y)+z = x+(y+z) *)
  let xy_z =
    let into = merged [ xs; ys ] in
    Hdr.merge_into ~src:(of_samples zs) ~into;
    into
  in
  let x_yz =
    let yz = merged [ ys; zs ] in
    let into = of_samples xs in
    Hdr.merge_into ~src:yz ~into;
    into
  in
  Alcotest.(check bool) "merge associates" true (Hdr.equal xy_z x_yz);
  (* merging equals recording everything into one histogram *)
  Alcotest.(check bool)
    "merge = single recording" true
    (Hdr.equal (merged [ xs; ys; zs ])
       (of_samples (Array.concat [ xs; ys; zs ])))

let test_sharded_single_domain () =
  let rng = Rng.create 5 in
  let samples = uniform rng 3000 1_000_000 in
  let s = Hdr.create_sharded () in
  Array.iter (Hdr.record_sharded s) samples;
  let plain = Hdr.create () in
  record_all plain samples;
  Alcotest.(check bool)
    "sharded merge = plain on one domain" true
    (Hdr.equal (Hdr.merged s) plain);
  Hdr.clear_sharded s;
  Alcotest.(check bool) "cleared shards read empty" true
    (Hdr.is_empty (Hdr.merged s))

let test_sharded_multi_domain () =
  let rng = Rng.create 6 in
  let slices = Array.init 4 (fun _ -> uniform rng 1000 10_000_000) in
  let s = Hdr.create_sharded () in
  (* one slice from this domain, three from spawned domains: recorders
     land in different slots, merge must still see every sample *)
  Array.iter (Hdr.record_sharded s) slices.(0);
  let doms =
    Array.init 3 (fun i ->
        Domain.spawn (fun () -> Array.iter (Hdr.record_sharded s) slices.(i + 1)))
  in
  Array.iter Domain.join doms;
  let plain = Hdr.create () in
  Array.iter (record_all plain) slices;
  Alcotest.(check bool)
    "sharded multi-domain merge = single recording" true
    (Hdr.equal (Hdr.merged s) plain)

(* JSONL snapshot round-trip, the way a long-running process would
   checkpoint a histogram into its trace stream: embed the snapshot as a
   string attribute of a point event, write the JSONL line, re-read it
   through the same Replay parser [fg trace] uses, and rebuild. *)
let test_jsonl_roundtrip () =
  let rng = Rng.create 123 in
  let h = Hdr.create () in
  record_all h (power_law rng 4000);
  let line =
    Fg_obs.Json.to_string
      (Fg_obs.Event.to_json
         (Fg_obs.Event.Point
            {
              name = "hdr.snapshot";
              ts = 1.5;
              attrs =
                [
                  ("metric", Fg_obs.Event.Str "profile.heal_ns");
                  ( "hdr",
                    Fg_obs.Event.Str (Fg_obs.Json.to_string (Hdr.to_json h)) );
                ];
            }))
  in
  match Fg_obs.Replay.parse_line line with
  | Error e -> Alcotest.failf "replay rejected the snapshot line: %s" e
  | Ok (Fg_obs.Event.Point { name; attrs; _ }) ->
    Alcotest.(check string) "event name" "hdr.snapshot" name;
    let payload =
      match List.assoc "hdr" attrs with
      | Fg_obs.Event.Str s -> s
      | _ -> Alcotest.fail "hdr attribute is not a string"
    in
    let json =
      match Fg_obs.Json.of_string payload with
      | Ok j -> j
      | Error e -> Alcotest.failf "payload is not JSON: %s" e
    in
    (match Hdr.of_json json with
    | Error e -> Alcotest.failf "of_json: %s" e
    | Ok h' ->
      Alcotest.(check bool) "round-trip equality" true (Hdr.equal h h');
      List.iter
        (fun q ->
          Alcotest.(check int)
            (Printf.sprintf "round-trip q=%g" q)
            (Hdr.quantile h q) (Hdr.quantile h' q))
        quantile_points)
  | Ok e ->
    Alcotest.failf "unexpected event: %s" (Format.asprintf "%a" Fg_obs.Event.pp e)

let test_of_json_rejects_garbage () =
  let bad text =
    match Fg_obs.Json.of_string text with
    | Error _ -> ()
    | Ok j -> (
      match Hdr.of_json j with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "of_json accepted %s" text)
  in
  bad {|{"total":1}|};
  bad {|{"total":2,"sum":3,"min":1,"max":2,"buckets":[[1,1]]}|};
  (* total disagrees *)
  bad {|{"total":1,"sum":3,"min":1,"max":2,"buckets":[[999999,1]]}|}
(* bucket out of range *)

(* Profile: the registry handles survive reset, and stamps only record
   while the recording flag is up. *)
let test_profile_gating () =
  Fg_obs.Metrics.reset Fg_obs.Metrics.global;
  Alcotest.(check bool) "recording off" false (Fg_obs.Metrics.is_recording ());
  let t0 = Fg_obs.Profile.start () in
  Alcotest.(check int) "disabled start is 0" 0 t0;
  Fg_obs.Profile.stamp Fg_obs.Profile.Strip t0;
  Alcotest.(check bool)
    "disabled stamp records nothing" true
    (Hdr.is_empty (Hdr.merged (Fg_obs.Profile.hdr_of Fg_obs.Profile.Strip)));
  Fg_obs.Metrics.set_recording true;
  Fun.protect
    ~finally:(fun () ->
      Fg_obs.Metrics.set_recording false;
      Fg_obs.Metrics.reset Fg_obs.Metrics.global)
    (fun () ->
      let t0 = Fg_obs.Profile.start () in
      Alcotest.(check bool) "enabled start is nonzero" true (t0 > 0);
      Fg_obs.Profile.stamp Fg_obs.Profile.Strip t0;
      let h = Hdr.merged (Fg_obs.Profile.hdr_of Fg_obs.Profile.Strip) in
      Alcotest.(check int) "enabled stamp records one sample" 1 (Hdr.count h);
      (* the same histogram is visible through the registry read API *)
      let by_name =
        List.assoc_opt
          (Fg_obs.Profile.name_of Fg_obs.Profile.Strip)
          (Fg_obs.Metrics.hdrs Fg_obs.Metrics.global)
      in
      match by_name with
      | Some h' -> Alcotest.(check bool) "registry view" true (Hdr.equal h h')
      | None -> Alcotest.fail "profile.strip_ns not in Metrics.hdrs");
  (* after reset the handle still works: record again, count restarts *)
  Fg_obs.Metrics.set_recording true;
  Fun.protect
    ~finally:(fun () ->
      Fg_obs.Metrics.set_recording false;
      Fg_obs.Metrics.reset Fg_obs.Metrics.global)
    (fun () ->
      Fg_obs.Profile.record_ns Fg_obs.Profile.Strip 500;
      let h = Hdr.merged (Fg_obs.Profile.hdr_of Fg_obs.Profile.Strip) in
      Alcotest.(check int) "handle survives reset" 1 (Hdr.count h))

let suite =
  [
    Alcotest.test_case "quantiles equal the sorted-array oracle" `Quick
      test_quantiles_vs_oracle;
    Alcotest.test_case "edge values (empty, negative, max_int)" `Quick
      test_edge_values;
    Alcotest.test_case "bucket upper bounds are tight and monotone" `Quick
      test_upper_of_bounds;
    Alcotest.test_case "merge is associative and commutative" `Quick
      test_merge_assoc_commut;
    Alcotest.test_case "sharded recording equals plain (one domain)" `Quick
      test_sharded_single_domain;
    Alcotest.test_case "sharded recording equals plain (multi-domain)" `Quick
      test_sharded_multi_domain;
    Alcotest.test_case "JSONL snapshot round-trips through replay" `Quick
      test_jsonl_roundtrip;
    Alcotest.test_case "of_json rejects malformed snapshots" `Quick
      test_of_json_rejects_garbage;
    Alcotest.test_case "profile stamps are gated and reset-safe" `Quick
      test_profile_gating;
  ]
