(* GC allocation sanitizer: turns PR 4's "allocation-free heal kernel"
   claim into a checked property. Two gates:

   - a warmed steady-state heal loop on a 1k-node graph must stay under a
     per-delete minor-words budget (the scratch arena, the sorted-row
     adjacency and the gated observability make repeat deletions O(degree)
     list work only — reintroducing a per-edge hashtable, an ungated
     recorder or an ungated emission site blows the budget immediately);
   - the CSR BFS kernel must allocate nothing at all in the steady state
     (its distance array and flat queue live in the reusable scratch).

   Budgets are deterministic: allocation counts do not depend on machine
   speed, so unlike the bench regression gate this check is exact in CI.
   Measured on OCaml 5.1: ~4.8k minor words/delete on the heal loop
   (dominated by the fresh helper vnodes the repair itself creates — the
   healing structure is new graph state, not scratch — plus the per-event
   collect lists and Edge.Half boxes) and 0 words/run for CSR BFS. *)

open Fg_graph
open Fg_core

(* per-delete budget, in minor-heap words: ~1.25x the measured steady
   state, far below the 10-100x jumps the guarded regressions cause *)
let heal_budget_per_delete = 6000.0

(* whole-sweep budget for the BFS loop: covers only the boxed floats of
   the [Gc.minor_words] reads themselves — the kernel must stay at 0 *)
let bfs_sweep_budget = 64.0

let test_heal_minor_words () =
  let rng = Rng.create 0xA110C in
  let g = Generators.erdos_renyi rng 1000 0.008 in
  ignore (Generators.connect_components rng g);
  let fg = Forgiving_graph.of_graph g in
  let victims =
    Rng.shuffle rng
      (Array.of_list (List.sort Node_id.compare (Forgiving_graph.live_nodes fg)))
  in
  (* warm-up: grow the RT scratch arena, fragment pool and adjacency rows
     to their steady-state capacities *)
  for i = 0 to 199 do
    Forgiving_graph.delete fg victims.(i)
  done;
  let ops = 200 in
  let before = Gc.minor_words () in
  for i = 200 to 199 + ops do
    Forgiving_graph.delete fg victims.(i)
  done;
  let delta = Gc.minor_words () -. before in
  let per_op = delta /. float_of_int ops in
  Printf.eprintf "[alloc] heal: %.0f minor words/delete (budget %.0f)\n%!" per_op
    heal_budget_per_delete;
  if per_op > heal_budget_per_delete then
    Alcotest.failf
      "steady-state heal allocates %.0f minor words/delete, budget %.0f — an \
       allocation crept back onto the heal path (see ARCHITECTURE.md \
       \"Allocation discipline on the heal path\")"
      per_op heal_budget_per_delete

let test_csr_bfs_zero_alloc () =
  let rng = Rng.create 7 in
  let g = Generators.erdos_renyi rng 600 0.01 in
  let t = Csr.of_adjacency g in
  let s = Csr.scratch t in
  ignore (Csr.bfs t s 0 : int array);
  let n = Csr.num_nodes t in
  let before = Gc.minor_words () in
  for src = 0 to n - 1 do
    ignore (Csr.bfs t s src : int array)
  done;
  let delta = Gc.minor_words () -. before in
  Printf.eprintf "[alloc] csr-bfs: %.0f minor words over %d runs (budget %.0f)\n%!"
    delta n bfs_sweep_budget;
  if delta > bfs_sweep_budget then
    Alcotest.failf
      "CSR BFS allocated %.0f minor words over %d runs — the kernel must be \
       allocation-free (scratch reuse broke)"
      delta n

let suite =
  [
    Alcotest.test_case "steady-state heal stays under budget" `Quick
      test_heal_minor_words;
    Alcotest.test_case "CSR BFS allocates nothing" `Quick test_csr_bfs_zero_alloc;
  ]
