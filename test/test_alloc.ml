(* GC allocation sanitizer: turns PR 4's "allocation-free heal kernel"
   claim into a checked property. Two gates:

   - a warmed steady-state heal loop on a 1k-node graph must stay under a
     per-delete minor-words budget (the scratch arena, the sorted-row
     adjacency and the gated observability make repeat deletions O(degree)
     list work only — reintroducing a per-edge hashtable, an ungated
     recorder or an ungated emission site blows the budget immediately);
   - the CSR BFS kernel must allocate nothing at all in the steady state
     (its distance array and flat queue live in the reusable scratch).

   Budgets are deterministic: allocation counts do not depend on machine
   speed, so unlike the bench regression gate this check is exact in CI.
   Measured on OCaml 5.1: ~4.8k minor words/delete on the heal loop
   (dominated by the fresh helper vnodes the repair itself creates — the
   healing structure is new graph state, not scratch — plus the per-event
   collect lists and Edge.Half boxes) and 0 words/run for CSR BFS. *)

open Fg_graph
open Fg_core

(* per-delete budget, in minor-heap words: ~1.25x the measured steady
   state, far below the 10-100x jumps the guarded regressions cause *)
let heal_budget_per_delete = 6000.0

(* whole-sweep budget for the BFS loop: covers only the boxed floats of
   the [Gc.minor_words] reads themselves — the kernel must stay at 0 *)
let bfs_sweep_budget = 64.0

let test_heal_minor_words () =
  let rng = Rng.create 0xA110C in
  let g = Generators.erdos_renyi rng 1000 0.008 in
  ignore (Generators.connect_components rng g);
  let fg = Forgiving_graph.of_graph g in
  let victims =
    Rng.shuffle rng
      (Array.of_list (List.sort Node_id.compare (Forgiving_graph.live_nodes fg)))
  in
  (* warm-up: grow the RT scratch arena, fragment pool and adjacency rows
     to their steady-state capacities *)
  for i = 0 to 199 do
    Forgiving_graph.delete fg victims.(i)
  done;
  let ops = 200 in
  let before = Gc.minor_words () in
  for i = 200 to 199 + ops do
    Forgiving_graph.delete fg victims.(i)
  done;
  let delta = Gc.minor_words () -. before in
  let per_op = delta /. float_of_int ops in
  Printf.eprintf "[alloc] heal: %.0f minor words/delete (budget %.0f)\n%!" per_op
    heal_budget_per_delete;
  if per_op > heal_budget_per_delete then
    Alcotest.failf
      "steady-state heal allocates %.0f minor words/delete, budget %.0f — an \
       allocation crept back onto the heal path (see ARCHITECTURE.md \
       \"Allocation discipline on the heal path\")"
      per_op heal_budget_per_delete

let test_csr_bfs_zero_alloc () =
  let rng = Rng.create 7 in
  let g = Generators.erdos_renyi rng 600 0.01 in
  let t = Csr.of_adjacency g in
  let s = Csr.scratch t in
  ignore (Csr.bfs t s 0 : int array);
  let n = Csr.num_nodes t in
  let before = Gc.minor_words () in
  for src = 0 to n - 1 do
    ignore (Csr.bfs t s src : int array)
  done;
  let delta = Gc.minor_words () -. before in
  Printf.eprintf "[alloc] csr-bfs: %.0f minor words over %d runs (budget %.0f)\n%!"
    delta n bfs_sweep_budget;
  if delta > bfs_sweep_budget then
    Alcotest.failf
      "CSR BFS allocated %.0f minor words over %d runs — the kernel must be \
       allocation-free (scratch reuse broke)"
      delta n

let test_dirop_bfs_zero_alloc () =
  (* Bigarray rows + int-array scratch: a full all-sources sweep of the
     direction-optimizing kernel must not touch the minor heap (boxed
     [Int32] reads would show up here immediately on a non-flambda
     compiler) *)
  let rng = Rng.create 7 in
  let g = Generators.erdos_renyi rng 600 0.01 in
  let t = Csr.of_adjacency g in
  let s = Bfs_kernel.create t in
  ignore (Bfs_kernel.bfs t s 0 : int array);
  let n = Csr.num_nodes t in
  let before = Gc.minor_words () in
  for src = 0 to n - 1 do
    ignore (Bfs_kernel.bfs t s src : int array)
  done;
  let delta = Gc.minor_words () -. before in
  Printf.eprintf "[alloc] dirop-bfs: %.0f minor words over %d runs (budget %.0f)\n%!"
    delta n bfs_sweep_budget;
  if delta > bfs_sweep_budget then
    Alcotest.failf
      "direction-optimizing BFS allocated %.0f minor words over %d runs — the \
       kernel must be allocation-free (scratch reuse or unboxing broke)"
      delta n

let test_msbfs_zero_alloc () =
  (* steady state: the ms scratch is grown once by the warm-up run; every
     batched sweep after that, and every [ms_dist] read, is free *)
  let rng = Rng.create 7 in
  let g = Generators.erdos_renyi rng 600 0.01 in
  let t = Csr.of_adjacency g in
  let n = Csr.num_nodes t in
  let ms = Bfs_kernel.ms_create () in
  let k = min n Bfs_kernel.word_bits in
  let sources = Array.init k (fun i -> i * n / k) in
  Bfs_kernel.ms_run t ms ~sources ~off:0 ~len:k;
  let before = Gc.minor_words () in
  let acc = ref 0 in
  for _ = 1 to 10 do
    Bfs_kernel.ms_run t ms ~sources ~off:0 ~len:k;
    for v = 0 to n - 1 do
      acc := !acc + Bfs_kernel.ms_dist ms ~slot:(v mod k) ~v
    done
  done;
  let delta = Gc.minor_words () -. before in
  ignore (Sys.opaque_identity !acc);
  Printf.eprintf "[alloc] msbfs: %.0f minor words over 10 sweeps (budget %.0f)\n%!"
    delta bfs_sweep_budget;
  if delta > bfs_sweep_budget then
    Alcotest.failf
      "msbfs allocated %.0f minor words over 10 warmed sweeps — the batched \
       kernel must be allocation-free in the steady state"
      delta

(* whole-loop budgets for the telemetry gates: like the BFS sweep, only
   the boxed floats of the [Gc.minor_words] reads themselves are allowed
   — the instrumented calls must contribute 0 words *)
let telemetry_budget = 64.0

let test_hdr_record_zero_alloc () =
  let h = Fg_obs.Hdr.create () in
  (* warm: nothing to warm (the bucket table is preallocated), but prove
     the very first record is already free *)
  let before = Gc.minor_words () in
  for i = 1 to 100_000 do
    Fg_obs.Hdr.record h (i * 97)
  done;
  let delta = Gc.minor_words () -. before in
  Printf.eprintf "[alloc] hdr-record: %.0f minor words over 100k records (budget %.0f)\n%!"
    delta telemetry_budget;
  if delta > telemetry_budget then
    Alcotest.failf
      "Hdr.record allocated %.0f minor words over 100k calls — the histogram \
       record path must be allocation-free"
      delta

let test_sharded_record_zero_alloc () =
  let s = Fg_obs.Hdr.create_sharded () in
  (* warm: the first record from this domain creates its shard *)
  Fg_obs.Hdr.record_sharded s 1;
  let before = Gc.minor_words () in
  for i = 1 to 100_000 do
    Fg_obs.Hdr.record_sharded s i
  done;
  let delta = Gc.minor_words () -. before in
  Printf.eprintf
    "[alloc] hdr-sharded: %.0f minor words over 100k records (budget %.0f)\n%!"
    delta telemetry_budget;
  if delta > telemetry_budget then
    Alcotest.failf
      "Hdr.record_sharded allocated %.0f minor words over 100k calls after \
       shard warm-up"
      delta

let test_disabled_profile_zero_alloc () =
  Alcotest.(check bool)
    "metrics recording must be off for this gate" false
    (Fg_obs.Metrics.is_recording ());
  (* warm both entry points once *)
  let t0 = Fg_obs.Profile.start () in
  Fg_obs.Profile.stamp Fg_obs.Profile.Strip t0;
  Alcotest.(check int) "disabled start yields the 0 sentinel" 0 t0;
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    let t0 = Fg_obs.Profile.start () in
    Fg_obs.Profile.stamp Fg_obs.Profile.Heal t0
  done;
  let delta = Gc.minor_words () -. before in
  Printf.eprintf
    "[alloc] profile-off: %.0f minor words over 100k stamp pairs (budget %.0f)\n%!"
    delta telemetry_budget;
  if delta > telemetry_budget then
    Alcotest.failf
      "disabled Profile start/stamp allocated %.0f minor words over 100k \
       pairs — the off path must be a branch, not a clock read"
      delta

let suite =
  [
    Alcotest.test_case "steady-state heal stays under budget" `Quick
      test_heal_minor_words;
    Alcotest.test_case "CSR BFS allocates nothing" `Quick test_csr_bfs_zero_alloc;
    Alcotest.test_case "dirop BFS allocates nothing" `Quick test_dirop_bfs_zero_alloc;
    Alcotest.test_case "msbfs sweep allocates nothing when warm" `Quick
      test_msbfs_zero_alloc;
    Alcotest.test_case "Hdr.record allocates nothing" `Quick
      test_hdr_record_zero_alloc;
    Alcotest.test_case "sharded record allocates nothing when warm" `Quick
      test_sharded_record_zero_alloc;
    Alcotest.test_case "disabled profile stamps allocate nothing" `Quick
      test_disabled_profile_zero_alloc;
  ]
