(* Regression gate over BENCH_perf.json: compare two labelled runs and
   fail (exit 1) if any gated benchmark — the [heal.*], [dist.*],
   [csr.*], [obs.*], [bfs.*] and [serve.*] groups — got more than
   [threshold] slower.
   This is the guard that keeps a delta-recorder-style regression (PR 3
   cost every heal bench 40-70%) from landing silently again; [bfs.*]
   extends it over the read-path kernels.

     check_regress --file BENCH_perf.json --base after-csr --cand pr4 \
       [--threshold PCT]   (default 25, i.e. fail on a >25% slowdown)

   When a label appears several times the most recent run wins, so a
   history file can accumulate one run per commit. Benchmarks present in
   only one of the two runs are skipped (new benches don't need a
   baseline). *)

module J = Fg_obs.Json

let gated_groups =
  [ "/heal."; "/dist."; "/csr."; "/obs."; "/bfs."; "/serve."; "/shard." ]

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let gated name = List.exists (fun g -> contains ~sub:g name) gated_groups

let read_file file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

(* last run with the given label -> (bench name -> ns) *)
let run_of_label json label =
  let runs =
    match J.member "runs" json with Some (J.List rs) -> rs | _ -> []
  in
  let matching =
    List.filter
      (fun r ->
        match Option.bind (J.member "label" r) J.to_str with
        | Some l -> l = label
        | None -> false)
      runs
  in
  match List.rev matching with
  | [] -> None
  | last :: _ ->
    let results =
      match J.member "results" last with Some (J.List rs) -> rs | _ -> []
    in
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun r ->
        match
          ( Option.bind (J.member "name" r) J.to_str,
            Option.bind (J.member "ns" r) J.to_float )
        with
        | Some name, Some ns -> Hashtbl.replace tbl name ns
        | _ -> ())
      results;
    Some tbl

let () =
  let file = ref "BENCH_perf.json"
  and base = ref None
  and cand = ref None
  and threshold = ref 0.25 in
  let usage () =
    Printf.eprintf
      "usage: check_regress --file BENCH_perf.json --base LABEL --cand LABEL \
       [--threshold PCT]\n\
       \  --threshold PCT  fail when a gated bench is more than PCT percent\n\
       \                   slower than the base run (default 25)\n";
    exit 2
  in
  let rec parse = function
    | "--file" :: f :: rest ->
      file := f;
      parse rest
    | "--base" :: l :: rest ->
      base := Some l;
      parse rest
    | "--cand" :: l :: rest ->
      cand := Some l;
      parse rest
    | "--threshold" :: t :: rest -> (
      match float_of_string_opt t with
      | Some pct when pct > 0.0 ->
        threshold := pct /. 100.0;
        parse rest
      | _ -> usage ())
    | [] -> ()
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let base = match !base with Some l -> l | None -> usage () in
  let cand = match !cand with Some l -> l | None -> usage () in
  let json =
    match J.of_string (read_file !file) with
    | Ok j -> j
    | Error msg ->
      Printf.eprintf "error: %s: %s\n" !file msg;
      exit 2
    | exception Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  in
  let lookup label =
    match run_of_label json label with
    | Some tbl -> tbl
    | None ->
      Printf.eprintf "error: no run labelled %S in %s\n" label !file;
      exit 2
  in
  let base_tbl = lookup base and cand_tbl = lookup cand in
  let compared = ref 0 and regressions = ref [] in
  Hashtbl.iter
    (fun name base_ns ->
      if gated name && base_ns > 0.0 then
        match Hashtbl.find_opt cand_tbl name with
        | None -> ()
        | Some cand_ns ->
          incr compared;
          let ratio = cand_ns /. base_ns in
          if ratio > 1.0 +. !threshold then
            regressions := (name, base_ns, cand_ns, ratio) :: !regressions)
    base_tbl;
  if !compared = 0 then begin
    Printf.eprintf "error: no gated benchmarks (%s) shared by %S and %S\n"
      (String.concat " " gated_groups)
      base cand;
    exit 2
  end;
  Printf.printf "compared %d gated benchmarks: %S -> %S (threshold +%.0f%%)\n"
    !compared base cand (100.0 *. !threshold);
  match List.sort compare !regressions with
  | [] -> Printf.printf "no time regressions\n"
  | regs ->
    List.iter
      (fun (name, b, c, r) ->
        Printf.printf "REGRESSION %-42s  %12.0f -> %12.0f ns  (%.2fx)\n" name b c r)
      regs;
    exit 1
