(* Bechamel micro/meso benchmarks: one group per experiment of DESIGN.md §5.

   E1/E2  haft construction, strip, merge
   E3/E4  healing under attack (per-deletion latency, metric computation)
   E5     distributed repair replay
   E6     star-centre heal by size
   E7/E10 healer comparison on identical attacks
   E9     cascade simulation

   Prints one table: name, time per run, minor words per run. *)

open Bechamel
open Toolkit

let rec ints a b = if a > b then [] else a :: ints (a + 1) b

(* ---- E1/E2: hafts ---- *)

let haft_tests =
  let of_list =
    Test.make_indexed ~name:"haft.of_list" ~args:[ 64; 1024; 4096 ] (fun n ->
        let xs = ints 1 n in
        Staged.stage (fun () -> ignore (Fg_haft.Haft.of_list xs)))
  in
  let strip =
    Test.make_indexed ~name:"haft.strip" ~args:[ 63; 1023; 4095 ] (fun n ->
        let t = Fg_haft.Haft.of_list (ints 1 n) in
        Staged.stage (fun () -> ignore (Fg_haft.Haft.strip t)))
  in
  let merge =
    Test.make_indexed ~name:"haft.merge" ~args:[ 8; 64; 512 ] (fun k ->
        let ts = List.map (fun i -> Fg_haft.Haft.of_list (ints 1 (i + 3))) (ints 1 k) in
        Staged.stage (fun () -> ignore (Fg_haft.Haft.merge ts)))
  in
  [ of_list; strip; merge ]

(* ---- E6 + E3: healing ---- *)

let heal_star =
  Test.make_indexed ~name:"heal.star-centre" ~args:[ 64; 256; 1024 ] (fun n ->
      Staged.stage (fun () ->
          let fg = Fg_core.Forgiving_graph.of_graph (Fg_graph.Generators.star n) in
          Fg_core.Forgiving_graph.delete fg 0))

let heal_er_sequence =
  Test.make_indexed ~name:"heal.er-50pct" ~args:[ 64; 256 ] (fun n ->
      Staged.stage (fun () ->
          let rng = Fg_graph.Rng.create 42 in
          let g = Fg_graph.Generators.erdos_renyi rng n (4.0 /. float_of_int n) in
          let fg = Fg_core.Forgiving_graph.of_graph g in
          for v = 0 to (n / 2) - 1 do
            Fg_core.Forgiving_graph.delete fg v
          done))

(* ---- E5: distributed replay ---- *)

let sim_star =
  Test.make_indexed ~name:"sim.star-repair" ~args:[ 64; 256; 1024 ] (fun n ->
      Staged.stage (fun () ->
          let eng = Fg_sim.Engine.create (Fg_graph.Generators.star n) in
          ignore (Fg_sim.Engine.delete eng 0)))

(* E7: the Will-based Forgiving Tree baseline *)
let will_tree_star =
  Test.make_indexed ~name:"ft.star-root" ~args:[ 64; 256 ] (fun n ->
      Staged.stage (fun () ->
          let t = Fg_baselines.Will_tree.create (Fg_graph.Generators.star n) in
          Fg_baselines.Will_tree.delete t 0))

(* E14: the fully distributed protocol *)
let dist_star =
  Test.make_indexed ~name:"dist.star-repair" ~args:[ 64; 256 ] (fun n ->
      Staged.stage (fun () ->
          let eng = Fg_sim.Dist_engine.create (Fg_graph.Generators.star n) in
          ignore (Fg_sim.Dist_engine.delete eng 0)))

(* ---- CSR snapshot kernel (PR 2) ---- *)

(* Shared fixture for the read-path benchmarks: a healed ER graph, the
   shape the metric pipeline actually snapshots. *)
let healed_fixture n =
  let rng = Fg_graph.Rng.create 7 in
  let g = Fg_graph.Generators.erdos_renyi rng n (4.0 /. float_of_int n) in
  let fg = Fg_core.Forgiving_graph.of_graph g in
  for v = 0 to (n / 4) - 1 do
    Fg_core.Forgiving_graph.delete fg v
  done;
  fg

let csr_build =
  Test.make_indexed ~name:"csr.build" ~args:[ 64; 256; 1024 ] (fun n ->
      let fg = healed_fixture n in
      let graph = Fg_core.Forgiving_graph.graph fg in
      Staged.stage (fun () -> ignore (Fg_graph.Csr.of_adjacency graph)))

let bfs_csr_vs_tbl =
  Test.make_grouped ~name:"bfs.csr-vs-tbl"
    [
      Test.make_indexed ~name:"tbl" ~args:[ 64; 256; 1024 ] (fun n ->
          let fg = healed_fixture n in
          let graph = Fg_core.Forgiving_graph.graph fg in
          let src = List.hd (Fg_core.Forgiving_graph.live_nodes fg) in
          Staged.stage (fun () -> ignore (Fg_graph.Bfs.distances graph src)));
      Test.make_indexed ~name:"csr" ~args:[ 64; 256; 1024 ] (fun n ->
          let fg = healed_fixture n in
          let graph = Fg_core.Forgiving_graph.graph fg in
          let csr = Fg_graph.Csr.of_adjacency graph in
          let scratch = Fg_graph.Csr.scratch csr in
          let src = List.hd (Fg_core.Forgiving_graph.live_nodes fg) in
          let src = Option.get (Fg_graph.Csr.index csr src) in
          Staged.stage (fun () -> ignore (Fg_graph.Csr.bfs csr scratch src)));
    ]

(* One more deletion on a churned BA graph, captured as a delta: the
   incremental snapshot refresh vs a from-scratch rebuild (PR 3 — the
   [Forgiving_graph.csr] cache takes the apply-delta path). *)
let delta_fixture n =
  let rng = Fg_graph.Rng.create 7 in
  let g = Fg_graph.Generators.barabasi_albert rng n 3 in
  let fg = Fg_core.Forgiving_graph.of_graph g in
  for v = 0 to (n / 4) - 1 do
    Fg_core.Forgiving_graph.delete fg v
  done;
  let before = Fg_graph.Csr.of_adjacency (Fg_core.Forgiving_graph.graph fg) in
  let d, _ = Fg_core.Forgiving_graph.delete_delta fg (n / 4) in
  let after = Fg_core.Forgiving_graph.graph fg in
  (before, Fg_core.Delta.touched d, Fg_core.Delta.removed d, after)

let csr_apply_delta =
  Test.make_grouped ~name:"csr.apply-delta-vs-rebuild"
    [
      Test.make_indexed ~name:"rebuild" ~args:[ 256; 1024 ] (fun n ->
          let _, _, _, after = delta_fixture n in
          Staged.stage (fun () -> ignore (Fg_graph.Csr.of_adjacency after)));
      Test.make_indexed ~name:"apply-delta" ~args:[ 256; 1024 ] (fun n ->
          let before, touched, removed, after = delta_fixture n in
          Staged.stage (fun () ->
              ignore (Fg_graph.Csr.apply_delta before ~touched ~removed after)));
    ]

let stretch_parallel =
  Test.make_indexed ~name:"stretch.parallel" ~args:[ 1; 2; 4 ] (fun domains ->
      let fg = healed_fixture 256 in
      let graph = Fg_core.Forgiving_graph.graph fg in
      let gp = Fg_core.Forgiving_graph.gprime fg in
      let nodes = Fg_core.Forgiving_graph.live_nodes fg in
      (* The first multi-domain run spawns the persistent pool; every later
         iteration reuses it, so the fitted slope measures pool reuse. The
         suite runs each top-level group through its own [Benchmark.all]
         and calls [Parallel.shutdown] in between, so the pool spawned here
         never parks behind another group's allocation-heavy runs (parked
         workers tax every stop-the-world minor GC by 20-40%). *)
      Staged.stage (fun () ->
          ignore (Fg_metrics.Stretch.exact ~domains ~graph ~reference:gp nodes)))

(* ---- PR 7: read-path kernels ---- *)

(* Direction-optimizing BFS vs the plain top-down kernel, single source.
   Two fixtures: a healed ER graph (bounded degree — the conservative
   alpha = 2 default keeps the kernel at TD speed or slightly better)
   and a BA graph (heavy tail — the dense middle levels are where
   bottom-up wins outright). *)
let bfs_direction_opt =
  let staged_er n =
    let fg = healed_fixture n in
    let csr = Fg_graph.Csr.of_adjacency (Fg_core.Forgiving_graph.graph fg) in
    let src = List.hd (Fg_core.Forgiving_graph.live_nodes fg) in
    (csr, Option.get (Fg_graph.Csr.index csr src))
  in
  let staged_ba n =
    let rng = Fg_graph.Rng.create 7 in
    let csr =
      Fg_graph.Csr.of_adjacency (Fg_graph.Generators.barabasi_albert rng n 3)
    in
    (csr, 0)
  in
  let top_down name staged args =
    Test.make_indexed ~name ~args (fun n ->
        let csr, src = staged n in
        let s = Fg_graph.Csr.scratch csr in
        Staged.stage (fun () -> ignore (Fg_graph.Csr.bfs csr s src)))
  and dirop name staged args =
    Test.make_indexed ~name ~args (fun n ->
        let csr, src = staged n in
        let s = Fg_graph.Bfs_kernel.create csr in
        Staged.stage (fun () -> ignore (Fg_graph.Bfs_kernel.bfs csr s src)))
  in
  Test.make_grouped ~name:"bfs.direction-opt"
    [
      top_down "top-down" staged_er [ 1024; 16384 ];
      dirop "dirop" staged_er [ 1024; 16384 ];
      top_down "top-down-ba" staged_ba [ 16384 ];
      dirop "dirop-ba" staged_ba [ 16384 ];
    ]

(* One 63-source batched sweep vs 63 repeated single-source runs: the
   amortization the stretch pipeline now rides on. Sources are spread
   across the dense index range. *)
let bfs_msbfs =
  let staged_srcs n =
    let fg = healed_fixture n in
    let csr = Fg_graph.Csr.of_adjacency (Fg_core.Forgiving_graph.graph fg) in
    let k = Fg_graph.Bfs_kernel.word_bits in
    let srcs =
      Array.init k (fun i -> i * Fg_graph.Csr.num_nodes csr / k)
    in
    (csr, srcs)
  in
  Test.make_grouped ~name:"bfs.msbfs-vs-repeated"
    [
      Test.make_indexed ~name:"repeated" ~args:[ 4096 ] (fun n ->
          let csr, srcs = staged_srcs n in
          let s = Fg_graph.Csr.scratch csr in
          Staged.stage (fun () ->
              Array.iter (fun src -> ignore (Fg_graph.Csr.bfs csr s src)) srcs));
      Test.make_indexed ~name:"msbfs" ~args:[ 4096 ] (fun n ->
          let csr, srcs = staged_srcs n in
          let ms = Fg_graph.Bfs_kernel.ms_create () in
          Staged.stage (fun () ->
              Fg_graph.Bfs_kernel.ms_run csr ms ~sources:srcs ~off:0
                ~len:(Array.length srcs)));
    ]

(* Snapshot construction at read-path scale: the off-heap rows make this
   a straight bandwidth test (no GC component to the slope). *)
let csr_bigarray_build =
  Test.make_indexed ~name:"csr.bigarray-build" ~args:[ 4096; 32768 ] (fun n ->
      let fg = healed_fixture n in
      let graph = Fg_core.Forgiving_graph.graph fg in
      Staged.stage (fun () -> ignore (Fg_graph.Csr.of_adjacency graph)))

(* ---- E4: metrics ---- *)

let stretch_exact =
  Test.make_indexed ~name:"metrics.stretch-exact" ~args:[ 64; 128 ] (fun n ->
      let rng = Fg_graph.Rng.create 7 in
      let g = Fg_graph.Generators.erdos_renyi rng n (4.0 /. float_of_int n) in
      let fg = Fg_core.Forgiving_graph.of_graph g in
      for v = 0 to (n / 4) - 1 do
        Fg_core.Forgiving_graph.delete fg v
      done;
      let graph = Fg_core.Forgiving_graph.graph fg in
      let gp = Fg_core.Forgiving_graph.gprime fg in
      let nodes = Fg_core.Forgiving_graph.live_nodes fg in
      Staged.stage (fun () ->
          ignore (Fg_metrics.Stretch.exact ~graph ~reference:gp nodes)))

(* ---- E7/E10: healer comparison ---- *)

let healer_compare =
  Test.make_grouped ~name:"healer.er128-40pct"
    (List.map
       (fun name ->
         Test.make ~name
           (Staged.stage (fun () ->
                let rng = Fg_graph.Rng.create 42 in
                let g = Fg_graph.Generators.erdos_renyi rng 128 (4.0 /. 128.0) in
                let h = Fg_baselines.Registry.by_name name g in
                ignore
                  (Fg_adversary.Churn.delete_fraction rng h ~fraction:0.4
                     ~del:Fg_adversary.Adversary.Max_degree))))
       [ "fg"; "ft"; "cycle"; "clique"; "none" ])

(* ---- PR 6: telemetry overhead ---- *)

(* The same heal loop with telemetry off vs on (recording flag set, so
   every Profile stamp takes its clock reads and Hdr records, and the
   counter/sample sites allocate). The [off] case is the one the
   regression gate watches: it must stay within noise of the plain
   [heal.er-50pct] numbers, i.e. the disabled path costs branches only.
   The [on] case resets the registry each run so sample lists can't grow
   across iterations and distort the slope. *)
let obs_overhead =
  let heal_loop n () =
    let rng = Fg_graph.Rng.create 42 in
    let g = Fg_graph.Generators.erdos_renyi rng n (4.0 /. float_of_int n) in
    let fg = Fg_core.Forgiving_graph.of_graph g in
    for v = 0 to (n / 2) - 1 do
      Fg_core.Forgiving_graph.delete fg v
    done
  in
  Test.make_grouped ~name:"obs.overhead"
    [
      Test.make_indexed ~name:"heal-off" ~args:[ 256 ] (fun n ->
          Staged.stage (heal_loop n));
      Test.make_indexed ~name:"heal-on" ~args:[ 256 ] (fun n ->
          Staged.stage (fun () ->
              Fg_obs.Metrics.set_recording true;
              Fun.protect
                ~finally:(fun () ->
                  Fg_obs.Metrics.set_recording false;
                  Fg_obs.Metrics.reset Fg_obs.Metrics.global)
                (heal_loop n)));
    ]

(* ---- E9: cascade ---- *)

let cascade =
  Test.make ~name:"cascade.ba100-fg"
    (Staged.stage (fun () ->
         let rng = Fg_graph.Rng.create 7 in
         let g = Fg_graph.Generators.barabasi_albert rng 100 2 in
         let attack = Fg_baselines.Cascade.top_degree_attack g 3 in
         ignore
           (Fg_baselines.Cascade.run
              { Fg_baselines.Cascade.tolerance = 0.5; max_waves = 20 }
              ~heal:Fg_baselines.Cascade.Forgiving g ~attack)))

(* Top-level groups, each run through its own [Benchmark.all] with an
   explicit [Parallel.shutdown] in between: a group that spawns the domain
   pool (stretch.parallel, or any metric bench once [--domains] defaults
   change) cannot tax the stop-the-world minor GCs of the groups after it,
   so group order no longer matters. *)
let groups =
  [
    haft_tests;
    [ heal_star; heal_er_sequence ];
    [ sim_star; dist_star; will_tree_star ];
    [ stretch_exact ];
    [ csr_build; csr_bigarray_build; csr_apply_delta ];
    [ bfs_csr_vs_tbl; bfs_direction_opt; bfs_msbfs ];
    [ healer_compare ];
    [ obs_overhead ];
    [ cascade ];
    [ stretch_parallel ];
  ]

let benchmark ~quota () =
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~stabilize:false () in
  let raw = Hashtbl.create 128 in
  List.iter
    (fun tests ->
      let group_raw =
        Benchmark.all cfg instances (Test.make_grouped ~name:"forgiving-graph" tests)
      in
      Hashtbl.iter (Hashtbl.replace raw) group_raw;
      Fg_graph.Parallel.shutdown ())
    groups;
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.map (fun instance -> Analyze.all ols instance raw) instances

(* ---- one-shot scale measurement (--stretch-scale N) ----

   Exact stretch on an N-node healed ER graph, batched ms-BFS kernel vs
   the retained per-source sweep kernel, at equal domain count. Too big
   for bechamel quotas — each side runs once, wall-clocked, and the two
   rows join the JSON run so the speedup is part of the recorded history. *)
let stretch_scale ~n ~domains =
  Printf.printf "\nstretch-scale: n=%d, domains=%d (one shot per kernel)\n%!" n domains;
  let rng = Fg_graph.Rng.create 11 in
  let g = Fg_graph.Generators.erdos_renyi rng n (4.0 /. float_of_int n) in
  let fg = Fg_core.Forgiving_graph.of_graph g in
  for v = 0 to (n / 8) - 1 do
    Fg_core.Forgiving_graph.delete fg v
  done;
  let graph = Fg_core.Forgiving_graph.graph fg in
  let gp = Fg_core.Forgiving_graph.gprime fg in
  let nodes = Fg_core.Forgiving_graph.live_nodes fg in
  let graph_csr = Fg_graph.Csr.of_adjacency graph in
  let reference_csr = Fg_graph.Csr.of_adjacency gp in
  let time name f =
    let w0 = Gc.minor_words () in
    let t0 = Fg_obs.Trace.wall_clock () in
    let r = f () in
    let ns = (Fg_obs.Trace.wall_clock () -. t0) *. 1e9 in
    let words = Gc.minor_words () -. w0 in
    Printf.printf "%-42s  %14.1f  %14.1f\n%!" name ns words;
    (r, (name, ns, words))
  in
  let r_ms, row_ms =
    time
      (Printf.sprintf "forgiving-graph/stretch.exact-scale/msbfs:%d" n)
      (fun () ->
        Fg_metrics.Stretch.exact ~domains ~graph_csr ~reference_csr ~graph
          ~reference:gp nodes)
  in
  let r_sw, row_sw =
    time
      (Printf.sprintf "forgiving-graph/stretch.exact-scale/sweep:%d" n)
      (fun () ->
        Fg_metrics.Stretch.exact_sweep ~domains ~graph_csr ~reference_csr ~graph
          ~reference:gp nodes)
  in
  Fg_graph.Parallel.shutdown ();
  let (_, ms_ns, _) = row_ms and (_, sw_ns, _) = row_sw in
  let show r = Format.asprintf "%a" Fg_metrics.Stretch.pp_report r in
  if r_ms <> r_sw then
    Printf.printf "WARNING: kernels disagree: msbfs %s / sweep %s\n%!" (show r_ms)
      (show r_sw)
  else Printf.printf "kernels agree: %s\n%!" (show r_ms);
  if ms_ns > 0.0 then
    Printf.printf "stretch-exact msbfs speedup over per-source sweep: %.2fx\n%!"
      (sw_ns /. ms_ns);
  [ row_ms; row_sw ]

(* ---- one-shot serving-tier measurement (--serve-bench N) ----

   QPS and tail latency of reader domains querying pinned snapshots while
   the writer deletes at a fixed rate — the paper's repair-vs-usage
   concurrency as recorded perf rows. Closed-loop and wall-clocked rather
   than bechamel-fitted: the interesting numbers are the latency
   quantiles under sustained churn. All three rows are nanoseconds, so
   check_regress's bigger-is-worse direction applies: [ns-per-query] is
   inverse throughput (1e9 / QPS), [p50]/[p99] are the overall query
   latency quantiles. *)
let serve_bench_scale ~n =
  Printf.printf "\nserve-bench: n=%d, 1s of load under 50 deletions/s\n%!" n;
  let rng = Fg_graph.Rng.create 17 in
  let g = Fg_graph.Generators.erdos_renyi rng n (4.0 /. float_of_int n) in
  let fg = Fg_core.Forgiving_graph.of_graph g in
  let cfg =
    {
      Fg_serve.Loadgen.readers = 2;
      duration = 1.0;
      churn_rate = 50.0;
      mix = Fg_serve.Loadgen.default_mix;
      sample_pairs = 4;
      min_live = max 2 (n / 4);
      seed = 17;
    }
  in
  let r = Fg_serve.Loadgen.run fg cfg in
  Fg_graph.Parallel.shutdown ();
  Format.printf "%a@." Fg_serve.Loadgen.pp_report r;
  let q = max 1 r.Fg_serve.Loadgen.queries in
  let row name v =
    let name = Printf.sprintf "forgiving-graph/serve.qps-under-churn/%s:%d" name n in
    Printf.printf "%-42s  %14.1f  %14.1f\n%!" name v 0.0;
    (name, v, 0.0)
  in
  [
    row "ns-per-query" (r.Fg_serve.Loadgen.wall_s *. 1e9 /. float_of_int q);
    row "p50" (float_of_int (Fg_obs.Hdr.p50 r.Fg_serve.Loadgen.overall));
    row "p99" (float_of_int (Fg_obs.Hdr.p99 r.Fg_serve.Loadgen.overall));
  ]

(* ---- one-shot sharded heal throughput (--shard-scale N[,N...]) ----

   The sharded round engine healing one fixed victim schedule at
   K in {1,2,4,8} shards over the same N-node BA graph (m = 2: average
   degree ~4 like the ER fixtures, but O(n) to generate — the pairwise
   ER sampler is O(n^2), prohibitive at the 1M-node point). The schedule is
   a shuffled prefix of the original node ids chunked into rounds —
   originals stay live until their own deletion, so every round's
   victims are valid regardless of what the heals created — and it is
   byte-identical across K, so each K's final graph must equal K=1's
   (the owner-ordered merge guarantee); the run aborts if it doesn't.
   Rows are ns per healed victim. On a single-core host the curve is
   flat; the per-victim cost still gates the coordination overhead. *)
let shard_scale ~n =
  let shard_counts = [ 1; 2; 4; 8 ] in
  let round = 64 in
  let goal = max 1 (n / 16) in
  Printf.printf
    "\nshard-scale: n=%d, %d victims in rounds of %d, shards in {1,2,4,8}\n%!"
    n goal round;
  let build () =
    let rng = Fg_graph.Rng.create 23 in
    Fg_graph.Generators.barabasi_albert rng n 2
  in
  let schedule =
    let vrng = Fg_graph.Rng.create 29 in
    let ids = Fg_graph.Rng.sample vrng goal (Array.init n (fun i -> i)) in
    let rec chunk i acc =
      if i >= goal then List.rev acc
      else
        let len = min round (goal - i) in
        chunk (i + len) (Array.to_list (Array.sub ids i len) :: acc)
    in
    chunk 0 []
  in
  let reference = ref None in
  List.map
    (fun k ->
      let eng = Fg_shard.Shard_engine.create ~shards:k (build ()) in
      let name =
        Printf.sprintf "forgiving-graph/shard.heal-throughput/k%d:%d" k n
      in
      let w0 = Gc.minor_words () in
      let t0 = Fg_obs.Trace.wall_clock () in
      List.iter (fun vs -> Fg_shard.Shard_engine.delete_round eng vs) schedule;
      let ns = (Fg_obs.Trace.wall_clock () -. t0) *. 1e9 in
      let words = Gc.minor_words () -. w0 in
      let per_victim = ns /. float_of_int goal in
      Printf.printf "%-42s  %14.1f  %14.1f\n%!" name per_victim
        (words /. float_of_int goal);
      let fg = Fg_shard.Shard_engine.fg eng in
      let g = Fg_core.Forgiving_graph.graph fg
      and gp = Fg_core.Forgiving_graph.gprime fg in
      (match !reference with
      | None -> reference := Some (g, gp)
      | Some (rg, rgp) ->
        if not (Fg_graph.Adjacency.equal rg g && Fg_graph.Adjacency.equal rgp gp)
        then begin
          Printf.eprintf "shard-scale: K=%d final state differs from K=1\n" k;
          exit 1
        end);
      Fg_graph.Parallel.shutdown ();
      (name, per_victim, words /. float_of_int goal))
    shard_counts

(* Append this run to a JSON history file so perf numbers can be diffed
   across commits: {"runs":[{"label":...,"results":[{"name","ns","minor_words"}]}]}.
   An existing file is read back and extended; a fresh one is created. *)
let append_json_run ~file ~label rows =
  let module J = Fg_obs.Json in
  let previous =
    if Sys.file_exists file then begin
      let ic = open_in_bin file in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      match J.of_string text with
      | Ok json -> (
        match J.member "runs" json with Some (J.List rs) -> rs | _ -> [])
      | Error msg ->
        Printf.eprintf "warning: %s: %s — starting fresh\n" file msg;
        []
    end
    else []
  in
  let run =
    J.Obj
      [
        ("label", J.Str label);
        ( "results",
          J.List
            (List.map
               (fun (name, ns, minor) ->
                 J.Obj
                   [
                     ("name", J.Str name);
                     ("ns", J.Float ns);
                     ("minor_words", J.Float minor);
                   ])
               rows) );
      ]
  in
  let oc = open_out file in
  output_string oc (J.to_string (J.Obj [ ("runs", J.List (previous @ [ run ])) ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote run %S to %s (%d runs total)\n" label file
    (List.length previous + 1)

let () =
  let json_file = ref None
  and label = ref "run"
  and quota = ref 0.25
  and scale = ref None
  and serve_n = ref None
  and shard_ns = ref []
  and scale_domains = ref 1 in
  let rec parse = function
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse rest
    | "--label" :: l :: rest ->
      label := l;
      parse rest
    | "--quota" :: q :: rest -> (
      match float_of_string_opt q with
      | Some q when q > 0.0 ->
        quota := q;
        parse rest
      | _ ->
        Printf.eprintf "--quota requires a positive number of seconds\n";
        exit 2)
    | "--stretch-scale" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n > 0 ->
        scale := Some n;
        parse rest
      | _ ->
        Printf.eprintf "--stretch-scale requires a positive node count\n";
        exit 2)
    | "--domains" :: d :: rest -> (
      match int_of_string_opt d with
      | Some d when d > 0 ->
        scale_domains := d;
        parse rest
      | _ ->
        Printf.eprintf "--domains requires a positive count\n";
        exit 2)
    | "--serve-bench" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n > 0 ->
        serve_n := Some n;
        parse rest
      | _ ->
        Printf.eprintf "--serve-bench requires a positive node count\n";
        exit 2)
    | "--shard-scale" :: ns :: rest -> (
      let parts = String.split_on_char ',' ns in
      let parsed = List.filter_map int_of_string_opt parts in
      match parsed with
      | _ :: _
        when List.length parsed = List.length parts
             && List.for_all (fun n -> n > 0) parsed ->
        shard_ns := parsed;
        parse rest
      | _ ->
        Printf.eprintf
          "--shard-scale requires comma-separated positive node counts\n";
        exit 2)
    | [ ("--json" | "--label" | "--quota" | "--stretch-scale" | "--serve-bench"
        | "--shard-scale" | "--domains") as flag ] ->
      Printf.eprintf "%s requires an argument\n" flag;
      exit 2
    | a :: _ ->
      Printf.eprintf
        "unknown argument %S (try --json FILE [--label NAME] [--quota SECONDS] \
         [--stretch-scale N [--domains D]] [--serve-bench N] \
         [--shard-scale N[,N...]])\n"
        a;
      exit 2
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let results = benchmark ~quota:!quota () in
  let clock = List.nth results 0 and minor = List.nth results 1 in
  let name_of h = Hashtbl.fold (fun k _ acc -> k :: acc) h [] in
  let names = List.sort_uniq compare (name_of clock) in
  Printf.printf "%-42s  %14s  %14s\n" "benchmark" "ns/run" "minor-w/run";
  Printf.printf "%s\n" (String.make 76 '-');
  let value h name =
    match Hashtbl.find_opt h name with
    | None -> nan
    | Some ols -> (
      match Analyze.OLS.estimates ols with Some [ v ] -> v | _ -> nan)
  in
  let rows =
    List.map (fun name -> (name, value clock name, value minor name)) names
  in
  List.iter
    (fun (name, ns, mw) -> Printf.printf "%-42s  %14.1f  %14.1f\n" name ns mw)
    rows;
  (* pooled-domain speedup over the serial stretch computation *)
  let stretch_ns d =
    let suffix = Printf.sprintf "stretch.parallel:%d" d in
    List.find_map
      (fun (name, ns, _) ->
        if String.length name >= String.length suffix
           && String.sub name (String.length name - String.length suffix)
                (String.length suffix)
              = suffix
        then Some ns
        else None)
      rows
  in
  (match (stretch_ns 1, stretch_ns 4) with
  | Some s1, Some s4 when s4 > 0.0 ->
    Printf.printf "\nstretch.parallel pool speedup (4 vs 1 domains): %.2fx\n" (s1 /. s4)
  | _ -> ());
  let rows =
    match !scale with
    | None -> rows
    | Some n -> rows @ stretch_scale ~n ~domains:!scale_domains
  in
  let rows =
    match !serve_n with None -> rows | Some n -> rows @ serve_bench_scale ~n
  in
  let rows =
    rows @ List.concat_map (fun n -> shard_scale ~n) !shard_ns
  in
  match !json_file with
  | None -> ()
  | Some file -> append_json_run ~file ~label:!label rows
