let to_edge_list g =
  let buf = Buffer.create 1024 in
  let sorted_nodes = List.sort compare (Adjacency.nodes g) in
  let emit_isolated v =
    if Adjacency.degree g v = 0 then Buffer.add_string buf (Printf.sprintf "node %d\n" v)
  in
  List.iter emit_isolated sorted_nodes;
  let sorted_edges = List.sort compare (Adjacency.edges g) in
  List.iter (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v)) sorted_edges;
  Buffer.contents buf

let of_edge_list text =
  let g = Adjacency.create () in
  let parse_line line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then ()
    else
      match String.split_on_char ' ' line with
      | [ "node"; v ] -> Adjacency.add_node g (int_of_string v)
      | [ u; v ] -> Adjacency.add_edge g (int_of_string u) (int_of_string v)
      | _ -> invalid_arg ("Graph_io.of_edge_list: bad line: " ^ line)
  in
  List.iter parse_line (String.split_on_char '\n' text);
  g

let to_dot ?(highlight = Node_id.Set.empty) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph G {\n  node [shape=circle];\n";
  let node v =
    if Node_id.Set.mem v highlight then
      Buffer.add_string buf (Printf.sprintf "  %d [style=filled, fillcolor=red];\n" v)
    else Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  in
  List.iter node (List.sort compare (Adjacency.nodes g));
  let edge (u, v) = Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v) in
  List.iter edge (List.sort compare (Adjacency.edges g));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
