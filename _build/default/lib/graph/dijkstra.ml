let run g ~weight src ~stop_at =
  let dist = Node_id.Tbl.create 64 in
  let heap = Binary_heap.create () in
  if Adjacency.mem_node g src then Binary_heap.push heap 0 src;
  let finished = ref false in
  while (not !finished) && not (Binary_heap.is_empty heap) do
    let d, v = Binary_heap.pop_min heap in
    if not (Node_id.Tbl.mem dist v) then begin
      Node_id.Tbl.replace dist v d;
      (match stop_at with
      | Some target when Node_id.equal v target -> finished := true
      | _ -> ());
      if not !finished then
        let relax u =
          if not (Node_id.Tbl.mem dist u) then begin
            let w = weight v u in
            if w <= 0 then invalid_arg "Dijkstra: weights must be positive";
            Binary_heap.push heap (d + w) u
          end
        in
        Adjacency.iter_neighbors relax g v
    end
  done;
  dist

let distances g ~weight src = run g ~weight src ~stop_at:None

let distance g ~weight src dst =
  let dist = run g ~weight src ~stop_at:(Some dst) in
  Node_id.Tbl.find_opt dist dst
