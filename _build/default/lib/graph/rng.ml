type t = Random.State.t

let create seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5bd1e995 |]

let split t =
  let a = Random.State.bits t and b = Random.State.bits t in
  Random.State.make [| a; b; a lxor (b lsl 7) |]

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Random.State.int t bound

let float t bound = Random.State.float t bound
let bool t = Random.State.bool t

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_array t xs =
  if Array.length xs = 0 then invalid_arg "Rng.pick_array: empty array";
  xs.(int t (Array.length xs))

let shuffle t xs =
  let a = Array.copy xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let sample t k xs =
  let n = Array.length xs in
  if k >= n then shuffle t xs
  else begin
    let a = shuffle t xs in
    Array.sub a 0 k
  end
