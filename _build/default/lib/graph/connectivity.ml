let components g =
  let seen = Node_id.Tbl.create 64 in
  let comp_of src =
    let acc = ref [] in
    let q = Queue.create () in
    Node_id.Tbl.replace seen src ();
    Queue.add src q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      acc := v :: !acc;
      let visit u =
        if not (Node_id.Tbl.mem seen u) then begin
          Node_id.Tbl.replace seen u ();
          Queue.add u q
        end
      in
      Adjacency.iter_neighbors visit g v
    done;
    !acc
  in
  Adjacency.fold_nodes
    (fun v acc -> if Node_id.Tbl.mem seen v then acc else comp_of v :: acc)
    g []

let num_components g = List.length (components g)
let is_connected g = num_components g <= 1

let component_of g v =
  if not (Adjacency.mem_node g v) then []
  else
    let dist = Bfs.distances g v in
    Node_id.Tbl.fold (fun u _ acc -> u :: acc) dist []

let largest_component_size g =
  List.fold_left (fun m c -> max m (List.length c)) 0 (components g)

(* Iterative Tarjan low-link computation shared by articulation points and
   bridges. The explicit stack holds (node, parent, neighbor list still to
   process) frames so deep graphs cannot overflow the OCaml stack. *)
let lowlink_scan g ~on_articulation ~on_bridge =
  let disc = Node_id.Tbl.create 64 in
  let low = Node_id.Tbl.create 64 in
  let timer = ref 0 in
  let start root =
    let root_children = ref 0 in
    let stack = ref [ (root, -1, Adjacency.neighbors g root) ] in
    !timer |> Node_id.Tbl.replace disc root;
    !timer |> Node_id.Tbl.replace low root;
    incr timer;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | (v, parent, pending) :: rest -> (
        match pending with
        | [] ->
          stack := rest;
          (match rest with
          | (p, _, _) :: _ ->
            let lp = Node_id.Tbl.find low p and lv = Node_id.Tbl.find low v in
            if lv < lp then Node_id.Tbl.replace low p lv;
            if Node_id.equal p root then incr root_children
            else begin
              if lv >= Node_id.Tbl.find disc p then on_articulation p;
              if lv > Node_id.Tbl.find disc p then on_bridge p v
            end;
            if Node_id.equal p root && lv > Node_id.Tbl.find disc root then
              on_bridge root v
          | [] -> ())
        | u :: pending' ->
          stack := (v, parent, pending') :: rest;
          if Node_id.equal u parent then ()
          else if Node_id.Tbl.mem disc u then begin
            let du = Node_id.Tbl.find disc u in
            if du < Node_id.Tbl.find low v then Node_id.Tbl.replace low v du
          end
          else begin
            Node_id.Tbl.replace disc u !timer;
            Node_id.Tbl.replace low u !timer;
            incr timer;
            stack := (u, v, Adjacency.neighbors g u) :: !stack
          end)
    done;
    if !root_children > 1 then on_articulation root
  in
  Adjacency.iter_nodes (fun v -> if not (Node_id.Tbl.mem disc v) then start v) g

let articulation_points g =
  let points = ref Node_id.Set.empty in
  lowlink_scan g
    ~on_articulation:(fun v -> points := Node_id.Set.add v !points)
    ~on_bridge:(fun _ _ -> ());
  !points

let bridges g =
  let acc = ref [] in
  lowlink_scan g
    ~on_articulation:(fun _ -> ())
    ~on_bridge:(fun u v -> acc := (min u v, max u v) :: !acc);
  !acc
