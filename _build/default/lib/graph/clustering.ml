let edges_among g vs =
  let arr = Array.of_list vs in
  let count = ref 0 in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Adjacency.mem_edge g arr.(i) arr.(j) then incr count
    done
  done;
  !count

let local_triangles g v = edges_among g (Adjacency.neighbors g v)

let triangles g =
  (* each triangle counted at every corner *)
  Adjacency.fold_nodes (fun v acc -> acc + local_triangles g v) g 0 / 3

let local_coefficient g v =
  let d = Adjacency.degree g v in
  if d < 2 then 0.
  else
    2. *. float_of_int (local_triangles g v) /. float_of_int (d * (d - 1))

let average_coefficient g =
  let n = Adjacency.num_nodes g in
  if n = 0 then 0.
  else
    Adjacency.fold_nodes (fun v acc -> acc +. local_coefficient g v) g 0.
    /. float_of_int n

let global_coefficient g =
  let wedges =
    Adjacency.fold_nodes
      (fun v acc ->
        let d = Adjacency.degree g v in
        acc + (d * (d - 1) / 2))
      g 0
  in
  if wedges = 0 then 0.
  else 3. *. float_of_int (triangles g) /. float_of_int wedges
