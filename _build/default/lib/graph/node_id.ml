type t = int

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp = Format.pp_print_int
let to_string = string_of_int

module Set = Set.Make (Int)
module Map = Map.Make (Int)

module Tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)
