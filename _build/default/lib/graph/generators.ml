let with_nodes n =
  let g = Adjacency.create ~size:(max 16 n) () in
  for v = 0 to n - 1 do
    Adjacency.add_node g v
  done;
  g

let path n =
  let g = with_nodes n in
  for v = 0 to n - 2 do
    Adjacency.add_edge g v (v + 1)
  done;
  g

let ring n =
  let g = path n in
  if n >= 3 then Adjacency.add_edge g (n - 1) 0;
  g

let star n =
  let g = with_nodes n in
  for v = 1 to n - 1 do
    Adjacency.add_edge g 0 v
  done;
  g

let complete n =
  let g = with_nodes n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Adjacency.add_edge g u v
    done
  done;
  g

let grid rows cols =
  let g = with_nodes (rows * cols) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then Adjacency.add_edge g (id r c) (id r (c + 1));
      if r + 1 < rows then Adjacency.add_edge g (id r c) (id (r + 1) c)
    done
  done;
  g

let hypercube dim =
  let n = 1 lsl dim in
  let g = with_nodes n in
  for v = 0 to n - 1 do
    for b = 0 to dim - 1 do
      let u = v lxor (1 lsl b) in
      if u > v then Adjacency.add_edge g v u
    done
  done;
  g

let binary_tree n =
  let g = with_nodes n in
  for v = 1 to n - 1 do
    Adjacency.add_edge g v ((v - 1) / 2)
  done;
  g

let random_tree rng n =
  let g = with_nodes n in
  for v = 1 to n - 1 do
    Adjacency.add_edge g v (Rng.int rng v)
  done;
  g

let connect_components rng g =
  let comps = Connectivity.components g in
  let added = ref 0 in
  let rec link = function
    | a :: (b :: _ as rest) ->
      let u = Rng.pick rng a and v = Rng.pick rng b in
      Adjacency.add_edge g u v;
      incr added;
      link rest
    | [ _ ] | [] -> ()
  in
  link comps;
  !added

let erdos_renyi_raw rng n p =
  let g = with_nodes n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.float rng 1.0 < p then Adjacency.add_edge g u v
    done
  done;
  g

let erdos_renyi rng n p =
  let g = erdos_renyi_raw rng n p in
  ignore (connect_components rng g);
  g

let barabasi_albert rng n m =
  if n <= m || m < 1 then invalid_arg "barabasi_albert: need n > m >= 1";
  let g = with_nodes n in
  (* endpoint multiset: each node appears once per incident edge, so a
     uniform draw from it is degree-proportional. Stored in a growable
     array so draws stay O(1). *)
  let cap = ref 1024 in
  let endpoints = ref (Array.make !cap 0) in
  let len = ref 0 in
  let push u =
    if !len = !cap then begin
      let bigger = Array.make (2 * !cap) 0 in
      Array.blit !endpoints 0 bigger 0 !len;
      endpoints := bigger;
      cap := 2 * !cap
    end;
    (!endpoints).(!len) <- u;
    incr len
  in
  (* seed: clique on the first m+1 nodes *)
  for u = 0 to m do
    for v = u + 1 to m do
      Adjacency.add_edge g u v;
      push u;
      push v
    done
  done;
  for v = m + 1 to n - 1 do
    let chosen = ref Node_id.Set.empty in
    let attempts = ref 0 in
    while Node_id.Set.cardinal !chosen < m && !attempts < 50 * m do
      incr attempts;
      let u = (!endpoints).(Rng.int rng !len) in
      if u <> v then chosen := Node_id.Set.add u !chosen
    done;
    (* fallback for pathological rng streaks: fill with smallest ids *)
    let u0 = ref 0 in
    while Node_id.Set.cardinal !chosen < m do
      if !u0 <> v then chosen := Node_id.Set.add !u0 !chosen;
      incr u0
    done;
    let attach u =
      Adjacency.add_edge g v u;
      push v;
      push u
    in
    Node_id.Set.iter attach !chosen
  done;
  g

let watts_strogatz rng n k beta =
  if k mod 2 <> 0 || k >= n then invalid_arg "watts_strogatz: need even k < n";
  let g = with_nodes n in
  for v = 0 to n - 1 do
    for j = 1 to k / 2 do
      Adjacency.add_edge g v ((v + j) mod n)
    done
  done;
  let rewire (u, v) =
    if Rng.float rng 1.0 < beta then begin
      let w = Rng.int rng n in
      if w <> u && (not (Adjacency.mem_edge g u w)) && Adjacency.degree g v > 1
      then begin
        Adjacency.remove_edge g u v;
        Adjacency.add_edge g u w
      end
    end
  in
  List.iter rewire (Adjacency.edges g);
  ignore (connect_components rng g);
  g

let random_regular rng n d =
  if d >= n then invalid_arg "random_regular: need d < n";
  let g = with_nodes n in
  let stubs = Array.make (n * d) 0 in
  for v = 0 to n - 1 do
    for j = 0 to d - 1 do
      stubs.((v * d) + j) <- v
    done
  done;
  let shuffled = Rng.shuffle rng stubs in
  let len = Array.length shuffled in
  let i = ref 0 in
  while !i + 1 < len do
    let u = shuffled.(!i) and v = shuffled.(!i + 1) in
    if u <> v then Adjacency.add_edge g u v;
    i := !i + 2
  done;
  ignore (connect_components rng g);
  g

let caveman rng cliques size =
  let n = cliques * size in
  let g = with_nodes n in
  for c = 0 to cliques - 1 do
    let base = c * size in
    for u = base to base + size - 1 do
      for v = u + 1 to base + size - 1 do
        Adjacency.add_edge g u v
      done
    done
  done;
  for c = 0 to cliques - 1 do
    let next = (c + 1) mod cliques in
    if next <> c then begin
      let u = (c * size) + Rng.int rng size in
      let v = (next * size) + Rng.int rng size in
      if u <> v then Adjacency.add_edge g u v
    end
  done;
  ignore (connect_components rng g);
  g

let names =
  [ "ring"; "path"; "star"; "complete"; "grid"; "hypercube"; "tree"; "rtree";
    "er"; "ba"; "ws"; "regular"; "caveman" ]

let by_name name rng n =
  match name with
  | "ring" -> ring n
  | "path" -> path n
  | "star" -> star n
  | "complete" -> complete n
  | "grid" ->
    let side = max 2 (int_of_float (sqrt (float_of_int n))) in
    grid side side
  | "hypercube" ->
    let dim = max 1 (int_of_float (Float.round (log (float_of_int n) /. log 2.))) in
    hypercube dim
  | "tree" -> binary_tree n
  | "rtree" -> random_tree rng n
  | "er" ->
    let p = 4.0 /. float_of_int (max 2 n) in
    erdos_renyi rng n p
  | "ba" -> barabasi_albert rng n (min 3 (max 1 (n - 1)))
  | "ws" -> watts_strogatz rng n (min 4 (max 2 (n / 2 * 2 - 2))) 0.1
  | "regular" -> random_regular rng n (min 4 (n - 1))
  | "caveman" ->
    let size = 6 in
    caveman rng (max 2 (n / size)) size
  | _ -> raise Not_found
