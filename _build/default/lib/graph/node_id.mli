(** Node identifiers.

    A node id is a small non-negative integer chosen by the network (or the
    experiment harness) when the node is inserted. Ids are never reused: a
    deleted node's id stays retired, which is what lets the self-healing
    layer keep talking about edges of the insert-only graph [G'] whose
    endpoints are dead. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
