(** Graph family generators.

    These provide the initial topologies [G_0] for the attack experiments.
    All generators number nodes [0 .. n-1] and are deterministic given the
    {!Rng.t}. Random families are post-processed to be connected (extra
    chain edges between components) so the self-healing invariants are
    well-defined from the start; the raw variants are exposed where the
    distinction matters. *)

(** [ring n] is the cycle C_n ([n >= 3]); [n <= 2] degenerates to a path. *)
val ring : int -> Adjacency.t

(** [path n] is the path P_n. *)
val path : int -> Adjacency.t

(** [star n] is K_{1,n-1} with centre [0] — the lower-bound topology of
    Theorem 2. *)
val star : int -> Adjacency.t

(** [complete n] is K_n. *)
val complete : int -> Adjacency.t

(** [grid rows cols] is the rows x cols lattice. *)
val grid : int -> int -> Adjacency.t

(** [hypercube dim] has [2^dim] nodes; ids differ in one bit iff adjacent. *)
val hypercube : int -> Adjacency.t

(** [binary_tree n] is the complete-binary-tree-shaped tree on n nodes
    (heap indexing: node i has children 2i+1, 2i+2). *)
val binary_tree : int -> Adjacency.t

(** [random_tree rng n] is a uniform random recursive tree: node i attaches
    to a uniform earlier node. *)
val random_tree : Rng.t -> int -> Adjacency.t

(** [erdos_renyi rng n p] includes each possible edge independently with
    probability [p], then connects stray components with chain edges. *)
val erdos_renyi : Rng.t -> int -> float -> Adjacency.t

(** [erdos_renyi_raw rng n p] is the same without the connectivity patch. *)
val erdos_renyi_raw : Rng.t -> int -> float -> Adjacency.t

(** [barabasi_albert rng n m] grows a preferential-attachment (power-law)
    graph: each new node attaches to [m] distinct existing nodes chosen
    proportionally to degree. Requires [n > m >= 1]. *)
val barabasi_albert : Rng.t -> int -> int -> Adjacency.t

(** [watts_strogatz rng n k beta] is the small-world model: ring lattice
    with [k] nearest neighbours per side... each edge rewired with
    probability [beta]. Requires even [k], [n > k]. *)
val watts_strogatz : Rng.t -> int -> int -> float -> Adjacency.t

(** [random_regular rng n d] samples a d-regular-ish graph by pairing stubs,
    discarding loops/duplicates (so a few nodes may fall short of [d]);
    patched to be connected. *)
val random_regular : Rng.t -> int -> int -> Adjacency.t

(** [caveman rng cliques size] is [cliques] cliques of [size] nodes joined
    in a ring by single edges — high clustering, long paths. *)
val caveman : Rng.t -> int -> int -> Adjacency.t

(** [connect_components rng g] mutates [g], adding one random edge between
    consecutive components until connected; returns number of edges added. *)
val connect_components : Rng.t -> Adjacency.t -> int

(** [by_name name] looks up a generator by its harness name
    (e.g. ["ring"], ["star"], ["er"], ["ba"], ["ws"], ["grid"], ["tree"],
    ["hypercube"], ["complete"], ["caveman"], ["regular"]). The returned
    function takes the RNG and target size. Raises [Not_found] for unknown
    names. *)
val by_name : string -> Rng.t -> int -> Adjacency.t

(** Names accepted by {!by_name}. *)
val names : string list
