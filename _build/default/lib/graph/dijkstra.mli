(** Single-source shortest paths with per-edge integer weights.

    The self-healing experiments are unweighted, but the harness uses
    weighted distances for the "edges that span a small distance" variant
    discussed in the paper's conclusion (locality-constrained healing). *)

(** [distances g ~weight src] maps reachable nodes to weighted distance.
    [weight u v] must be positive; raises [Invalid_argument] otherwise. *)
val distances :
  Adjacency.t -> weight:(Node_id.t -> Node_id.t -> int) -> Node_id.t -> int Node_id.Tbl.t

(** [distance g ~weight src dst] early-exits at [dst]. *)
val distance :
  Adjacency.t ->
  weight:(Node_id.t -> Node_id.t -> int) ->
  Node_id.t ->
  Node_id.t ->
  int option
