(** Clustering coefficients and triangle counts.

    Used to characterise the experiment workload families (E0): clustering
    separates the small-world/caveman families from ER and BA, which
    matters when interpreting healing-edge spans (E11) and cascade
    behaviour (E9). *)

(** [triangles g] is the number of distinct triangles in [g]. *)
val triangles : Adjacency.t -> int

(** [local_coefficient g v] is [2T(v) / (deg(v)(deg(v)-1))] where [T(v)]
    counts edges among [v]'s neighbours; [0.] when [deg(v) < 2]. *)
val local_coefficient : Adjacency.t -> Node_id.t -> float

(** [average_coefficient g] is the mean local coefficient over all nodes
    (Watts–Strogatz definition); [0.] for the empty graph. *)
val average_coefficient : Adjacency.t -> float

(** [global_coefficient g] is [3 * triangles / open-and-closed wedges]
    (transitivity); [0.] when the graph has no wedge. *)
val global_coefficient : Adjacency.t -> float
