lib/graph/persistent_graph.ml: Adjacency List Node_id Option
