lib/graph/bfs.ml: Adjacency List Node_id Queue
