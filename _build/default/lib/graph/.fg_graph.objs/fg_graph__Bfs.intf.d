lib/graph/bfs.mli: Adjacency Node_id
