lib/graph/persistent_graph.mli: Adjacency Node_id
