lib/graph/graph_io.ml: Adjacency Buffer Fun List Node_id Printf String
