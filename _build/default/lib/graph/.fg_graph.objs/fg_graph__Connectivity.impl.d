lib/graph/connectivity.ml: Adjacency Bfs List Node_id Queue
