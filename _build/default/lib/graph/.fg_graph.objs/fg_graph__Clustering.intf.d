lib/graph/clustering.mli: Adjacency Node_id
