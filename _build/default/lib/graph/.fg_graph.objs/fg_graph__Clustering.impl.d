lib/graph/clustering.ml: Adjacency Array
