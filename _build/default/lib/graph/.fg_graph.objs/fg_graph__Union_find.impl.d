lib/graph/union_find.ml: Node_id
