lib/graph/adjacency.mli: Format Node_id
