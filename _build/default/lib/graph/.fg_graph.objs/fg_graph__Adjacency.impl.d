lib/graph/adjacency.ml: Format List Node_id
