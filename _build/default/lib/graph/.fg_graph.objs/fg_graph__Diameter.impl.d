lib/graph/diameter.ml: Adjacency Bfs Node_id Option
