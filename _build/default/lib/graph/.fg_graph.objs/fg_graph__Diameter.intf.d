lib/graph/diameter.mli: Adjacency
