lib/graph/generators.mli: Adjacency Rng
