lib/graph/dijkstra.mli: Adjacency Node_id
