lib/graph/connectivity.mli: Adjacency Node_id
