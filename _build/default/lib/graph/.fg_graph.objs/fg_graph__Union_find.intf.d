lib/graph/union_find.mli: Node_id
