lib/graph/dijkstra.ml: Adjacency Binary_heap Node_id
