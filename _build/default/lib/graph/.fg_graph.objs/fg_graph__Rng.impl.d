lib/graph/rng.ml: Array List Random
