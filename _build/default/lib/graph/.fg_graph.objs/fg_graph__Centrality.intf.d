lib/graph/centrality.mli: Adjacency Node_id
