lib/graph/graph_io.mli: Adjacency Node_id
