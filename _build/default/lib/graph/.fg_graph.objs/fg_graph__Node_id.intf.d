lib/graph/node_id.mli: Format Hashtbl Map Set
