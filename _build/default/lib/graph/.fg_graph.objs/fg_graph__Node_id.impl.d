lib/graph/node_id.ml: Format Hashtbl Int Map Set
