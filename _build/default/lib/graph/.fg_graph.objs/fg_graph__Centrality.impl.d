lib/graph/centrality.ml: Adjacency List Node_id Option Queue
