lib/graph/generators.ml: Adjacency Array Connectivity Float List Node_id Rng
