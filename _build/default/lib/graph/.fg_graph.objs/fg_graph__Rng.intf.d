lib/graph/rng.mli:
