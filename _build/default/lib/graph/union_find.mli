(** Disjoint-set forest with path compression and union by rank, keyed by
    {!Node_id.t}. Elements are created lazily on first use. *)

type t

val create : unit -> t

(** [find t v] is the canonical representative of [v]'s set. *)
val find : t -> Node_id.t -> Node_id.t

(** [union t u v] merges the sets of [u] and [v]; returns [true] if they
    were previously distinct. *)
val union : t -> Node_id.t -> Node_id.t -> bool

val same : t -> Node_id.t -> Node_id.t -> bool

(** [count_sets t] is the number of distinct sets among elements seen. *)
val count_sets : t -> int
