type t = Node_id.Set.t Node_id.Map.t

let empty = Node_id.Map.empty
let mem_node v t = Node_id.Map.mem v t

let add_node v t =
  if mem_node v t then t else Node_id.Map.add v Node_id.Set.empty t

let neighbors v t =
  Option.value (Node_id.Map.find_opt v t) ~default:Node_id.Set.empty

let add_edge u v t =
  if Node_id.equal u v then t
  else begin
    let t = add_node u (add_node v t) in
    let t = Node_id.Map.add u (Node_id.Set.add v (neighbors u t)) t in
    Node_id.Map.add v (Node_id.Set.add u (neighbors v t)) t
  end

let remove_edge u v t =
  let drop a b t =
    match Node_id.Map.find_opt a t with
    | None -> t
    | Some s -> Node_id.Map.add a (Node_id.Set.remove b s) t
  in
  drop u v (drop v u t)

let remove_node v t =
  match Node_id.Map.find_opt v t with
  | None -> t
  | Some nbrs ->
    let t = Node_id.Set.fold (fun u acc -> remove_edge u v acc) nbrs t in
    Node_id.Map.remove v t

let mem_edge u v t = Node_id.Set.mem v (neighbors u t)
let degree v t = Node_id.Set.cardinal (neighbors v t)
let num_nodes t = Node_id.Map.cardinal t

let num_edges t =
  Node_id.Map.fold (fun _ s acc -> acc + Node_id.Set.cardinal s) t 0 / 2

let nodes t = Node_id.Map.fold (fun v _ acc -> v :: acc) t []

let edges t =
  Node_id.Map.fold
    (fun u s acc ->
      Node_id.Set.fold (fun v acc -> if u < v then (u, v) :: acc else acc) s acc)
    t []

let fold_nodes f t init = Node_id.Map.fold (fun v _ acc -> f v acc) t init
let equal t1 t2 = Node_id.Map.equal Node_id.Set.equal t1 t2

let of_adjacency g =
  let t = Adjacency.fold_nodes add_node g empty in
  List.fold_left (fun acc (u, v) -> add_edge u v acc) t (Adjacency.edges g)

let to_adjacency t =
  let g = Adjacency.create () in
  Node_id.Map.iter
    (fun v s ->
      Adjacency.add_node g v;
      Node_id.Set.iter (fun u -> Adjacency.add_edge g v u) s)
    t;
  g
