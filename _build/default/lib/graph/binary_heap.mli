(** Minimal array-backed binary min-heap of [(priority, value)] pairs.

    Used by Dijkstra and the greedy adversary. Duplicate inserts of the same
    value are allowed; stale entries are skipped by the caller (lazy
    deletion), which is simpler and empirically faster than decrease-key for
    the sparse graphs in this repository. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

(** [push h prio v] inserts [v] with priority [prio]. *)
val push : 'a t -> int -> 'a -> unit

(** [pop_min h] removes and returns the minimum-priority entry.
    Raises [Not_found] when empty. *)
val pop_min : 'a t -> int * 'a

(** [peek_min h] returns without removing. Raises [Not_found] when empty. *)
val peek_min : 'a t -> int * 'a
