(** Connectivity queries: components, articulation points, bridges.

    Articulation points matter for the adversary library: deleting a cut
    vertex is the most damaging single move against a non-healing network,
    so the "omniscient" attack strategies target them. *)

(** [components g] lists the connected components as node lists. *)
val components : Adjacency.t -> Node_id.t list list

(** [num_components g] avoids materialising the components. *)
val num_components : Adjacency.t -> int

(** [is_connected g] holds for the empty graph. *)
val is_connected : Adjacency.t -> bool

(** [component_of g v] is the component containing [v] ([\[\]] if absent). *)
val component_of : Adjacency.t -> Node_id.t -> Node_id.t list

(** [articulation_points g] are the vertices whose removal increases the
    number of connected components (Tarjan/Hopcroft low-link). *)
val articulation_points : Adjacency.t -> Node_id.Set.t

(** [bridges g] are the edges whose removal disconnects their component. *)
val bridges : Adjacency.t -> (Node_id.t * Node_id.t) list

(** [largest_component_size g] is [0] for the empty graph. *)
val largest_component_size : Adjacency.t -> int
