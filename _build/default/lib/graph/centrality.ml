(* Brandes 2001: one BFS per source accumulating pair dependencies. *)
let betweenness g =
  let bc = Node_id.Tbl.create 64 in
  Adjacency.iter_nodes (fun v -> Node_id.Tbl.replace bc v 0.) g;
  let source s =
    let dist = Node_id.Tbl.create 64 in
    let sigma = Node_id.Tbl.create 64 in
    let preds = Node_id.Tbl.create 64 in
    let order = ref [] in
    let q = Queue.create () in
    Node_id.Tbl.replace dist s 0;
    Node_id.Tbl.replace sigma s 1.;
    Queue.add s q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      order := v :: !order;
      let dv = Node_id.Tbl.find dist v in
      let sv = Node_id.Tbl.find sigma v in
      let visit w =
        (match Node_id.Tbl.find_opt dist w with
        | None ->
          Node_id.Tbl.replace dist w (dv + 1);
          Node_id.Tbl.replace sigma w 0.;
          Queue.add w q
        | Some _ -> ());
        if Node_id.Tbl.find dist w = dv + 1 then begin
          Node_id.Tbl.replace sigma w (Node_id.Tbl.find sigma w +. sv);
          let ps = Option.value (Node_id.Tbl.find_opt preds w) ~default:[] in
          Node_id.Tbl.replace preds w (v :: ps)
        end
      in
      Adjacency.iter_neighbors visit g v
    done;
    let delta = Node_id.Tbl.create 64 in
    let dependency w =
      let dw = Option.value (Node_id.Tbl.find_opt delta w) ~default:0. in
      let sw = Node_id.Tbl.find sigma w in
      let credit v =
        let sv = Node_id.Tbl.find sigma v in
        let dv = Option.value (Node_id.Tbl.find_opt delta v) ~default:0. in
        Node_id.Tbl.replace delta v (dv +. (sv /. sw *. (1. +. dw)))
      in
      List.iter credit (Option.value (Node_id.Tbl.find_opt preds w) ~default:[]);
      if not (Node_id.equal w s) then
        Node_id.Tbl.replace bc w (Node_id.Tbl.find bc w +. dw)
    in
    List.iter dependency !order
  in
  Adjacency.iter_nodes source g;
  (* each unordered pair was counted twice (once per endpoint as source) *)
  Node_id.Tbl.iter (fun v x -> Node_id.Tbl.replace bc v (x /. 2.)) bc;
  bc

let degree_centrality g =
  let t = Node_id.Tbl.create 64 in
  Adjacency.iter_nodes (fun v -> Node_id.Tbl.replace t v (Adjacency.degree g v)) g;
  t

let top_k tbl k ~compare:cmp =
  let all = Node_id.Tbl.fold (fun v x acc -> (v, x) :: acc) tbl [] in
  let sorted =
    List.sort
      (fun (v1, x1) (v2, x2) ->
        let c = cmp x2 x1 in
        if c <> 0 then c else Node_id.compare v1 v2)
      all
  in
  List.filteri (fun i _ -> i < k) sorted |> List.map fst
