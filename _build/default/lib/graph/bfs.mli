(** Breadth-first search over {!Adjacency.t} graphs.

    Distances are hop counts; unreachable nodes are simply absent from the
    returned table, so callers can distinguish "disconnected" from "far". *)

(** [distances g src] maps every node reachable from [src] (including [src]
    itself, at distance 0) to its hop distance. *)
val distances : Adjacency.t -> Node_id.t -> int Node_id.Tbl.t

(** [distance g src dst] is [Some d] or [None] when [dst] is unreachable.
    Early-exits once [dst] is settled. *)
val distance : Adjacency.t -> Node_id.t -> Node_id.t -> int option

(** [shortest_path g src dst] is the node sequence from [src] to [dst]
    inclusive, or [None]. *)
val shortest_path : Adjacency.t -> Node_id.t -> Node_id.t -> Node_id.t list option

(** [multi_source_distances g srcs] is BFS from a set of sources: distance
    to the nearest source. *)
val multi_source_distances : Adjacency.t -> Node_id.t list -> int Node_id.Tbl.t

(** [eccentricity g v] is the greatest distance from [v] to any node
    reachable from [v]; [0] for an isolated node. *)
val eccentricity : Adjacency.t -> Node_id.t -> int

(** [farthest g v] is [(u, d)] with [u] at maximal distance [d] from [v]
    (ties broken by smallest id). *)
val farthest : Adjacency.t -> Node_id.t -> Node_id.t * int
