(** Deterministic pseudo-random source used by generators and adversaries.

    Every randomized component in this repository takes an explicit [Rng.t]
    so that experiments are reproducible from a single integer seed. The
    implementation is splittable: [split t] yields an independent stream,
    which lets parallel experiment arms stay deterministic regardless of
    evaluation order. *)

type t

(** [create seed] returns a fresh generator determined entirely by [seed]. *)
val create : int -> t

(** [split t] derives a new independent generator from [t], advancing [t]. *)
val split : t -> t

(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [pick t xs] selects a uniform element of [xs].
    Raises [Invalid_argument] on the empty list. *)
val pick : t -> 'a list -> 'a

(** [pick_array t xs] selects a uniform element of array [xs].
    Raises [Invalid_argument] on the empty array. *)
val pick_array : t -> 'a array -> 'a

(** [shuffle t xs] returns a fresh uniformly shuffled copy of [xs]. *)
val shuffle : t -> 'a array -> 'a array

(** [sample t k xs] draws [k] distinct positions from [xs] uniformly
    (reservoir sampling); returns all of [xs] shuffled if [k >= length]. *)
val sample : t -> int -> 'a array -> 'a array
