(** Immutable undirected simple graph.

    A functional counterpart to {!Adjacency}: every operation returns a new
    graph sharing structure with the old one. Used where snapshots matter —
    the experiment harness keeps timeline snapshots ({!Fg_harness}), and
    tests compare healing histories without defensive copying. Semantics
    match {!Adjacency}: no self-loops, no parallel edges. *)

type t

val empty : t
val add_node : Node_id.t -> t -> t
val remove_node : Node_id.t -> t -> t

(** [add_edge u v t] creates missing endpoints; ignores self-loops. *)
val add_edge : Node_id.t -> Node_id.t -> t -> t

val remove_edge : Node_id.t -> Node_id.t -> t -> t
val mem_node : Node_id.t -> t -> bool
val mem_edge : Node_id.t -> Node_id.t -> t -> bool
val neighbors : Node_id.t -> t -> Node_id.Set.t
val degree : Node_id.t -> t -> int
val num_nodes : t -> int
val num_edges : t -> int
val nodes : t -> Node_id.t list
val edges : t -> (Node_id.t * Node_id.t) list
val fold_nodes : (Node_id.t -> 'a -> 'a) -> t -> 'a -> 'a
val equal : t -> t -> bool

(** Conversions to/from the mutable representation. *)
val of_adjacency : Adjacency.t -> t

val to_adjacency : t -> Adjacency.t
