type t = {
  parent : Node_id.t Node_id.Tbl.t;
  rank : int Node_id.Tbl.t;
  mutable sets : int;
}

let create () = { parent = Node_id.Tbl.create 64; rank = Node_id.Tbl.create 64; sets = 0 }

let ensure t v =
  if not (Node_id.Tbl.mem t.parent v) then begin
    Node_id.Tbl.replace t.parent v v;
    Node_id.Tbl.replace t.rank v 0;
    t.sets <- t.sets + 1
  end

let rec find t v =
  ensure t v;
  let p = Node_id.Tbl.find t.parent v in
  if Node_id.equal p v then v
  else begin
    let root = find t p in
    Node_id.Tbl.replace t.parent v root;
    root
  end

let union t u v =
  let ru = find t u and rv = find t v in
  if Node_id.equal ru rv then false
  else begin
    let ku = Node_id.Tbl.find t.rank ru and kv = Node_id.Tbl.find t.rank rv in
    let small, big = if ku < kv then (ru, rv) else (rv, ru) in
    Node_id.Tbl.replace t.parent small big;
    if ku = kv then Node_id.Tbl.replace t.rank big (ku + 1);
    t.sets <- t.sets - 1;
    true
  end

let same t u v = Node_id.equal (find t u) (find t v)
let count_sets t = t.sets
