let exact g =
  Adjacency.fold_nodes (fun v acc -> max acc (Bfs.eccentricity g v)) g 0

let two_sweep g =
  match Adjacency.nodes g with
  | [] -> 0
  | v :: _ ->
    let u, _ = Bfs.farthest g v in
    snd (Bfs.farthest g u)

let radius g =
  let best =
    Adjacency.fold_nodes
      (fun v acc ->
        let e = Bfs.eccentricity g v in
        match acc with None -> Some e | Some r -> Some (min r e))
      g None
  in
  Option.value best ~default:0

let average_path_length g =
  let total = ref 0 and pairs = ref 0 in
  let visit v =
    let dist = Bfs.distances g v in
    Node_id.Tbl.iter
      (fun u d ->
        if not (Node_id.equal u v) then begin
          total := !total + d;
          incr pairs
        end)
      dist
  in
  Adjacency.iter_nodes visit g;
  if !pairs = 0 then 0. else float_of_int !total /. float_of_int !pairs
