(** Serialisation of graphs: edge lists and Graphviz DOT.

    Edge-list format: one "u v" pair per line, plus "node v" lines for
    isolated nodes, "#"-prefixed comments ignored. *)

val to_edge_list : Adjacency.t -> string
val of_edge_list : string -> Adjacency.t

(** [to_dot ?highlight g] renders an undirected DOT graph; nodes in
    [highlight] are filled red (used to visualise healed regions). *)
val to_dot : ?highlight:Node_id.Set.t -> Adjacency.t -> string

val write_file : string -> string -> unit
val read_file : string -> string
