open Fg_haft

type summary = { max_l : int; checked : int; failures : int }

let rec ints a b = if a > b then [] else a :: ints (a + 1) b

let binary_string l =
  let rec go l acc = if l = 0 then acc else go (l / 2) (string_of_int (l mod 2) ^ acc) in
  if l = 0 then "0" else go l ""

let check_one l =
  let t = Haft.of_list (ints 1 l) in
  let forest = Haft.strip t in
  let sizes = List.map Haft.leaf_count forest in
  let expected_sizes =
    List.filter (fun k -> l land k <> 0) (List.rev_map (fun i -> 1 lsl i) (ints 0 30))
  in
  let singles = Haft.merge (List.map (fun x -> Haft.Leaf x) (ints 1 l)) in
  Haft.is_haft t
  && Haft.height t = Haft.depth_bound l
  && sizes = expected_sizes
  && List.for_all Haft.is_complete forest
  && List.length forest = Haft.popcount l
  && Haft.equal_shape t singles
  && Haft.leaves t = ints 1 l

let run ?(verbose = true) ?(csv = false) ?(max_l = 4096) () =
  let failures = ref 0 in
  List.iter (fun l -> if not (check_one l) then incr failures) (ints 1 max_l);
  let table =
    Table.make [ "l"; "binary"; "depth"; "ceil(log2 l)"; "primary roots"; "popcount"; "ok" ]
  in
  let show l =
    let t = Haft.of_list (ints 1 l) in
    Table.add_row table
      [
        Table.cell_int l;
        binary_string l;
        Table.cell_int (Haft.height t);
        Table.cell_int (Haft.depth_bound l);
        Table.cell_int (List.length (Haft.strip t));
        Table.cell_int (Haft.popcount l);
        Table.cell_bool (check_one l);
      ]
  in
  List.iter show [ 1; 2; 3; 5; 7; 8; 15; 16; 21; 64; 100; 255; 256; 1000; 2048; 4095; 4096 ];
  if verbose then begin
    Table.print ~title:"E1 - Lemma 1: haft structure laws (spot rows of exhaustive check)" table;
    Printf.printf "checked l = 1..%d exhaustively: %d failures\n" max_l !failures
  end;
  if csv then ignore (Exp_common.write_csv ~name:"e1_haft_laws" table);
  { max_l; checked = max_l; failures = !failures }
