lib/harness/e9_cascade.mli:
