lib/harness/exp_common.ml: Fg_graph Filename Fun Sys Table
