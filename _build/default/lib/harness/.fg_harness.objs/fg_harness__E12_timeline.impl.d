lib/harness/e12_timeline.ml: Array Exp_common Fg_core Fg_graph Fg_metrics List Printf Table
