lib/harness/e3_degree.ml: Attack_sweep Exp_common Fg_adversary Fg_baselines Fg_metrics List Table
