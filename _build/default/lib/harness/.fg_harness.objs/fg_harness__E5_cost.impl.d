lib/harness/e5_cost.ml: Exp_common Fg_core Fg_graph Fg_sim List Table
