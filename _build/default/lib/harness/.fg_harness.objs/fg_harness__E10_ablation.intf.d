lib/harness/e10_ablation.mli:
