lib/harness/e10_ablation.ml: Attack_sweep Exp_common Fg_adversary Fg_baselines Fg_core Fg_graph Fg_metrics Fg_sim List Option Table
