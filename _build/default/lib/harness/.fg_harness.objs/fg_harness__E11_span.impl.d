lib/harness/e11_span.ml: Attack_sweep Exp_common Fg_adversary Fg_baselines Fg_graph Fg_metrics List Table
