lib/harness/e0_workloads.mli:
