lib/harness/e2_figures.ml: Buffer Fg_core Fg_graph Fg_haft Haft List Printf String
