lib/harness/e2_figures.mli:
