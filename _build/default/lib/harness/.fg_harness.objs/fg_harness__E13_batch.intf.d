lib/harness/e13_batch.mli:
