lib/harness/e6_lower_bound.ml: Exp_common Fg_core Fg_graph Fg_metrics List Table
