lib/harness/e14_dist_cost.ml: Exp_common Fg_core Fg_graph Fg_sim List Table
