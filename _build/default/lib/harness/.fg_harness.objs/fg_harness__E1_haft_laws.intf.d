lib/harness/e1_haft_laws.mli:
