lib/harness/e0_workloads.ml: Exp_common Fg_graph List Printf Table
