lib/harness/e11_span.mli:
