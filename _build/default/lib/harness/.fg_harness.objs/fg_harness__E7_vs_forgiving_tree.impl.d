lib/harness/e7_vs_forgiving_tree.ml: Attack_sweep Exp_common Fg_adversary Fg_baselines Fg_graph Fg_metrics List Table
