lib/harness/e13_batch.ml: Array Exp_common Fg_core Fg_graph Fg_metrics List Table
