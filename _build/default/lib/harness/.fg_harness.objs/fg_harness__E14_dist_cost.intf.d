lib/harness/e14_dist_cost.mli:
