lib/harness/exp_common.mli: Fg_graph Table
