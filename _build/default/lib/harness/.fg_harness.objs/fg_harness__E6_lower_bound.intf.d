lib/harness/e6_lower_bound.mli:
