lib/harness/e1_haft_laws.ml: Exp_common Fg_haft Haft List Printf Table
