lib/harness/e3_degree.mli:
