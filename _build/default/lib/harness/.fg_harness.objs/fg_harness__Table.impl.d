lib/harness/table.ml: Buffer List Option Printf String
