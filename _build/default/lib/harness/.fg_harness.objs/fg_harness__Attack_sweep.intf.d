lib/harness/attack_sweep.mli: Fg_adversary Fg_baselines Fg_metrics
