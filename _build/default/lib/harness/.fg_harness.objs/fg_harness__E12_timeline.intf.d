lib/harness/e12_timeline.mli:
