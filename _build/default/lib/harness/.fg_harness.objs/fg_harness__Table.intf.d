lib/harness/table.mli:
