lib/harness/e5_cost.mli:
