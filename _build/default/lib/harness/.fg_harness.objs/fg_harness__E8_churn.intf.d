lib/harness/e8_churn.mli:
