lib/harness/e8_churn.ml: Exp_common Fg_adversary Fg_baselines Fg_core Fg_graph Fg_metrics Hashtbl List Table
