lib/harness/attack_sweep.ml: Exp_common Fg_adversary Fg_baselines Fg_graph Fg_metrics List
