lib/harness/e7_vs_forgiving_tree.mli:
