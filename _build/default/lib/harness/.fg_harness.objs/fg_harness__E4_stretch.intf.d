lib/harness/e4_stretch.mli:
