lib/harness/e9_cascade.ml: Exp_common Fg_baselines Fg_graph List Printf Table
