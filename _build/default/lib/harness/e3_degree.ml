module Adversary = Fg_adversary.Adversary

type row = {
  family : string;
  adversary : string;
  n : int;
  deleted : int;
  max_ratio : float;
  mean_ratio : float;
  over_3x : int;
  over_4x : int;
}

type summary = { rows : row list; all_within_4x : bool }

let adversaries =
  [ Adversary.Random; Adversary.Max_degree; Adversary.Max_healing_degree; Adversary.Oldest ]

let run ?(verbose = true) ?(csv = false) ?(sizes = [ 64; 256; 1024 ]) () =
  let rows = ref [] in
  let do_cell family n adv =
    let h =
      Attack_sweep.run ~seed:Exp_common.default_seed ~family ~n ~del:adv ~fraction:0.5
        ~healer:"fg"
    in
    let live = h.Fg_baselines.Healer.live_nodes () in
    let report =
      Fg_metrics.Degree_metric.measure
        ~graph:(h.Fg_baselines.Healer.graph ())
        ~gprime:(h.Fg_baselines.Healer.gprime ())
        ~nodes:live
    in
    rows :=
      {
        family;
        adversary = Adversary.deletion_name adv;
        n;
        deleted = n - List.length live;
        max_ratio = report.Fg_metrics.Degree_metric.max_ratio;
        mean_ratio = report.Fg_metrics.Degree_metric.mean_ratio;
        over_3x = report.Fg_metrics.Degree_metric.over_3x;
        over_4x = report.Fg_metrics.Degree_metric.over_4x;
      }
      :: !rows
  in
  List.iter
    (fun (family, _) ->
      List.iter (fun n -> List.iter (do_cell family n) adversaries) sizes)
    Exp_common.families;
  let rows = List.rev !rows in
  let table =
    Table.make
      [ "family"; "adversary"; "n"; "deleted"; "max deg ratio"; "mean"; ">3x"; ">4x" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.family;
          r.adversary;
          Table.cell_int r.n;
          Table.cell_int r.deleted;
          Table.cell_float r.max_ratio;
          Table.cell_float ~decimals:3 r.mean_ratio;
          Table.cell_int r.over_3x;
          Table.cell_int r.over_4x;
        ])
    rows;
  if verbose then
    Table.print
      ~title:
        "E3 - Theorem 1.1: degree increase under 50% adversarial deletion (FG healer)"
      table;
  if csv then ignore (Exp_common.write_csv ~name:"e3_degree" table);
  { rows; all_within_4x = List.for_all (fun r -> r.over_4x = 0) rows }
