(** Experiment E13 — batch failures (extension beyond the paper's model).

    The paper's adversary deletes one node per round; real failures come
    in bursts (rack outages, partitions). The Forgiving Graph's repair
    machinery handles a simultaneous batch natively: all victims' vnodes
    fragment together and merge once. We compare batch vs the equivalent
    deletion sequence: identical survivors and guarantees, strictly less
    repair work (helpers created, anchors contacted). *)

type row = {
  n : int;
  batch_size : int;
  batch_helpers : int;  (** helpers created by the single combined repair *)
  seq_helpers : int;  (** total helpers created by the k sequential repairs *)
  batch_anchors : int;
  seq_anchors : int;
  batch_stretch : float;
  seq_stretch : float;
  bound : int;
  both_within : bool;
}

type summary = { rows : row list; batch_never_worse : bool }

val run : ?verbose:bool -> ?csv:bool -> unit -> summary
