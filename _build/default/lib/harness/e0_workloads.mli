(** Experiment E0 — workload characterisation.

    Every attack experiment runs over the same graph families; this table
    records their structural profile (size, density, diameter, degree
    distribution, clustering, connectivity), both to document the
    workloads and as a regression anchor: the generators are seeded, so
    any row change signals a generator change that would silently shift
    every other experiment. *)

type row = {
  family : string;
  n : int;
  m : int;
  mean_degree : float;
  max_degree : int;
  diameter : int;
  avg_path_length : float;
  clustering : float;  (** average local coefficient *)
  connected : bool;
}

type summary = { rows : row list; all_connected : bool }

val run : ?verbose:bool -> ?csv:bool -> ?n:int -> unit -> summary
