module Cascade = Fg_baselines.Cascade

type row = {
  tolerance : float;
  heal : string;
  surviving_fraction : float;
  largest_component_fraction : float;
  waves : int;
}

type summary = { rows : row list; fg_dominates : bool }

let heal_modes rng =
  [
    ("none", Cascade.No_heal);
    ("rewire", Cascade.Rewire rng);
    ("fg", Cascade.Forgiving);
  ]

let run ?(verbose = true) ?(csv = false) ?(n = 200) () =
  let rng = Fg_graph.Rng.create Exp_common.default_seed in
  let g0 = Fg_graph.Generators.barabasi_albert rng n 2 in
  let attack = Cascade.top_degree_attack g0 3 in
  let tolerances = [ 0.05; 0.2; 0.5; 1.0 ] in
  let rows =
    List.concat_map
      (fun tolerance ->
        List.map
          (fun (name, heal) ->
            let r =
              Cascade.run
                { Cascade.tolerance; max_waves = 50 }
                ~heal g0 ~attack
            in
            {
              tolerance;
              heal = name;
              surviving_fraction = r.Cascade.surviving_fraction;
              largest_component_fraction = r.Cascade.largest_component_fraction;
              waves = r.Cascade.waves;
            })
          (heal_modes (Fg_graph.Rng.split rng)))
      tolerances
  in
  let table =
    Table.make
      [ "tolerance"; "heal"; "surviving frac"; "largest comp frac"; "waves" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Table.cell_float r.tolerance;
          r.heal;
          Table.cell_float ~decimals:3 r.surviving_fraction;
          Table.cell_float ~decimals:3 r.largest_component_fraction;
          Table.cell_int r.waves;
        ])
    rows;
  if verbose then
    Table.print
      ~title:
        (Printf.sprintf
           "E9 - Motter-Lai cascade under hub attack (BA graph, n=%d, top-3 hubs)" n)
      table;
  if csv then ignore (Exp_common.write_csv ~name:"e9_cascade" table);
  let fg_dominates =
    List.for_all
      (fun tol ->
        let lcf h =
          (List.find (fun r -> r.heal = h && r.tolerance = tol) rows)
            .largest_component_fraction
        in
        lcf "fg" >= lcf "none" -. 1e-9 && lcf "fg" >= lcf "rewire" -. 1e-9)
      tolerances
  in
  { rows; fg_dominates }
