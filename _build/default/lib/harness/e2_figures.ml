open Fg_haft

type summary = {
  fig3_strip_sizes : int list;
  fig5_total_leaves : int;
  fig5_is_complete : bool;
  fig2_rt_depth : int;
  fig2_invariants_ok : bool;
  fig7_anchors : int;
  fig7_levels : int list;
  fig7_invariants_ok : bool;
}

let rec ints a b = if a > b then [] else a :: ints (a + 1) b

(* render a haft as an indented ASCII tree *)
let ascii_tree pp_leaf t =
  let buf = Buffer.create 256 in
  let rec go prefix ~root is_last t =
    let connector = if root then "" else if is_last then "`-- " else "|-- " in
    match t with
    | Haft.Leaf x -> Buffer.add_string buf (prefix ^ connector ^ pp_leaf x ^ "\n")
    | Haft.Node { left; right; leaves; _ } ->
      Buffer.add_string buf (Printf.sprintf "%s%s(+) [%d leaves]\n" prefix connector leaves);
      let child_prefix =
        if root then "" else prefix ^ if is_last then "    " else "|   "
      in
      go child_prefix ~root:false false left;
      go child_prefix ~root:false true right
  in
  go "" ~root:true true t;
  Buffer.contents buf

let run ?(verbose = true) () =
  (* Fig. 3(a) *)
  let h7 = Haft.of_list (ints 1 7) in
  let strip_sizes = List.map Haft.leaf_count (Haft.strip h7) in
  (* Fig. 5 *)
  let h5 = Haft.of_list (ints 1 5) in
  let h2 = Haft.of_list [ 6; 7 ] in
  let h1 = Haft.of_list [ 8 ] in
  let merged = Haft.merge [ h5; h2; h1 ] in
  (* Fig. 2: deleted node replaced by its reconstruction tree *)
  let star = Fg_graph.Generators.star 9 in
  let fg = Fg_core.Forgiving_graph.of_graph star in
  Fg_core.Forgiving_graph.delete fg 0;
  let rt_depth =
    match Fg_core.Rt.rt_roots (Fg_core.Forgiving_graph.ctx fg) with
    | [ root ] -> root.Fg_core.Rt.height
    | _ -> -1
  in
  let inv_ok = Fg_core.Invariants.check fg = [] in
  (* Figs. 4/7/8: delete a node that is a leaf of the existing RT, so the
     RT breaks into fragments which re-merge with fresh leaves via BT_v *)
  let fg78 = Fg_core.Forgiving_graph.of_graph (Fg_graph.Generators.complete 9) in
  Fg_core.Forgiving_graph.delete fg78 0;
  let fig7_trace = Fg_core.Forgiving_graph.delete_traced fg78 1 in
  let fig7_levels =
    List.map List.length fig7_trace.Fg_core.Rt.ht_levels
  in
  let fig7_ok = Fg_core.Invariants.check fg78 = [] in
  if verbose then begin
    print_newline ();
    print_endline "E2 - Figures 2, 3(a) and 5 regenerated";
    print_endline "======================================";
    print_endline "Fig 3(a): haft(7) - strip removes the square nodes, leaving 4+2+1:";
    print_string (ascii_tree string_of_int h7);
    Printf.printf "strip sizes: [%s]\n"
      (String.concat "; " (List.map string_of_int strip_sizes));
    print_endline "";
    print_endline "Fig 5: merge 0101 + 0010 + 0001 = 1000:";
    print_string (ascii_tree string_of_int merged);
    Printf.printf "merged: %d leaves, complete=%b, height=%d\n"
      (Haft.leaf_count merged) (Haft.is_complete merged) (Haft.height merged);
    print_endline "";
    print_endline "Fig 2: K_{1,8} centre deleted; satellites now joined by RT:";
    Printf.printf "RT depth %d (= ceil(log2 8)), invariants ok: %b\n" rt_depth inv_ok;
    print_string
      (Fg_graph.Graph_io.to_edge_list (Fg_core.Forgiving_graph.graph fg));
    print_endline "";
    print_endline
      "Figs 4/7/8: K9, delete 0 (makes an RT), then delete 1 (an RT leaf):";
    Printf.printf
      "the RT fragments; BT_v has %d anchors (fragments + fresh leaves),\n\
       merges per level (bottom-up): [%s], invariants ok: %b\n"
      fig7_trace.Fg_core.Rt.ht_anchors
      (String.concat "; " (List.map string_of_int fig7_levels))
      fig7_ok
  end;
  {
    fig3_strip_sizes = strip_sizes;
    fig5_total_leaves = Haft.leaf_count merged;
    fig5_is_complete = Haft.is_complete merged;
    fig2_rt_depth = rt_depth;
    fig2_invariants_ok = inv_ok;
    fig7_anchors = fig7_trace.Fg_core.Rt.ht_anchors;
    fig7_levels;
    fig7_invariants_ok = fig7_ok;
  }
