(** Experiment E12 — "at any point in the algorithm": bounds as a time
    series.

    Theorem 1 is stated for every moment, not just after the attack ends.
    We run one long adversarial scenario (ER graph, hub-deletion adversary
    with bursts of insertions) and check the stretch and degree bounds,
    plus the full structural invariant suite, after {e every single
    event}, reporting sampled rows of the timeline. *)

type row = {
  step : int;
  event : string;  (** "del v" or "ins v" *)
  live : int;
  n_seen : int;
  max_stretch : float;
  bound : int;
  max_degree_ratio : float;
  ok : bool;  (** bounds + invariants at this instant *)
}

type summary = {
  rows : row list;  (** sampled steps *)
  steps_checked : int;
  violations : int;  (** expected 0 *)
}

val run : ?verbose:bool -> ?csv:bool -> ?steps:int -> unit -> summary
