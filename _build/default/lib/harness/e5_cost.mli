(** Experiment E5 — Lemma 4 / Theorem 1.3: repair cost measured on the
    distributed simulator.

    Two series: (a) star centres of growing degree (worst-case single
    repair); (b) a deletion sequence through an ER graph (repeated RT
    merging). For each deletion the simulator reports messages, recovery
    rounds and message sizes; the normalised columns divide by the
    Lemma 4 bounds — flat normalised values confirm the claimed shape
    O(d log n) messages, O(log d log n) rounds, O(log n)-reference
    messages. *)

type row = {
  label : string;
  n : int;
  degree : int;
  anchors : int;
  messages : int;
  msgs_norm : float;  (** messages / (d log2 n) *)
  rounds : int;
  rounds_norm : float;  (** rounds / (log2 d log2 n) *)
  max_msg_refs : float;  (** largest message in node references *)
  refs_norm : float;  (** max_msg_refs / log2 n *)
}

type summary = {
  star_rows : row list;
  er_rows : row list;
  max_msgs_norm : float;
  max_rounds_norm : float;
  max_refs_norm : float;
}

val run : ?verbose:bool -> ?csv:bool -> unit -> summary
