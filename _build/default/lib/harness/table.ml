type t = { headers : string list; mutable rows : string list list (* reversed *) }

let make headers = { headers; rows = [] }
let add_row t cells = t.rows <- cells :: t.rows
let cell_int = string_of_int
let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_bool b = if b then "yes" else "no"

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width i =
    List.fold_left
      (fun m r -> match List.nth_opt r i with Some c -> max m (String.length c) | None -> m)
      0 all
  in
  let widths = List.init cols width in
  let buf = Buffer.create 512 in
  let emit_row r =
    List.iteri
      (fun i w ->
        let c = Option.value (List.nth_opt r i) ~default:"" in
        Buffer.add_string buf c;
        Buffer.add_string buf (String.make (w - String.length c) ' ');
        if i < cols - 1 then Buffer.add_string buf "  ")
      widths;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  let total = List.fold_left ( + ) 0 widths + (2 * (cols - 1)) in
  Buffer.add_string buf (String.make (max 1 total) '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ?title t =
  (match title with
  | Some s ->
    print_newline ();
    print_endline s;
    print_endline (String.make (String.length s) '=')
  | None -> ());
  print_string (render t)

let quote_csv c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  let rows = t.headers :: List.rev t.rows in
  String.concat "\n" (List.map (fun r -> String.concat "," (List.map quote_csv r)) rows)
  ^ "\n"
