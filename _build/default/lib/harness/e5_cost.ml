module Engine = Fg_sim.Engine
module Protocol = Fg_sim.Protocol

type row = {
  label : string;
  n : int;
  degree : int;
  anchors : int;
  messages : int;
  msgs_norm : float;
  rounds : int;
  rounds_norm : float;
  max_msg_refs : float;
  refs_norm : float;
}

type summary = {
  star_rows : row list;
  er_rows : row list;
  max_msgs_norm : float;
  max_rounds_norm : float;
  max_refs_norm : float;
}

let row_of_cost label (c : Engine.cost) =
  let lg = Exp_common.log2f c.Engine.n_seen in
  let d = float_of_int (max 2 c.Engine.deleted_degree) in
  let refs =
    float_of_int c.Engine.max_message_bits
    /. float_of_int (Protocol.ref_bits c.Engine.n_seen)
  in
  {
    label;
    n = c.Engine.n_seen;
    degree = c.Engine.deleted_degree;
    anchors = c.Engine.anchors;
    messages = c.Engine.messages;
    msgs_norm = float_of_int c.Engine.messages /. (d *. lg);
    rounds = c.Engine.rounds;
    rounds_norm =
      float_of_int c.Engine.rounds /. (log d /. log 2. *. lg);
    max_msg_refs = refs;
    refs_norm = refs /. lg;
  }

let star_series () =
  List.map
    (fun n ->
      let eng = Engine.create (Fg_graph.Generators.star n) in
      row_of_cost "star" (Engine.delete eng 0))
    [ 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ]

let er_series () =
  let rng = Fg_graph.Rng.create Exp_common.default_seed in
  let n = 256 in
  let g = Fg_graph.Generators.erdos_renyi rng n (8.0 /. float_of_int n) in
  let eng = Engine.create g in
  (* delete the current max-degree hub repeatedly: forces heavy RT merging *)
  let victims = ref [] in
  for _ = 1 to n / 2 do
    let fg = Engine.fg eng in
    let live = Fg_core.Forgiving_graph.live_nodes fg in
    let g = Fg_core.Forgiving_graph.graph fg in
    let best =
      List.fold_left
        (fun acc v ->
          match acc with
          | None -> Some v
          | Some b ->
            let dv = Fg_graph.Adjacency.degree g v
            and db = Fg_graph.Adjacency.degree g b in
            if dv > db || (dv = db && v < b) then Some v else Some b)
        None live
    in
    match best with
    | Some v when List.length live > 2 -> victims := Engine.delete eng v :: !victims
    | _ -> ()
  done;
  let costs = List.rev !victims in
  (* report every 16th deletion plus the extremes *)
  let n_costs = List.length costs in
  List.filteri (fun i _ -> i mod 16 = 0 || i = n_costs - 1) costs
  |> List.map (row_of_cost "er-hub")

let run ?(verbose = true) ?(csv = false) () =
  let star_rows = star_series () in
  let er_rows = er_series () in
  let all = star_rows @ er_rows in
  let maxf f = List.fold_left (fun m r -> max m (f r)) 0. all in
  let table =
    Table.make
      [
        "series"; "n"; "d'"; "anchors"; "msgs"; "msgs/(d lg n)"; "rounds";
        "rounds/(lg d lg n)"; "max msg refs"; "refs/lg n";
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.label;
          Table.cell_int r.n;
          Table.cell_int r.degree;
          Table.cell_int r.anchors;
          Table.cell_int r.messages;
          Table.cell_float r.msgs_norm;
          Table.cell_int r.rounds;
          Table.cell_float r.rounds_norm;
          Table.cell_float ~decimals:1 r.max_msg_refs;
          Table.cell_float r.refs_norm;
        ])
    all;
  if verbose then
    Table.print
      ~title:
        "E5 - Lemma 4: distributed repair cost (normalised columns should stay flat)"
      table;
  if csv then ignore (Exp_common.write_csv ~name:"e5_cost" table);
  {
    star_rows;
    er_rows;
    max_msgs_norm = maxf (fun r -> r.msgs_norm);
    max_rounds_norm = maxf (fun r -> r.rounds_norm);
    max_refs_norm = maxf (fun r -> r.refs_norm);
  }
