(** Experiment E4 — Theorem 1.2 (stretch <= ceil(log2 n)) under the same
    adversarial deletion sweeps as E3. *)

type row = {
  family : string;
  adversary : string;
  n : int;
  n_seen : int;
  max_stretch : float;
  mean_stretch : float;
  bound : int;  (** ceil(log2 n_seen) *)
  within_bound : bool;
  disconnected_pairs : int;  (** must be 0 *)
}

type summary = { rows : row list; all_within_bound : bool }

val run : ?verbose:bool -> ?csv:bool -> ?sizes:int list -> unit -> summary
