(** Experiment E8 — mixed adversarial insertions and deletions.

    The Forgiving Graph's second headline improvement: it handles
    arbitrary interleavings of insertions and deletions (the Forgiving
    Tree handles neither insertions nor an uninitialised start). We sweep
    insert:delete mixes x insertion strategies, then verify the Theorem 1
    bounds and the full structural invariant suite on the survivor. *)

type row = {
  mix : string;  (** e.g. "1:1" = p_delete 0.5 *)
  insertion : string;
  steps : int;
  n_seen : int;
  live : int;
  max_stretch : float;
  stretch_bound : int;
  max_degree_ratio : float;
  invariants_ok : bool;
}

type summary = { rows : row list; all_ok : bool }

val run : ?verbose:bool -> ?csv:bool -> ?steps:int -> unit -> summary
