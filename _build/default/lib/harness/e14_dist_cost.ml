module De = Fg_sim.Dist_engine
module Engine = Fg_sim.Engine

type row = {
  n : int;
  degree : int;
  messages : int;
  msgs_norm : float;
  rounds : int;
  rounds_norm : float;
  replay_messages : int;
  verified : bool;
}

type summary = {
  rows : row list;
  all_verified : bool;
  max_msgs_norm : float;
  max_rounds_norm : float;
}

let star_row n =
  let eng = De.create (Fg_graph.Generators.star n) in
  let stats = De.delete eng 0 in
  let verified = De.verify eng = [] in
  (* the same attack through the trace-replay engine, for comparison *)
  let replay = Engine.create (Fg_graph.Generators.star n) in
  let rc = Engine.delete replay 0 in
  let d = float_of_int (n - 1) in
  let lg = Exp_common.log2f n in
  {
    n;
    degree = n - 1;
    messages = stats.Fg_sim.Netsim.messages;
    msgs_norm = float_of_int stats.Fg_sim.Netsim.messages /. (d *. lg);
    rounds = stats.Fg_sim.Netsim.rounds;
    rounds_norm = float_of_int stats.Fg_sim.Netsim.rounds /. (Exp_common.log2f (n - 1) *. lg);
    replay_messages = rc.Engine.messages;
    verified;
  }

let er_rows () =
  let rng = Fg_graph.Rng.create Exp_common.default_seed in
  let n = 192 in
  let g = Fg_graph.Generators.erdos_renyi rng n (6.0 /. float_of_int n) in
  let eng = De.create g in
  let rows = ref [] in
  for step = 1 to n / 2 do
    let fg = De.reference eng in
    let live = Fg_core.Forgiving_graph.live_nodes fg in
    if List.length live > 3 then begin
      let v = Fg_graph.Rng.pick rng live in
      let d = Fg_graph.Adjacency.degree (Fg_core.Forgiving_graph.gprime fg) v in
      let stats = De.delete eng v in
      if step mod 24 = 0 then begin
        let verified = De.verify eng = [] in
        let lg = Exp_common.log2f n in
        let df = float_of_int (max 2 d) in
        rows :=
          {
            n;
            degree = d;
            messages = stats.Fg_sim.Netsim.messages;
            msgs_norm = float_of_int stats.Fg_sim.Netsim.messages /. (df *. lg);
            rounds = stats.Fg_sim.Netsim.rounds;
            rounds_norm =
              float_of_int stats.Fg_sim.Netsim.rounds
              /. (Exp_common.log2f (max 2 d) *. lg);
            replay_messages = 0;
            verified;
          }
          :: !rows
      end
    end
  done;
  List.rev !rows

let run ?(verbose = true) ?(csv = false) () =
  let rows = List.map star_row [ 16; 64; 256; 1024 ] @ er_rows () in
  let table =
    Table.make
      [
        "n"; "d'"; "msgs (dist)"; "msgs/(d lg n)"; "rounds"; "rounds/(lg d lg n)";
        "msgs (replay)"; "verified";
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Table.cell_int r.n;
          Table.cell_int r.degree;
          Table.cell_int r.messages;
          Table.cell_float r.msgs_norm;
          Table.cell_int r.rounds;
          Table.cell_float r.rounds_norm;
          (if r.replay_messages = 0 then "-" else Table.cell_int r.replay_messages);
          Table.cell_bool r.verified;
        ])
    rows;
  if verbose then
    Table.print
      ~title:
        "E14 - Lemma 4 on the fully distributed protocol (per-processor state \
         machines; stars then an ER deletion sequence)"
      table;
  if csv then ignore (Exp_common.write_csv ~name:"e14_dist_cost" table);
  let maxf f = List.fold_left (fun m r -> max m (f r)) 0. rows in
  {
    rows;
    all_verified = List.for_all (fun r -> r.verified) rows;
    max_msgs_norm = maxf (fun r -> r.msgs_norm);
    max_rounds_norm = maxf (fun r -> r.rounds_norm);
  }
