(** Experiment E1 — Lemma 1 (haft structure laws), executed exhaustively.

    For every leaf count [l] up to the configured maximum: build haft(l),
    verify the haft predicate, depth = ceil(log2 l), strip forest =
    complete trees of the binary representation of [l], uniqueness of the
    shape under an alternative construction (merging singletons). *)

type summary = {
  max_l : int;
  checked : int;
  failures : int;  (** 0 expected *)
}

val run : ?verbose:bool -> ?csv:bool -> ?max_l:int -> unit -> summary
