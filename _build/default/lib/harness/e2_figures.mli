(** Experiment E2 — the paper's worked figures, regenerated.

    - Fig. 3(a): the unique haft over 7 leaves and its strip into complete
      trees of sizes 4, 2, 1;
    - Fig. 5: merging hafts of 5, 2 and 1 leaves = binary addition
      0101 + 0010 + 0001 = 1000, a complete tree over 8 leaves;
    - Fig. 2: deleting the centre of a star replaces it by a
      reconstruction tree over its neighbours (8-satellite instance);
    - Figs. 4, 7, 8: deleting a node adjacent to an existing RT fragments
      it; the fragments and the fresh leaves merge bottom-up through BT_v
      (the trace records the per-level merges). *)

type summary = {
  fig3_strip_sizes : int list;  (** expect [4; 2; 1] *)
  fig5_total_leaves : int;  (** expect 8 *)
  fig5_is_complete : bool;
  fig2_rt_depth : int;  (** expect 3 = ceil(log2 8) *)
  fig2_invariants_ok : bool;
  fig7_anchors : int;  (** BT_v size of the second deletion *)
  fig7_levels : int list;  (** merges per level, bottom-up *)
  fig7_invariants_ok : bool;
}

val run : ?verbose:bool -> unit -> summary
