(** Experiment E7 — the paper's three claimed improvements over the
    Forgiving Tree (PODC'08), §1:

    + {b stretch vs diameter}: FG bounds per-pair stretch against G'; FT
      heals a spanning tree and ignores non-tree G'-edges, so its per-pair
      stretch degrades while its diameter factor stays bounded;
    + {b insertions}: FG handles them, FT raises Unsupported;
    + {b initialization}: FT charges O(n log n) preprocessing messages,
      FG none. *)

type row = {
  healer : string;
  family : string;
  n : int;
  max_stretch : float;  (** vs the original G' *)
  mean_stretch : float;
  diameter_factor : float;  (** diam(G)/diam(G') *)
  max_degree_ratio : float;
  supports_insert : bool;
  init_messages : int;
}

type summary = {
  rows : row list;
  fg_beats_ft_stretch : bool;  (** FG max stretch < FT max stretch on every family *)
}

val run : ?verbose:bool -> ?csv:bool -> unit -> summary
