(** Experiment E10 — ablations and the degree/stretch trade-off frontier.

    (a) {b Frontier}: every healer (FG, FT, and the naive patches) faces
    the same adversary (40% max-degree deletions on an ER graph); we plot
    each at (max degree ratio, max stretch). Theorem 2 says no point can
    be in the "both small" corner: clique/star buy stretch with unbounded
    degree, cycle/line buy degree with unbounded stretch, no-repair
    disconnects, and FG sits at (<= 4, <= log n) — the optimal trade-off.
    The ["binary"] patch is the representative-mechanism ablation: same
    balanced-tree repair as FG but without simulation bookkeeping, so its
    degree drifts upward under repeated attack.

    (b) {b Merge-cost ablation}: per deletion, the haft merge touches
    O(d log n) nodes, while rebuilding each reconstruction tree from its
    leaves would touch every leaf of the merged RT. We report both along a
    deletion sequence; the ratio grows as RTs accumulate. *)

type frontier_row = {
  healer : string;
  max_degree_ratio : float;
  max_abs_increase : int;
  max_stretch : float;
  disconnected_pairs : int;
}

type cost_row = {
  step : int;
  degree : int;
  merge_messages : int;  (** measured on the simulator *)
  rebuild_touches : int;  (** leaves of the post-heal RT, the naive cost *)
}

(** (c) Simulator-choice policy ablation (DESIGN.md §6): does picking the
    lower-degree representative at merges restore the paper's stated 3x
    degree bound? Measured on star heals and an ER hub attack. *)
type policy_row = {
  scenario : string;
  paper_max_ratio : float;
  balanced_max_ratio : float;
  paper_over_3x : int;
  balanced_over_3x : int;
}

type summary = {
  frontier : frontier_row list;
  costs : cost_row list;
  policies : policy_row list;
  fg_on_frontier : bool;
      (** FG's degree ratio <= 4 while its stretch <= log n, and every
          baseline violates one of the two *)
}

val run : ?verbose:bool -> ?csv:bool -> unit -> summary
