module Healer = Fg_baselines.Healer
module Adversary = Fg_adversary.Adversary

type row = {
  healer : string;
  family : string;
  n : int;
  max_stretch : float;
  mean_stretch : float;
  diameter_factor : float;
  max_degree_ratio : float;
  supports_insert : bool;
  init_messages : int;
}

type summary = { rows : row list; fg_beats_ft_stretch : bool }

let one ~healer ~family ~n =
  let h =
    Attack_sweep.run ~seed:Exp_common.default_seed ~family ~n ~del:Adversary.Max_degree
      ~fraction:0.3 ~healer
  in
  let degree, stretch = Attack_sweep.measure_both h in
  let g = h.Healer.graph () and gp = h.Healer.gprime () in
  let diam_g = Fg_graph.Diameter.two_sweep g in
  let diam_gp = Fg_graph.Diameter.two_sweep gp in
  let supports_insert =
    let fresh = 1_000_000 + n in
    match h.Healer.live_nodes () with
    | [] -> false
    | anchor :: _ -> (
      try
        h.Healer.insert fresh [ anchor ];
        true
      with Healer.Unsupported _ -> false)
  in
  {
    healer = h.Healer.name;
    family;
    n;
    max_stretch = stretch.Fg_metrics.Stretch.max_stretch;
    mean_stretch = stretch.Fg_metrics.Stretch.mean_stretch;
    diameter_factor =
      float_of_int diam_g /. float_of_int (max 1 diam_gp);
    max_degree_ratio = degree.Fg_metrics.Degree_metric.max_ratio;
    supports_insert;
    init_messages = h.Healer.init_messages;
  }

let families = [ "er"; "ba"; "ws" ]
let n = 256

let run ?(verbose = true) ?(csv = false) () =
  let rows =
    List.concat_map
      (fun family ->
        [ one ~healer:"fg" ~family ~n; one ~healer:"ft" ~family ~n ])
      families
  in
  let table =
    Table.make
      [
        "healer"; "family"; "n"; "max stretch"; "mean stretch"; "diam factor";
        "max deg ratio"; "inserts"; "init msgs";
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.healer;
          r.family;
          Table.cell_int r.n;
          Table.cell_float r.max_stretch;
          Table.cell_float ~decimals:3 r.mean_stretch;
          Table.cell_float r.diameter_factor;
          Table.cell_float r.max_degree_ratio;
          Table.cell_bool r.supports_insert;
          Table.cell_int r.init_messages;
        ])
    rows;
  if verbose then
    Table.print
      ~title:
        "E7 - Forgiving Graph vs Forgiving Tree (30% max-degree deletions)"
      table;
  if csv then ignore (Exp_common.write_csv ~name:"e7_vs_ft" table);
  let beats =
    List.for_all
      (fun family ->
        let find h =
          List.find (fun r -> r.healer = h && r.family = family) rows
        in
        (find "fg").max_stretch <= (find "ft").max_stretch)
      families
  in
  { rows; fg_beats_ft_stretch = beats }
