(** Experiment E14 — Lemma 4 on the {e fully distributed} protocol.

    E5 measures the cost model by replaying centrally computed repair
    traces. Here the repair itself runs as per-processor state machines
    exchanging real messages ({!Fg_sim.Dist_protocol}) — corrections,
    strip DFS, root-list exchange, helper instantiation — and we measure
    the same quantities. Both engines must exhibit the Lemma 4 shape;
    the distributed protocol pays small constant-factor overheads
    (acknowledgements, coordination). *)

type row = {
  n : int;
  degree : int;
  messages : int;
  msgs_norm : float;  (** messages / (d log2 n) *)
  rounds : int;
  rounds_norm : float;  (** rounds / (log2 d log2 n) *)
  replay_messages : int;  (** E5's trace-replay count on the same attack *)
  verified : bool;  (** full cross-check vs centralized passed *)
}

type summary = {
  rows : row list;
  all_verified : bool;
  max_msgs_norm : float;
  max_rounds_norm : float;
}

val run : ?verbose:bool -> ?csv:bool -> unit -> summary
