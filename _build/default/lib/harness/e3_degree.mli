(** Experiment E3 — Theorem 1.1 (degree increase) under adversarial
    deletion sweeps.

    For each graph family x adversary x size: delete half the nodes
    adaptively with the Forgiving Graph healing, then measure the
    degree-increase ratio deg(v,G)/deg(v,G') over survivors. The paper
    states max <= 3; the construction's tight bound is 4 (DESIGN.md §6) —
    both columns are reported. *)

type row = {
  family : string;
  adversary : string;
  n : int;
  deleted : int;
  max_ratio : float;
  mean_ratio : float;
  over_3x : int;  (** survivors above the paper's stated bound *)
  over_4x : int;  (** survivors above the provable bound — must be 0 *)
}

type summary = { rows : row list; all_within_4x : bool }

val run : ?verbose:bool -> ?csv:bool -> ?sizes:int list -> unit -> summary
