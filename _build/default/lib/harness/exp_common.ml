let ceil_log2 n =
  if n <= 1 then 0
  else begin
    let rec go p b = if p >= n then b else go (2 * p) (b + 1) in
    go 1 0
  end

let log2f n = log (float_of_int (max 2 n)) /. log 2.
let default_seed = 42

let families =
  [
    ("ring", fun _rng n -> Fg_graph.Generators.ring n);
    ("er", fun rng n -> Fg_graph.Generators.erdos_renyi rng n (4.0 /. float_of_int (max 2 n)));
    ("ba", fun rng n -> Fg_graph.Generators.barabasi_albert rng n 3);
    ("ws", fun rng n -> Fg_graph.Generators.watts_strogatz rng n 4 0.1);
    ("grid", fun _rng n ->
      let side = max 2 (int_of_float (sqrt (float_of_int n))) in
      Fg_graph.Generators.grid side side);
    ("tree", fun _rng n -> Fg_graph.Generators.binary_tree n);
  ]

let write_csv ~name table =
  let dir = "results" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (name ^ ".csv") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Table.to_csv table));
  path
