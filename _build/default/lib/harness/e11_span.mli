(** Experiment E11 — healing-edge span (the paper's concluding open
    problem).

    "What if the only edges we can add are those that span a small
    distance in the original network?" (Section 6). We measure, after each
    attack sweep, the {e span} of every healing edge the Forgiving Graph
    currently maintains — the endpoints' distance in [G'] — and report the
    distribution. Small spans would mean the algorithm is already usable
    in locality-constrained networks (e.g. sensor networks); growing spans
    quantify how much the open problem actually demands.

    {b Finding.} Span stays within ~2 ceil(log2 n) on expander-like
    families (ER, BA, WS, random trees) but is Theta(diameter) on the ring
    and grid — the one healing edge closing a half-deleted ring must span
    the surviving arc. So locality-constrained healing genuinely requires
    a different algorithm, which is exactly why the authors leave it open. *)

type row = {
  family : string;
  n : int;
  healing_edges : int;  (** edges of G absent from G' *)
  max_span : int;
  mean_span : float;
  p95_span : float;
  span_bound_2log : bool;  (** max span <= 2 ceil(log2 n)? *)
}

type summary = {
  rows : row list;
  expanders_small : bool;
      (** ER/BA/WS/tree max spans within 2 ceil(log2 n) *)
  ring_large : bool;  (** ring spans Theta(n): >= n/4 *)
}

val run : ?verbose:bool -> ?csv:bool -> unit -> summary
