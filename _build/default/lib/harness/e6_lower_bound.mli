(** Experiment E6 — Theorem 2: the degree/stretch trade-off lower bound.

    The proof's construction: a star K_{1,n-1} whose centre is deleted.
    Any healer with degree factor alpha >= 3 must suffer stretch
    beta >= (1/2) log_{alpha-1}(n-1). We run the Forgiving Graph on
    exactly this attack and report the measured stretch between the lower
    bound (alpha = 3, i.e. (1/2) log2(n-1)) and the upper bound of
    Theorem 1.2 (ceil(log2 n)) — confirming the trade-off is matched up
    to a constant factor, i.e. the structure is asymptotically optimal. *)

type row = {
  n : int;
  measured_stretch : float;  (** max over satellite pairs after healing *)
  lower_bound : float;  (** (1/2) log2 (n-1) *)
  upper_bound : int;  (** ceil(log2 n) *)
  max_degree_ratio : float;
  sandwiched : bool;  (** lower/2 <= measured <= upper? (constant slack) *)
}

type summary = { rows : row list; all_sandwiched : bool }

val run : ?verbose:bool -> ?csv:bool -> unit -> summary
