module Healer = Fg_baselines.Healer
module Adversary = Fg_adversary.Adversary
module Fg = Fg_core.Forgiving_graph
module Rt = Fg_core.Rt

type frontier_row = {
  healer : string;
  max_degree_ratio : float;
  max_abs_increase : int;
  max_stretch : float;
  disconnected_pairs : int;
}

type cost_row = {
  step : int;
  degree : int;
  merge_messages : int;
  rebuild_touches : int;
}

type policy_row = {
  scenario : string;
  paper_max_ratio : float;
  balanced_max_ratio : float;
  paper_over_3x : int;
  balanced_over_3x : int;
}

type summary = {
  frontier : frontier_row list;
  costs : cost_row list;
  policies : policy_row list;
  fg_on_frontier : bool;
}

let frontier_one healer =
  let h =
    Attack_sweep.run ~seed:Exp_common.default_seed ~family:"er" ~n:256
      ~del:Adversary.Max_degree ~fraction:0.4 ~healer
  in
  let degree, stretch = Attack_sweep.measure_both h in
  {
    healer = h.Healer.name;
    max_degree_ratio = degree.Fg_metrics.Degree_metric.max_ratio;
    max_abs_increase = degree.Fg_metrics.Degree_metric.max_absolute_increase;
    max_stretch = stretch.Fg_metrics.Stretch.max_stretch;
    disconnected_pairs = stretch.Fg_metrics.Stretch.disconnected;
  }

(* total leaves of the RT produced by the final merge of a heal trace: the
   cost a "rebuild from scratch" strategy would pay per deletion *)
let final_rt_leaves (trace : Rt.heal_trace) =
  match List.rev trace.Rt.ht_levels with
  | [] -> 0
  | last :: _ ->
    List.fold_left
      (fun acc (e : Rt.merge_event) ->
        acc
        + List.fold_left ( + ) 0 e.Rt.me_left_sizes
        + List.fold_left ( + ) 0 e.Rt.me_right_sizes)
      0 last

let cost_series () =
  (* star: deleting the centre creates one giant RT; deleting satellites
     afterwards keeps re-merging it. A rebuild-from-leaves strategy pays
     the whole surviving RT every time; the haft merge pays O(d log n). *)
  let n = 512 in
  let fg = Fg.of_graph (Fg_graph.Generators.star n) in
  let rows = ref [] in
  for step = 0 to n / 2 do
    let v = step in
    let d = Fg_graph.Adjacency.degree (Fg.gprime fg) v in
    let trace = Fg.delete_traced fg v in
    let stats = Fg_sim.Protocol.replay ~trace ~n_seen:(Fg.num_seen fg) in
    if step mod 32 = 0 || step = n / 2 then
      rows :=
        {
          step;
          degree = d;
          merge_messages = stats.Fg_sim.Netsim.messages;
          rebuild_touches = 2 * final_rt_leaves trace;
        }
        :: !rows
  done;
  List.rev !rows

(* degree report under a given simulator-choice policy for one scenario *)
let degree_under ~policy scenario =
  let fg =
    match scenario with
    | `Star n ->
      let fg = Fg.of_graph ~policy (Fg_graph.Generators.star n) in
      Fg.delete fg 0;
      fg
    | `Er_attack n ->
      let rng = Fg_graph.Rng.create Exp_common.default_seed in
      let g = Fg_graph.Generators.erdos_renyi rng n (4.0 /. float_of_int n) in
      let fg = Fg.of_graph ~policy g in
      (* max-current-degree adversary, mirrored from Adversary.Max_degree *)
      for _ = 1 to 2 * n / 5 do
        let live = Fg.live_nodes fg in
        if List.length live > 2 then begin
          let g = Fg.graph fg in
          let best =
            List.fold_left
              (fun acc v ->
                match acc with
                | None -> Some v
                | Some b ->
                  let dv = Fg_graph.Adjacency.degree g v
                  and db = Fg_graph.Adjacency.degree g b in
                  if dv > db || (dv = db && v < b) then Some v else acc)
              None live
          in
          Option.iter (Fg.delete fg) best
        end
      done;
      fg
  in
  Fg_metrics.Degree_metric.measure ~graph:(Fg.graph fg) ~gprime:(Fg.gprime fg)
    ~nodes:(Fg.live_nodes fg)

let policy_series () =
  let scenarios =
    [
      ("star-17", `Star 17);
      ("star-65", `Star 65);
      ("star-257", `Star 257);
      ("star-1025", `Star 1025);
      ("er-256-40pct", `Er_attack 256);
    ]
  in
  List.map
    (fun (name, sc) ->
      let p = degree_under ~policy:Rt.Paper sc in
      let b = degree_under ~policy:Rt.Degree_balanced sc in
      {
        scenario = name;
        paper_max_ratio = p.Fg_metrics.Degree_metric.max_ratio;
        balanced_max_ratio = b.Fg_metrics.Degree_metric.max_ratio;
        paper_over_3x = p.Fg_metrics.Degree_metric.over_3x;
        balanced_over_3x = b.Fg_metrics.Degree_metric.over_3x;
      })
    scenarios

let run ?(verbose = true) ?(csv = false) () =
  let healers = [ "fg"; "ft"; "cycle"; "line"; "clique"; "star"; "binary"; "none" ] in
  let frontier = List.map frontier_one healers in
  let costs = cost_series () in
  let policies = policy_series () in
  let t1 =
    Table.make
      [ "healer"; "max deg ratio"; "max deg +"; "max stretch"; "disconnected pairs" ]
  in
  List.iter
    (fun r ->
      Table.add_row t1
        [
          r.healer;
          Table.cell_float r.max_degree_ratio;
          Table.cell_int r.max_abs_increase;
          Table.cell_float r.max_stretch;
          Table.cell_int r.disconnected_pairs;
        ])
    frontier;
  let t2 = Table.make [ "deletion #"; "d'"; "FG merge msgs"; "rebuild touches" ] in
  List.iter
    (fun r ->
      Table.add_row t2
        [
          Table.cell_int r.step;
          Table.cell_int r.degree;
          Table.cell_int r.merge_messages;
          Table.cell_int r.rebuild_touches;
        ])
    costs;
  let t3 =
    Table.make
      [
        "scenario"; "paper max ratio"; "balanced max ratio"; "paper >3x";
        "balanced >3x";
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t3
        [
          r.scenario;
          Table.cell_float r.paper_max_ratio;
          Table.cell_float r.balanced_max_ratio;
          Table.cell_int r.paper_over_3x;
          Table.cell_int r.balanced_over_3x;
        ])
    policies;
  if verbose then begin
    Table.print
      ~title:
        "E10a - degree/stretch frontier, all healers vs the same adversary (ER n=256, \
         40% max-degree deletions)"
      t1;
    Table.print
      ~title:
        "E10b - merge-cost ablation: haft merge vs rebuild-from-leaves (star n=512, \
         centre then satellites)"
      t2;
    Table.print
      ~title:
        "E10c - simulator-choice policy: paper's A.9 vs degree-balanced (DESIGN.md §6)"
      t3
  end;
  if csv then begin
    ignore (Exp_common.write_csv ~name:"e10_frontier" t1);
    ignore (Exp_common.write_csv ~name:"e10_cost" t2);
    ignore (Exp_common.write_csv ~name:"e10_policy" t3)
  end;
  let fg_row = List.find (fun r -> r.healer = "fg") frontier in
  let bound = Exp_common.log2f 256 in
  let fg_ok =
    fg_row.max_degree_ratio <= 4.0
    && fg_row.max_stretch <= bound
    && fg_row.disconnected_pairs = 0
  in
  let baselines_each_lose =
    List.for_all
      (fun r ->
        r.healer = "fg"
        || r.max_degree_ratio > 4.0
        || r.max_stretch > bound
        || r.disconnected_pairs > 0
        || r.max_abs_increase > Exp_common.ceil_log2 256)
      frontier
  in
  { frontier; costs; policies; fg_on_frontier = fg_ok && baselines_each_lose }
