(** Shared attack runner for the sweep experiments (E3, E4, E7, E10). *)

(** [run ~seed ~family ~n ~del ~fraction ~healer] builds the family graph,
    wraps it in the named healer, adaptively deletes [fraction] of the
    nodes with strategy [del], and returns the healer for measurement.
    [family] is a key of {!Exp_common.families}. *)
val run :
  seed:int ->
  family:string ->
  n:int ->
  del:Fg_adversary.Adversary.deletion ->
  fraction:float ->
  healer:string ->
  Fg_baselines.Healer.t

(** [measure_both healer] = (degree report, exact or sampled stretch
    report): exact all-pairs when at most [exact_limit] nodes survive
    (default 400), sampled with 48 sources otherwise. *)
val measure_both :
  ?seed:int ->
  ?exact_limit:int ->
  Fg_baselines.Healer.t ->
  Fg_metrics.Degree_metric.report * Fg_metrics.Stretch.report
