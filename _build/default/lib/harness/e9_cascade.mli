(** Experiment E9 — §1 related-work claim: cascade defenses "perform very
    poorly under adversarial attack"; responsive healing survives.

    Motter–Lai cascading failures on a Barabási–Albert power-law network
    under a top-degree (hub) attack, sweeping the capacity tolerance
    alpha. Three defences: none, Hayashi–Miyazaki emergent rewiring, and
    the Forgiving Graph. Reported: surviving fraction and largest
    component fraction (the G measure). *)

type row = {
  tolerance : float;
  heal : string;
  surviving_fraction : float;
  largest_component_fraction : float;
  waves : int;
}

type summary = {
  rows : row list;
  fg_dominates : bool;
      (** FG's largest-component fraction >= both baselines at every
          tolerance *)
}

val run : ?verbose:bool -> ?csv:bool -> ?n:int -> unit -> summary
