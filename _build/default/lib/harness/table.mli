(** Plain-text table rendering for experiment output. *)

type t

(** [make headers] starts a table. *)
val make : string list -> t

(** [add_row t cells] appends a row; extra/missing cells are tolerated. *)
val add_row : t -> string list -> unit

(** Convenience cell formatters. *)
val cell_int : int -> string

val cell_float : ?decimals:int -> float -> string
val cell_bool : bool -> string

(** [render t] lays out the table with padded columns and a separator. *)
val render : t -> string

(** [print ?title t] renders to stdout with an optional underlined title. *)
val print : ?title:string -> t -> unit

(** [to_csv t] emits the same data as CSV (quoted where needed). *)
val to_csv : t -> string
