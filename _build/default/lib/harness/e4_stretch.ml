module Adversary = Fg_adversary.Adversary
module Adjacency = Fg_graph.Adjacency

type row = {
  family : string;
  adversary : string;
  n : int;
  n_seen : int;
  max_stretch : float;
  mean_stretch : float;
  bound : int;
  within_bound : bool;
  disconnected_pairs : int;
}

type summary = { rows : row list; all_within_bound : bool }

let adversaries =
  [ Adversary.Random; Adversary.Max_degree; Adversary.Max_healing_degree; Adversary.Oldest ]

let run ?(verbose = true) ?(csv = false) ?(sizes = [ 64; 256 ]) () =
  let rows = ref [] in
  let do_cell family n adv =
    let h =
      Attack_sweep.run ~seed:Exp_common.default_seed ~family ~n ~del:adv ~fraction:0.5
        ~healer:"fg"
    in
    let _, stretch = Attack_sweep.measure_both h in
    let n_seen = Adjacency.num_nodes (h.Fg_baselines.Healer.gprime ()) in
    let bound = Exp_common.ceil_log2 n_seen in
    rows :=
      {
        family;
        adversary = Adversary.deletion_name adv;
        n;
        n_seen;
        max_stretch = stretch.Fg_metrics.Stretch.max_stretch;
        mean_stretch = stretch.Fg_metrics.Stretch.mean_stretch;
        bound;
        within_bound = stretch.Fg_metrics.Stretch.max_stretch <= float_of_int bound;
        disconnected_pairs = stretch.Fg_metrics.Stretch.disconnected;
      }
      :: !rows
  in
  List.iter
    (fun (family, _) ->
      List.iter (fun n -> List.iter (do_cell family n) adversaries) sizes)
    Exp_common.families;
  let rows = List.rev !rows in
  let table =
    Table.make
      [
        "family"; "adversary"; "n"; "max stretch"; "mean"; "bound log n"; "within";
        "disconn";
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.family;
          r.adversary;
          Table.cell_int r.n;
          Table.cell_float r.max_stretch;
          Table.cell_float ~decimals:3 r.mean_stretch;
          Table.cell_int r.bound;
          Table.cell_bool r.within_bound;
          Table.cell_int r.disconnected_pairs;
        ])
    rows;
  if verbose then
    Table.print
      ~title:"E4 - Theorem 1.2: stretch under 50% adversarial deletion (FG healer)"
      table;
  if csv then ignore (Exp_common.write_csv ~name:"e4_stretch" table);
  {
    rows;
    all_within_bound =
      List.for_all (fun r -> r.within_bound && r.disconnected_pairs = 0) rows;
  }
