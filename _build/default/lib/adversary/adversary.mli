(** Adversarial attack strategies (Section 2 model).

    The adversary is omniscient: it sees the whole current topology and
    the healing algorithm. These strategies approximate its worst cases —
    each one is the attack some proof or experiment identifies as most
    damaging. Strategies act on a {!Fg_baselines.Healer.t} so that every
    healing algorithm faces the identical adversary. *)

module Node_id := Fg_graph.Node_id

(** Deletion strategies: pick the next victim, [None] when at most two
    nodes survive (the adversary never deletes below two survivors).

    - [Random]: uniform live node (baseline "failure" model);
    - [Max_degree]: highest degree in the {e current} graph — repeatedly
      beheads hubs (the Theorem 2 star attack generalised);
    - [Max_gprime_degree]: highest degree in [G'] — targets nodes with the
      largest healing obligations;
    - [Articulation]: a cut vertex of the current graph when one exists
      (most damaging against non-healing baselines);
    - [Max_betweenness]: the node carrying most shortest paths — a greedy
      proxy for maximising stretch;
    - [Max_healing_degree]: the node with the largest [deg_G - deg_G'] —
      it carries the most healing edges (helper simulations), so deleting
      it attacks the repair mechanism itself;
    - [Oldest]: smallest id — deterministic sweep, maximises RT merging. *)
type deletion =
  | Random
  | Max_degree
  | Max_gprime_degree
  | Articulation
  | Max_betweenness
  | Max_healing_degree
  | Oldest

(** Insertion strategies: pick the neighbour set for a new node.

    - [Attach_random k]: k uniform live nodes;
    - [Attach_preferential k]: k live nodes degree-proportionally (grows
      power-law G');
    - [Attach_chain]: the most recently inserted node (grows a path —
      maximises G' distances, stressing the stretch bound);
    - [Attach_far k]: greedily distance-separated targets (first node,
      then repeatedly the farthest from those chosen) — manufactures
      long-range shortcuts whose loss is expensive;
    - [Attach_hub victim]: always the same victim while it lives
      (manufactures a star for the Theorem 2 attack). *)
type insertion =
  | Attach_random of int
  | Attach_preferential of int
  | Attach_chain
  | Attach_far of int
  | Attach_hub of Node_id.t

val deletion_name : deletion -> string
val deletion_of_name : string -> deletion
val deletion_names : string list

(** [pick_victim strategy rng healer] selects a live node to delete. *)
val pick_victim : deletion -> Fg_graph.Rng.t -> Fg_baselines.Healer.t -> Node_id.t option

(** [pick_neighbors strategy rng healer ~last_inserted] selects attachment
    targets for the next insertion (non-empty if any node is live). *)
val pick_neighbors :
  insertion ->
  Fg_graph.Rng.t ->
  Fg_baselines.Healer.t ->
  last_inserted:Node_id.t option ->
  Node_id.t list
