lib/adversary/adversary.mli: Fg_baselines Fg_graph
