lib/adversary/adversary.ml: Array Fg_baselines Fg_graph List Option
