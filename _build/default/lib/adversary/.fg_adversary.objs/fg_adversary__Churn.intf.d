lib/adversary/churn.mli: Adversary Fg_baselines Fg_graph Format
