lib/adversary/churn.ml: Adversary Fg_baselines Fg_graph Format List
