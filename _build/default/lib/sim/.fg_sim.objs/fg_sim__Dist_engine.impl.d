lib/sim/dist_engine.ml: Dist_protocol Dist_state Fg_core Fg_graph List Printf
