lib/sim/dist_state.ml: Fg_core Fg_graph Format List Option Printf Vref
