lib/sim/dist_state.mli: Fg_core Fg_graph Vref
