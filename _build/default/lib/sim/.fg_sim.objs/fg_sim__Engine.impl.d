lib/sim/engine.ml: Fg_core Fg_graph Format List Netsim Protocol
