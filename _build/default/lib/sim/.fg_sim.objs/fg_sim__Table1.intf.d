lib/sim/table1.mli: Fg_core Fg_graph Format Vref
