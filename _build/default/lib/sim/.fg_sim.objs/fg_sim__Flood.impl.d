lib/sim/flood.ml: Fg_graph List Netsim
