lib/sim/netsim.ml: Fg_graph Hashtbl List Option Printf
