lib/sim/engine.mli: Fg_core Fg_graph Format
