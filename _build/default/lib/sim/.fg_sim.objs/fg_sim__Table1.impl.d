lib/sim/table1.ml: Fg_core Fg_graph Hashtbl List Option Printf Set String Vref
