lib/sim/netsim.mli: Fg_graph
