lib/sim/flood.mli: Fg_graph
