lib/sim/protocol.ml: Array Fg_core List Netsim Option
