lib/sim/dist_engine.mli: Dist_state Fg_core Fg_graph Netsim
