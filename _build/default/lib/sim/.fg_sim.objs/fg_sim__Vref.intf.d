lib/sim/vref.mli: Fg_core Fg_graph Format Hashtbl Set
