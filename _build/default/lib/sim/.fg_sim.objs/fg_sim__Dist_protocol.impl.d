lib/sim/dist_protocol.ml: Dist_state Fg_core Fg_graph Format Hashtbl List Netsim Option Printf Protocol Vref
