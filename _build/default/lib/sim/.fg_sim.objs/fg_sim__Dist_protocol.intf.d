lib/sim/dist_protocol.mli: Dist_state Fg_graph Netsim
