lib/sim/protocol.mli: Fg_core Netsim
