lib/sim/vref.ml: Fg_core Fg_graph Format Hashtbl Set
