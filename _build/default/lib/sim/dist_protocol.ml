module Node_id = Fg_graph.Node_id
module Edge = Fg_core.Edge
module St = Dist_state

(* a primary-root entry as exchanged in root lists: address, leaf count,
   height, representative *)
type entry = { e_root : Vref.t; e_size : int; e_height : int; e_rep : Vref.t }

type msg =
  | Notify_new_leaf of { edge : Edge.t }
  | Notify_removed_parent of { at : Vref.t }
  | Notify_removed_child of { at : Vref.t; child : Vref.t; delta : int }
  | Correct of { at : Vref.t; delta : int }
  | Fragment_ready of { root : Vref.t }
  | Strip_cmd of { uid : int; root : Vref.t }
  | Strip_visit of { uid : int; at : Vref.t; anchor : Node_id.t }
  | Primary_root of { uid : int; entry : entry }
  | Send_list_to of { uid : int; parent_uid : int; parent_anchor : Node_id.t }
  | Self_merge of { uid : int }
  | Root_list of { parent_uid : int; entries : entry list }
  | Make_helper of {
      at : Vref.t;  (* the helper to instantiate: Helper (proc, edge) *)
      parent : Vref.t option;
          (* known at blueprint time when the consuming join is in the same
             burst; None for the final root. Carrying it here removes the
             Set_parent/Make_helper reordering race under asynchrony. *)
      left : Vref.t;
      right : Vref.t;
      height : int;
      count : int;
      rep : Vref.t;
      reply_to : Node_id.t;
      uid : int;
    }
  | Set_parent of { at : Vref.t; parent : Vref.t option; reply_to : Node_id.t; uid : int }
  | Ack of { uid : int }
  | Merge_done of { uid : int; new_root : Vref.t }

(* ---- ComputeHaft blueprint (A.9), computed locally by a parent anchor
   from the sorted entry list; pure function of the entries ---- *)

type join = {
  j_new : Vref.t;
  j_left : entry;
  j_right : entry;
  j_height : int;
  j_count : int;
  j_rep : Vref.t;
}

let entry_order a b =
  let c = compare a.e_size b.e_size in
  if c <> 0 then c else Vref.compare a.e_root b.e_root

let compute_haft entries =
  let joins = ref [] in
  let join_equal a b =
    (* simulator = rep of the first; rep inherited from the second *)
    let sim = a.e_rep in
    let j =
      {
        j_new = Vref.helper sim.Vref.proc sim.Vref.edge;
        j_left = a;
        j_right = b;
        j_height = 1 + max a.e_height b.e_height;
        j_count = a.e_size + b.e_size;
        j_rep = b.e_rep;
      }
    in
    joins := j :: !joins;
    { e_root = j.j_new; e_size = j.j_count; e_height = j.j_height; e_rep = j.j_rep }
  in
  let join_chain ~big ~small =
    let sim = big.e_rep in
    let j =
      {
        j_new = Vref.helper sim.Vref.proc sim.Vref.edge;
        j_left = big;
        j_right = small;
        j_height = 1 + max big.e_height small.e_height;
        j_count = big.e_size + small.e_size;
        j_rep = small.e_rep;
      }
    in
    joins := j :: !joins;
    { e_root = j.j_new; e_size = j.j_count; e_height = j.j_height; e_rep = j.j_rep }
  in
  let sorted = List.sort entry_order entries in
  (* binary-addition fold with carries *)
  let rec add t = function
    | [] -> [ t ]
    | hd :: tl ->
      if t.e_size < hd.e_size then t :: hd :: tl
      else if t.e_size = hd.e_size then add (join_equal t hd) tl
      else hd :: add t tl
  in
  let summed = List.fold_left (fun acc t -> add t acc) [] sorted in
  let root =
    match summed with
    | [] -> invalid_arg "compute_haft: empty"
    | smallest :: rest ->
      List.fold_left (fun acc t -> join_chain ~big:t ~small:acc) smallest rest
  in
  (List.rev !joins, root)

(* ---- coordinator ---- *)

type unit_status =
  | Fragment of Vref.t  (** a level-0 fragment root: strip before anything *)
  | Merged of Vref.t  (** a proper haft from a completed merge *)
  | Listed  (** root list ready at the anchor *)

type cunit = { uid : int; anchor : Node_id.t; mutable status : unit_status }

type coord_phase =
  | Collecting
  | Stripping
  | Merging of { mutable pending : int }
  | Done

type coord = {
  mutable units : cunit list;  (* current level *)
  mutable phase : coord_phase;
  mutable next_uid : int;
  mutable seen_roots : Vref.Set.t;  (* fragment-root dedup *)
}

let phase_name = function
  | Collecting -> "collect"
  | Stripping -> "strip"
  | Merging m -> Printf.sprintf "merge(%d)" m.pending
  | Done -> "done"

(* ---- the deletion protocol ---- *)

let delete ?(debug = fun (_ : string) -> ()) ?discipline st v ~n_seen =
  if not (St.is_alive st v) then invalid_arg "Dist_protocol.delete: not alive";
  let rb = Protocol.ref_bits n_seen in
  let net = Netsim.create ?discipline () in
  let send ~bits ~src ~dst m = Netsim.send net ~bits ~src ~dst m in
  (* ---- oracle: notifications from v's own rows (distance-1 facts) ---- *)
  let v_rows = St.rows st v in
  let nset = ref Node_id.Set.empty in
  let notifications = ref [] in
  let notify target m =
    if not (Node_id.equal target v) then begin
      nset := Node_id.Set.add target !nset;
      notifications := (target, m) :: !notifications
    end
  in
  let scan (f : St.fields) =
    let other = Edge.other f.St.edge v in
    if not f.St.other_dead then notify other (Notify_new_leaf { edge = f.St.edge })
    else begin
      (* v's leaf for this edge disappears *)
      match f.St.endpoint with
      | Some p when not (Node_id.equal p.Vref.proc v) ->
        notify p.Vref.proc
          (Notify_removed_child { at = p; child = Vref.real v f.St.edge; delta = 1 })
      | _ -> ()
    end;
    if f.St.has_helper then begin
      (match f.St.h_parent with
      | Some p when not (Node_id.equal p.Vref.proc v) ->
        notify p.Vref.proc
          (Notify_removed_child
             { at = p; child = Vref.helper v f.St.edge; delta = f.St.h_count })
      | _ -> ());
      let orphan = function
        | Some (c : Vref.t) when not (Node_id.equal c.Vref.proc v) ->
          notify c.Vref.proc (Notify_removed_parent { at = c })
        | _ -> ()
      in
      orphan f.St.h_left;
      orphan f.St.h_right
    end
  in
  List.iter scan v_rows;
  St.drop_processor st v;
  if !notifications = [] then
    (* isolated node: nothing to repair *)
    Netsim.run net ~handler:(fun ~src:_ ~dst:_ ~bits:_ _ -> ()) ~max_rounds:1
  else begin
    let coordinator = Node_id.Set.min_elt !nset in
    let coord =
      { units = []; phase = Collecting; next_uid = 0; seen_roots = Vref.Set.empty }
    in
    (* per-unit anchor scratch, keyed by the opaque unit id (a unit's root
       vref is NOT a stable identifier: a later merge may re-create a
       helper in a previously discarded (proc, edge) slot) *)
    let lists : (int, entry list ref) Hashtbl.t = Hashtbl.create 8 in
    let list_of uid =
      match Hashtbl.find_opt lists uid with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace lists uid l;
        l
    in
    let acks : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let new_roots : (int, Vref.t) Hashtbl.t = Hashtbl.create 8 in
    (* ---- helpers over local rows ---- *)
    let local_node (r : Vref.t) =
      match St.find st r.Vref.proc r.Vref.edge with
      | None -> None
      | Some f -> (
        match r.Vref.kind with
        | Vref.Real -> if f.St.other_dead then Some f else None
        | Vref.Helper -> if f.St.has_helper then Some f else None)
    in
    let node_parent (r : Vref.t) (f : St.fields) =
      match r.Vref.kind with Vref.Real -> f.St.endpoint | Vref.Helper -> f.St.h_parent
    in
    let set_node_parent (r : Vref.t) (f : St.fields) p =
      match r.Vref.kind with
      | Vref.Real -> f.St.endpoint <- p
      | Vref.Helper -> f.St.h_parent <- p
    in
    let node_complete (r : Vref.t) (f : St.fields) =
      match r.Vref.kind with
      | Vref.Real -> true
      | Vref.Helper -> f.St.h_count = 1 lsl f.St.h_height
    in
    let node_entry (r : Vref.t) (f : St.fields) =
      match r.Vref.kind with
      | Vref.Real -> { e_root = r; e_size = 1; e_height = 0; e_rep = r }
      | Vref.Helper ->
        {
          e_root = r;
          e_size = f.St.h_count;
          e_height = f.St.h_height;
          e_rep = Option.get f.St.h_rep;
        }
    in
    let fragment_ready root =
      send ~bits:(3 * rb) ~src:root.Vref.proc ~dst:coordinator (Fragment_ready { root })
    in
    (* the ComputeHaft instantiation burst shared by Root_list/Self_merge *)
    let instantiate ~anchor ~uid entries =
      match entries with
      | [ single ] ->
        send ~bits:(6 * rb) ~src:anchor ~dst:coordinator
          (Merge_done { uid; new_root = single.e_root })
      | _ ->
        let joins, root = compute_haft entries in
        Hashtbl.replace new_roots uid root.e_root;
        (* a join child that is itself a join's product gets its parent via
           its own Make_helper; only pre-existing roots need Set_parent *)
        let made = Vref.Tbl.create 8 in
        List.iter (fun j -> Vref.Tbl.replace made j.j_new ()) joins;
        let parent_tbl = Vref.Tbl.create 8 in
        List.iter
          (fun j ->
            Vref.Tbl.replace parent_tbl j.j_left.e_root j.j_new;
            Vref.Tbl.replace parent_tbl j.j_right.e_root j.j_new)
          joins;
        let pending = ref 0 in
        let messages = ref [] in
        List.iter
          (fun j ->
            incr pending;
            messages :=
              ( j.j_new.Vref.proc,
                13 * rb,
                Make_helper
                  {
                    at = j.j_new;
                    parent = Vref.Tbl.find_opt parent_tbl j.j_new;
                    left = j.j_left.e_root;
                    right = j.j_right.e_root;
                    height = j.j_height;
                    count = j.j_count;
                    rep = j.j_rep;
                    reply_to = anchor;
                    uid;
                  } )
              :: !messages;
            let set_parent_for child =
              if not (Vref.Tbl.mem made child) then begin
                incr pending;
                messages :=
                  ( child.Vref.proc,
                    7 * rb,
                    Set_parent { at = child; parent = Some j.j_new; reply_to = anchor; uid }
                  )
                  :: !messages
              end
            in
            set_parent_for j.j_left.e_root;
            set_parent_for j.j_right.e_root)
          joins;
        Hashtbl.replace acks uid !pending;
        List.iter (fun (dst, bits, m) -> send ~bits ~src:anchor ~dst m) (List.rev !messages)
    in
    (* ---- per-processor message handlers ---- *)
    let handle_proc ~dst msg =
      match msg with
      | Notify_new_leaf { edge } ->
        let f = St.get st dst edge in
        f.St.other_dead <- true;
        f.St.endpoint <- None;
        fragment_ready (Vref.real dst edge)
      | Notify_removed_parent { at } -> (
        match local_node at with
        | None -> ()
        | Some f ->
          set_node_parent at f None;
          fragment_ready at)
      | Notify_removed_child { at; child; delta } -> (
        match local_node at with
        | None -> ()
        | Some f ->
          (match f.St.h_left with
          | Some c when Vref.equal c child -> f.St.h_left <- None
          | _ -> ());
          (match f.St.h_right with
          | Some c when Vref.equal c child -> f.St.h_right <- None
          | _ -> ());
          f.St.h_count <- f.St.h_count - delta;
          (match node_parent at f with
          | None -> fragment_ready at
          | Some p when Node_id.equal p.Vref.proc v -> () (* parent dying too *)
          | Some p ->
            send ~bits:(4 * rb) ~src:dst ~dst:p.Vref.proc (Correct { at = p; delta })))
      | Correct { at; delta } -> (
        match local_node at with
        | None -> ()
        | Some f ->
          f.St.h_count <- f.St.h_count - delta;
          (match node_parent at f with
          | None -> fragment_ready at
          | Some p when Node_id.equal p.Vref.proc v -> ()
          | Some p ->
            send ~bits:(4 * rb) ~src:dst ~dst:p.Vref.proc (Correct { at = p; delta })))
      | Strip_cmd { uid; root } ->
        (list_of uid) := [];
        send ~bits:(4 * rb) ~src:dst ~dst:root.Vref.proc
          (Strip_visit { uid; at = root; anchor = dst })
      | Strip_visit { uid; at; anchor } -> (
        match local_node at with
        | None -> ()
        | Some f ->
          (* detach from the (red or absent) parent *)
          set_node_parent at f None;
          if node_complete at f then
            send ~bits:(7 * rb) ~src:dst ~dst:anchor
              (Primary_root { uid; entry = node_entry at f })
          else begin
            (* red helper: discard and descend *)
            let l = f.St.h_left and r = f.St.h_right in
            f.St.has_helper <- false;
            f.St.h_parent <- None;
            f.St.h_left <- None;
            f.St.h_right <- None;
            f.St.h_height <- 0;
            f.St.h_count <- 0;
            f.St.h_rep <- None;
            let visit = function
              | Some (c : Vref.t) ->
                send ~bits:(4 * rb) ~src:dst ~dst:c.Vref.proc
                  (Strip_visit { uid; at = c; anchor })
              | None -> ()
            in
            visit l;
            visit r
          end)
      | Primary_root { uid; entry } ->
        let l = list_of uid in
        l := entry :: !l
      | Send_list_to { uid; parent_uid; parent_anchor } ->
        let entries = !(list_of uid) in
        send
          ~bits:((1 + (3 * List.length entries)) * 2 * rb)
          ~src:dst ~dst:parent_anchor
          (Root_list { parent_uid; entries })
      | Self_merge { uid } -> instantiate ~anchor:dst ~uid !(list_of uid)
      | Root_list { parent_uid; entries } ->
        (* I am the parent anchor: combine with my own list *)
        instantiate ~anchor:dst ~uid:parent_uid (!(list_of parent_uid) @ entries)
      | Make_helper { at; parent; left; right; height; count; rep; reply_to; uid } ->
        let f = St.get st at.Vref.proc at.Vref.edge in
        assert (not f.St.has_helper);
        f.St.has_helper <- true;
        f.St.h_parent <- parent;
        f.St.h_left <- Some left;
        f.St.h_right <- Some right;
        f.St.h_height <- height;
        f.St.h_count <- count;
        f.St.h_rep <- Some rep;
        send ~bits:rb ~src:dst ~dst:reply_to (Ack { uid })
      | Set_parent { at; parent; reply_to; uid } ->
        (match local_node at with
        | Some f -> set_node_parent at f parent
        | None -> ());
        send ~bits:rb ~src:dst ~dst:reply_to (Ack { uid })
      | Ack { uid } -> (
        match Hashtbl.find_opt acks uid with
        | None -> ()
        | Some 1 ->
          Hashtbl.remove acks uid;
          let new_root = Hashtbl.find new_roots uid in
          send ~bits:(6 * rb) ~src:dst ~dst:coordinator (Merge_done { uid; new_root })
        | Some k -> Hashtbl.replace acks uid (k - 1))
      | Fragment_ready _ | Merge_done _ -> assert false (* coordinator messages *)
    in
    let handle_coord msg =
      match msg with
      | Fragment_ready { root } ->
        debug
          (Format.asprintf "fragment_ready %a (phase %s)" Vref.pp root
             (phase_name coord.phase));
        if not (Vref.Set.mem root coord.seen_roots) then begin
          coord.seen_roots <- Vref.Set.add root coord.seen_roots;
          let uid = coord.next_uid in
          coord.next_uid <- uid + 1;
          let status =
            (* a Real-rooted fragment is necessarily a singleton complete
               tree; the coordinator seeds its entry list itself *)
            if root.Vref.kind = Vref.Real then begin
              (list_of uid) :=
                [ { e_root = root; e_size = 1; e_height = 0; e_rep = root } ];
              Listed
            end
            else Fragment root
          in
          coord.units <- { uid; anchor = root.Vref.proc; status } :: coord.units
        end
      | Merge_done { uid; new_root } -> (
        debug (Format.asprintf "merge_done uid %d -> %a" uid Vref.pp new_root);
        (match coord.phase with
        | Merging m -> m.pending <- m.pending - 1
        | _ -> ());
        match List.find_opt (fun u -> u.uid = uid) coord.units with
        | Some u -> u.status <- Merged new_root
        | None -> assert false)
      | _ -> assert false
    in
    let handler ~src:_ ~dst ~bits:_ msg =
      if Node_id.equal dst coordinator then begin
        match msg with
        | Fragment_ready _ | Merge_done _ -> handle_coord msg
        | _ -> handle_proc ~dst msg
      end
      else handle_proc ~dst msg
    in
    (* ---- coordinator phase machine, advanced at quiescence ----

       Fragments always strip before participating. Merged units are
       proper hafts: alone they end the repair; paired they are stripped
       again first (removing the red joining helpers, Fig. 7). *)
    let issue_strips units =
      let stripped = ref false in
      List.iter
        (fun u ->
          match u.status with
          | Fragment root | Merged root ->
            stripped := true;
            u.status <- Listed;
            send ~bits:(4 * rb) ~src:coordinator ~dst:u.anchor
              (Strip_cmd { uid = u.uid; root })
          | Listed -> ())
        units;
      !stripped
    in
    let advance () =
      debug
        (Printf.sprintf "advance: %d units, phase %s" (List.length coord.units)
           (phase_name coord.phase));
      match coord.phase with
      | Done -> false
      | Stripping ->
        (* strips quiesced: plan merges next *)
        coord.phase <- Collecting;
        true
      | Collecting | Merging _ -> (
        (match coord.phase with
        | Merging m -> assert (m.pending = 0)
        | _ -> ());
        let units = List.sort (fun a b -> compare a.uid b.uid) coord.units in
        coord.units <- units;
        match units with
        | [] ->
          coord.phase <- Done;
          false
        | [ u ] -> (
          match u.status with
          | Merged _ ->
            (* a single proper haft: healing complete *)
            coord.phase <- Done;
            false
          | Fragment _ ->
            ignore (issue_strips [ u ]);
            coord.phase <- Stripping;
            true
          | Listed ->
            let entries = !(list_of u.uid) in
            if List.length entries <= 1 then begin
              coord.phase <- Done;
              false
            end
            else begin
              coord.phase <- Merging { pending = 1 };
              send ~bits:(4 * rb) ~src:coordinator ~dst:u.anchor
                (Self_merge { uid = u.uid });
              true
            end)
        | _ ->
          if issue_strips units then begin
            coord.phase <- Stripping;
            true
          end
          else begin
            (* all Listed: issue pairwise merges *)
            let rec pair acc = function
              | a :: b :: rest -> pair ((a, b) :: acc) rest
              | _ -> List.rev acc
            in
            let pairs = pair [] units in
            coord.phase <- Merging { pending = List.length pairs };
            List.iter
              (fun (p, c) ->
                send ~bits:(6 * rb) ~src:coordinator ~dst:c.anchor
                  (Send_list_to
                     { uid = c.uid; parent_uid = p.uid; parent_anchor = p.anchor });
                (* the child unit dissolves into the parent *)
                coord.units <- List.filter (fun w -> w.uid <> c.uid) coord.units)
              pairs;
            true
          end)
    in
    (* kick off: notifications; then alternate (run to quiescence, let the
       coordinator advance) until the repair completes *)
    List.iter
      (fun (target, m) -> send ~bits:(4 * rb) ~src:v ~dst:target m)
      (List.rev !notifications);
    let stats = ref (Netsim.run net ~handler ~max_rounds:200_000) in
    let guard = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      incr guard;
      if !guard > 10_000 then failwith "Dist_protocol.delete: no progress";
      continue_ := advance ();
      if !continue_ then stats := Netsim.run net ~handler ~max_rounds:200_000
    done;
    !stats
  end
