(** Table 1 of the paper: the per-processor, per-edge local state.

    Each processor [v] keeps, for every G'-edge [(v, x)], a record of
    fields (endpoint, hashelper, RTparent, and the helper's parent /
    children / height / childrencount / representative). The paper's
    algorithm runs on exactly this local state; this module materialises
    the fields from the centralized structure and proves — executable-ly —
    that they are {e complete}: the entire virtual forest can be
    reconstructed from the union of the local views alone
    ({!reconstruct_tree_edges} = the real forest, checked by
    {!check_complete}). The distributed tests run this after arbitrary
    churn, so any information the centralized implementation uses beyond
    Table 1 would be caught. *)

module Node_id := Fg_graph.Node_id
module Edge := Fg_core.Edge

(** Virtual-node addresses are shared with the distributed protocol. *)
type vref = Vref.t

val vref_equal : vref -> vref -> bool
val pp_vref : Format.formatter -> vref -> unit

(** One row of Table 1: processor [proc]'s fields for edge [(proc, x)]. *)
type fields = {
  owner : Node_id.t;
  edge : Edge.t;
  endpoint : vref option;
      (** other end: real [x] if alive, the RT parent vnode otherwise;
          [None] while no attachment exists (both endpoints live). *)
  has_helper : bool;
  hparent : vref option;
  hleftchild : vref option;
  hrightchild : vref option;
  h_height : int;
  h_childrencount : int;
  h_representative : vref option;  (** a [`Real] vref *)
}

type t

(** [of_fg fg] captures every live processor's Table-1 rows. *)
val of_fg : Fg_core.Forgiving_graph.t -> t

(** [rows t p] lists processor [p]'s rows (one per incident G'-edge). *)
val rows : t -> Node_id.t -> fields list

(** [reconstruct_tree_edges t] rebuilds the set of virtual tree edges
    (parent, child) purely from the local views, deduplicated. *)
val reconstruct_tree_edges : t -> (vref * vref) list

(** [check_complete t fg] verifies the reconstruction matches the actual
    virtual forest exactly, and that symmetric fields agree across
    processors (a child's [hparent]/[endpoint] names the parent that names
    it). Returns human-readable violations ([] = complete & consistent). *)
val check_complete : t -> Fg_core.Forgiving_graph.t -> string list
