(** The fully distributed repair (Algorithms A.1–A.9), executed by
    per-processor state machines over the synchronous kernel.

    Unlike {!Protocol} (which replays a centrally computed trace for cost
    accounting), here every structural decision is taken inside a message
    handler using only the receiving processor's Table-1 fields plus the
    message contents:

    + {b notify} — the dying processor's direct virtual neighbours learn
      of the deletion, with the one-hop facts they already mirror
      (neighbour-of-neighbour maintenance, Section 2): which shared vnode
      died and its subtree count. Orphaned vnodes clear their parent
      pointers and become fragment roots; parents of removed vnodes clear
      the child pointer and launch a {b correction wave} that walks to
      their fragment root subtracting the lost childrencount (the
      Breakflag bookkeeping of A.5);
    + every fragment root reports to the {b coordinator} — the smallest
      notified processor, which all of Nset can name locally; it arranges
      the fragments and fresh leaves into BT_v and drives the bottom-up
      pairwise reduction of Fig. 7;
    + per merge: {b strip} — a message-driven DFS from the unit root
      discards red helpers and reports the maximal complete subtrees
      (correct by construction: counts only ever decrease, so a stale
      height can never make a broken subtree look complete);
      {b exchange} — the child anchor ships its primary-root list to the
      parent anchor, which computes the ComputeHaft blueprint locally and
      sends one instantiation message per new helper and parent-pointer
      update, acknowledged by the owners.

    The only simulation artifact is phase advancement: the engine starts
    the next sub-phase when the network is quiescent, standing in for a
    standard echo-based termination detection (constant-factor cost). The
    resulting per-processor fields are verified by {!Dist_state.check} and
    compared against the centralized implementation's leaf partition. *)

module Node_id := Fg_graph.Node_id

(** [delete st v ~n_seen] runs the distributed repair for the deletion of
    [v], mutating the per-processor fields, and returns the kernel's
    measured cost. [n_seen] sizes message references. [discipline] selects
    delivery semantics — the protocol is correct under asynchronous,
    order-scrambling delivery too (messages within a repair commute:
    corrections are additive, strip is tree-structured, instantiation is
    acknowledged). Raises [Invalid_argument] if [v] is not alive. *)
val delete :
  ?debug:(string -> unit) ->
  ?discipline:Netsim.discipline ->
  Dist_state.t ->
  Node_id.t ->
  n_seen:int ->
  Netsim.stats
