(** Flooding broadcast with echo over an arbitrary topology — a demo
    protocol exercising the {!Netsim} kernel on real graphs, and the
    building block the repair protocol's notification phase abstracts.

    The root sends a token to its neighbours; every node forwards on first
    receipt and then echoes completion up the induced BFS tree. Costs are
    the classic ones: broadcast takes [eccentricity(root)] rounds and one
    message per directed edge; echo doubles the rounds. *)

type result = {
  reached : int;  (** nodes that received the token *)
  broadcast_rounds : int;  (** rounds until the last node was reached *)
  total_rounds : int;  (** including the echo phase *)
  messages : int;
  total_bits : int;
}

(** [broadcast ?payload_bits g ~root] floods from [root]; raises
    [Invalid_argument] if [root] is not in [g]. *)
val broadcast : ?payload_bits:int -> Fg_graph.Adjacency.t -> root:Fg_graph.Node_id.t -> result
