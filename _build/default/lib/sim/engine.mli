(** Distributed Forgiving Graph: the self-healing structure driven through
    the message-passing substrate, with per-deletion cost measurement.

    Wraps a {!Fg_core.Forgiving_graph.t}; every {!delete} performs the
    repair and replays it through the synchronous network
    ({!Protocol.replay}), returning the measured cost — the quantities
    bounded by Theorem 1.3: recovery rounds, message count, total and
    per-message bits, and the maximum per-node communication. *)

module Node_id := Fg_graph.Node_id

type t

(** Measured cost of one deletion's repair. *)
type cost = {
  deleted : Node_id.t;
  deleted_degree : int;  (** degree of the deleted node in [G'] *)
  n_seen : int;  (** nodes ever seen at deletion time *)
  anchors : int;  (** BT_v size (fragments + fresh leaves) *)
  rounds : int;  (** recovery time, unit edge latency *)
  messages : int;
  total_bits : int;
  max_message_bits : int;
  max_agent_bits : int;  (** communication per node (bits) *)
  max_agent_messages : int;
}

(** [create g] starts from initial network [g] (all nodes live). *)
val create : Fg_graph.Adjacency.t -> t

val insert : t -> Node_id.t -> Node_id.t list -> unit

(** [delete t v] deletes, heals, and measures. *)
val delete : t -> Node_id.t -> cost

(** The underlying structure (graph, G', invariants...). *)
val fg : t -> Fg_core.Forgiving_graph.t

(** All deletion costs so far, in chronological order. *)
val costs : t -> cost list

val pp_cost : Format.formatter -> cost -> unit
