module Rt = Fg_core.Rt

let ref_bits n =
  let n = max 2 n in
  let rec go p b = if p >= n then b else go (2 * p) (b + 1) in
  max 1 (go 1 0)

(* ---- agent naming ---- *)

let oracle = 0
let anchor_agent i = 1 + i
let neighbor_agent k j = 1 + k + j
let tree_agent i = 100_000 + i
let helper_agent ~level ~event = 1_000_000 + (level * 1_000) + event

(* ---- messages ---- *)

type msg =
  | Notify  (** deletion announcement *)
  | Connect  (** BT_v link-up *)
  | Probe of { level : int; event : int; side : [ `P | `C ]; remaining : int }
  | Confirm of { level : int; event : int; side : [ `P | `C ] }
      (** a primary root reporting back to its anchor *)
  | Root_list of { level : int; event : int; entries : int }
  | Merge_plan of { level : int; event : int }
  | Make_helper of { level : int; event : int }
  | Helper_ack of { level : int; event : int }
  | Discard  (** remove a red helper *)
  | Inform_root  (** A-to-R: tell a new primary root its role *)

(* ---- replay bookkeeping (the simulated "omniscient scheduler": all
   decisions were taken in Rt.heal; here we only route the corresponding
   messages and wait for causality) ---- *)

type event_state = {
  ev : Rt.merge_event;
  parent : int;  (* anchor index *)
  child : int option;
  mutable parent_confirms : int;  (* confirmations still awaited *)
  mutable child_confirms : int;
  mutable child_list : bool;  (* parent received child's root list *)
  mutable merge_sent : bool;  (* plan/instantiation messages dispatched *)
  mutable acks : int;  (* helper instantiation acks awaited *)
  mutable finished : bool;
}

type level_state = {
  events : event_state array;
  mutable unfinished : int;
}

let popcount n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
  go n 0

(* Build the per-level pairing of anchors exactly as Rt.btv_reduce does:
   adjacent pairs merge, an odd trailing unit passes through. *)
let build_levels (trace : Rt.heal_trace) =
  let anchors0 = List.init trace.ht_anchors (fun i -> i) in
  let rec build anchors levels =
    match levels with
    | [] -> []
    | evs :: rest ->
      let evs = Array.of_list evs in
      let paired = ref [] and next = ref [] in
      let make_state ev ~parent ~child =
        {
          ev;
          parent;
          child;
          parent_confirms = List.length ev.Rt.me_left_sizes;
          child_confirms = List.length ev.Rt.me_right_sizes;
          child_list = ev.Rt.me_right_sizes = [];
          merge_sent = false;
          acks = ev.Rt.me_created;
          finished = false;
        }
      in
      let rec pair idx = function
        | a :: b :: tl ->
          assert (idx < Array.length evs);
          let ev = evs.(idx) in
          let child = if ev.Rt.me_right_sizes = [] then None else Some b in
          paired := make_state ev ~parent:a ~child :: !paired;
          next := a :: !next;
          pair (idx + 1) tl
        | [ a ] ->
          (* trailing odd unit: passthrough, or a self-merge event when it
             is the only unit (single-fragment repair) *)
          if idx < Array.length evs then
            paired := make_state evs.(idx) ~parent:a ~child:None :: !paired;
          next := a :: !next
        | [] -> ()
      in
      pair 0 anchors;
      let lvl = { events = Array.of_list (List.rev !paired); unfinished = 0 } in
      lvl.unfinished <- Array.length lvl.events;
      lvl :: build (List.rev !next) rest
  in
  build anchors0 trace.ht_levels

let replay ~(trace : Rt.heal_trace) ~n_seen =
  let rb = ref_bits n_seen in
  let net = Netsim.create () in
  let levels = Array.of_list (build_levels trace) in
  let k = trace.ht_anchors in
  let send = Netsim.send net in

  (* probe phase for one side of one event *)
  let start_probe ~level ~event ~side =
    let st = levels.(level).events.(event) in
    let anchor_idx, height =
      match side with
      | `P -> (st.parent, st.ev.Rt.me_left_height)
      | `C -> (Option.get st.child, st.ev.Rt.me_right_height)
    in
    send ~bits:(2 * rb) ~src:(anchor_agent anchor_idx) ~dst:(tree_agent anchor_idx)
      (Probe { level; event; side; remaining = height })
  in

  let start_level level =
    if level < Array.length levels then begin
      let lvl = levels.(level) in
      if Array.length lvl.events = 0 then ()
      else
        Array.iteri
          (fun event st ->
            start_probe ~level ~event ~side:`P;
            if st.child <> None then start_probe ~level ~event ~side:`C)
          lvl.events
    end
  in

  let maybe_finish_level level =
    let lvl = levels.(level) in
    if lvl.unfinished = 0 then start_level (level + 1)
  in

  (* parent proceeds once its own probe is done and the child list arrived *)
  let maybe_merge ~level ~event =
    let st = levels.(level).events.(event) in
    if st.parent_confirms = 0 && st.child_list && not st.merge_sent then begin
      st.merge_sent <- true;
      let p = anchor_agent st.parent in
      (* plan back to the child anchor *)
      (match st.child with
      | Some c ->
        let entries =
          List.length st.ev.Rt.me_left_sizes + List.length st.ev.Rt.me_right_sizes
        in
        send ~bits:((1 + entries) * 2 * rb) ~src:p ~dst:(anchor_agent c)
          (Merge_plan { level; event })
      | None -> ());
      (* instantiate helpers at their representatives *)
      for _ = 1 to st.ev.Rt.me_created do
        send ~bits:(4 * rb) ~src:p
          ~dst:(helper_agent ~level ~event)
          (Make_helper { level; event })
      done;
      (* discard red helpers *)
      for _ = 1 to st.ev.Rt.me_discarded do
        send ~bits:rb ~src:p ~dst:(tree_agent st.parent) Discard
      done;
      (* A-to-R: inform the new primary roots *)
      let total =
        List.fold_left ( + ) 0 st.ev.Rt.me_left_sizes
        + List.fold_left ( + ) 0 st.ev.Rt.me_right_sizes
      in
      let new_roots = if total = 0 then 0 else popcount total in
      for _ = 1 to new_roots do
        send ~bits:(new_roots * 2 * rb) ~src:p ~dst:(tree_agent st.parent) Inform_root
      done;
      if st.ev.Rt.me_created = 0 then begin
        st.finished <- true;
        levels.(level).unfinished <- levels.(level).unfinished - 1;
        maybe_finish_level level
      end
    end
  in

  let handler ~src ~dst ~bits:_ msg =
    match msg with
    | Notify | Connect | Merge_plan _ | Discard | Inform_root -> ()
    | Probe { level; event; side; remaining } ->
      if remaining > 0 then
        (* walk one more hop down the right spine *)
        send ~bits:(2 * rb) ~src:dst ~dst
          (Probe { level; event; side; remaining = remaining - 1 })
      else begin
        (* primary roots confirm back to the anchor *)
        let st = levels.(level).events.(event) in
        let anchor_idx, confirms =
          match side with
          | `P -> (st.parent, st.parent_confirms)
          | `C -> (Option.get st.child, st.child_confirms)
        in
        for _ = 1 to max 1 confirms do
          send ~bits:rb ~src:dst ~dst:(anchor_agent anchor_idx)
            (Confirm { level; event; side })
        done
      end
    | Confirm { level; event; side } -> (
      let st = levels.(level).events.(event) in
      match side with
      | `P ->
        st.parent_confirms <- max 0 (st.parent_confirms - 1);
        if st.parent_confirms = 0 then maybe_merge ~level ~event
      | `C ->
        st.child_confirms <- max 0 (st.child_confirms - 1);
        if st.child_confirms = 0 then begin
          (* child ships its primary-root list up to the parent *)
          let c = Option.get st.child in
          let entries = List.length st.ev.Rt.me_right_sizes in
          send
            ~bits:((1 + entries) * 2 * rb)
            ~src:(anchor_agent c) ~dst:(anchor_agent st.parent)
            (Root_list { level; event; entries })
        end)
    | Root_list { level; event; _ } ->
      let st = levels.(level).events.(event) in
      st.child_list <- true;
      maybe_merge ~level ~event
    | Make_helper { level; event } ->
      send ~bits:rb ~src:dst ~dst:src (Helper_ack { level; event })
    | Helper_ack { level; event } ->
      let st = levels.(level).events.(event) in
      st.acks <- st.acks - 1;
      if st.acks = 0 && not st.finished then begin
        st.finished <- true;
        levels.(level).unfinished <- levels.(level).unfinished - 1;
        maybe_finish_level level
      end
  in

  (* round 1: notification of all virtual neighbours; the first k notified
     are the anchors, which then link up BT_v and start probing *)
  for j = 0 to trace.ht_notified - 1 do
    send ~bits:rb ~src:oracle ~dst:(neighbor_agent k j) Notify
  done;
  for i = 0 to k - 2 do
    send ~bits:rb ~src:(anchor_agent i) ~dst:(anchor_agent (i + 1)) Connect
  done;
  start_level 0;
  Netsim.run net ~handler ~max_rounds:100_000
