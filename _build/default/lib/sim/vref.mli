(** Virtual-node addresses, as processors name them in messages.

    A virtual node is identified by its owning processor, the G'-edge it
    is scoped to, and whether it is the real (leaf) node or the helper for
    that edge — exactly the information Table 1 fields carry. One address
    costs three node references (O(log n) bits). *)

module Node_id := Fg_graph.Node_id
module Edge := Fg_core.Edge

type kind = Real | Helper

type t = { proc : Node_id.t; edge : Edge.t; kind : kind }

val real : Node_id.t -> Edge.t -> t
val helper : Node_id.t -> Edge.t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** [of_vnode v] addresses a centralized vnode. *)
val of_vnode : Fg_core.Rt.vnode -> t

module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
