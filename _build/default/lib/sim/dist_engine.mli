(** Public driver for the fully distributed Forgiving Graph.

    Maintains the per-processor Table-1 state ({!Dist_state}) and runs
    every deletion through the message-level protocol
    ({!Dist_protocol.delete}). A centralized {!Fg_core.Forgiving_graph}
    shadows the same operation sequence so tests can compare: the RT leaf
    partitions must be identical (they are determined by the merge {e
    sets}, not the tie-breaks), while helper placement may differ — both
    must satisfy all bounds. *)

module Node_id := Fg_graph.Node_id

type t

val create : Fg_graph.Adjacency.t -> t
val insert : t -> Node_id.t -> Node_id.t list -> unit

(** [delete t v] runs the distributed repair; returns the measured cost. *)
val delete : t -> Node_id.t -> Netsim.stats

(** The healed network derived from the distributed fields. *)
val graph : t -> Fg_graph.Adjacency.t

val state : t -> Dist_state.t

(** The shadowing centralized structure (same operation history). *)
val reference : t -> Fg_core.Forgiving_graph.t

(** Full cross-checks: distributed structural validity
    ({!Dist_state.check}), leaf-partition equality with the centralized
    reference, and degree/connectivity bounds on the derived graph.
    Returns violations ([] = ok). *)
val verify : t -> string list
