(** Distributed repair protocol replay (Algorithms A.3–A.9).

    [replay ~trace ~n_seen] re-executes one deletion's repair as real
    message cascades through the synchronous kernel ({!Netsim}) and returns
    the measured costs. The message schedule follows the paper's phases:

    + {b notify}: every virtual neighbour of the deleted processor's vnodes
      learns of the deletion (Fig. 1 model);
    + {b BT_v formation}: the anchors (one per RT fragment plus one per
      fresh singleton leaf) link up into the merge tree — O(1) rounds;
    + per BT_v level, in parallel over sibling pairs: {b probe} — each
      anchor walks the right spine of its RT to find primary roots
      (FindPrRoots; one message per hop, one confirmation per primary
      root); {b exchange} — the child anchor ships its primary-root list
      to the parent, which computes ComputeHaft locally and replies with
      the merge plan; {b instantiate} — one message plus acknowledgement
      per helper created at a representative, one message per red helper
      discarded, and the new primary roots are informed (A-to-R messages).

    The structural decisions themselves were already taken by
    {!Fg_core.Rt.heal} (the trace records fragment sizes, spine heights,
    helpers created/discarded per merge); the replay turns them into the
    exact message/round/bit counts of the cost model in Lemma 4. Message
    payload sizes are multiples of [ceil(log2 n_seen)] bits — a vnode
    reference. *)

val replay : trace:Fg_core.Rt.heal_trace -> n_seen:int -> Netsim.stats

(** [ref_bits n] is the size of one vnode reference: [ceil(log2 n)],
    at least 1. *)
val ref_bits : int -> int
