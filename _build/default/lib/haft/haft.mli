(** Half-full trees (hafts), Section 4 of the paper.

    A haft is a rooted binary tree in which every internal node has exactly
    two children and the left child roots a {e complete} subtree containing
    at least half of the node's leaf descendants. Lemma 1 shows the shape of
    a haft is unique given its number of leaves [l], its depth is
    [ceil(log2 l)], and stripping [popcount l - 1] nodes decomposes it into
    the complete trees of [l]'s binary representation.

    This module is the pure, value-level form used for specification,
    property tests and experiments E1/E2. The self-healing core
    ({!Fg_core.Rt}) uses a mutable, identity-carrying variant of the same
    structure, and its tests cross-check shapes against this module. *)

type 'a t =
  | Leaf of 'a
  | Node of { left : 'a t; right : 'a t; leaves : int; height : int }

(** [leaf_count t] is the number of leaves. *)
val leaf_count : 'a t -> int

(** [height t] is the edge-length of the longest root-to-leaf path. *)
val height : 'a t -> int

(** [node l r] joins two trees under a fresh root (no haft check). *)
val node : 'a t -> 'a t -> 'a t

(** [is_complete t] holds iff [t] is a perfect binary tree
    ([leaf_count = 2^height]). *)
val is_complete : 'a t -> bool

(** [is_haft t] checks the haft property at every internal node. *)
val is_haft : 'a t -> bool

(** [leaves t] lists leaf values left to right. *)
val leaves : 'a t -> 'a list

(** [of_list xs] builds haft(l) over the given leaves in order.
    Raises [Invalid_argument] on the empty list. *)
val of_list : 'a list -> 'a t

(** [strip t] is the Strip operation: the forest of complete trees rooted
    at the primary roots of [t], in descending size — one tree per one-bit
    of [leaf_count t] (Lemma 2). *)
val strip : 'a t -> 'a t list

(** [merge ts] is the Merge operation: strips every input and recombines
    the complete trees into a single haft, exactly as binary addition of
    the leaf counts (Section 4.1.2). Raises [Invalid_argument] on []. *)
val merge : 'a t list -> 'a t

(** [primary_roots t] is the number of primary roots
    (= popcount of [leaf_count t]). *)
val primary_roots : 'a t -> int

(** [equal_shape t1 t2] ignores leaf values and compares structure. *)
val equal_shape : 'a t -> 'b t -> bool

(** [iter f t] applies [f] to each leaf, left to right. *)
val iter : ('a -> unit) -> 'a t -> unit

(** [fold f init t] folds over leaves left to right. *)
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

(** [map f t] rebuilds the same shape with transformed leaves. *)
val map : ('a -> 'b) -> 'a t -> 'b t

(** [nth_leaf t i] is the [i]-th leaf from the left (0-based), in
    O(depth). Raises [Invalid_argument] when out of range. *)
val nth_leaf : 'a t -> int -> 'a

(** [mem eq x t] tests leaf membership. *)
val mem : ('a -> 'a -> bool) -> 'a -> 'a t -> bool

(** [depth_bound l] is [ceil(log2 l)], the depth claimed by Lemma 1.3. *)
val depth_bound : int -> int

(** [popcount n] is the number of one bits — the strip forest size. *)
val popcount : int -> int

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
