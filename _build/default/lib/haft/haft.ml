type 'a t =
  | Leaf of 'a
  | Node of { left : 'a t; right : 'a t; leaves : int; height : int }

let leaf_count = function Leaf _ -> 1 | Node { leaves; _ } -> leaves
let height = function Leaf _ -> 0 | Node { height; _ } -> height

let node left right =
  Node
    {
      left;
      right;
      leaves = leaf_count left + leaf_count right;
      height = 1 + max (height left) (height right);
    }

let is_complete t = leaf_count t = 1 lsl height t

let rec is_haft = function
  | Leaf _ -> true
  | Node { left; right; leaves; _ } ->
    is_complete left
    && 2 * leaf_count left >= leaves
    && is_haft right
    && (match left with Leaf _ -> true | Node _ -> is_haft left)

let leaves t =
  let rec collect t acc =
    match t with
    | Leaf x -> x :: acc
    | Node { left; right; _ } -> collect left (collect right acc)
  in
  collect t []

let popcount n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
  go n 0

let depth_bound l =
  if l <= 0 then invalid_arg "Haft.depth_bound";
  let rec go p d = if p >= l then d else go (2 * p) (d + 1) in
  go 1 0

(* largest power of two <= l *)
let high_bit l =
  let rec go p = if 2 * p > l then p else go (2 * p) in
  go 1

let of_list xs =
  if xs = [] then invalid_arg "Haft.of_list: empty";
  (* complete tree over exactly (a power of two) leaves, returning rest *)
  let rec complete k xs =
    if k = 1 then
      match xs with
      | x :: rest -> (Leaf x, rest)
      | [] -> assert false
    else begin
      let l, rest = complete (k / 2) xs in
      let r, rest = complete (k / 2) rest in
      (node l r, rest)
    end
  in
  let rec build l xs =
    let k = high_bit l in
    if k = l then fst (complete k xs)
    else begin
      let left, rest = complete k xs in
      node left (build (l - k) rest)
    end
  in
  build (List.length xs) xs

let rec strip t =
  if is_complete t then [ t ]
  else
    match t with
    | Leaf _ -> [ t ]
    | Node { left; right; _ } -> left :: strip right

(* binary-addition insert: keep ascending by size, combine equal sizes into
   a carry of double size. *)
let rec add_sorted t = function
  | [] -> [ t ]
  | hd :: tl ->
    let st = leaf_count t and sh = leaf_count hd in
    if st < sh then t :: hd :: tl
    else if st = sh then add_sorted (node t hd) tl
    else hd :: add_sorted t tl

let merge ts =
  if ts = [] then invalid_arg "Haft.merge: empty";
  let completes = List.concat_map strip ts in
  let summed = List.fold_left (fun acc t -> add_sorted t acc) [] completes in
  (* ascending, all sizes distinct: join with the larger tree on the left *)
  match summed with
  | [] -> assert false
  | smallest :: rest -> List.fold_left (fun acc t -> node t acc) smallest rest

let primary_roots t = popcount (leaf_count t)

let rec iter f = function
  | Leaf x -> f x
  | Node { left; right; _ } ->
    iter f left;
    iter f right

let rec fold f acc = function
  | Leaf x -> f acc x
  | Node { left; right; _ } -> fold f (fold f acc left) right

let rec map f = function
  | Leaf x -> Leaf (f x)
  | Node { left; right; leaves; height } ->
    Node { left = map f left; right = map f right; leaves; height }

let nth_leaf t i =
  if i < 0 || i >= leaf_count t then invalid_arg "Haft.nth_leaf: out of range";
  let rec go t i =
    match t with
    | Leaf x -> x
    | Node { left; right; _ } ->
      let lc = leaf_count left in
      if i < lc then go left i else go right (i - lc)
  in
  go t i

let mem eq x t = fold (fun acc y -> acc || eq x y) false t

let rec equal_shape t1 t2 =
  match (t1, t2) with
  | Leaf _, Leaf _ -> true
  | Node n1, Node n2 -> equal_shape n1.left n2.left && equal_shape n1.right n2.right
  | Leaf _, Node _ | Node _, Leaf _ -> false

let rec pp pp_leaf ppf = function
  | Leaf x -> Format.fprintf ppf "%a" pp_leaf x
  | Node { left; right; _ } ->
    Format.fprintf ppf "(@[%a@ %a@])" (pp pp_leaf) left (pp pp_leaf) right
