lib/haft/haft.ml: Format List
