lib/haft/haft.mli: Format
