module Node_id = Fg_graph.Node_id
module Bfs = Fg_graph.Bfs

type report = {
  max_stretch : float;
  witness : (Node_id.t * Node_id.t) option;
  mean_stretch : float;
  pairs : int;
  disconnected : int;
}

let measure ~graph ~reference ~sources ~targets =
  let max_stretch = ref 0. in
  let witness = ref None in
  let sum = ref 0. in
  let pairs = ref 0 in
  let disconnected = ref 0 in
  let from x =
    let dg = Bfs.distances graph x in
    let dr = Bfs.distances reference x in
    let check y =
      if not (Node_id.equal x y) then
        match (Node_id.Tbl.find_opt dg y, Node_id.Tbl.find_opt dr y) with
        | Some d, Some d' when d' > 0 ->
          let s = float_of_int d /. float_of_int d' in
          incr pairs;
          sum := !sum +. s;
          if s > !max_stretch then begin
            max_stretch := s;
            witness := Some (x, y)
          end
        | None, Some _ -> incr disconnected
        | _ -> ()
    in
    List.iter check targets
  in
  List.iter from sources;
  {
    max_stretch = !max_stretch;
    witness = !witness;
    mean_stretch = (if !pairs = 0 then 0. else !sum /. float_of_int !pairs);
    pairs = !pairs;
    disconnected = !disconnected;
  }

let exact ~graph ~reference ~nodes =
  let sorted = List.sort Node_id.compare nodes in
  (* avoid double-counting: source x only measures targets y > x *)
  let max_stretch = ref 0. in
  let witness = ref None in
  let sum = ref 0. in
  let pairs = ref 0 in
  let disconnected = ref 0 in
  let from x =
    let dg = Bfs.distances graph x in
    let dr = Bfs.distances reference x in
    let check y =
      if y > x then
        match (Node_id.Tbl.find_opt dg y, Node_id.Tbl.find_opt dr y) with
        | Some d, Some d' when d' > 0 ->
          let s = float_of_int d /. float_of_int d' in
          incr pairs;
          sum := !sum +. s;
          if s > !max_stretch then begin
            max_stretch := s;
            witness := Some (x, y)
          end
        | None, Some _ -> incr disconnected
        | _ -> ()
    in
    List.iter check sorted
  in
  List.iter from sorted;
  {
    max_stretch = !max_stretch;
    witness = !witness;
    mean_stretch = (if !pairs = 0 then 0. else !sum /. float_of_int !pairs);
    pairs = !pairs;
    disconnected = !disconnected;
  }

let sampled rng ~k ~graph ~reference ~nodes =
  let arr = Array.of_list (List.sort Node_id.compare nodes) in
  let sources = Array.to_list (Fg_graph.Rng.sample rng k arr) in
  measure ~graph ~reference ~sources ~targets:(Array.to_list arr)

let pp_report ppf r =
  let pp_wit ppf = function
    | None -> Format.fprintf ppf "-"
    | Some (x, y) -> Format.fprintf ppf "(%a,%a)" Node_id.pp x Node_id.pp y
  in
  Format.fprintf ppf "max %.2f at %a, mean %.3f over %d pairs, %d disconnected"
    r.max_stretch pp_wit r.witness r.mean_stretch r.pairs r.disconnected
