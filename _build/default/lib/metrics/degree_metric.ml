module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency

type report = {
  max_ratio : float;
  witness : Node_id.t option;
  mean_ratio : float;
  max_absolute_increase : int;
  over_3x : int;
  over_4x : int;
}

let measure ~graph ~gprime ~nodes =
  let max_ratio = ref 0. in
  let witness = ref None in
  let sum = ref 0. in
  let count = ref 0 in
  let max_abs = ref 0 in
  let over3 = ref 0 in
  let over4 = ref 0 in
  let visit v =
    let d = Adjacency.degree graph v in
    let d' = Adjacency.degree gprime v in
    if d' > 0 then begin
      let r = float_of_int d /. float_of_int d' in
      incr count;
      sum := !sum +. r;
      if r > !max_ratio then begin
        max_ratio := r;
        witness := Some v
      end;
      if d - d' > !max_abs then max_abs := d - d';
      if d > 3 * d' then incr over3;
      if d > 4 * d' then incr over4
    end
  in
  List.iter visit nodes;
  {
    max_ratio = !max_ratio;
    witness = !witness;
    mean_ratio = (if !count = 0 then 0. else !sum /. float_of_int !count);
    max_absolute_increase = !max_abs;
    over_3x = !over3;
    over_4x = !over4;
  }

let pp_report ppf r =
  let pp_wit ppf = function
    | None -> Format.fprintf ppf "-"
    | Some v -> Node_id.pp ppf v
  in
  Format.fprintf ppf
    "max ratio %.2f at %a, mean %.3f, max +%d, >3x: %d nodes, >4x: %d nodes"
    r.max_ratio pp_wit r.witness r.mean_ratio r.max_absolute_increase r.over_3x
    r.over_4x
