lib/metrics/summary.ml: Array Float Format List
