lib/metrics/stretch.ml: Array Fg_graph Format List
