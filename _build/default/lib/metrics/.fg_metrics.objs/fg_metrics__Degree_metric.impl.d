lib/metrics/degree_metric.ml: Fg_graph Format List
