lib/metrics/degree_metric.mli: Fg_graph Format
