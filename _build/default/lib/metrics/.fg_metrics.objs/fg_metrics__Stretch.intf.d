lib/metrics/stretch.mli: Fg_graph Format
