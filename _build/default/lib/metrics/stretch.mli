(** Stretch: the paper's central quality metric (Section 2, success
    metric 2).

    [stretch(x, y) = dist(x, y, G) / dist(x, y, G')] over live pairs,
    where [G] is the healed network and [G'] the insert-only reference
    (which may route through dead nodes). Theorem 1.2 bounds the maximum
    by [ceil(log2 n)]. *)

module Node_id := Fg_graph.Node_id

type report = {
  max_stretch : float;
  witness : (Node_id.t * Node_id.t) option;  (** pair attaining the max *)
  mean_stretch : float;
  pairs : int;  (** connected live pairs measured *)
  disconnected : int;  (** pairs connected in G' but not in G (0 if the
                           healer preserves connectivity) *)
}

(** [exact ~graph ~reference ~nodes] measures every unordered pair of
    [nodes] (one BFS per node on each graph). *)
val exact :
  graph:Fg_graph.Adjacency.t ->
  reference:Fg_graph.Adjacency.t ->
  nodes:Node_id.t list ->
  report

(** [sampled rng ~k ~graph ~reference ~nodes] measures BFS from [k] sampled
    sources against all of [nodes] — an unbiased under-estimate of the max,
    for large sweeps. *)
val sampled :
  Fg_graph.Rng.t ->
  k:int ->
  graph:Fg_graph.Adjacency.t ->
  reference:Fg_graph.Adjacency.t ->
  nodes:Node_id.t list ->
  report

val pp_report : Format.formatter -> report -> unit
