(** Degree increase: the paper's success metric 1 —
    [max_v deg(v, G) / deg(v, G')] over live nodes with positive
    G'-degree. *)

module Node_id := Fg_graph.Node_id

type report = {
  max_ratio : float;
  witness : Node_id.t option;
  mean_ratio : float;
  max_absolute_increase : int;  (** max over v of deg_G(v) - deg_G'(v) *)
  over_3x : int;  (** nodes exceeding the paper's stated 3x bound *)
  over_4x : int;  (** nodes exceeding the provable 4x bound (expect 0) *)
}

val measure :
  graph:Fg_graph.Adjacency.t ->
  gprime:Fg_graph.Adjacency.t ->
  nodes:Node_id.t list ->
  report

val pp_report : Format.formatter -> report -> unit
