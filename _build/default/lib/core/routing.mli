(** Constructive routing: Theorem 1.2 as an algorithm.

    The stretch proof observes that any G'-path survives in the healed
    network if every maximal run of dead nodes is crossed through the
    reconstruction tree that absorbed it (adjacent dead nodes always merge
    into one RT). [route] performs exactly that stitching:

    + shortest path [x .. y] in [G'] (which may pass through dead nodes);
    + live-live edges are taken directly (they are in the image);
    + for each maximal dead segment between live [u] and [w], walk the RT
      tree path between [u]'s and [w]'s attachment leaves (up to the LCA
      and down), mapping every vnode to its simulating processor.

    The returned walk is a real path in [graph t] of length at most
    [2 * height(RT) <= 2 ceil(log2 n)] per crossed segment — the
    per-edge expansion bounding the stretch. This gives each node a way to
    forward messages using only RT-local pointers (parent/children of its
    own vnodes), no global recomputation. *)

module Node_id := Fg_graph.Node_id

(** [route t x y] is a walk from [x] to [y] in the healed graph obtained
    by stitching a shortest G'-path, or [None] if [y] is unreachable from
    [x] in [G']. Raises [Invalid_argument] if [x] or [y] is not live.
    Consecutive duplicate processors are collapsed; every consecutive pair
    in the result is an edge of [graph t]. *)
val route : Forgiving_graph.t -> Node_id.t -> Node_id.t -> Node_id.t list option

(** [length_bound t dist'] is the guaranteed walk length for a pair at
    G'-distance [dist']: [dist' * 2 * ceil(log2 n)] (loose but certain). *)
val length_bound : Forgiving_graph.t -> int -> int
