(** Attack-history recorder: the Forgiving Graph with a persistent snapshot
    of the healed network after every event.

    Theorem 1 is a statement about {e every} moment of an execution;
    this wrapper makes that checkable after the fact. Snapshots are
    persistent graphs ({!Fg_graph.Persistent_graph}), so recording an
    n-event history shares structure instead of copying n adjacency
    tables. Used by the timeline experiment (E12) and the
    [examples/p2p_churn.exe] walkthrough; also handy interactively: run an
    attack, then scrub through the states. *)

module Node_id := Fg_graph.Node_id

type event =
  | Inserted of Node_id.t * Node_id.t list
  | Deleted of Node_id.t

val pp_event : Format.formatter -> event -> unit

type t

(** [create g0] snapshots the initial network as event 0. *)
val create : Fg_graph.Adjacency.t -> t

val insert : t -> Node_id.t -> Node_id.t list -> unit
val delete : t -> Node_id.t -> unit

(** The wrapped structure (current state). *)
val fg : t -> Forgiving_graph.t

(** [length t] is the number of recorded events (excluding the initial
    snapshot). *)
val length : t -> int

(** [snapshot t k] is the healed network after the [k]-th event
    ([k = 0] is the initial network). Raises [Invalid_argument] when out
    of range. *)
val snapshot : t -> int -> Fg_graph.Persistent_graph.t

(** [events t] in chronological order. *)
val events : t -> event list

(** [series t f] maps [f] over the snapshots chronologically — e.g. edge
    counts or component counts over time. *)
val series : t -> (Fg_graph.Persistent_graph.t -> 'a) -> 'a list
