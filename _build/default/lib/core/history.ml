module Node_id = Fg_graph.Node_id
module P = Fg_graph.Persistent_graph

type event = Inserted of Node_id.t * Node_id.t list | Deleted of Node_id.t

let pp_event ppf = function
  | Inserted (v, nbrs) ->
    Format.fprintf ppf "insert %a -> [%a]" Node_id.pp v
      (Format.pp_print_list ~pp_sep:Format.pp_print_space Node_id.pp)
      nbrs
  | Deleted v -> Format.fprintf ppf "delete %a" Node_id.pp v

type t = {
  fg : Forgiving_graph.t;
  mutable log : (event * P.t) list;  (* reversed *)
  initial : P.t;
}

let capture fg = P.of_adjacency (Forgiving_graph.graph fg)

let create g0 =
  let fg = Forgiving_graph.of_graph g0 in
  { fg; log = []; initial = capture fg }

let insert t v nbrs =
  Forgiving_graph.insert t.fg v nbrs;
  t.log <- (Inserted (v, nbrs), capture t.fg) :: t.log

let delete t v =
  Forgiving_graph.delete t.fg v;
  t.log <- (Deleted v, capture t.fg) :: t.log

let fg t = t.fg
let length t = List.length t.log

let snapshot t k =
  if k < 0 || k > length t then invalid_arg "History.snapshot: out of range";
  if k = 0 then t.initial
  else snd (List.nth t.log (length t - k))

let events t = List.rev_map fst t.log
let series t f = f t.initial :: List.rev_map (fun (_, s) -> f s) t.log
