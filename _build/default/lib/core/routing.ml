module Node_id = Fg_graph.Node_id
module Bfs = Fg_graph.Bfs

let length_bound t dist' = dist' * 2 * Forgiving_graph.stretch_bound t

(* path of vnodes from [v] up to the root, inclusive *)
let ancestors (v : Rt.vnode) =
  let rec up (v : Rt.vnode) acc =
    match v.Rt.parent with None -> List.rev (v :: acc) | Some p -> up p (v :: acc)
  in
  up v []

(* tree walk between two vnodes of the same RT: up from [a] to the lowest
   common ancestor, then down to [b] *)
let tree_walk a b =
  let pa = ancestors a and pb = ancestors b in
  let module Is = Set.Make (Int) in
  let ids_a = List.fold_left (fun s (v : Rt.vnode) -> Is.add v.Rt.id s) Is.empty pa in
  let rec find_lca = function
    | [] -> invalid_arg "Routing.tree_walk: vnodes in different RTs"
    | (v : Rt.vnode) :: rest ->
      if Is.mem v.Rt.id ids_a then v else find_lca rest
  in
  let lca = find_lca pb in
  let rec take_until acc = function
    | [] -> List.rev acc
    | (v : Rt.vnode) :: rest ->
      if v.Rt.id = lca.Rt.id then List.rev (v :: acc) else take_until (v :: acc) rest
  in
  let up = take_until [] pa in
  let down = take_until [] pb in
  up @ List.tl (List.rev down)

let proc_of (v : Rt.vnode) = v.Rt.half.Edge.Half.proc

let route t x y =
  if not (Forgiving_graph.is_alive t x && Forgiving_graph.is_alive t y) then
    invalid_arg "Routing.route: endpoints must be live";
  match Bfs.shortest_path (Forgiving_graph.gprime t) x y with
  | None -> None
  | Some gp_path ->
    let ctx = Forgiving_graph.ctx t in
    let walk = ref [ x ] in
    let append p = match !walk with q :: _ when Node_id.equal p q -> () | _ -> walk := p :: !walk in
    let leaf_for live dead =
      match Rt.find_leaf ctx (Edge.Half.make live (Edge.make live dead)) with
      | Some l -> l
      | None -> invalid_arg "Routing.route: missing attachment leaf"
    in
    (* consume the G'-path: u is the last live node emitted; a dead run is
       accumulated until the next live node closes the segment *)
    let rec go u dead_run = function
      | [] ->
        (* G'-paths end at live y, so any dead run must have been closed *)
        assert (dead_run = [])
      | v :: rest ->
        if Forgiving_graph.is_alive t v then begin
          (match dead_run with
          | [] -> append v (* direct live-live edge *)
          | first_dead :: _ ->
            let last_dead = List.nth dead_run (List.length dead_run - 1) in
            let leaf_u = leaf_for u first_dead in
            let leaf_v = leaf_for v last_dead in
            List.iter (fun w -> append (proc_of w)) (tree_walk leaf_u leaf_v);
            append v);
          go v [] rest
        end
        else go u (dead_run @ [ v ]) rest
    in
    (match gp_path with
    | x' :: rest ->
      assert (Node_id.equal x' x);
      go x [] rest
    | [] -> ());
    Some (List.rev !walk)
