(** Edges of the insert-only graph [G'].

    Every edge ever inserted keeps its identity [(u, v)] forever, even after
    one or both endpoints die: reconstruction-tree leaves and helper nodes
    are scoped to a G'-edge ("we still refer to this edge as (v, x) i.e. by
    its name in G'", Section 4.2). Stored in normalised order. *)

type t = private { a : Fg_graph.Node_id.t; b : Fg_graph.Node_id.t }

(** [make u v] normalises so that [a < b].
    Raises [Invalid_argument] if [u = v]. *)
val make : Fg_graph.Node_id.t -> Fg_graph.Node_id.t -> t

(** [other e v] is the endpoint of [e] that is not [v].
    Raises [Invalid_argument] if [v] is not an endpoint. *)
val other : t -> Fg_graph.Node_id.t -> Fg_graph.Node_id.t

(** [incident e v] holds iff [v] is an endpoint of [e]. *)
val incident : t -> Fg_graph.Node_id.t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t

(** Half-edges: one side of a G'-edge, owned by processor [proc].
    Reconstruction-tree leaves and helpers are keyed by half-edges. *)
module Half : sig
  type edge := t
  type t = { proc : Fg_graph.Node_id.t; edge : edge }

  val make : Fg_graph.Node_id.t -> edge -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit

  module Tbl : Hashtbl.S with type key = t
end
