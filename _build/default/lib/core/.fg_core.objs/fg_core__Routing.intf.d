lib/core/routing.mli: Fg_graph Forgiving_graph
