lib/core/routing.ml: Edge Fg_graph Forgiving_graph Int List Rt Set
