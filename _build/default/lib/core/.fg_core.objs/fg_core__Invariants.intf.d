lib/core/invariants.mli: Forgiving_graph
