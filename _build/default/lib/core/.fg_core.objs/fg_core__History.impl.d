lib/core/history.ml: Fg_graph Forgiving_graph Format List
