lib/core/edge.mli: Fg_graph Format Hashtbl
