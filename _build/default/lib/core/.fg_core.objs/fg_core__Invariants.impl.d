lib/core/invariants.ml: Edge Fg_graph Fg_haft Forgiving_graph Hashtbl Int List Map Option Printf Rt
