lib/core/forgiving_graph.mli: Fg_graph Rt
