lib/core/rt.mli: Edge Fg_graph Fg_haft Format
