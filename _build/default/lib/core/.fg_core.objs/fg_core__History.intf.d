lib/core/history.mli: Fg_graph Forgiving_graph Format
