lib/core/forgiving_graph.ml: Edge Fg_graph Hashtbl Int List Map Option Rt
