lib/core/rt.ml: Edge Fg_graph Fg_haft Format Fun Hashtbl Int List Map Option Set
