lib/core/edge.ml: Fg_graph Format Hashtbl
