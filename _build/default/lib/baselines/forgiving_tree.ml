module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency

let spanning_tree g =
  let tree = Adjacency.create () in
  Adjacency.iter_nodes (fun v -> Adjacency.add_node tree v) g;
  let seen = Node_id.Tbl.create 64 in
  let bfs_from root =
    let q = Queue.create () in
    Node_id.Tbl.replace seen root ();
    Queue.add root q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      let visit u =
        if not (Node_id.Tbl.mem seen u) then begin
          Node_id.Tbl.replace seen u ();
          Adjacency.add_edge tree v u;
          Queue.add u q
        end
      in
      Adjacency.iter_neighbors visit g v
    done
  in
  let roots = List.sort Node_id.compare (Adjacency.nodes g) in
  List.iter (fun v -> if not (Node_id.Tbl.mem seen v) then bfs_from v) roots;
  tree

let ceil_log2 n =
  let n = max 2 n in
  let rec go p b = if p >= n then b else go (2 * p) (b + 1) in
  go 1 0

let healer g0 =
  let tree = spanning_tree g0 in
  let ft = Will_tree.create tree in
  let original_gprime = Adjacency.copy g0 in
  let n = Adjacency.num_nodes g0 in
  {
    Healer.name = "ft";
    insert =
      (fun _ _ ->
        raise
          (Healer.Unsupported
             "the Forgiving Tree has no insertion algorithm (PODC'08)"));
    delete = (fun v -> Will_tree.delete ft v);
    graph = (fun () -> Will_tree.graph ft);
    gprime = (fun () -> original_gprime);
    live_nodes = (fun () -> Will_tree.live_nodes ft);
    is_alive = (fun v -> Will_tree.is_alive ft v);
    (* the PODC'08 preprocessing: distributing Wills costs O(n log n) msgs *)
    init_messages = n * ceil_log2 n;
  }
