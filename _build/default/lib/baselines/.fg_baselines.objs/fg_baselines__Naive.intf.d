lib/baselines/naive.mli: Fg_graph Healer
