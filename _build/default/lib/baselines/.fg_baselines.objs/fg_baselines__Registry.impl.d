lib/baselines/registry.ml: Forgiving_tree Healer Naive
