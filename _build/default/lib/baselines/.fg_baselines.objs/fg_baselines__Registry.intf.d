lib/baselines/registry.mli: Fg_graph Healer
