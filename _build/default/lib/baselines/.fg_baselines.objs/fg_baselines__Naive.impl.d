lib/baselines/naive.ml: Array Fg_graph Healer List
