lib/baselines/cascade.ml: Array Fg_core Fg_graph Int List
