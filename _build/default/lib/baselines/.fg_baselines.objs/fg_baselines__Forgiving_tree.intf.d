lib/baselines/forgiving_tree.mli: Fg_graph Healer
