lib/baselines/will_tree.ml: Fg_graph Hashtbl List Option Printf Queue
