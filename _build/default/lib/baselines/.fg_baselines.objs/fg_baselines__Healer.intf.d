lib/baselines/healer.mli: Fg_graph
