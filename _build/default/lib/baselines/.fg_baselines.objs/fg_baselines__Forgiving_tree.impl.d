lib/baselines/forgiving_tree.ml: Fg_graph Healer List Queue Will_tree
