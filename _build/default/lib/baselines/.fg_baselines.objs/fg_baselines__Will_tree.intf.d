lib/baselines/will_tree.mli: Fg_graph
