lib/baselines/cascade.mli: Fg_graph
