lib/baselines/healer.ml: Fg_core Fg_graph
