let names = [ "fg"; "ft"; "none"; "cycle"; "line"; "clique"; "star"; "binary" ]

let by_name name g0 =
  match name with
  | "fg" -> Healer.forgiving_graph g0
  | "ft" -> Forgiving_tree.healer g0
  | "none" -> Naive.healer Naive.No_repair g0
  | "cycle" -> Naive.healer Naive.Cycle g0
  | "line" -> Naive.healer Naive.Line g0
  | "clique" -> Naive.healer Naive.Clique g0
  | "star" -> Naive.healer Naive.Star g0
  | "binary" -> Naive.healer Naive.Binary_tree g0
  | _ -> raise Not_found
