(** The Forgiving Tree (Hayes, Rustagi, Saia, Trehan, PODC 2008) — the
    predecessor the paper claims three improvements over:

    + the FT bounds only the {e diameter} blow-up (factor O(log Delta)),
      not per-pair stretch — it heals a spanning tree and ignores non-tree
      edges, so pairs joined by a non-tree edge in G' can drift far apart;
    + the FT handles only deletions — {!Healer.Unsupported} is raised on
      insertion;
    + the FT requires an initialization phase of O(n log n) messages (the
      "Will" distribution pass), charged here as [init_messages].

    Implemented by {!Will_tree} over a BFS spanning tree of the initial
    network, reproducing the PODC'08 guarantees including the {e additive}
    +3 degree bound (each processor simulates at most one virtual node at
    a time); see {!Will_tree} for the one recorded deviation (wills are
    computed at deletion time rather than pre-distributed). *)

(** [healer g] builds the Forgiving Tree over a BFS spanning tree of [g].
    [gprime ()] returns the {e original} graph's insert-only reference (not
    the spanning tree), so stretch metrics expose the dropped non-tree
    edges exactly as the paper argues. *)
val healer : Fg_graph.Adjacency.t -> Healer.t

(** The spanning tree used (exposed for tests). *)
val spanning_tree : Fg_graph.Adjacency.t -> Fg_graph.Adjacency.t
