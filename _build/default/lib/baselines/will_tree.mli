(** The Forgiving Tree (Hayes, Rustagi, Saia, Trehan, PODC 2008) — a
    Will-based reimplementation.

    The FT maintains a {e rooted tree}. Each deleted node [v] is replaced,
    per its "will", by a balanced binary tree over [v]'s current children
    whose internal virtual nodes are simulated by real descendants chosen
    by the representative discipline; the replacement's root takes [v]'s
    place under [v]'s parent. Unlike the Forgiving Graph, reconstruction
    trees never merge: when a simulator dies, its virtual node is handed
    to another free descendant. Consequences (tested by {!check}):

    - each processor simulates at most one virtual node at any time, so
      degree increases by at most {b +3 additive} (the virtual node's
      parent and two children) — the PODC'08 guarantee;
    - depth grows by up to [ceil(log2 Delta)] per nested deletion, giving
      the O(D log Delta) diameter factor but {e no} per-pair stretch bound
      against non-tree G'-edges (the paper's first claimed improvement);
    - insertions are not supported (the second claimed improvement).

    Deviation note: the PODC'08 protocol pre-distributes wills so repair
    is O(1) messages; this reimplementation computes the will at deletion
    time, which changes message accounting (not measured for FT) but not
    the structure produced. *)

module Node_id := Fg_graph.Node_id

type t

(** [create tree] adopts a rooted tree (any connected graph's BFS spanning
    tree; see {!Forgiving_tree.spanning_tree}). Roots at the smallest id
    of each component. *)
val create : Fg_graph.Adjacency.t -> t

(** [delete t v] removes a live node and executes its will.
    Raises [Invalid_argument] if [v] is not live. *)
val delete : t -> Node_id.t -> unit

(** The actual network: the image of the virtual tree (virtual nodes
    collapse onto their simulators). *)
val graph : t -> Fg_graph.Adjacency.t

val is_alive : t -> Node_id.t -> bool
val live_nodes : t -> Node_id.t list

(** [simulates t p] is the number of virtual nodes processor [p] currently
    simulates (0 or 1 when the invariant holds). *)
val simulates : t -> Node_id.t -> int

(** Structural checks: virtual tree well-formed (binary virtual nodes,
    parent backlinks), simulator injectivity (<= 1 virtual per processor),
    degree additive bound (deg <= original tree degree + 3), image
    connectivity per original component. Returns violations. *)
val check : t -> string list

(** [original_degree t v] — [v]'s degree in the adopted tree. *)
val original_degree : t -> Node_id.t -> int
