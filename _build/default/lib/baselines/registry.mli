(** Healer factory by harness name. *)

(** [by_name name g0] builds the named healer over initial graph [g0]:
    ["fg"] (Forgiving Graph), ["ft"] (Forgiving Tree), ["none"],
    ["cycle"], ["line"], ["clique"], ["star"], ["binary"] (naive
    patches). Raises [Not_found] for unknown names. *)
val by_name : string -> Fg_graph.Adjacency.t -> Healer.t

(** Names accepted by {!by_name}. *)
val names : string list
