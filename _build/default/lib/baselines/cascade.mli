(** Motter–Lai cascading-failure model with pluggable healing.

    Reproduces the related-work claim of Section 1: load-based cascade
    defenses (e.g. Hayashi–Miyazaki "emergent rewirings") work on random
    failures but "perform very poorly under adversarial attack". A node's
    load is its betweenness (number of shortest paths through it); its
    capacity is [(1 + tolerance) * initial load]. Deleting a hub diverts
    load onto other nodes; overloaded nodes fail in waves until the system
    stabilises.

    Healing modes applied after every wave:
    - [No_heal]: plain removal (Motter–Lai);
    - [Rewire rng]: emergent rewiring — for every failed node, one random
      edge is added between two of its surviving ex-neighbours
      (Hayashi–Miyazaki);
    - [Forgiving]: the network is maintained by the Forgiving Graph, which
      heals topology after every failure. *)

module Node_id := Fg_graph.Node_id

type params = {
  tolerance : float;  (** capacity headroom alpha; Motter–Lai use 0..1 *)
  max_waves : int;  (** safety cut-off for the failure iteration *)
}

type heal_mode = No_heal | Rewire of Fg_graph.Rng.t | Forgiving

type result = {
  initial_nodes : int;
  surviving : int;
  waves : int;  (** failure waves until stabilisation *)
  surviving_fraction : float;
  largest_component_fraction : float;
      (** size of the largest surviving component over initial size — the
          G-measure Motter–Lai report *)
}

(** [run params ~heal g ~attack] removes the attacked nodes, then iterates
    overload failures under the given healing mode. *)
val run :
  params -> heal:heal_mode -> Fg_graph.Adjacency.t -> attack:Node_id.t list -> result

(** [top_degree_attack g k] is the classic adversarial attack: the [k]
    highest-degree nodes. *)
val top_degree_attack : Fg_graph.Adjacency.t -> int -> Node_id.t list
