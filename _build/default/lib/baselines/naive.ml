module Node_id = Fg_graph.Node_id
module Adjacency = Fg_graph.Adjacency

type pattern = No_repair | Cycle | Line | Clique | Star | Binary_tree

let pattern_name = function
  | No_repair -> "none"
  | Cycle -> "cycle"
  | Line -> "line"
  | Clique -> "clique"
  | Star -> "star"
  | Binary_tree -> "binary"

type state = {
  g : Adjacency.t;  (* current network *)
  gp : Adjacency.t;  (* insert-only graph *)
  alive : unit Node_id.Tbl.t;
}

let patch pattern g nbrs =
  let nbrs = List.sort Node_id.compare nbrs in
  match (pattern, nbrs) with
  | (No_repair, _ | _, ([] | [ _ ])) -> ()
  | Cycle, first :: _ ->
    let rec link = function
      | a :: (b :: _ as rest) ->
        Adjacency.add_edge g a b;
        link rest
      | [ last ] -> Adjacency.add_edge g last first
      | [] -> ()
    in
    link nbrs
  | Line, _ ->
    let rec link = function
      | a :: (b :: _ as rest) ->
        Adjacency.add_edge g a b;
        link rest
      | [ _ ] | [] -> ()
    in
    link nbrs
  | Clique, _ ->
    List.iter (fun a -> List.iter (fun b -> if a < b then Adjacency.add_edge g a b) nbrs) nbrs
  | Star, hub :: rest -> List.iter (fun b -> Adjacency.add_edge g hub b) rest
  | Binary_tree, _ ->
    (* heap-shaped balanced binary tree over the neighbours; no simulation
       bookkeeping, so repeated deletions concentrate degree *)
    let arr = Array.of_list nbrs in
    Array.iteri
      (fun i v -> if i > 0 then Adjacency.add_edge g arr.((i - 1) / 2) v)
      arr

let healer pattern g0 =
  let st =
    { g = Adjacency.copy g0; gp = Adjacency.copy g0; alive = Node_id.Tbl.create 64 }
  in
  Adjacency.iter_nodes (fun v -> Node_id.Tbl.replace st.alive v ()) g0;
  let is_alive v = Node_id.Tbl.mem st.alive v in
  let insert v nbrs =
    if Adjacency.mem_node st.gp v then invalid_arg "naive insert: id already seen";
    let nbrs = List.sort_uniq Node_id.compare nbrs in
    List.iter
      (fun u -> if not (is_alive u) then invalid_arg "naive insert: dead neighbour")
      nbrs;
    Adjacency.add_node st.gp v;
    Adjacency.add_node st.g v;
    Node_id.Tbl.replace st.alive v ();
    List.iter
      (fun u ->
        Adjacency.add_edge st.gp v u;
        Adjacency.add_edge st.g v u)
      nbrs
  in
  let delete v =
    if not (is_alive v) then invalid_arg "naive delete: node not live";
    let nbrs = Adjacency.neighbors st.g v in
    Adjacency.remove_node st.g v;
    Node_id.Tbl.remove st.alive v;
    patch pattern st.g nbrs
  in
  {
    Healer.name = pattern_name pattern;
    insert;
    delete;
    graph = (fun () -> st.g);
    gprime = (fun () -> st.gp);
    live_nodes = (fun () -> Node_id.Tbl.fold (fun v () acc -> v :: acc) st.alive []);
    is_alive;
    init_messages = 0;
  }
