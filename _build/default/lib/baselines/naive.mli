(** Naive repair baselines: on deletion, connect the surviving neighbours
    of the deleted node with a fixed local pattern.

    These populate the degree/stretch trade-off frontier of experiment E10
    against the lower bound of Theorem 2:

    - {b none}: no repair — the network fragments (what "self-healing"
      prevents);
    - {b cycle}: neighbours joined in a cycle — degree +2 additive per
      event, but stretch grows linearly under repeated attack;
    - {b line}: neighbours joined in a path — one fewer edge than cycle;
    - {b clique}: all-pairs — stretch stays 1-ish but degree explodes
      (alpha unbounded);
    - {b star}: lowest-id neighbour becomes hub — small stretch, hub
      degree explodes (the strategy Theorem 2 says must lose);
    - {b binary}: neighbours joined in a balanced binary tree (depth
      log d like the Forgiving Graph's haft) but {e without} the
      representative mechanism — an ablation showing the mechanism is what
      keeps degrees bounded under repeated deletions. *)

type pattern = No_repair | Cycle | Line | Clique | Star | Binary_tree

val pattern_name : pattern -> string

(** [healer pattern g] builds the baseline healer. All patterns support
    insertion (it needs no repair). *)
val healer : pattern -> Fg_graph.Adjacency.t -> Healer.t
