(* Unit and property tests for half-full trees (Lemma 1, Lemma 2, Merge). *)

open Fg_haft

let rec ints a b = if a > b then [] else a :: ints (a + 1) b

let test_leaf_singleton () =
  let t = Haft.of_list [ 42 ] in
  Alcotest.(check int) "leaf count" 1 (Haft.leaf_count t);
  Alcotest.(check int) "height" 0 (Haft.height t);
  Alcotest.(check bool) "haft" true (Haft.is_haft t);
  Alcotest.(check bool) "complete" true (Haft.is_complete t)

let test_of_list_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Haft.of_list: empty") (fun () ->
      ignore (Haft.of_list []))

let test_figure_3a () =
  (* the paper's example: a haft with 7 leaves decomposes as 4 + 2 + 1 *)
  let t = Haft.of_list (ints 1 7) in
  Alcotest.(check bool) "haft" true (Haft.is_haft t);
  Alcotest.(check int) "depth" 3 (Haft.height t);
  let forest = Haft.strip t in
  Alcotest.(check (list int)) "strip sizes" [ 4; 2; 1 ]
    (List.map Haft.leaf_count forest);
  List.iter
    (fun c -> Alcotest.(check bool) "complete" true (Haft.is_complete c))
    forest

let test_figure_5_merge_is_binary_addition () =
  (* 0101 + 0010 + 0001 = 1000: hafts of 5, 2 and 1 leaves merge into a
     complete tree with 8 leaves *)
  let h5 = Haft.of_list (ints 1 5) in
  let h2 = Haft.of_list (ints 6 7) in
  let h1 = Haft.of_list [ 8 ] in
  let merged = Haft.merge [ h5; h2; h1 ] in
  Alcotest.(check int) "leaves" 8 (Haft.leaf_count merged);
  Alcotest.(check bool) "complete" true (Haft.is_complete merged);
  Alcotest.(check bool) "haft" true (Haft.is_haft merged);
  Alcotest.(check int) "height" 3 (Haft.height merged)

let test_depth_bound_table () =
  (* Lemma 1.3 exactly: depth = ceil(log2 l) for every l up to 512 *)
  List.iter
    (fun l ->
      let t = Haft.of_list (ints 1 l) in
      Alcotest.(check int)
        (Printf.sprintf "depth of haft(%d)" l)
        (Haft.depth_bound l) (Haft.height t))
    (ints 1 512)

let test_strip_matches_binary_representation () =
  List.iter
    (fun l ->
      let t = Haft.of_list (ints 1 l) in
      let forest = Haft.strip t in
      Alcotest.(check int)
        (Printf.sprintf "popcount %d" l)
        (Haft.popcount l) (List.length forest);
      (* descending powers of two, exactly the set bits of l *)
      let sizes = List.map Haft.leaf_count forest in
      let expected =
        List.filter (fun k -> l land k <> 0) (List.rev_map (fun i -> 1 lsl i) (ints 0 30))
      in
      Alcotest.(check (list int)) "bit sizes" expected sizes)
    (ints 1 256)

let test_uniqueness () =
  (* Lemma 1.1: building via of_list and via repeated merge of singletons
     yields the same shape *)
  List.iter
    (fun l ->
      let direct = Haft.of_list (ints 1 l) in
      let singles = List.map (fun x -> Haft.Leaf x) (ints 1 l) in
      let merged = Haft.merge singles in
      Alcotest.(check bool)
        (Printf.sprintf "shape l=%d" l)
        true
        (Haft.equal_shape direct merged))
    (ints 1 128)

let test_leaves_preserved () =
  let t = Haft.of_list (ints 1 11) in
  Alcotest.(check (list int)) "in order" (ints 1 11) (Haft.leaves t)

let test_merge_preserves_leaf_multiset () =
  let h3 = Haft.of_list [ 1; 2; 3 ] in
  let h6 = Haft.of_list (ints 4 9) in
  let merged = Haft.merge [ h3; h6 ] in
  let sorted = List.sort compare (Haft.leaves merged) in
  Alcotest.(check (list int)) "leaf multiset" (ints 1 9) sorted

let test_iterators () =
  let t = Haft.of_list (ints 1 11) in
  let seen = ref [] in
  Haft.iter (fun x -> seen := x :: !seen) t;
  Alcotest.(check (list int)) "iter order" (ints 1 11) (List.rev !seen);
  Alcotest.(check int) "fold sum" 66 (Haft.fold ( + ) 0 t);
  let doubled = Haft.map (fun x -> 2 * x) t in
  Alcotest.(check bool) "map keeps shape" true (Haft.equal_shape t doubled);
  Alcotest.(check (list int)) "map values" (List.map (fun x -> 2 * x) (ints 1 11))
    (Haft.leaves doubled)

let test_nth_leaf () =
  let t = Haft.of_list (ints 10 21) in
  List.iteri
    (fun i expected -> Alcotest.(check int) (Printf.sprintf "leaf %d" i) expected
        (Haft.nth_leaf t i))
    (ints 10 21);
  Alcotest.(check bool) "out of range" true
    (try
       ignore (Haft.nth_leaf t 12);
       false
     with Invalid_argument _ -> true)

let test_mem () =
  let t = Haft.of_list [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check bool) "present" true (Haft.mem Int.equal 4 t);
  Alcotest.(check bool) "absent" false (Haft.mem Int.equal 9 t)

(* ---- property tests ---- *)

let gen_size = QCheck2.Gen.int_range 1 600

let prop_of_list_is_haft =
  QCheck2.Test.make ~name:"of_list builds a haft" ~count:200 gen_size (fun l ->
      Haft.is_haft (Haft.of_list (ints 1 l)))

let prop_merge_is_haft =
  QCheck2.Test.make ~name:"merge of random hafts is a haft" ~count:200
    QCheck2.Gen.(list_size (int_range 1 8) (int_range 1 64))
    (fun sizes ->
      let ts = List.map (fun l -> Haft.of_list (ints 1 l)) sizes in
      let merged = Haft.merge ts in
      Haft.is_haft merged
      && Haft.leaf_count merged = List.fold_left ( + ) 0 sizes)

let prop_merge_depth =
  QCheck2.Test.make ~name:"merged depth = ceil(log2 total)" ~count:200
    QCheck2.Gen.(list_size (int_range 1 8) (int_range 1 64))
    (fun sizes ->
      let ts = List.map (fun l -> Haft.of_list (ints 1 l)) sizes in
      let merged = Haft.merge ts in
      Haft.height merged = Haft.depth_bound (List.fold_left ( + ) 0 sizes))

let prop_strip_then_merge_identity_shape =
  QCheck2.Test.make ~name:"merge (strip t) has shape of t" ~count:200 gen_size
    (fun l ->
      let t = Haft.of_list (ints 1 l) in
      Haft.equal_shape t (Haft.merge (Haft.strip t)))

let prop_primary_roots =
  QCheck2.Test.make ~name:"primary roots = popcount" ~count:200 gen_size (fun l ->
      let t = Haft.of_list (ints 1 l) in
      Haft.primary_roots t = List.length (Haft.strip t))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_of_list_is_haft;
      prop_merge_is_haft;
      prop_merge_depth;
      prop_strip_then_merge_identity_shape;
      prop_primary_roots;
    ]

let suite =
  [
    Alcotest.test_case "singleton leaf" `Quick test_leaf_singleton;
    Alcotest.test_case "of_list rejects empty" `Quick test_of_list_empty;
    Alcotest.test_case "figure 3a: haft(7)" `Quick test_figure_3a;
    Alcotest.test_case "figure 5: merge = binary addition" `Quick
      test_figure_5_merge_is_binary_addition;
    Alcotest.test_case "lemma 1.3: depth table to 512" `Quick test_depth_bound_table;
    Alcotest.test_case "lemma 1.2/2: strip = binary rep" `Quick
      test_strip_matches_binary_representation;
    Alcotest.test_case "lemma 1.1: uniqueness" `Quick test_uniqueness;
    Alcotest.test_case "leaves in order" `Quick test_leaves_preserved;
    Alcotest.test_case "merge preserves leaves" `Quick test_merge_preserves_leaf_multiset;
    Alcotest.test_case "iter/fold/map" `Quick test_iterators;
    Alcotest.test_case "nth_leaf" `Quick test_nth_leaf;
    Alcotest.test_case "mem" `Quick test_mem;
  ]
  @ props
