(* Unit and property tests for the fg_graph substrate. *)

open Fg_graph

let rec ints a b = if a > b then [] else a :: ints (a + 1) b

(* ---- adjacency ---- *)

let test_adjacency_basics () =
  let g = Adjacency.create () in
  Alcotest.(check int) "empty nodes" 0 (Adjacency.num_nodes g);
  Adjacency.add_edge g 1 2;
  Adjacency.add_edge g 2 3;
  Alcotest.(check int) "nodes" 3 (Adjacency.num_nodes g);
  Alcotest.(check int) "edges" 2 (Adjacency.num_edges g);
  Alcotest.(check bool) "mem" true (Adjacency.mem_edge g 1 2);
  Alcotest.(check bool) "sym" true (Adjacency.mem_edge g 2 1);
  Alcotest.(check int) "deg 2" 2 (Adjacency.degree g 2);
  Adjacency.remove_edge g 1 2;
  Alcotest.(check bool) "removed" false (Adjacency.mem_edge g 1 2);
  Alcotest.(check int) "node kept" 3 (Adjacency.num_nodes g)

let test_adjacency_no_self_loop () =
  let g = Adjacency.create () in
  Adjacency.add_edge g 5 5;
  Alcotest.(check int) "no loop edge" 0 (Adjacency.num_edges g)

let test_adjacency_duplicate_edge () =
  let g = Adjacency.create () in
  Adjacency.add_edge g 1 2;
  Adjacency.add_edge g 2 1;
  Alcotest.(check int) "collapsed" 1 (Adjacency.num_edges g)

let test_adjacency_remove_node () =
  let g = Generators.star 5 in
  Adjacency.remove_node g 0;
  Alcotest.(check int) "nodes" 4 (Adjacency.num_nodes g);
  Alcotest.(check int) "edges" 0 (Adjacency.num_edges g);
  List.iter
    (fun v -> Alcotest.(check int) "deg" 0 (Adjacency.degree g v))
    (Adjacency.nodes g)

let test_adjacency_copy_independent () =
  let g = Generators.ring 5 in
  let h = Adjacency.copy g in
  Adjacency.remove_edge h 0 1;
  Alcotest.(check bool) "original intact" true (Adjacency.mem_edge g 0 1);
  Alcotest.(check bool) "copy changed" false (Adjacency.mem_edge h 0 1)

let test_adjacency_equal () =
  let g = Generators.ring 6 and h = Generators.ring 6 in
  Alcotest.(check bool) "equal" true (Adjacency.equal g h);
  Adjacency.add_edge h 0 3;
  Alcotest.(check bool) "not equal" false (Adjacency.equal g h)

let test_adjacency_subgraph () =
  let g = Generators.complete 6 in
  let h = Adjacency.subgraph g (fun v -> v < 3) in
  Alcotest.(check int) "nodes" 3 (Adjacency.num_nodes h);
  Alcotest.(check int) "edges" 3 (Adjacency.num_edges h)

let test_of_edges_roundtrip () =
  let pairs = [ (1, 2); (3, 4); (2, 3) ] in
  let g = Adjacency.of_edges pairs in
  Alcotest.(check int) "edges" 3 (Adjacency.num_edges g);
  Alcotest.(check (list (pair int int)))
    "sorted edges"
    [ (1, 2); (2, 3); (3, 4) ]
    (List.sort compare (Adjacency.edges g))

(* ---- bfs ---- *)

let test_bfs_distances_ring () =
  let g = Generators.ring 8 in
  let d = Bfs.distances g 0 in
  Alcotest.(check (option int)) "self" (Some 0) (Node_id.Tbl.find_opt d 0);
  Alcotest.(check (option int)) "one" (Some 1) (Node_id.Tbl.find_opt d 1);
  Alcotest.(check (option int)) "antipode" (Some 4) (Node_id.Tbl.find_opt d 4);
  Alcotest.(check (option int)) "wrap" (Some 1) (Node_id.Tbl.find_opt d 7)

let test_bfs_unreachable () =
  let g = Adjacency.create () in
  Adjacency.add_edge g 0 1;
  Adjacency.add_node g 9;
  Alcotest.(check (option int)) "none" None (Bfs.distance g 0 9);
  Alcotest.(check (option int)) "absent" None (Bfs.distance g 0 77)

let test_bfs_shortest_path () =
  let g = Generators.grid 3 3 in
  match Bfs.shortest_path g 0 8 with
  | None -> Alcotest.fail "path expected"
  | Some p ->
    Alcotest.(check int) "length" 5 (List.length p);
    Alcotest.(check int) "starts" 0 (List.hd p);
    Alcotest.(check int) "ends" 8 (List.nth p 4);
    (* consecutive hops are edges *)
    let rec ok = function
      | a :: (b :: _ as rest) -> Adjacency.mem_edge g a b && ok rest
      | _ -> true
    in
    Alcotest.(check bool) "valid walk" true (ok p)

let test_bfs_multi_source () =
  let g = Generators.path 10 in
  let d = Bfs.multi_source_distances g [ 0; 9 ] in
  Alcotest.(check (option int)) "middle" (Some 4) (Node_id.Tbl.find_opt d 4);
  Alcotest.(check (option int)) "near end" (Some 1) (Node_id.Tbl.find_opt d 8)

let test_bfs_eccentricity () =
  let g = Generators.path 7 in
  Alcotest.(check int) "end" 6 (Bfs.eccentricity g 0);
  Alcotest.(check int) "middle" 3 (Bfs.eccentricity g 3)

(* ---- union-find ---- *)

let test_union_find () =
  let uf = Union_find.create () in
  Alcotest.(check bool) "fresh union" true (Union_find.union uf 1 2);
  Alcotest.(check bool) "again" false (Union_find.union uf 2 1);
  Alcotest.(check bool) "same" true (Union_find.same uf 1 2);
  Alcotest.(check bool) "diff" false (Union_find.same uf 1 3);
  ignore (Union_find.union uf 3 4);
  ignore (Union_find.union uf 1 4);
  Alcotest.(check bool) "linked" true (Union_find.same uf 2 3);
  Alcotest.(check int) "one set" 1 (Union_find.count_sets uf)

(* ---- connectivity ---- *)

let test_components () =
  let g = Adjacency.create () in
  Adjacency.add_edge g 0 1;
  Adjacency.add_edge g 2 3;
  Adjacency.add_node g 4;
  Alcotest.(check int) "three comps" 3 (Connectivity.num_components g);
  Alcotest.(check bool) "not connected" false (Connectivity.is_connected g);
  Alcotest.(check int) "largest" 2 (Connectivity.largest_component_size g);
  Alcotest.(check (list int)) "component of 2" [ 2; 3 ]
    (List.sort compare (Connectivity.component_of g 2))

let test_articulation_path () =
  (* every interior node of a path is a cut vertex *)
  let g = Generators.path 5 in
  let cuts = Connectivity.articulation_points g in
  Alcotest.(check (list int)) "interior" [ 1; 2; 3 ] (Node_id.Set.elements cuts)

let test_articulation_ring () =
  let g = Generators.ring 6 in
  Alcotest.(check int) "none in a cycle" 0
    (Node_id.Set.cardinal (Connectivity.articulation_points g))

let test_articulation_star () =
  let g = Generators.star 6 in
  Alcotest.(check (list int)) "centre" [ 0 ]
    (Node_id.Set.elements (Connectivity.articulation_points g))

let test_articulation_barbell () =
  (* two triangles joined by a bridge 2-3 *)
  let g = Adjacency.of_edges [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5); (2, 3) ] in
  let cuts = Connectivity.articulation_points g in
  Alcotest.(check (list int)) "bridge ends" [ 2; 3 ] (Node_id.Set.elements cuts);
  Alcotest.(check (list (pair int int))) "bridge" [ (2, 3) ] (Connectivity.bridges g)

let test_bridges_tree () =
  (* in a tree every edge is a bridge *)
  let g = Generators.binary_tree 7 in
  Alcotest.(check int) "all edges" 6 (List.length (Connectivity.bridges g))

(* brute-force cross-check of articulation points on random graphs *)
let brute_articulation g =
  let base = Connectivity.num_components g in
  List.filter
    (fun v ->
      let h = Adjacency.copy g in
      Adjacency.remove_node h v;
      Connectivity.num_components h > base - (if Adjacency.degree g v = 0 then 1 else 0))
    (List.sort compare (Adjacency.nodes g))

let prop_articulation_matches_bruteforce =
  QCheck2.Test.make ~name:"articulation = brute force" ~count:60
    QCheck2.Gen.(tup2 (int_range 0 9999) (int_range 4 24))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Generators.erdos_renyi_raw rng n (2.5 /. float_of_int n) in
      let fast = Node_id.Set.elements (Connectivity.articulation_points g) in
      let slow = brute_articulation g in
      fast = slow)

(* ---- diameter ---- *)

let test_diameter_exact () =
  Alcotest.(check int) "path" 6 (Diameter.exact (Generators.path 7));
  Alcotest.(check int) "ring" 4 (Diameter.exact (Generators.ring 8));
  Alcotest.(check int) "star" 2 (Diameter.exact (Generators.star 5));
  Alcotest.(check int) "complete" 1 (Diameter.exact (Generators.complete 5));
  Alcotest.(check int) "grid 3x4" 5 (Diameter.exact (Generators.grid 3 4))

let test_diameter_two_sweep_tree_exact () =
  let rng = Rng.create 3 in
  List.iter
    (fun n ->
      let g = Generators.random_tree rng n in
      Alcotest.(check int)
        (Printf.sprintf "tree n=%d" n)
        (Diameter.exact g) (Diameter.two_sweep g))
    [ 5; 9; 17; 33 ]

let test_radius () =
  Alcotest.(check int) "path 7" 3 (Diameter.radius (Generators.path 7));
  Alcotest.(check int) "star" 1 (Diameter.radius (Generators.star 9))

let test_average_path_length () =
  (* path 0-1-2: pairs (0,1)=1 (1,2)=1 (0,2)=2 -> mean 4/3 *)
  let apl = Diameter.average_path_length (Generators.path 3) in
  Alcotest.(check (float 1e-9)) "path3" (4. /. 3.) apl

(* ---- heap + dijkstra ---- *)

let test_heap_ordering () =
  let h = Binary_heap.create () in
  List.iter (fun p -> Binary_heap.push h p p) [ 5; 1; 4; 1; 3; 9; 0 ];
  let out = ref [] in
  while not (Binary_heap.is_empty h) do
    out := fst (Binary_heap.pop_min h) :: !out
  done;
  Alcotest.(check (list int)) "sorted" [ 9; 5; 4; 3; 1; 1; 0 ] !out

let test_heap_empty_raises () =
  let h = Binary_heap.create () in
  Alcotest.check_raises "pop" Not_found (fun () -> ignore (Binary_heap.pop_min h));
  Alcotest.check_raises "peek" Not_found (fun () -> ignore (Binary_heap.peek_min h))

let test_dijkstra_unit_weights_match_bfs () =
  let rng = Rng.create 11 in
  let g = Generators.erdos_renyi rng 40 0.1 in
  let src = 0 in
  let bfs = Bfs.distances g src in
  let dij = Dijkstra.distances g ~weight:(fun _ _ -> 1) src in
  Node_id.Tbl.iter
    (fun v d ->
      Alcotest.(check (option int))
        (Printf.sprintf "node %d" v)
        (Some d) (Node_id.Tbl.find_opt dij v))
    bfs

let test_dijkstra_weighted () =
  (* 0-1 cost 10, 0-2 cost 1, 2-1 cost 1: shortest 0->1 is 2 *)
  let g = Adjacency.of_edges [ (0, 1); (0, 2); (2, 1) ] in
  let weight u v =
    match (min u v, max u v) with
    | 0, 1 -> 10
    | _ -> 1
  in
  Alcotest.(check (option int)) "via 2" (Some 2) (Dijkstra.distance g ~weight 0 1)

let test_dijkstra_rejects_nonpositive () =
  let g = Adjacency.of_edges [ (0, 1) ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dijkstra.distances g ~weight:(fun _ _ -> 0) 0);
       false
     with Invalid_argument _ -> true)

(* ---- generators ---- *)

let test_generator_shapes () =
  Alcotest.(check int) "ring edges" 8 (Adjacency.num_edges (Generators.ring 8));
  Alcotest.(check int) "path edges" 7 (Adjacency.num_edges (Generators.path 8));
  Alcotest.(check int) "star edges" 7 (Adjacency.num_edges (Generators.star 8));
  Alcotest.(check int) "complete edges" 28 (Adjacency.num_edges (Generators.complete 8));
  Alcotest.(check int) "grid 3x3 edges" 12 (Adjacency.num_edges (Generators.grid 3 3));
  Alcotest.(check int) "hypercube 3 edges" 12 (Adjacency.num_edges (Generators.hypercube 3));
  Alcotest.(check int) "btree edges" 7 (Adjacency.num_edges (Generators.binary_tree 8))

let test_generator_tree_connected_acyclic () =
  let rng = Rng.create 9 in
  let g = Generators.random_tree rng 50 in
  Alcotest.(check int) "n-1 edges" 49 (Adjacency.num_edges g);
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g)

let test_generator_connectivity_patched () =
  let rng = Rng.create 5 in
  List.iter
    (fun name ->
      let g = Generators.by_name name (Rng.split rng) 60 in
      Alcotest.(check bool) (name ^ " connected") true (Connectivity.is_connected g))
    [ "er"; "ba"; "ws"; "regular"; "caveman"; "rtree" ]

let test_generator_ba_min_degree () =
  let rng = Rng.create 1 in
  let g = Generators.barabasi_albert rng 100 3 in
  Alcotest.(check bool) "every newcomer has >= 3 edges" true
    (List.for_all (fun v -> Adjacency.degree g v >= 3) (Adjacency.nodes g))

let test_generator_determinism () =
  let g1 = Generators.erdos_renyi (Rng.create 77) 40 0.1 in
  let g2 = Generators.erdos_renyi (Rng.create 77) 40 0.1 in
  Alcotest.(check bool) "same seed same graph" true (Adjacency.equal g1 g2)

let test_generator_by_name_unknown () =
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Generators.by_name "nope" (Rng.create 1) 8))

(* ---- centrality ---- *)

let test_betweenness_path () =
  (* path 0-1-2-3-4: bc(2) = pairs crossing = (0,3)(0,4)(1,3)(1,4)(0,2..) ...
     exact: node 2 lies on shortest paths for pairs {0,1}x{3,4} and is
     interior for (0,2)? endpoints excluded. bc(2) = |{(0,3),(0,4),(1,3),(1,4)}| = 4 *)
  let g = Generators.path 5 in
  let bc = Centrality.betweenness g in
  Alcotest.(check (float 1e-9)) "end" 0. (Node_id.Tbl.find bc 0);
  Alcotest.(check (float 1e-9)) "bc(1)" 3. (Node_id.Tbl.find bc 1);
  Alcotest.(check (float 1e-9)) "bc(2)" 4. (Node_id.Tbl.find bc 2)

let test_betweenness_star () =
  let g = Generators.star 6 in
  let bc = Centrality.betweenness g in
  (* centre carries all C(5,2) = 10 satellite pairs *)
  Alcotest.(check (float 1e-9)) "centre" 10. (Node_id.Tbl.find bc 0);
  Alcotest.(check (float 1e-9)) "leaf" 0. (Node_id.Tbl.find bc 3)

let test_betweenness_split_paths () =
  (* a 4-cycle: two equal shortest paths between opposite corners, each
     middle node gets credit 1/2 per opposite pair *)
  let g = Generators.ring 4 in
  let bc = Centrality.betweenness g in
  List.iter
    (fun v ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "node %d" v) 0.5
        (Node_id.Tbl.find bc v))
    [ 0; 1; 2; 3 ]

let test_top_k () =
  let g = Generators.star 6 in
  let top = Centrality.top_k (Centrality.degree_centrality g) 2 ~compare:Int.compare in
  Alcotest.(check (list int)) "centre first" [ 0; 1 ] top

(* ---- clustering ---- *)

let test_clustering_triangle () =
  let g = Generators.complete 3 in
  Alcotest.(check int) "one triangle" 1 (Clustering.triangles g);
  Alcotest.(check (float 1e-9)) "local 1.0" 1.0 (Clustering.local_coefficient g 0);
  Alcotest.(check (float 1e-9)) "avg 1.0" 1.0 (Clustering.average_coefficient g);
  Alcotest.(check (float 1e-9)) "global 1.0" 1.0 (Clustering.global_coefficient g)

let test_clustering_complete () =
  (* K5: C(5,3) = 10 triangles, all coefficients 1 *)
  let g = Generators.complete 5 in
  Alcotest.(check int) "triangles" 10 (Clustering.triangles g);
  Alcotest.(check (float 1e-9)) "transitivity" 1.0 (Clustering.global_coefficient g)

let test_clustering_triangle_free () =
  List.iter
    (fun g -> Alcotest.(check int) "no triangles" 0 (Clustering.triangles g))
    [ Generators.ring 8; Generators.star 8; Generators.grid 3 3; Generators.binary_tree 7 ]

let test_clustering_caveman_high () =
  let g = Generators.caveman (Rng.create 2) 4 5 in
  Alcotest.(check bool) "cliquish" true (Clustering.average_coefficient g > 0.5)

let test_clustering_paw () =
  (* triangle 0-1-2 plus pendant 3 attached to 0 *)
  let g = Adjacency.of_edges [ (0, 1); (1, 2); (0, 2); (0, 3) ] in
  Alcotest.(check int) "one triangle" 1 (Clustering.triangles g);
  (* node 0: deg 3, one edge among neighbours -> 2*1/(3*2) = 1/3 *)
  Alcotest.(check (float 1e-9)) "local of hub" (1. /. 3.) (Clustering.local_coefficient g 0);
  (* wedges: deg0=3->3, deg1=2->1, deg2=2->1, deg3=1->0: total 5 *)
  Alcotest.(check (float 1e-9)) "global 3/5" 0.6 (Clustering.global_coefficient g)

(* ---- io ---- *)

let test_edge_list_roundtrip () =
  let g = Generators.grid 3 3 in
  Adjacency.add_node g 100;
  let text = Graph_io.to_edge_list g in
  let g' = Graph_io.of_edge_list text in
  Alcotest.(check bool) "roundtrip" true (Adjacency.equal g g')

let test_edge_list_comments () =
  let g = Graph_io.of_edge_list "# comment\n1 2\n\nnode 5\n" in
  Alcotest.(check int) "nodes" 3 (Adjacency.num_nodes g);
  Alcotest.(check int) "edges" 1 (Adjacency.num_edges g)

let test_dot_output () =
  let g = Generators.path 3 in
  let dot = Graph_io.to_dot ~highlight:(Node_id.Set.singleton 1) g in
  Alcotest.(check bool) "graph kw" true (String.length dot > 0 && String.sub dot 0 5 = "graph");
  Alcotest.(check bool) "highlight" true
    (String.split_on_char '\n' dot
    |> List.exists (fun l -> l = "  1 [style=filled, fillcolor=red];"))

(* ---- rng ---- *)

let test_rng_determinism () =
  let a = Rng.create 5 and b = Rng.create 5 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_shuffle_permutation () =
  let a = Rng.create 8 in
  let arr = Array.of_list (ints 1 30) in
  let sh = Rng.shuffle a arr in
  Alcotest.(check (list int)) "same multiset" (ints 1 30)
    (List.sort compare (Array.to_list sh));
  Alcotest.(check (list int)) "original untouched" (ints 1 30) (Array.to_list arr)

let test_rng_sample_distinct () =
  let a = Rng.create 8 in
  let s = Rng.sample a 10 (Array.of_list (ints 1 50)) in
  Alcotest.(check int) "size" 10 (Array.length s);
  let sorted = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 10 (List.length sorted)

let test_rng_bounds () =
  let a = Rng.create 3 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Rng.int a 0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "pick empty" true
    (try
       ignore (Rng.pick a []);
       false
     with Invalid_argument _ -> true)

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_articulation_matches_bruteforce ]

let suite =
  [
    Alcotest.test_case "adjacency: basics" `Quick test_adjacency_basics;
    Alcotest.test_case "adjacency: no self-loops" `Quick test_adjacency_no_self_loop;
    Alcotest.test_case "adjacency: duplicate edges collapse" `Quick
      test_adjacency_duplicate_edge;
    Alcotest.test_case "adjacency: remove node" `Quick test_adjacency_remove_node;
    Alcotest.test_case "adjacency: copy is independent" `Quick
      test_adjacency_copy_independent;
    Alcotest.test_case "adjacency: equal" `Quick test_adjacency_equal;
    Alcotest.test_case "adjacency: subgraph" `Quick test_adjacency_subgraph;
    Alcotest.test_case "adjacency: of_edges" `Quick test_of_edges_roundtrip;
    Alcotest.test_case "bfs: ring distances" `Quick test_bfs_distances_ring;
    Alcotest.test_case "bfs: unreachable" `Quick test_bfs_unreachable;
    Alcotest.test_case "bfs: shortest path on grid" `Quick test_bfs_shortest_path;
    Alcotest.test_case "bfs: multi-source" `Quick test_bfs_multi_source;
    Alcotest.test_case "bfs: eccentricity" `Quick test_bfs_eccentricity;
    Alcotest.test_case "union-find" `Quick test_union_find;
    Alcotest.test_case "connectivity: components" `Quick test_components;
    Alcotest.test_case "articulation: path" `Quick test_articulation_path;
    Alcotest.test_case "articulation: ring has none" `Quick test_articulation_ring;
    Alcotest.test_case "articulation: star centre" `Quick test_articulation_star;
    Alcotest.test_case "articulation: barbell bridge" `Quick test_articulation_barbell;
    Alcotest.test_case "bridges: tree edges" `Quick test_bridges_tree;
    Alcotest.test_case "diameter: exact on known shapes" `Quick test_diameter_exact;
    Alcotest.test_case "diameter: two-sweep exact on trees" `Quick
      test_diameter_two_sweep_tree_exact;
    Alcotest.test_case "radius" `Quick test_radius;
    Alcotest.test_case "average path length" `Quick test_average_path_length;
    Alcotest.test_case "heap: ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap: empty raises" `Quick test_heap_empty_raises;
    Alcotest.test_case "dijkstra: unit weights = bfs" `Quick
      test_dijkstra_unit_weights_match_bfs;
    Alcotest.test_case "dijkstra: weighted detour" `Quick test_dijkstra_weighted;
    Alcotest.test_case "dijkstra: rejects non-positive" `Quick
      test_dijkstra_rejects_nonpositive;
    Alcotest.test_case "generators: shapes" `Quick test_generator_shapes;
    Alcotest.test_case "generators: random tree" `Quick
      test_generator_tree_connected_acyclic;
    Alcotest.test_case "generators: connectivity patch" `Quick
      test_generator_connectivity_patched;
    Alcotest.test_case "generators: BA min degree" `Quick test_generator_ba_min_degree;
    Alcotest.test_case "generators: determinism" `Quick test_generator_determinism;
    Alcotest.test_case "generators: unknown name" `Quick test_generator_by_name_unknown;
    Alcotest.test_case "betweenness: path" `Quick test_betweenness_path;
    Alcotest.test_case "betweenness: star" `Quick test_betweenness_star;
    Alcotest.test_case "betweenness: split shortest paths" `Quick
      test_betweenness_split_paths;
    Alcotest.test_case "centrality: top_k" `Quick test_top_k;
    Alcotest.test_case "clustering: triangle" `Quick test_clustering_triangle;
    Alcotest.test_case "clustering: K5" `Quick test_clustering_complete;
    Alcotest.test_case "clustering: triangle-free families" `Quick
      test_clustering_triangle_free;
    Alcotest.test_case "clustering: caveman is cliquish" `Quick
      test_clustering_caveman_high;
    Alcotest.test_case "clustering: paw graph" `Quick test_clustering_paw;
    Alcotest.test_case "io: edge-list roundtrip" `Quick test_edge_list_roundtrip;
    Alcotest.test_case "io: comments and isolated nodes" `Quick test_edge_list_comments;
    Alcotest.test_case "io: dot output" `Quick test_dot_output;
    Alcotest.test_case "rng: determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng: split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: shuffle is a permutation" `Quick
      test_rng_shuffle_permutation;
    Alcotest.test_case "rng: sample distinct" `Quick test_rng_sample_distinct;
    Alcotest.test_case "rng: bounds" `Quick test_rng_bounds;
  ]
  @ props
