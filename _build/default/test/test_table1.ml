(* Table-1 completeness: the union of per-processor local states determines
   the entire virtual forest, after any attack history. *)

open Fg_graph
module Fg = Fg_core.Forgiving_graph
module Table1 = Fg_sim.Table1

let check fg label =
  let t = Table1.of_fg fg in
  match Table1.check_complete t fg with
  | [] -> ()
  | e :: _ as errs ->
    Alcotest.failf "%s: %d Table-1 violations, first: %s" label (List.length errs) e

let test_fresh_graph () =
  let fg = Fg.of_graph (Generators.ring 8) in
  check fg "fresh ring";
  let t = Table1.of_fg fg in
  (* every row of a fresh graph points at the live real endpoint *)
  List.iter
    (fun (f : Table1.fields) ->
      match f.Table1.endpoint with
      | Some { Fg_sim.Vref.kind = Fg_sim.Vref.Real; proc; _ } ->
        Alcotest.(check bool) "endpoint alive" true (Fg.is_alive fg proc);
        Alcotest.(check bool) "no helper" false f.Table1.has_helper
      | _ -> Alcotest.fail "expected a live real endpoint")
    (Table1.rows t 0)

let test_star_heal () =
  let fg = Fg.of_graph (Generators.star 17) in
  Fg.delete fg 0;
  check fg "star heal";
  let t = Table1.of_fg fg in
  (* 16 leaves + 15 helpers -> 30 tree edges *)
  Alcotest.(check int) "tree edges" 30 (List.length (Table1.reconstruct_tree_edges t));
  (* every satellite's single row now points into the RT *)
  List.iter
    (fun v ->
      match Table1.rows t v with
      | [ f ] -> (
        match f.Table1.endpoint with
        | Some { Fg_sim.Vref.kind = Fg_sim.Vref.Helper; _ } -> ()
        | Some { Fg_sim.Vref.kind = Fg_sim.Vref.Real; _ } ->
          Alcotest.fail "should point at a helper"
        | None -> Alcotest.fail "missing endpoint")
      | rows -> Alcotest.failf "satellite %d has %d rows" v (List.length rows))
    [ 1; 5; 16 ]

let test_after_churn () =
  let rng = Rng.create 31 in
  let g = Generators.erdos_renyi rng 32 0.15 in
  let fg = Fg.of_graph g in
  let next = ref 32 in
  for step = 1 to 40 do
    let live = Fg.live_nodes fg in
    if Rng.bool rng && List.length live > 3 then Fg.delete fg (Rng.pick rng live)
    else begin
      let k = 1 + Rng.int rng 3 in
      Fg.insert fg !next (Array.to_list (Rng.sample rng k (Array.of_list live)));
      incr next
    end;
    check fg (Printf.sprintf "churn step %d" step)
  done

let test_degree_one_rt () =
  (* deleting a leaf leaves its neighbour's edge dangling: endpoint None *)
  let fg = Fg.of_graph (Generators.path 2) in
  Fg.delete fg 1;
  check fg "dangling edge";
  let t = Table1.of_fg fg in
  match Table1.rows t 0 with
  | [ f ] -> Alcotest.(check bool) "no endpoint" true (f.Table1.endpoint = None)
  | _ -> Alcotest.fail "expected one row"

let test_balanced_policy_table1 () =
  let fg = Fg.of_graph ~policy:Fg_core.Rt.Degree_balanced (Generators.star 33) in
  Fg.delete fg 0;
  check fg "balanced policy"

let suite =
  [
    Alcotest.test_case "table1: fresh graph" `Quick test_fresh_graph;
    Alcotest.test_case "table1: star heal" `Quick test_star_heal;
    Alcotest.test_case "table1: complete after churn" `Quick test_after_churn;
    Alcotest.test_case "table1: dangling edge" `Quick test_degree_one_rt;
    Alcotest.test_case "table1: balanced policy" `Quick test_balanced_policy_table1;
  ]
